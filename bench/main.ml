(* Experiment harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md §5 for the experiment index) and runs
   bechamel micro-benchmarks of the hot paths.

   Usage: dune exec bench/main.exe [-- options]
     --quick       run everything on a ~1/3-size world
     --scale F     world scale factor (default 1.0)
     --seed N      world seed (default 42)
     --jobs N      simulation worker domains (default: RD_JOBS or core count)
     --faults S    fault injection RATE:SEED[:full] (default: RD_FAULTS)
     --warm M      warm-start mode off|on|verify (default: RD_WARM or on)
     --check M     mutation-discipline checker off|on (default: RD_CHECK)
     --trace M     tracing off|summary|FILE.json (default: RD_TRACE)
     --warm-only   only run the WARM cold-vs-warm experiment (fast CI path)
     --scale-only  only run the SCALE flat-vs-reference engine experiment
     --scale-ases N  AS count of the SCALE world (>= 50; default 5000,
                     1500 with --quick)
     --topo-only   only run the TOPO topology-fidelity battery across
                     generator families (graph-level, fast CI path)
     --topo-ases N   AS count of the TOPO worlds (>= 50; default 500)
     --robust-only only run the R1 family x seed refiner-robustness matrix
     --robust-ases N AS count of the R1 worlds (>= 50; default 500)
     --json FILE   machine-readable results (default: BENCH.json)
     --sweep       add the accuracy-vs-vantage-points sweep (slow)
     --no-micro    skip the bechamel micro-benchmarks
     --micro-only  only run the micro-benchmarks *)

open Bgp

let std = Format.std_formatter

let section = Evaluation.Report.section std

(* Wall-clock of every [time]d block, in execution order — the
   per-section series of BENCH.json. *)
let timings : (string * float) list ref = ref []

let time label f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  let dt = Unix.gettimeofday () -. t0 in
  timings := (label, dt) :: !timings;
  Format.printf "[%s: %.1fs]@." label dt;
  r

let pct a b = if b = 0 then 0.0 else 100.0 *. float_of_int a /. float_of_int b

(* ------------------------------------------------------------------ *)
(* Experiments                                                         *)
(* ------------------------------------------------------------------ *)

let experiment_f2_t1 data =
  section "F2" "distinct AS-paths per (origin AS, observation AS) pair (Figure 2)";
  let hist = Topology.Diversity.pair_path_histogram data in
  Evaluation.Report.int_series std ~x:"#distinct-paths" ~y:"#AS-pairs" hist;
  Format.printf "pairs with >1 distinct path: %.1f%%  (paper: >30%%)@."
    (100.0 *. Topology.Diversity.fraction_pairs_with_diversity data);
  Format.printf
    "prefixes-per-path histogram (log-binned; paper: linear on log-log):@.";
  Evaluation.Report.table std ~header:[ "prefixes/path"; "#paths" ]
    (List.map
       (fun (lo, hi, n) ->
         [
           (if lo = hi then string_of_int lo else Printf.sprintf "%d-%d" lo hi);
           string_of_int n;
         ])
       (Evaluation.Quantiles.log_binned
          (Topology.Diversity.prefixes_per_path_histogram data)));
  section "T1" "max #unique AS-paths an AS receives for any prefix (Table 1)";
  Evaluation.Report.table std
    ~header:[ "percentile"; "measured"; "paper" ]
    (List.map2
       (fun (p, v) paper ->
         [ Printf.sprintf "%.0f%%" p; string_of_int v; string_of_int paper ])
       (Topology.Diversity.table1_quantiles data)
       [ 2; 5; 7; 10; 13 ])

let experiment_inflation prepared =
  section "INF" "path inflation of observed routes vs graph distance ([12])";
  let report =
    Topology.Inflation.analyze prepared.Core.full_graph
      (Rib.all_paths prepared.Core.data)
  in
  Format.printf "%a@." Topology.Inflation.pp report

let pp_breakdown_rows label (b : Evaluation.Agreement.breakdown) =
  [
    [
      label;
      "agree";
      Printf.sprintf "%.1f%%"
        (pct b.Evaluation.Agreement.agree b.Evaluation.Agreement.cases);
    ];
    [
      "";
      "not available";
      Printf.sprintf "%.1f%%"
        (pct b.Evaluation.Agreement.not_available b.Evaluation.Agreement.cases);
    ];
  ]
  @ List.map
      (fun (step, n) ->
        [
          "";
          Simulator.Decision.step_to_string step;
          Printf.sprintf "%.1f%%" (pct n b.Evaluation.Agreement.cases);
        ])
      b.Evaluation.Agreement.by_step

let experiment_t2 prepared =
  section "T2" "single-router-per-AS baselines (Table 2)";
  let shortest =
    time "T2a simulate" (fun () -> Core.baseline_shortest_path prepared)
  in
  let rels = Core.infer_relationships prepared in
  Format.printf "inferred relationships: %a@." Topology.Relationships.pp_counts
    (Topology.Relationships.counts rels);
  let policies =
    time "T2b simulate" (fun () -> Core.baseline_policies prepared)
  in
  Evaluation.Report.table std
    ~header:[ "model"; "criterion"; "measured" ]
    (pp_breakdown_rows "shortest path" shortest
    @ pp_breakdown_rows "inferred policies" policies);
  Format.printf
    "paper: shortest-path agrees 23.5%% (49.4%% not available, 4.7%% shorter \
     path,@.22.2%% tie-break); policies agree 12.5%% (54.5%% not available) — \
     policies@.perform WORSE than shortest path, which this world should \
     reproduce in shape.@.";
  (shortest, policies)

let experiment_train_predict prepared ~seed =
  let splits = Core.split ~seed prepared in
  section "T3" "training-set convergence of the iterative refinement (§5)";
  Format.printf "%a@." Evaluation.Split.pp splits;
  let result =
    time "refinement" (fun () ->
        Core.build prepared ~training:splits.Evaluation.Split.training)
  in
  let r = result in
  let filters, meds =
    Simulator.Net.count_policies r.Refine.Refiner.model.Asmodel.Qrmodel.net
  in
  Evaluation.Report.kv std
    [
      ("iterations", string_of_int r.Refine.Refiner.iterations);
      ( "training RIB-Out matched",
        Printf.sprintf "%d/%d (%.1f%%)" r.Refine.Refiner.matched
          r.Refine.Refiner.total
          (pct r.Refine.Refiner.matched r.Refine.Refiner.total) );
      ("converged (paper: exact match)", string_of_bool r.Refine.Refiner.converged);
      ( "quasi-routers",
        Printf.sprintf "%d (for %d ASes)"
          (Asmodel.Qrmodel.total_quasi_routers r.Refine.Refiner.model)
          (Topology.Asgraph.num_nodes prepared.Core.graph) );
      ("filter rules", string_of_int filters);
      ("MED ranking rules", string_of_int meds);
      ( "simulation pool",
        Format.asprintf "%a" Simulator.Pool.pp_stats r.Refine.Refiner.pool );
    ];
  section "F9" "training match rate per iteration (§5 convergence series)";
  Evaluation.Report.table std
    ~header:
      [
        "iteration"; "matched"; "%"; "+filters"; "+med"; "+quasi-routers";
        "deletions"; "sims"; "sim wall";
      ]
    (List.map
       (fun (h : Refine.Refiner.iter_stat) ->
         [
           string_of_int h.Refine.Refiner.iteration;
           string_of_int h.Refine.Refiner.matched;
           Printf.sprintf "%.1f" (pct h.Refine.Refiner.matched h.Refine.Refiner.total);
           string_of_int h.Refine.Refiner.filters_added;
           string_of_int h.Refine.Refiner.med_rules_added;
           string_of_int h.Refine.Refiner.duplications;
           string_of_int h.Refine.Refiner.filter_deletions;
           string_of_int h.Refine.Refiner.pool.Simulator.Pool.prefixes;
           Printf.sprintf "%.2fs" h.Refine.Refiner.pool.Simulator.Pool.wall;
         ])
       r.Refine.Refiner.history);
  section "F8" "quasi-routers per AS after refinement (§5)";
  let hist = Asmodel.Qrmodel.quasi_router_histogram r.Refine.Refiner.model in
  Evaluation.Report.int_series std ~x:"quasi-routers" ~y:"#ASes" hist;
  let sample =
    List.concat_map (fun (k, n) -> List.init n (fun _ -> k)) hist
    |> Array.of_list
  in
  Evaluation.Report.table std ~header:[ "percentile"; "quasi-routers" ]
    (List.map
       (fun (p, v) -> [ Printf.sprintf "%.0f%%" p; string_of_int v ])
       (Evaluation.Quantiles.percentiles sample [ 50.0; 75.0; 90.0; 99.0; 100.0 ]));
  section "T4" "prediction of held-out observation points (§5 headline)";
  let prediction =
    time "prediction" (fun () ->
        Core.evaluate result ~validation:splits.Evaluation.Split.validation)
  in
  Format.printf "%a@." Evaluation.Predict.pp prediction;
  Format.printf
    "paper headline: >80%% of test cases match down to the final tie-break@.\
     (1,300 vantage points; accuracy grows with vantage-point density).@.";
  section "G1" "policy granularity of the refined model (follow-up work)";
  Format.printf "%a@." Evaluation.Granularity.pp
    (Evaluation.Granularity.analyze result.Refine.Refiner.model);
  section "C1" "model compression (merge behaviourally-identical quasi-routers)";
  (match
     time "compact+verify" (fun () ->
         Refine.Compress.compact_verified result.Refine.Refiner.model
           ~against:splits.Evaluation.Split.training)
   with
  | Some (_compacted, stats) ->
      Evaluation.Report.kv std
        [
          ( "quasi-routers",
            Printf.sprintf "%d -> %d" stats.Refine.Compress.nodes_before
              stats.Refine.Compress.nodes_after );
          ( "sessions",
            Printf.sprintf "%d -> %d" stats.Refine.Compress.sessions_before
              stats.Refine.Compress.sessions_after );
          ("training exactness preserved", "yes");
        ]
  | None ->
      Format.printf
        "compaction would lose training matches on this model; kept original@.");
  section "I1" "incremental extension with newly observed paths (4.7)";
  (* New observations arrive for one prefix (its held-out validation
     paths); fit them into the already-refined model without touching
     the rest. *)
  (let validation = splits.Evaluation.Split.validation in
   let by_prefix = Rib.by_prefix validation in
   let best =
     Prefix.Map.fold
       (fun p entries acc ->
         match acc with
         | Some (_, n) when n >= List.length entries -> acc
         | _ -> Some (p, List.length entries))
       by_prefix None
   in
   match best with
   | None -> Format.printf "validation set empty@."
   | Some (p, _) ->
       (* Fit the union of everything known about p: training paths
          must stay satisfied while the new ones are added. *)
       let one_prefix =
         Rib.of_entries
           (Prefix.Map.find p by_prefix
           @ Rib.paths_for_prefix splits.Evaluation.Split.training p)
       in
       let outcome =
         time "fit new observations" (fun () ->
             Refine.Incremental.add_observations result.Refine.Refiner.model
               one_prefix)
       in
       (* Spot-check that the rest of the training data kept its exact
          matches (full verification would re-simulate every prefix). *)
       let sample =
         Rib.entries splits.Evaluation.Split.training
         |> List.filteri (fun i _ -> i mod 977 = 0)
         |> Rib.of_entries
       in
       let check =
         Refine.Verify.verify result.Refine.Refiner.model
           ~states:(Hashtbl.create 64) sample
       in
       Evaluation.Report.kv std
         [
           ("prefix", Prefix.to_string p);
           ("new observed paths fitted", string_of_int (Rib.size one_prefix));
           ( "fit exact",
             string_of_bool outcome.Refine.Incremental.result.Refine.Refiner.converged );
           ("new quasi-routers", string_of_int outcome.Refine.Incremental.new_quasi_routers);
           ( "filters added/removed",
             Printf.sprintf "+%d/-%d"
               outcome.Refine.Incremental.filters.Refine.Incremental.added
               outcome.Refine.Incremental.filters.Refine.Incremental.removed );
           ( "MED rules added/removed",
             Printf.sprintf "+%d/-%d"
               outcome.Refine.Incremental.med_rules.Refine.Incremental.added
               outcome.Refine.Incremental.med_rules.Refine.Incremental.removed );
           ( "training sample still exact",
             Printf.sprintf "%d/%d" check.Refine.Verify.exact
               check.Refine.Verify.checked );
         ]);
  (result, prediction)

let experiment_t5 prepared ~seed =
  section "T5" "prediction for previously unconsidered prefixes (§4.7: origin split)";
  let splits = Core.split ~by_origin:true ~seed prepared in
  Format.printf "%a@." Evaluation.Split.pp splits;
  let result =
    time "refinement (origin split)" (fun () ->
        Core.build prepared ~training:splits.Evaluation.Split.training)
  in
  Format.printf "training converged: %b (%d/%d)@." result.Refine.Refiner.converged
    result.Refine.Refiner.matched result.Refine.Refiner.total;
  let prediction =
    Core.evaluate result ~validation:splits.Evaluation.Split.validation
  in
  Format.printf "%a@." Evaluation.Predict.pp prediction

let experiment_t6 prepared ~seed =
  section "T6" "combined split: unseen vantage points AND unseen origins (4.2)";
  let splits = Evaluation.Split.combined ~seed prepared.Core.data in
  Format.printf "%a@." Evaluation.Split.pp splits;
  let result =
    time "refinement (combined split)" (fun () ->
        Core.build prepared ~training:splits.Evaluation.Split.training)
  in
  Format.printf "training converged: %b (%d/%d)@." result.Refine.Refiner.converged
    result.Refine.Refiner.matched result.Refine.Refiner.total;
  let prediction =
    Core.evaluate result ~validation:splits.Evaluation.Split.validation
  in
  Format.printf "%a@." Evaluation.Predict.pp prediction

let experiment_ablations conf =
  (* Ablations run on their own (smaller) world so that the runtime
     stays reasonable even in full mode. *)
  let world = Netgen.Groundtruth.build conf in
  let data = Netgen.Groundtruth.observe world in
  let prepared = Core.prepare data in
  let splits = Core.split ~seed:7 prepared in
  let training = splits.Evaluation.Split.training in
  let validation = splits.Evaluation.Split.validation in
  let grade label options =
    let result =
      time label (fun () -> Core.build ~options prepared ~training)
    in
    let prediction = Core.evaluate result ~validation in
    ( label,
      result.Refine.Refiner.matched,
      result.Refine.Refiner.total,
      Asmodel.Qrmodel.total_quasi_routers result.Refine.Refiner.model,
      result.Refine.Refiner.unstable_prefixes,
      prediction )
  in
  let full =
    grade "A0 full heuristic"
      { Refine.Refiner.default_options with max_iterations = Some 14 }
  in
  let single =
    grade "A1 single quasi-router"
      {
        Refine.Refiner.default_options with
        max_iterations = Some 14;
        max_quasi_routers = 1;
      }
  in
  let nomed =
    grade "A2 filters only (no MED)"
      {
        Refine.Refiner.default_options with
        max_iterations = Some 14;
        use_med = false;
      }
  in
  let lpref =
    (* The paper's abandoned first attempt (§4.6): per-prefix LOCAL_PREF
       ranking.  Expect divergence ("unstable" > 0) on policy-rich
       worlds — the negative result that drove the MED design. *)
    grade "A3 local-pref ranking (abandoned by paper)"
      {
        Refine.Refiner.default_options with
        max_iterations = Some 14;
        ranking = Refine.Refiner.Lpref_ranking;
      }
  in
  section "A1-A3" "ablations: what the design choices buy (§3.2, §4.6)";
  Evaluation.Report.table std
    ~header:
      [
        "variant"; "train matched"; "quasi-routers"; "unstable";
        "valid exact"; "valid tie-break";
      ]
    (List.map
       (fun (label, matched, total, qrs, unstable, pred) ->
         [
           label;
           Printf.sprintf "%.1f%%" (pct matched total);
           string_of_int qrs;
           string_of_int unstable;
           Printf.sprintf "%.1f%%" (100.0 *. Evaluation.Predict.exact_fraction pred);
           Printf.sprintf "%.1f%%"
             (100.0 *. Evaluation.Predict.down_to_tie_break_fraction pred);
         ])
       [ full; single; nomed; lpref ])

let battery_families =
  [
    Netgen.Family.Paper;
    Netgen.Family.Waxman Netgen.Family.default_waxman;
    Netgen.Family.Glp Netgen.Family.default_glp;
    Netgen.Family.Fattree Netgen.Family.default_fattree;
  ]

let experiment_robustness ~ases =
  (* The headline metrics across generator families *and* world seeds:
     the shape claims should depend neither on one lucky seed nor on
     the structure of one synthetic family.  Every run must converge
     with an empty quarantine; the battery column scores each world
     against the paper-family world of the same seed. *)
  section "R1" "refiner robustness across generator families and seeds";
  let seeds = [ 42; 1001; 31337 ] in
  let conf_of family seed =
    { (Netgen.Conf.sized ases) with Netgen.Conf.seed = seed; family }
  in
  let paper_summaries =
    List.map
      (fun seed ->
        let conf = conf_of Netgen.Family.Paper seed in
        let topo =
          Netgen.generate Netgen.Family.Paper conf (Random.State.make [| seed |])
        in
        (seed, Analysis.Topometrics.summarize (Netgen.Gentopo.as_graph topo)))
      seeds
  in
  let rows =
    List.concat_map
      (fun family ->
        List.map
          (fun seed ->
            let conf = conf_of family seed in
            let world = Netgen.Groundtruth.build conf in
            let data = Netgen.Groundtruth.observe world in
            let prepared = Core.prepare data in
            let splits = Core.split ~seed:7 prepared in
            let result =
              time
                (Printf.sprintf "%s seed %d" (Netgen.Family.name family) seed)
                (fun () ->
                  (* The quasi-router cap keeps hub-heavy families
                     tractable: on origin-collapsed data a GLP hub AS
                     would otherwise absorb hundreds of duplicates, and
                     every duplicate joins its AS's full iBGP mesh —
                     quadratic session growth, tens of GB per cell.  The
                     paper's Figure 8 shows real ASes need few
                     quasi-routers; 16 is generous. *)
                  Core.build
                    ~options:
                      {
                        Refine.Refiner.default_options with
                        max_iterations = Some 16;
                        max_quasi_routers = 16;
                      }
                    prepared ~training:splits.Evaluation.Split.training)
            in
            let prediction =
              Core.evaluate result ~validation:splits.Evaluation.Split.validation
            in
            let score =
              let s =
                Analysis.Topometrics.summarize
                  (Netgen.Gentopo.as_graph world.Netgen.Groundtruth.topo)
              in
              (Analysis.Topometrics.compare (List.assoc seed paper_summaries) s)
                .Analysis.Topometrics.score
            in
            [
              Netgen.Family.name family;
              string_of_int seed;
              Printf.sprintf "%.1f%%"
                (pct result.Refine.Refiner.matched result.Refine.Refiner.total);
              string_of_int result.Refine.Refiner.iterations;
              Printf.sprintf "%.1f%%"
                (100.0 *. Evaluation.Predict.exact_fraction prediction);
              Printf.sprintf "%.1f%%"
                (100.0
                *. Evaluation.Predict.down_to_tie_break_fraction prediction);
              string_of_int result.Refine.Refiner.quarantined_prefixes;
              Printf.sprintf "%.3f" score;
            ]
            |> fun row ->
            (* A refined 500-AS world (states table, duplicated
               quasi-routers, policy tables) holds gigabytes; without a
               compaction between cells the matrix accumulates every
               cell's dead heap as unreturned RSS. *)
            Gc.compact ();
            row)
          seeds)
      battery_families
  in
  Evaluation.Report.table std
    ~header:
      [
        "family"; "seed"; "train"; "iters"; "exact"; "tie-break"; "quar";
        "battery";
      ]
    rows

let experiment_parallel prepared =
  (* The pool's headline: identical results, less wall-clock.  Runs the
     same refinement + (fresh-state) evaluation at 1 worker and at 4,
     checking bit-identical outcomes and reporting the speedup. *)
  section "PAR" "refinement/evaluation wall-clock vs worker domains (Pool)";
  let cores = Domain.recommended_domain_count () in
  Format.printf "available cores: %d@." cores;
  if cores < 2 then
    Format.printf
      "NOTE: single-core host — parallel speedup is impossible and extra \
       domains only add GC-synchronisation overhead; the run below still \
       checks result equality across job counts.@.";
  let splits = Core.split ~seed:7 prepared in
  let run jobs =
    let t0 = Unix.gettimeofday () in
    let result =
      Core.build
        ~options:
          {
            Refine.Refiner.default_options with
            max_iterations = Some 14;
            jobs = Some jobs;
          }
        prepared ~training:splits.Evaluation.Split.training
    in
    let t_refine = Unix.gettimeofday () -. t0 in
    (* Fresh state table so the evaluation phase re-simulates every
       validation prefix through the pool. *)
    let t1 = Unix.gettimeofday () in
    let prediction =
      Evaluation.Predict.evaluate ~jobs result.Refine.Refiner.model
        ~states:(Hashtbl.create 256) splits.Evaluation.Split.validation
    in
    let t_eval = Unix.gettimeofday () -. t1 in
    (result, prediction, t_refine, t_eval)
  in
  let r1, p1, refine1, eval1 = time "PAR jobs=1" (fun () -> run 1) in
  let r4, p4, refine4, eval4 = time "PAR jobs=4" (fun () -> run 4) in
  let identical =
    r1.Refine.Refiner.matched = r4.Refine.Refiner.matched
    && r1.Refine.Refiner.iterations = r4.Refine.Refiner.iterations
    && p1.Evaluation.Predict.totals = p4.Evaluation.Predict.totals
    && p1.Evaluation.Predict.coverage = p4.Evaluation.Predict.coverage
  in
  Evaluation.Report.table std
    ~header:[ "jobs"; "refine"; "evaluate"; "sim events" ]
    [
      [
        "1";
        Printf.sprintf "%.1fs" refine1;
        Printf.sprintf "%.1fs" eval1;
        string_of_int r1.Refine.Refiner.pool.Simulator.Pool.events;
      ];
      [
        "4";
        Printf.sprintf "%.1fs" refine4;
        Printf.sprintf "%.1fs" eval4;
        string_of_int r4.Refine.Refiner.pool.Simulator.Pool.events;
      ];
    ];
  Format.printf
    "results identical across job counts: %b@.speedup at 4 jobs: refine %.2fx, \
     evaluate %.2fx@."
    identical
    (if refine4 > 0.0 then refine1 /. refine4 else 0.0)
    (if eval4 > 0.0 then eval1 /. eval4 else 0.0)

let experiment_sweep base_conf =
  (* How prediction accuracy scales with vantage points: train on a
     growing subset of the training observation points. *)
  section "SWEEP" "prediction accuracy vs number of training vantage points";
  let world = Netgen.Groundtruth.build base_conf in
  let data = Netgen.Groundtruth.observe world in
  let prepared = Core.prepare data in
  let splits = Core.split ~seed:7 prepared in
  let train_points = Rib.observation_points splits.Evaluation.Split.training in
  let validation = splits.Evaluation.Split.validation in
  let total = List.length train_points in
  let rows =
    List.filter_map
      (fun fraction ->
        let k = max 1 (int_of_float (float_of_int total *. fraction)) in
        let subset = List.filteri (fun i _ -> i < k) train_points in
        let training =
          Rib.restrict_points splits.Evaluation.Split.training subset
        in
        if Rib.size training = 0 then None
        else begin
          let result =
            time
              (Printf.sprintf "sweep %d points" k)
              (fun () ->
                Core.build
                  ~options:
                    { Refine.Refiner.default_options with max_iterations = Some 14 }
                  prepared ~training)
          in
          let prediction = Core.evaluate result ~validation in
          Some
            [
              string_of_int k;
              Printf.sprintf "%.1f%%"
                (100.0 *. Evaluation.Predict.exact_fraction prediction);
              Printf.sprintf "%.1f%%"
                (100.0 *. Evaluation.Predict.down_to_tie_break_fraction prediction);
              Printf.sprintf "%.1f%%"
                (100.0 *. Evaluation.Predict.rib_in_fraction prediction);
            ]
        end)
      [ 0.25; 0.5; 0.75; 1.0 ]
  in
  Evaluation.Report.table std
    ~header:[ "train points"; "exact"; "tie-break"; "rib-in bound" ]
    rows

let experiment_faults conf =
  (* Resilience proof: the full refine + predict pipeline under
     deterministic fault injection (Simulator.Faultinject).  Three runs
     over the same world: faults off, transient faults (every injected
     task failure recovered by the pool's sequential retry — results
     must be bit-identical to the clean run), and full faults
     (permanent task failures + shrunk engine budgets — the pipeline
     must complete and report the damage as quarantine/unresolved
     tallies instead of raising). *)
  section "FAULT" "pipeline resilience under injected faults (RD_FAULTS)";
  let world = Netgen.Groundtruth.build conf in
  let data = Netgen.Groundtruth.observe world in
  let prepared = Core.prepare data in
  let splits = Core.split ~seed:7 prepared in
  let validation = splits.Evaluation.Split.validation in
  let ambient = Simulator.Faultinject.current () in
  let run label faults =
    Simulator.Faultinject.set faults;
    let result =
      time label (fun () ->
          Core.build
            ~options:
              { Refine.Refiner.default_options with max_iterations = Some 14 }
            prepared ~training:splits.Evaluation.Split.training)
    in
    (* Fresh state table so the prediction batch goes through the pool
       (and hence through the injector) too. *)
    let prediction =
      Evaluation.Predict.evaluate result.Refine.Refiner.model
        ~states:(Hashtbl.create 256) validation
    in
    (result, prediction)
  in
  let inject rate scope =
    Some { Simulator.Faultinject.rate; seed = 42; scope }
  in
  let clean_r, clean_p = run "FAULT off" None in
  let trans_r, trans_p =
    run "FAULT transient 0.05:42" (inject 0.05 Simulator.Faultinject.Transient)
  in
  let full_r, full_p =
    run "FAULT full 0.05:42:full" (inject 0.05 Simulator.Faultinject.Full)
  in
  Simulator.Faultinject.set ambient;
  let row label (r : Refine.Refiner.result) (p : Evaluation.Predict.report) =
    let pool = Simulator.Pool.merge r.Refine.Refiner.pool p.Evaluation.Predict.pool in
    [
      label;
      Printf.sprintf "%.1f%%" (pct r.Refine.Refiner.matched r.Refine.Refiner.total);
      string_of_int r.Refine.Refiner.quarantined_prefixes;
      string_of_int p.Evaluation.Predict.totals.Evaluation.Predict.unresolved;
      string_of_int pool.Simulator.Pool.retried;
      string_of_int pool.Simulator.Pool.failed;
      string_of_int pool.Simulator.Pool.diverged;
    ]
  in
  Evaluation.Report.table std
    ~header:
      [ "faults"; "train"; "quarantined"; "unresolved"; "retried"; "failed";
        "diverged" ]
    [
      row "off" clean_r clean_p;
      row "0.05:42 (transient)" trans_r trans_p;
      row "0.05:42:full" full_r full_p;
    ];
  let transparent =
    clean_r.Refine.Refiner.matched = trans_r.Refine.Refiner.matched
    && clean_r.Refine.Refiner.iterations = trans_r.Refine.Refiner.iterations
    && clean_p.Evaluation.Predict.totals = trans_p.Evaluation.Predict.totals
    && clean_p.Evaluation.Predict.coverage = trans_p.Evaluation.Predict.coverage
  in
  let trans_pool =
    Simulator.Pool.merge trans_r.Refine.Refiner.pool
      trans_p.Evaluation.Predict.pool
  in
  Format.printf
    "transient faults recovered transparently (results = clean run): %b@.\
     transient tasks retried: %d (want > 0)@.full-fault run completed without \
     raising: true@."
    transparent trans_pool.Simulator.Pool.retried

type warm_report = {
  cold_wall : float;
  cold_events : int;
  cold_alloc : float;
  warm_wall : float;
  warm_events : int;
  warm_alloc : float;
  warm_stats : Simulator.Warm.stats;
  identical : bool;
  verify_stats : Simulator.Warm.stats;
  pool : Simulator.Pool.stats;
}

let experiment_warm prepared =
  (* The tentpole measurement: the same refinement run cold
     (RD_WARM=off), warm (every re-simulation resumes from the previous
     fixed point) and in verify mode (cold and warm side by side, any
     divergence counted).  Cold and warm run at jobs=1 so engine events
     and Gc.allocated_bytes (a per-domain counter) are directly
     comparable; verify runs at the ambient job count to exercise the
     parallel path. *)
  section "WARM" "warm-start re-simulation vs cold (RD_WARM)";
  let splits = Core.split ~seed:7 prepared in
  let training = splits.Evaluation.Split.training in
  let run label mode jobs =
    let prior = Simulator.Warm.current () in
    Simulator.Warm.set mode;
    Simulator.Warm.reset_stats ();
    Fun.protect
      ~finally:(fun () -> Simulator.Warm.set prior)
      (fun () ->
        let a0 = Gc.allocated_bytes () in
        let t0 = Unix.gettimeofday () in
        let result =
          time label (fun () ->
              Core.build
                ~options:
                  {
                    Refine.Refiner.default_options with
                    max_iterations = Some 14;
                    jobs;
                  }
                prepared ~training)
        in
        let wall = Unix.gettimeofday () -. t0 in
        let alloc = Gc.allocated_bytes () -. a0 in
        (result, wall, alloc, Simulator.Warm.stats ()))
  in
  let cold_r, cold_wall, cold_alloc, _ =
    run "WARM cold jobs=1" Simulator.Warm.Off (Some 1)
  in
  let warm_r, warm_wall, warm_alloc, warm_stats =
    run "WARM warm jobs=1" Simulator.Warm.On (Some 1)
  in
  let verify_r, _, _, verify_stats =
    run "WARM verify" Simulator.Warm.Verify None
  in
  let identical =
    cold_r.Refine.Refiner.matched = warm_r.Refine.Refiner.matched
    && cold_r.Refine.Refiner.iterations = warm_r.Refine.Refiner.iterations
    && cold_r.Refine.Refiner.matched = verify_r.Refine.Refiner.matched
  in
  let cold_events = cold_r.Refine.Refiner.pool.Simulator.Pool.events in
  let warm_events = warm_r.Refine.Refiner.pool.Simulator.Pool.events in
  let ratio a b = if b = 0 then 0.0 else float_of_int a /. float_of_int b in
  Evaluation.Report.table std
    ~header:[ "mode"; "refine wall"; "engine events"; "allocated bytes" ]
    [
      [
        "cold";
        Printf.sprintf "%.1fs" cold_wall;
        string_of_int cold_events;
        Printf.sprintf "%.0f" cold_alloc;
      ];
      [
        "warm";
        Printf.sprintf "%.1fs" warm_wall;
        string_of_int warm_events;
        Printf.sprintf "%.0f" warm_alloc;
      ];
    ];
  Format.printf
    "warm/cold event ratio: %.2f (%d warm resumes, %d cold runs)@.results \
     identical across modes: %b@.verify: %d pairs compared, %d divergences \
     (want 0)@."
    (ratio warm_events cold_events)
    warm_stats.Simulator.Warm.warm_runs warm_stats.Simulator.Warm.cold_runs
    identical verify_stats.Simulator.Warm.verified
    verify_stats.Simulator.Warm.divergences;
  {
    cold_wall;
    cold_events;
    cold_alloc;
    warm_wall;
    warm_events;
    warm_alloc;
    warm_stats;
    identical;
    verify_stats;
    pool =
      Simulator.Pool.merge cold_r.Refine.Refiner.pool
        warm_r.Refine.Refiner.pool;
  }

type check_report = {
  off_wall : float;
  on_wall : float;
  overhead_ratio : float;
  off_vs_warm : float;
  check_violations : int;
  lint_errors : int;
  race_wall : float;
  race_overhead : float;
  race_findings : int;
}

let experiment_check prepared (warm : warm_report) =
  (* RD_CHECK must be free when off: the same refinement workload as
     the WARM warm run (warm starts, jobs=1, 14 iterations), with the
     mutation hook uninstalled (twice, min — the gate is a ratio of two
     single-sample wall clocks) and installed.  The off-vs-warm-bench
     ratio is the CI gate; the on run doubles as an end-to-end exercise
     of the checker (zero violations) and of the lint on the refined
     model (zero errors). *)
  section "CHECK" "mutation-discipline checker overhead (RD_CHECK)";
  let splits = Core.split ~seed:7 prepared in
  let training = splits.Evaluation.Split.training in
  let run label mode =
    let prior_check = Analysis.Ownership.current () in
    let prior_warm = Simulator.Warm.current () in
    Analysis.Ownership.set mode;
    Simulator.Warm.set Simulator.Warm.On;
    Fun.protect
      ~finally:(fun () ->
        Analysis.Ownership.set prior_check;
        Simulator.Warm.set prior_warm)
      (fun () ->
        let t0 = Unix.gettimeofday () in
        let result =
          time label (fun () ->
              Core.build
                ~options:
                  {
                    Refine.Refiner.default_options with
                    max_iterations = Some 14;
                    jobs = Some 1;
                  }
                prepared ~training)
        in
        (result, Unix.gettimeofday () -. t0))
  in
  let _, off1 = run "CHECK off jobs=1 (1/2)" Analysis.Ownership.Off in
  let _, off2 = run "CHECK off jobs=1 (2/2)" Analysis.Ownership.Off in
  let off_wall = Float.min off1 off2 in
  Analysis.Ownership.reset ();
  let on_r, on_wall = run "CHECK on jobs=1" Analysis.Ownership.On in
  let check_violations = Analysis.Ownership.violation_count () in
  let lint_errors =
    Analysis.Report.error_count (Analysis.Lint.check on_r.Refine.Refiner.model)
  in
  Analysis.Ownership.reset ();
  (* The race detector serializes every probe behind one mutex; the row
     records the honest price of RD_CHECK=race on the same workload and
     gates on it finding nothing in a clean run. *)
  Analysis.Race.reset ();
  let _, race_wall = run "CHECK race jobs=1" Analysis.Ownership.Race in
  let race_findings =
    Analysis.Race.race_count () + Analysis.Ownership.violation_count ()
  in
  Analysis.Race.reset ();
  Analysis.Ownership.reset ();
  let overhead_ratio = if off_wall > 0.0 then on_wall /. off_wall else 0.0 in
  let race_overhead = if off_wall > 0.0 then race_wall /. off_wall else 0.0 in
  let off_vs_warm =
    if warm.warm_wall > 0.0 then off_wall /. warm.warm_wall else 0.0
  in
  Format.printf
    "RD_CHECK=off wall: %.2fs (min of 2; %.2fx of the WARM warm run — want \
     <= 1.02)@.RD_CHECK=on wall: %.2fs (%.2fx of off)@.RD_CHECK=race wall: \
     %.2fs (%.2fx of off)@.violations recorded under RD_CHECK=on: %d (want \
     0)@.race/audit findings under RD_CHECK=race: %d (want 0)@.lint errors \
     on the refined model: %d (want 0)@."
    off_wall off_vs_warm on_wall overhead_ratio race_wall race_overhead
    check_violations race_findings lint_errors;
  {
    off_wall;
    on_wall;
    overhead_ratio;
    off_vs_warm;
    check_violations;
    lint_errors;
    race_wall;
    race_overhead;
    race_findings;
  }

type obs_report = {
  trace_off_wall : float;
  obs_off_vs_warm : float;
  events_drained : int;
  pool_tasks : int;
  refiner_iterations : int;
  metrics_json : string;
}

let experiment_obs prepared (warm : warm_report) =
  (* RD_TRACE must be free when off: the hot-path guard is one atomic
     load and a branch, so the same refinement workload as the WARM
     warm run (warm starts, jobs=1, 14 iterations) must stay within
     noise of it (twice, min — the gate is a ratio of two
     single-sample wall clocks).  A summary-mode run then exercises
     the span recording path end to end and feeds the metrics
     snapshot of BENCH.json. *)
  section "OBS" "observability overhead (RD_TRACE) and metrics snapshot";
  let splits = Core.split ~seed:7 prepared in
  let training = splits.Evaluation.Split.training in
  let run label mode =
    let prior_trace = Simulator.Runtime.trace () in
    let prior_warm = Simulator.Warm.current () in
    Simulator.Runtime.set_trace mode;
    Simulator.Warm.set Simulator.Warm.On;
    Fun.protect
      ~finally:(fun () ->
        Simulator.Runtime.set_trace prior_trace;
        Simulator.Warm.set prior_warm)
      (fun () ->
        let t0 = Unix.gettimeofday () in
        let result =
          time label (fun () ->
              Core.build
                ~options:
                  {
                    Refine.Refiner.default_options with
                    max_iterations = Some 14;
                    jobs = Some 1;
                  }
                prepared ~training)
        in
        (result, Unix.gettimeofday () -. t0))
  in
  let _, off1 = run "OBS trace=off jobs=1 (1/2)" Obs.Trace.Off in
  let _, off2 = run "OBS trace=off jobs=1 (2/2)" Obs.Trace.Off in
  let trace_off_wall = Float.min off1 off2 in
  let obs_off_vs_warm =
    if warm.warm_wall > 0.0 then trace_off_wall /. warm.warm_wall else 0.0
  in
  Obs.Metrics.reset ();
  Obs.Trace.reset ();
  let _ = run "OBS trace=summary jobs=1" Obs.Trace.Summary in
  let snap = Obs.Metrics.snapshot () in
  let events_drained = Obs.Metrics.find_counter "engine.events_drained" in
  let pool_tasks = Obs.Metrics.find_counter "pool.tasks" in
  let refiner_iterations = Obs.Metrics.find_counter "refiner.iterations" in
  Format.printf
    "RD_TRACE=off wall: %.2fs (min of 2; %.2fx of the WARM warm run — want \
     <= 1.02)@.metrics after one summary-mode run (want all nonzero):@.\
    \  engine.events_drained = %d@.  pool.tasks = %d@.  refiner.iterations \
     = %d@.trace events recorded: %d (dropped: %d)@."
    trace_off_wall obs_off_vs_warm events_drained pool_tasks
    refiner_iterations
    (Obs.Trace.event_count ())
    (Obs.Trace.dropped ());
  let metrics_json = Obs.Metrics.to_json snap in
  Obs.Trace.reset ();
  {
    trace_off_wall;
    obs_off_vs_warm;
    events_drained;
    pool_tasks;
    refiner_iterations;
    metrics_json;
  }

type serve_report = {
  serve_prefixes : int;
  snapshot_build_s : float;
  serve_queries : int;
  queries_per_sec : float;
  latency_p50_us : int;
  latency_p99_us : int;
  serve_deadline_misses : int;
  whatif_warm_s : float;
  whatif_cold_s : float;
  whatif_resume_hits : int;
}

(* Percentile estimate from a pair of histogram snapshots: the upper
   bound of the bucket where the cumulative delta count crosses [q]. *)
let histogram_percentile ~before ~after q =
  let buckets_of = function
    | Some (Obs.Metrics.Histogram { buckets; _ }) -> buckets
    | _ -> []
  in
  let pre = buckets_of before and post = buckets_of after in
  let delta =
    if List.length pre = List.length post then
      List.map2 (fun (le, a) (le', b) -> assert (le = le'); (le, b - a)) pre post
    else post
  in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 delta in
  if total = 0 then 0
  else begin
    let target =
      max 1 (int_of_float (Float.round (q *. float_of_int total)))
    in
    let rec go acc = function
      | [] -> 0
      | (le, n) :: rest -> if acc + n >= target then le else go (acc + n) rest
    in
    go 0 delta
  end

let experiment_serve prepared =
  (* The query service on a frozen snapshot of this world: read-query
     throughput and latency percentiles from the serve histograms, and
     the tentpole comparison — a what-if delta resumed warm from the
     cached states vs re-converging every prefix cold. *)
  section "SERVE" "query service over a frozen snapshot (lib/serve)";
  let model = Asmodel.Qrmodel.initial prepared.Core.graph in
  let t0 = Unix.gettimeofday () in
  let snap = Serve.Snapshot.build model in
  let snapshot_build_s = Unix.gettimeofday () -. t0 in
  let prefixes = List.map fst (Serve.Snapshot.states snap) in
  let ases = Topology.Asgraph.nodes prepared.Core.graph in
  let sample_ases = List.filteri (fun i _ -> i mod 97 = 0) ases in
  let reqs =
    List.concat
      (List.mapi
         (fun i p ->
           List.map
             (fun asn -> Serve.Protocol.Path { prefix = p; asn })
             sample_ases
           @
           if i mod 16 = 0 then
             [
               Serve.Protocol.Catchment
                 { egress = List.nth ases (i mod List.length ases);
                   prefix = Some p };
             ]
           else [])
         prefixes)
  in
  let lat_before = Obs.Metrics.value "serve.latency_us" in
  let misses0 = Obs.Metrics.find_counter "serve.deadline_misses" in
  let t0 = Unix.gettimeofday () in
  let failed =
    List.fold_left
      (fun acc req ->
        let resp = Serve.Query.eval_timed ~deadline_ms:1000 snap req in
        match resp.Serve.Protocol.result with Ok _ -> acc | Error _ -> acc + 1)
      0 reqs
  in
  let read_wall = Unix.gettimeofday () -. t0 in
  let lat_after = Obs.Metrics.value "serve.latency_us" in
  let serve_deadline_misses =
    Obs.Metrics.find_counter "serve.deadline_misses" - misses0
  in
  let serve_queries = List.length reqs in
  let queries_per_sec =
    if read_wall > 0.0 then float_of_int serve_queries /. read_wall else 0.0
  in
  let latency_p50_us =
    histogram_percentile ~before:lat_before ~after:lat_after 0.50
  in
  let latency_p99_us =
    histogram_percentile ~before:lat_before ~after:lat_after 0.99
  in
  (* What-if: warm (the serve path — every prefix resumes from its
     cached converged state) vs cold (re-converge every prefix from
     scratch under the same deny, then restore). *)
  let a, b =
    match Topology.Asgraph.edges prepared.Core.graph with
    | (a, b) :: _ -> (a, b)
    | [] -> (0, 0)
  in
  let t0 = Unix.gettimeofday () in
  let whatif_resume_hits =
    match
      time "SERVE whatif warm" (fun () ->
          Serve.Query.eval snap (Serve.Protocol.Whatif { a; b }))
    with
    | Ok (Serve.Protocol.Whatif_summary { resume_hits; _ }) -> resume_hits
    | Ok _ | Error _ -> 0
  in
  let whatif_warm_s = Unix.gettimeofday () -. t0 in
  let net = (Serve.Snapshot.model snap).Asmodel.Qrmodel.net in
  let t0 = Unix.gettimeofday () in
  time "SERVE whatif cold" (fun () ->
      Serve.Snapshot.exclusive snap (fun () ->
          ignore (Asmodel.Whatif.disable_as_link model a b);
          Fun.protect
            ~finally:(fun () ->
              ignore (Asmodel.Whatif.enable_as_link model a b);
              List.iter (Simulator.Net.clear_touched net) prefixes)
            (fun () ->
              ignore
                (Simulator.Pool.simulate
                   ~sim:(fun p ->
                     Simulator.Engine.simulate net ~prefix:p
                       ~originators:(Asmodel.Qrmodel.originators model p))
                   prefixes))));
  let whatif_cold_s = Unix.gettimeofday () -. t0 in
  Serve.Snapshot.retire snap;
  Evaluation.Report.kv std
    [
      ("prefixes served", string_of_int (List.length prefixes));
      ("snapshot build", Printf.sprintf "%.2fs" snapshot_build_s);
      ( "read queries",
        Printf.sprintf "%d (%d failed)" serve_queries failed );
      ("queries/sec", Printf.sprintf "%.0f" queries_per_sec);
      ("latency p50", Printf.sprintf "%dus" latency_p50_us);
      ("latency p99", Printf.sprintf "%dus" latency_p99_us);
      ("deadline misses (1000ms)", string_of_int serve_deadline_misses);
      ( "what-if wall",
        Printf.sprintf "warm %.2fs vs cold %.2fs (%.2fx)" whatif_warm_s
          whatif_cold_s
          (if whatif_warm_s > 0.0 then whatif_cold_s /. whatif_warm_s else 0.0)
      );
      ("what-if warm resumes", string_of_int whatif_resume_hits);
    ];
  {
    serve_prefixes = List.length prefixes;
    snapshot_build_s;
    serve_queries;
    queries_per_sec;
    latency_p50_us;
    latency_p99_us;
    serve_deadline_misses;
    whatif_warm_s;
    whatif_cold_s;
    whatif_resume_hits;
  }

type churn_report = {
  churn_events : int;
  churn_rejected : int;
  churn_warm_events : int;  (** engine events, warm replay *)
  churn_warm_wall : float;
  churn_warm_resumes : int;
  churn_cold_events : int;  (** engine events, same stream replayed cold *)
  churn_cold_wall : float;
  churn_identical : bool;  (** warm and cold final fingerprints agree *)
  churn_quarantine_leaks : int;
  churn_polluted : int;
  churn_fault_retried : int;
  churn_fault_failed : int;
  churn_fault_leaks : int;
  churn_classes : (string * Stream.Replay.class_stats) list;
}

let experiment_churn prepared =
  (* The replay tentpole, measured: the same deterministic churn stream
     (every event class) replayed warm — only touched prefixes
     reconverge, resumed from the cached fixed points — and cold — the
     same per-event batches from scratch.  Same final fingerprint, fewer
     engine events, is the claim; a third run under transient fault
     injection must recover everything (no failures, empty quarantine).
     Each run gets a fresh model: replay mutates the live net. *)
  section "CHURN" "event-stream replay: warm reconvergence vs cold (lib/stream)";
  let run label mode faults =
    let ambient = Simulator.Faultinject.current () in
    Simulator.Faultinject.set faults;
    Fun.protect
      ~finally:(fun () -> Simulator.Faultinject.set ambient)
      (fun () ->
        let model = Asmodel.Qrmodel.initial prepared.Core.graph in
        let stream =
          Stream.Streamgen.mixed ~events:48 model (Random.State.make [| 42 |])
        in
        time label (fun () -> snd (Stream.Replay.run ~mode model stream)))
  in
  let warm = run "CHURN warm" Simulator.Warm.On None in
  let cold = run "CHURN cold" Simulator.Warm.Off None in
  let faulted =
    run "CHURN warm faults=0.05:42" Simulator.Warm.On
      (Some
         { Simulator.Faultinject.rate = 0.05; seed = 42;
           scope = Simulator.Faultinject.Transient })
  in
  let sum f (r : Stream.Replay.report) =
    List.fold_left (fun acc (_, cs) -> acc + f cs) 0 r.Stream.Replay.classes
  in
  let events_of = sum (fun cs -> cs.Stream.Replay.cs_engine_events) in
  let warm_resumes = sum (fun cs -> cs.Stream.Replay.cs_warm) warm in
  let polluted = sum (fun cs -> cs.Stream.Replay.cs_polluted) warm in
  Evaluation.Report.table std
    ~header:
      [ "class"; "events"; "prefixes"; "engine events"; "warm"; "cold";
        "ASes shifted"; "polluted" ]
    (List.map
       (fun (cls, cs) ->
         [
           Stream.Replay.cls_name cls;
           string_of_int cs.Stream.Replay.cs_events;
           string_of_int cs.Stream.Replay.cs_prefixes;
           string_of_int cs.Stream.Replay.cs_engine_events;
           string_of_int cs.Stream.Replay.cs_warm;
           string_of_int cs.Stream.Replay.cs_cold;
           string_of_int cs.Stream.Replay.cs_ases_shifted;
           string_of_int cs.Stream.Replay.cs_polluted;
         ])
       warm.Stream.Replay.classes);
  let identical =
    warm.Stream.Replay.fingerprint = cold.Stream.Replay.fingerprint
  in
  Format.printf
    "events replayed: %d (%d rejected)@.engine events: warm %d vs cold %d \
     (ratio %.2f, %d resumes)@.final fingerprints identical: %b@.quarantine \
     leaks: %d@.under transient faults: %d retried, %d failed, %d leaks \
     (want 0 failed, 0 leaks)@."
    warm.Stream.Replay.events warm.Stream.Replay.rejected (events_of warm)
    (events_of cold)
    (if events_of cold = 0 then 0.0
     else float_of_int (events_of warm) /. float_of_int (events_of cold))
    warm_resumes identical
    (List.length warm.Stream.Replay.quarantine)
    faulted.Stream.Replay.retried faulted.Stream.Replay.failed
    (List.length faulted.Stream.Replay.quarantine);
  {
    churn_events = warm.Stream.Replay.events;
    churn_rejected = warm.Stream.Replay.rejected;
    churn_warm_events = events_of warm;
    churn_warm_wall = warm.Stream.Replay.wall_s;
    churn_warm_resumes = warm_resumes;
    churn_cold_events = events_of cold;
    churn_cold_wall = cold.Stream.Replay.wall_s;
    churn_identical = identical;
    churn_quarantine_leaks = List.length warm.Stream.Replay.quarantine;
    churn_polluted = polluted;
    churn_fault_retried = faulted.Stream.Replay.retried;
    churn_fault_failed = faulted.Stream.Replay.failed;
    churn_fault_leaks = List.length faulted.Stream.Replay.quarantine;
    churn_classes =
      List.map
        (fun (cls, cs) -> (Stream.Replay.cls_name cls, cs))
        warm.Stream.Replay.classes;
  }

(* ------------------------------------------------------------------ *)
(* §TOPO: the topology-fidelity battery across generator families      *)
(* ------------------------------------------------------------------ *)

(* [time] plus the wall-clock as a value. *)
let timed label f =
  let t0 = Unix.gettimeofday () in
  let r = time label f in
  (r, Unix.gettimeofday () -. t0)

type topo_family_row = {
  tf_family : string;
  tf_gen_wall_s : float;
  tf_nodes : int;
  tf_edges : int;
  tf_score : float;  (** battery similarity vs the paper family *)
}

type topo_report = {
  topo_ases : int;
  topo_self_similarity : float;
      (** paper world compared against itself; the CI gate requires
          exactly 1.0. *)
  topo_battery_wall_s : float;  (** one battery pass on the paper world *)
  topo_families : topo_family_row list;
}

let experiment_topo ~ases ~seed =
  section "TOPO" "topology-fidelity battery across generator families";
  let conf = { (Netgen.Conf.sized ases) with Netgen.Conf.seed = seed } in
  let topo_of family =
    timed
      (Printf.sprintf "generate %s" (Netgen.Family.name family))
      (fun () -> Netgen.generate family conf (Random.State.make [| seed |]))
  in
  let summarize g = Analysis.Topometrics.summarize g in
  let paper_topo, paper_wall = topo_of Netgen.Family.Paper in
  let paper_graph = Netgen.Gentopo.as_graph paper_topo in
  let paper_sum, battery_wall =
    timed "battery (paper)" (fun () -> summarize paper_graph)
  in
  let self_similarity =
    (Analysis.Topometrics.compare paper_sum paper_sum).Analysis.Topometrics
      .score
  in
  Format.printf "paper   %a@." Analysis.Topometrics.pp_summary paper_sum;
  let rows =
    {
      tf_family = Netgen.Family.name Netgen.Family.Paper;
      tf_gen_wall_s = paper_wall;
      tf_nodes = Analysis.Topometrics.(paper_sum.nodes);
      tf_edges = Analysis.Topometrics.(paper_sum.edges);
      tf_score = 1.0;
    }
    :: List.filter_map
         (fun family ->
           if family = Netgen.Family.Paper then None
           else begin
             let topo, wall = topo_of family in
             let s = summarize (Netgen.Gentopo.as_graph topo) in
             Format.printf "%-7s %a@." (Netgen.Family.name family)
               Analysis.Topometrics.pp_summary s;
             Some
               {
                 tf_family = Netgen.Family.name family;
                 tf_gen_wall_s = wall;
                 tf_nodes = Analysis.Topometrics.(s.nodes);
                 tf_edges = Analysis.Topometrics.(s.edges);
                 tf_score =
                   (Analysis.Topometrics.compare paper_sum s)
                     .Analysis.Topometrics.score;
               }
           end)
         battery_families
  in
  Evaluation.Report.table std
    ~header:[ "family"; "gen wall"; "nodes"; "edges"; "vs paper" ]
    (List.map
       (fun r ->
         [
           r.tf_family;
           Printf.sprintf "%.0f ms" (r.tf_gen_wall_s *. 1000.0);
           string_of_int r.tf_nodes;
           string_of_int r.tf_edges;
           Printf.sprintf "%.3f" r.tf_score;
         ])
       rows);
  Format.printf "battery wall: %.3fs, paper self-similarity: %.3f@."
    battery_wall self_similarity;
  {
    topo_ases = ases;
    topo_self_similarity = self_similarity;
    topo_battery_wall_s = battery_wall;
    topo_families = rows;
  }

type scale_report = {
  scale_family : string;
  scale_ases : int;
  scale_nodes : int;
  scale_sessions : int;
  scale_plan_prefixes : int;
  scale_sampled_prefixes : int;
  scale_build_s : float;
  scale_world_fp : int;
  scale_ref_wall_s : float;
  scale_ref_events : int;
  scale_flat_wall_s : float;
  scale_flat_events : int;
  scale_cold_identical : bool;
  scale_warm_identical : bool;
  scale_warm_pairs : int;
  scale_speedup : float;
  scale_flat_events_per_sec : float;
  scale_ref_events_per_sec : float;
  scale_wall_per_prefix_ms : float;
  scale_peak_rss_kb : int;
  scale_gc_minor_words : float;
  scale_gc_promoted_words : float;
  scale_gc_minor_collections : int;
  scale_gc_major_collections : int;
}

(* Peak resident set (VmHWM, in kB) from /proc/self/status; 0 where the
   proc filesystem is unavailable. *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
      let rec go acc =
        match input_line ic with
        | exception End_of_file -> acc
        | line ->
            let acc =
              if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
                try
                  Scanf.sscanf
                    (String.sub line 6 (String.length line - 6))
                    " %d"
                    (fun v -> v)
                with Scanf.Scan_failure _ | Failure _ | End_of_file -> acc
              else acc
            in
            go acc
      in
      let v = go 0 in
      close_in ic;
      v

let experiment_scale ~ases ~seed =
  (* The flat-slab engine at scale, against the frozen pre-rewrite
     engine (Engine_reference) on the same world: identical routing
     (fingerprints and event counts, cold and warm) and a throughput
     ratio — the two numbers CI gates on.  Both engines run
     sequentially in this domain so events/sec compares engine code,
     not pool scheduling. *)
  section "SCALE"
    "flat-slab engine vs frozen reference on a paper-shaped large world";
  let conf = { (Netgen.Conf.sized ases) with Netgen.Conf.seed = seed } in
  Format.printf "%a@." Netgen.Conf.pp conf;
  let world, build_s =
    timed "SCALE build world" (fun () -> Netgen.Groundtruth.build conf)
  in
  let net = world.Netgen.Groundtruth.net in
  let nodes = Simulator.Net.node_count net in
  (* Force the CSR index once, outside both timed runs: after the first
     generation both engines read the same frozen session index. *)
  let sessions = Simulator.Net.Csr.slot_count (Simulator.Net.csr net) in
  let world_fp = Simulator.Net.structure_fingerprint net in
  let plan = world.Netgen.Groundtruth.prefix_plan in
  let step = max 1 (List.length plan / 48) in
  let samples =
    List.filteri (fun i _ -> i mod step = 0) plan
    |> List.map (fun (p, _asn, anchors) -> (p, anchors))
  in
  Format.printf
    "world: %d nodes, %d half-sessions, %d prefixes (%d sampled), structure \
     fingerprint %08x@."
    nodes sessions (List.length plan) (List.length samples)
    (world_fp land 0xffffffff);
  (* Cold sweeps are deterministic and leave the net untouched, so each
     engine runs [reps] identical sweeps and its wall is the sum of
     *per-prefix minima* across repetitions: a co-tenant burst or GC
     pause then only poisons the one ~10ms prefix it landed on, not a
     whole sweep.  Repetitions interleave the two engines so slow drift
     (frequency scaling, load) hits both equally — this is what keeps
     the CI speedup gate stable on shared runners. *)
  let reps = 5 in
  let sample_arr = Array.of_list samples in
  let nsamp = Array.length sample_arr in
  let ref_min = Array.make nsamp infinity in
  let flat_min = Array.make nsamp infinity in
  (* Each sweep starts from a settled heap: without this, major-GC debt
     left by the previous sweep is repaid inside the next one's wall. *)
  let ref_sweep () =
    Gc.full_major ();
    time "SCALE reference cold" (fun () ->
        Array.to_list
          (Array.mapi
             (fun i (p, anchors) ->
               let t0 = Unix.gettimeofday () in
               let st =
                 Simulator.Engine_reference.simulate net ~prefix:p
                   ~originators:anchors
               in
               let w = Unix.gettimeofday () -. t0 in
               if w < ref_min.(i) then ref_min.(i) <- w;
               st)
             sample_arr))
  in
  let flat_sweep () =
    Gc.full_major ();
    time "SCALE flat cold" (fun () ->
        Array.to_list
          (Array.mapi
             (fun i (p, anchors) ->
               let t0 = Unix.gettimeofday () in
               let st =
                 Simulator.Engine.simulate net ~prefix:p ~originators:anchors
               in
               let w = Unix.gettimeofday () -. t0 in
               if w < flat_min.(i) then flat_min.(i) <- w;
               st)
             sample_arr))
  in
  let ref_states = ref_sweep () in
  let gc0 = Gc.quick_stat () in
  let flat_states = flat_sweep () in
  let gc1 = Gc.quick_stat () in
  for _ = 2 to reps do
    ignore (ref_sweep ());
    ignore (flat_sweep ())
  done;
  let ref_wall = Array.fold_left ( +. ) 0.0 ref_min in
  let flat_wall = Array.fold_left ( +. ) 0.0 flat_min in
  let ref_events =
    List.fold_left
      (fun acc st -> acc + Simulator.Engine_reference.events st)
      0 ref_states
  in
  let flat_events =
    List.fold_left (fun acc st -> acc + Simulator.Engine.events st) 0 flat_states
  in
  let cold_identical =
    ref_events = flat_events
    && List.for_all2
         (fun rst fst_ ->
           Simulator.Engine_reference.state_fingerprint rst
           = Simulator.Engine.state_fingerprint fst_
           && Simulator.Engine_reference.events rst
              = Simulator.Engine.events fst_
           && Simulator.Engine_reference.converged rst
              = Simulator.Engine.converged fst_)
         ref_states flat_states
  in
  (* Warm resumption: one per-prefix import-MED override (which marks
     the announcing peer touched), resumed by both engines from their
     cold fixed points, then reverted.  Fingerprints must agree pair by
     pair here too — the warm path copies and mutates the slab
     directly, so it gets its own gate. *)
  let touch_node =
    let rec find u =
      if u >= nodes then 0
      else if Simulator.Net.session_count_of net u > 0 then u
      else find (u + 1)
    in
    find 0
  in
  let warm_pairs = ref 0 in
  let warm_identical = ref true in
  let (), _warm_wall =
    timed "SCALE warm verify" (fun () ->
        List.iter2
          (fun (p, anchors) (rst, fst_) ->
            Simulator.Net.set_import_med net touch_node 0 p 7;
            let rw =
              Simulator.Engine_reference.simulate net ~from:rst ~prefix:p
                ~originators:anchors
            in
            let fw =
              Simulator.Engine.simulate net ~from:fst_ ~prefix:p
                ~originators:anchors
            in
            Simulator.Net.clear_import_med net touch_node 0 p;
            Simulator.Net.clear_touched net p;
            incr warm_pairs;
            if
              Simulator.Engine_reference.state_fingerprint rw
              <> Simulator.Engine.state_fingerprint fw
              || Simulator.Engine_reference.events rw
                 <> Simulator.Engine.events fw
            then warm_identical := false)
          samples
          (List.combine ref_states flat_states))
  in
  Obs.Metrics.record_gc ();
  let rss = peak_rss_kb () in
  let per_sec events wall =
    if wall > 0.0 then float_of_int events /. wall else 0.0
  in
  let speedup = if flat_wall > 0.0 then ref_wall /. flat_wall else 0.0 in
  (* [gc0..gc1] brackets exactly the first flat sweep. *)
  let gc_minor_words = gc1.Gc.minor_words -. gc0.Gc.minor_words in
  let gc_promoted_words = gc1.Gc.promoted_words -. gc0.Gc.promoted_words in
  let gc_minor_collections =
    gc1.Gc.minor_collections - gc0.Gc.minor_collections
  in
  let gc_major_collections =
    gc1.Gc.major_collections - gc0.Gc.major_collections
  in
  let n_samples = List.length samples in
  let wall_per_prefix_ms =
    if n_samples = 0 then 0.0 else 1000.0 *. flat_wall /. float_of_int n_samples
  in
  Evaluation.Report.kv std
    [
      ("ASes / nodes / half-sessions",
       Printf.sprintf "%d / %d / %d" ases nodes sessions);
      ("world build", Printf.sprintf "%.1fs" build_s);
      ( "reference engine",
        Printf.sprintf "%.2fs, %d events (%.0f events/s)" ref_wall ref_events
          (per_sec ref_events ref_wall) );
      ( "flat engine",
        Printf.sprintf "%.2fs, %d events (%.0f events/s)" flat_wall
          flat_events
          (per_sec flat_events flat_wall) );
      ("flat wall per prefix", Printf.sprintf "%.2fms" wall_per_prefix_ms);
      ("speedup (ref/flat)", Printf.sprintf "%.2fx" speedup);
      ("cold fingerprints identical", string_of_bool cold_identical);
      ( "warm fingerprints identical",
        Printf.sprintf "%b (%d pairs)" !warm_identical !warm_pairs );
      ("peak RSS", Printf.sprintf "%d kB" rss);
      ( "flat-run GC",
        Printf.sprintf "%.0f minor words, %d minor / %d major collections"
          gc_minor_words gc_minor_collections gc_major_collections );
    ];
  {
    scale_family = Netgen.Family.to_string conf.Netgen.Conf.family;
    scale_ases = ases;
    scale_nodes = nodes;
    scale_sessions = sessions;
    scale_plan_prefixes = List.length plan;
    scale_sampled_prefixes = n_samples;
    scale_build_s = build_s;
    scale_world_fp = world_fp;
    scale_ref_wall_s = ref_wall;
    scale_ref_events = ref_events;
    scale_flat_wall_s = flat_wall;
    scale_flat_events = flat_events;
    scale_cold_identical = cold_identical;
    scale_warm_identical = !warm_identical;
    scale_warm_pairs = !warm_pairs;
    scale_speedup = speedup;
    scale_flat_events_per_sec = per_sec flat_events flat_wall;
    scale_ref_events_per_sec = per_sec ref_events ref_wall;
    scale_wall_per_prefix_ms = wall_per_prefix_ms;
    scale_peak_rss_kb = rss;
    scale_gc_minor_words = gc_minor_words;
    scale_gc_promoted_words = gc_promoted_words;
    scale_gc_minor_collections = gc_minor_collections;
    scale_gc_major_collections = gc_major_collections;
  }

(* ------------------------------------------------------------------ *)
(* Machine-readable results (hand-rolled JSON; no extra dependency)    *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_num f =
  if Float.is_nan f || Float.is_integer f then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6f" f

let write_bench_json path ~scale ~seed ~jobs warm check obs serve churn
    scale_rep topo =
  let b = Buffer.create 4096 in
  let field k v = Printf.bprintf b "  %S: %s,\n" k v in
  Buffer.add_string b "{\n";
  field "scale" (json_num scale);
  field "seed" (string_of_int seed);
  field "jobs" (string_of_int jobs);
  (match topo with
  | None -> field "topo" "null"
  | Some t ->
      let fams =
        String.concat ", "
          (List.map
             (fun r ->
               Printf.sprintf
                 "\"%s\": {\"gen_wall_s\": %.6f, \"nodes\": %d, \"edges\": \
                  %d, \"score_vs_paper\": %.6f}"
                 (json_escape r.tf_family) r.tf_gen_wall_s r.tf_nodes
                 r.tf_edges r.tf_score)
             t.topo_families)
      in
      field "topo"
        (Printf.sprintf
           "{\"ases\": %d, \"self_similarity\": %s, \"battery_wall_s\": \
            %.3f, \"families\": {%s}}"
           t.topo_ases (json_num t.topo_self_similarity)
           t.topo_battery_wall_s fams));
  (match scale_rep with
  | None -> field "scale_world" "null"
  | Some s ->
      field "scale_world"
        (Printf.sprintf
           "{\"family\": \"%s\", \"ases\": %d, \"nodes\": %d, \
            \"half_sessions\": %d, \
            \"prefixes\": %d, \"sampled_prefixes\": %d, \"build_s\": %.3f, \
            \"world_fingerprint\": %d, \
            \"reference\": {\"wall_s\": %.3f, \"events\": %d, \
            \"events_per_sec\": %.1f}, \
            \"flat\": {\"wall_s\": %.3f, \"events\": %d, \
            \"events_per_sec\": %.1f, \"wall_per_prefix_ms\": %.3f}, \
            \"speedup\": %.3f, \"cold_identical\": %b, \
            \"warm_identical\": %b, \"warm_pairs\": %d, \
            \"peak_rss_kb\": %d, \
            \"gc\": {\"minor_words\": %.0f, \"promoted_words\": %.0f, \
            \"minor_collections\": %d, \"major_collections\": %d}}"
           (json_escape s.scale_family) s.scale_ases s.scale_nodes
           s.scale_sessions s.scale_plan_prefixes
           s.scale_sampled_prefixes s.scale_build_s s.scale_world_fp
           s.scale_ref_wall_s s.scale_ref_events s.scale_ref_events_per_sec
           s.scale_flat_wall_s s.scale_flat_events s.scale_flat_events_per_sec
           s.scale_wall_per_prefix_ms s.scale_speedup s.scale_cold_identical
           s.scale_warm_identical s.scale_warm_pairs s.scale_peak_rss_kb
           s.scale_gc_minor_words s.scale_gc_promoted_words
           s.scale_gc_minor_collections s.scale_gc_major_collections));
  (match serve with
  | None -> field "serve" "null"
  | Some s ->
      field "serve"
        (Printf.sprintf
           "{\"prefixes\": %d, \"snapshot_build_s\": %.3f, \"queries\": %d, \
            \"queries_per_sec\": %.1f, \"latency_p50_us\": %d, \
            \"latency_p99_us\": %d, \"deadline_misses\": %d, \
            \"whatif_warm_s\": %.3f, \"whatif_cold_s\": %.3f, \
            \"whatif_resume_hits\": %d}"
           s.serve_prefixes s.snapshot_build_s s.serve_queries
           s.queries_per_sec s.latency_p50_us s.latency_p99_us
           s.serve_deadline_misses s.whatif_warm_s s.whatif_cold_s
           s.whatif_resume_hits));
  Printf.bprintf b "  \"sections\": [\n";
  let sections = List.rev !timings in
  List.iteri
    (fun i (label, wall) ->
      Printf.bprintf b "    {\"label\": \"%s\", \"wall_s\": %.3f}%s\n"
        (json_escape label) wall
        (if i = List.length sections - 1 then "" else ","))
    sections;
  Printf.bprintf b "  ],\n";
  (match warm with
  | None -> Printf.bprintf b "  \"warm\": null,\n"
  | Some w ->
      Printf.bprintf b "  \"warm\": {\n";
      Printf.bprintf b "    \"cold\": {\"wall_s\": %.3f, \"events\": %d, \"allocated_bytes\": %.0f},\n"
        w.cold_wall w.cold_events w.cold_alloc;
      Printf.bprintf b "    \"warm\": {\"wall_s\": %.3f, \"events\": %d, \"allocated_bytes\": %.0f},\n"
        w.warm_wall w.warm_events w.warm_alloc;
      Printf.bprintf b "    \"event_ratio\": %s,\n"
        (json_num
           (if w.cold_events = 0 then 0.0
            else float_of_int w.warm_events /. float_of_int w.cold_events));
      Printf.bprintf b "    \"wall_ratio\": %s,\n"
        (json_num (if w.cold_wall > 0.0 then w.warm_wall /. w.cold_wall else 0.0));
      Printf.bprintf b "    \"warm_runs\": %d,\n"
        w.warm_stats.Simulator.Warm.warm_runs;
      Printf.bprintf b "    \"cold_runs\": %d,\n"
        w.warm_stats.Simulator.Warm.cold_runs;
      Printf.bprintf b "    \"identical_results\": %b,\n" w.identical;
      Printf.bprintf b "    \"verified\": %d,\n"
        w.verify_stats.Simulator.Warm.verified;
      Printf.bprintf b "    \"divergences\": %d,\n"
        w.verify_stats.Simulator.Warm.divergences;
      Printf.bprintf b
        "    \"pool\": {\"prefixes\": %d, \"events\": %d, \"non_converged\": \
         %d, \"retried\": %d, \"failed\": %d, \"wall_s\": %.3f}\n"
        w.pool.Simulator.Pool.prefixes w.pool.Simulator.Pool.events
        w.pool.Simulator.Pool.non_converged w.pool.Simulator.Pool.retried
        w.pool.Simulator.Pool.failed w.pool.Simulator.Pool.wall;
      Printf.bprintf b "  },\n");
  (match check with
  | None -> Printf.bprintf b "  \"check\": null,\n"
  | Some c ->
      Printf.bprintf b "  \"check\": {\n";
      Printf.bprintf b "    \"off_wall_s\": %.3f,\n" c.off_wall;
      Printf.bprintf b "    \"on_wall_s\": %.3f,\n" c.on_wall;
      Printf.bprintf b "    \"overhead_on_vs_off\": %s,\n"
        (json_num c.overhead_ratio);
      Printf.bprintf b "    \"off_vs_warm_ratio\": %s,\n"
        (json_num c.off_vs_warm);
      Printf.bprintf b "    \"violations\": %d,\n" c.check_violations;
      Printf.bprintf b "    \"lint_errors\": %d,\n" c.lint_errors;
      Printf.bprintf b "    \"race_wall_s\": %.3f,\n" c.race_wall;
      Printf.bprintf b "    \"overhead_race_vs_off\": %s,\n"
        (json_num c.race_overhead);
      Printf.bprintf b "    \"race_findings\": %d\n" c.race_findings;
      Printf.bprintf b "  },\n");
  (match obs with
  | None -> Printf.bprintf b "  \"obs\": null,\n"
  | Some o ->
      Printf.bprintf b "  \"obs\": {\n";
      Printf.bprintf b "    \"trace_off_wall_s\": %.3f,\n" o.trace_off_wall;
      Printf.bprintf b "    \"off_vs_warm_ratio\": %s,\n"
        (json_num o.obs_off_vs_warm);
      Printf.bprintf b "    \"events_drained\": %d,\n" o.events_drained;
      Printf.bprintf b "    \"pool_tasks\": %d,\n" o.pool_tasks;
      Printf.bprintf b "    \"refiner_iterations\": %d,\n"
        o.refiner_iterations;
      Printf.bprintf b "    \"metrics\": %s\n" o.metrics_json;
      Printf.bprintf b "  },\n");
  (match churn with
  | None -> Printf.bprintf b "  \"churn\": null\n"
  | Some c ->
      Printf.bprintf b "  \"churn\": {\n";
      Printf.bprintf b "    \"events\": %d,\n" c.churn_events;
      Printf.bprintf b "    \"rejected\": %d,\n" c.churn_rejected;
      Printf.bprintf b
        "    \"warm\": {\"engine_events\": %d, \"wall_s\": %.3f, \
         \"resumes\": %d},\n"
        c.churn_warm_events c.churn_warm_wall c.churn_warm_resumes;
      Printf.bprintf b
        "    \"cold\": {\"engine_events\": %d, \"wall_s\": %.3f},\n"
        c.churn_cold_events c.churn_cold_wall;
      Printf.bprintf b "    \"event_ratio\": %s,\n"
        (json_num
           (if c.churn_cold_events = 0 then 0.0
            else
              float_of_int c.churn_warm_events
              /. float_of_int c.churn_cold_events));
      Printf.bprintf b "    \"identical_results\": %b,\n" c.churn_identical;
      Printf.bprintf b "    \"quarantine_leaks\": %d,\n"
        c.churn_quarantine_leaks;
      Printf.bprintf b "    \"polluted_ases\": %d,\n" c.churn_polluted;
      Printf.bprintf b
        "    \"faults\": {\"retried\": %d, \"failed\": %d, \
         \"quarantine_leaks\": %d},\n"
        c.churn_fault_retried c.churn_fault_failed c.churn_fault_leaks;
      Printf.bprintf b "    \"classes\": {";
      List.iteri
        (fun i (name, cs) ->
          Printf.bprintf b
            "%s\"%s\": {\"events\": %d, \"prefixes\": %d, \"engine_events\": \
             %d, \"warm\": %d, \"cold\": %d, \"ases_shifted\": %d, \
             \"polluted\": %d}"
            (if i = 0 then "" else ", ")
            (json_escape name) cs.Stream.Replay.cs_events
            cs.Stream.Replay.cs_prefixes cs.Stream.Replay.cs_engine_events
            cs.Stream.Replay.cs_warm cs.Stream.Replay.cs_cold
            cs.Stream.Replay.cs_ases_shifted cs.Stream.Replay.cs_polluted)
        c.churn_classes;
      Printf.bprintf b "}\n";
      Printf.bprintf b "  }\n");
  Buffer.add_string b "}\n";
  let oc = open_out path in
  Buffer.output_buffer oc b;
  close_out oc;
  Format.printf "wrote %s@." path

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks                                                    *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  section "MICRO" "bechamel micro-benchmarks of the hot paths";
  (* Fixtures. *)
  let tiny_world =
    Netgen.Groundtruth.build { Netgen.Conf.tiny with Netgen.Conf.seed = 3 }
  in
  let tiny_data = Netgen.Groundtruth.observe tiny_world in
  let prepared = Core.prepare tiny_data in
  let model = Asmodel.Qrmodel.initial prepared.Core.graph in
  let some_prefix = fst (List.hd model.Asmodel.Qrmodel.prefixes) in
  let line =
    "TABLE_DUMP2|1131867000|B|12.0.1.63|7018|3.0.0.0/8|7018 701 703|IGP|12.0.1.63|100|0|7018:5000|NAG||"
  in
  let routes =
    List.init 8 (fun i ->
        {
          Simulator.Rattr.path = Array.make ((i mod 4) + 1) (i + 2);
          lpref = 100;
          med = 100 - i;
          igp = i;
          from_node = i;
          from_ip = 1000 - i;
          from_session = i;
          learned = Simulator.Rattr.From_ebgp;
          learned_class = -1;
        })
  in
  let paths = Rib.all_paths tiny_data in
  let tests =
    [
      Test.make ~name:"decision: select over 8 candidates"
        (Staged.stage (fun () ->
             ignore (Simulator.Decision.select Simulator.Decision.full_steps routes)));
      Test.make ~name:"mrt: parse one dump line"
        (Staged.stage (fun () -> ignore (Mrt.record_of_line line)));
      Test.make ~name:"engine: per-prefix convergence (router-level world)"
        (Staged.stage (fun () ->
             ignore (Netgen.Groundtruth.simulate tiny_world some_prefix)));
      Test.make ~name:"engine: per-prefix convergence (quasi-router net)"
        (Staged.stage (fun () ->
             ignore (Asmodel.Qrmodel.simulate model some_prefix)));
      Test.make ~name:"topology: graph extraction from paths"
        (Staged.stage (fun () -> ignore (Topology.Extract.graph_of_paths paths)));
      Test.make ~name:"refine: full refinement (tiny training set)"
        (Staged.stage (fun () ->
             let m = Asmodel.Qrmodel.initial prepared.Core.graph in
             ignore (Refine.Refiner.refine m ~training:prepared.Core.data)));
    ]
  in
  let benchmark test =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    let instance = Toolkit.Instance.monotonic_clock in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~stabilize:true ()
    in
    let raw = Benchmark.all cfg [ instance ] test in
    Analyze.all ols instance raw
  in
  let results = benchmark (Test.make_grouped ~name:"micro" tests) in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols ->
      let value =
        match Analyze.OLS.estimates ols with
        | Some [ est ] -> est
        | Some _ | None -> nan
      in
      rows := (name, value) :: !rows)
    results;
  let rows = List.sort compare !rows in
  Evaluation.Report.table std ~header:[ "benchmark"; "time/run" ]
    (List.map
       (fun (name, ns) ->
         let human =
           if Float.is_nan ns then "n/a"
           else if ns > 1e9 then Printf.sprintf "%.2f s" (ns /. 1e9)
           else if ns > 1e6 then Printf.sprintf "%.2f ms" (ns /. 1e6)
           else if ns > 1e3 then Printf.sprintf "%.2f us" (ns /. 1e3)
           else Printf.sprintf "%.0f ns" ns
         in
         [ name; human ])
       rows)

(* ------------------------------------------------------------------ *)

let () =
  (* Every RD_* knob (--jobs/--warm/--check/--faults/--trace) is parsed
     by Simulator.Runtime — env first, argv on top; only the
     bench-specific flags below are handled here, on the leftover
     arguments. *)
  let args =
    match
      Simulator.Runtime.with_argv
        (Simulator.Runtime.of_env ())
        (List.tl (Array.to_list Sys.argv))
    with
    | Ok (rt, rest) ->
        Simulator.Runtime.set rt;
        rest
    | Error msg ->
        prerr_endline msg;
        exit 1
  in
  let has flag = List.mem flag args in
  let value flag default =
    let rec go = function
      | f :: v :: _ when f = flag -> v
      | _ :: rest -> go rest
      | [] -> default
    in
    go args
  in
  let quick = has "--quick" in
  let scale = float_of_string (value "--scale" (if quick then "0.35" else "1.0")) in
  if not (Float.is_finite scale) || scale <= 0.0 then begin
    Printf.eprintf "bench: --scale expects a positive number, got %g\n" scale;
    exit 1
  end;
  let seed = int_of_string (value "--seed" "42") in
  let scale_ases =
    let raw = value "--scale-ases" (if quick then "1500" else "5000") in
    match int_of_string_opt raw with
    | Some n when n >= 50 -> n
    | Some _ | None ->
        Printf.eprintf "bench: --scale-ases expects an integer >= 50, got %S\n"
          raw;
        exit 1
  in
  Format.printf "simulation workers: %d (RD_JOBS/--jobs to change)@."
    (Simulator.Pool.default_jobs ());
  Format.printf "runtime: %a@." Simulator.Runtime.pp
    (Simulator.Runtime.current ());
  let t_start = Unix.gettimeofday () in
  let warm_report = ref None in
  let build_world () =
    let conf = { (Netgen.Conf.scaled scale) with Netgen.Conf.seed = seed } in
    section "WORLD" "synthetic ground truth (DESIGN.md 2)";
    Format.printf "%a@." Netgen.Conf.pp conf;
    let world = time "build" (fun () -> Netgen.Groundtruth.build conf) in
    Format.printf "%a@." Netgen.Groundtruth.pp_summary world;
    let data = time "observe" (fun () -> Netgen.Groundtruth.observe world) in
    Format.printf "observed entries: %d@." (Rib.size data);
    let prepared = Core.prepare data in
    Format.printf "prepared: %a@.core graph: %a@."
      Topology.Extract.pp_classification prepared.Core.classification
      Topology.Asgraph.pp_stats prepared.Core.graph;
    (data, prepared)
  in
  let check_report = ref None in
  let obs_report = ref None in
  let serve_report = ref None in
  let churn_report = ref None in
  let scale_report = ref None in
  let topo_report = ref None in
  let topo_ases =
    let raw = value "--topo-ases" "500" in
    match int_of_string_opt raw with
    | Some n when n >= 50 -> n
    | Some _ | None ->
        Printf.eprintf "bench: --topo-ases expects an integer >= 50, got %S\n"
          raw;
        exit 1
  in
  let robust_ases =
    let raw = value "--robust-ases" "500" in
    match int_of_string_opt raw with
    | Some n when n >= 50 -> n
    | Some _ | None ->
        Printf.eprintf
          "bench: --robust-ases expects an integer >= 50, got %S\n" raw;
        exit 1
  in
  let warm_and_check prepared =
    let warm = experiment_warm prepared in
    warm_report := Some warm;
    check_report := Some (experiment_check prepared warm);
    obs_report := Some (experiment_obs prepared warm);
    serve_report := Some (experiment_serve prepared);
    churn_report := Some (experiment_churn prepared)
  in
  if has "--scale-only" then
    scale_report := Some (experiment_scale ~ases:scale_ases ~seed)
  else if has "--topo-only" then
    topo_report := Some (experiment_topo ~ases:topo_ases ~seed)
  else if has "--robust-only" then experiment_robustness ~ases:robust_ases
  else if has "--warm-only" then begin
    let _data, prepared = build_world () in
    warm_and_check prepared
  end
  else if not (has "--micro-only") then begin
    let data, prepared = build_world () in
    experiment_f2_t1 data;
    experiment_inflation prepared;
    ignore (experiment_t2 prepared);
    ignore (experiment_train_predict prepared ~seed:7);
    experiment_parallel prepared;
    warm_and_check prepared;
    experiment_t5 prepared ~seed:7;
    experiment_t6 prepared ~seed:7;
    let ablation_conf =
      { (Netgen.Conf.scaled (scale *. 0.35)) with Netgen.Conf.seed = seed }
    in
    experiment_ablations ablation_conf;
    experiment_faults ablation_conf;
    experiment_robustness ~ases:robust_ases;
    if has "--sweep" then experiment_sweep ablation_conf;
    topo_report := Some (experiment_topo ~ases:topo_ases ~seed);
    scale_report := Some (experiment_scale ~ases:scale_ases ~seed)
  end;
  if
    (not (has "--no-micro"))
    && (not (has "--warm-only"))
    && (not (has "--scale-only"))
    && (not (has "--topo-only"))
    && not (has "--robust-only")
  then micro ();
  write_bench_json
    (value "--json" "BENCH.json")
    ~scale ~seed
    ~jobs:(Simulator.Pool.default_jobs ())
    !warm_report !check_report !obs_report !serve_report !churn_report
    !scale_report !topo_report;
  Obs.Trace.flush std;
  Format.printf "@.[total: %.1fs]@." (Unix.gettimeofday () -. t_start)
