(* What-if study: de-peering two ASes (paper §1's motivating question).

   Builds a refined AS-routing model from observed dumps, then removes
   the link between the two busiest adjacent transit ASes and reports
   which prefixes shift paths and which ASes lose reachability.  This is
   exactly the workflow the paper proposes the model for: predicting the
   effect of a change *before* making it ("tweak and pray" no more).

   Run with: dune exec examples/what_if.exe *)


let () =
  let conf = { (Netgen.Conf.scaled 0.3) with Netgen.Conf.seed = 23 } in
  Format.printf "Generating world and observing dumps...@.";
  let world = Netgen.Groundtruth.build conf in
  let data = Netgen.Groundtruth.observe world in

  Format.printf "Building the refined model from all observation points...@.";
  let prepared = Core.prepare data in
  let result = Core.build prepared ~training:prepared.Core.data in
  Format.printf "training: %d/%d paths matched in %d iterations@."
    result.Refine.Refiner.matched result.Refine.Refiner.total
    result.Refine.Refiner.iterations;
  let model = result.Refine.Refiner.model in

  (* Pick the busiest edge of the core graph: the pair of adjacent ASes
     with the highest combined degree. *)
  let graph = prepared.Core.graph in
  let a, b =
    List.fold_left
      (fun (ba, bb) (x, y) ->
        let score e f =
          Topology.Asgraph.degree graph e + Topology.Asgraph.degree graph f
        in
        if score x y > score ba bb then (x, y) else (ba, bb))
      (List.hd (Topology.Asgraph.edges graph))
      (Topology.Asgraph.edges graph)
  in
  Format.printf "@.De-peering AS%d -- AS%d (busiest core link)...@." a b;

  let before = Asmodel.Whatif.snapshot model in
  let touched = Asmodel.Whatif.disable_as_link model a b in
  Format.printf "disabled %d half-sessions@." touched;
  let after = Asmodel.Whatif.snapshot model in
  let diff = Asmodel.Whatif.diff before after in
  Asmodel.Whatif.pp_diff Format.std_formatter diff;

  (* Revert and verify the world is back to normal. *)
  ignore (Asmodel.Whatif.enable_as_link model a b);
  let restored = Asmodel.Whatif.snapshot model in
  let diff_back = Asmodel.Whatif.diff before restored in
  Format.printf
    "@.after re-enabling the link: %d prefixes differ (the revert is an \
     exact@.save/restore, so refinement filters on that link survive and \
     this is 0).@."
    diff_back.Asmodel.Whatif.prefixes_affected
