(* Incremental model maintenance (paper §4.7).

   A provider keeps a refined AS-routing model around and, as new
   prefixes appear in its feeds, extends the model without retraining:
   because every refinement policy is keyed by prefix, fitting the new
   observations is local to that prefix.  This example
     1. trains a model on the observations of MOST prefixes,
     2. verifies the held-back prefix predicts only partially,
     3. incrementally fits the held-back observations,
     4. shows the fit is exact and nothing else regressed,
     5. round-trips the extended model through its file format.

   Run with: dune exec examples/incremental.exe *)

open Bgp

let () =
  let conf = { (Netgen.Conf.scaled 0.25) with Netgen.Conf.seed = 77 } in
  Format.printf "Generating world and observing dumps...@.";
  let world = Netgen.Groundtruth.build conf in
  let data = Netgen.Groundtruth.observe world in
  let prepared = Core.prepare data in

  (* Hold back the prefix with the most observed paths. *)
  let by_prefix = Rib.by_prefix prepared.Core.data in
  let held_back, _ =
    Prefix.Map.fold
      (fun p entries (best, n) ->
        if List.length entries > n then (Some p, List.length entries)
        else (best, n))
      by_prefix (None, 0)
  in
  let held_back = Option.get held_back in
  let training =
    Rib.of_entries
      (List.filter
         (fun (e : Rib.entry) -> not (Prefix.equal e.prefix held_back))
         (Rib.entries prepared.Core.data))
  in
  let held_data = Rib.of_entries (Prefix.Map.find held_back by_prefix) in
  Format.printf "held back %a with %d observed entries@." Prefix.pp held_back
    (Rib.size held_data);

  let result = Core.build prepared ~training in
  Format.printf "base model: %d iterations, converged %b@."
    result.Refine.Refiner.iterations result.Refine.Refiner.converged;
  let model = result.Refine.Refiner.model in

  (* Before the extension: the held-back prefix is predicted only from
     topology. *)
  let before =
    Refine.Verify.verify model ~states:(Hashtbl.create 8) held_data
  in
  Format.printf "@.held-back prefix before extension: %d/%d paths exact@."
    before.Refine.Verify.exact before.Refine.Verify.checked;

  (* Fit the new observations. *)
  let outcome = Refine.Incremental.add_observations model held_data in
  Format.printf
    "incremental fit: exact=%b, +%d quasi-routers, filters +%d/-%d, MED rules \
     +%d/-%d@."
    outcome.Refine.Incremental.result.Refine.Refiner.converged
    outcome.Refine.Incremental.new_quasi_routers
    outcome.Refine.Incremental.filters.Refine.Incremental.added
    outcome.Refine.Incremental.filters.Refine.Incremental.removed
    outcome.Refine.Incremental.med_rules.Refine.Incremental.added
    outcome.Refine.Incremental.med_rules.Refine.Incremental.removed;

  (* Nothing else regressed: the original training data still matches. *)
  let regression =
    Refine.Verify.verify model ~states:(Hashtbl.create 64) training
  in
  Format.printf "original training after extension: %d/%d exact (%s)@."
    regression.Refine.Verify.exact regression.Refine.Verify.checked
    (if Refine.Verify.is_exact regression then "no regression" else "REGRESSED");

  (* The artifact survives its file format. *)
  let tmp = Filename.temp_file "incremental" ".model" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Asmodel.Serialize.save tmp model;
      match Asmodel.Serialize.load tmp with
      | Error e -> Format.printf "model reload failed: %s@." e
      | Ok reloaded ->
          let check =
            Refine.Verify.verify reloaded ~states:(Hashtbl.create 8) held_data
          in
          Format.printf "reloaded model still fits the new prefix: %d/%d exact@."
            check.Refine.Verify.exact check.Refine.Verify.checked)
