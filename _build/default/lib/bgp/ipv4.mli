(** IPv4 addresses.

    Addresses are stored as non-negative 32-bit values inside a native
    [int] (OCaml ints are 63-bit, so the full unsigned range fits).  The
    module provides parsing, printing, masking and the address arithmetic
    the rest of the library needs; nothing here depends on the host
    network stack. *)

type t = private int
(** An IPv4 address in host byte order, [0] .. [2^32 - 1]. *)

val of_int : int -> t
(** [of_int n] is the address with numeric value [n land 0xFFFFFFFF]. *)

val to_int : t -> int
(** Numeric value of the address. *)

val of_octets : int -> int -> int -> int -> t
(** [of_octets a b c d] is [a.b.c.d].  Raises [Invalid_argument] if any
    octet is outside [0..255]. *)

val octets : t -> int * int * int * int
(** The four dotted-quad octets, most significant first. *)

val of_string : string -> t option
(** Parse a dotted-quad address; [None] on malformed input. *)

val of_string_exn : string -> t
(** Like {!of_string} but raises [Invalid_argument] on malformed input. *)

val to_string : t -> string
(** Dotted-quad rendering, e.g. ["192.0.2.1"]. *)

val pp : Format.formatter -> t -> unit
(** Pretty-printer (dotted quad). *)

val compare : t -> t -> int
(** Total order by numeric value; the BGP tie-break ("lowest neighbour
    IP") uses this order. *)

val equal : t -> t -> bool

val mask_bits : int -> t
(** [mask_bits n] is the netmask with [n] leading one bits,
    [0 <= n <= 32].  Raises [Invalid_argument] otherwise. *)

val apply_mask : int -> t -> t
(** [apply_mask len a] zeroes all but the first [len] bits of [a]. *)

val succ : t -> t
(** Next address, wrapping at [255.255.255.255]. *)
