type t = int

let max_value = 0xFFFFFFFF

let of_int n = n land max_value

let to_int a = a

let of_octets a b c d =
  let check o =
    if o < 0 || o > 255 then invalid_arg "Ipv4.of_octets: octet out of range"
  in
  check a;
  check b;
  check c;
  check d;
  (a lsl 24) lor (b lsl 16) lor (c lsl 8) lor d

let octets a =
  ((a lsr 24) land 0xFF, (a lsr 16) land 0xFF, (a lsr 8) land 0xFF, a land 0xFF)

let to_string a =
  let o1, o2, o3, o4 = octets a in
  Printf.sprintf "%d.%d.%d.%d" o1 o2 o3 o4

let pp ppf a = Format.pp_print_string ppf (to_string a)

(* Hand-rolled parser: no allocation beyond the result, rejects anything
   that is not exactly four dot-separated decimal octets. *)
let of_string s =
  let len = String.length s in
  let rec octet i acc digits =
    if i >= len then (i, acc, digits)
    else
      match s.[i] with
      | '0' .. '9' when digits < 3 ->
          octet (i + 1) ((acc * 10) + Char.code s.[i] - Char.code '0') (digits + 1)
      | _ -> (i, acc, digits)
  in
  let parse_octet i =
    let j, v, digits = octet i 0 0 in
    if digits = 0 || v > 255 then None else Some (j, v)
  in
  let ( let* ) = Option.bind in
  let expect_dot i = if i < len && s.[i] = '.' then Some (i + 1) else None in
  let* i1, a = parse_octet 0 in
  let* i1 = expect_dot i1 in
  let* i2, b = parse_octet i1 in
  let* i2 = expect_dot i2 in
  let* i3, c = parse_octet i2 in
  let* i3 = expect_dot i3 in
  let* i4, d = parse_octet i3 in
  if i4 = len then Some (of_octets a b c d) else None

let of_string_exn s =
  match of_string s with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Ipv4.of_string_exn: %S" s)

let compare (a : int) (b : int) = Stdlib.compare a b

let equal (a : int) (b : int) = a = b

let mask_bits n =
  if n < 0 || n > 32 then invalid_arg "Ipv4.mask_bits"
  else if n = 0 then 0
  else max_value lxor ((1 lsl (32 - n)) - 1)

let apply_mask len a = a land mask_bits len

let succ a = (a + 1) land max_value
