type t = int

let pp ppf a = Format.fprintf ppf "AS%d" a

let compare (a : int) (b : int) = Stdlib.compare a b

let equal (a : int) (b : int) = a = b

let of_string s =
  if String.length s = 0 then None
  else if not (String.for_all (fun c -> c >= '0' && c <= '9') s) then None
  else
    match int_of_string_opt s with
    | Some n when n >= 1 -> Some n
    | Some _ | None -> None

let to_string = string_of_int

let max_prefixes = 16

(* Synthetic origin prefixes live under 10.0.0.0/8 .. 25.0.0.0/8: the
   i-th prefix of AS n is (10+i).(n lsr 8).(n land 0xFF).0/24.  This
   keeps prefixes readable in dumps and trivially invertible. *)
let nth_prefix asn i =
  if asn < 1 || asn > 0xFFFF then invalid_arg "Asn.nth_prefix: asn"
  else if i < 0 || i >= max_prefixes then invalid_arg "Asn.nth_prefix: index"
  else
    Prefix.make
      (Ipv4.of_octets (10 + i) ((asn lsr 8) land 0xFF) (asn land 0xFF) 0)
      24

let origin_prefix asn = nth_prefix asn 0

let of_origin_prefix p =
  if Prefix.length p <> 24 then None
  else
    let o1, o2, o3, _ = Ipv4.octets (Prefix.network p) in
    if o1 < 10 || o1 >= 10 + max_prefixes then None
    else
      let asn = (o2 lsl 8) lor o3 in
      if asn >= 1 then Some asn else None

let router_ip asn idx =
  if asn < 1 || asn > 0xFFFF then invalid_arg "Asn.router_ip: asn out of range"
  else if idx < 0 || idx > 0xFFFF then invalid_arg "Asn.router_ip: idx out of range"
  else Ipv4.of_int ((asn lsl 16) lor idx)

let of_router_ip ip =
  let v = Ipv4.to_int ip in
  ((v lsr 16) land 0xFFFF, v land 0xFFFF)

module Set = Set.Make (Int)
module Map = Map.Make (Int)
