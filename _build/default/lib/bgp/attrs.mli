(** BGP route attributes.

    Only the attributes that participate in the paper's decision process
    or appear in table dumps are modelled: ORIGIN, NEXT_HOP, LOCAL_PREF,
    MULTI_EXIT_DISC and COMMUNITY. *)

type origin = Igp | Egp | Incomplete

val origin_to_string : origin -> string
(** ["IGP"], ["EGP"], ["INCOMPLETE"] — the dump spellings. *)

val origin_of_string : string -> origin option

type community = int * int
(** [(asn, value)], rendered ["asn:value"]. *)

type t = {
  origin : origin;
  next_hop : Ipv4.t;
  local_pref : int;
  med : int;
  communities : community list;
}

val default : next_hop:Ipv4.t -> t
(** ORIGIN [Igp], LOCAL_PREF 100, MED 0, no communities. *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val community_to_string : community -> string

val community_of_string : string -> community option

val communities_to_string : community list -> string
(** Space-separated, empty string for []. *)

val communities_of_string : string -> community list option
