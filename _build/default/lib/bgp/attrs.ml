type origin = Igp | Egp | Incomplete

let origin_to_string = function
  | Igp -> "IGP"
  | Egp -> "EGP"
  | Incomplete -> "INCOMPLETE"

let origin_of_string = function
  | "IGP" -> Some Igp
  | "EGP" -> Some Egp
  | "INCOMPLETE" -> Some Incomplete
  | _ -> None

type community = int * int

type t = {
  origin : origin;
  next_hop : Ipv4.t;
  local_pref : int;
  med : int;
  communities : community list;
}

let default ~next_hop =
  { origin = Igp; next_hop; local_pref = 100; med = 0; communities = [] }

let community_to_string (a, v) = Printf.sprintf "%d:%d" a v

let community_of_string s =
  match String.index_opt s ':' with
  | None -> None
  | Some i ->
      let a = String.sub s 0 i in
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      let num x =
        if x <> "" && String.for_all (fun c -> c >= '0' && c <= '9') x then
          int_of_string_opt x
        else None
      in
      (match (num a, num v) with
      | Some a, Some v -> Some (a, v)
      | _, _ -> None)

let communities_to_string cs = String.concat " " (List.map community_to_string cs)

let communities_of_string s =
  let tokens = String.split_on_char ' ' s |> List.filter (fun t -> t <> "") in
  let rec parse acc = function
    | [] -> Some (List.rev acc)
    | tok :: rest -> (
        match community_of_string tok with
        | Some c -> parse (c :: acc) rest
        | None -> None)
  in
  parse [] tokens

let pp ppf a =
  Format.fprintf ppf "origin=%s next_hop=%a lpref=%d med=%d communities=[%s]"
    (origin_to_string a.origin) Ipv4.pp a.next_hop a.local_pref a.med
    (communities_to_string a.communities)

let equal a b =
  a.origin = b.origin
  && Ipv4.equal a.next_hop b.next_hop
  && a.local_pref = b.local_pref
  && a.med = b.med
  && a.communities = b.communities
