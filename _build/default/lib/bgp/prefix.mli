(** CIDR prefixes.

    A prefix is a network address plus a mask length; the address is kept
    in canonical form (host bits zeroed), so structural equality equals
    semantic equality.  Prefixes are the unit of routing throughout the
    library: every simulation run, every policy rule and every RIB entry
    is keyed by a prefix. *)

type t = private { network : Ipv4.t; length : int }
(** A canonical CIDR prefix, e.g. [198.51.100.0/24]. *)

val make : Ipv4.t -> int -> t
(** [make addr len] canonicalizes [addr] to [len] bits.  Raises
    [Invalid_argument] if [len] is outside [0..32]. *)

val network : t -> Ipv4.t

val length : t -> int

val of_string : string -> t option
(** Parse ["a.b.c.d/len"]. [None] on malformed input.  The address part
    is canonicalized, so ["10.1.2.3/16"] parses to [10.1.0.0/16]. *)

val of_string_exn : string -> t
(** Like {!of_string} but raises [Invalid_argument]. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int
(** Order by network address, then by mask length (shorter first). *)

val equal : t -> t -> bool

val hash : t -> int

val mem : Ipv4.t -> t -> bool
(** [mem addr p] is true iff [addr] lies inside [p]. *)

val subsumes : t -> t -> bool
(** [subsumes p q] is true iff every address of [q] is inside [p]
    (i.e. [p] is a less-specific covering prefix of [q]). *)

val default : t
(** [0.0.0.0/0]. *)

module Set : Set.S with type elt = t

module Map : Map.S with type key = t

module Table : Hashtbl.S with type key = t
