(** Binary MRT (RFC 6396) TABLE_DUMP_V2 reader and writer.

    Routeviews and RIPE RIS publish RIB snapshots as binary MRT files;
    `bgpdump -m` merely renders them as the text lines {!Mrt} handles.
    This module parses the binary format directly — and writes it, so
    synthetic worlds can be dumped in the exact container real tooling
    expects:

    - MRT common header (timestamp, type, subtype, length);
    - [TABLE_DUMP_V2 / PEER_INDEX_TABLE] (subtype 1): collector id,
      view name, peer table with 2- and 4-byte AS numbers and IPv4
      peers (IPv6 peers are skipped with a diagnostic);
    - [TABLE_DUMP_V2 / RIB_IPV4_UNICAST] (subtype 2): prefix, RIB
      entries referencing the peer table, each carrying BGP path
      attributes;
    - path attributes ORIGIN, AS_PATH (AS_SEQUENCE segments; AS_SET
      segments make the entry invalid, mirroring the text pipeline's
      cleaning), NEXT_HOP, MULTI_EXIT_DISC, LOCAL_PREF and COMMUNITY;
      unknown attributes are skipped by length.

    All multi-byte integers are big-endian.  The writer always emits
    4-byte (AS4) peer entries and 4-byte AS_PATH hops, as RFC 6396
    specifies for TABLE_DUMP_V2. *)

val read_bytes : string -> Mrt.record list * string list
(** Parse an in-memory MRT stream; returns records plus diagnostics for
    records or attributes that had to be skipped.  Raises nothing:
    truncated trailing data becomes a diagnostic. *)

val read_file : string -> Mrt.record list * string list

val write_bytes : ?view_name:string -> Mrt.record list -> string
(** Serialize: one PEER_INDEX_TABLE (peers deduplicated from the
    records, in first-appearance order) followed by one
    RIB_IPV4_UNICAST record per (prefix, set of entries).  Records for
    the same prefix are grouped. *)

val write_file : ?view_name:string -> string -> Mrt.record list -> unit

val looks_binary : string -> bool
(** Heuristic used by the CLI to auto-detect the input flavour: true if
    the (beginning of the) data cannot be a text dump. *)
