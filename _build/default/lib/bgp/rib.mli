(** Observed-RIB data sets.

    A data set is the cleaned union of table dumps from many observation
    points (paper §3.1): each entry says "observation point [op] saw
    prefix [p] with AS-path [path]".  Cleaning normalizes entries the way
    the paper does: AS-path prepending is removed, paths with loops are
    discarded, and the observation AS is guaranteed to be the first hop
    of every path. *)

type obs_point = { op_ip : Ipv4.t; op_as : Asn.t }
(** An observation point: the peering session (identified by the peer
    address) and the AS it lives in.  Several observation points can
    share an AS (30% of observation ASes do in the paper's data). *)

val obs_point_compare : obs_point -> obs_point -> int

val obs_point_equal : obs_point -> obs_point -> bool

val pp_obs_point : Format.formatter -> obs_point -> unit

type entry = { op : obs_point; prefix : Prefix.t; path : Aspath.t }
(** One cleaned RIB entry.  [path] starts with [op.op_as] and ends with
    the origin AS. *)

type cleaning_stats = {
  raw : int;  (** records before cleaning *)
  dropped_loops : int;  (** paths with a loop after prepending removal *)
  dropped_empty : int;  (** records with an empty AS-path *)
  deduplicated : int;  (** exact (op, prefix, path) duplicates *)
}

type t
(** An immutable data set. *)

val of_records : Mrt.record list -> t * cleaning_stats
(** Clean and index a list of dump records. *)

val to_records : ?time:int -> t -> Mrt.record list
(** Render back to dump records (attributes are defaults; the data set
    only retains what the methodology uses). *)

val of_entries : entry list -> t
(** Build from already-clean entries (deduplicates). *)

val entries : t -> entry list

val size : t -> int
(** Number of entries. *)

val observation_points : t -> obs_point list
(** Sorted, unique. *)

val observation_ases : t -> Asn.Set.t

val prefixes : t -> Prefix.t list
(** Sorted, unique. *)

val origins : t -> Asn.Set.t
(** All origin ASes appearing in paths. *)

val all_paths : t -> Aspath.t list
(** Unique AS-paths across the data set. *)

val by_prefix : t -> entry list Prefix.Map.t

val paths_for_prefix : t -> Prefix.t -> entry list

val union : t -> t -> t
(** Merge two data sets (e.g. dumps from several collectors);
    duplicates collapse. *)

val restrict_points : t -> obs_point list -> t
(** Keep only entries from the given observation points (train/validate
    splitting). *)

val restrict_origins : t -> Asn.Set.t -> t
(** Keep only entries whose path originates in the given set. *)

val unique_paths_per_pair : t -> (Asn.t * Asn.t, Aspath.Set.t) Hashtbl.t
(** For every (origin AS, observation AS) pair, the set of distinct
    AS-paths observed between them over all prefixes — the raw material
    of the paper's Figure 2. *)

val transfer_stub_origins :
  t -> removed:Asn.Set.t -> reprefix:(Asn.t -> Prefix.t) -> t
(** Paper §3.1: single-homed stub ASes are removed from the topology but
    their path information is transferred to a prefix originated by
    their upstream neighbour.  Every entry whose origin is in [removed]
    has its last hop dropped and its prefix replaced by
    [reprefix new_origin]; entries whose path becomes shorter than two
    hops (origin = observation AS) are dropped, as are entries whose
    observation AS itself was removed. *)

val apply_updates : t -> Mrt.update list -> t * cleaning_stats
(** Roll a data set forward in time with BGP updates (the paper's §3.1
    future-work item).  A RIB holds one best route per (observation
    point, prefix): announcements replace that slot (after the usual
    cleaning), withdrawals empty it.  Updates are applied in list order;
    callers should sort by time first.  The returned stats describe the
    announcements' cleaning. *)

val collapse_to_origin : ?reprefix:(Asn.t -> Prefix.t) -> t -> t
(** Paper §4.1: model building originates one prefix per AS, so every
    entry's prefix is replaced by the canonical prefix of its path's
    origin AS ([reprefix], default {!Asn.origin_prefix}) and duplicates
    are merged.  The AS-paths — the information the methodology consumes
    — are untouched. *)

val save : string -> t -> unit
(** Write as a dump file ({!Mrt}). *)

val load : string -> t * cleaning_stats
(** Read a dump file and clean it. *)
