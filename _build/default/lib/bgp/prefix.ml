type t = { network : Ipv4.t; length : int }

let make addr len =
  if len < 0 || len > 32 then invalid_arg "Prefix.make: bad length"
  else { network = Ipv4.apply_mask len addr; length = len }

let network p = p.network

let length p = p.length

let of_string s =
  match String.index_opt s '/' with
  | None -> None
  | Some i ->
      let addr_part = String.sub s 0 i in
      let len_part = String.sub s (i + 1) (String.length s - i - 1) in
      let len_ok =
        String.length len_part > 0
        && String.for_all (fun c -> c >= '0' && c <= '9') len_part
      in
      if not len_ok then None
      else
        let len = int_of_string len_part in
        if len > 32 then None
        else
          match Ipv4.of_string addr_part with
          | None -> None
          | Some addr -> Some (make addr len)

let of_string_exn s =
  match of_string s with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Prefix.of_string_exn: %S" s)

let to_string p = Printf.sprintf "%s/%d" (Ipv4.to_string p.network) p.length

let pp ppf p = Format.pp_print_string ppf (to_string p)

let compare a b =
  let c = Ipv4.compare a.network b.network in
  if c <> 0 then c else Stdlib.compare a.length b.length

let equal a b = compare a b = 0

let hash p = (Ipv4.to_int p.network * 33) + p.length

let mem addr p = Ipv4.equal (Ipv4.apply_mask p.length addr) p.network

let subsumes p q = p.length <= q.length && mem q.network p

let default = { network = Ipv4.of_int 0; length = 0 }

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)
