(* RFC 6396 TABLE_DUMP_V2, IPv4 unicast only.  Big-endian throughout. *)

let mrt_type_table_dump_v2 = 13

let subtype_peer_index_table = 1

let subtype_rib_ipv4_unicast = 2

(* ---------------- reading ---------------- *)

(* A cursor over an immutable string; reads raise [Truncated] which the
   record loop converts into a diagnostic. *)
exception Truncated

type cursor = { data : string; mutable pos : int; limit : int }

let cursor data pos limit = { data; pos; limit }

let remaining c = c.limit - c.pos

let u8 c =
  if c.pos >= c.limit then raise Truncated;
  let v = Char.code c.data.[c.pos] in
  c.pos <- c.pos + 1;
  v

let u16 c =
  let hi = u8 c in
  let lo = u8 c in
  (hi lsl 8) lor lo

let u32 c =
  let hi = u16 c in
  let lo = u16 c in
  (hi lsl 16) lor lo

let bytes c n =
  if remaining c < n then raise Truncated;
  let s = String.sub c.data c.pos n in
  c.pos <- c.pos + n;
  s

let skip c n =
  if remaining c < n then raise Truncated;
  c.pos <- c.pos + n

type peer = { peer_ip : Ipv4.t option; peer_as : Asn.t }

let parse_peer_index_table c =
  (* collector BGP id *)
  skip c 4;
  let view_len = u16 c in
  skip c view_len;
  let count = u16 c in
  let peers = ref [] in
  for _ = 1 to count do
    let peer_type = u8 c in
    let ipv6 = peer_type land 0x01 <> 0 in
    let as4 = peer_type land 0x02 <> 0 in
    skip c 4 (* peer BGP id *);
    let ip =
      if ipv6 then begin
        skip c 16;
        None
      end
      else Some (Ipv4.of_int (u32 c))
    in
    let asn = if as4 then u32 c else u16 c in
    peers := { peer_ip = ip; peer_as = asn } :: !peers
  done;
  Array.of_list (List.rev !peers)

(* BGP path attributes of one RIB entry. *)
type attrs_acc = {
  mutable origin : Attrs.origin option;
  mutable next_hop : Ipv4.t option;
  mutable med : int;
  mutable local_pref : int;
  mutable communities : Attrs.community list;
  mutable as_path : int array option;
  mutable has_as_set : bool;
}

let parse_as_path c len =
  let stop = c.pos + len in
  let segments = ref [] in
  let has_set = ref false in
  while c.pos < stop do
    let seg_type = u8 c in
    let count = u8 c in
    let hops = Array.init count (fun _ -> u32 c) in
    if seg_type = 2 then segments := hops :: !segments
    else has_set := true
  done;
  (Array.concat (List.rev !segments), !has_set)

let parse_attributes c len =
  let stop = c.pos + len in
  let acc =
    {
      origin = None;
      next_hop = None;
      med = 0;
      local_pref = 100;
      communities = [];
      as_path = None;
      has_as_set = false;
    }
  in
  while c.pos < stop do
    let flags = u8 c in
    let typ = u8 c in
    let alen = if flags land 0x10 <> 0 then u16 c else u8 c in
    let value_end = c.pos + alen in
    if value_end > stop then raise Truncated;
    (match typ with
    | 1 ->
        acc.origin <-
          (match u8 c with
          | 0 -> Some Attrs.Igp
          | 1 -> Some Attrs.Egp
          | _ -> Some Attrs.Incomplete)
    | 2 ->
        let path, has_set = parse_as_path c alen in
        acc.as_path <- Some path;
        acc.has_as_set <- has_set
    | 3 -> acc.next_hop <- Some (Ipv4.of_int (u32 c))
    | 4 -> acc.med <- u32 c
    | 5 -> acc.local_pref <- u32 c
    | 8 ->
        let n = alen / 4 in
        let communities = ref [] in
        for _ = 1 to n do
          let v = u32 c in
          communities := ((v lsr 16) land 0xFFFF, v land 0xFFFF) :: !communities
        done;
        acc.communities <- List.rev !communities
    | _ -> ());
    (* Always resynchronize on the declared attribute length. *)
    c.pos <- value_end
  done;
  acc

let parse_rib_ipv4 ~time ~peers c diagnostics =
  let _sequence = u32 c in
  let plen = u8 c in
  if plen > 32 then raise Truncated;
  let nbytes = (plen + 7) / 8 in
  let praw = bytes c nbytes in
  let network = ref 0 in
  String.iteri (fun i ch -> network := !network lor (Char.code ch lsl (24 - (8 * i)))) praw;
  let prefix = Prefix.make (Ipv4.of_int !network) plen in
  let count = u16 c in
  let records = ref [] in
  for _ = 1 to count do
    let peer_index = u16 c in
    let originated = u32 c in
    ignore originated;
    let alen = u16 c in
    let sub = cursor c.data c.pos (c.pos + alen) in
    if remaining c < alen then raise Truncated;
    c.pos <- c.pos + alen;
    if peer_index >= Array.length peers then
      diagnostics := "peer index out of range" :: !diagnostics
    else
      let peer = peers.(peer_index) in
      match peer.peer_ip with
      | None -> diagnostics := "skipping IPv6 peer entry" :: !diagnostics
      | Some peer_ip -> (
          match parse_attributes sub alen with
          | exception Truncated ->
              diagnostics := "truncated attributes" :: !diagnostics
          | acc ->
              if acc.has_as_set then
                diagnostics := "AS_SET segment: entry dropped" :: !diagnostics
              else
                let path =
                  Aspath.of_array (Option.value ~default:[||] acc.as_path)
                in
                records :=
                  {
                    Mrt.time;
                    peer_ip;
                    peer_as = peer.peer_as;
                    prefix;
                    path;
                    attrs =
                      {
                        Attrs.origin = Option.value ~default:Attrs.Igp acc.origin;
                        next_hop = Option.value ~default:peer_ip acc.next_hop;
                        local_pref = acc.local_pref;
                        med = acc.med;
                        communities = acc.communities;
                      };
                  }
                  :: !records)
  done;
  List.rev !records

let read_bytes data =
  let diagnostics = ref [] in
  let records = ref [] in
  let peers = ref [||] in
  let c = cursor data 0 (String.length data) in
  let rec loop () =
    if remaining c >= 12 then begin
      let time = u32 c in
      let typ = u16 c in
      let subtype = u16 c in
      let len = u32 c in
      if remaining c < len then begin
        diagnostics := "truncated record body" :: !diagnostics;
        c.pos <- c.limit
      end
      else begin
        let body = cursor c.data c.pos (c.pos + len) in
        c.pos <- c.pos + len;
        (if typ <> mrt_type_table_dump_v2 then
           diagnostics :=
             Printf.sprintf "skipping MRT type %d" typ :: !diagnostics
         else
           match subtype with
           | s when s = subtype_peer_index_table -> (
               match parse_peer_index_table body with
               | table -> peers := table
               | exception Truncated ->
                   diagnostics := "truncated peer index table" :: !diagnostics)
           | s when s = subtype_rib_ipv4_unicast -> (
               match parse_rib_ipv4 ~time ~peers:!peers body diagnostics with
               | entries -> records := List.rev_append entries !records
               | exception Truncated ->
                   diagnostics := "truncated RIB record" :: !diagnostics)
           | s ->
               diagnostics :=
                 Printf.sprintf "skipping TABLE_DUMP_V2 subtype %d" s
                 :: !diagnostics);
        loop ()
      end
    end
    else if remaining c > 0 then
      diagnostics := "trailing garbage" :: !diagnostics
  in
  loop ();
  (List.rev !records, List.rev !diagnostics)

let read_file path =
  read_bytes (In_channel.with_open_bin path In_channel.input_all)

(* ---------------- writing ---------------- *)

let w8 b v = Buffer.add_char b (Char.chr (v land 0xFF))

let w16 b v =
  w8 b (v lsr 8);
  w8 b v

let w32 b v =
  w16 b (v lsr 16);
  w16 b v

let header b ~time ~subtype ~len =
  w32 b time;
  w16 b mrt_type_table_dump_v2;
  w16 b subtype;
  w32 b len

let peer_table_body ~view_name peers =
  let b = Buffer.create 256 in
  w32 b 0 (* collector id *);
  w16 b (String.length view_name);
  Buffer.add_string b view_name;
  w16 b (List.length peers);
  List.iter
    (fun (ip, asn) ->
      w8 b 0x02 (* IPv4 peer, 4-byte AS *);
      w32 b 0 (* peer BGP id *);
      w32 b (Ipv4.to_int ip);
      w32 b asn)
    peers;
  Buffer.contents b

let attributes_body (r : Mrt.record) =
  let b = Buffer.create 64 in
  let attr typ value =
    w8 b 0x40 (* well-known transitive, not extended *);
    w8 b typ;
    w8 b (String.length value);
    Buffer.add_string b value
  in
  let scalar32 v =
    let s = Buffer.create 4 in
    w32 s v;
    Buffer.contents s
  in
  attr 1
    (String.make 1
       (Char.chr
          (match r.Mrt.attrs.Attrs.origin with
          | Attrs.Igp -> 0
          | Attrs.Egp -> 1
          | Attrs.Incomplete -> 2)));
  (* AS_PATH: one AS_SEQUENCE segment with 4-byte hops. *)
  let path = Aspath.to_array r.Mrt.path in
  let seg = Buffer.create 16 in
  w8 seg 2;
  w8 seg (Array.length path);
  Array.iter (fun a -> w32 seg a) path;
  attr 2 (Buffer.contents seg);
  attr 3 (scalar32 (Ipv4.to_int r.Mrt.attrs.Attrs.next_hop));
  attr 4 (scalar32 r.Mrt.attrs.Attrs.med);
  attr 5 (scalar32 r.Mrt.attrs.Attrs.local_pref);
  (match r.Mrt.attrs.Attrs.communities with
  | [] -> ()
  | cs ->
      let body = Buffer.create 16 in
      List.iter (fun (a, v) -> w32 body (((a land 0xFFFF) lsl 16) lor (v land 0xFFFF))) cs;
      attr 8 (Buffer.contents body));
  Buffer.contents b

let rib_body ~sequence ~peer_index_of records =
  match records with
  | [] -> None
  | first :: _ ->
      let prefix = first.Mrt.prefix in
      let b = Buffer.create 128 in
      w32 b sequence;
      let plen = Prefix.length prefix in
      w8 b plen;
      let nbytes = (plen + 7) / 8 in
      let network = Ipv4.to_int (Prefix.network prefix) in
      for i = 0 to nbytes - 1 do
        w8 b ((network lsr (24 - (8 * i))) land 0xFF)
      done;
      w16 b (List.length records);
      List.iter
        (fun (r : Mrt.record) ->
          w16 b (peer_index_of r);
          w32 b r.Mrt.time;
          let attrs = attributes_body r in
          w16 b (String.length attrs);
          Buffer.add_string b attrs)
        records;
      Some (Buffer.contents b)

let write_bytes ?(view_name = "route_diversity") records =
  (* Peer table in first-appearance order. *)
  let peer_ids = Hashtbl.create 64 in
  let peers = ref [] in
  List.iter
    (fun (r : Mrt.record) ->
      let key = (r.Mrt.peer_ip, r.Mrt.peer_as) in
      if not (Hashtbl.mem peer_ids key) then begin
        Hashtbl.add peer_ids key (Hashtbl.length peer_ids);
        peers := key :: !peers
      end)
    records;
  let peers = List.rev !peers in
  let time = match records with r :: _ -> r.Mrt.time | [] -> 0 in
  let out = Buffer.create 4096 in
  let emit ~subtype body =
    header out ~time ~subtype ~len:(String.length body);
    Buffer.add_string out body
  in
  emit ~subtype:subtype_peer_index_table (peer_table_body ~view_name peers);
  (* Group records by prefix, preserving first-appearance order. *)
  let order = ref [] in
  let groups = Prefix.Table.create 256 in
  List.iter
    (fun (r : Mrt.record) ->
      match Prefix.Table.find_opt groups r.Mrt.prefix with
      | Some l -> l := r :: !l
      | None ->
          Prefix.Table.add groups r.Mrt.prefix (ref [ r ]);
          order := r.Mrt.prefix :: !order)
    records;
  List.iteri
    (fun sequence prefix ->
      let group = List.rev !(Prefix.Table.find groups prefix) in
      let peer_index_of (r : Mrt.record) =
        Hashtbl.find peer_ids (r.Mrt.peer_ip, r.Mrt.peer_as)
      in
      match rib_body ~sequence ~peer_index_of group with
      | Some body -> emit ~subtype:subtype_rib_ipv4_unicast body
      | None -> ())
    (List.rev !order);
  Buffer.contents out

let write_file ?view_name path records =
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (write_bytes ?view_name records))

let looks_binary data =
  let n = min (String.length data) 4096 in
  let has_pipe = ref false in
  let has_nul = ref false in
  for i = 0 to n - 1 do
    if data.[i] = '|' then has_pipe := true;
    if data.[i] = '\000' then has_nul := true
  done;
  !has_nul || not !has_pipe
