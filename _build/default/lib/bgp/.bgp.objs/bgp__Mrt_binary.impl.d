lib/bgp/mrt_binary.ml: Array Asn Aspath Attrs Buffer Char Hashtbl In_channel Ipv4 List Mrt Option Out_channel Prefix Printf String
