lib/bgp/mrt.ml: Asn Aspath Attrs In_channel Ipv4 List Option Out_channel Prefix Printf Result String
