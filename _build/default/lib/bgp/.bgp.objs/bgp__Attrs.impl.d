lib/bgp/attrs.ml: Format Ipv4 List Printf String
