lib/bgp/ipv4.mli: Format
