lib/bgp/rib.ml: Array Asn Aspath Attrs Format Hashtbl Ipv4 List Mrt Prefix Seq Set
