lib/bgp/ipv4.ml: Char Format Option Printf Stdlib String
