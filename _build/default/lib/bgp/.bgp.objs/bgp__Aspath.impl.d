lib/bgp/aspath.ml: Array Asn Format Hashtbl List Map Set Stdlib String
