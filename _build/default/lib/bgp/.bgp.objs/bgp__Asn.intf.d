lib/bgp/asn.mli: Format Ipv4 Map Prefix Set
