lib/bgp/mrt.mli: Asn Aspath Attrs Ipv4 Prefix
