lib/bgp/prefix.mli: Format Hashtbl Ipv4 Map Set
