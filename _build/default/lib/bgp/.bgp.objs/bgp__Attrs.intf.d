lib/bgp/attrs.mli: Format Ipv4
