lib/bgp/prefix.ml: Format Hashtbl Ipv4 Map Printf Set Stdlib String
