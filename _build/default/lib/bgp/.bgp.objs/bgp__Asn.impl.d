lib/bgp/asn.ml: Format Int Ipv4 Map Prefix Set Stdlib String
