lib/bgp/aspath.mli: Asn Format Hashtbl Map Set
