lib/bgp/mrt_binary.mli: Mrt
