lib/bgp/rib.mli: Asn Aspath Format Hashtbl Ipv4 Mrt Prefix
