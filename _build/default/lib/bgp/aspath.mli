(** AS-paths.

    An AS-path is the sequence of ASes a route announcement crossed, most
    recent hop first (leftmost) and origin AS last (rightmost) — the order
    used in router output and in `bgpdump -m` lines.

    Following §3.1 of the paper, analysis paths are normalized by removing
    AS-path prepending (consecutive duplicates) and paths that still
    contain loops are discarded. *)

type t = private int array
(** Immutable by convention; use the constructors below. *)

val of_list : Asn.t list -> t

val to_list : t -> Asn.t list

val of_array : Asn.t array -> t
(** Copies the array. *)

val to_array : t -> Asn.t array
(** Returns a copy. *)

val empty : t

val is_empty : t -> bool

val length : t -> int
(** Number of AS hops (after the caller's normalization, this is the
    metric the BGP decision process compares). *)

val origin : t -> Asn.t option
(** Rightmost AS — the originator. *)

val head : t -> Asn.t option
(** Leftmost AS — the most recent hop (the observed AS for a path taken
    from an observation point, the announcing neighbour otherwise). *)

val nth : t -> int -> Asn.t
(** [nth p i] is the [i]-th AS from the left.  Raises [Invalid_argument]
    when out of bounds. *)

val prepend : Asn.t -> t -> t
(** [prepend a p] is the path advertised by AS [a] that selected [p]. *)

val drop_head : t -> t
(** Path without its leftmost AS.  Raises [Invalid_argument] on empty. *)

val suffix_from : t -> int -> t
(** [suffix_from p i] is the sub-path from position [i] (inclusive, from
    the left) to the origin. *)

val suffixes : t -> t list
(** All non-empty suffixes, longest (the path itself) first. *)

val contains : Asn.t -> t -> bool

val index_of : Asn.t -> t -> int option
(** Leftmost position of an AS in the path. *)

val remove_prepending : t -> t
(** Collapse consecutive duplicate ASNs (paper §3.1, footnote 1). *)

val has_loop : t -> bool
(** True iff some AS occurs at two non-adjacent positions (run
    {!remove_prepending} first to ignore prepending). *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val of_string : string -> t option
(** Parse a space-separated ASN sequence, e.g. ["701 1239 24249"].
    AS_SET segments (["{1,2}"]) are rejected ([None]) — the paper's data
    cleaning drops them. An empty string parses to {!empty}. *)

val to_string : t -> string

val pp : Format.formatter -> t -> unit
(** Dash-separated rendering as in the paper's prose (["1-7-6"]). *)

module Set : Set.S with type elt = t

module Map : Map.S with type key = t

module Table : Hashtbl.S with type key = t
