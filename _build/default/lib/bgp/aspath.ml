type t = int array

let of_list l = Array.of_list l

let to_list p = Array.to_list p

let of_array a = Array.copy a

let to_array p = Array.copy p

let empty = [||]

let is_empty p = Array.length p = 0

let length p = Array.length p

let origin p =
  let n = Array.length p in
  if n = 0 then None else Some p.(n - 1)

let head p = if Array.length p = 0 then None else Some p.(0)

let nth p i =
  if i < 0 || i >= Array.length p then invalid_arg "Aspath.nth" else p.(i)

let prepend a p =
  let n = Array.length p in
  let q = Array.make (n + 1) a in
  Array.blit p 0 q 1 n;
  q

let drop_head p =
  let n = Array.length p in
  if n = 0 then invalid_arg "Aspath.drop_head" else Array.sub p 1 (n - 1)

let suffix_from p i =
  let n = Array.length p in
  if i < 0 || i > n then invalid_arg "Aspath.suffix_from"
  else Array.sub p i (n - i)

let suffixes p =
  let n = Array.length p in
  let rec loop i acc = if i < 0 then acc else loop (i - 1) (suffix_from p i :: acc) in
  loop (n - 1) []

let contains a p = Array.exists (fun x -> x = a) p

let index_of a p =
  let n = Array.length p in
  let rec loop i = if i >= n then None else if p.(i) = a then Some i else loop (i + 1) in
  loop 0

let remove_prepending p =
  let n = Array.length p in
  if n <= 1 then Array.copy p
  else begin
    let buf = Array.make n p.(0) in
    let k = ref 1 in
    for i = 1 to n - 1 do
      if p.(i) <> p.(i - 1) then begin
        buf.(!k) <- p.(i);
        incr k
      end
    done;
    Array.sub buf 0 !k
  end

let has_loop p =
  let n = Array.length p in
  let seen = Hashtbl.create (2 * n) in
  let rec loop i =
    if i >= n then false
    else if i > 0 && p.(i) = p.(i - 1) then loop (i + 1) (* prepending run *)
    else if Hashtbl.mem seen p.(i) then true
    else begin
      Hashtbl.add seen p.(i) ();
      loop (i + 1)
    end
  in
  loop 0

let equal (a : int array) b = a = b

let compare (a : int array) b = Stdlib.compare a b

let hash p = Hashtbl.hash p

let of_string s =
  let tokens = String.split_on_char ' ' s |> List.filter (fun t -> t <> "") in
  let rec parse acc = function
    | [] -> Some (Array.of_list (List.rev acc))
    | tok :: rest -> (
        match Asn.of_string tok with
        | Some a -> parse (a :: acc) rest
        | None -> None)
  in
  parse [] tokens

let to_string p =
  String.concat " " (List.map string_of_int (Array.to_list p))

let pp ppf p =
  Format.pp_print_string ppf
    (String.concat "-" (List.map string_of_int (Array.to_list p)))

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal

  let hash = hash
end)
