type obs_point = { op_ip : Ipv4.t; op_as : Asn.t }

let obs_point_compare a b =
  let c = Ipv4.compare a.op_ip b.op_ip in
  if c <> 0 then c else Asn.compare a.op_as b.op_as

let obs_point_equal a b = obs_point_compare a b = 0

let pp_obs_point ppf op =
  Format.fprintf ppf "%a@%a" Ipv4.pp op.op_ip Asn.pp op.op_as

type entry = { op : obs_point; prefix : Prefix.t; path : Aspath.t }

type cleaning_stats = {
  raw : int;
  dropped_loops : int;
  dropped_empty : int;
  deduplicated : int;
}

type t = { entries : entry array }

let entry_compare a b =
  let c = obs_point_compare a.op b.op in
  if c <> 0 then c
  else
    let c = Prefix.compare a.prefix b.prefix in
    if c <> 0 then c else Aspath.compare a.path b.path

let dedup_sorted entries =
  let sorted = List.sort entry_compare entries in
  let rec loop acc = function
    | [] -> List.rev acc
    | [ e ] -> List.rev (e :: acc)
    | e :: (e' :: _ as rest) ->
        if entry_compare e e' = 0 then loop acc rest else loop (e :: acc) rest
  in
  loop [] sorted

let of_records records =
  let raw = List.length records in
  let dropped_loops = ref 0 in
  let dropped_empty = ref 0 in
  let clean r =
    let path = Aspath.remove_prepending r.Mrt.path in
    if Aspath.is_empty path then begin
      incr dropped_empty;
      None
    end
    else if Aspath.has_loop path then begin
      incr dropped_loops;
      None
    end
    else
      (* Collectors normally see the peer AS as first hop; tolerate dumps
         that omit it by reinstating it. *)
      let path =
        if Aspath.head path = Some r.Mrt.peer_as then path
        else Aspath.prepend r.Mrt.peer_as path
      in
      Some
        {
          op = { op_ip = r.Mrt.peer_ip; op_as = r.Mrt.peer_as };
          prefix = r.Mrt.prefix;
          path;
        }
  in
  let cleaned = List.filter_map clean records in
  let deduped = dedup_sorted cleaned in
  let stats =
    {
      raw;
      dropped_loops = !dropped_loops;
      dropped_empty = !dropped_empty;
      deduplicated = List.length cleaned - List.length deduped;
    }
  in
  ({ entries = Array.of_list deduped }, stats)

let of_entries entries = { entries = Array.of_list (dedup_sorted entries) }

let entries t = Array.to_list t.entries

let size t = Array.length t.entries

let to_records ?(time = 0) t =
  let record e =
    {
      Mrt.time;
      peer_ip = e.op.op_ip;
      peer_as = e.op.op_as;
      prefix = e.prefix;
      path = e.path;
      attrs = Attrs.default ~next_hop:e.op.op_ip;
    }
  in
  List.map record (entries t)

let observation_points t =
  let module S = Set.Make (struct
    type nonrec t = obs_point

    let compare = obs_point_compare
  end) in
  Array.fold_left (fun acc e -> S.add e.op acc) S.empty t.entries
  |> S.elements

let observation_ases t =
  Array.fold_left (fun acc e -> Asn.Set.add e.op.op_as acc) Asn.Set.empty
    t.entries

let prefixes t =
  Array.fold_left (fun acc e -> Prefix.Set.add e.prefix acc) Prefix.Set.empty
    t.entries
  |> Prefix.Set.elements

let origins t =
  Array.fold_left
    (fun acc e ->
      match Aspath.origin e.path with
      | Some o -> Asn.Set.add o acc
      | None -> acc)
    Asn.Set.empty t.entries

let all_paths t =
  Array.fold_left (fun acc e -> Aspath.Set.add e.path acc) Aspath.Set.empty
    t.entries
  |> Aspath.Set.elements

let by_prefix t =
  Array.fold_left
    (fun acc e ->
      Prefix.Map.update e.prefix
        (function None -> Some [ e ] | Some es -> Some (e :: es))
        acc)
    Prefix.Map.empty t.entries
  |> Prefix.Map.map List.rev

let paths_for_prefix t p =
  Array.fold_left
    (fun acc e -> if Prefix.equal e.prefix p then e :: acc else acc)
    [] t.entries
  |> List.rev

let union a b = of_entries (entries a @ entries b)

let restrict_points t points =
  let keep e = List.exists (obs_point_equal e.op) points in
  { entries = Array.of_seq (Seq.filter keep (Array.to_seq t.entries)) }

let restrict_origins t set =
  let keep e =
    match Aspath.origin e.path with
    | Some o -> Asn.Set.mem o set
    | None -> false
  in
  { entries = Array.of_seq (Seq.filter keep (Array.to_seq t.entries)) }

let unique_paths_per_pair t =
  let table = Hashtbl.create 4096 in
  Array.iter
    (fun e ->
      match Aspath.origin e.path with
      | None -> ()
      | Some origin ->
          let key = (origin, e.op.op_as) in
          let set =
            match Hashtbl.find_opt table key with
            | Some s -> s
            | None -> Aspath.Set.empty
          in
          Hashtbl.replace table key (Aspath.Set.add e.path set))
    t.entries;
  table

let transfer_stub_origins t ~removed ~reprefix =
  let rewrite e =
    if Asn.Set.mem e.op.op_as removed then None
    else
      match Aspath.origin e.path with
      | None -> None
      | Some o when not (Asn.Set.mem o removed) -> Some e
      | Some _ ->
          let n = Aspath.length e.path in
          if n < 2 then None
          else
            let path' = Aspath.suffix_from e.path 0 in
            let path' =
              Aspath.of_array (Array.sub (Aspath.to_array path') 0 (n - 1))
            in
            (match Aspath.origin path' with
            | None -> None
            | Some new_origin ->
                if Asn.Set.mem new_origin removed then None
                else if Aspath.length path' < 1 then None
                else Some { e with path = path'; prefix = reprefix new_origin })
  in
  of_entries (List.filter_map rewrite (entries t))

let apply_updates t updates =
  (* One best route per (observation point, prefix). *)
  let slots = Hashtbl.create (Array.length t.entries * 2) in
  Array.iter
    (fun e -> Hashtbl.replace slots (e.op, e.prefix) e)
    t.entries;
  let dropped_loops = ref 0 and dropped_empty = ref 0 in
  List.iter
    (fun u ->
      match u with
      | Mrt.Withdraw { peer_ip; peer_as; prefix; _ } ->
          Hashtbl.remove slots ({ op_ip = peer_ip; op_as = peer_as }, prefix)
      | Mrt.Announce r ->
          let path = Aspath.remove_prepending r.Mrt.path in
          if Aspath.is_empty path then incr dropped_empty
          else if Aspath.has_loop path then incr dropped_loops
          else
            let path =
              if Aspath.head path = Some r.Mrt.peer_as then path
              else Aspath.prepend r.Mrt.peer_as path
            in
            let op = { op_ip = r.Mrt.peer_ip; op_as = r.Mrt.peer_as } in
            Hashtbl.replace slots (op, r.Mrt.prefix)
              { op; prefix = r.Mrt.prefix; path })
    updates;
  let entries = Hashtbl.fold (fun _ e acc -> e :: acc) slots [] in
  let stats =
    {
      raw = List.length updates;
      dropped_loops = !dropped_loops;
      dropped_empty = !dropped_empty;
      deduplicated = 0;
    }
  in
  (of_entries entries, stats)

let collapse_to_origin ?(reprefix = Asn.origin_prefix) t =
  let rewrite e =
    match Aspath.origin e.path with
    | None -> None
    | Some o -> Some { e with prefix = reprefix o }
  in
  of_entries (List.filter_map rewrite (entries t))

let save path t = Mrt.write_file path (to_records t)

let load path =
  let records, _errors = Mrt.read_file path in
  of_records records
