(** Autonomous-system numbers.

    ASNs are plain integers (16-bit in the paper's 2005 data set; we allow
    the 32-bit range).  The module also fixes the synthetic addressing
    scheme used throughout the reproduction:

    - every AS originates exactly one prefix ({!origin_prefix}), mirroring
      the paper's "one prefix per AS" simplification (§4.1);
    - every quasi-router gets an IP whose high-order 16 bits are the AS
      number and whose low-order bits are a per-AS index (§4.5), which is
      what the final BGP tie-break compares. *)

type t = int
(** An AS number, [>= 1]. *)

val pp : Format.formatter -> t -> unit

val compare : t -> t -> int

val equal : t -> t -> bool

val of_string : string -> t option
(** Parse a decimal ASN; [None] if malformed or [< 1]. *)

val to_string : t -> string

val origin_prefix : t -> Prefix.t
(** [origin_prefix asn] is the canonical /24 prefix originated by [asn]
    in synthetic data sets — the prefix the model pipeline uses for the
    paper's "one prefix per AS" simplification (§4.1).  Distinct ASNs
    below [2^16] map to distinct prefixes.  Equals [nth_prefix asn 0]. *)

val nth_prefix : t -> int -> Prefix.t
(** [nth_prefix asn i] is the [i]-th /24 prefix originated by [asn],
    [0 <= i <= 15].  Real ASes originate many prefixes; the synthetic
    world mirrors that. *)

val max_prefixes : int
(** Upper bound on the per-AS prefix index ([16]). *)

val of_origin_prefix : Prefix.t -> t option
(** Inverse of {!nth_prefix} (any index) where defined: the AS that
    originates the prefix. *)

val router_ip : t -> int -> Ipv4.t
(** [router_ip asn idx] is the paper's quasi-router address: high 16 bits
    [asn], low 16 bits [idx].  Raises [Invalid_argument] if either is out
    of range. *)

val of_router_ip : Ipv4.t -> t * int
(** Inverse of {!router_ip}: [(asn, idx)]. *)

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
