open Bgp

let generate ?(conf = Netgen.Conf.default) () =
  let world = Netgen.Groundtruth.build conf in
  let data = Netgen.Groundtruth.observe world in
  (world, data)

type prepared = {
  data : Rib.t;
  graph : Topology.Asgraph.t;
  full_graph : Topology.Asgraph.t;
  removed_stubs : Asn.Set.t;
  classification : Topology.Extract.classification;
  levels : Topology.Hierarchy.levels;
}

let prepare raw =
  let collapsed = Rib.collapse_to_origin raw in
  let classification = Topology.Extract.classify collapsed in
  let reduced = Topology.Extract.reduce collapsed in
  let levels = Topology.Hierarchy.classify classification.Topology.Extract.graph in
  {
    data = reduced.Topology.Extract.data;
    graph = reduced.Topology.Extract.core;
    full_graph = classification.Topology.Extract.graph;
    removed_stubs = reduced.Topology.Extract.removed;
    classification;
    levels;
  }

let split ?(by_origin = false) ?train_fraction ~seed prepared =
  if by_origin then
    Evaluation.Split.by_origin_ases ?train_fraction ~seed prepared.data
  else
    Evaluation.Split.by_observation_points ?train_fraction ~seed prepared.data

let build ?options prepared ~training =
  let model = Asmodel.Qrmodel.initial prepared.graph in
  Refine.Refiner.refine ?options model ~training

let evaluate (refinement : Refine.Refiner.result) ~validation =
  Evaluation.Predict.evaluate refinement.Refine.Refiner.model
    ~states:refinement.Refine.Refiner.states validation

type experiment = {
  prepared : prepared;
  splits : Evaluation.Split.t;
  refinement : Refine.Refiner.result;
  prediction : Evaluation.Predict.report;
}

let run_experiment ?options ?(by_origin = false) ?train_fraction ?(seed = 7)
    data =
  let prepared = prepare data in
  let splits = split ~by_origin ?train_fraction ~seed prepared in
  let refinement =
    build ?options prepared ~training:splits.Evaluation.Split.training
  in
  let prediction =
    evaluate refinement ~validation:splits.Evaluation.Split.validation
  in
  { prepared; splits; refinement; prediction }

let infer_relationships prepared =
  let paths = Rib.all_paths prepared.data in
  Topology.Relationships.infer
    ~level1:prepared.levels.Topology.Hierarchy.level1 prepared.full_graph
    paths

let baseline_shortest_path prepared =
  let model = Asmodel.Baseline.shortest_path prepared.graph in
  Evaluation.Agreement.simulate_and_grade model prepared.data

let baseline_policies prepared =
  let rels = infer_relationships prepared in
  let model = Asmodel.Baseline.with_policies prepared.graph rels in
  Evaluation.Agreement.simulate_and_grade model prepared.data
