(** End-to-end pipelines for the AS-routing-model methodology.

    This is the library facade a downstream user starts from:

    {ol
    {- obtain table dumps — from real collectors via {!Bgp.Mrt}, or from
       the synthetic world ({!generate});}
    {- {!prepare} them the way the paper does (§3.1, §4.1): collapse to
       one prefix per origin AS, remove single-homed stub ASes, extract
       the AS graph and hierarchy;}
    {- {!split} into training and validation;}
    {- {!build} the refined quasi-router model from the training set;}
    {- {!evaluate} predictions on the validation set.}}

    {!run_experiment} chains 2-5. *)

open Bgp

val generate : ?conf:Netgen.Conf.t -> unit -> Netgen.Groundtruth.world * Rib.t
(** Build the synthetic ground-truth world and observe its RIB dumps
    (see DESIGN.md §2 for why this substitutes the paper's collector
    feeds). *)

type prepared = {
  data : Rib.t;  (** collapsed to one prefix per AS, stubs transferred *)
  graph : Topology.Asgraph.t;  (** the reduced ("core") AS graph *)
  full_graph : Topology.Asgraph.t;  (** before stub removal *)
  removed_stubs : Asn.Set.t;
  classification : Topology.Extract.classification;
  levels : Topology.Hierarchy.levels;  (** tier-1 clique etc. (§3.1) *)
}

val prepare : Rib.t -> prepared

val split :
  ?by_origin:bool -> ?train_fraction:float -> seed:int -> prepared ->
  Evaluation.Split.t
(** Training/validation split of the prepared data (§4.2): by
    observation points (default) or by originating ASes. *)

val build :
  ?options:Refine.Refiner.options -> prepared -> training:Rib.t ->
  Refine.Refiner.result
(** Initial model on the core graph, refined against the training set. *)

val evaluate :
  Refine.Refiner.result -> validation:Rib.t -> Evaluation.Predict.report
(** Grade the refined model's predictions on held-out data, reusing the
    refiner's final simulation states. *)

type experiment = {
  prepared : prepared;
  splits : Evaluation.Split.t;
  refinement : Refine.Refiner.result;
  prediction : Evaluation.Predict.report;
}

val run_experiment :
  ?options:Refine.Refiner.options ->
  ?by_origin:bool ->
  ?train_fraction:float ->
  ?seed:int ->
  Rib.t ->
  experiment
(** The full §4/§5 pipeline on a cleaned data set; [seed] (default 7)
    drives the split. *)

val baseline_shortest_path : prepared -> Evaluation.Agreement.breakdown
(** Table 2, column "Shortest Path": one router per AS, no policies. *)

val baseline_policies : prepared -> Evaluation.Agreement.breakdown
(** Table 2, column "Customer/Peering Policies": one router per AS with
    inferred-relationship policies (§3.3). *)

val infer_relationships : prepared -> Topology.Relationships.t
(** Valley-free inference on the full graph, seeded with the inferred
    tier-1 clique. *)
