open Bgp

type tier = T1 | T2 | T3 | Stub

let tier_to_string = function
  | T1 -> "tier-1"
  | T2 -> "tier-2"
  | T3 -> "tier-3"
  | Stub -> "stub"

type rel = Provider | Peer | Sibling

type link = { a : Asn.t; a_router : int; b : Asn.t; b_router : int; rel : rel }

type t = {
  conf : Conf.t;
  tiers : tier Asn.Map.t;
  routers : int Asn.Map.t;
  links : link list;
  coords : (int * int) array Asn.Map.t;
}

let rand_range rng (lo, hi) = lo + Random.State.int rng (hi - lo + 1)

(* Weighted pick without replacement is not needed; duplicates are
   filtered by the caller.  Weights favour already-popular providers to
   produce the Internet's heavy-tailed degrees. *)
let weighted_pick rng weights candidates =
  let total = List.fold_left (fun acc c -> acc + weights c) 0 candidates in
  if total = 0 then None
  else
    let x = Random.State.int rng total in
    let rec go acc = function
      | [] -> None
      | c :: rest ->
          let acc = acc + weights c in
          if x < acc then Some c else go acc rest
    in
    go 0 candidates

let generate (conf : Conf.t) rng =
  let next_asn = ref 0 in
  let fresh_tier n tier acc =
    let rec loop i acc =
      if i >= n then acc
      else begin
        incr next_asn;
        loop (i + 1) (Asn.Map.add !next_asn tier acc)
      end
    in
    loop 0 acc
  in
  let tiers =
    Asn.Map.empty
    |> fresh_tier conf.Conf.n_tier1 T1
    |> fresh_tier conf.Conf.n_tier2 T2
    |> fresh_tier conf.Conf.n_tier3 T3
    |> fresh_tier conf.Conf.n_stub Stub
  in
  let of_tier t =
    Asn.Map.fold (fun a t' acc -> if t' = t then a :: acc else acc) tiers []
    |> List.rev
  in
  let tier1 = of_tier T1 and tier2 = of_tier T2 and tier3 = of_tier T3 in
  let stubs = of_tier Stub in
  let routers =
    Asn.Map.mapi
      (fun _ t ->
        match t with
        | T1 -> rand_range rng conf.Conf.routers_tier1
        | T2 -> rand_range rng conf.Conf.routers_tier2
        | T3 -> rand_range rng conf.Conf.routers_tier3
        | Stub -> rand_range rng conf.Conf.routers_stub)
      tiers
  in
  let degree = Hashtbl.create 1024 in
  let deg a = Option.value ~default:0 (Hashtbl.find_opt degree a) in
  let bump a = Hashtbl.replace degree a (deg a + 1) in
  let links = ref [] in
  let used_pairs = Hashtbl.create 4096 in
  (* One router-level link; remembers the router pair so parallel links
     never reuse it (the simulator allows one session per node pair). *)
  let add_link a b rel =
    let ra_max = Asn.Map.find a routers and rb_max = Asn.Map.find b routers in
    let rec pick tries =
      if tries = 0 then None
      else
        let ra = Random.State.int rng ra_max
        and rb = Random.State.int rng rb_max in
        if Hashtbl.mem used_pairs (a, ra, b, rb) then pick (tries - 1)
        else Some (ra, rb)
    in
    match pick 8 with
    | None -> ()
    | Some (ra, rb) ->
        Hashtbl.replace used_pairs (a, ra, b, rb) ();
        Hashtbl.replace used_pairs (b, rb, a, ra) ();
        links := { a; a_router = ra; b; b_router = rb; rel } :: !links;
        bump a;
        bump b
  in
  let adjacent = Hashtbl.create 4096 in
  let mark_adj a b =
    Hashtbl.replace adjacent (a, b) ();
    Hashtbl.replace adjacent (b, a) ()
  in
  let is_adj a b = Hashtbl.mem adjacent (a, b) in
  let add_adjacency a b rel =
    if a <> b && not (is_adj a b) then begin
      mark_adj a b;
      add_link a b rel;
      if Random.State.float rng 1.0 < conf.Conf.parallel_link_prob then
        add_link a b rel
    end
  in
  (* Tier-1 clique: all peerings. *)
  List.iter
    (fun a -> List.iter (fun b -> if a < b then add_adjacency a b Peer) tier1)
    tier1;
  let maybe_sibling rel =
    match rel with
    | Provider when Random.State.float rng 1.0 < conf.Conf.sibling_frac ->
        Sibling
    | rel -> rel
  in
  let connect_customer asn ~providers ~count =
    let weights p = 1 + deg p in
    let rec go chosen n =
      if n = 0 then ()
      else
        match
          weighted_pick rng weights
            (List.filter (fun p -> not (List.mem p chosen)) providers)
        with
        | None -> ()
        | Some p ->
            add_adjacency p asn (maybe_sibling Provider);
            go (p :: chosen) (n - 1)
    in
    go [] count
  in
  (* Tier-2: 2-4 tier-1 providers, peerings among themselves. *)
  List.iter
    (fun asn -> connect_customer asn ~providers:tier1 ~count:(2 + Random.State.int rng 3))
    tier2;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b && Random.State.float rng 1.0 < conf.Conf.tier2_peer_prob
          then add_adjacency a b Peer)
        tier2)
    tier2;
  (* Tier-3: 1-3 providers drawn mostly from tier-2, peerings among
     themselves. *)
  List.iter
    (fun asn ->
      let providers =
        if Random.State.float rng 1.0 < 0.15 then tier1 @ tier2 else tier2
      in
      connect_customer asn ~providers ~count:(2 + Random.State.int rng 3))
    tier3;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b && Random.State.float rng 1.0 < conf.Conf.tier3_peer_prob
          then add_adjacency a b Peer)
        tier3)
    tier3;
  (* Stubs: single-homed fraction gets exactly one provider, the rest
     two or three. *)
  List.iter
    (fun asn ->
      let count =
        if Random.State.float rng 1.0 < conf.Conf.stub_single_homed_frac then 1
        else 2 + Random.State.int rng 3
      in
      connect_customer asn ~providers:(tier2 @ tier3) ~count)
    stubs;
  let coords =
    Asn.Map.map
      (fun n ->
        Array.init n (fun _ ->
            (Random.State.int rng 100, Random.State.int rng 100)))
      routers
  in
  { conf; tiers; routers; links = List.rev !links; coords }

let ases t = Asn.Map.fold (fun a _ acc -> a :: acc) t.tiers [] |> List.rev

let tier_of t a = Asn.Map.find a t.tiers

let as_graph t =
  List.fold_left
    (fun g l -> Topology.Asgraph.add_edge g l.a l.b)
    (List.fold_left (fun g a -> Topology.Asgraph.add_node g a) Topology.Asgraph.empty (ases t))
    t.links

let igp_cost t asn r1 r2 =
  let c = Asn.Map.find asn t.coords in
  let x1, y1 = c.(r1) and x2, y2 = c.(r2) in
  abs (x1 - x2) + abs (y1 - y2)

let true_rel t a b =
  let rec find = function
    | [] -> None
    | l :: rest ->
        if l.a = a && l.b = b then
          Some
            (match l.rel with
            | Provider -> `Provider
            | Peer -> `Peer
            | Sibling -> `Sibling)
        else if l.a = b && l.b = a then
          Some
            (match l.rel with
            | Provider -> `Customer
            | Peer -> `Peer
            | Sibling -> `Sibling)
        else find rest
  in
  find t.links

let pp_summary ppf t =
  let count tier =
    Asn.Map.fold (fun _ t' acc -> if t' = tier then acc + 1 else acc) t.tiers 0
  in
  let total_routers = Asn.Map.fold (fun _ n acc -> acc + n) t.routers 0 in
  Format.fprintf ppf
    "%d ASes (t1=%d t2=%d t3=%d stub=%d), %d router links, %d routers"
    (Asn.Map.cardinal t.tiers) (count T1) (count T2) (count T3) (count Stub)
    (List.length t.links) total_routers
