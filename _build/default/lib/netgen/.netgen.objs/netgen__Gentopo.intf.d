lib/netgen/gentopo.mli: Asn Bgp Conf Format Random Topology
