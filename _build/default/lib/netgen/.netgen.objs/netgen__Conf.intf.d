lib/netgen/conf.mli: Format
