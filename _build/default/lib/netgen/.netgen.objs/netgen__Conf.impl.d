lib/netgen/conf.ml: Format
