lib/netgen/gentopo.ml: Array Asn Bgp Conf Format Hashtbl List Option Random Topology
