lib/netgen/groundtruth.mli: Asn Bgp Conf Format Gentopo Hashtbl Prefix Random Rib Simulator
