lib/netgen/groundtruth.ml: Array Asn Aspath Bgp Conf Format Gentopo Hashtbl Ipv4 List Prefix Random Rib Simulator
