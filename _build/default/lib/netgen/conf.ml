type t = {
  seed : int;
  n_tier1 : int;
  n_tier2 : int;
  n_tier3 : int;
  n_stub : int;
  stub_single_homed_frac : float;
  tier2_peer_prob : float;
  tier3_peer_prob : float;
  sibling_frac : float;
  parallel_link_prob : float;
  routers_tier1 : int * int;
  routers_tier2 : int * int;
  routers_tier3 : int * int;
  routers_stub : int * int;
  rr_threshold : int;
  weird_lpref_frac : float;
  selective_announce_frac : float;
  med_noise_frac : float;
  multi_prefix_frac : float;
  max_prefixes_per_as : int;
  n_obs_ases : int;
  multi_obs_frac : float;
}

let default =
  {
    seed = 42;
    n_tier1 = 10;
    n_tier2 = 70;
    n_tier3 = 220;
    n_stub = 400;
    stub_single_homed_frac = 0.4;
    tier2_peer_prob = 0.20;
    tier3_peer_prob = 0.01;
    sibling_frac = 0.02;
    parallel_link_prob = 0.45;
    routers_tier1 = (6, 10);
    routers_tier2 = (3, 6);
    routers_tier3 = (2, 4);
    routers_stub = (1, 2);
    rr_threshold = 6;
    weird_lpref_frac = 0.06;
    selective_announce_frac = 0.30;
    med_noise_frac = 0.10;
    multi_prefix_frac = 0.70;
    max_prefixes_per_as = 8;
    n_obs_ases = 90;
    multi_obs_frac = 0.3;
  }

let scaled f =
  let s n = max 1 (int_of_float (float_of_int n *. f)) in
  {
    default with
    n_tier2 = s default.n_tier2;
    n_tier3 = s default.n_tier3;
    n_stub = s default.n_stub;
    n_obs_ases = s default.n_obs_ases;
  }

let tiny =
  {
    default with
    n_tier1 = 3;
    n_tier2 = 6;
    n_tier3 = 12;
    n_stub = 20;
    n_obs_ases = 8;
    routers_tier1 = (2, 3);
    routers_tier2 = (1, 2);
    routers_tier3 = (1, 2);
    routers_stub = (1, 1);
  }

let pp ppf c =
  Format.fprintf ppf
    "seed=%d ASes=%d+%d+%d+%d obs=%d peers(t2)=%.3f weird=%.2f selective=%.2f"
    c.seed c.n_tier1 c.n_tier2 c.n_tier3 c.n_stub c.n_obs_ases
    c.tier2_peer_prob c.weird_lpref_frac c.selective_announce_frac
