(** Synthetic AS- and router-level topologies.

    Generates the structural half of the ground-truth world: a tiered AS
    hierarchy (tier-1 clique, tier-2, tier-3, stubs) with multihoming,
    peering and sibling links, several border routers per transit AS,
    possibly several router-level links per AS adjacency, and router
    coordinates from which IGP distances (hot-potato inputs) derive.
    Everything is driven by the seed in {!Conf.t}. *)

open Bgp

type tier = T1 | T2 | T3 | Stub

val tier_to_string : tier -> string

type rel = Provider | Peer | Sibling
(** Ground-truth relationship of a link's [a] side towards its [b] side:
    [Provider] means [a] is the provider of [b]. *)

type link = {
  a : Asn.t;
  a_router : int;  (** router index inside [a] *)
  b : Asn.t;
  b_router : int;
  rel : rel;
}

type t = {
  conf : Conf.t;
  tiers : tier Asn.Map.t;
  routers : int Asn.Map.t;  (** routers per AS *)
  links : link list;
  coords : (int * int) array Asn.Map.t;
      (** per-router plane coordinates; IGP cost between two routers of
          an AS is their Manhattan distance. *)
}

val generate : Conf.t -> Random.State.t -> t

val ases : t -> Asn.t list
(** All ASNs, ascending. *)

val tier_of : t -> Asn.t -> tier

val as_graph : t -> Topology.Asgraph.t
(** The true AS-level graph (one edge per adjacency). *)

val igp_cost : t -> Asn.t -> int -> int -> int
(** [igp_cost t asn r1 r2]: Manhattan distance between two routers of
    [asn]. *)

val true_rel :
  t -> Asn.t -> Asn.t -> [ `Provider | `Customer | `Peer | `Sibling ] option
(** Ground-truth relationship of the first AS towards the second, if
    they are adjacent ([`Provider]: the first provides transit for the
    second).  Parallel links share the relationship. *)

val pp_summary : Format.formatter -> t -> unit
