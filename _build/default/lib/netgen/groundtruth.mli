(** The ground-truth router-level world and its observation.

    Builds a {!Simulator.Net.t} from a generated topology: full-mesh
    iBGP inside every AS, eBGP sessions per router link with Gao-Rexford
    import preferences and export rules, hot-potato IGP costs — plus the
    configured dose of non-conventional ("weird") policies: deviant
    per-session preferences and per-prefix selective announcements.

    Observation then simulates every prefix and dumps the routes seen at
    the observation points, yielding the data set the model-building
    pipeline consumes.  The pipeline never sees anything else of the
    world. *)

open Bgp

type world = {
  topo : Gentopo.t;
  net : Simulator.Net.t;
  node_of_router : (Asn.t * int, int) Hashtbl.t;  (** (asn, router) → node id *)
  obs : (int * Rib.obs_point) list;  (** observation node, its identity *)
  prefix_plan : (Prefix.t * Asn.t * int list) list;
      (** every prefix of the world with its origin AS and the router
          nodes anchoring it.  Prefix 0 of an AS is anchored at all of
          its routers; further prefixes at random subsets, which makes
          different prefixes of one AS exit differently (hot potato). *)
  rng : Random.State.t;  (** generator state after construction *)
}

val build : Conf.t -> world
(** Deterministic in [conf.seed]. *)

val originators : world -> Asn.t -> int list
(** Every router of the AS (anchors of its prefix 0). *)

val simulate_prefix : world -> Asn.t -> Simulator.Engine.state
(** Ground-truth routing for prefix 0 of one AS. *)

val simulate : world -> Prefix.t -> Simulator.Engine.state
(** Ground-truth routing for any prefix of the plan.  Raises
    [Not_found] for prefixes outside the plan. *)

val observe : ?on_prefix:(int -> int -> unit) -> world -> Rib.t
(** Simulate all prefixes and collect the observation points' RIBs.
    [on_prefix done_count total] reports progress. *)

val observation_points : world -> Rib.obs_point list

val pp_summary : Format.formatter -> world -> unit
