(** Per-prefix route propagation to convergence.

    Like C-BGP (paper §2, §4.1), the engine computes the steady state of
    BGP for one prefix at a time: originators inject the route, nodes
    apply import policies, run the decision process and re-export their
    best route until no announcement changes anything.  The result gives
    access to every node's RIB-In and best route, which is exactly what
    the matching metrics of §4.2 inspect. *)

open Bgp

type state

val run :
  ?max_events:int ->
  ?on_best_change:(int -> Rattr.t option -> unit) ->
  Net.t ->
  prefix:Prefix.t ->
  originators:int list ->
  state
(** Simulate until convergence.  [max_events] (default
    [1000 + 200 * node_count]) bounds node activations; exceeding the
    budget flags the state as non-converged instead of looping.
    [on_best_change node best] is a trace hook, called whenever a node
    adopts a new best route. *)

val prefix : state -> Prefix.t

val converged : state -> bool

val events : state -> int
(** Node activations performed. *)

val best : state -> int -> Rattr.t option
(** The node's selected route ([None]: no route). *)

val rib_in : state -> int -> (int * Rattr.t) list
(** [(session_index, route)] for every session currently delivering a
    route to the node, in session order. *)

val candidates : state -> Net.t -> int -> Rattr.t list
(** The decision-process input at a node: originated route (if the node
    originates the prefix) followed by the RIB-In routes. *)

val best_full_path : Net.t -> state -> int -> int array option
(** The node's selected AS-level path including its own AS — directly
    comparable with an observed AS-path. *)

val selected_paths : Net.t -> state -> Asn.t -> int array list
(** All distinct full paths selected by the nodes of an AS (what the AS
    as a whole propagates — the model's answer to "which routes does
    this AS use for this prefix"). *)
