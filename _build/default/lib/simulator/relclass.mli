(** Relationship classes as session tags.

    The engine is policy-agnostic: sessions carry an integer class and
    the network an export matrix over classes.  This module fixes the
    conventional encoding used by the ground-truth world and by the
    relationship-based baseline (paper §3.3): Gao-Rexford preferences
    and the standard export rule ("routes learned from a peer or a
    provider are exported only to customers and siblings").

    Preference values live in disjoint per-class bands with customers
    strictly on top.  Per-session "weird" policies may pick any value
    inside their class band: that varies which link an AS prefers — and
    lets longer routes win over shorter ones within a class — without
    violating the Gao-Rexford safety condition (customer routes above
    all others), so simulations provably converge. *)

val customer : int

val peer : int

val provider : int

val sibling : int

val unknown : int
(** Edges the inference could not classify.  The paper treats them like
    peerings (footnote 2). *)

val lpref : int -> int
(** Default import preference for a session class: customer 120,
    sibling 110, peer/unknown 100, provider 80. *)

val band : int -> int * int
(** Inclusive LOCAL_PREF range a deviant session of this class may use:
    customer 116-125, sibling 106-115, peer/unknown 96-105,
    provider 76-90. *)

val export_ok : learned_class:int -> to_class:int -> bool
(** The valley-free export rule.  Originated routes ([learned_class =
    -1]) and customer routes go everywhere; peer, provider, unknown and
    sibling routes only to customers and siblings.  (Treating
    sibling-learned routes conservatively keeps transit chains through
    sibling links from leaking provider routes upward.) *)

val to_string : int -> string
