type tree = {
  parent : int option array;
  children : int list array;
  roots : int list;
  unrouted : int list;
}

let tree net st =
  let n = Net.node_count net in
  let parent = Array.make n None in
  let children = Array.make n [] in
  let roots = ref [] and unrouted = ref [] in
  for id = n - 1 downto 0 do
    match Engine.best st id with
    | None -> unrouted := id :: !unrouted
    | Some r ->
        if r.Rattr.from_node < 0 then roots := id :: !roots
        else begin
          parent.(id) <- Some r.Rattr.from_node;
          children.(r.Rattr.from_node) <- id :: children.(r.Rattr.from_node)
        end
  done;
  { parent; children; roots = !roots; unrouted = !unrouted }

let depth t n =
  let rec go n acc =
    match t.parent.(n) with
    | None -> acc
    | Some p -> if acc > Array.length t.parent then acc else go p (acc + 1)
  in
  go n 0

let rec subtree_size t n =
  1 + List.fold_left (fun acc c -> acc + subtree_size t c) 0 t.children.(n)

let depth_histogram t =
  let table = Hashtbl.create 16 in
  Array.iteri
    (fun id parent ->
      match parent with
      | Some _ ->
          let d = depth t id in
          Hashtbl.replace table d
            (1 + Option.value ~default:0 (Hashtbl.find_opt table d))
      | None -> ())
    t.parent;
  List.iter
    (fun r ->
      Hashtbl.replace table 0
        (1 + Option.value ~default:0 (Hashtbl.find_opt table 0));
      ignore r)
    t.roots;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let pp_route net st ppf n =
  let rec go n first =
    if not first then Format.fprintf ppf " <- ";
    Format.fprintf ppf "n%d(AS%d)" n (Net.asn_of net n);
    match Engine.best st n with
    | Some r when r.Rattr.from_node >= 0 -> go r.Rattr.from_node false
    | Some _ -> Format.fprintf ppf " [origin]"
    | None -> Format.fprintf ppf " [no route]"
  in
  go n true
