let customer = 1

let peer = 2

let provider = 3

let sibling = 4

let unknown = 5

let lpref c =
  if c = customer then 120
  else if c = sibling then 110
  else if c = peer || c = unknown then 100
  else if c = provider then 80
  else 100

let band c =
  if c = customer then (116, 125)
  else if c = sibling then (106, 115)
  else if c = peer || c = unknown then (96, 105)
  else if c = provider then (76, 90)
  else (96, 105)

let export_ok ~learned_class ~to_class =
  learned_class = -1
  || learned_class = customer
  || to_class = customer
  || to_class = sibling

let to_string c =
  if c = customer then "customer"
  else if c = peer then "peer"
  else if c = provider then "provider"
  else if c = sibling then "sibling"
  else if c = unknown then "unknown"
  else "none"
