lib/simulator/trace.ml: Array Engine Format Hashtbl List Net Option Rattr Stdlib
