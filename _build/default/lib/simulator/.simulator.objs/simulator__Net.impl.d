lib/simulator/net.ml: Array Asn Bgp Decision Format Hashtbl Ipv4 List Prefix
