lib/simulator/engine.mli: Asn Bgp Net Prefix Rattr
