lib/simulator/trace.mli: Engine Format Net
