lib/simulator/decision.mli: Rattr
