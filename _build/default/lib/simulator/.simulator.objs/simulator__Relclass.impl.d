lib/simulator/relclass.ml:
