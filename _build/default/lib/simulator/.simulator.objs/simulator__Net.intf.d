lib/simulator/net.mli: Asn Bgp Decision Format Ipv4 Prefix
