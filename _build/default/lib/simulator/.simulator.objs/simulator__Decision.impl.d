lib/simulator/decision.ml: Array List Rattr Stdlib
