lib/simulator/rattr.mli: Asn Bgp Format
