lib/simulator/relclass.mli:
