lib/simulator/engine.ml: Array Bgp Decision Ipv4 List Net Prefix Queue Rattr Stdlib
