lib/simulator/rattr.ml: Array Aspath Bgp Format
