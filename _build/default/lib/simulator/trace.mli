(** Propagation inspection of a converged state.

    Once a per-prefix simulation has converged, the best routes form a
    forest rooted at the originators: each routed node's parent is the
    node that announced its best route.  This module reconstructs that
    forest and derives the statistics used for debugging models and for
    reporting convergence behaviour. *)

type tree = {
  parent : int option array;
      (** [parent.(n)] is the announcing node of [n]'s best route;
          [None] for originators and unrouted nodes. *)
  children : int list array;  (** inverse of [parent] *)
  roots : int list;  (** nodes using their own originated route *)
  unrouted : int list;  (** nodes with no route at all *)
}

val tree : Net.t -> Engine.state -> tree

val depth : tree -> int -> int
(** Hops from a node to its root along the forest ([0] for roots and
    unrouted nodes). *)

val subtree_size : tree -> int -> int
(** Number of nodes (including [n]) whose traffic towards the prefix
    flows through [n] — the node's "customer cone" for this prefix. *)

val depth_histogram : tree -> (int * int) list
(** [(depth, #routed nodes)]; a propagation-depth profile. *)

val pp_route : Net.t -> Engine.state -> Format.formatter -> int -> unit
(** Print a node's route as a hop-by-hop chain of nodes
    ("n12(AS7) <- n4(AS2) <- root n1(AS9)"). *)
