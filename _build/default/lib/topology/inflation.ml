open Bgp

type report = {
  paths : int;
  exact : int;
  inflated : int;
  extra_hops_histogram : (int * int) list;
  mean_inflation : float;
}

(* Single-source BFS, memoized per source by the caller. *)
let bfs graph source =
  let dist = Hashtbl.create 256 in
  Hashtbl.replace dist source 0;
  let queue = Queue.create () in
  Queue.push source queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    let du = Hashtbl.find dist u in
    Asn.Set.iter
      (fun v ->
        if not (Hashtbl.mem dist v) then begin
          Hashtbl.replace dist v (du + 1);
          Queue.push v queue
        end)
      (Asgraph.neighbors graph u)
  done;
  dist

let bfs_distance graph a b =
  if not (Asgraph.mem_node graph a && Asgraph.mem_node graph b) then None
  else Hashtbl.find_opt (bfs graph a) b

let analyze graph paths =
  let memo = Hashtbl.create 64 in
  let dist_from source =
    match Hashtbl.find_opt memo source with
    | Some d -> d
    | None ->
        let d = bfs graph source in
        Hashtbl.replace memo source d;
        d
  in
  let hist = Hashtbl.create 16 in
  let graded = ref 0 and exact = ref 0 and total_extra = ref 0 in
  List.iter
    (fun path ->
      match (Aspath.head path, Aspath.origin path) with
      | Some a, Some b when a <> b && Asgraph.mem_node graph a -> (
          match Hashtbl.find_opt (dist_from a) b with
          | Some d ->
              let hops = Aspath.length path - 1 in
              let extra = max 0 (hops - d) in
              incr graded;
              if extra = 0 then incr exact;
              total_extra := !total_extra + extra;
              Hashtbl.replace hist extra
                (1 + Option.value ~default:0 (Hashtbl.find_opt hist extra))
          | None -> ())
      | _, _ -> ())
    paths;
  {
    paths = !graded;
    exact = !exact;
    inflated = !graded - !exact;
    extra_hops_histogram =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) hist []
      |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b);
    mean_inflation =
      (if !graded = 0 then 0.0
       else float_of_int !total_extra /. float_of_int !graded);
  }

let pp ppf r =
  Format.fprintf ppf
    "graded %d paths: %d shortest-possible (%.1f%%), %d inflated, mean +%.2f \
     hops@."
    r.paths r.exact
    (if r.paths = 0 then 0.0
     else 100.0 *. float_of_int r.exact /. float_of_int r.paths)
    r.inflated r.mean_inflation;
  List.iter
    (fun (extra, n) -> Format.fprintf ppf "  +%d hops: %d paths@." extra n)
    r.extra_hops_histogram
