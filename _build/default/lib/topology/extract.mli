(** Deriving the AS topology from observed AS-paths (paper §3.1).

    Besides the raw graph, this module reproduces the paper's data
    cleaning: classifying transit vs stub ASes, single- vs multi-homed
    stubs, and removing single-homed stub ASes (whose path information is
    transferred to their upstream's prefix by {!Bgp.Rib.transfer_stub_origins}). *)

open Bgp

val graph_of_paths : Aspath.t list -> Asgraph.t
(** Edge for every pair of adjacent ASes on any path. *)

val graph_of_dataset : Rib.t -> Asgraph.t

val transit_ases : Aspath.t list -> Asn.Set.t
(** ASes that appear at least once in the middle of a path — the paper's
    transit providers. *)

type classification = {
  graph : Asgraph.t;  (** the full extracted graph *)
  transit : Asn.Set.t;
  stubs_single_homed : Asn.Set.t;  (** non-transit, observed degree 1 *)
  stubs_multi_homed : Asn.Set.t;  (** non-transit, observed degree >= 2 *)
}

val classify : Rib.t -> classification

val pp_classification : Format.formatter -> classification -> unit
(** Prints the §3.1-style inventory (AS count, edges, transit count,
    single-/multi-homed stub counts). *)

type reduced = {
  core : Asgraph.t;  (** graph after removing single-homed stubs *)
  removed : Asn.Set.t;  (** the removed single-homed stub ASes *)
  data : Rib.t;  (** dataset with stub origins transferred *)
}

val reduce : ?reprefix:(Asn.t -> Prefix.t) -> Rib.t -> reduced
(** The paper's model-building input: remove single-homed stub ASes from
    the graph and transfer their origination to the upstream neighbour's
    prefix.  [reprefix] defaults to {!Bgp.Asn.origin_prefix}. *)
