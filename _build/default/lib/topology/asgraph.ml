open Bgp

type t = { adj : Asn.Set.t Asn.Map.t; nedges : int }

let empty = { adj = Asn.Map.empty; nedges = 0 }

let mem_node g a = Asn.Map.mem a g.adj

let neighbors g a =
  match Asn.Map.find_opt a g.adj with
  | Some s -> s
  | None -> Asn.Set.empty

let mem_edge g a b = Asn.Set.mem b (neighbors g a)

let add_node g a =
  if mem_node g a then g else { g with adj = Asn.Map.add a Asn.Set.empty g.adj }

let add_edge g a b =
  if a = b then add_node g a
  else if mem_edge g a b then g
  else
    let adj =
      g.adj
      |> Asn.Map.add a (Asn.Set.add b (neighbors g a))
      |> Asn.Map.add b (Asn.Set.add a (neighbors g b))
    in
    { adj; nedges = g.nedges + 1 }

let remove_edge g a b =
  if not (mem_edge g a b) then g
  else
    let adj =
      g.adj
      |> Asn.Map.add a (Asn.Set.remove b (neighbors g a))
      |> Asn.Map.add b (Asn.Set.remove a (neighbors g b))
    in
    { adj; nedges = g.nedges - 1 }

let remove_node g a =
  if not (mem_node g a) then g
  else
    let nbrs = neighbors g a in
    let g = Asn.Set.fold (fun b acc -> remove_edge acc a b) nbrs g in
    { g with adj = Asn.Map.remove a g.adj }

let degree g a = Asn.Set.cardinal (neighbors g a)

let nodes g = Asn.Map.fold (fun a _ acc -> a :: acc) g.adj [] |> List.rev

let node_set g = Asn.Map.fold (fun a _ acc -> Asn.Set.add a acc) g.adj Asn.Set.empty

let num_nodes g = Asn.Map.cardinal g.adj

let num_edges g = g.nedges

let fold_nodes f g init = Asn.Map.fold (fun a _ acc -> f a acc) g.adj init

let fold_edges f g init =
  Asn.Map.fold
    (fun a nbrs acc ->
      Asn.Set.fold (fun b acc -> if a < b then f a b acc else acc) nbrs acc)
    g.adj init

let edges g = fold_edges (fun a b acc -> (a, b) :: acc) g [] |> List.rev

let of_edges es = List.fold_left (fun g (a, b) -> add_edge g a b) empty es

let subgraph g set =
  Asn.Set.fold
    (fun a acc ->
      let acc = add_node acc a in
      Asn.Set.fold
        (fun b acc -> if Asn.Set.mem b set then add_edge acc a b else acc)
        (neighbors g a) acc)
    set empty

let is_clique g set =
  Asn.Set.for_all
    (fun a ->
      Asn.Set.for_all (fun b -> a = b || mem_edge g a b) set)
    set

let connected_component g start =
  if not (mem_node g start) then Asn.Set.empty
  else
    let rec bfs frontier seen =
      if Asn.Set.is_empty frontier then seen
      else
        let next =
          Asn.Set.fold
            (fun a acc -> Asn.Set.union acc (Asn.Set.diff (neighbors g a) seen))
            frontier Asn.Set.empty
        in
        bfs next (Asn.Set.union seen next)
    in
    bfs (Asn.Set.singleton start) (Asn.Set.singleton start)

let degree_histogram g =
  let table = Hashtbl.create 64 in
  fold_nodes
    (fun a () ->
      let d = degree g a in
      Hashtbl.replace table d (1 + Option.value ~default:0 (Hashtbl.find_opt table d)))
    g ();
  Hashtbl.fold (fun d n acc -> (d, n) :: acc) table []
  |> List.sort (fun (d1, _) (d2, _) -> Stdlib.compare d1 d2)

let pp_stats ppf g =
  let max_deg = fold_nodes (fun a m -> max m (degree g a)) g 0 in
  Format.fprintf ppf "%d nodes, %d edges, max degree %d" (num_nodes g)
    (num_edges g) max_deg
