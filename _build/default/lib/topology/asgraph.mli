(** Undirected AS-level graphs.

    Nodes are ASNs; an edge between two ASes means the data shows them
    exchanging routes directly (paper §3.1: "if two ASes are next to each
    other on a path we assume that they have an agreement to exchange
    data").  The structure is persistent (applicative): operations return
    new graphs. *)

open Bgp

type t

val empty : t

val add_node : t -> Asn.t -> t

val add_edge : t -> Asn.t -> Asn.t -> t
(** Adds both endpoints as needed.  Self-loops are ignored. *)

val remove_node : t -> Asn.t -> t
(** Removes the node and all incident edges; no-op if absent. *)

val remove_edge : t -> Asn.t -> Asn.t -> t

val mem_node : t -> Asn.t -> bool

val mem_edge : t -> Asn.t -> Asn.t -> bool

val neighbors : t -> Asn.t -> Asn.Set.t
(** Empty set if the node is absent. *)

val degree : t -> Asn.t -> int

val nodes : t -> Asn.t list
(** Sorted. *)

val node_set : t -> Asn.Set.t

val num_nodes : t -> int

val num_edges : t -> int

val edges : t -> (Asn.t * Asn.t) list
(** Each undirected edge once, as [(a, b)] with [a < b]; sorted. *)

val fold_nodes : (Asn.t -> 'a -> 'a) -> t -> 'a -> 'a

val fold_edges : (Asn.t -> Asn.t -> 'a -> 'a) -> t -> 'a -> 'a
(** Each undirected edge once, with [a < b]. *)

val of_edges : (Asn.t * Asn.t) list -> t

val subgraph : t -> Asn.Set.t -> t
(** Induced subgraph on the given node set. *)

val is_clique : t -> Asn.Set.t -> bool
(** True iff every pair of distinct nodes in the set is connected. *)

val connected_component : t -> Asn.t -> Asn.Set.t
(** BFS component of a node; empty set if the node is absent. *)

val degree_histogram : t -> (int * int) list
(** [(degree, how many nodes)] sorted by degree. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: node count, edge count, max degree. *)
