(** Provider hierarchy (paper §3.1).

    The paper identifies level-1 (tier-1) providers as the largest clique
    of ASes containing a small seed list of known tier-1s, classifies the
    clique's neighbours as level-2, and groups everything else as
    "other". *)

open Bgp

val infer_tier1 : ?seeds:Asn.t list -> Asgraph.t -> Asn.Set.t
(** Greedy clique expansion.  Starting from [seeds] (default: the two
    highest-degree ASes, which must be adjacent — if not, the single
    highest-degree AS), candidate ASes are considered in decreasing
    degree order and added whenever the result remains a clique.
    Seeds that are not pairwise adjacent raise [Invalid_argument]. *)

type levels = {
  level1 : Asn.Set.t;
  level2 : Asn.Set.t;  (** neighbours of level-1, not themselves level-1 *)
  other : Asn.Set.t;
}

val classify : ?seeds:Asn.t list -> Asgraph.t -> levels

val level_of : levels -> Asn.t -> int
(** [1], [2] or [3] ("other"); [3] also for unknown ASes. *)

val pp_levels : Format.formatter -> levels -> unit
