open Bgp

let infer_tier1 ?seeds g =
  let by_degree =
    Asgraph.nodes g
    |> List.sort (fun a b ->
           let c = Stdlib.compare (Asgraph.degree g b) (Asgraph.degree g a) in
           if c <> 0 then c else Asn.compare a b)
  in
  let seeds =
    match seeds with
    | Some s -> s
    | None -> (
        match by_degree with
        | a :: b :: _ when Asgraph.mem_edge g a b -> [ a; b ]
        | a :: _ -> [ a ]
        | [] -> [])
  in
  let seed_set = Asn.Set.of_list seeds in
  if not (Asgraph.is_clique g seed_set) then
    invalid_arg "Hierarchy.infer_tier1: seeds are not a clique";
  List.fold_left
    (fun clique a ->
      if Asn.Set.mem a clique then clique
      else if Asn.Set.for_all (fun b -> Asgraph.mem_edge g a b) clique then
        Asn.Set.add a clique
      else clique)
    seed_set by_degree

type levels = { level1 : Asn.Set.t; level2 : Asn.Set.t; other : Asn.Set.t }

let classify ?seeds g =
  let level1 = infer_tier1 ?seeds g in
  let level2 =
    Asn.Set.fold
      (fun a acc -> Asn.Set.union acc (Asgraph.neighbors g a))
      level1 Asn.Set.empty
    |> fun s -> Asn.Set.diff s level1
  in
  let other = Asn.Set.diff (Asgraph.node_set g) (Asn.Set.union level1 level2) in
  { level1; level2; other }

let level_of levels a =
  if Asn.Set.mem a levels.level1 then 1
  else if Asn.Set.mem a levels.level2 then 2
  else 3

let pp_levels ppf l =
  Format.fprintf ppf "level-1: %d, level-2: %d, other: %d"
    (Asn.Set.cardinal l.level1) (Asn.Set.cardinal l.level2)
    (Asn.Set.cardinal l.other)
