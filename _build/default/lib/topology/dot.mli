(** Graphviz (DOT) rendering of AS graphs.

    For eyeballing extracted topologies and refined models: nodes are
    ASes (optionally coloured by hierarchy level), edges are AS
    adjacencies (optionally styled by inferred relationship). *)


val of_graph :
  ?levels:Hierarchy.levels ->
  ?relationships:Relationships.t ->
  ?quasi_routers:(Bgp.Asn.t -> int) ->
  Asgraph.t ->
  string
(** DOT source for the graph.  With [levels], tier-1 ASes render as red
    boxes, tier-2 orange, others grey.  With [relationships], provider →
    customer edges become directed arrows, peers dashed, siblings bold.
    With [quasi_routers], the count is shown in the node label. *)

val save :
  ?levels:Hierarchy.levels ->
  ?relationships:Relationships.t ->
  ?quasi_routers:(Bgp.Asn.t -> int) ->
  string ->
  Asgraph.t ->
  unit
