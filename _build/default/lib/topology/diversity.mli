(** Route-diversity statistics (paper §3.2).

    Two measurements drive the paper's argument that one router per AS
    cannot represent observed routing:

    - {b Figure 2}: the histogram of how many distinct AS-paths are
      observed between each (origin AS, observation AS) pair, over all
      prefixes the origin advertises;
    - {b Table 1}: for each AS, the maximum over destination prefixes of
      the number of distinct unique AS-paths the AS {e receives} — a
      lower bound on how many quasi-routers the AS needs. *)

open Bgp

val pair_path_histogram : Rib.t -> (int * int) list
(** [(k, n)] meaning: [n] AS-pairs have exactly [k] distinct observed
    AS-paths; sorted by [k].  The Figure 2 series. *)

val fraction_pairs_with_diversity : Rib.t -> float
(** Fraction of AS-pairs with more than one distinct path (the paper
    reports > 30%). *)

val prefixes_per_path_histogram : Rib.t -> (int * int) list
(** [(k, n)]: [n] distinct AS-paths are each used by exactly [k]
    prefixes (paper §3.2's log-log observation). *)

val received_paths : Rib.t -> (Asn.t * Prefix.t, Aspath.Set.t) Hashtbl.t
(** For every (AS, prefix), the set of distinct route paths the AS is
    seen to {e receive}: for every observed path [... a s1 s2 ... origin]
    the AS [a] receives the strict suffix [s1 s2 ... origin]. *)

val max_received_diversity : Rib.t -> (Asn.t * int) list
(** For each AS, [max] over prefixes of the number of distinct received
    paths; only ASes that receive at least one path appear. *)

val table1_quantiles : Rib.t -> (float * int) list
(** Table 1: the [(percentile, value)] pairs for percentiles
    75/90/95/98/99 of {!max_received_diversity}. *)
