
let node_attrs levels quasi_routers a =
  let label =
    match quasi_routers with
    | Some count when count a > 1 -> Printf.sprintf "AS%d\\n%d qr" a (count a)
    | Some _ | None -> Printf.sprintf "AS%d" a
  in
  let colour =
    match levels with
    | None -> "lightgrey"
    | Some l -> (
        match Hierarchy.level_of l a with
        | 1 -> "salmon"
        | 2 -> "orange"
        | _ -> "lightgrey")
  in
  Printf.sprintf "label=\"%s\", style=filled, fillcolor=%s, shape=box" label
    colour

let edge_repr relationships a b =
  match relationships with
  | None -> Printf.sprintf "  as%d -- as%d;" a b
  | Some rels -> (
      match Relationships.rel rels a b with
      | Relationships.Provider_of ->
          Printf.sprintf "  as%d -- as%d [dir=forward, arrowhead=normal];" a b
      | Relationships.Customer_of ->
          Printf.sprintf "  as%d -- as%d [dir=back, arrowtail=normal];" a b
      | Relationships.Peer -> Printf.sprintf "  as%d -- as%d [style=dashed];" a b
      | Relationships.Sibling ->
          Printf.sprintf "  as%d -- as%d [style=bold];" a b
      | Relationships.Unknown ->
          Printf.sprintf "  as%d -- as%d [color=grey];" a b)

let of_graph ?levels ?relationships ?quasi_routers graph =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "graph as_topology {\n";
  Buffer.add_string buf "  overlap=false;\n  splines=true;\n";
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "  as%d [%s];\n" a (node_attrs levels quasi_routers a)))
    (Asgraph.nodes graph);
  Asgraph.fold_edges
    (fun a b () ->
      Buffer.add_string buf (edge_repr relationships a b);
      Buffer.add_char buf '\n')
    graph ();
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let save ?levels ?relationships ?quasi_routers path graph =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc
        (of_graph ?levels ?relationships ?quasi_routers graph))
