open Bgp

let graph_of_paths paths =
  List.fold_left
    (fun g path ->
      let arr = Aspath.to_array path in
      let n = Array.length arr in
      let g = if n = 1 then Asgraph.add_node g arr.(0) else g in
      let rec loop i g =
        if i >= n - 1 then g else loop (i + 1) (Asgraph.add_edge g arr.(i) arr.(i + 1))
      in
      loop 0 g)
    Asgraph.empty paths

let graph_of_dataset data = graph_of_paths (Rib.all_paths data)

let transit_ases paths =
  List.fold_left
    (fun acc path ->
      let arr = Aspath.to_array path in
      let n = Array.length arr in
      let rec loop i acc =
        if i >= n - 1 then acc else loop (i + 1) (Asn.Set.add arr.(i) acc)
      in
      if n <= 2 then acc else loop 1 acc)
    Asn.Set.empty paths

type classification = {
  graph : Asgraph.t;
  transit : Asn.Set.t;
  stubs_single_homed : Asn.Set.t;
  stubs_multi_homed : Asn.Set.t;
}

let classify data =
  let paths = Rib.all_paths data in
  let graph = graph_of_paths paths in
  let transit = transit_ases paths in
  let single, multi =
    Asgraph.fold_nodes
      (fun a (single, multi) ->
        if Asn.Set.mem a transit then (single, multi)
        else if Asgraph.degree graph a <= 1 then (Asn.Set.add a single, multi)
        else (single, Asn.Set.add a multi))
      graph (Asn.Set.empty, Asn.Set.empty)
  in
  { graph; transit; stubs_single_homed = single; stubs_multi_homed = multi }

let pp_classification ppf c =
  Format.fprintf ppf
    "@[<v>AS graph: %a@,transit ASes: %d@,single-homed stubs: %d@,\
     multi-homed stubs: %d@]"
    Asgraph.pp_stats c.graph
    (Asn.Set.cardinal c.transit)
    (Asn.Set.cardinal c.stubs_single_homed)
    (Asn.Set.cardinal c.stubs_multi_homed)

type reduced = { core : Asgraph.t; removed : Asn.Set.t; data : Rib.t }

let reduce ?(reprefix = Asn.origin_prefix) data =
  let c = classify data in
  let removed = c.stubs_single_homed in
  let core = Asn.Set.fold (fun a g -> Asgraph.remove_node g a) removed c.graph in
  let data = Rib.transfer_stub_origins data ~removed ~reprefix in
  { core; removed; data }
