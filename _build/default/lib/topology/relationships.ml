open Bgp

type kind = Customer_of | Provider_of | Peer | Sibling | Unknown

let kind_to_string = function
  | Customer_of -> "customer-of"
  | Provider_of -> "provider-of"
  | Peer -> "peer"
  | Sibling -> "sibling"
  | Unknown -> "unknown"

let flip = function
  | Customer_of -> Provider_of
  | Provider_of -> Customer_of
  | (Peer | Sibling | Unknown) as k -> k

(* Per-edge vote record.  The key is the ordered pair (a, b) with a < b;
   [votes_ab] counts votes that a provides transit for b. *)
type votes = {
  mutable votes_ab : int;
  mutable votes_ba : int;
  mutable appearances : int;
  mutable at_top : int;
}

type t = { rels : (Asn.t * Asn.t, kind) Hashtbl.t }

let edge_key a b = if a < b then (a, b) else (b, a)

let top_index g arr =
  let n = Array.length arr in
  let best = ref 0 in
  for i = 1 to n - 1 do
    if Asgraph.degree g arr.(i) > Asgraph.degree g arr.(!best) then best := i
  done;
  !best

let vote table g path =
  let arr = Aspath.to_array path in
  let n = Array.length arr in
  if n >= 2 then begin
    let j = top_index g arr in
    for i = 0 to n - 2 do
      let key = edge_key arr.(i) arr.(i + 1) in
      let v =
        match Hashtbl.find_opt table key with
        | Some v -> v
        | None ->
            let v = { votes_ab = 0; votes_ba = 0; appearances = 0; at_top = 0 } in
            Hashtbl.add table key v;
            v
      in
      v.appearances <- v.appearances + 1;
      if i = j || i + 1 = j then v.at_top <- v.at_top + 1;
      (* Which endpoint provides transit: on the observation side of the
         top (i < j) the AS closer to the top is arr.(i+1); on the origin
         side (i >= j) it is arr.(i). *)
      let provider = if i < j then arr.(i + 1) else arr.(i) in
      let a, _ = key in
      if provider = a then v.votes_ab <- v.votes_ab + 1
      else v.votes_ba <- v.votes_ba + 1
    done
  end

let infer ?(level1 = Asn.Set.empty) ?(sibling_ratio = 0.5)
    ?(peer_degree_ratio = 10.0) g paths =
  let table = Hashtbl.create 4096 in
  List.iter (fun p -> vote table g p) paths;
  let rels = Hashtbl.create 4096 in
  (* Every edge of the graph gets a classification; edges that appear in
     no path (possible when callers pass a richer graph) stay Unknown. *)
  Asgraph.fold_edges
    (fun a b () ->
      let key = edge_key a b in
      let kind =
        if Asn.Set.mem a level1 && Asn.Set.mem b level1 then Peer
        else
          match Hashtbl.find_opt table key with
          | None -> Unknown
          | Some v ->
              let da = float_of_int (Asgraph.degree g a) in
              let db = float_of_int (Asgraph.degree g b) in
              let ratio = if da > db then da /. db else db /. da in
              let lo = min v.votes_ab v.votes_ba in
              let hi = max v.votes_ab v.votes_ba in
              if
                v.at_top = v.appearances
                && ratio <= peer_degree_ratio
                && (lo > 0 || hi <= 1)
              then Peer
              else if lo > 0 && float_of_int lo /. float_of_int hi >= sibling_ratio
              then Sibling
              else if v.votes_ab >= v.votes_ba then Provider_of
                (* a provides for b *)
              else Customer_of
      in
      Hashtbl.replace rels key kind)
    g ();
  { rels }

let rel t a b =
  let key = edge_key a b in
  match Hashtbl.find_opt t.rels key with
  | None -> Unknown
  | Some k ->
      (* Stored kind is a's relationship to b when a < b. *)
      let a', _ = key in
      (match k with
      | Provider_of -> if a = a' then Provider_of else Customer_of
      | Customer_of -> if a = a' then Customer_of else Provider_of
      | (Peer | Sibling | Unknown) as s -> s)

type counts = {
  customer_provider : int;
  peer : int;
  sibling : int;
  unknown : int;
}

let counts t =
  Hashtbl.fold
    (fun _ k acc ->
      match k with
      | Customer_of | Provider_of ->
          { acc with customer_provider = acc.customer_provider + 1 }
      | Peer -> { acc with peer = acc.peer + 1 }
      | Sibling -> { acc with sibling = acc.sibling + 1 }
      | Unknown -> { acc with unknown = acc.unknown + 1 })
    t.rels
    { customer_provider = 0; peer = 0; sibling = 0; unknown = 0 }

let pp_counts ppf c =
  Format.fprintf ppf
    "customer-provider: %d, peering: %d, sibling: %d, unknown: %d"
    c.customer_provider c.peer c.sibling c.unknown

let valley_free t path =
  let arr = Aspath.to_array path in
  let n = Array.length arr in
  (* Walk in announcement order: from origin (index n-1) towards the
     observer (index 0).  State [`Up] allows climbing; after a peer edge
     or the first descent only [`Down] steps are allowed. *)
  let rec walk i state =
    if i <= 0 then true
    else
      let from_as = arr.(i) and to_as = arr.(i - 1) in
      match (rel t from_as to_as, state) with
      | Customer_of, `Up -> walk (i - 1) `Up
      | Customer_of, `Down -> false
      | Peer, `Up -> walk (i - 1) `Down
      | Peer, `Down -> false
      | Provider_of, (`Up | `Down) -> walk (i - 1) `Down
      | (Sibling | Unknown), state -> walk (i - 1) state
  in
  if n <= 1 then true else walk (n - 1) `Up
