(** Path inflation analysis.

    Policy routing makes AS-paths longer than the shortest route the
    topology would allow; the literature the paper builds on ([12],
    "route diversity") quantifies this as {e path inflation}.  Comparing
    every observed path against the graph distance between its endpoints
    shows how far routing deviates from shortest-path — the same force
    that makes the paper's shortest-path baseline fail. *)

open Bgp

type report = {
  paths : int;  (** observed paths graded *)
  exact : int;  (** paths already as short as topologically possible *)
  inflated : int;
  extra_hops_histogram : (int * int) list;
      (** [(extra hops, #paths)]; 0 bucket = [exact] *)
  mean_inflation : float;  (** mean extra hops over all graded paths *)
}

val analyze : Asgraph.t -> Aspath.t list -> report
(** Grade each path's length against the BFS distance between its first
    and last AS in the graph.  Paths whose endpoints are disconnected or
    absent are skipped. *)

val bfs_distance : Asgraph.t -> Asn.t -> Asn.t -> int option
(** Hop distance between two ASes; [None] if disconnected. *)

val pp : Format.formatter -> report -> unit
