lib/topology/inflation.mli: Asgraph Asn Aspath Bgp Format
