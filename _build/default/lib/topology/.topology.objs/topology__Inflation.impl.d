lib/topology/inflation.ml: Asgraph Asn Aspath Bgp Format Hashtbl List Option Queue Stdlib
