lib/topology/asgraph.mli: Asn Bgp Format
