lib/topology/asgraph.ml: Asn Bgp Format Hashtbl List Option Stdlib
