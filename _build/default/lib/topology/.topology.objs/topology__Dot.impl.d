lib/topology/dot.ml: Asgraph Buffer Hierarchy List Out_channel Printf Relationships
