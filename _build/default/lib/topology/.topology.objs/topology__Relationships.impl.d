lib/topology/relationships.ml: Array Asgraph Asn Aspath Bgp Format Hashtbl List
