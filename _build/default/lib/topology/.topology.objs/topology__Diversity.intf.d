lib/topology/diversity.mli: Asn Aspath Bgp Hashtbl Prefix Rib
