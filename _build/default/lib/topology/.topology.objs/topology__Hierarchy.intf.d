lib/topology/hierarchy.mli: Asgraph Asn Bgp Format
