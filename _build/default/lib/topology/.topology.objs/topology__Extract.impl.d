lib/topology/extract.ml: Array Asgraph Asn Aspath Bgp Format List Rib
