lib/topology/dot.mli: Asgraph Bgp Hierarchy Relationships
