lib/topology/relationships.mli: Asgraph Asn Aspath Bgp Format
