lib/topology/hierarchy.ml: Asgraph Asn Bgp Format List Stdlib
