lib/topology/diversity.ml: Array Asn Aspath Bgp Hashtbl List Option Prefix Rib Stdlib
