lib/topology/extract.mli: Asgraph Asn Aspath Bgp Format Prefix Rib
