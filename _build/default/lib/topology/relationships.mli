(** AS-relationship inference (baseline of paper §3.3).

    The paper's single-router-with-policies baseline relies on inferred
    customer-provider and peer-peer relationships obtained with "a simple
    heuristic ... utilizing the valley-free assumption [15,16,18]": links
    between level-1 ASes are declared peering, and customer-provider
    edges are inferred iteratively from the observed paths (Gao-style
    top-of-path voting).

    These inferences are deliberately imperfect — that imperfection is
    the paper's motivation for being policy-agnostic — so this module
    aims for the standard heuristic, not ground truth. *)

open Bgp

type kind =
  | Customer_of  (** first AS is a customer of the second *)
  | Provider_of  (** first AS is a provider of the second *)
  | Peer
  | Sibling
  | Unknown

val kind_to_string : kind -> string

val flip : kind -> kind
(** Relationship seen from the other endpoint. *)

type t
(** An inferred relationship map over the edges of a graph. *)

val infer :
  ?level1:Asn.Set.t ->
  ?sibling_ratio:float ->
  ?peer_degree_ratio:float ->
  Asgraph.t ->
  Aspath.t list ->
  t
(** [infer g paths] votes along every path: the highest-degree AS of the
    path is its top; edges on the origin side of the top vote
    "left AS provides for right AS", edges on the observation side vote
    the other way.  An edge with substantial votes in both directions
    (minority/majority >= [sibling_ratio], default 0.5) is a sibling;
    an edge whose every appearance is adjacent to the top of its path,
    with endpoint degrees within [peer_degree_ratio] (default 10.0) and
    without a clear provider direction, is a peer; level-1 x level-1
    edges are always peers.  Remaining voted edges become
    customer/provider; unvoted edges are unknown. *)

val rel : t -> Asn.t -> Asn.t -> kind
(** [rel t a b] is the relationship of [a] with respect to [b]
    ([Unknown] for absent edges). *)

type counts = {
  customer_provider : int;
  peer : int;
  sibling : int;
  unknown : int;
}

val counts : t -> counts

val pp_counts : Format.formatter -> counts -> unit

val valley_free : t -> Aspath.t -> bool
(** True iff the path (in announcement order: origin to observer) climbs
    through customer->provider edges, crosses at most one peer edge at
    the top, then descends through provider->customer edges.  Sibling
    and unknown edges are transparent (allowed anywhere), matching the
    usual relaxed definition. *)
