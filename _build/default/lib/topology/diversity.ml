open Bgp

let pair_path_histogram data =
  let pairs = Rib.unique_paths_per_pair data in
  let hist = Hashtbl.create 64 in
  Hashtbl.iter
    (fun _ paths ->
      let k = Aspath.Set.cardinal paths in
      Hashtbl.replace hist k
        (1 + Option.value ~default:0 (Hashtbl.find_opt hist k)))
    pairs;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) hist []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let fraction_pairs_with_diversity data =
  let hist = pair_path_histogram data in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 hist in
  let multi =
    List.fold_left (fun acc (k, n) -> if k > 1 then acc + n else acc) 0 hist
  in
  if total = 0 then 0.0 else float_of_int multi /. float_of_int total

let prefixes_per_path_histogram data =
  let per_path = Aspath.Table.create 4096 in
  List.iter
    (fun e ->
      let set =
        match Aspath.Table.find_opt per_path e.Rib.path with
        | Some s -> s
        | None -> Prefix.Set.empty
      in
      Aspath.Table.replace per_path e.Rib.path (Prefix.Set.add e.Rib.prefix set))
    (Rib.entries data);
  let hist = Hashtbl.create 64 in
  Aspath.Table.iter
    (fun _ prefs ->
      let k = Prefix.Set.cardinal prefs in
      Hashtbl.replace hist k
        (1 + Option.value ~default:0 (Hashtbl.find_opt hist k)))
    per_path;
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) hist []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let received_paths data =
  let table = Hashtbl.create 4096 in
  List.iter
    (fun e ->
      let arr = Aspath.to_array e.Rib.path in
      let n = Array.length arr in
      for i = 0 to n - 2 do
        let receiver = arr.(i) in
        let suffix = Aspath.suffix_from e.Rib.path (i + 1) in
        let key = (receiver, e.Rib.prefix) in
        let set =
          match Hashtbl.find_opt table key with
          | Some s -> s
          | None -> Aspath.Set.empty
        in
        Hashtbl.replace table key (Aspath.Set.add suffix set)
      done)
    (Rib.entries data);
  table

let max_received_diversity data =
  let per_as_prefix = received_paths data in
  let per_as = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun (a, _) paths ->
      let k = Aspath.Set.cardinal paths in
      let cur = Option.value ~default:0 (Hashtbl.find_opt per_as a) in
      if k > cur then Hashtbl.replace per_as a k)
    per_as_prefix;
  Hashtbl.fold (fun a k acc -> (a, k) :: acc) per_as []
  |> List.sort (fun (a, _) (b, _) -> Asn.compare a b)

(* Percentile with the nearest-rank definition on the sorted sample. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    sorted.(rank - 1)

let table1_quantiles data =
  let values =
    max_received_diversity data |> List.map snd |> Array.of_list
  in
  Array.sort Stdlib.compare values;
  List.map
    (fun p -> (p, percentile values p))
    [ 75.0; 90.0; 95.0; 98.0; 99.0 ]
