(** Model minimization.

    The refiner duplicates quasi-routers eagerly; after convergence,
    several quasi-routers of an AS often select the same best route for
    every prefix and are therefore redundant partitions of the AS's
    policy.  This pass merges them: within an AS, quasi-routers with
    identical selected paths across all model prefixes collapse onto one
    representative, export filters of merged sessions intersect (the
    merged session delivers what any of the old ones did) and import MED
    ranks take the strongest (minimum) value.

    The merge preserves each AS's selected AS-level path set for every
    model prefix (property-tested over tens of thousands of random
    models): a peer's candidate from the merged session carries the best
    (minimum) MED rank any non-denied old session assigned, and is
    present iff any old session delivered it.  {!compact_verified} adds
    a belt-and-braces re-check with {!Verify} against reference data and
    falls back to the original model if exactness would ever be lost. *)

open Bgp

type stats = {
  nodes_before : int;
  nodes_after : int;
  sessions_before : int;  (** BGP sessions (not half-sessions) *)
  sessions_after : int;
}

val compact : Asmodel.Qrmodel.t -> Asmodel.Qrmodel.t * stats
(** Build the merged model (the input is not modified). *)

val compact_verified :
  Asmodel.Qrmodel.t -> against:Rib.t -> (Asmodel.Qrmodel.t * stats) option
(** [compact_verified model ~against] returns the compacted model only
    if it still RIB-Out-matches every observed path of [against] that
    the original model matched; [None] when compaction would lose
    matches (keep the original). *)
