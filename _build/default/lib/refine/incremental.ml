module Net = Simulator.Net

type outcome = {
  result : Refiner.result;
  new_quasi_routers : int;
  new_filters : int;
  new_med_rules : int;
}

let add_observations ?options (model : Asmodel.Qrmodel.t) data =
  let nodes_before = Net.node_count model.Asmodel.Qrmodel.net in
  let filters_before, meds_before =
    Net.count_policies model.Asmodel.Qrmodel.net
  in
  let result = Refiner.refine ?options model ~training:data in
  let filters_after, meds_after = Net.count_policies model.Asmodel.Qrmodel.net in
  {
    result;
    new_quasi_routers = Net.node_count model.Asmodel.Qrmodel.net - nodes_before;
    new_filters = filters_after - filters_before;
    new_med_rules = meds_after - meds_before;
  }
