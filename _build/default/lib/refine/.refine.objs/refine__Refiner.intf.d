lib/refine/refiner.mli: Asmodel Bgp Hashtbl Prefix Rib Simulator
