lib/refine/compress.mli: Asmodel Bgp Rib
