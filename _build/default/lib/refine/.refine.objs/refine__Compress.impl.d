lib/refine/compress.ml: Array Asmodel Asn Bgp Hashtbl List Option Simulator Verify
