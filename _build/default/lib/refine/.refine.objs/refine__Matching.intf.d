lib/refine/matching.mli: Asn Aspath Bgp Simulator
