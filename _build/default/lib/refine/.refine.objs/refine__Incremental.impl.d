lib/refine/incremental.ml: Asmodel Refiner Simulator
