lib/refine/verify.mli: Asmodel Asn Aspath Bgp Format Hashtbl Matching Prefix Rib Simulator
