lib/refine/incremental.mli: Asmodel Bgp Refiner Rib
