lib/refine/refiner.ml: Array Asmodel Aspath Bgp Hashtbl List Matching Prefix Rib Simulator Stdlib Topology
