lib/refine/verify.ml: Array Asmodel Asn Aspath Bgp Format Hashtbl List Matching Prefix Printf Rib Simulator Stdlib
