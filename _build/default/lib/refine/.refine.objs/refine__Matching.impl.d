lib/refine/matching.ml: Array Aspath Bgp List Simulator
