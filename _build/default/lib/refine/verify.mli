(** Model-against-data verification.

    Where {!Evaluation.Predict} aggregates match percentages, this module
    answers the engineer's question "which observed paths does my model
    get wrong, and where?"  Used by the CLI's [eval] command and by the
    test suite to assert exact reproduction. *)

open Bgp

type mismatch = {
  prefix : Prefix.t;
  path : Aspath.t;  (** the observed path that is not a RIB-Out match *)
  verdict : Matching.verdict;  (** how close the model gets *)
  blocking_as : Asn.t option;
      (** the AS closest to the origin where the path's suffix stops
          being selected — the place to look when debugging *)
}

type report = {
  checked : int;
  exact : int;
  mismatches : mismatch list;  (** worst (No_rib_in) first *)
}

val verify :
  Asmodel.Qrmodel.t ->
  states:(Prefix.t, Simulator.Engine.state) Hashtbl.t ->
  Rib.t ->
  report
(** Check that every (prefix, observed path) is a RIB-Out match;
    missing states are simulated on demand and memoized. *)

val is_exact : report -> bool

val pp : Format.formatter -> report -> unit
(** Summary plus the first 20 mismatches. *)
