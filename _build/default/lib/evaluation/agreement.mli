(** Table-2-style agreement between a model's predictions and observed
    AS-paths (paper §3.3).

    For every observed (prefix, path) the model's simulation is graded:
    either the observing AS selects the observed path ({e agree}), or
    the disagreement is attributed to the decision step that killed the
    observed route — or to the route never arriving ("AS-path not
    available").  The paper's rows map to: agree; not available; shorter
    AS-path exists ({!Simulator.Decision.Path_length}); lowest neighbor
    ID ({!Simulator.Decision.Lowest_ip}); we additionally report
    local-pref and MED eliminations, which the paper folds away. *)

open Bgp

type breakdown = {
  cases : int;  (** graded (prefix, observed path) cases *)
  agree : int;
  not_available : int;  (** no RIB-In anywhere in the observing AS *)
  by_step : (Simulator.Decision.step * int) list;
      (** eliminations per decision step, in step order *)
}

val grade :
  Asmodel.Qrmodel.t ->
  states:(Prefix.t, Simulator.Engine.state) Hashtbl.t ->
  Rib.t ->
  breakdown
(** Grade every entry of the data set against pre-computed simulation
    states (entries whose prefix has no state are skipped). *)

val simulate_and_grade :
  ?on_prefix:(int -> int -> unit) -> Asmodel.Qrmodel.t -> Rib.t -> breakdown
(** Simulate every prefix of the data set through the model, then
    grade. *)

val agree_fraction : breakdown -> float

val pp : Format.formatter -> breakdown -> unit
(** The Table-2 column: percentages of agree / disagree rows. *)
