open Bgp

type t = { training : Rib.t; validation : Rib.t }

let by_observation_points ?(train_fraction = 0.5) ~seed data =
  let rng = Random.State.make [| seed; 0x5917 |] in
  let points = Rib.observation_points data in
  let train, valid =
    List.partition (fun _ -> Random.State.float rng 1.0 < train_fraction) points
  in
  (* Guard degenerate draws: both sides must be inhabited. *)
  let train, valid =
    match (train, valid) with
    | [], p :: rest -> ([ p ], rest)
    | p :: rest, [] -> (rest, [ p ])
    | _, _ -> (train, valid)
  in
  {
    training = Rib.restrict_points data train;
    validation = Rib.restrict_points data valid;
  }

let by_origin_ases ?(train_fraction = 0.5) ~seed data =
  let rng = Random.State.make [| seed; 0x0419 |] in
  let origins = Asn.Set.elements (Rib.origins data) in
  let train, valid =
    List.partition (fun _ -> Random.State.float rng 1.0 < train_fraction) origins
  in
  let train, valid =
    match (train, valid) with
    | [], a :: rest -> ([ a ], rest)
    | a :: rest, [] -> (rest, [ a ])
    | _, _ -> (train, valid)
  in
  {
    training = Rib.restrict_origins data (Asn.Set.of_list train);
    validation = Rib.restrict_origins data (Asn.Set.of_list valid);
  }

let combined ?train_fraction ~seed data =
  let by_points = by_observation_points ?train_fraction ~seed data in
  let by_origins = by_origin_ases ?train_fraction ~seed data in
  let train_origins = Rib.origins by_origins.training in
  let valid_origins = Rib.origins by_origins.validation in
  {
    training = Rib.restrict_origins by_points.training train_origins;
    validation = Rib.restrict_origins by_points.validation valid_origins;
  }

let pp ppf t =
  Format.fprintf ppf "training: %d entries / %d points; validation: %d / %d"
    (Rib.size t.training)
    (List.length (Rib.observation_points t.training))
    (Rib.size t.validation)
    (List.length (Rib.observation_points t.validation))
