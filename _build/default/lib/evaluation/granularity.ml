module Net = Simulator.Net
module Qrmodel = Asmodel.Qrmodel

type treatment = { denied : bool; med : int option }

type report = {
  sessions : int;
  sessions_with_rules : int;
  atom_histogram : (int * int) list;
  per_neighbor_sufficient : float;
  as_max_atoms : (int * int) list;
}

let analyze (model : Qrmodel.t) =
  let net = model.Qrmodel.net in
  let n = Net.node_count net in
  let histogram = Hashtbl.create 16 in
  let bump table k =
    Hashtbl.replace table k
      (1 + Option.value ~default:0 (Hashtbl.find_opt table k))
  in
  let sessions = ref 0 and with_rules = ref 0 and sufficient = ref 0 in
  let as_max : (Bgp.Asn.t, int) Hashtbl.t = Hashtbl.create 256 in
  for id = 0 to n - 1 do
    List.iter
      (fun (s, _peer) ->
        incr sessions;
        let treatments = Hashtbl.create 8 in
        let rules = ref false in
        List.iter
          (fun (p, _) ->
            let denied = Net.export_denied net id s p in
            let med = Net.import_med net id s p in
            if denied || med <> None then rules := true;
            Hashtbl.replace treatments { denied; med } ())
          model.Qrmodel.prefixes;
        let atoms = max 1 (Hashtbl.length treatments) in
        bump histogram atoms;
        if !rules then incr with_rules;
        if atoms <= 1 then incr sufficient;
        let asn = Net.asn_of net id in
        let cur = Option.value ~default:0 (Hashtbl.find_opt as_max asn) in
        if atoms > cur then Hashtbl.replace as_max asn atoms)
      (Net.sessions_of net id)
  done;
  let as_hist = Hashtbl.create 16 in
  Hashtbl.iter (fun _ atoms -> bump as_hist atoms) as_max;
  let sorted table =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
  in
  {
    sessions = !sessions;
    sessions_with_rules = !with_rules;
    atom_histogram = sorted histogram;
    per_neighbor_sufficient =
      (if !sessions = 0 then 1.0
       else float_of_int !sufficient /. float_of_int !sessions);
    as_max_atoms = sorted as_hist;
  }

let pp ppf r =
  Format.fprintf ppf
    "half-sessions: %d, with per-prefix rules: %d (%.1f%%)@.\
     per-neighbour policies suffice for %.1f%% of half-sessions@."
    r.sessions r.sessions_with_rules
    (if r.sessions = 0 then 0.0
     else 100.0 *. float_of_int r.sessions_with_rules /. float_of_int r.sessions)
    (100.0 *. r.per_neighbor_sufficient);
  Format.fprintf ppf "policy atoms per half-session:@.";
  List.iter
    (fun (k, v) -> Format.fprintf ppf "  %d atom(s): %d half-sessions@." k v)
    r.atom_histogram;
  Format.fprintf ppf "max atoms over an AS's sessions:@.";
  List.iter
    (fun (k, v) -> Format.fprintf ppf "  %d atom(s): %d ASes@." k v)
    r.as_max_atoms
