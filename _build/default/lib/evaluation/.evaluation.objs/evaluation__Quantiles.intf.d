lib/evaluation/quantiles.mli:
