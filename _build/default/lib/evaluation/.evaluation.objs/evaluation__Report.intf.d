lib/evaluation/report.mli: Format
