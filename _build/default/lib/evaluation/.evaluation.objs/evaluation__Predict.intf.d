lib/evaluation/predict.mli: Asmodel Bgp Format Hashtbl Prefix Rib Simulator
