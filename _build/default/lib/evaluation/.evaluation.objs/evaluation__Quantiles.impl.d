lib/evaluation/quantiles.ml: Array Hashtbl List Option Stdlib
