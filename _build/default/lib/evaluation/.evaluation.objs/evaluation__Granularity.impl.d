lib/evaluation/granularity.ml: Asmodel Bgp Format Hashtbl List Option Simulator Stdlib
