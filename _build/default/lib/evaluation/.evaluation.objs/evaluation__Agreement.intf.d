lib/evaluation/agreement.mli: Asmodel Bgp Format Hashtbl Prefix Rib Simulator
