lib/evaluation/report.ml: Format List Option Printf String
