lib/evaluation/casestudy.ml: Asmodel Asn Aspath Bgp Format List Prefix Printf Simulator Stdlib Topology
