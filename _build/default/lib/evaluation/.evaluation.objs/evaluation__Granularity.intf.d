lib/evaluation/granularity.mli: Asmodel Format
