lib/evaluation/predict.ml: Asmodel Aspath Bgp Format Hashtbl List Prefix Refine Rib
