lib/evaluation/casestudy.mli: Asmodel Asn Aspath Bgp Format Prefix
