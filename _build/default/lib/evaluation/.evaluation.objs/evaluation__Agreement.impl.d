lib/evaluation/agreement.ml: Asmodel Bgp Format Hashtbl List Option Refine Rib Simulator
