lib/evaluation/split.mli: Bgp Format Rib
