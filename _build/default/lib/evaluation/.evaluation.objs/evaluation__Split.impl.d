lib/evaluation/split.ml: Asn Bgp Format List Random Rib
