(** Paper-style table and series printing for the experiment harness.

    Everything prints to a [Format] formatter so the bench binary can
    tee it; layouts echo the paper's tables so EXPERIMENTS.md can be
    checked against the output line by line. *)

val section : Format.formatter -> string -> string -> unit
(** [section ppf id title] prints a banner like
    ["== F2: Histogram of distinct AS-paths =="]. *)

val table :
  Format.formatter -> header:string list -> string list list -> unit
(** Fixed-width table; columns sized to the widest cell. *)

val int_series : Format.formatter -> x:string -> y:string -> (int * int) list -> unit
(** Two-column series for figures (histograms, CCDFs). *)

val float_series :
  Format.formatter -> x:string -> y:string -> (int * float) list -> unit

val kv : Format.formatter -> (string * string) list -> unit
(** Aligned key/value block. *)
