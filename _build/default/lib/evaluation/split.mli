(** Training/validation splits (paper §4.2).

    The paper's main split assigns whole observation points randomly to
    either set, so every path seen at a point lands in exactly one set.
    The alternative slices by originating AS, measuring how well a model
    trained on some prefixes predicts paths of unseen prefixes (§4.7). *)

open Bgp

type t = { training : Rib.t; validation : Rib.t }

val by_observation_points : ?train_fraction:float -> seed:int -> Rib.t -> t
(** Random assignment of observation points; [train_fraction] defaults
    to [0.5] as in the paper. *)

val by_origin_ases : ?train_fraction:float -> seed:int -> Rib.t -> t
(** Random assignment of originating ASes: paths originated by training
    ASes train the model; paths of held-out origins validate it. *)

val combined : ?train_fraction:float -> seed:int -> Rib.t -> t
(** The paper's combined slicing (§4.2): training is the training
    observation points restricted to training origins; validation is
    the held-out points restricted to held-out origins — the model must
    generalize across vantage point AND prefix at once. *)

val pp : Format.formatter -> t -> unit
