(** Per-prefix case studies (paper Figure 3).

    The paper motivates quasi-routers with a concrete example: prefix
    193.170.32.0/20 at AS 5511, showing which routes each AS receives
    and which it propagates.  This module produces the same kind of
    report for any (model, prefix): the RIB-In diversity, the selected
    routes, and the implied lower bound on quasi-routers. *)

open Bgp

type as_view = {
  asn : Asn.t;
  received : Aspath.t list;
      (** distinct full paths present in the AS's RIB-Ins *)
  selected : Aspath.t list;  (** distinct full best paths *)
  quasi_routers : int;  (** quasi-routers the model currently uses *)
}

type t = {
  prefix : Prefix.t;
  origin : Asn.t option;
  views : as_view list;  (** only ASes that receive or select a route *)
}

val study : Asmodel.Qrmodel.t -> Prefix.t -> t
(** Simulate the prefix and collect every AS's view. *)

val view_of : t -> Asn.t -> as_view option

val most_diverse : t -> int -> as_view list
(** The [n] ASes receiving the most distinct routes — the paper's
    AS 3356 ("needs eight routers") candidates. *)

val pp_view : Format.formatter -> as_view -> unit

val pp : ?limit:int -> Format.formatter -> t -> unit
(** The [limit] (default 10) most diverse AS views. *)
