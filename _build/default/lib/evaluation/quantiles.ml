let percentile sample p =
  let n = Array.length sample in
  if n = 0 then 0
  else begin
    Array.sort Stdlib.compare sample;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    sample.(rank - 1)
  end

let percentiles sample ps = List.map (fun p -> (p, percentile sample p)) ps

let histogram values =
  let table = Hashtbl.create 64 in
  List.iter
    (fun v ->
      Hashtbl.replace table v
        (1 + Option.value ~default:0 (Hashtbl.find_opt table v)))
    values;
  Hashtbl.fold (fun v n acc -> (v, n) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let ccdf values =
  let hist = histogram values in
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 hist in
  if total = 0 then []
  else
    let rec go remaining = function
      | [] -> []
      | (v, n) :: rest ->
          (v, float_of_int remaining /. float_of_int total)
          :: go (remaining - n) rest
    in
    go total hist

let mean values =
  match values with
  | [] -> 0.0
  | _ ->
      float_of_int (List.fold_left ( + ) 0 values)
      /. float_of_int (List.length values)

let log_binned hist =
  let bins = Hashtbl.create 16 in
  List.iter
    (fun (v, n) ->
      let rec bin lo = if v < 2 * lo then lo else bin (2 * lo) in
      let lo = if v <= 0 then 0 else bin 1 in
      Hashtbl.replace bins lo
        (n + Option.value ~default:0 (Hashtbl.find_opt bins lo)))
    hist;
  Hashtbl.fold (fun lo n acc -> (lo, (2 * lo) - 1, n) :: acc) bins []
  |> List.sort (fun (a, _, _) (b, _, _) -> Stdlib.compare a b)
  |> List.map (fun (lo, hi, n) -> (lo, max lo hi, n))
