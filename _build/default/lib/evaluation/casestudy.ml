open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine
module Qrmodel = Asmodel.Qrmodel

type as_view = {
  asn : Asn.t;
  received : Aspath.t list;
  selected : Aspath.t list;
  quasi_routers : int;
}

type t = { prefix : Prefix.t; origin : Asn.t option; views : as_view list }

let study (model : Qrmodel.t) prefix =
  let net = model.Qrmodel.net in
  let st = Qrmodel.simulate model prefix in
  let views =
    List.filter_map
      (fun asn ->
        let nodes = Net.nodes_of_as net asn in
        let received =
          List.concat_map
            (fun n ->
              List.map
                (fun (_s, r) ->
                  Aspath.of_array (Simulator.Rattr.full_path ~own_as:asn r))
                (Engine.rib_in st n))
            nodes
          |> List.sort_uniq Aspath.compare
        in
        let selected =
          Engine.selected_paths net st asn |> List.map Aspath.of_array
        in
        if received = [] && selected = [] then None
        else
          Some
            { asn; received; selected; quasi_routers = List.length nodes })
      (Topology.Asgraph.nodes model.Qrmodel.graph)
  in
  { prefix; origin = Qrmodel.origin_of model prefix; views }

let view_of t asn = List.find_opt (fun v -> v.asn = asn) t.views

let most_diverse t n =
  List.sort
    (fun a b -> Stdlib.compare (List.length b.received) (List.length a.received))
    t.views
  |> List.filteri (fun i _ -> i < n)

let pp_view ppf v =
  Format.fprintf ppf "AS%-6d receives %d route(s), selects %d, quasi-routers %d@."
    v.asn (List.length v.received) (List.length v.selected) v.quasi_routers;
  List.iter
    (fun p ->
      Format.fprintf ppf "    %s %a@."
        (if List.exists (Aspath.equal p) v.selected then "*" else " ")
        Aspath.pp p)
    v.received

let pp ?(limit = 10) ppf t =
  Format.fprintf ppf "case study for %a%s:@." Prefix.pp t.prefix
    (match t.origin with
    | Some o -> Printf.sprintf " (originated by AS%d)" o
    | None -> "");
  Format.fprintf ppf "(%d ASes reached; '*' marks selected routes)@."
    (List.length t.views);
  List.iter (pp_view ppf) (most_diverse t limit)
