(** Small statistics helpers shared by the experiment harnesses. *)

val percentile : int array -> float -> int
(** Nearest-rank percentile of an unsorted sample (the array is sorted
    in place); [0] on an empty sample. *)

val percentiles : int array -> float list -> (float * int) list

val histogram : int list -> (int * int) list
(** [(value, count)] sorted by value. *)

val ccdf : int list -> (int * float) list
(** [(value, fraction of samples >= value)] sorted by value. *)

val mean : int list -> float

val log_binned : (int * int) list -> (int * int * int) list
(** Collapse a histogram into powers-of-two bins:
    [(lo, hi, count)] with [lo <= value <= hi]. *)
