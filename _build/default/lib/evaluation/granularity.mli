(** Policy-granularity analysis of a refined model.

    The authors' follow-up work ("In Search for an Appropriate
    Granularity to Model Routing Policies") asks how fine-grained
    policies must be: per AS, per neighbour (session), or per prefix.
    The refined model answers this empirically: every session carries
    per-prefix rules (export denies and import MED ranks), and the
    number of distinct {e treatments} a session applies — its policy
    {e atoms} — measures the granularity that was actually needed.

    A session with one atom treats all prefixes alike (per-neighbour
    policies suffice); more atoms mean genuinely per-prefix policy. *)

type treatment = { denied : bool; med : int option }
(** What one half-session does to one prefix on export (deny) and what
    its reverse applies on import (MED rank). *)

type report = {
  sessions : int;  (** directed half-sessions *)
  sessions_with_rules : int;  (** half-sessions carrying any rule *)
  atom_histogram : (int * int) list;  (** #atoms → #half-sessions *)
  per_neighbor_sufficient : float;
      (** fraction of half-sessions with at most one atom *)
  as_max_atoms : (int * int) list;
      (** histogram: max #atoms over an AS's half-sessions → #ASes *)
}

val analyze : Asmodel.Qrmodel.t -> report

val pp : Format.formatter -> report -> unit
