let section ppf id title =
  Format.fprintf ppf "@.== %s: %s ==@." id title

let table ppf ~header rows =
  let all = header :: rows in
  let cols = List.fold_left (fun m r -> max m (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun m row ->
        match List.nth_opt row c with
        | Some cell -> max m (String.length cell)
        | None -> m)
      0 all
  in
  let widths = List.init cols width in
  let print_row row =
    List.iteri
      (fun c w ->
        let cell = Option.value ~default:"" (List.nth_opt row c) in
        Format.fprintf ppf "%-*s  " w cell)
      widths;
    Format.fprintf ppf "@."
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let int_series ppf ~x ~y series =
  table ppf ~header:[ x; y ]
    (List.map (fun (a, b) -> [ string_of_int a; string_of_int b ]) series)

let float_series ppf ~x ~y series =
  table ppf ~header:[ x; y ]
    (List.map (fun (a, b) -> [ string_of_int a; Printf.sprintf "%.4f" b ]) series)

let kv ppf pairs =
  let w = List.fold_left (fun m (k, _) -> max m (String.length k)) 0 pairs in
  List.iter (fun (k, v) -> Format.fprintf ppf "%-*s  %s@." w k v) pairs
