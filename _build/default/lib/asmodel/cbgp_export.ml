open Bgp
module Net = Simulator.Net

let to_lines (m : Qrmodel.t) =
  let net = m.Qrmodel.net in
  let buf = ref [] in
  let add fmt = Printf.ksprintf (fun s -> buf := s :: !buf) fmt in
  let ip n = Ipv4.to_string (Net.ip_of net n) in
  add "# C-BGP script generated from an AS-routing model";
  add "# (Muehlbauer et al., SIGCOMM 2006 methodology)";
  let n = Net.node_count net in
  (* Physical plane. *)
  for id = 0 to n - 1 do
    add "net add node %s" (ip id)
  done;
  for id = 0 to n - 1 do
    List.iter
      (fun (_s, peer) ->
        if id < peer then begin
          add "net add link %s %s" (ip id) (ip peer);
          add "net link %s %s igp-weight --bidir 1" (ip id) (ip peer)
        end)
      (Net.sessions_of net id)
  done;
  (* BGP plane: every quasi-router is a router of its AS. *)
  for id = 0 to n - 1 do
    add "bgp add router %d %s" (Net.asn_of net id) (ip id)
  done;
  for id = 0 to n - 1 do
    List.iter
      (fun (s, peer) ->
        add "bgp router %s add peer %d %s" (ip id) (Net.asn_of net peer)
          (ip peer);
        (* Always-compare MED, the paper's requirement (§4.6). *)
        ignore s)
      (Net.sessions_of net id)
  done;
  add "bgp options med always-compare";
  (* Policies: egress filters and import MED rankings. *)
  Net.fold_export_denies net
    (fun node s p () ->
      add
        "bgp router %s peer %s filter out add-rule match \"prefix in %s\" \
         action deny"
        (ip node)
        (ip (Net.session_peer net node s))
        (Prefix.to_string p))
    ();
  for id = 0 to n - 1 do
    List.iter
      (fun (s, peer) ->
        List.iter
          (fun (p, _) ->
            match Net.import_med net id s p with
            | Some v ->
                add
                  "bgp router %s peer %s filter in add-rule match \"prefix in \
                   %s\" action \"metric %d\""
                  (ip id) (ip peer) (Prefix.to_string p) v
            | None -> ())
          m.Qrmodel.prefixes)
      (Net.sessions_of net id)
  done;
  (* Originations: one prefix per AS at every quasi-router. *)
  List.iter
    (fun (p, asn) ->
      List.iter
        (fun node ->
          add "bgp router %s add network %s" (ip node) (Prefix.to_string p))
        (Net.nodes_of_as net asn))
    m.Qrmodel.prefixes;
  (* Session activation. *)
  for id = 0 to n - 1 do
    List.iter
      (fun (_s, peer) -> add "bgp router %s peer %s up" (ip id) (ip peer))
      (Net.sessions_of net id)
  done;
  add "sim run";
  List.rev !buf

let save path m =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun l ->
          Out_channel.output_string oc l;
          Out_channel.output_char oc '\n')
        (to_lines m))
