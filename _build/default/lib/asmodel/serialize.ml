open Bgp
module Net = Simulator.Net

let to_lines (m : Qrmodel.t) =
  let net = m.Qrmodel.net in
  let buf = ref [ "asmodel 1" ] in
  let add line = buf := line :: !buf in
  let n = Net.node_count net in
  for id = 0 to n - 1 do
    add
      (Printf.sprintf "node %d %d %s" id (Net.asn_of net id)
         (Ipv4.to_string (Net.ip_of net id)))
  done;
  (* Each session once, from the lower node id. *)
  for id = 0 to n - 1 do
    List.iter
      (fun (_s, peer) -> if id < peer then add (Printf.sprintf "edge %d %d" id peer))
      (Net.sessions_of net id)
  done;
  Net.fold_export_denies net
    (fun node s p () ->
      add
        (Printf.sprintf "deny %d %d %s" node (Net.session_peer net node s)
           (Prefix.to_string p)))
    ();
  (* MED rules: iterate sessions and dump per-prefix overrides.  The
     Net API exposes lookups, not iteration, so go through the model's
     prefix list (model MED rules only ever target model prefixes). *)
  for id = 0 to n - 1 do
    List.iter
      (fun (s, peer) ->
        List.iter
          (fun (p, _) ->
            match Net.import_med net id s p with
            | Some v ->
                add
                  (Printf.sprintf "med %d %d %s %d" id peer (Prefix.to_string p) v)
            | None -> ())
          m.Qrmodel.prefixes)
      (Net.sessions_of net id)
  done;
  List.iter
    (fun (p, asn) -> add (Printf.sprintf "prefix %s %d" (Prefix.to_string p) asn))
    m.Qrmodel.prefixes;
  List.rev !buf

let save path m =
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun l ->
          Out_channel.output_string oc l;
          Out_channel.output_char oc '\n')
        (to_lines m))

type builder = {
  mutable nodes : (int * int * Ipv4.t) list;  (* id, asn, ip; reverse order *)
  mutable edges : (int * int) list;
  mutable denies : (int * int * Prefix.t) list;
  mutable meds : (int * int * Prefix.t * int) list;
  mutable prefixes : (Prefix.t * int) list;
}

let parse_line b lineno line =
  let fail msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Ok ()
  else
    let fields = String.split_on_char ' ' line |> List.filter (( <> ) "") in
    let int_of name s =
      match int_of_string_opt s with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "line %d: bad %s %S" lineno name s)
    in
    let ( let* ) = Result.bind in
    match fields with
    | [ "asmodel"; "1" ] -> Ok ()
    | [ "node"; id; asn; ip ] ->
        let* id = int_of "id" id in
        let* asn = int_of "asn" asn in
        let* ip = Option.to_result ~none:("bad ip " ^ ip) (Ipv4.of_string ip) in
        b.nodes <- (id, asn, ip) :: b.nodes;
        Ok ()
    | [ "edge"; a; b' ] ->
        let* a = int_of "node" a in
        let* b' = int_of "node" b' in
        b.edges <- (a, b') :: b.edges;
        Ok ()
    | [ "deny"; from_n; to_n; p ] ->
        let* from_n = int_of "node" from_n in
        let* to_n = int_of "node" to_n in
        let* p =
          Option.to_result ~none:("bad prefix " ^ p) (Prefix.of_string p)
        in
        b.denies <- (from_n, to_n, p) :: b.denies;
        Ok ()
    | [ "med"; at_n; from_n; p; v ] ->
        let* at_n = int_of "node" at_n in
        let* from_n = int_of "node" from_n in
        let* p =
          Option.to_result ~none:("bad prefix " ^ p) (Prefix.of_string p)
        in
        let* v = int_of "value" v in
        b.meds <- (at_n, from_n, p, v) :: b.meds;
        Ok ()
    | [ "prefix"; p; asn ] ->
        let* p =
          Option.to_result ~none:("bad prefix " ^ p) (Prefix.of_string p)
        in
        let* asn = int_of "asn" asn in
        b.prefixes <- (p, asn) :: b.prefixes;
        Ok ()
    | kw :: _ -> fail (Printf.sprintf "unknown keyword %S" kw)
    | [] -> Ok ()

let of_lines lines =
  let b = { nodes = []; edges = []; denies = []; meds = []; prefixes = [] } in
  let rec parse_all lineno = function
    | [] -> Ok ()
    | l :: rest -> (
        match parse_line b lineno l with
        | Ok () -> parse_all (lineno + 1) rest
        | Error _ as e -> e)
  in
  Result.bind (parse_all 1 lines) (fun () ->
      let nodes = List.rev b.nodes in
      let net = Net.create () in
      let graph = ref Topology.Asgraph.empty in
      let ok = ref (Ok ()) in
      List.iteri
        (fun expect (id, asn, ip) ->
          if id <> expect && !ok = Ok () then
            ok := Error (Printf.sprintf "node ids not dense at %d" id)
          else begin
            ignore (Net.add_node net ~asn ~ip);
            graph := Topology.Asgraph.add_node !graph asn
          end)
        nodes;
      Result.bind !ok (fun () ->
          let n = Net.node_count net in
          let check_node id =
            if id < 0 || id >= n then
              Error (Printf.sprintf "node id %d out of range" id)
            else Ok ()
          in
          let ( let* ) = Result.bind in
          let rec connect_all = function
            | [] -> Ok ()
            | (a, b') :: rest ->
                let* () = check_node a in
                let* () = check_node b' in
                ignore (Net.connect net a b');
                graph :=
                  Topology.Asgraph.add_edge !graph (Net.asn_of net a)
                    (Net.asn_of net b');
                connect_all rest
          in
          let* () = connect_all (List.rev b.edges) in
          let session_between a b' =
            match Net.find_session net a b' with
            | Some s -> Ok s
            | None -> Error (Printf.sprintf "no session %d-%d" a b')
          in
          let rec apply_denies = function
            | [] -> Ok ()
            | (from_n, to_n, p) :: rest ->
                let* () = check_node from_n in
                let* () = check_node to_n in
                let* s = session_between from_n to_n in
                Net.deny_export net from_n s p;
                apply_denies rest
          in
          let* () = apply_denies (List.rev b.denies) in
          let rec apply_meds = function
            | [] -> Ok ()
            | (at_n, from_n, p, v) :: rest ->
                let* () = check_node at_n in
                let* () = check_node from_n in
                let* s = session_between at_n from_n in
                Net.set_import_med net at_n s p v;
                apply_meds rest
          in
          let* () = apply_meds (List.rev b.meds) in
          Ok
            {
              Qrmodel.net;
              graph = !graph;
              prefixes = List.rev b.prefixes;
            }))

let load path =
  let lines = In_channel.with_open_text path In_channel.input_lines in
  of_lines lines
