(** Export an AS-routing model as a C-BGP script.

    The paper runs its models in C-BGP [30]; this module renders a
    refined {!Qrmodel.t} in C-BGP's configuration language so the result
    can be cross-checked against the reference simulator:

    {v
    net add node <ip>
    net add link <ip> <ip>
    bgp add router <asn> <ip>
    bgp router <ip> add peer <asn> <ip>
    bgp router <ip> peer <ip> filter out add-rule match "prefix in P" action deny
    ...
    v}

    The emitted script follows C-BGP 2.x syntax closely enough for its
    parser; MED ranking rules become import filters setting the metric,
    and every quasi-router of an origin AS announces the AS's prefix. *)

val to_lines : Qrmodel.t -> string list

val save : string -> Qrmodel.t -> unit
