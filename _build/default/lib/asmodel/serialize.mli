(** Saving and loading AS-routing models.

    A refined model — quasi-routers, sessions, per-prefix filters and
    MED ranking rules — is the artifact the methodology produces; this
    text format lets it be built once and reused for what-if studies.

    Format (line-oriented, ['#'] comments):
    {v
    asmodel 1
    node <id> <asn> <ip>
    edge <node-id> <node-id>
    deny <from-node> <to-node> <prefix>
    med <at-node> <from-node> <prefix> <value>
    prefix <prefix> <origin-asn>
    v}

    Policies are keyed by node pairs (a session is unique per pair), so
    reloading does not depend on internal session numbering. *)

val save : string -> Qrmodel.t -> unit

val to_lines : Qrmodel.t -> string list

val of_lines : string list -> (Qrmodel.t, string) result

val load : string -> (Qrmodel.t, string) result
