(** The single-router-per-AS baselines of paper §3.3.

    Two models the paper evaluates before introducing quasi-routers:

    - {b shortest path}: one router per AS, no policies — routing decays
      to shortest-AS-path plus the tie-break;
    - {b inferred policies}: the same topology with LOCAL_PREF and
      export rules realized from inferred customer/provider/peer
      relationships (siblings and unknown edges treated like peerings,
      paper footnote 2). *)

val shortest_path : Topology.Asgraph.t -> Qrmodel.t
(** Identical to {!Qrmodel.initial}; named for the experiment tables. *)

val with_policies : Topology.Asgraph.t -> Topology.Relationships.t -> Qrmodel.t
(** One router per AS with Gao-Rexford policies derived from the
    inferred relationships: import preference by relationship class and
    the valley-free export matrix ({!Simulator.Relclass}). *)

val class_of_rel : Topology.Relationships.kind -> int
(** The {!Simulator.Relclass} tag for "my view of a neighbour I have
    this relationship with": a [Customer_of] neighbour relationship
    means the peer is my provider. *)
