(** What-if studies on an AS-routing model.

    The paper's motivation (§1) is answering questions like "what if a
    certain peering link was removed".  With a refined model this
    becomes: disable the link, re-simulate, and diff the selected
    routes. *)

open Bgp

type snapshot
(** Selected AS-level paths of every AS for every model prefix. *)

val snapshot :
  ?prefixes:Prefix.t list ->
  ?on_prefix:(int -> int -> unit) ->
  Qrmodel.t ->
  snapshot
(** Simulate the given prefixes (default: all model prefixes) and record
    each AS's set of selected full paths. *)

val disable_as_link : Qrmodel.t -> Asn.t -> Asn.t -> int
(** Stop all route exchange between two ASes by denying every model
    prefix on every session between their quasi-routers, in both
    directions.  Returns the number of half-sessions touched; [0] means
    the ASes share no session.  (Sessions are kept so the change can be
    reverted with {!enable_as_link}.) *)

val enable_as_link : Qrmodel.t -> Asn.t -> Asn.t -> int
(** Remove every per-prefix deny on sessions between the two ASes —
    including filters the refiner placed there, so reverting a what-if
    restores connectivity but not necessarily the exact refined
    policies.  Returns the number of half-sessions touched. *)

type change = {
  prefix : Prefix.t;
  ases_changed : Asn.t list;  (** ASes whose selected path set changed *)
  ases_lost : Asn.t list;  (** ASes that lost all routes to the prefix *)
}

type diff = {
  changes : change list;  (** prefixes with any change, sorted *)
  prefixes_affected : int;
  ases_affected : int;  (** distinct ASes changed over all prefixes *)
}

val diff : snapshot -> snapshot -> diff
(** Compare two snapshots taken over the same prefix list. *)

val pp_diff : Format.formatter -> diff -> unit
