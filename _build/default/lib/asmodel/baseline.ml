module Net = Simulator.Net
module Relclass = Simulator.Relclass
module Rel = Topology.Relationships

let shortest_path = Qrmodel.initial

(* [rel a b] is a's relationship TO b, so the session class a assigns to
   peer b is the converse role: my being a customer of b makes b my
   provider. *)
let class_of_rel = function
  | Rel.Customer_of -> Relclass.provider
  | Rel.Provider_of -> Relclass.customer
  | Rel.Peer -> Relclass.peer
  | Rel.Sibling -> Relclass.sibling
  | Rel.Unknown -> Relclass.unknown

let with_policies graph rels =
  let open Bgp in
  let net = Net.create () in
  let node_of = Hashtbl.create 4096 in
  List.iter
    (fun asn ->
      let id = Net.add_node net ~asn ~ip:(Asn.router_ip asn 0) in
      Hashtbl.add node_of asn id)
    (Topology.Asgraph.nodes graph);
  Topology.Asgraph.fold_edges
    (fun a b () ->
      let na = Hashtbl.find node_of a and nb = Hashtbl.find node_of b in
      let class_ab = class_of_rel (Rel.rel rels a b) in
      let class_ba = class_of_rel (Rel.rel rels b a) in
      let sa, sb = Net.connect ~class_ab ~class_ba net na nb in
      Net.set_import_lpref net na sa (Relclass.lpref class_ab);
      Net.set_import_lpref net nb sb (Relclass.lpref class_ba))
    graph ();
  Net.set_export_matrix net Relclass.export_ok;
  let prefixes =
    List.map
      (fun asn -> (Asn.origin_prefix asn, asn))
      (Topology.Asgraph.nodes graph)
  in
  { Qrmodel.net; graph; prefixes }
