lib/asmodel/whatif.mli: Asn Bgp Format Prefix Qrmodel
