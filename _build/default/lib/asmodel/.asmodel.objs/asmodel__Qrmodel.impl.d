lib/asmodel/qrmodel.ml: Asn Bgp Format Hashtbl List Option Prefix Simulator Stdlib Topology
