lib/asmodel/cbgp_export.ml: Bgp Ipv4 List Out_channel Prefix Printf Qrmodel Simulator
