lib/asmodel/baseline.mli: Qrmodel Topology
