lib/asmodel/serialize.mli: Qrmodel
