lib/asmodel/baseline.ml: Asn Bgp Hashtbl List Qrmodel Simulator Topology
