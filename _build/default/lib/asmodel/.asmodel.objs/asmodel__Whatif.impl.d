lib/asmodel/whatif.ml: Asn Bgp Format Hashtbl List Prefix Qrmodel Simulator Topology
