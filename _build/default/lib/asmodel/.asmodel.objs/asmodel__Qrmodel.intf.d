lib/asmodel/qrmodel.mli: Asn Bgp Format Prefix Simulator Topology
