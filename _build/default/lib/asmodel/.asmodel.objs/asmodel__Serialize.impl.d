lib/asmodel/serialize.ml: Bgp In_channel Ipv4 List Option Out_channel Prefix Printf Qrmodel Result Simulator String Topology
