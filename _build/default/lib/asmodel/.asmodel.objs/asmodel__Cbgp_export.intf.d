lib/asmodel/cbgp_export.mli: Qrmodel
