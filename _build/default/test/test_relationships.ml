(* Tests for valley-free relationship inference. *)

open Bgp
module Rel = Topology.Relationships

let check_bool = Alcotest.(check bool)

let path = Aspath.of_list

(* A toy hierarchy: 1 is the high-degree top provider; 2 and 3 are its
   customers; 4 is a customer of 2; 5 a customer of 3.  Observed paths
   all climb to 1 and descend. *)
let graph =
  Topology.Asgraph.of_edges [ (1, 2); (1, 3); (2, 4); (3, 5); (1, 6); (1, 7) ]

let paths =
  [
    path [ 4; 2; 1; 3; 5 ];
    path [ 5; 3; 1; 2; 4 ];
    path [ 4; 2; 1; 6 ];
    path [ 5; 3; 1; 7 ];
  ]

let inference () =
  let t = Rel.infer graph paths in
  check_bool "1 provides for 2" true (Rel.rel t 1 2 = Rel.Provider_of);
  check_bool "2 customer of 1" true (Rel.rel t 2 1 = Rel.Customer_of);
  check_bool "2 provides for 4" true (Rel.rel t 2 4 = Rel.Provider_of);
  check_bool "absent edge unknown" true (Rel.rel t 4 5 = Rel.Unknown)

let level1_peering () =
  let g = Topology.Asgraph.add_edge graph 8 1 in
  let t = Rel.infer ~level1:(Asn.Set.of_list [ 1; 8 ]) g paths in
  check_bool "declared peers" true (Rel.rel t 1 8 = Rel.Peer);
  check_bool "symmetric" true (Rel.rel t 8 1 = Rel.Peer)

let sibling_votes () =
  (* Edge (2,3) provides transit in both directions below the top
     (AS 1, highest degree): sibling. *)
  let g =
    Topology.Asgraph.of_edges
      [ (1, 2); (1, 3); (2, 3); (3, 4); (2, 9); (1, 5); (1, 6); (1, 7) ]
  in
  let paths = [ path [ 5; 1; 2; 3; 4 ]; path [ 6; 1; 3; 2; 9 ] ] in
  let t = Rel.infer g paths in
  check_bool "sibling" true (Rel.rel t 2 3 = Rel.Sibling)

let counts () =
  let t = Rel.infer graph paths in
  let c = Rel.counts t in
  Alcotest.(check int)
    "all edges classified" 6
    (c.Rel.customer_provider + c.Rel.peer + c.Rel.sibling + c.Rel.unknown)

let valley_free_check () =
  let t = Rel.infer graph paths in
  check_bool "observed path is valley-free" true
    (Rel.valley_free t (path [ 4; 2; 1; 3; 5 ]));
  (* A valley: descending to a customer and climbing back up. *)
  check_bool "valley rejected" false (Rel.valley_free t (path [ 2; 1; 3; 1 ]))

let valley_free_edge_cases () =
  let t = Rel.infer graph paths in
  check_bool "singleton" true (Rel.valley_free t (path [ 1 ]));
  check_bool "empty" true (Rel.valley_free t Aspath.empty);
  (* Unknown edges are transparent. *)
  check_bool "unknown transparent" true (Rel.valley_free t (path [ 42; 43 ]))

let flip () =
  check_bool "flip customer" true (Rel.flip Rel.Customer_of = Rel.Provider_of);
  check_bool "flip provider" true (Rel.flip Rel.Provider_of = Rel.Customer_of);
  check_bool "flip peer" true (Rel.flip Rel.Peer = Rel.Peer)

(* Property: on ground-truth worlds, inferred customer-provider edges
   should mostly agree with the generator's orientation. *)
let groundtruth_accuracy () =
  let conf = { Netgen.Conf.tiny with Netgen.Conf.seed = 99 } in
  let world = Netgen.Groundtruth.build conf in
  let data = Netgen.Groundtruth.observe world in
  let graph = Topology.Extract.graph_of_dataset data in
  let levels = Topology.Hierarchy.classify graph in
  let t =
    Rel.infer ~level1:levels.Topology.Hierarchy.level1 graph
      (Rib.all_paths data)
  in
  let correct = ref 0 and wrong = ref 0 in
  Topology.Asgraph.fold_edges
    (fun a b () ->
      match (Rel.rel t a b, Netgen.Gentopo.true_rel world.Netgen.Groundtruth.topo a b) with
      | Rel.Provider_of, Some `Provider | Rel.Customer_of, Some `Customer ->
          incr correct
      | Rel.Provider_of, Some `Customer | Rel.Customer_of, Some `Provider ->
          incr wrong
      | _, _ -> ())
    graph ();
  check_bool
    (Printf.sprintf "orientation mostly right (%d vs %d)" !correct !wrong)
    true
    (!correct > 3 * !wrong)

let suite =
  [
    Alcotest.test_case "basic inference" `Quick inference;
    Alcotest.test_case "level-1 peering" `Quick level1_peering;
    Alcotest.test_case "sibling votes" `Quick sibling_votes;
    Alcotest.test_case "counts" `Quick counts;
    Alcotest.test_case "valley-free check" `Quick valley_free_check;
    Alcotest.test_case "valley-free edge cases" `Quick valley_free_edge_cases;
    Alcotest.test_case "flip" `Quick flip;
    Alcotest.test_case "ground-truth accuracy" `Slow groundtruth_accuracy;
  ]
