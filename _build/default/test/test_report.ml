(* Golden tests for the experiment report formatting. *)

let check_str = Alcotest.(check string)

let render f =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let table_layout () =
  let out =
    render (fun ppf ->
        Evaluation.Report.table ppf ~header:[ "a"; "long-header" ]
          [ [ "xx"; "1" ]; [ "y" ] ])
  in
  check_str "layout"
    "a   long-header  \n\
     --  -----------  \n\
     xx  1            \n\
     y                \n"
    out

let int_series_layout () =
  let out =
    render (fun ppf ->
        Evaluation.Report.int_series ppf ~x:"k" ~y:"n" [ (1, 10); (2, 5) ])
  in
  check_str "series"
    "k  n   \n\
     -  --  \n\
     1  10  \n\
     2  5   \n"
    out

let float_series_layout () =
  let out =
    render (fun ppf ->
        Evaluation.Report.float_series ppf ~x:"k" ~y:"f" [ (3, 0.5) ])
  in
  check_str "float series" "k  f       \n-  ------  \n3  0.5000  \n" out

let kv_alignment () =
  let out =
    render (fun ppf ->
        Evaluation.Report.kv ppf [ ("short", "1"); ("a longer key", "2") ])
  in
  check_str "kv"
    "short         1\na longer key  2\n"
    out

let section_banner () =
  let out = render (fun ppf -> Evaluation.Report.section ppf "T1" "title") in
  check_str "banner" "\n== T1: title ==\n" out

let empty_table () =
  let out =
    render (fun ppf -> Evaluation.Report.table ppf ~header:[ "only" ] [])
  in
  check_str "header only" "only  \n----  \n" out

let suite =
  [
    Alcotest.test_case "table layout" `Quick table_layout;
    Alcotest.test_case "int series layout" `Quick int_series_layout;
    Alcotest.test_case "float series layout" `Quick float_series_layout;
    Alcotest.test_case "kv alignment" `Quick kv_alignment;
    Alcotest.test_case "section banner" `Quick section_banner;
    Alcotest.test_case "empty table" `Quick empty_table;
  ]
