(* Tests for Bgp.Aspath: normalization, suffixes, loops. *)

open Bgp

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let path = Aspath.of_list

let basics () =
  let p = path [ 1; 2; 3 ] in
  check_int "length" 3 (Aspath.length p);
  check_bool "head" true (Aspath.head p = Some 1);
  check_bool "origin" true (Aspath.origin p = Some 3);
  check_bool "empty" true (Aspath.is_empty Aspath.empty);
  check_bool "head of empty" true (Aspath.head Aspath.empty = None);
  check_bool "origin of empty" true (Aspath.origin Aspath.empty = None)

let prepend_drop () =
  let p = path [ 2; 3 ] in
  let q = Aspath.prepend 1 p in
  check_bool "prepend" true (Aspath.equal q (path [ 1; 2; 3 ]));
  check_bool "drop" true (Aspath.equal (Aspath.drop_head q) p);
  Alcotest.check_raises "drop empty" (Invalid_argument "Aspath.drop_head")
    (fun () -> ignore (Aspath.drop_head Aspath.empty))

let suffixes () =
  let p = path [ 1; 2; 3 ] in
  let sfx = Aspath.suffixes p in
  check_int "count" 3 (List.length sfx);
  check_bool "longest first" true
    (List.map Aspath.to_list sfx = [ [ 1; 2; 3 ]; [ 2; 3 ]; [ 3 ] ]);
  check_bool "suffix_from" true
    (Aspath.equal (Aspath.suffix_from p 1) (path [ 2; 3 ]))

let prepending () =
  let p = path [ 1; 1; 2; 2; 2; 3 ] in
  check_bool "collapsed" true
    (Aspath.equal (Aspath.remove_prepending p) (path [ 1; 2; 3 ]));
  check_bool "idempotent" true
    (Aspath.equal
       (Aspath.remove_prepending (Aspath.remove_prepending p))
       (Aspath.remove_prepending p));
  check_bool "no-op on clean path" true
    (Aspath.equal (Aspath.remove_prepending (path [ 1; 2; 3 ])) (path [ 1; 2; 3 ]))

let loops () =
  check_bool "simple loop" true (Aspath.has_loop (path [ 1; 2; 1 ]));
  check_bool "clean" false (Aspath.has_loop (path [ 1; 2; 3 ]));
  (* Prepending runs are not loops. *)
  check_bool "prepending tolerated" false (Aspath.has_loop (path [ 1; 2; 2; 3 ]));
  (* ... but a reappearance after an interruption is. *)
  check_bool "reappearance" true (Aspath.has_loop (path [ 2; 2; 3; 2 ]))

let string_roundtrip () =
  let p = path [ 701; 1239; 24249 ] in
  check_bool "roundtrip" true
    (match Aspath.of_string (Aspath.to_string p) with
    | Some q -> Aspath.equal p q
    | None -> false);
  check_bool "empty string" true (Aspath.of_string "" = Some Aspath.empty);
  check_bool "as-set rejected" true (Aspath.of_string "701 {1,2}" = None);
  check_bool "junk rejected" true (Aspath.of_string "701 xyz" = None)

let pp_dashes () =
  Alcotest.(check string)
    "dash rendering" "1-7-6"
    (Format.asprintf "%a" Aspath.pp (path [ 1; 7; 6 ]))

let contains_index () =
  let p = path [ 4; 8; 15 ] in
  check_bool "contains" true (Aspath.contains 8 p);
  check_bool "not contains" false (Aspath.contains 16 p);
  check_bool "index" true (Aspath.index_of 15 p = Some 2);
  check_bool "index absent" true (Aspath.index_of 16 p = None)

let gen_path =
  QCheck.Gen.(list_size (int_bound 8) (int_range 1 50) >|= Aspath.of_list)

let arb_path = QCheck.make ~print:Aspath.to_string gen_path

let prop_string_roundtrip =
  QCheck.Test.make ~name:"aspath string roundtrip" ~count:500 arb_path
    (fun p ->
      match Aspath.of_string (Aspath.to_string p) with
      | Some q -> Aspath.equal p q
      | None -> false)

let prop_no_prepending_after_removal =
  QCheck.Test.make ~name:"remove_prepending kills adjacent dups" ~count:500
    arb_path
    (fun p ->
      let q = Aspath.to_array (Aspath.remove_prepending p) in
      let ok = ref true in
      for i = 1 to Array.length q - 1 do
        if q.(i) = q.(i - 1) then ok := false
      done;
      !ok)

let prop_suffix_count =
  QCheck.Test.make ~name:"n suffixes for length n" ~count:500 arb_path
    (fun p -> List.length (Aspath.suffixes p) = Aspath.length p)

let suite =
  [
    Alcotest.test_case "basics" `Quick basics;
    Alcotest.test_case "prepend/drop" `Quick prepend_drop;
    Alcotest.test_case "suffixes" `Quick suffixes;
    Alcotest.test_case "prepending removal" `Quick prepending;
    Alcotest.test_case "loop detection" `Quick loops;
    Alcotest.test_case "string roundtrip" `Quick string_roundtrip;
    Alcotest.test_case "pp dashes" `Quick pp_dashes;
    Alcotest.test_case "contains/index" `Quick contains_index;
    QCheck_alcotest.to_alcotest prop_string_roundtrip;
    QCheck_alcotest.to_alcotest prop_no_prepending_after_removal;
    QCheck_alcotest.to_alcotest prop_suffix_count;
  ]
