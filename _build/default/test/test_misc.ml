(* Coverage for the remaining small API surfaces: data-set union, the
   refiner's progress callback, generator scaling, attribute helpers. *)

open Bgp

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let op asn = { Rib.op_ip = Asn.router_ip asn 0; op_as = asn }

let entry o origin path_list =
  {
    Rib.op = op o;
    prefix = Asn.origin_prefix origin;
    path = Aspath.of_list path_list;
  }

let rib_union () =
  let a = Rib.of_entries [ entry 1 6 [ 1; 6 ]; entry 1 5 [ 1; 5 ] ] in
  let b = Rib.of_entries [ entry 1 6 [ 1; 6 ]; entry 2 6 [ 2; 6 ] ] in
  let u = Rib.union a b in
  check_int "duplicates collapse" 3 (Rib.size u);
  check_int "points merged" 2 (List.length (Rib.observation_points u))

let refiner_progress_callback () =
  let graph = Topology.Asgraph.of_edges [ (1, 2); (1, 3); (2, 4); (3, 4) ] in
  let training = Rib.of_entries [ entry 1 4 [ 1; 3; 4 ] ] in
  let seen = ref [] in
  let result =
    Refine.Refiner.refine
      ~on_iteration:(fun h -> seen := h.Refine.Refiner.iteration :: !seen)
      (Asmodel.Qrmodel.initial graph)
      ~training
  in
  check_int "callback per iteration" result.Refine.Refiner.iterations
    (List.length !seen);
  check_bool "iterations in order" true
    (List.rev !seen = List.init result.Refine.Refiner.iterations (fun i -> i + 1))

let conf_scaling () =
  let half = Netgen.Conf.scaled 0.5 in
  check_int "tier2 halved" (Netgen.Conf.default.Netgen.Conf.n_tier2 / 2)
    half.Netgen.Conf.n_tier2;
  check_int "tier1 untouched" Netgen.Conf.default.Netgen.Conf.n_tier1
    half.Netgen.Conf.n_tier1;
  let tiny_scale = Netgen.Conf.scaled 0.0001 in
  check_bool "floors at one" true (tiny_scale.Netgen.Conf.n_stub >= 1)

let attrs_helpers () =
  check_bool "origin roundtrip" true
    (List.for_all
       (fun o -> Attrs.origin_of_string (Attrs.origin_to_string o) = Some o)
       [ Attrs.Igp; Attrs.Egp; Attrs.Incomplete ]);
  check_bool "bad origin" true (Attrs.origin_of_string "BOGUS" = None);
  check_bool "community roundtrip" true
    (Attrs.community_of_string (Attrs.community_to_string (7018, 5000))
    = Some (7018, 5000));
  check_bool "bad community" true (Attrs.community_of_string "7018" = None);
  check_bool "bad community number" true (Attrs.community_of_string "a:b" = None);
  check_bool "communities list" true
    (Attrs.communities_of_string "1:2 3:4" = Some [ (1, 2); (3, 4) ]);
  check_bool "empty communities" true (Attrs.communities_of_string "" = Some []);
  check_bool "malformed list" true (Attrs.communities_of_string "1:2 junk" = None)

let relclass_invariants () =
  let module RC = Simulator.Relclass in
  (* Customer band strictly above every other band: the Gao-Rexford
     safety condition the ground truth relies on. *)
  let lo_customer, _ = RC.band RC.customer in
  List.iter
    (fun c ->
      let _, hi = RC.band c in
      check_bool (Printf.sprintf "customer above %s" (RC.to_string c)) true
        (lo_customer > hi))
    [ RC.peer; RC.provider; RC.sibling; RC.unknown ];
  (* Originated and customer routes go everywhere; provider routes only
     towards customers/siblings. *)
  check_bool "originated exports" true
    (RC.export_ok ~learned_class:(-1) ~to_class:RC.provider);
  check_bool "customer route to provider" true
    (RC.export_ok ~learned_class:RC.customer ~to_class:RC.provider);
  check_bool "provider route not to peer" false
    (RC.export_ok ~learned_class:RC.provider ~to_class:RC.peer);
  check_bool "provider route to customer" true
    (RC.export_ok ~learned_class:RC.provider ~to_class:RC.customer)

let verdict_helpers () =
  let module M = Refine.Matching in
  check_bool "ranks ordered" true
    (M.verdict_rank M.Rib_out < M.verdict_rank M.Potential_rib_out
    && M.verdict_rank M.Potential_rib_out < M.verdict_rank M.Rib_in
    && M.verdict_rank M.Rib_in < M.verdict_rank M.No_rib_in);
  check_bool "strings distinct" true
    (List.length
       (List.sort_uniq compare
          (List.map M.verdict_to_string
             [ M.Rib_out; M.Potential_rib_out; M.Rib_in; M.No_rib_in ]))
    = 4)

let suite =
  [
    Alcotest.test_case "rib union" `Quick rib_union;
    Alcotest.test_case "refiner progress callback" `Quick refiner_progress_callback;
    Alcotest.test_case "conf scaling" `Quick conf_scaling;
    Alcotest.test_case "attrs helpers" `Quick attrs_helpers;
    Alcotest.test_case "relclass invariants" `Quick relclass_invariants;
    Alcotest.test_case "verdict helpers" `Quick verdict_helpers;
  ]
