(* Unit and property tests for Bgp.Prefix. *)

open Bgp

let check_str = Alcotest.(check string)

let check_bool = Alcotest.(check bool)

let parse_print () =
  List.iter
    (fun s ->
      match Prefix.of_string s with
      | Some p -> check_str s s (Prefix.to_string p)
      | None -> Alcotest.failf "did not parse %s" s)
    [ "0.0.0.0/0"; "10.0.0.0/8"; "192.0.2.0/24"; "1.2.3.4/32" ]

let canonicalization () =
  let p = Prefix.of_string_exn "10.1.2.3/16" in
  check_str "host bits zeroed" "10.1.0.0/16" (Prefix.to_string p);
  check_bool "equal to canonical form" true
    (Prefix.equal p (Prefix.of_string_exn "10.1.0.0/16"))

let rejects_malformed () =
  List.iter
    (fun s -> check_bool s true (Prefix.of_string s = None))
    [ ""; "10.0.0.0"; "10.0.0.0/"; "10.0.0.0/33"; "10.0.0.0/-1"; "/8";
      "10.0.0/8"; "10.0.0.0/8/9"; "10.0.0.0/x" ]

let membership () =
  let p = Prefix.of_string_exn "192.0.2.0/24" in
  check_bool "inside" true (Prefix.mem (Ipv4.of_octets 192 0 2 200) p);
  check_bool "outside" false (Prefix.mem (Ipv4.of_octets 192 0 3 1) p);
  check_bool "default contains all" true
    (Prefix.mem (Ipv4.of_octets 8 8 8 8) Prefix.default)

let subsumption () =
  let big = Prefix.of_string_exn "10.0.0.0/8" in
  let small = Prefix.of_string_exn "10.1.0.0/16" in
  check_bool "big subsumes small" true (Prefix.subsumes big small);
  check_bool "small does not subsume big" false (Prefix.subsumes small big);
  check_bool "self subsumes" true (Prefix.subsumes big big)

let ordering_consistency () =
  let a = Prefix.of_string_exn "10.0.0.0/8" in
  let b = Prefix.of_string_exn "10.0.0.0/16" in
  check_bool "shorter first on same network" true (Prefix.compare a b < 0);
  check_bool "hash equal for equal" true (Prefix.hash a = Prefix.hash a)

let containers () =
  let ps =
    List.map Prefix.of_string_exn [ "10.0.0.0/8"; "10.0.0.0/8"; "11.0.0.0/8" ]
  in
  let set = Prefix.Set.of_list ps in
  Alcotest.(check int) "set dedups" 2 (Prefix.Set.cardinal set);
  let table = Prefix.Table.create 4 in
  List.iter (fun p -> Prefix.Table.replace table p ()) ps;
  Alcotest.(check int) "table dedups" 2 (Prefix.Table.length table)

let gen_prefix =
  QCheck.Gen.(
    map2
      (fun addr len -> Prefix.make (Ipv4.of_int addr) len)
      (int_bound 0xFFFFFFF) (int_bound 32))

let arb_prefix = QCheck.make ~print:Prefix.to_string gen_prefix

let prop_roundtrip =
  QCheck.Test.make ~name:"prefix string roundtrip" ~count:500 arb_prefix
    (fun p ->
      match Prefix.of_string (Prefix.to_string p) with
      | Some q -> Prefix.equal p q
      | None -> false)

let prop_network_in_prefix =
  QCheck.Test.make ~name:"network address is member" ~count:500 arb_prefix
    (fun p -> Prefix.mem (Prefix.network p) p)

let prop_compare_total =
  QCheck.Test.make ~name:"compare antisymmetric" ~count:500
    (QCheck.pair arb_prefix arb_prefix)
    (fun (a, b) ->
      let c1 = Prefix.compare a b and c2 = Prefix.compare b a in
      (c1 = 0 && c2 = 0) || (c1 > 0 && c2 < 0) || (c1 < 0 && c2 > 0))

let suite =
  [
    Alcotest.test_case "parse/print" `Quick parse_print;
    Alcotest.test_case "canonicalization" `Quick canonicalization;
    Alcotest.test_case "rejects malformed" `Quick rejects_malformed;
    Alcotest.test_case "membership" `Quick membership;
    Alcotest.test_case "subsumption" `Quick subsumption;
    Alcotest.test_case "ordering" `Quick ordering_consistency;
    Alcotest.test_case "containers" `Quick containers;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_network_in_prefix;
    QCheck_alcotest.to_alcotest prop_compare_total;
  ]
