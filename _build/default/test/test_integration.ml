(* End-to-end integration tests: generate → observe → prepare → split →
   refine → predict, plus dump-file and model-file round trips through
   the same pipeline a CLI user would run. *)

open Bgp

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let conf = { Netgen.Conf.tiny with Netgen.Conf.seed = 4 }

let full_pipeline () =
  let _world, data = Core.generate ~conf () in
  let exp = Core.run_experiment ~seed:3 data in
  (* The paper's central claims, on a small world. *)
  check_bool "training reproduced exactly" true
    exp.Core.refinement.Refine.Refiner.converged;
  let max_len =
    List.fold_left
      (fun acc p -> max acc (Aspath.length p))
      1
      (Rib.all_paths exp.Core.prepared.Core.data)
  in
  check_bool "iterations within a small multiple of max path length" true
    (exp.Core.refinement.Refine.Refiner.iterations <= (6 * max_len) + 4);
  let pred = exp.Core.prediction in
  check_bool "predicts a majority of held-out paths down to tie-break" true
    (Evaluation.Predict.down_to_tie_break_fraction pred > 0.5);
  check_bool "rib-in bound above exact" true
    (Evaluation.Predict.rib_in_fraction pred
    >= Evaluation.Predict.exact_fraction pred)

let pipeline_through_files () =
  let dump = Filename.temp_file "pipeline" ".dump" in
  let model_file = Filename.temp_file "pipeline" ".model" in
  Fun.protect
    ~finally:(fun () ->
      Sys.remove dump;
      Sys.remove model_file)
    (fun () ->
      let _world, data = Core.generate ~conf () in
      Rib.save dump data;
      let loaded, stats = Rib.load dump in
      check_int "clean reload" 0
        (stats.Rib.dropped_loops + stats.Rib.dropped_empty);
      check_int "same size" (Rib.size data) (Rib.size loaded);
      let prepared = Core.prepare loaded in
      let result = Core.build prepared ~training:prepared.Core.data in
      Asmodel.Serialize.save model_file result.Refine.Refiner.model;
      match Asmodel.Serialize.load model_file with
      | Error e -> Alcotest.failf "model reload: %s" e
      | Ok model ->
          (* The reloaded model reproduces the training data too. *)
          let states = Hashtbl.create 64 in
          let report = Evaluation.Predict.evaluate model ~states prepared.Core.data in
          check_bool "reloaded model RIB-Out-matches all training paths" true
            (Evaluation.Predict.exact_fraction report > 0.999))

let baselines_are_worse () =
  (* The headline comparison: the refined model beats both single-router
     baselines on the very data they are graded against. *)
  let _world, data = Core.generate ~conf () in
  let prepared = Core.prepare data in
  let shortest = Core.baseline_shortest_path prepared in
  let result = Core.build prepared ~training:prepared.Core.data in
  let states = result.Refine.Refiner.states in
  let refined =
    Evaluation.Predict.evaluate result.Refine.Refiner.model ~states
      prepared.Core.data
  in
  check_bool "refined beats shortest-path baseline" true
    (Evaluation.Predict.exact_fraction refined
    > Evaluation.Agreement.agree_fraction shortest)

let origin_split_pipeline () =
  let _world, data = Core.generate ~conf () in
  let exp = Core.run_experiment ~by_origin:true ~seed:3 data in
  check_bool "terminates" true (exp.Core.refinement.Refine.Refiner.iterations >= 1);
  (* Prediction for unseen prefixes works at all (paper 4.7). *)
  check_bool "some unseen-origin paths predicted" true
    (Evaluation.Predict.rib_in_fraction exp.Core.prediction > 0.3)

let deterministic_end_to_end () =
  let _w1, d1 = Core.generate ~conf () in
  let _w2, d2 = Core.generate ~conf () in
  check_bool "same data" true (Rib.entries d1 = Rib.entries d2);
  let e1 = Core.run_experiment ~seed:9 d1 in
  let e2 = Core.run_experiment ~seed:9 d2 in
  check_int "same iterations"
    e1.Core.refinement.Refine.Refiner.iterations
    e2.Core.refinement.Refine.Refiner.iterations;
  check_bool "same prediction" true
    (e1.Core.prediction.Evaluation.Predict.totals
    = e2.Core.prediction.Evaluation.Predict.totals)

let suite =
  [
    Alcotest.test_case "full pipeline" `Slow full_pipeline;
    Alcotest.test_case "pipeline through files" `Slow pipeline_through_files;
    Alcotest.test_case "baselines are worse" `Slow baselines_are_worse;
    Alcotest.test_case "origin split pipeline" `Slow origin_split_pipeline;
    Alcotest.test_case "deterministic end to end" `Slow deterministic_end_to_end;
  ]
