(* Unit and property tests for Bgp.Ipv4. *)

open Bgp

let check_str = Alcotest.(check string)

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let roundtrip () =
  List.iter
    (fun s ->
      match Ipv4.of_string s with
      | Some a -> check_str s s (Ipv4.to_string a)
      | None -> Alcotest.failf "did not parse %s" s)
    [ "0.0.0.0"; "255.255.255.255"; "10.0.0.1"; "192.168.1.254"; "1.2.3.4" ]

let rejects_malformed () =
  List.iter
    (fun s ->
      check_bool s true (Ipv4.of_string s = None))
    [
      "";
      "1.2.3";
      "1.2.3.4.5";
      "256.1.1.1";
      "1.2.3.256";
      "a.b.c.d";
      "1..2.3";
      "1.2.3.4 ";
      " 1.2.3.4";
      "1.2.3.04x";
      "-1.2.3.4";
      "1.2.3.4/8";
    ]

let octet_roundtrip () =
  let a = Ipv4.of_octets 192 0 2 33 in
  check_str "render" "192.0.2.33" (Ipv4.to_string a);
  let o1, o2, o3, o4 = Ipv4.octets a in
  check_int "o1" 192 o1;
  check_int "o2" 0 o2;
  check_int "o3" 2 o3;
  check_int "o4" 33 o4

let of_octets_range () =
  Alcotest.check_raises "octet 256" (Invalid_argument "Ipv4.of_octets: octet out of range")
    (fun () -> ignore (Ipv4.of_octets 256 0 0 0));
  Alcotest.check_raises "negative" (Invalid_argument "Ipv4.of_octets: octet out of range")
    (fun () -> ignore (Ipv4.of_octets 0 (-1) 0 0))

let masks () =
  check_str "mask 0" "0.0.0.0" (Ipv4.to_string (Ipv4.mask_bits 0));
  check_str "mask 8" "255.0.0.0" (Ipv4.to_string (Ipv4.mask_bits 8));
  check_str "mask 24" "255.255.255.0" (Ipv4.to_string (Ipv4.mask_bits 24));
  check_str "mask 32" "255.255.255.255" (Ipv4.to_string (Ipv4.mask_bits 32));
  check_str "apply"
    "10.1.0.0"
    (Ipv4.to_string (Ipv4.apply_mask 16 (Ipv4.of_octets 10 1 2 3)))

let ordering () =
  let a = Ipv4.of_octets 10 0 0 1 and b = Ipv4.of_octets 10 0 0 2 in
  check_bool "lt" true (Ipv4.compare a b < 0);
  check_bool "eq" true (Ipv4.equal a a);
  check_bool "succ" true (Ipv4.equal (Ipv4.succ a) b);
  (* wrap-around *)
  check_str "wrap" "0.0.0.0" (Ipv4.to_string (Ipv4.succ (Ipv4.of_octets 255 255 255 255)))

let prop_roundtrip =
  QCheck.Test.make ~name:"ipv4 string roundtrip" ~count:500
    QCheck.(int_bound 0xFFFFFFF)
    (fun n ->
      let a = Ipv4.of_int n in
      match Ipv4.of_string (Ipv4.to_string a) with
      | Some b -> Ipv4.equal a b
      | None -> false)

let prop_mask_idempotent =
  QCheck.Test.make ~name:"mask idempotent" ~count:500
    QCheck.(pair (int_bound 32) (int_bound 0xFFFFFFF))
    (fun (len, n) ->
      let a = Ipv4.of_int n in
      Ipv4.equal (Ipv4.apply_mask len a) (Ipv4.apply_mask len (Ipv4.apply_mask len a)))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick roundtrip;
    Alcotest.test_case "rejects malformed" `Quick rejects_malformed;
    Alcotest.test_case "octets" `Quick octet_roundtrip;
    Alcotest.test_case "of_octets range check" `Quick of_octets_range;
    Alcotest.test_case "masks" `Quick masks;
    Alcotest.test_case "ordering and succ" `Quick ordering;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_mask_idempotent;
  ]
