test/test_properties.ml: Array Asmodel Aspath Bgp Format List Printf QCheck QCheck_alcotest Random Refine Simulator String Topology
