test/test_engine.ml: Alcotest Array Asn Bgp Hashtbl List Option Simulator
