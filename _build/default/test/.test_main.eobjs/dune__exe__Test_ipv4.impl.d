test/test_ipv4.ml: Alcotest Bgp Ipv4 List QCheck QCheck_alcotest
