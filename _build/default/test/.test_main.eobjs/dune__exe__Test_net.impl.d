test/test_net.ml: Alcotest Asn Bgp Ipv4 List Simulator
