test/test_relationships.ml: Alcotest Asn Aspath Bgp Netgen Printf Rib Topology
