test/test_dot.ml: Alcotest Bgp Filename Fun In_channel List Printf String Sys Topology
