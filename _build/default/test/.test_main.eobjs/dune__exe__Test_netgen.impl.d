test/test_netgen.ml: Alcotest Asn Aspath Bgp List Netgen Printf Random Rib Simulator Topology
