test/test_mrt_binary.ml: Alcotest Asn Aspath Attrs Bgp Buffer Char Filename Fun In_channel Ipv4 List Mrt Mrt_binary Prefix QCheck QCheck_alcotest Rib String Sys
