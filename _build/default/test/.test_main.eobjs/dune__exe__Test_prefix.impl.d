test/test_prefix.ml: Alcotest Bgp Ipv4 List Prefix QCheck QCheck_alcotest
