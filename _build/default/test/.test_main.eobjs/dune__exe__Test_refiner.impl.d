test/test_refiner.ml: Alcotest Array Asmodel Asn Aspath Bgp Core List Netgen QCheck QCheck_alcotest Refine Rib Simulator Topology
