test/test_mrt.ml: Alcotest Aspath Attrs Bgp Filename Fun Ipv4 List Mrt Prefix Sys
