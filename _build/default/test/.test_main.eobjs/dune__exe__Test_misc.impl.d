test/test_misc.ml: Alcotest Asmodel Asn Aspath Attrs Bgp List Netgen Printf Refine Rib Simulator Topology
