test/test_aspath.ml: Alcotest Array Aspath Bgp Format List QCheck QCheck_alcotest
