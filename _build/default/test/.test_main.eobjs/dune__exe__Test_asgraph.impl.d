test/test_asgraph.ml: Alcotest Asn Bgp List QCheck QCheck_alcotest Topology
