test/test_divergence.ml: Alcotest Array Asmodel Asn Aspath Bgp Core Netgen Refine Rib Simulator Topology
