test/test_extensions.ml: Alcotest Asmodel Asn Aspath Attrs Bgp List Mrt Option Prefix Result Rib Simulator String Topology
