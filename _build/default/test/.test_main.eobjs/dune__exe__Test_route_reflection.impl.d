test/test_route_reflection.ml: Alcotest Asn Aspath Bgp List Netgen Rib Simulator
