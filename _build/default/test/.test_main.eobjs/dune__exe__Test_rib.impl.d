test/test_rib.ml: Alcotest Asn Aspath Attrs Bgp Filename Fun Hashtbl List Mrt Prefix Rib Sys
