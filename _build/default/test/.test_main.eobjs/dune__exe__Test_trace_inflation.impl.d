test/test_trace_inflation.ml: Alcotest Array Asn Aspath Bgp Format List Netgen Rib Simulator String Topology
