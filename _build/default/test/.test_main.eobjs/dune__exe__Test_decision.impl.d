test/test_decision.ml: Alcotest List QCheck QCheck_alcotest Simulator
