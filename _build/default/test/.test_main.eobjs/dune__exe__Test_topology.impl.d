test/test_topology.ml: Alcotest Asn Aspath Bgp Hashtbl List Rib Topology
