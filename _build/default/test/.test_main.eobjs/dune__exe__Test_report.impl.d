test/test_report.ml: Alcotest Buffer Evaluation Format
