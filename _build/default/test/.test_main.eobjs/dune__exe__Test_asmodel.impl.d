test/test_asmodel.ml: Alcotest Asmodel Asn Aspath Bgp List Option Prefix Result Simulator Topology
