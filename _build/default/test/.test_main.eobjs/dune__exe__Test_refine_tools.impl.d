test/test_refine_tools.ml: Alcotest Asmodel Asn Aspath Bgp Evaluation Hashtbl List Prefix Refine Rib Simulator Topology
