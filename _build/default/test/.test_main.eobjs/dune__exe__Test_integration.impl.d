test/test_integration.ml: Alcotest Asmodel Aspath Bgp Core Evaluation Filename Fun Hashtbl List Netgen Refine Rib Sys
