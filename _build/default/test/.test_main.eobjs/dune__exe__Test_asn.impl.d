test/test_asn.ml: Alcotest Asn Bgp Ipv4 List Prefix Printf QCheck QCheck_alcotest
