test/test_evaluation.ml: Alcotest Array Asmodel Asn Aspath Bgp Evaluation Hashtbl List QCheck QCheck_alcotest Rib Topology
