(* Tests for Topology.Asgraph. *)

open Bgp

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let g = Topology.Asgraph.of_edges [ (1, 2); (2, 3); (3, 1); (3, 4) ]

let construction () =
  check_int "nodes" 4 (Topology.Asgraph.num_nodes g);
  check_int "edges" 4 (Topology.Asgraph.num_edges g);
  check_bool "edge both ways" true
    (Topology.Asgraph.mem_edge g 1 2 && Topology.Asgraph.mem_edge g 2 1);
  check_bool "non-edge" false (Topology.Asgraph.mem_edge g 1 4);
  check_int "degree of 3" 3 (Topology.Asgraph.degree g 3);
  check_int "degree of unknown" 0 (Topology.Asgraph.degree g 99)

let idempotent_adds () =
  let g' = Topology.Asgraph.add_edge g 1 2 in
  check_int "re-add edge" 4 (Topology.Asgraph.num_edges g');
  let g'' = Topology.Asgraph.add_edge g' 5 5 in
  check_int "self loop ignored" 4 (Topology.Asgraph.num_edges g'');
  check_bool "self-loop node added" true (Topology.Asgraph.mem_node g'' 5)

let removal () =
  let g' = Topology.Asgraph.remove_node g 3 in
  check_int "nodes after removal" 3 (Topology.Asgraph.num_nodes g');
  check_int "edges after removal" 1 (Topology.Asgraph.num_edges g');
  check_bool "node 4 isolated" true (Topology.Asgraph.degree g' 4 = 0);
  let g'' = Topology.Asgraph.remove_edge g 1 2 in
  check_int "edge removal" 3 (Topology.Asgraph.num_edges g'');
  check_bool "persistence: original untouched" true
    (Topology.Asgraph.mem_edge g 1 2)

let edges_listing () =
  let edges = Topology.Asgraph.edges g in
  check_int "each edge once" 4 (List.length edges);
  check_bool "ordered pairs" true (List.for_all (fun (a, b) -> a < b) edges)

let cliques () =
  check_bool "triangle" true
    (Topology.Asgraph.is_clique g (Asn.Set.of_list [ 1; 2; 3 ]));
  check_bool "not a clique" false
    (Topology.Asgraph.is_clique g (Asn.Set.of_list [ 1; 2; 4 ]));
  check_bool "singleton" true (Topology.Asgraph.is_clique g (Asn.Set.singleton 1));
  check_bool "empty" true (Topology.Asgraph.is_clique g Asn.Set.empty)

let components () =
  let g2 = Topology.Asgraph.add_edge g 10 11 in
  let c = Topology.Asgraph.connected_component g2 1 in
  check_bool "component of 1" true (Asn.Set.equal c (Asn.Set.of_list [ 1; 2; 3; 4 ]));
  let c10 = Topology.Asgraph.connected_component g2 10 in
  check_bool "component of 10" true (Asn.Set.equal c10 (Asn.Set.of_list [ 10; 11 ]));
  check_bool "component of missing node" true
    (Asn.Set.is_empty (Topology.Asgraph.connected_component g2 42))

let subgraph () =
  let s = Topology.Asgraph.subgraph g (Asn.Set.of_list [ 1; 2; 4 ]) in
  check_int "subgraph nodes" 3 (Topology.Asgraph.num_nodes s);
  check_int "subgraph edges" 1 (Topology.Asgraph.num_edges s)

let degree_histogram () =
  let h = Topology.Asgraph.degree_histogram g in
  (* degrees: 1->2, 2->2, 3->3, 4->1 *)
  check_bool "histogram" true (h = [ (1, 1); (2, 2); (3, 1) ])

let gen_edges =
  QCheck.Gen.(list_size (int_bound 40) (pair (int_range 1 15) (int_range 1 15)))

let prop_degree_sum =
  QCheck.Test.make ~name:"sum of degrees = 2 * edges" ~count:200
    (QCheck.make gen_edges)
    (fun edges ->
      let g = Topology.Asgraph.of_edges edges in
      let sum =
        Topology.Asgraph.fold_nodes
          (fun a acc -> acc + Topology.Asgraph.degree g a)
          g 0
      in
      sum = 2 * Topology.Asgraph.num_edges g)

let prop_edges_symmetric =
  QCheck.Test.make ~name:"neighbors symmetric" ~count:200 (QCheck.make gen_edges)
    (fun edges ->
      let g = Topology.Asgraph.of_edges edges in
      Topology.Asgraph.fold_nodes
        (fun a ok ->
          ok
          && Asn.Set.for_all
               (fun b -> Asn.Set.mem a (Topology.Asgraph.neighbors g b))
               (Topology.Asgraph.neighbors g a))
        g true)

let suite =
  [
    Alcotest.test_case "construction" `Quick construction;
    Alcotest.test_case "idempotent adds" `Quick idempotent_adds;
    Alcotest.test_case "removal" `Quick removal;
    Alcotest.test_case "edges listing" `Quick edges_listing;
    Alcotest.test_case "cliques" `Quick cliques;
    Alcotest.test_case "components" `Quick components;
    Alcotest.test_case "subgraph" `Quick subgraph;
    Alcotest.test_case "degree histogram" `Quick degree_histogram;
    QCheck_alcotest.to_alcotest prop_degree_sum;
    QCheck_alcotest.to_alcotest prop_edges_symmetric;
  ]
