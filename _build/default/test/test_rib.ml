(* Tests for Bgp.Rib: cleaning, indexing, splitting, stub transfer. *)

open Bgp

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let op asn = { Rib.op_ip = Asn.router_ip asn 0; op_as = asn }

let record ?(peer = 1) ?(prefix = Asn.origin_prefix 6) path_list =
  {
    Mrt.time = 0;
    peer_ip = Asn.router_ip peer 0;
    peer_as = peer;
    prefix;
    path = Aspath.of_list path_list;
    attrs = Attrs.default ~next_hop:(Asn.router_ip peer 0);
  }

let cleaning () =
  let records =
    [
      record [ 1; 7; 6 ];
      record [ 1; 1; 7; 7; 6 ];
      (* prepending, same path after cleanup *)
      record [ 1; 7; 1; 6 ];
      (* loop: dropped *)
      record ~peer:2 [ 8; 6 ];
      (* peer AS missing from path head: reinstated *)
    ]
  in
  let data, stats = Rib.of_records records in
  check_int "raw" 4 stats.Rib.raw;
  check_int "loops dropped" 1 stats.Rib.dropped_loops;
  check_int "dedup" 1 stats.Rib.deduplicated;
  check_int "kept" 2 (Rib.size data);
  let paths = Rib.all_paths data in
  check_bool "head reinstated" true
    (List.exists (fun p -> Aspath.to_list p = [ 2; 8; 6 ]) paths)

let indexing () =
  let data =
    Rib.of_entries
      [
        { Rib.op = op 1; prefix = Asn.origin_prefix 6; path = Aspath.of_list [ 1; 7; 6 ] };
        { Rib.op = op 1; prefix = Asn.origin_prefix 6; path = Aspath.of_list [ 1; 8; 6 ] };
        { Rib.op = op 2; prefix = Asn.origin_prefix 5; path = Aspath.of_list [ 2; 5 ] };
      ]
  in
  check_int "entries" 3 (Rib.size data);
  check_int "observation points" 2 (List.length (Rib.observation_points data));
  check_int "prefixes" 2 (List.length (Rib.prefixes data));
  check_bool "origins" true (Asn.Set.equal (Rib.origins data) (Asn.Set.of_list [ 5; 6 ]));
  check_int "paths for prefix 6" 2
    (List.length (Rib.paths_for_prefix data (Asn.origin_prefix 6)));
  let by_prefix = Rib.by_prefix data in
  check_int "by_prefix groups" 2 (Prefix.Map.cardinal by_prefix)

let restriction () =
  let e1 = { Rib.op = op 1; prefix = Asn.origin_prefix 6; path = Aspath.of_list [ 1; 6 ] } in
  let e2 = { Rib.op = op 2; prefix = Asn.origin_prefix 6; path = Aspath.of_list [ 2; 6 ] } in
  let e3 = { Rib.op = op 2; prefix = Asn.origin_prefix 9; path = Aspath.of_list [ 2; 9 ] } in
  let data = Rib.of_entries [ e1; e2; e3 ] in
  let only1 = Rib.restrict_points data [ op 1 ] in
  check_int "restrict to op1" 1 (Rib.size only1);
  let only9 = Rib.restrict_origins data (Asn.Set.singleton 9) in
  check_int "restrict to origin 9" 1 (Rib.size only9)

let pair_diversity () =
  let data =
    Rib.of_entries
      [
        { Rib.op = op 1; prefix = Asn.nth_prefix 6 0; path = Aspath.of_list [ 1; 7; 6 ] };
        { Rib.op = op 1; prefix = Asn.nth_prefix 6 1; path = Aspath.of_list [ 1; 8; 6 ] };
      ]
  in
  let pairs = Rib.unique_paths_per_pair data in
  check_int "one pair" 1 (Hashtbl.length pairs);
  check_int "two distinct paths" 2
    (Aspath.Set.cardinal (Hashtbl.find pairs (6, 1)))

let collapse () =
  let data =
    Rib.of_entries
      [
        { Rib.op = op 1; prefix = Asn.nth_prefix 6 2; path = Aspath.of_list [ 1; 7; 6 ] };
        { Rib.op = op 1; prefix = Asn.nth_prefix 6 1; path = Aspath.of_list [ 1; 7; 6 ] };
      ]
  in
  let collapsed = Rib.collapse_to_origin data in
  check_int "merged to one prefix and deduped" 1 (Rib.size collapsed);
  check_bool "canonical prefix" true
    (List.for_all
       (fun (e : Rib.entry) -> Prefix.equal e.prefix (Asn.origin_prefix 6))
       (Rib.entries collapsed))

let stub_transfer () =
  (* AS 9 is a single-homed stub behind AS 7; its path info moves to
     AS 7's prefix. *)
  let data =
    Rib.of_entries
      [
        { Rib.op = op 1; prefix = Asn.origin_prefix 9; path = Aspath.of_list [ 1; 7; 9 ] };
        { Rib.op = op 1; prefix = Asn.origin_prefix 7; path = Aspath.of_list [ 1; 7 ] };
      ]
  in
  let removed = Asn.Set.singleton 9 in
  let out = Rib.transfer_stub_origins data ~removed ~reprefix:Asn.origin_prefix in
  check_int "deduped into one entry" 1 (Rib.size out);
  List.iter
    (fun (e : Rib.entry) ->
      check_bool "prefix is AS7's" true (Prefix.equal e.prefix (Asn.origin_prefix 7));
      check_bool "path truncated" true (Aspath.to_list e.path = [ 1; 7 ]))
    (Rib.entries out)

let stub_transfer_drops_removed_observers () =
  let data =
    Rib.of_entries
      [ { Rib.op = op 9; prefix = Asn.origin_prefix 7; path = Aspath.of_list [ 9; 7 ] } ]
  in
  let out =
    Rib.transfer_stub_origins data ~removed:(Asn.Set.singleton 9)
      ~reprefix:Asn.origin_prefix
  in
  check_int "entry observed inside removed stub dropped" 0 (Rib.size out)

let save_load_roundtrip () =
  let data =
    Rib.of_entries
      [
        { Rib.op = op 1; prefix = Asn.origin_prefix 6; path = Aspath.of_list [ 1; 7; 6 ] };
        { Rib.op = op 2; prefix = Asn.origin_prefix 5; path = Aspath.of_list [ 2; 5 ] };
      ]
  in
  let tmp = Filename.temp_file "rib_test" ".dump" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Rib.save tmp data;
      let loaded, stats = Rib.load tmp in
      check_int "no drops" 0 (stats.Rib.dropped_loops + stats.Rib.dropped_empty);
      check_int "same size" (Rib.size data) (Rib.size loaded);
      check_bool "same entries" true (Rib.entries data = Rib.entries loaded))

let suite =
  [
    Alcotest.test_case "cleaning" `Quick cleaning;
    Alcotest.test_case "indexing" `Quick indexing;
    Alcotest.test_case "restriction" `Quick restriction;
    Alcotest.test_case "pair diversity" `Quick pair_diversity;
    Alcotest.test_case "collapse to origin" `Quick collapse;
    Alcotest.test_case "stub transfer" `Quick stub_transfer;
    Alcotest.test_case "stub transfer drops removed observers" `Quick
      stub_transfer_drops_removed_observers;
    Alcotest.test_case "save/load roundtrip" `Quick save_load_roundtrip;
  ]
