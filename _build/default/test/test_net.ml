(* Tests for the network structure and its policy stores. *)

open Bgp
module Net = Simulator.Net

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let p = Asn.origin_prefix 6

let make_pair () =
  let net = Net.create () in
  let a = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let b = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let sa, sb = Net.connect net a b in
  (net, a, b, sa, sb)

let construction () =
  let net, a, b, sa, sb = make_pair () in
  check_int "nodes" 2 (Net.node_count net);
  check_int "half-sessions" 2 (Net.session_count net);
  check_int "peer of a" b (Net.session_peer net a sa);
  check_int "peer of b" a (Net.session_peer net b sb);
  check_int "reverse of a's session" sb (Net.session_reverse net a sa);
  check_bool "find session" true (Net.find_session net a b = Some sa);
  check_bool "asn" true (Net.asn_of net a = 1)

let duplicate_sessions_rejected () =
  let net, a, b, _, _ = make_pair () in
  Alcotest.check_raises "dup" (Invalid_argument "Net.connect: session already exists")
    (fun () -> ignore (Net.connect net a b));
  Alcotest.check_raises "self" (Invalid_argument "Net.connect: self session")
    (fun () -> ignore (Net.connect net a a))

let policies () =
  let net, a, _b, sa, _ = make_pair () in
  check_bool "no deny initially" false (Net.export_denied net a sa p);
  Net.deny_export net a sa p;
  check_bool "denied" true (Net.export_denied net a sa p);
  Net.allow_export net a sa p;
  check_bool "allowed again" false (Net.export_denied net a sa p);
  check_bool "no med initially" true (Net.import_med net a sa p = None);
  Net.set_import_med net a sa p 0;
  check_bool "med set" true (Net.import_med net a sa p = Some 0);
  Net.clear_import_med net a sa p;
  check_bool "med cleared" true (Net.import_med net a sa p = None);
  Net.set_import_lpref net a sa 120;
  check_bool "lpref" true (Net.import_lpref net a sa = Some 120);
  Net.set_carry_lpref net a sa true;
  check_bool "carry" true (Net.carry_lpref net a sa)

let policy_counting () =
  let net, a, b, sa, sb = make_pair () in
  Net.deny_export net a sa p;
  Net.deny_export net b sb (Asn.origin_prefix 7);
  Net.set_import_med net a sa p 5;
  let denies, meds = Net.count_policies net in
  check_int "denies" 2 denies;
  check_int "meds" 1 meds;
  let folded =
    Net.fold_export_denies net (fun _ _ _ acc -> acc + 1) 0
  in
  check_int "fold over denies" 2 folded

let nodes_of_as_ordering () =
  let net = Net.create () in
  let a0 = Net.add_node net ~asn:5 ~ip:(Asn.router_ip 5 0) in
  let a1 = Net.add_node net ~asn:5 ~ip:(Asn.router_ip 5 1) in
  check_bool "creation order" true (Net.nodes_of_as net 5 = [ a0; a1 ]);
  check_bool "unknown as" true (Net.nodes_of_as net 99 = [])

let duplication () =
  let net = Net.create () in
  let a = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let b = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let c = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  let sa_b, sb_a = Net.connect net a b in
  let sa_c, _ = Net.connect net a c in
  (* Policies in all four directions around [a]. *)
  Net.set_import_lpref net a sa_b 111;
  Net.set_import_med net a sa_c p 7;
  Net.deny_export net a sa_b p;
  Net.deny_export net b sb_a (Asn.origin_prefix 9);
  let a2 = Net.duplicate_node net a in
  check_bool "same asn" true (Net.asn_of net a2 = 1);
  check_bool "fresh ip = next index" true
    (Ipv4.equal (Net.ip_of net a2) (Asn.router_ip 1 1));
  check_int "same session count" 2 (List.length (Net.sessions_of net a2));
  (* The duplicate's session i mirrors the original's session i. *)
  check_int "peer order preserved" (Net.session_peer net a sa_b)
    (Net.session_peer net a2 sa_b);
  check_bool "import lpref copied" true (Net.import_lpref net a2 sa_b = Some 111);
  check_bool "import med copied" true (Net.import_med net a2 sa_c p = Some 7);
  check_bool "own deny copied" true (Net.export_denied net a2 sa_b p);
  (* The peer's policies towards the duplicate mirror those towards the
     original. *)
  let sb_a2 =
    match Net.find_session net b a2 with Some s -> s | None -> Alcotest.fail "no session"
  in
  check_bool "peer-side deny copied" true
    (Net.export_denied net b sb_a2 (Asn.origin_prefix 9));
  (* Policies are deep copies: changing the duplicate leaves the
     original alone. *)
  Net.set_import_med net a2 sa_c p 99;
  check_bool "deep copy" true (Net.import_med net a sa_c p = Some 7)

let suite =
  [
    Alcotest.test_case "construction" `Quick construction;
    Alcotest.test_case "duplicate sessions rejected" `Quick duplicate_sessions_rejected;
    Alcotest.test_case "policies" `Quick policies;
    Alcotest.test_case "policy counting" `Quick policy_counting;
    Alcotest.test_case "nodes_of_as ordering" `Quick nodes_of_as_ordering;
    Alcotest.test_case "duplication" `Quick duplication;
  ]
