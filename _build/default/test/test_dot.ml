(* Tests for the Graphviz export. *)

let check_bool = Alcotest.(check bool)

let contains needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let graph = Topology.Asgraph.of_edges [ (1, 2); (1, 3); (2, 3); (2, 4) ]

let plain_output () =
  let dot = Topology.Dot.of_graph graph in
  check_bool "graph header" true (contains "graph as_topology {" dot);
  check_bool "all nodes" true
    (List.for_all (fun a -> contains (Printf.sprintf "as%d [" a) dot) [ 1; 2; 3; 4 ]);
  check_bool "an edge" true (contains "as1 -- as2" dot);
  check_bool "closes" true (contains "}" dot)

let levels_colouring () =
  let levels = Topology.Hierarchy.classify ~seeds:[ 1; 2 ] graph in
  let dot = Topology.Dot.of_graph ~levels graph in
  check_bool "tier-1 salmon" true (contains "fillcolor=salmon" dot);
  check_bool "tier-2 orange" true (contains "fillcolor=orange" dot)

let relationship_styles () =
  let rels =
    Topology.Relationships.infer graph
      [ Bgp.Aspath.of_list [ 4; 2; 1; 3 ]; Bgp.Aspath.of_list [ 4; 2; 3 ] ]
  in
  let dot = Topology.Dot.of_graph ~relationships:rels graph in
  check_bool "directed or styled edges appear" true
    (contains "dir=" dot || contains "style=" dot || contains "color=grey" dot)

let quasi_router_labels () =
  let dot =
    Topology.Dot.of_graph ~quasi_routers:(fun a -> if a = 2 then 3 else 1) graph
  in
  check_bool "qr label" true (contains "AS2\\n3 qr" dot)

let file_output () =
  let tmp = Filename.temp_file "dot" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Topology.Dot.save tmp graph;
      let content = In_channel.with_open_text tmp In_channel.input_all in
      check_bool "written" true (contains "as_topology" content))

let suite =
  [
    Alcotest.test_case "plain output" `Quick plain_output;
    Alcotest.test_case "levels colouring" `Quick levels_colouring;
    Alcotest.test_case "relationship styles" `Quick relationship_styles;
    Alcotest.test_case "quasi-router labels" `Quick quasi_router_labels;
    Alcotest.test_case "file output" `Quick file_output;
  ]
