(* Tests for Bgp.Asn: parsing, origin-prefix scheme, router addresses. *)

open Bgp

let check_bool = Alcotest.(check bool)

let parsing () =
  check_bool "valid" true (Asn.of_string "7018" = Some 7018);
  check_bool "zero rejected" true (Asn.of_string "0" = None);
  check_bool "negative rejected" true (Asn.of_string "-1" = None);
  check_bool "junk rejected" true (Asn.of_string "AS7018" = None);
  check_bool "empty rejected" true (Asn.of_string "" = None)

let origin_prefix_roundtrip () =
  List.iter
    (fun asn ->
      let p = Asn.origin_prefix asn in
      check_bool
        (Printf.sprintf "AS%d" asn)
        true
        (Asn.of_origin_prefix p = Some asn))
    [ 1; 255; 256; 3356; 65535 ]

let nth_prefix_distinct () =
  let asn = 1234 in
  let prefixes = List.init Asn.max_prefixes (Asn.nth_prefix asn) in
  let set = Prefix.Set.of_list prefixes in
  Alcotest.(check int) "all distinct" Asn.max_prefixes (Prefix.Set.cardinal set);
  List.iter
    (fun p -> check_bool "maps back" true (Asn.of_origin_prefix p = Some asn))
    prefixes

let nth_prefix_bounds () =
  Alcotest.check_raises "index too big" (Invalid_argument "Asn.nth_prefix: index")
    (fun () -> ignore (Asn.nth_prefix 1 Asn.max_prefixes));
  Alcotest.check_raises "asn too big" (Invalid_argument "Asn.nth_prefix: asn")
    (fun () -> ignore (Asn.nth_prefix 65536 0))

let foreign_prefix () =
  check_bool "non-synthetic prefix" true
    (Asn.of_origin_prefix (Prefix.of_string_exn "8.8.8.0/24") = None);
  check_bool "wrong length" true
    (Asn.of_origin_prefix (Prefix.of_string_exn "10.1.2.0/23") = None)

let router_ip_scheme () =
  let ip = Asn.router_ip 7018 3 in
  let asn, idx = Asn.of_router_ip ip in
  Alcotest.(check int) "asn" 7018 asn;
  Alcotest.(check int) "idx" 3 idx;
  (* The paper's tie-break: lower index means lower address within an
     AS, and lower ASN dominates. *)
  check_bool "idx order" true
    (Ipv4.compare (Asn.router_ip 10 0) (Asn.router_ip 10 1) < 0);
  check_bool "asn order" true
    (Ipv4.compare (Asn.router_ip 10 65535) (Asn.router_ip 11 0) < 0)

let prop_router_ip_roundtrip =
  QCheck.Test.make ~name:"router ip roundtrip" ~count:500
    QCheck.(pair (int_range 1 65535) (int_bound 65535))
    (fun (asn, idx) -> Asn.of_router_ip (Asn.router_ip asn idx) = (asn, idx))

let suite =
  [
    Alcotest.test_case "parsing" `Quick parsing;
    Alcotest.test_case "origin prefix roundtrip" `Quick origin_prefix_roundtrip;
    Alcotest.test_case "nth prefixes distinct" `Quick nth_prefix_distinct;
    Alcotest.test_case "nth prefix bounds" `Quick nth_prefix_bounds;
    Alcotest.test_case "foreign prefixes" `Quick foreign_prefix;
    Alcotest.test_case "router ip scheme" `Quick router_ip_scheme;
    QCheck_alcotest.to_alcotest prop_router_ip_roundtrip;
  ]
