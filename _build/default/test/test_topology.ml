(* Tests for Topology.Extract, Hierarchy, Diversity. *)

open Bgp

let check_int = Alcotest.(check int)

let check_bool = Alcotest.(check bool)

let op asn = { Rib.op_ip = Asn.router_ip asn 0; op_as = asn }

let entry ?(o = 1) prefix_as path_list =
  {
    Rib.op = op o;
    prefix = Asn.origin_prefix prefix_as;
    path = Aspath.of_list path_list;
  }

(* A small world: 1 observes; 2,3 transit; 6 multi-homed stub behind 2
   and 3; 9 single-homed stub behind 3. *)
let data =
  Rib.of_entries
    [
      entry 6 [ 1; 2; 6 ];
      entry 6 [ 1; 3; 6 ];
      entry 9 [ 1; 3; 9 ];
      entry 2 [ 1; 2 ];
      entry 3 [ 1; 3 ];
    ]

let extraction () =
  let g = Topology.Extract.graph_of_dataset data in
  check_int "nodes" 5 (Topology.Asgraph.num_nodes g);
  check_int "edges" 5 (Topology.Asgraph.num_edges g);
  check_bool "1-2 edge" true (Topology.Asgraph.mem_edge g 1 2);
  check_bool "no 2-3 edge" false (Topology.Asgraph.mem_edge g 2 3)

let transit_detection () =
  let transit = Topology.Extract.transit_ases (Rib.all_paths data) in
  check_bool "2 and 3 transit" true
    (Asn.Set.equal transit (Asn.Set.of_list [ 2; 3 ]))

let classification () =
  let c = Topology.Extract.classify data in
  check_bool "single-homed stub 9" true
    (Asn.Set.mem 9 c.Topology.Extract.stubs_single_homed);
  check_bool "multi-homed stub 6" true
    (Asn.Set.mem 6 c.Topology.Extract.stubs_multi_homed);
  (* AS 1 only ever observes; it is a degree-3 stub here. *)
  check_bool "AS1 not transit" false (Asn.Set.mem 1 c.Topology.Extract.transit)

let reduction () =
  let r = Topology.Extract.reduce data in
  check_bool "9 removed" false (Topology.Asgraph.mem_node r.Topology.Extract.core 9);
  check_bool "6 kept (multi-homed)" true
    (Topology.Asgraph.mem_node r.Topology.Extract.core 6);
  (* 9's path information lives on as a path to AS 3's prefix. *)
  let paths3 = Rib.paths_for_prefix r.Topology.Extract.data (Asn.origin_prefix 3) in
  check_bool "transferred path" true
    (List.exists (fun (e : Rib.entry) -> Aspath.to_list e.path = [ 1; 3 ]) paths3)

(* Hierarchy: a 3-clique of high-degree ASes (1,2,3) with customers. *)
let hier_graph =
  Topology.Asgraph.of_edges
    [
      (1, 2); (1, 3); (2, 3);  (* clique *)
      (1, 10); (1, 11); (1, 12);
      (2, 20); (2, 21); (2, 22);
      (3, 30); (3, 31);
      (10, 100); (20, 200);
    ]

let tier1_inference () =
  let t1 = Topology.Hierarchy.infer_tier1 hier_graph in
  check_bool "clique found" true (Asn.Set.equal t1 (Asn.Set.of_list [ 1; 2; 3 ]))

let tier1_with_seeds () =
  let t1 = Topology.Hierarchy.infer_tier1 ~seeds:[ 1; 2 ] hier_graph in
  check_bool "seeded" true (Asn.Set.equal t1 (Asn.Set.of_list [ 1; 2; 3 ]));
  Alcotest.check_raises "non-adjacent seeds rejected"
    (Invalid_argument "Hierarchy.infer_tier1: seeds are not a clique")
    (fun () -> ignore (Topology.Hierarchy.infer_tier1 ~seeds:[ 10; 20 ] hier_graph))

let levels () =
  let l = Topology.Hierarchy.classify hier_graph in
  check_int "level1" 3 (Asn.Set.cardinal l.Topology.Hierarchy.level1);
  check_bool "customers are level2" true
    (Asn.Set.mem 10 l.Topology.Hierarchy.level2 && Asn.Set.mem 30 l.Topology.Hierarchy.level2);
  check_bool "far nodes are other" true
    (Asn.Set.mem 100 l.Topology.Hierarchy.other);
  check_int "level_of" 1 (Topology.Hierarchy.level_of l 1);
  check_int "level_of other" 3 (Topology.Hierarchy.level_of l 100);
  check_int "level_of unknown" 3 (Topology.Hierarchy.level_of l 999)

let diversity_figure2 () =
  let data =
    Rib.of_entries
      [
        entry 6 [ 1; 2; 6 ];
        entry 6 [ 1; 3; 6 ];
        { Rib.op = op 1; prefix = Asn.nth_prefix 6 1; path = Aspath.of_list [ 1; 2; 6 ] };
        entry 5 [ 1; 5 ];
      ]
  in
  let hist = Topology.Diversity.pair_path_histogram data in
  (* pair (6,1) has 2 distinct paths; pair (5,1) has 1. *)
  check_bool "histogram" true (hist = [ (1, 1); (2, 1) ]);
  check_bool "fraction" true
    (abs_float (Topology.Diversity.fraction_pairs_with_diversity data -. 0.5) < 1e-9)

let diversity_received () =
  let data =
    Rib.of_entries
      [
        entry 6 [ 1; 2; 4; 6 ];
        entry 6 [ 1; 2; 5; 6 ];
        entry ~o:3 6 [ 3; 2; 4; 6 ];
      ]
  in
  let received = Topology.Diversity.received_paths data in
  (* AS 2 receives suffixes 4-6 and 5-6 for prefix 6. *)
  let got = Hashtbl.find received (2, Asn.origin_prefix 6) in
  check_int "AS2 receives two" 2 (Aspath.Set.cardinal got);
  let maxes = Topology.Diversity.max_received_diversity data in
  check_bool "AS2 max is 2" true (List.assoc 2 maxes = 2);
  check_bool "AS1 max is 2" true (List.assoc 1 maxes = 2)

let table1_quantiles () =
  let data =
    Rib.of_entries
      [ entry 6 [ 1; 2; 6 ]; entry 6 [ 1; 3; 6 ]; entry 5 [ 1; 5 ] ]
  in
  let q = Topology.Diversity.table1_quantiles data in
  check_int "five quantiles" 5 (List.length q);
  check_bool "quantiles monotone" true
    (let vs = List.map snd q in
     List.sort compare vs = vs)

let prefixes_per_path () =
  let data =
    Rib.of_entries
      [
        entry 6 [ 1; 2; 6 ];
        { Rib.op = op 1; prefix = Asn.nth_prefix 6 1; path = Aspath.of_list [ 1; 2; 6 ] };
        entry 5 [ 1; 5 ];
      ]
  in
  let hist = Topology.Diversity.prefixes_per_path_histogram data in
  (* path 1-2-6 serves 2 prefixes; path 1-5 serves 1. *)
  check_bool "histogram" true (hist = [ (1, 1); (2, 1) ])

let suite =
  [
    Alcotest.test_case "extraction" `Quick extraction;
    Alcotest.test_case "transit detection" `Quick transit_detection;
    Alcotest.test_case "classification" `Quick classification;
    Alcotest.test_case "reduction" `Quick reduction;
    Alcotest.test_case "tier-1 inference" `Quick tier1_inference;
    Alcotest.test_case "tier-1 with seeds" `Quick tier1_with_seeds;
    Alcotest.test_case "levels" `Quick levels;
    Alcotest.test_case "diversity: figure 2" `Quick diversity_figure2;
    Alcotest.test_case "diversity: received" `Quick diversity_received;
    Alcotest.test_case "table 1 quantiles" `Quick table1_quantiles;
    Alcotest.test_case "prefixes per path" `Quick prefixes_per_path;
  ]
