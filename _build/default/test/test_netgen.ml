(* Tests for the synthetic-Internet substrate. *)

open Bgp

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let conf = { Netgen.Conf.tiny with Netgen.Conf.seed = 17 }

let topo = Netgen.Gentopo.generate conf (Random.State.make [| 17 |])

let structure () =
  let n =
    conf.Netgen.Conf.n_tier1 + conf.Netgen.Conf.n_tier2
    + conf.Netgen.Conf.n_tier3 + conf.Netgen.Conf.n_stub
  in
  check_int "as count" n (List.length (Netgen.Gentopo.ases topo));
  check_bool "tier of first" true (Netgen.Gentopo.tier_of topo 1 = Netgen.Gentopo.T1);
  check_bool "stubs are stubs" true
    (Netgen.Gentopo.tier_of topo n = Netgen.Gentopo.Stub)

let tier1_clique () =
  let g = Netgen.Gentopo.as_graph topo in
  let t1 = List.init conf.Netgen.Conf.n_tier1 (fun i -> i + 1) in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b then
            check_bool
              (Printf.sprintf "t1 %d-%d" a b)
              true
              (Topology.Asgraph.mem_edge g a b))
        t1)
    t1

let connectivity () =
  let g = Netgen.Gentopo.as_graph topo in
  let component = Topology.Asgraph.connected_component g 1 in
  check_int "single component" (Topology.Asgraph.num_nodes g)
    (Asn.Set.cardinal component)

let igp_metric () =
  (* IGP costs are a metric-ish: symmetric and zero on the diagonal. *)
  let ases = Netgen.Gentopo.ases topo in
  List.iter
    (fun asn ->
      let n = Asn.Map.find asn topo.Netgen.Gentopo.routers in
      for r1 = 0 to n - 1 do
        check_int "self distance" 0 (Netgen.Gentopo.igp_cost topo asn r1 r1);
        for r2 = 0 to n - 1 do
          check_int "symmetric"
            (Netgen.Gentopo.igp_cost topo asn r1 r2)
            (Netgen.Gentopo.igp_cost topo asn r2 r1)
        done
      done)
    ases

let determinism () =
  let t2 = Netgen.Gentopo.generate conf (Random.State.make [| 17 |]) in
  check_bool "same links" true (topo.Netgen.Gentopo.links = t2.Netgen.Gentopo.links)

let true_rel_consistency () =
  List.iter
    (fun (l : Netgen.Gentopo.link) ->
      let ab = Netgen.Gentopo.true_rel topo l.Netgen.Gentopo.a l.Netgen.Gentopo.b in
      let ba = Netgen.Gentopo.true_rel topo l.Netgen.Gentopo.b l.Netgen.Gentopo.a in
      match (ab, ba) with
      | Some `Provider, Some `Customer
      | Some `Customer, Some `Provider
      | Some `Peer, Some `Peer
      | Some `Sibling, Some `Sibling ->
          ()
      | _, _ -> Alcotest.fail "asymmetric relationship")
    topo.Netgen.Gentopo.links

let world = Netgen.Groundtruth.build conf

let world_convergence () =
  List.iter
    (fun (prefix, _, _) ->
      let st = Netgen.Groundtruth.simulate world prefix in
      check_bool "converged" true (Simulator.Engine.converged st))
    world.Netgen.Groundtruth.prefix_plan

let observation_points_valid () =
  let ops = Netgen.Groundtruth.observation_points world in
  check_bool "nonempty" true (ops <> []);
  List.iter
    (fun (node, op) ->
      check_bool "op as matches node as" true
        (Simulator.Net.asn_of world.Netgen.Groundtruth.net node = op.Rib.op_as))
    world.Netgen.Groundtruth.obs

let observe_consistency () =
  let data = Netgen.Groundtruth.observe world in
  check_bool "entries exist" true (Rib.size data > 0);
  (* Every observed path starts at its observation AS and its origin
     owns the prefix. *)
  List.iter
    (fun (e : Rib.entry) ->
      check_bool "head is obs as" true (Aspath.head e.Rib.path = Some e.Rib.op.Rib.op_as);
      match Aspath.origin e.Rib.path with
      | Some o -> check_bool "origin owns prefix" true (Asn.of_origin_prefix e.Rib.prefix = Some o)
      | None -> Alcotest.fail "empty path")
    (Rib.entries data);
  (* Deterministic: same seed, same world, same dumps. *)
  let world2 = Netgen.Groundtruth.build conf in
  let data2 = Netgen.Groundtruth.observe world2 in
  check_bool "deterministic" true (Rib.entries data = Rib.entries data2)

let observed_paths_loop_free () =
  let data = Netgen.Groundtruth.observe world in
  List.iter
    (fun p -> check_bool "loop-free" false (Aspath.has_loop p))
    (Rib.all_paths data)

let prefix_plan_sanity () =
  List.iter
    (fun (prefix, origin, anchors) ->
      check_bool "prefix belongs to origin" true
        (Asn.of_origin_prefix prefix = Some origin);
      check_bool "anchors nonempty" true (anchors <> []);
      List.iter
        (fun n ->
          check_bool "anchor in origin AS" true
            (Simulator.Net.asn_of world.Netgen.Groundtruth.net n = origin))
        anchors)
    world.Netgen.Groundtruth.prefix_plan

let suite =
  [
    Alcotest.test_case "structure" `Quick structure;
    Alcotest.test_case "tier-1 clique" `Quick tier1_clique;
    Alcotest.test_case "connectivity" `Quick connectivity;
    Alcotest.test_case "igp metric" `Quick igp_metric;
    Alcotest.test_case "determinism" `Quick determinism;
    Alcotest.test_case "true_rel consistency" `Quick true_rel_consistency;
    Alcotest.test_case "world convergence" `Slow world_convergence;
    Alcotest.test_case "observation points valid" `Quick observation_points_valid;
    Alcotest.test_case "observe consistency" `Slow observe_consistency;
    Alcotest.test_case "observed paths loop-free" `Slow observed_paths_loop_free;
    Alcotest.test_case "prefix plan sanity" `Quick prefix_plan_sanity;
  ]
