(* Route-diversity analysis of a BGP data set (paper §3.1–3.2).

   Generates a small synthetic world, observes its table dumps, and
   reproduces the paper's data analysis: the inventory of §3.1, the
   Figure 2 histogram of distinct AS-paths per AS pair, and the Table 1
   quantiles of received route diversity (the lower bound on how many
   quasi-routers each AS needs).

   Run with: dune exec examples/route_diversity.exe [-- seed] *)

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 11
  in
  let conf = { (Netgen.Conf.scaled 0.35) with Netgen.Conf.seed } in
  Format.printf "Generating synthetic world (seed %d)...@." seed;
  let world = Netgen.Groundtruth.build conf in
  Format.printf "%a@." Netgen.Groundtruth.pp_summary world;
  let data = Netgen.Groundtruth.observe world in
  Format.printf "Observed %d RIB entries at %d observation points@.@."
    (Bgp.Rib.size data)
    (List.length (Bgp.Rib.observation_points data));

  let std = Format.std_formatter in
  let prepared = Core.prepare data in
  Evaluation.Report.section std "3.1" "data set inventory";
  Format.printf "%a@." Topology.Extract.pp_classification
    prepared.Core.classification;
  Format.printf "hierarchy: %a@." Topology.Hierarchy.pp_levels
    prepared.Core.levels;

  Evaluation.Report.section std "Fig 2" "distinct AS-paths per AS pair";
  Evaluation.Report.int_series std ~x:"#paths" ~y:"#pairs"
    (Topology.Diversity.pair_path_histogram data);
  Format.printf "@.pairs with more than one distinct path: %.1f%% %s@."
    (100.0 *. Topology.Diversity.fraction_pairs_with_diversity data)
    "(the paper reports >30% on 1,300 vantage points)";

  Evaluation.Report.section std "3.2" "prefixes per AS-path (log-log linearity)";
  let hist = Topology.Diversity.prefixes_per_path_histogram data in
  Evaluation.Report.table std ~header:[ "prefixes/path"; "paths" ]
    (List.map
       (fun (lo, hi, n) ->
         [
           (if lo = hi then string_of_int lo
            else Printf.sprintf "%d-%d" lo hi);
           string_of_int n;
         ])
       (Evaluation.Quantiles.log_binned hist));

  Evaluation.Report.section std "Tab 1" "max received route diversity per AS";
  Evaluation.Report.table std ~header:[ "percentile"; "max #unique AS-paths" ]
    (List.map
       (fun (p, v) -> [ Printf.sprintf "%.0f%%" p; string_of_int v ])
       (Topology.Diversity.table1_quantiles data));
  Format.printf
    "@.An AS receiving k distinct paths for one prefix needs at least k@.\
     quasi-routers to propagate them all (paper §3.2).@."
