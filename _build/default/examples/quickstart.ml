(* Quickstart: the paper's Figure 5 scenario, by hand.

   Five ASes; AS 3 originates p1 and AS 4 originates p2.  An observation
   point at AS 1 sees
     - path 1-2-3 for p1 (although 1-4-3 has equal length), and
     - BOTH 1-4 and 1-5-4 for p2 (route diversity!).
   A single router per AS cannot reproduce the second observation.  We
   build the observed data, run the refinement, and show that the
   refined model (a) reproduces every observed path and (b) grew a
   second quasi-router inside AS 1, exactly as §4.4 narrates.

   Run with: dune exec examples/quickstart.exe *)

open Bgp

let path = Aspath.of_list

let op = { Rib.op_ip = Asn.router_ip 1 0; op_as = 1 }

let p1 = Asn.origin_prefix 3

let p2 = Asn.origin_prefix 4

let observed =
  [
    { Rib.op; prefix = p1; path = path [ 1; 2; 3 ] };
    { Rib.op; prefix = p2; path = path [ 1; 4 ] };
    { Rib.op; prefix = p2; path = path [ 1; 5; 4 ] };
  ]

(* The AS-level topology of Figure 5: AS 1 connects to 2, 4 and 5;
   AS 3 to 2 and 4; AS 5 to 4. *)
let graph =
  Topology.Asgraph.of_edges [ (1, 2); (1, 4); (1, 5); (2, 3); (3, 4); (4, 5) ]

let show_selected model prefix =
  let st = Asmodel.Qrmodel.simulate model prefix in
  List.iter
    (fun asn ->
      let paths =
        Simulator.Engine.selected_paths model.Asmodel.Qrmodel.net st asn
      in
      Format.printf "  AS%d selects: %s@." asn
        (if paths = [] then "(no route)"
         else
           String.concat ", "
             (List.map
                (fun p -> Format.asprintf "%a" Aspath.pp (Aspath.of_array p))
                paths)))
    (Topology.Asgraph.nodes graph)

let () =
  let data = Rib.of_entries observed in
  Format.printf "Observed at AS 1:@.";
  List.iter
    (fun (e : Rib.entry) ->
      Format.printf "  %a via %a@." Prefix.pp e.prefix Aspath.pp e.path)
    (Rib.entries data);

  let model = Asmodel.Qrmodel.initial graph in
  Format.printf "@.Initial model (one quasi-router per AS):@.";
  show_selected model p2;

  let result = Refine.Refiner.refine model ~training:data in
  Format.printf "@.Refinement: %d iterations, converged: %b (%d/%d paths)@."
    result.Refine.Refiner.iterations result.Refine.Refiner.converged
    result.Refine.Refiner.matched result.Refine.Refiner.total;

  Format.printf "@.Refined model, prefix %a:@." Prefix.pp p2;
  show_selected model p2;
  Format.printf "@.Refined model, prefix %a:@." Prefix.pp p1;
  show_selected model p1;

  Format.printf "@.Quasi-routers per AS after refinement:@.";
  List.iter
    (fun asn ->
      Format.printf "  AS%d: %d@." asn (Asmodel.Qrmodel.quasi_router_count model asn))
    (Topology.Asgraph.nodes graph);

  (* The point of the exercise: AS 1 now propagates both observed routes
     towards p2. *)
  let st = Asmodel.Qrmodel.simulate model p2 in
  let selected =
    Simulator.Engine.selected_paths model.Asmodel.Qrmodel.net st 1
  in
  assert (List.mem [| 1; 4 |] selected);
  assert (List.mem [| 1; 5; 4 |] selected);
  Format.printf "@.AS 1 reproduces both observed routes for p2 — done.@."
