(* Predicting unobserved routes (paper §4.2, §5).

   Walks the paper's main experiment: split observation points into a
   training and a validation half, refine the model on the training
   half only, and grade how well it predicts the AS-paths seen by the
   held-out observation points — exact RIB-Out matches, matches down to
   the final tie-break, and the RIB-In upper bound.  Also contrasts the
   refined model with the single-router shortest-path baseline on the
   same validation data.

   Run with: dune exec examples/prediction.exe *)

let () =
  let conf = { (Netgen.Conf.scaled 0.3) with Netgen.Conf.seed = 31 } in
  Format.printf "Generating world and observing dumps...@.";
  let world = Netgen.Groundtruth.build conf in
  let data = Netgen.Groundtruth.observe world in
  let std = Format.std_formatter in

  let exp = Core.run_experiment ~seed:3 data in
  Evaluation.Report.section std "SPLIT" "by observation point (paper 4.2)";
  Format.printf "%a@." Evaluation.Split.pp exp.Core.splits;

  Evaluation.Report.section std "TRAIN" "refinement on the training half";
  let r = exp.Core.refinement in
  List.iter
    (fun (h : Refine.Refiner.iter_stat) ->
      Format.printf
        "  iteration %2d: %6d/%d matched  (+%d filters, +%d med, +%d \
         quasi-routers, %d filter deletions)@."
        h.iteration h.matched h.total h.filters_added h.med_rules_added
        h.duplications h.filter_deletions)
    r.Refine.Refiner.history;
  Format.printf "  -> converged: %b@." r.Refine.Refiner.converged;

  Evaluation.Report.section std "PREDICT" "held-out observation points";
  Format.printf "%a@." Evaluation.Predict.pp exp.Core.prediction;
  Format.printf
    "@.(the paper reports >80%% of test cases matching down to the final@.\
     BGP tie-break on 1,300 vantage points; accuracy grows with vantage@.\
     points — try --scale or more observation ASes)@.";

  (* Contrast: how would the naive single-router model have done on the
     same validation paths? *)
  Evaluation.Report.section std "CONTRAST" "single-router shortest-path model";
  let baseline =
    Asmodel.Baseline.shortest_path exp.Core.prepared.Core.graph
  in
  let breakdown =
    Evaluation.Agreement.simulate_and_grade baseline
      exp.Core.splits.Evaluation.Split.validation
  in
  Format.printf "%a@." Evaluation.Agreement.pp breakdown;
  Format.printf
    "@.exact agreement: baseline %.1f%% vs refined model %.1f%%@."
    (100.0 *. Evaluation.Agreement.agree_fraction breakdown)
    (100.0 *. Evaluation.Predict.exact_fraction exp.Core.prediction)
