examples/route_diversity.ml: Array Bgp Core Evaluation Format List Netgen Printf Sys Topology
