examples/quickstart.mli:
