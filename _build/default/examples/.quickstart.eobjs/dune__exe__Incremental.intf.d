examples/incremental.mli:
