examples/prediction.ml: Asmodel Core Evaluation Format List Netgen Refine
