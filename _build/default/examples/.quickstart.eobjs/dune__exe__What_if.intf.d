examples/what_if.mli:
