examples/what_if.ml: Asmodel Core Format List Netgen Refine Topology
