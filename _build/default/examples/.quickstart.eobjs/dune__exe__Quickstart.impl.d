examples/quickstart.ml: Asmodel Asn Aspath Bgp Format List Prefix Refine Rib Simulator String Topology
