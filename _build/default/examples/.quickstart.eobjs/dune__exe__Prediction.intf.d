examples/prediction.mli:
