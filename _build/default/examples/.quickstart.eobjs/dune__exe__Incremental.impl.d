examples/incremental.ml: Asmodel Bgp Core Filename Format Fun Hashtbl List Netgen Option Prefix Refine Rib Sys
