(* asmodel — command-line front end for the AS-routing-model pipeline.

   Subcommands mirror the methodology stages: generate a synthetic
   world's dumps, inspect a data set, run the single-router baselines,
   build (refine) a model, evaluate predictions, and run link-removal
   what-if studies. *)

open Cmdliner
open Bgp

let progress label =
  let last = ref (-1) in
  fun d t ->
    let pct = if t = 0 then 100 else 100 * d / t in
    if pct / 10 <> !last / 10 then begin
      last := pct;
      Printf.eprintf "\r%s: %d%% (%d/%d)%!" label pct d t;
      if d = t then prerr_newline ()
    end

let load_dataset path =
  (* Text (`bgpdump -m`) and binary (RFC 6396) dumps are both accepted;
     the flavour is auto-detected. *)
  let raw = In_channel.with_open_bin path In_channel.input_all in
  let records =
    if Mrt_binary.looks_binary raw then begin
      let records, diags = Mrt_binary.read_bytes raw in
      List.iter (fun d -> Printf.eprintf "%s: %s\n" path d) diags;
      records
    end
    else
      let records, errors = Mrt.parse_lines (String.split_on_char '\n' raw) in
      List.iter
        (fun (line, msg) -> Printf.eprintf "%s:%d: %s\n" path line msg)
        errors;
      records
  in
  let data, stats = Rib.of_records records in
  Printf.eprintf
    "loaded %s: %d records, %d kept (%d loops, %d empty, %d duplicates dropped)\n%!"
    path stats.Rib.raw (Rib.size data) stats.Rib.dropped_loops
    stats.Rib.dropped_empty stats.Rib.deduplicated;
  data

let std = Format.std_formatter

(* Simulation worker count, shared by every subcommand that simulates.
   Precedence: --jobs flag > RD_JOBS env > Domain.recommended_domain_count.
   An explicit flag deserves a hard failure: reject 0 and negatives here
   instead of letting Pool.set_default_jobs clamp them silently. *)
let positive_int_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Ok n
    | Some _ | None ->
        Error (`Msg (Printf.sprintf "expected a positive integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let jobs_arg =
  Arg.(
    value
    & opt (some positive_int_conv) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for per-prefix simulation (default: $(b,RD_JOBS) \
           or the machine's recommended domain count).  Results are \
           identical for every value.")

let apply_jobs = function
  | Some j -> Simulator.Pool.set_default_jobs j
  | None -> ()

(* Deterministic fault injection (testing the pipeline's resilience).
   Precedence: --faults flag > RD_FAULTS env. *)
let faults_conv =
  let parse s =
    match Simulator.Faultinject.parse s with
    | Ok t -> Ok t
    | Error msg -> Error (`Msg msg)
  in
  let print ppf = function
    | None -> Format.pp_print_string ppf "off"
    | Some t -> Simulator.Faultinject.pp ppf t
  in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(
    value
    & opt (some faults_conv) None
    & info [ "faults" ] ~docv:"RATE:SEED[:full]"
        ~doc:
          "Inject deterministic faults into the simulation pipeline \
           (default: $(b,RD_FAULTS)).  $(b,RATE:SEED) throws transient, \
           retried task failures; $(b,RATE:SEED:full) adds permanent \
           failures and shrunk engine budgets; $(b,off) disables.")

let apply_faults = function
  | Some t -> Simulator.Faultinject.set t
  | None -> ()

(* Warm-start re-simulation in the refinement loop.
   Precedence: --warm flag > RD_WARM env > on. *)
let warm_conv =
  let parse s =
    match Simulator.Warm.parse s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  let print ppf m = Format.pp_print_string ppf (Simulator.Warm.mode_to_string m) in
  Arg.conv (parse, print)

let warm_arg =
  Arg.(
    value
    & opt (some warm_conv) None
    & info [ "warm" ] ~docv:"off|on|verify"
        ~doc:
          "Warm-start re-simulation in the refinement loop (default: \
           $(b,RD_WARM) or $(b,on)).  $(b,on) resumes each changed prefix \
           from its previous converged state; $(b,verify) runs cold and \
           warm side by side and reports any divergence; $(b,off) always \
           simulates from scratch.")

let apply_warm = function
  | Some m -> Simulator.Warm.set m
  | None -> ()

(* Span tracing and metrics (the observability layer).
   Precedence: --trace flag > RD_TRACE env > off. *)
let trace_conv =
  let parse s =
    match Obs.Trace.parse s with Ok m -> Ok m | Error msg -> Error (`Msg msg)
  in
  let print ppf m = Format.pp_print_string ppf (Obs.Trace.mode_to_string m) in
  Arg.conv (parse, print)

let trace_arg =
  Arg.(
    value
    & opt (some trace_conv) None
    & info [ "trace" ] ~docv:"off|summary|FILE.json"
        ~doc:
          "Record spans of the simulation pipeline (default: $(b,RD_TRACE) \
           or $(b,off)).  $(b,summary) prints a per-span aggregate table \
           after the run; a file path writes Chrome trace-event JSON \
           loadable in a trace viewer.")

let apply_trace = function
  | Some m -> Simulator.Runtime.set_trace m
  | None -> ()

(* Mutation-discipline checking. Precedence: --check flag > RD_CHECK env. *)
let check_conv =
  let parse s =
    match Simulator.Runtime.Check_mode.parse s with
    | Ok m -> Ok m
    | Error msg -> Error (`Msg msg)
  in
  let print ppf m =
    Format.pp_print_string ppf (Simulator.Runtime.Check_mode.to_string m)
  in
  Arg.conv (parse, print)

let check_arg =
  Arg.(
    value
    & opt (some check_conv) None
    & info [ "check" ] ~docv:"off|on|race"
        ~doc:
          "Audit mutation discipline during the run (default: \
           $(b,RD_CHECK) or $(b,off)); $(b,race) additionally runs the \
           happens-before race detector.  Findings are reported, not \
           raised; $(b,--strict) escalates them to exit 4.")

let apply_check = function
  | Some m -> Analysis.Ownership.set m
  | None -> ()

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict" ]
        ~doc:
          "Treat every recorded finding as fatal: lint warnings, and any \
           RD_CHECK violation or race recorded during the run, exit 4.")

(* Recorded checker findings (mutation-discipline violations, races)
   are normally advisory; with [--strict] a clean run that recorded any
   escalates to the lint exit code. *)
let checker_exit ~strict code =
  let v = Analysis.Ownership.violation_count () in
  let r = Analysis.Race.race_count () in
  if v + r > 0 then begin
    List.iter
      (fun x -> Format.eprintf "%a@." Analysis.Ownership.pp_violation x)
      (Analysis.Ownership.violations ());
    List.iter
      (fun x -> Format.eprintf "%a@." Analysis.Race.pp_race x)
      (Analysis.Race.races ());
    Printf.eprintf
      "RD_CHECK recorded %d mutation-discipline violation(s) and %d race(s)\n%!"
      v r;
    if strict && code = 0 then 4 else code
  end
  else code

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print a snapshot of every runtime metric after the run.")

(* Resolve the env knobs before flag overrides, so RD_TRACE takes
   effect even on runs that never touch the pool. *)
let init_runtime () = ignore (Simulator.Runtime.current ())

(* End-of-run observability output: the metrics snapshot (with
   [--metrics], or whenever spans are being summarised) and the trace
   summary table / trace-file write. *)
let finish_obs ?(metrics = false) () =
  if metrics || Simulator.Runtime.trace () = Obs.Trace.Summary then begin
    Evaluation.Report.section std "OBS" "metrics snapshot";
    Format.printf "%a@." Obs.Metrics.pp_snapshot (Obs.Metrics.snapshot ())
  end;
  Obs.Trace.flush std

(* generate *)

(* An unknown family or malformed parameter must fail the parse (exit
   1), never fall back to the default family silently. *)
let family_conv =
  let parse s =
    match Netgen.Family.of_string s with
    | Ok f -> Ok f
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, Netgen.Family.pp)

let family_arg =
  Arg.(
    value
    & opt family_conv Netgen.Family.Paper
    & info [ "family" ] ~docv:"FAMILY[:K=V,..]"
        ~doc:
          (Printf.sprintf
             "Generator family for the AS-level structure (default: \
              $(b,paper)); the size flags stay family-agnostic.  Parameter \
              syntax — %s.  Example: $(b,--family waxman:alpha=0.4,beta=0.2)."
             (Netgen.Family.syntax_help ())))

let generate seed family scale ases binary out jobs faults trace =
  init_runtime ();
  apply_jobs jobs;
  apply_faults faults;
  apply_trace trace;
  let conf =
    match ases with
    | Some n -> { (Netgen.Conf.sized n) with Netgen.Conf.seed; family }
    | None -> { (Netgen.Conf.scaled scale) with Netgen.Conf.seed; family }
  in
  Printf.eprintf "generating world: %s\n%!"
    (Format.asprintf "%a" Netgen.Conf.pp conf);
  let world = Netgen.Groundtruth.build conf in
  Format.eprintf "%a@." Netgen.Groundtruth.pp_summary world;
  let data =
    Netgen.Groundtruth.observe ~on_prefix:(progress "observing") world
  in
  if binary then Mrt_binary.write_file out (Rib.to_records data)
  else Rib.save out data;
  Printf.printf "wrote %d RIB entries from %d observation points to %s (%s)\n"
    (Rib.size data)
    (List.length (Rib.observation_points data))
    out
    (if binary then "binary MRT" else "text");
  finish_obs ();
  0

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Generator seed.")

(* World-size arguments get the --jobs treatment: an explicitly
   nonsensical value (zero, negative, NaN, sub-minimum AS count) fails
   hard at parse time instead of producing a silently clamped or
   unbuildable world. *)
let positive_float_conv =
  let parse s =
    match float_of_string_opt (String.trim s) with
    | Some f when f > 0.0 && Float.is_finite f -> Ok f
    | Some _ | None ->
        Error
          (`Msg (Printf.sprintf "expected a positive finite number, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_float)

let ases_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 50 -> Ok n
    | Some _ | None ->
        Error
          (`Msg (Printf.sprintf "expected an AS count of at least 50, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let scale_arg =
  Arg.(
    value & opt positive_float_conv 1.0
    & info [ "scale" ] ~docv:"F" ~doc:"Scale factor on the AS counts.")

let ases_arg =
  Arg.(
    value
    & opt (some ases_conv) None
    & info [ "ases" ] ~docv:"N"
        ~doc:
          "Generate a paper-shaped world with $(docv) ASes in total \
           (overrides $(b,--scale)).  Unlike $(b,--scale), the generator \
           knobs are retuned so 5000+-AS worlds build with bounded \
           memory.")

let out_arg =
  Arg.(
    value
    & opt string "dumps.mrt"
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output dump file.")

let binary_arg =
  Arg.(
    value & flag
    & info [ "binary" ] ~doc:"Write binary MRT (RFC 6396) instead of text.")

let generate_cmd =
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate a synthetic world and write its observed table dumps.")
    Term.(
      const generate $ seed_arg $ family_arg $ scale_arg $ ases_arg
      $ binary_arg $ out_arg $ jobs_arg $ faults_arg $ trace_arg)

(* topo-compare *)

(* A world operand is either an existing dump file (its AS graph is
   extracted from the observed paths) or a family spec (a synthetic
   world is generated with the shared size/seed flags). *)
let world_conv =
  let parse s =
    if Sys.file_exists s then Ok (`File s)
    else
      match Netgen.Family.of_string s with
      | Ok f -> Ok (`Family f)
      | Error msg ->
          Error
            (`Msg
               (Printf.sprintf "%S is neither an existing dump file nor a \
                                family spec (%s)"
                  s msg))
  in
  let print ppf = function
    | `File s -> Format.pp_print_string ppf s
    | `Family f -> Netgen.Family.pp ppf f
  in
  Arg.conv (parse, print)

let min_score_conv =
  let parse s =
    match float_of_string_opt (String.trim s) with
    | Some f when f >= 0.0 && f <= 1.0 -> Ok f
    | Some _ | None ->
        Error (`Msg (Printf.sprintf "expected a score in [0,1], got %S" s))
  in
  Arg.conv (parse, Format.pp_print_float)

let topo_compare world_a world_b seed scale ases min_score =
  init_runtime ();
  let label = function
    | `File path -> path
    | `Family f -> Netgen.Family.to_string f
  in
  let graph_of = function
    | `File path ->
        let data = load_dataset path in
        Topology.Extract.graph_of_paths (Rib.all_paths data)
    | `Family family ->
        let conf =
          match ases with
          | Some n -> { (Netgen.Conf.sized n) with Netgen.Conf.seed; family }
          | None -> { (Netgen.Conf.scaled scale) with Netgen.Conf.seed; family }
        in
        let topo = Netgen.generate family conf (Random.State.make [| seed |]) in
        Netgen.Gentopo.as_graph topo
  in
  let summary w =
    let s = Analysis.Topometrics.summarize (graph_of w) in
    Format.printf "%-10s %a@." (label w) Analysis.Topometrics.pp_summary s;
    s
  in
  let sa = summary world_a in
  let sb = summary world_b in
  let report = Analysis.Topometrics.compare sa sb in
  Format.printf "%a@." Analysis.Topometrics.pp_report report;
  if report.Analysis.Topometrics.score < min_score then begin
    Printf.eprintf "similarity %.3f below --min-score %.3f\n%!"
      report.Analysis.Topometrics.score min_score;
    4
  end
  else 0

let world_a_arg =
  Arg.(
    required
    & pos 0 (some world_conv) None
    & info [] ~docv:"WORLD_A"
        ~doc:"First world: a dump file or a family spec (see $(b,--family)).")

let world_b_arg =
  Arg.(
    required
    & pos 1 (some world_conv) None
    & info [] ~docv:"WORLD_B" ~doc:"Second world, same syntax.")

let min_score_arg =
  Arg.(
    value
    & opt min_score_conv 0.0
    & info [ "min-score" ] ~docv:"F"
        ~doc:
          "Fail (exit 4) when the overall similarity score falls below \
           $(docv), so CI can gate on topology fidelity.")

let topo_compare_cmd =
  Cmd.v
    (Cmd.info "topo-compare"
       ~doc:
         (Printf.sprintf
            "Run the topology-fidelity metric battery (degree CCDF, \
             power-law fit, assortativity, clustering, rich-club, coreness, \
             sampled betweenness, spectral distance) on two worlds and \
             report per-metric and overall similarity.  Worlds are dump \
             files or generated family specs; families — %s."
            (Netgen.Family.syntax_help ())))
    Term.(
      const topo_compare $ world_a_arg $ world_b_arg $ seed_arg $ scale_arg
      $ ases_arg $ min_score_arg)

(* stats *)

let in_arg =
  Arg.(
    non_empty
    & opt_all string []
    & info [ "i"; "in" ] ~docv:"FILE"
        ~doc:"Input table-dump file (repeatable: several collectors' dumps \
              are merged).")

let load_datasets inputs =
  match List.map load_dataset inputs with
  | [] -> Rib.of_entries []
  | first :: rest -> List.fold_left Rib.union first rest

let dot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dot" ] ~docv:"FILE" ~doc:"Also write a Graphviz rendering.")

let stats input dot_out =
  let data = load_datasets input in
  let prepared = Core.prepare data in
  Evaluation.Report.section std "DATASET" "inventory (paper 3.1)";
  Format.printf "%a@." Topology.Extract.pp_classification
    prepared.Core.classification;
  Format.printf "levels: %a@." Topology.Hierarchy.pp_levels prepared.Core.levels;
  Format.printf "core graph after stub removal: %a@." Topology.Asgraph.pp_stats
    prepared.Core.graph;
  Evaluation.Report.section std "F2" "distinct AS-paths per AS pair (paper Figure 2)";
  Evaluation.Report.int_series std ~x:"paths" ~y:"pairs"
    (Topology.Diversity.pair_path_histogram data);
  Format.printf "pairs with more than one path: %.1f%%@."
    (100.0 *. Topology.Diversity.fraction_pairs_with_diversity data);
  Evaluation.Report.section std "T1" "max received route diversity (paper Table 1)";
  Evaluation.Report.table std ~header:[ "percentile"; "max #unique AS-paths" ]
    (List.map
       (fun (p, v) -> [ Printf.sprintf "%.0f%%" p; string_of_int v ])
       (Topology.Diversity.table1_quantiles data));
  (match dot_out with
  | Some path ->
      let rels = Core.infer_relationships prepared in
      Topology.Dot.save ~levels:prepared.Core.levels ~relationships:rels path
        prepared.Core.full_graph;
      Printf.printf "graphviz rendering written to %s\n" path
  | None -> ());
  0

let stats_cmd =
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Data-set inventory and route-diversity statistics (paper 3).")
    Term.(const stats $ in_arg $ dot_arg)

(* baseline *)

let baseline input =
  let data = load_datasets input in
  let prepared = Core.prepare data in
  Evaluation.Report.section std "T2a" "single router per AS, shortest path";
  Format.printf "%a@." Evaluation.Agreement.pp
    (Core.baseline_shortest_path prepared);
  Evaluation.Report.section std "T2b" "single router per AS, inferred policies";
  let rels = Core.infer_relationships prepared in
  Format.printf "inferred relationships: %a@." Topology.Relationships.pp_counts
    (Topology.Relationships.counts rels);
  Format.printf "%a@." Evaluation.Agreement.pp (Core.baseline_policies prepared);
  0

let baseline_cmd =
  Cmd.v
    (Cmd.info "baseline"
       ~doc:"Evaluate the single-router-per-AS baselines (paper Table 2).")
    Term.(const baseline $ in_arg)

(* build *)

let split_seed_arg =
  Arg.(
    value & opt int 7
    & info [ "split-seed" ] ~docv:"N" ~doc:"Seed of the train/validate split.")

let train_fraction_arg =
  Arg.(
    value & opt float 0.5
    & info [ "train-fraction" ] ~docv:"F"
        ~doc:"Fraction of observation points used for training.")

let by_origin_arg =
  Arg.(
    value & flag
    & info [ "by-origin" ]
        ~doc:"Split by originating AS instead of by observation point.")

let model_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "model-out" ] ~docv:"FILE" ~doc:"Save the refined model here.")

let max_iter_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-iterations" ] ~docv:"N" ~doc:"Cap refinement iterations.")

let build input split_seed train_fraction by_origin model_out max_iter jobs
    faults warm check strict trace metrics =
  init_runtime ();
  apply_jobs jobs;
  apply_faults faults;
  apply_warm warm;
  apply_check check;
  apply_trace trace;
  let data = load_datasets input in
  let options =
    { Refine.Refiner.default_options with max_iterations = max_iter }
  in
  (* Core.run_experiment has no progress hook; inline its stages so the
     long refinement reports per-iteration progress on stderr. *)
  let exp =
    let prepared = Core.prepare data in
    let splits =
      Core.split ~by_origin ~train_fraction ~seed:split_seed prepared
    in
    let model = Asmodel.Qrmodel.initial prepared.Core.graph in
    let refinement =
      Refine.Refiner.refine ~options
        ~on_iteration:(fun (h : Refine.Refiner.iter_stat) ->
          Printf.eprintf "iteration %d: %d/%d matched (%d prefixes changed)\n%!"
            h.Refine.Refiner.iteration h.Refine.Refiner.matched
            h.Refine.Refiner.total h.Refine.Refiner.prefixes_changed)
        model ~training:splits.Evaluation.Split.training
    in
    let prediction =
      Core.evaluate refinement ~validation:splits.Evaluation.Split.validation
    in
    { Core.prepared; splits; refinement; prediction }
  in
  Evaluation.Report.section std "SPLIT" "training/validation";
  Format.printf "%a@." Evaluation.Split.pp exp.Core.splits;
  Evaluation.Report.section std "TRAIN" "iterative refinement (paper 4.6)";
  let r = exp.Core.refinement in
  Evaluation.Report.kv std
    [
      ("iterations", string_of_int r.Refine.Refiner.iterations);
      ("training converged", string_of_bool r.Refine.Refiner.converged);
      ( "training RIB-Out matches",
        Printf.sprintf "%d/%d" r.Refine.Refiner.matched r.Refine.Refiner.total
      );
      ( "model",
        Format.asprintf "%a" Asmodel.Qrmodel.pp_summary r.Refine.Refiner.model
      );
      ( "simulation pool",
        Format.asprintf "%a" Simulator.Pool.pp_stats r.Refine.Refiner.pool );
      ( "warm starts",
        Format.asprintf "%a" Simulator.Warm.pp_stats (Simulator.Warm.stats ())
      );
    ];
  (let ws = Simulator.Warm.stats () in
   if ws.Simulator.Warm.divergences > 0 then
     Printf.eprintf
       "warning: %d warm-start divergences detected (cold results were used)\n%!"
       ws.Simulator.Warm.divergences);
  if r.Refine.Refiner.pool.Simulator.Pool.non_converged > 0 then
    Printf.eprintf
      "warning: %d simulations hit their event budget (partial states)\n%!"
      r.Refine.Refiner.pool.Simulator.Pool.non_converged;
  if r.Refine.Refiner.quarantined_prefixes > 0 then
    Evaluation.Report.kv std
      [
        ( "quarantined prefixes",
          string_of_int r.Refine.Refiner.quarantined_prefixes );
        ( "unstable prefixes",
          string_of_int r.Refine.Refiner.unstable_prefixes );
      ];
  Evaluation.Report.section std "PREDICT" "validation predictions (paper 5)";
  Format.printf "%a@." Evaluation.Predict.pp exp.Core.prediction;
  (match model_out with
  | Some path ->
      Asmodel.Serialize.save path r.Refine.Refiner.model;
      Printf.printf "model saved to %s\n" path
  | None -> ());
  finish_obs ~metrics ();
  checker_exit ~strict 0

let build_cmd =
  Cmd.v
    (Cmd.info "build"
       ~doc:
         "Refine an AS-routing model from a training split and evaluate its \
          predictions.")
    Term.(
      const build $ in_arg $ split_seed_arg $ train_fraction_arg $ by_origin_arg
      $ model_out_arg $ max_iter_arg $ jobs_arg $ faults_arg $ warm_arg
      $ check_arg $ strict_arg $ trace_arg $ metrics_arg)

(* eval *)

let model_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "model" ] ~docv:"FILE" ~doc:"A model saved by 'build'.")

let eval_run model_path input jobs faults trace metrics =
  init_runtime ();
  apply_jobs jobs;
  apply_faults faults;
  apply_trace trace;
  match Asmodel.Serialize.load model_path with
  | Error msg ->
      Printf.eprintf "cannot load model: %s\n" msg;
      2
  | Ok model ->
      let data = load_datasets input in
      let data = Rib.collapse_to_origin data in
      let states = Hashtbl.create 256 in
      let report = Evaluation.Predict.evaluate model ~states data in
      Format.printf "%a@." Evaluation.Predict.pp report;
      let verification = Refine.Verify.verify model ~states data in
      Format.printf "%a@." Refine.Verify.pp verification;
      finish_obs ~metrics ();
      0

let eval_cmd =
  Cmd.v
    (Cmd.info "eval" ~doc:"Evaluate a saved model against a dump file.")
    Term.(
      const eval_run $ model_arg $ in_arg $ jobs_arg $ faults_arg $ trace_arg
      $ metrics_arg)

(* inspect *)

let prefix_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "prefix" ] ~docv:"PREFIX" ~doc:"Prefix to study (a.b.c.d/len).")

let inspect model_path prefix_str =
  match Asmodel.Serialize.load model_path with
  | Error msg ->
      Printf.eprintf "cannot load model: %s\n" msg;
      2
  | Ok model -> (
      match Prefix.of_string prefix_str with
      | None ->
          Printf.eprintf "bad prefix %S\n" prefix_str;
          2
      | Some prefix ->
          let study = Evaluation.Casestudy.study model prefix in
          Evaluation.Casestudy.pp std study;
          0)

let inspect_cmd =
  Cmd.v
    (Cmd.info "inspect"
       ~doc:
         "Per-prefix case study: which routes each AS receives and selects \
          (paper Figure 3).")
    Term.(const inspect $ model_arg $ prefix_arg)

(* trace *)

let trace_as_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "as" ] ~docv:"ASN" ~doc:"Show this AS's routes in detail.")

let trace model_path prefix_str asn_opt =
  match Asmodel.Serialize.load model_path with
  | Error msg ->
      Printf.eprintf "cannot load model: %s\n" msg;
      2
  | Ok model -> (
      match Prefix.of_string prefix_str with
      | None ->
          Printf.eprintf "bad prefix %S\n" prefix_str;
          2
      | Some prefix ->
          let st = Asmodel.Qrmodel.simulate model prefix in
          let net = model.Asmodel.Qrmodel.net in
          let tree = Simulator.Trace.tree net st in
          Printf.printf "propagation forest for %s: %d roots, %d unrouted\n"
            (Prefix.to_string prefix)
            (List.length tree.Simulator.Trace.roots)
            (List.length tree.Simulator.Trace.unrouted);
          Printf.printf "depth profile:\n";
          List.iter
            (fun (d, n) -> Printf.printf "  depth %d: %d quasi-routers\n" d n)
            (Simulator.Trace.depth_histogram tree);
          (match asn_opt with
          | None -> ()
          | Some asn ->
              List.iter
                (fun node ->
                  Format.printf "  %a@." (Simulator.Trace.pp_route net st) node)
                (Simulator.Net.nodes_of_as net asn));
          0)

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Show the propagation forest of a prefix through a saved model.")
    Term.(const trace $ model_arg $ prefix_arg $ trace_as_arg)

(* compact *)

let compact model_path input out =
  match Asmodel.Serialize.load model_path with
  | Error msg ->
      Printf.eprintf "cannot load model: %s\n" msg;
      2
  | Ok model -> (
      let data = Rib.collapse_to_origin (load_datasets input) in
      match Refine.Compress.compact_verified model ~against:data with
      | None ->
          Printf.printf "compaction would lose matches; model kept as is\n";
          1
      | Some (compacted, stats) ->
          Printf.printf "quasi-routers %d -> %d, sessions %d -> %d\n"
            stats.Refine.Compress.nodes_before stats.Refine.Compress.nodes_after
            stats.Refine.Compress.sessions_before
            stats.Refine.Compress.sessions_after;
          Asmodel.Serialize.save out compacted;
          Printf.printf "compacted model saved to %s\n" out;
          0)

let compact_out_arg =
  Arg.(
    value
    & opt string "compacted.model"
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output model file.")

let compact_cmd =
  Cmd.v
    (Cmd.info "compact"
       ~doc:
         "Merge behaviourally-identical quasi-routers, verifying against a \
          dump file.")
    Term.(const compact $ model_arg $ in_arg $ compact_out_arg)

(* export-cbgp *)

let cbgp_out_arg =
  Arg.(
    value
    & opt string "model.cli"
    & info [ "o"; "out" ] ~docv:"FILE" ~doc:"Output C-BGP script.")

let export_cbgp model_path out =
  match Asmodel.Serialize.load model_path with
  | Error msg ->
      Printf.eprintf "cannot load model: %s\n" msg;
      2
  | Ok model ->
      Asmodel.Cbgp_export.save out model;
      Printf.printf "wrote C-BGP script to %s (%d lines)\n" out
        (List.length (Asmodel.Cbgp_export.to_lines model));
      0

let export_cbgp_cmd =
  Cmd.v
    (Cmd.info "export-cbgp"
       ~doc:"Render a saved model as a C-BGP script (the paper's simulator).")
    Term.(const export_cbgp $ model_arg $ cbgp_out_arg)

(* lint *)

let lint model_path strict =
  match Asmodel.Serialize.load model_path with
  | Error msg ->
      Printf.eprintf "cannot load model: %s\n" msg;
      2
  | Ok model ->
      let report = Analysis.Lint.check model in
      Format.printf "%a@." Analysis.Report.pp report;
      let errors = Analysis.Report.error_count report in
      let warns = Analysis.Report.warn_count report in
      if errors > 0 || (strict && warns > 0) then 4 else 0

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically validate a saved model: session symmetry, AS \
          membership, reachability, shadowed/orphan/conflicting policy \
          rules, dispute-wheel risk.  Exits 4 when any Error is found.")
    Term.(const lint $ model_arg $ strict_arg)

(* check *)

let checker_findings () =
  List.map
    (fun v ->
      {
        Analysis.Report.severity = Analysis.Report.Error;
        rule = "rd-check-" ^ v.Analysis.Ownership.rule;
        location = Analysis.Report.Network;
        message = Format.asprintf "%a" Analysis.Ownership.pp_violation v;
        hint =
          "mutate nets from their owning domain, outside Pool batches, \
           through the safe API";
      })
    (Analysis.Ownership.violations ())
  @ Analysis.Race.findings ()

let check_run model_path check jobs strict =
  init_runtime ();
  apply_jobs jobs;
  apply_check check;
  match Asmodel.Serialize.load model_path with
  | Error msg ->
      Printf.eprintf "cannot load model: %s\n" msg;
      2
  | Ok model ->
      let net = model.Asmodel.Qrmodel.net in
      let prefixes = List.map fst model.Asmodel.Qrmodel.prefixes in
      (* Simulate every model prefix through the regular pool (so a
         --check race run exercises the instrumented parallel path),
         then audit each frozen state against the live net. *)
      let states, stats =
        Simulator.Pool.simulate
          ~sim:(fun p ->
            Simulator.Engine.simulate net ~prefix:p
              ~originators:(Asmodel.Qrmodel.originators model p))
          prefixes
      in
      (* Loading a model replays its policies into a fresh net, which
         fills the touched sets; the states just simulated reflect all
         of them, so drain the sets or every audit reads as stale. *)
      List.iter (fun p -> Simulator.Net.clear_touched net p) prefixes;
      Printf.eprintf "simulated %a\n%!"
        (fun oc s -> Printf.fprintf oc "%d prefixes on %d jobs" s.Simulator.Pool.prefixes s.Simulator.Pool.jobs)
        stats;
      let findings =
        Analysis.Report.findings (Analysis.Lint.check model)
        @ List.concat_map
            (fun (_, st) -> Analysis.Audit.state net st)
            states
        @ Analysis.Audit.sentinel_lint ()
        @ checker_findings ()
      in
      let report = Analysis.Report.of_findings findings in
      Format.printf "%a@." Analysis.Report.pp report;
      let errors = Analysis.Report.error_count report in
      let warns = Analysis.Report.warn_count report in
      if errors > 0 || (strict && warns > 0) then 4 else 0

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Deep-check a saved model: every lint rule, plus the structural \
          audit of the frozen fast-path structures (CSR session index, \
          route slabs, intern tables) against a fresh simulation of every \
          model prefix, the no_route sentinel source lint, and any \
          RD_CHECK violation or data race recorded during the run \
          (enable the detector with --check race).  Exits 4 when \
          anything is found.")
    Term.(const check_run $ model_arg $ check_arg $ jobs_arg $ strict_arg)

(* whatif *)

let as_a_arg =
  Arg.(required & pos 0 (some int) None & info [] ~docv:"AS1" ~doc:"First AS.")

let as_b_arg =
  Arg.(required & pos 1 (some int) None & info [] ~docv:"AS2" ~doc:"Second AS.")

let whatif model_path a b =
  match Asmodel.Serialize.load model_path with
  | Error msg ->
      Printf.eprintf "cannot load model: %s\n" msg;
      2
  | Ok model ->
      let before =
        Asmodel.Whatif.snapshot ~on_prefix:(progress "baseline") model
      in
      let touched = Asmodel.Whatif.disable_as_link model a b in
      if touched = 0 then begin
        Printf.printf "AS%d and AS%d share no session in this model\n" a b;
        1
      end
      else begin
        Printf.printf "disabled %d half-sessions between AS%d and AS%d\n"
          touched a b;
        let after =
          Asmodel.Whatif.snapshot ~on_prefix:(progress "what-if") model
        in
        Asmodel.Whatif.pp_diff std (Asmodel.Whatif.diff before after);
        0
      end

let whatif_cmd =
  Cmd.v
    (Cmd.info "whatif"
       ~doc:"Remove the link between two ASes and report route changes.")
    Term.(const whatif $ model_arg $ as_a_arg $ as_b_arg)

(* replay *)

let scenario_arg =
  Arg.(
    value & opt string "mixed"
    & info [ "scenario" ] ~docv:"NAME"
        ~doc:
          (Printf.sprintf "Churn scenario to generate: one of %s."
             (String.concat ", "
                (List.map (Printf.sprintf "$(b,%s)")
                   Stream.Streamgen.scenario_names))))

let events_arg =
  Arg.(
    value & opt int 32
    & info [ "events" ] ~docv:"N"
        ~doc:"Approximate stream length, where the scenario scales.")

let stream_seed_arg =
  Arg.(
    value & opt int 42
    & info [ "stream-seed" ] ~docv:"N"
        ~doc:
          "Seed of the churn-stream generator (the same model, scenario \
           and seed replay identically).")

let replay_run model_path scenario events stream_seed jobs faults warm check
    strict trace metrics =
  init_runtime ();
  apply_jobs jobs;
  apply_faults faults;
  apply_warm warm;
  apply_check check;
  apply_trace trace;
  match Stream.Streamgen.of_name scenario with
  | None ->
      Printf.eprintf "unknown scenario %S (one of: %s)\n" scenario
        (String.concat ", " Stream.Streamgen.scenario_names);
      1
  | Some gen -> (
      match Asmodel.Serialize.load model_path with
      | Error msg ->
          Printf.eprintf "cannot load model: %s\n" msg;
          2
      | Ok model ->
          let rng = Random.State.make [| stream_seed |] in
          let stream = gen ~events model rng in
          Printf.eprintf "replaying %d %s events over %d model prefixes\n%!"
            (List.length stream) scenario
            (List.length model.Asmodel.Qrmodel.prefixes);
          let _driver, report = Stream.Replay.run model stream in
          Evaluation.Report.section std "CHURN" "event-stream replay";
          Format.printf "%a@." Stream.Replay.pp_report report;
          Printf.printf "unrecovered failures: %d\n"
            report.Stream.Replay.failed;
          finish_obs ~metrics ();
          checker_exit ~strict
            (if report.Stream.Replay.failed > 0 then 3 else 0))

let replay_cmd =
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Generate a deterministic churn stream (flaps, de-peerings, \
          hijacks) and replay it against a saved model, reconverging \
          only touched prefixes warm.  Exits 3 when any reconvergence \
          failure survives the retries.")
    Term.(
      const replay_run $ model_arg $ scenario_arg $ events_arg
      $ stream_seed_arg $ jobs_arg $ faults_arg $ warm_arg $ check_arg
      $ strict_arg $ trace_arg $ metrics_arg)

(* serve / query *)

let socket_arg =
  Arg.(
    value
    & opt string "asmodel.sock"
    & info [ "socket" ] ~docv:"PATH"
        ~doc:
          "Unix-domain socket path of the query service (ignored when a TCP \
           port is configured).")

let port_arg =
  Arg.(
    value
    & opt (some positive_int_conv) None
    & info [ "port" ] ~docv:"N"
        ~doc:
          "Serve on loopback TCP port $(docv) instead of the Unix socket \
           (default: $(b,RD_PORT) or the Unix socket).")

let nonneg_int_conv =
  let parse s =
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> Ok n
    | Some _ | None ->
        Error (`Msg (Printf.sprintf "expected a non-negative integer, got %S" s))
  in
  Arg.conv (parse, Format.pp_print_int)

let deadline_arg =
  Arg.(
    value
    & opt (some nonneg_int_conv) None
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Per-query deadline in milliseconds; overruns are answered anyway \
           but flagged and counted (default: $(b,RD_DEADLINE_MS) or 1000; \
           $(b,0) disables).")

let resolve_listen socket =
  match Simulator.Runtime.port () with
  | Some p -> Serve.Server.Tcp p
  | None -> Serve.Server.Unix_path socket

let serve_run model_path socket port deadline jobs faults trace metrics =
  init_runtime ();
  apply_jobs jobs;
  apply_faults faults;
  apply_trace trace;
  (match port with Some _ -> Simulator.Runtime.set_port port | None -> ());
  (match deadline with
  | Some d -> Simulator.Runtime.set_deadline_ms d
  | None -> ());
  match Asmodel.Serialize.load model_path with
  | Error msg ->
      Printf.eprintf "cannot load model: %s\n" msg;
      2
  | Ok model ->
      let snap = Serve.Snapshot.build model in
      if not (Serve.Snapshot.converged snap) then
        Printf.eprintf
          "warning: some cached states did not converge; answers for those \
           prefixes reflect partial states\n%!";
      let store = Serve.Snapshot.store () in
      Serve.Snapshot.publish store snap;
      let listen = resolve_listen socket in
      let srv = Serve.Server.start ~store listen in
      Printf.eprintf "serving %d prefixes (%d quasi-routers) on %s%s\n%!"
        (List.length model.Asmodel.Qrmodel.prefixes)
        (Simulator.Net.node_count model.Asmodel.Qrmodel.net)
        (match listen with
        | Serve.Server.Unix_path p -> p
        | Serve.Server.Tcp p -> Printf.sprintf "127.0.0.1:%d" p)
        (let d = Simulator.Runtime.deadline_ms () in
         if d = 0 then ", no deadline"
         else Printf.sprintf ", deadline %dms" d);
      Serve.Server.wait srv;
      finish_obs ~metrics ();
      0

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Answer path, catchment and what-if queries against a frozen \
          snapshot of a saved model (length-prefixed JSON; see 'asmodel \
          query').")
    Term.(
      const serve_run $ model_arg $ socket_arg $ port_arg $ deadline_arg
      $ jobs_arg $ faults_arg $ trace_arg $ metrics_arg)

let query_words_arg =
  Arg.(
    non_empty
    & pos_all string []
    & info [] ~docv:"QUERY"
        ~doc:
          "One of: $(b,path PREFIX AS); $(b,catchment EGRESS [PREFIX]); \
           $(b,whatif A B) (alias $(b,deny-link)); $(b,ping); \
           $(b,reload); $(b,shutdown).")

let parse_query_words words =
  let int_of name s =
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "bad %s %S" name s)
  in
  let prefix_of s =
    match Prefix.of_string s with
    | Some p -> Ok p
    | None -> Error (Printf.sprintf "bad prefix %S" s)
  in
  let ( let* ) = Result.bind in
  match words with
  | [ "path"; p; a ] ->
      let* prefix = prefix_of p in
      let* asn = int_of "AS" a in
      Ok (Serve.Protocol.Path { prefix; asn })
  | [ "catchment"; e ] ->
      let* egress = int_of "egress AS" e in
      Ok (Serve.Protocol.Catchment { egress; prefix = None })
  | [ "catchment"; e; p ] ->
      let* egress = int_of "egress AS" e in
      let* prefix = prefix_of p in
      Ok (Serve.Protocol.Catchment { egress; prefix = Some prefix })
  | [ ("whatif" | "deny-link"); a; b ] ->
      let* a = int_of "AS" a in
      let* b = int_of "AS" b in
      Ok (Serve.Protocol.Whatif { a; b })
  | [ "ping" ] -> Ok Serve.Protocol.Ping
  | [ "reload" ] -> Ok Serve.Protocol.Reload
  | [ "shutdown" ] -> Ok Serve.Protocol.Shutdown
  | _ ->
      Error
        (Printf.sprintf "unrecognized query: %s" (String.concat " " words))

let query_run socket port words =
  init_runtime ();
  (match port with Some _ -> Simulator.Runtime.set_port port | None -> ());
  match parse_query_words words with
  | Error msg ->
      Printf.eprintf "asmodel query: %s\n" msg;
      1
  | Ok req -> (
      let listen = resolve_listen socket in
      match Serve.Server.connect listen with
      | Error msg ->
          Printf.eprintf "cannot connect: %s\n" msg;
          3
      | Ok conn ->
          let code =
            match Serve.Server.request conn req with
            | Error msg ->
                Printf.eprintf "query failed: %s\n" msg;
                3
            | Ok json ->
                print_endline (Serve.Json.to_string json);
                if Serve.Json.(member "ok" json |> Option.map to_bool)
                   = Some (Some true)
                then 0
                else 1
          in
          Serve.Server.close_conn conn;
          code)

let query_cmd =
  Cmd.v
    (Cmd.info "query"
       ~doc:
         "Send one query to a running 'asmodel serve' and print the JSON \
          response.")
    Term.(const query_run $ socket_arg $ port_arg $ query_words_arg)

let main_cmd =
  Cmd.group
    (Cmd.info "asmodel" ~version:"1.0.0"
       ~doc:
         "AS-topology models that capture route diversity (Muehlbauer et \
          al., SIGCOMM 2006)")
    [
      generate_cmd;
      topo_compare_cmd;
      stats_cmd;
      baseline_cmd;
      build_cmd;
      eval_cmd;
      inspect_cmd;
      trace_cmd;
      compact_cmd;
      export_cbgp_cmd;
      lint_cmd;
      check_cmd;
      whatif_cmd;
      replay_cmd;
      serve_cmd;
      query_cmd;
    ]

(* Exit codes: 0 success, 1 usage, 2 input parse, 3 simulation/runtime
   failure, 4 lint/check findings (including --strict escalation of
   recorded RD_CHECK violations).  [~catch:false] lets exceptions reach the
   handlers below so a broken input or a persistently failing
   simulation produces a one-line error and a meaningful code, not a
   backtrace. *)
let () =
  let code =
    try
      match Cmd.eval' ~catch:false main_cmd with
      | c when c = Cmd.Exit.cli_error || c = Cmd.Exit.internal_error -> 1
      | c -> c
    with
    | Sys_error msg ->
        Printf.eprintf "asmodel: %s\n" msg;
        2
    | exn ->
        Printf.eprintf "asmodel: %s\n" (Printexc.to_string exn);
        3
  in
  exit code
