module Warm_mode = struct
  type t = Off | On | Verify

  let to_string = function Off -> "off" | On -> "on" | Verify -> "verify"

  let parse s =
    match String.lowercase_ascii (String.trim s) with
    | "off" | "0" | "cold" -> Ok Off
    | "on" | "1" | "warm" -> Ok On
    | "verify" | "check" -> Ok Verify
    | other ->
        Error
          (Printf.sprintf "bad warm-start mode %S (want off|on|verify)" other)
end

module Check_mode = struct
  type t = Off | On | Race

  let to_string = function Off -> "off" | On -> "on" | Race -> "race"

  let parse s =
    match String.lowercase_ascii (String.trim s) with
    | "" | "off" | "0" | "false" -> Ok Off
    | "on" | "1" | "true" -> Ok On
    | "race" | "hb" -> Ok Race
    | other ->
        Error (Printf.sprintf "bad check mode %S (want off|on|race)" other)
end

module Fault = struct
  type scope = Transient | Full

  type t = { rate : float; seed : int; scope : scope }

  let parse s =
    match String.trim s with
    | "" | "0" | "off" -> Ok None
    | s -> (
        match String.split_on_char ':' s with
        | [ rate ] | [ rate; _ ] | [ rate; _; _ ]
          when float_of_string_opt rate = Some 0.0 ->
            Ok None
        | ([ rate; seed ] | [ rate; seed; _ ]) as fields -> (
            let scope =
              match fields with
              | [ _; _; "full" ] -> Ok Full
              | [ _; _ ] -> Ok Transient
              | [ _; _; other ] ->
                  Error
                    (Printf.sprintf "bad fault scope %S (want \"full\")" other)
              | _ -> assert false
            in
            match (float_of_string_opt rate, int_of_string_opt seed, scope) with
            | Some rate, Some seed, Ok scope when rate > 0.0 && rate <= 1.0 ->
                Ok (Some { rate; seed; scope })
            | Some _, Some _, (Ok _ as _ok) ->
                Error (Printf.sprintf "fault rate %S not in (0,1]" rate)
            | _, _, (Error _ as e) -> e
            | None, _, _ -> Error (Printf.sprintf "bad fault rate %S" rate)
            | _, None, _ -> Error (Printf.sprintf "bad fault seed %S" seed))
        | _ ->
            Error
              (Printf.sprintf "bad fault syntax %S (want RATE:SEED[:full])" s))

  let pp ppf t =
    Format.fprintf ppf "rate %.3f, seed %d, %s" t.rate t.seed
      (match t.scope with Transient -> "transient" | Full -> "full")
end

type t = {
  jobs : int option;
  warm : Warm_mode.t;
  check : Check_mode.t;
  faults : Fault.t option;
  trace : Obs.Trace.mode;
  port : int option;
  deadline_ms : int;
}

let default =
  {
    jobs = None;
    warm = Warm_mode.On;
    check = Check_mode.Off;
    faults = None;
    trace = Obs.Trace.Off;
    port = None;
    deadline_ms = 1000;
  }

(* An unset or empty variable means "keep the default"; empty-string
   unsetting lets tests restore the environment with Unix.putenv. *)
let env_value name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> ( match String.trim s with "" -> None | s -> Some s)

let of_env () =
  let knob name parse fallback =
    match env_value name with
    | None -> fallback
    | Some s -> (
        match parse s with
        | Ok v -> v
        | Error msg ->
            Logs.warn (fun m -> m "ignoring %s: %s" name msg);
            fallback)
  in
  let parse_jobs s =
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> Ok (Some n)
    | Some _ | None ->
        Error (Printf.sprintf "bad job count %S (want a positive integer)" s)
  in
  let parse_port s =
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 && n <= 65535 -> Ok (Some n)
    | Some _ | None ->
        Error (Printf.sprintf "bad port %S (want 1..65535)" s)
  in
  let parse_deadline s =
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 0 -> Ok n
    | Some _ | None ->
        Error
          (Printf.sprintf "bad deadline %S (want milliseconds >= 0; 0 = none)"
             s)
  in
  {
    jobs = knob "RD_JOBS" parse_jobs default.jobs;
    warm = knob "RD_WARM" Warm_mode.parse default.warm;
    check = knob "RD_CHECK" Check_mode.parse default.check;
    faults = knob "RD_FAULTS" Fault.parse default.faults;
    trace = knob "RD_TRACE" Obs.Trace.parse default.trace;
    port = knob "RD_PORT" parse_port default.port;
    deadline_ms = knob "RD_DEADLINE_MS" parse_deadline default.deadline_ms;
  }

let with_argv rt args =
  let split_eq arg =
    match String.index_opt arg '=' with
    | Some i ->
        ( String.sub arg 0 i,
          Some (String.sub arg (i + 1) (String.length arg - i - 1)) )
    | None -> (arg, None)
  in
  let rec go rt acc = function
    | [] -> Ok (rt, List.rev acc)
    | arg :: rest -> (
        let key, inline = split_eq arg in
        let consume apply =
          match
            match (inline, rest) with
            | Some v, _ -> Ok (v, rest)
            | None, v :: rest' -> Ok (v, rest')
            | None, [] -> Error (Printf.sprintf "%s needs a value" key)
          with
          | Error _ as e -> e
          | Ok (v, rest') -> (
              match apply v with
              | Ok rt -> Ok (rt, rest')
              | Error msg -> Error (Printf.sprintf "%s: %s" key msg))
        in
        let continue = function
          | Ok (rt, rest') -> go rt acc rest'
          | Error _ as e -> e
        in
        match key with
        | "--jobs" | "-j" ->
            continue
              (consume (fun v ->
                   match int_of_string_opt (String.trim v) with
                   | Some n when n >= 1 -> Ok { rt with jobs = Some n }
                   | Some _ | None ->
                       Error (Printf.sprintf "bad job count %S" v)))
        | "--warm" ->
            continue
              (consume (fun v ->
                   Result.map (fun m -> { rt with warm = m })
                     (Warm_mode.parse v)))
        | "--check" ->
            continue
              (consume (fun v ->
                   Result.map
                     (fun m -> { rt with check = m })
                     (Check_mode.parse v)))
        | "--faults" ->
            continue
              (consume (fun v ->
                   Result.map (fun f -> { rt with faults = f }) (Fault.parse v)))
        | "--trace" ->
            continue
              (consume (fun v ->
                   Result.map (fun m -> { rt with trace = m })
                     (Obs.Trace.parse v)))
        | "--port" ->
            continue
              (consume (fun v ->
                   match int_of_string_opt (String.trim v) with
                   | Some n when n >= 1 && n <= 65535 ->
                       Ok { rt with port = Some n }
                   | Some _ | None -> Error (Printf.sprintf "bad port %S" v)))
        | "--deadline-ms" ->
            continue
              (consume (fun v ->
                   match int_of_string_opt (String.trim v) with
                   | Some n when n >= 0 -> Ok { rt with deadline_ms = n }
                   | Some _ | None ->
                       Error (Printf.sprintf "bad deadline %S" v)))
        | _ -> go rt (arg :: acc) rest)
  in
  go rt [] args

(* The ambient configuration.  A plain ref under a mutex: reads are not
   on any hot path (the pool resolves jobs once per batch, the engine
   reads warm mode once per run). *)
let cache : t option ref = ref None

let cache_mutex = Mutex.create ()

let apply rt = Obs.Trace.set_mode rt.trace

let current () =
  match
    Mutex.protect cache_mutex (fun () ->
        match !cache with
        | Some rt -> (rt, false)
        | None ->
            let rt = of_env () in
            cache := Some rt;
            (rt, true))
  with
  | rt, fresh ->
      if fresh then apply rt;
      rt

let set rt =
  Mutex.protect cache_mutex (fun () -> cache := Some rt);
  apply rt

let set_jobs jobs = set { (current ()) with jobs }

let set_warm warm = set { (current ()) with warm }

let set_check check = set { (current ()) with check }

let set_faults faults = set { (current ()) with faults }

let set_trace trace = set { (current ()) with trace }

let set_port port = set { (current ()) with port }

let set_deadline_ms deadline_ms = set { (current ()) with deadline_ms }

let jobs () =
  match (current ()).jobs with
  | Some j -> max 1 j
  | None -> Domain.recommended_domain_count ()

let warm () = (current ()).warm

let check () = (current ()).check

let faults () = (current ()).faults

let trace () = Obs.Trace.mode ()

let port () = (current ()).port

let deadline_ms () = (current ()).deadline_ms

let pp ppf rt =
  Format.fprintf ppf
    "jobs %s, warm %s, check %s, faults %s, trace %s, port %s, deadline %s"
    (match rt.jobs with Some j -> string_of_int j | None -> "auto")
    (Warm_mode.to_string rt.warm)
    (Check_mode.to_string rt.check)
    (match rt.faults with
    | Some f -> Format.asprintf "(%a)" Fault.pp f
    | None -> "off")
    (Obs.Trace.mode_to_string rt.trace)
    (match rt.port with Some p -> string_of_int p | None -> "unix")
    (if rt.deadline_ms = 0 then "none"
     else string_of_int rt.deadline_ms ^ "ms")
