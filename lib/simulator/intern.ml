(* Domain-local hash-consing of AS-path arrays.

   Per-prefix simulation creates the same few hundred distinct AS paths
   over and over (one prepend per best change, re-imported at every
   peer), and every downstream consumer — RIB-In update suppression,
   the refiner's suffix matching, the oscillation watchdog — compares
   them structurally.  Interning maps each path to one canonical array
   so that (a) repeated prepends of the same best route allocate
   nothing, and (b) comparisons can take a physical-equality fast path
   before falling back to structural equality.

   Domain safety: the tables live in [Domain.DLS], so worker domains of
   {!Pool} never share mutable state and need no locks.  Canonical
   identity is therefore {e per domain} — two domains may intern the
   same path into different arrays — which is why every comparison
   keeps the structural fallback ([==] first is an optimisation, never
   the definition).  Pool workers are short-lived (one batch), so their
   tables are reclaimed with them. *)

module Tbl = Hashtbl.Make (struct
  type t = int array

  let equal (a : int array) b = a == b || a = b

  (* [Hashtbl.hash] truncates long structures; fine for a table (the
     [equal] above resolves collisions), unlike for fingerprints. *)
  let hash (a : int array) = Hashtbl.hash a
end)

(* Caps keep a pathological workload (millions of distinct paths in one
   domain) from growing the tables without bound; resetting only costs
   future hits, never correctness. *)
let table_cap = 1 lsl 16

let paths_key : int array Tbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Tbl.create 1024)

let empty_path : int array = [||]

let path (p : int array) =
  if Array.length p = 0 then empty_path
  else
    let tbl = Domain.DLS.get paths_key in
    match Tbl.find_opt tbl p with
    | Some q -> q
    | None ->
        if Tbl.length tbl >= table_cap then Tbl.reset tbl;
        Tbl.add tbl p p;
        p

module PrependTbl = Hashtbl.Make (struct
  type t = int * int array

  let equal ((as1, p1) : t) (as2, p2) = as1 = as2 && (p1 == p2 || p1 = p2)

  let hash ((own_as, p) : t) = Hashtbl.hash (own_as, Hashtbl.hash p)
end)

let prepends_key : int array PrependTbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> PrependTbl.create 1024)

let prepend ~own_as (p : int array) =
  let tbl = Domain.DLS.get prepends_key in
  let key = (own_as, p) in
  match PrependTbl.find_opt tbl key with
  | Some q -> q
  | None ->
      let len = Array.length p in
      let out = Array.make (len + 1) own_as in
      Array.blit p 0 out 1 len;
      let out = path out in
      if PrependTbl.length tbl >= table_cap then PrependTbl.reset tbl;
      PrependTbl.add tbl key out;
      out

(* Full-width polynomial hash over every element — the watchdog
   fingerprint needs the whole path folded in ([Hashtbl.hash] truncates
   deep/wide values), and interning makes the result worth caching:
   each distinct path is folded once per domain, later fingerprints of
   the same (canonical) array are a table hit. *)
let fold_path_hash (p : int array) =
  let h = ref (Array.length p) in
  Array.iter (fun x -> h := (!h * 1000003) lxor (x land max_int)) p;
  !h

let hashes_key : int Tbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Tbl.create 1024)

let path_hash (p : int array) =
  if Array.length p = 0 then 0
  else
    let tbl = Domain.DLS.get hashes_key in
    match Tbl.find_opt tbl p with
    | Some h -> h
    | None ->
        let h = fold_path_hash p in
        if Tbl.length tbl >= table_cap then Tbl.reset tbl;
        Tbl.add tbl p h;
        h

(* Hash-consing of whole route-attribute records (the PR-3 path idea
   extended to [Rattr.t]).  Worth its probe only where the same record
   genuinely recurs: the engine interns originated routes (re-derived
   once per run per originator, shared across runs of a domain), not
   per-import candidates — cold-convergence imports almost never
   repeat, so funnelling them through the table measured 20-35 % of
   engine throughput for no sharing (see Engine.push_exports).  Keyed
   on every field: two routes that differ in any provenance field are
   different records (state fingerprints fold all fields in). *)
module RattrTbl = Hashtbl.Make (struct
  type t = Rattr.t

  let equal (a : Rattr.t) b =
    a == b
    || (a.Rattr.from_node = b.Rattr.from_node
       && a.Rattr.lpref = b.Rattr.lpref
       && a.Rattr.med = b.Rattr.med
       && a.Rattr.igp = b.Rattr.igp
       && a.Rattr.from_ip = b.Rattr.from_ip
       && a.Rattr.from_session = b.Rattr.from_session
       && a.Rattr.learned = b.Rattr.learned
       && a.Rattr.learned_class = b.Rattr.learned_class
       && Rattr.same_path a.Rattr.path b.Rattr.path)

  let hash (r : Rattr.t) =
    let h = ref (fold_path_hash r.Rattr.path) in
    let mix x = h := (!h * 1000003) lxor (x land max_int) in
    mix r.Rattr.lpref;
    mix r.Rattr.med;
    mix r.Rattr.igp;
    mix r.Rattr.from_node;
    mix r.Rattr.from_ip;
    mix r.Rattr.from_session;
    mix (Hashtbl.hash r.Rattr.learned);
    mix r.Rattr.learned_class;
    !h land max_int
end)

let rattrs_key : Rattr.t RattrTbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> RattrTbl.create 1024)

let rattr (r : Rattr.t) =
  let tbl = Domain.DLS.get rattrs_key in
  match RattrTbl.find_opt tbl r with
  | Some q -> q
  | None ->
      if RattrTbl.length tbl >= table_cap then RattrTbl.reset tbl;
      RattrTbl.add tbl r r;
      r

type stats = { paths : int; prepends : int; hashes : int; rattrs : int }

let stats () =
  {
    paths = Tbl.length (Domain.DLS.get paths_key);
    prepends = PrependTbl.length (Domain.DLS.get prepends_key);
    hashes = Tbl.length (Domain.DLS.get hashes_key);
    rattrs = RattrTbl.length (Domain.DLS.get rattrs_key);
  }
