(** Domain-based worker pool for per-prefix simulation.

    Converged-state computation is embarrassingly parallel across
    prefixes: {!Engine.run} only {e reads} the network, and each run
    owns its private state.  The pool fans a prefix list out over OCaml
    5 domains ([Domain] from the stdlib — no extra dependency) in
    contiguous chunks claimed from an atomic counter, and returns the
    results in input order, so a pool run is bit-identical to the
    sequential loop it replaces regardless of the job count.

    Callers must not mutate the network while a pool call is in flight;
    the refiner's loop is therefore phased: parallel simulation of the
    iteration's dirty prefixes first, sequential policy mutation after
    (see DESIGN.md, "Parallel simulation"). *)

open Bgp

val default_jobs : unit -> int
(** Worker count used when [?jobs] is not given: the value set with
    {!set_default_jobs} if any, else the [RD_JOBS] environment variable
    (a positive integer), else [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Process-wide override, wired to the [--jobs] flags of the CLI and
    the bench driver.  Values are clamped to at least 1. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel, order-preserving [List.map].  [jobs] defaults to
    {!default_jobs}; with [jobs = 1] (or a short list) the input is
    mapped in the calling domain.  If [f] raises, the first exception
    is re-raised after all workers have stopped. *)

(** {2 Simulation batches with observability} *)

type stats = {
  jobs : int;  (** worker count of the batch (max when merged) *)
  prefixes : int;  (** prefixes simulated *)
  events : int;  (** total engine events across the batch *)
  non_converged : int;  (** states that hit the event budget *)
  wall : float;  (** wall-clock seconds spent in the batch *)
}

val zero : stats

val merge : stats -> stats -> stats
(** Componentwise accumulation ([jobs] is the max, the rest sums). *)

val simulate :
  ?jobs:int ->
  sim:(Prefix.t -> Engine.state) ->
  Prefix.t list ->
  (Prefix.t * Engine.state) list * stats
(** [simulate ~sim prefixes] runs [sim] on every prefix in parallel and
    returns the states paired with their prefixes, in input order, plus
    the batch statistics.  Non-converged (budget-truncated) states are
    counted in [stats.non_converged] — see {!Engine.run} — so silent
    truncation shows up in every pool report. *)

val pp_stats : Format.formatter -> stats -> unit
