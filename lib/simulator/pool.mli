(** Domain-based worker pool for per-prefix simulation.

    Converged-state computation is embarrassingly parallel across
    prefixes: {!Engine.simulate} only {e reads} the network, and each run
    owns its private state.  The pool fans a prefix list out over OCaml
    5 domains ([Domain] from the stdlib — no extra dependency) in
    contiguous chunks claimed from an atomic counter, and returns the
    results in input order, so a pool run is bit-identical to the
    sequential loop it replaces regardless of the job count.

    Faults are isolated per task: an exception raised by one input is
    captured in that input's own result slot, the other workers keep
    their completed work, and every failed input is retried once
    sequentially after all domains have joined (ruling out
    Domain-interaction effects) before the failure is reported.  When
    {!Faultinject} is enabled, every batch is transparently
    instrumented with it.

    Callers must not mutate the network while a pool call is in flight;
    the refiner's loop is therefore phased: parallel simulation of the
    iteration's dirty prefixes first, sequential policy mutation after
    (see DESIGN.md, "Parallel simulation"). *)

open Bgp

val default_jobs : unit -> int
(** Worker count used when [?jobs] is not given.  Delegates to
    {!Runtime.jobs}: the value set with {!set_default_jobs} (or
    [Runtime.set_jobs]) if any, else the [RD_JOBS] environment variable
    (a positive integer), else [Domain.recommended_domain_count ()]. *)

val set_default_jobs : int -> unit
(** Process-wide override, wired to the [--jobs] flags of the CLI and
    the bench driver; delegates to {!Runtime.set_jobs}.  Values are
    clamped to at least 1. *)

type task_error = {
  index : int;  (** position of the failing input in the batch *)
  exn : exn;  (** the exception of the {e last} (retry) attempt *)
  backtrace : string;  (** its raw backtrace, printed *)
}

val batch_active : unit -> bool
(** True while any {!map_result} batch (parallel phase or sequential
    retry) is in flight in this process.  The Analysis subsystem's
    mutation-discipline checker uses this to assert that nothing
    mutates a network while the pool may be reading it. *)

val pp_task_error : Format.formatter -> task_error -> unit

type slot_timing = {
  start_us : int;  (** slot start on the {!Obs.Trace.now_us} clock *)
  dur_us : int;  (** wall time of the {e recorded} attempt *)
  domain : int;  (** domain id that ran the recorded attempt *)
  retried : bool;  (** the recorded attempt is the sequential retry *)
}

val map_result :
  ?jobs:int ->
  ?chunk:int ->
  ?on_recover:(int -> unit) ->
  ?on_slot:(int -> slot_timing -> unit) ->
  ('a -> 'b) ->
  'a list ->
  ('b, task_error) result list
(** Parallel, order-preserving, fault-isolating [List.map].  [jobs]
    defaults to {!default_jobs}; with [jobs = 1] (or a short list) the
    input is mapped in the calling domain.  [chunk] is the number of
    consecutive inputs a worker claims per cursor fetch (clamped to at
    least 1); the default [n / (jobs * 8)] keeps the tail balanced when
    per-item cost varies, while an explicit larger shard keeps a run of
    related prefixes on one domain (better locality for warm caches and
    the per-domain intern tables).  Results are bit-identical either
    way.  A task that raises yields
    [Error] in its own slot without disturbing the rest of the batch;
    failed tasks are retried once sequentially after the parallel
    phase, and [on_recover i] is called for each input [i] whose retry
    succeeded.

    Every slot's wall time is measured — for a retried task the timing
    (and domain) of the retry attempt replaces the failed first
    attempt's, flagged [retried] — and reported after the batch via
    [on_slot], the [pool.slot_us] metrics histogram, and (when tracing
    is on) one trace event per slot plus a whole-batch [pool.map]
    event. *)

val map : ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** {!map_result} for callers that treat any persistent failure as
    fatal: the first (lowest-index) input still failing after its
    retry has its index logged and its exception re-raised. *)

(** {2 Simulation batches with observability} *)

type stats = {
  jobs : int;  (** worker count of the batch (max when merged) *)
  prefixes : int;  (** prefixes simulated *)
  events : int;  (** total engine events across the batch *)
  non_converged : int;  (** states not {!Engine.Converged} *)
  diverged : int;  (** the {!Engine.Diverged} subset of those *)
  retried : int;  (** tasks recovered by the sequential retry *)
  failed : int;  (** tasks still failing after retry *)
  wall : float;  (** wall-clock seconds spent in the batch *)
}

val zero : stats

val merge : stats -> stats -> stats
(** Componentwise accumulation ([jobs] is the max, the rest sums). *)

val simulate :
  ?jobs:int ->
  ?chunk:int ->
  sim:(Prefix.t -> Engine.state) ->
  Prefix.t list ->
  (Prefix.t * Engine.state) list * stats
(** [simulate ~sim prefixes] runs [sim] on every prefix in parallel and
    returns the states paired with their prefixes, in input order, plus
    the batch statistics.  [chunk] shards the prefix list as in
    {!map_result}.  Non-converged (budget-truncated or diverged)
    states are counted in [stats.non_converged] — see {!Engine.outcome} —
    so silent truncation shows up in every pool report.  Raises like
    {!map} if a simulation fails persistently. *)

val simulate_result :
  ?jobs:int ->
  ?chunk:int ->
  sim:(Prefix.t -> Engine.state) ->
  Prefix.t list ->
  (Prefix.t * (Engine.state, task_error) result) list * stats
(** Fault-isolating {!simulate}: per-prefix failures come back as
    [Error] slots (counted in [stats.failed]) instead of raising, and
    retry recoveries are counted in [stats.retried]. *)

val pp_stats : Format.formatter -> stats -> unit
