(** Domain-local hash-consing of AS-path arrays.

    The engine funnels every path it creates through this module so
    that identical paths within a domain share one canonical array:
    repeated eBGP prepends of the same best route allocate nothing, and
    path comparisons can try physical equality before structural
    equality.  Tables live in [Domain.DLS] — no locks, no sharing
    between {!Pool} workers — so canonical identity is per-domain and
    callers must always keep a structural fallback. *)

val path : int array -> int array
(** [path p] is the canonical array equal to [p] in the current domain
    (possibly [p] itself).  The empty path is a global constant. *)

val prepend : own_as:int -> int array -> int array
(** [prepend ~own_as p] is the canonical array for [own_as] consed onto
    [p] — the eBGP export prepend — memoized per [(own_as, p)], so the
    common case (re-exporting an unchanged best route) allocates
    nothing. *)

val path_hash : int array -> int
(** Full-width polynomial hash over {e every} element (unlike
    [Hashtbl.hash], which truncates), cached per canonical array.
    Suitable for the engine's oscillation-watchdog fingerprint. *)

val rattr : Rattr.t -> Rattr.t
(** [rattr r] is the canonical record equal to [r] (every field
    compared) in the current domain — the PR-3 path arena extended to
    whole route attributes.  Use it where the same record genuinely
    recurs (the engine interns each run's originated routes, shared
    across the runs of a domain); per-import candidates are better left
    plain — they rarely repeat, and the table probe was measured at
    20-35 % of engine throughput.  Never pass {!Rattr.no_route}. *)

type stats = { paths : int; prepends : int; hashes : int; rattrs : int }
(** Fill of the {e current domain's} tables. *)

val stats : unit -> stats

val table_cap : int
(** Per-table entry cap; a table is reset (not grown) past it, so
    [Analysis.Audit] asserts every fill stays [<= table_cap]. *)
