(* The pre-flat-slab engine, kept verbatim as a verification baseline.

   The flat-memory engine ({!Engine}) must be bit-identical to this
   implementation: same outcomes, same event counts, same state
   fingerprints, warm and cold.  The §SCALE bench and the QCheck
   equality test run both engines on the same worlds and compare —
   any divergence is a correctness bug in the flat engine, never a
   "both changed together" blind spot, because this module is frozen.

   Differences from the original are deliberately minimal: metrics and
   tracing are stripped (so baseline runs do not pollute the shared
   Obs registry the bench gates read), while {!Faultinject} is kept —
   it is keyed deterministically per prefix, so both engines shrink
   the same budgets under RD_FAULTS and stay comparable. *)

open Bgp

type outcome =
  | Converged
  | Truncated of { events : int; budget : int }
  | Diverged of { cycle_len : int }

type state = {
  pfx : Prefix.t;
  gen : int;
  rib_in : Rattr.t option array array;
  best : Rattr.t option array;
  originates : bool array;
  mutable outcome : outcome;
  mutable events : int;
}

let prefix st = st.pfx

let outcome st = st.outcome

let converged st = st.outcome = Converged

let events st = st.events

let best st n = if n >= Array.length st.best then None else st.best.(n)

let rib_in st n =
  if n >= Array.length st.rib_in then []
  else
    let slots = st.rib_in.(n) in
    let acc = ref [] in
    for i = Array.length slots - 1 downto 0 do
      match slots.(i) with Some r -> acc := (i, r) :: !acc | None -> ()
    done;
    !acc

let compute_export net st n s (si : Net.session_info) best ~ebgp_path =
  match best with
  | None -> None
  | Some (r : Rattr.t) ->
      if r.Rattr.from_node = si.Net.si_peer then None
      else if
        si.Net.si_kind = Net.Ibgp
        && r.Rattr.learned = Rattr.From_ibgp
        && not
             (si.Net.si_rr_client
             || (r.Rattr.from_session >= 0
                && Net.rr_client net n r.Rattr.from_session))
      then None
      else if Net.export_denied net n s st.pfx then None
      else if
        si.Net.si_kind = Net.Ebgp
        && not
             (Net.export_matrix net ~learned_class:r.Rattr.learned_class
                ~to_class:si.Net.si_class)
      then None
      else
        let path =
          match si.Net.si_kind with
          | Net.Ebgp -> ebgp_path
          | Net.Ibgp -> r.Rattr.path
        in
        Some (path, r)

let import net st ~sender:n ~sender_ip ~peer ~peer_as ~peer_session:ps
    (ri : Net.session_info) adv =
  match adv with
  | None -> None
  | Some (path, (orig : Rattr.t)) -> (
      match ri.Net.si_kind with
      | Net.Ebgp ->
          if Array.exists (fun a -> a = peer_as) path then None
          else
            let lpref =
              match Net.import_lpref_for net peer ps st.pfx with
              | Some v -> v
              | None ->
                  if ri.Net.si_carry then orig.Rattr.lpref
                  else
                    match ri.Net.si_lpref with Some v -> v | None -> 100
            in
            let med =
              match Net.session_med net peer ps st.pfx with
              | Some v -> v
              | None -> Net.default_med net
            in
            Some
              {
                Rattr.path;
                lpref;
                med;
                igp = 0;
                from_node = n;
                from_ip = sender_ip;
                from_session = ps;
                learned = Rattr.From_ebgp;
                learned_class = ri.Net.si_class;
              }
      | Net.Ibgp ->
          Some
            {
              Rattr.path;
              lpref = orig.Rattr.lpref;
              med = orig.Rattr.med;
              igp = Net.igp_cost net peer n;
              from_node = n;
              from_ip = sender_ip;
              from_session = ps;
              learned = Rattr.From_ibgp;
              learned_class = ri.Net.si_class;
            })

let push_exports net st enqueue u best' =
  let ebgp_path =
    match best' with
    | None -> [||]
    | Some (r : Rattr.t) ->
        Intern.prepend ~own_as:(Net.asn_of net u) r.Rattr.path
  in
  let own_ip = Ipv4.to_int (Net.ip_of net u) in
  Net.iter_sessions net u (fun s _peer ->
      let si = Net.session_info net u s in
      let peer = si.Net.si_peer in
      let adv = compute_export net st u s si best' ~ebgp_path in
      let ps = si.Net.si_reverse in
      let ri = Net.session_info net peer ps in
      let imported =
        import net st ~sender:u ~sender_ip:own_ip ~peer
          ~peer_as:(Net.asn_of net peer) ~peer_session:ps ri adv
      in
      if not (Rattr.same_advertisement st.rib_in.(peer).(ps) imported) then begin
        st.rib_in.(peer).(ps) <- imported;
        enqueue peer
      end)

let mix_route mix = function
  | None -> mix 0x5bd1e995
  | Some (r : Rattr.t) ->
      mix (Intern.path_hash r.Rattr.path);
      mix r.Rattr.lpref;
      mix r.Rattr.med;
      mix r.Rattr.igp;
      mix r.Rattr.from_node;
      mix r.Rattr.from_ip;
      mix r.Rattr.from_session;
      mix (Hashtbl.hash r.Rattr.learned);
      mix (Hashtbl.hash r.Rattr.learned_class)

let fingerprint st queue queued =
  let h = ref 0x42 in
  let mix x = h := (!h * 1000003) lxor (x land max_int) in
  Array.iter (mix_route mix) st.best;
  Array.iter (fun slots -> Array.iter (mix_route mix) slots) st.rib_in;
  Queue.iter (fun u -> mix (u + 0x9e3779b9)) queue;
  Array.iter (fun q -> mix (Bool.to_int q)) queued;
  !h

let state_fingerprint st =
  let h = ref 0x42 in
  let mix x = h := (!h * 1000003) lxor (x land max_int) in
  Array.iter (mix_route mix) st.best;
  Array.iter (fun slots -> Array.iter (mix_route mix) slots) st.rib_in;
  !h

let watchdog_history_cap = 4096

let exec ?max_events ?max_escalations net st ~seed =
  let n = Array.length st.best in
  let budget =
    match max_events with Some b -> b | None -> 1000 + (200 * n)
  in
  let budget = Faultinject.shrink_budget ~key:(Hashtbl.hash st.pfx) budget in
  let escalations =
    match (max_escalations, max_events) with
    | Some k, _ -> max 0 k
    | None, Some _ -> 0
    | None, None -> 2
  in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let enqueue u =
    if not queued.(u) then begin
      queued.(u) <- true;
      Queue.push u queue
    end
  in
  let steps = Net.decision_steps net in
  let med_scope = Net.med_scope net in
  let scoped_med =
    med_scope = Decision.Same_neighbor && List.mem Decision.Med steps
  in
  let recompute_best_scoped u =
    let acc = ref [] in
    let slots = st.rib_in.(u) in
    for i = Array.length slots - 1 downto 0 do
      match slots.(i) with Some r -> acc := r :: !acc | None -> ()
    done;
    let candidates =
      if st.originates.(u) then
        Rattr.originated ~own_ip:(Ipv4.to_int (Net.ip_of net u)) :: !acc
      else !acc
    in
    Decision.select ~med_scope steps candidates
  in
  let recompute_best u =
    if scoped_med then recompute_best_scoped u
    else begin
      let best = ref None in
      if st.originates.(u) then
        best :=
          Some (Rattr.originated ~own_ip:(Ipv4.to_int (Net.ip_of net u)));
      let slots = st.rib_in.(u) in
      for i = 0 to Array.length slots - 1 do
        match slots.(i) with
        | None -> ()
        | Some r -> (
            match !best with
            | None -> best := Some r
            | Some b ->
                if Decision.compare_routes steps r b < 0 then best := Some r)
      done;
      !best
    end
  in
  let process u =
    st.events <- st.events + 1;
    let best' = recompute_best u in
    if not (Rattr.same_advertisement st.best.(u) best') then begin
      st.best.(u) <- best';
      push_exports net st enqueue u best'
    end
  in
  let replay u =
    st.events <- st.events + 1;
    push_exports net st enqueue u st.best.(u)
  in
  seed ~enqueue ~replay;
  let threshold = budget / 2 in
  let history = Hashtbl.create 64 in
  let rec drain budget escalations_left =
    if not (Queue.is_empty queue) then
      if st.events >= budget then
        if escalations_left > 0 then drain (budget * 2) (escalations_left - 1)
        else st.outcome <- Truncated { events = st.events; budget }
      else begin
        let u = Queue.pop queue in
        queued.(u) <- false;
        process u;
        if st.events >= threshold && not (Queue.is_empty queue) then
          let fp = fingerprint st queue queued in
          match Hashtbl.find_opt history fp with
          | Some e0 -> st.outcome <- Diverged { cycle_len = st.events - e0 }
          | None ->
              if Hashtbl.length history >= watchdog_history_cap then
                Hashtbl.reset history;
              Hashtbl.add history fp st.events;
              drain budget escalations_left
        else drain budget escalations_left
      end
  in
  drain budget escalations;
  st

let cold ?max_events ?max_escalations net ~prefix:pfx ~originators =
  let n = Net.node_count net in
  let st =
    {
      pfx;
      gen = Net.generation net;
      rib_in =
        Array.init n (fun i -> Array.make (Net.session_count_of net i) None);
      best = Array.make n None;
      originates = Array.make n false;
      outcome = Converged;
      events = 0;
    }
  in
  List.iter (fun o -> st.originates.(o) <- true) originators;
  exec ?max_events ?max_escalations net st ~seed:(fun ~enqueue ~replay:_ ->
      List.iter enqueue originators)

let resumable net prev =
  converged prev
  && prev.gen = Net.generation net
  && Array.length prev.best = Net.node_count net

let warm ?max_events ?max_escalations net ~prev ~touched ~originators =
  let st =
    {
      pfx = prev.pfx;
      gen = prev.gen;
      rib_in = Array.map Array.copy prev.rib_in;
      best = Array.copy prev.best;
      originates = Array.copy prev.originates;
      outcome = Converged;
      events = 0;
    }
  in
  let n = Array.length st.best in
  let now = Array.make n false in
  List.iter (fun o -> if o >= 0 && o < n then now.(o) <- true) originators;
  let origin_delta = ref [] in
  for u = n - 1 downto 0 do
    if now.(u) <> st.originates.(u) then begin
      st.originates.(u) <- now.(u);
      origin_delta := u :: !origin_delta
    end
  done;
  exec ?max_events ?max_escalations net st ~seed:(fun ~enqueue ~replay ->
      List.iter enqueue !origin_delta;
      List.iter (fun u -> if u >= 0 && u < n then replay u) touched)

let simulate ?max_events ?max_escalations ?from ?touched net ~prefix:pfx
    ~originators =
  match from with
  | Some prev when resumable net prev && prev.pfx = pfx ->
      let touched =
        match touched with Some t -> t | None -> Net.touched_nodes net pfx
      in
      warm ?max_events ?max_escalations net ~prev ~touched ~originators
  | _ -> cold ?max_events ?max_escalations net ~prefix:pfx ~originators
