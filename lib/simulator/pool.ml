let override = ref None

let set_default_jobs n = override := Some (max 1 n)

let default_jobs () =
  match !override with
  | Some n -> n
  | None -> (
      match Sys.getenv_opt "RD_JOBS" with
      | Some s -> (
          match int_of_string_opt (String.trim s) with
          | Some n when n >= 1 -> n
          | Some _ | None -> Domain.recommended_domain_count ())
      | None -> Domain.recommended_domain_count ())

let resolve_jobs = function
  | Some j -> max 1 j
  | None -> default_jobs ()

(* Workers claim contiguous chunks of the input from an atomic cursor
   and write into disjoint slots of [results], so the output order (and
   hence every caller downstream) is independent of the job count. *)
let map ?jobs f l =
  let input = Array.of_list l in
  let n = Array.length input in
  if n = 0 then []
  else begin
    let jobs = min (resolve_jobs jobs) n in
    if jobs = 1 then List.map f l
    else begin
      let results = Array.make n None in
      let cursor = Atomic.make 0 in
      (* Small chunks keep the tail balanced when per-item cost varies
         (prefix convergence times differ by orders of magnitude). *)
      let chunk = max 1 (n / (jobs * 8)) in
      let failure = Atomic.make None in
      let worker () =
        let running = ref true in
        while !running do
          let start = Atomic.fetch_and_add cursor chunk in
          if start >= n || Atomic.get failure <> None then running := false
          else begin
            let stop = min n (start + chunk) in
            try
              for i = start to stop - 1 do
                results.(i) <- Some (f input.(i))
              done
            with exn ->
              ignore (Atomic.compare_and_set failure None (Some exn));
              running := false
          end
        done
      in
      let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
      worker ();
      List.iter Domain.join domains;
      (match Atomic.get failure with Some exn -> raise exn | None -> ());
      Array.to_list
        (Array.map
           (function Some v -> v | None -> invalid_arg "Pool.map: lost slot")
           results)
    end
  end

type stats = {
  jobs : int;
  prefixes : int;
  events : int;
  non_converged : int;
  wall : float;
}

let zero = { jobs = 0; prefixes = 0; events = 0; non_converged = 0; wall = 0.0 }

let merge a b =
  {
    jobs = max a.jobs b.jobs;
    prefixes = a.prefixes + b.prefixes;
    events = a.events + b.events;
    non_converged = a.non_converged + b.non_converged;
    wall = a.wall +. b.wall;
  }

let simulate ?jobs ~sim prefixes =
  let jobs = resolve_jobs jobs in
  let t0 = Unix.gettimeofday () in
  let states = map ~jobs sim prefixes in
  let wall = Unix.gettimeofday () -. t0 in
  let stats =
    List.fold_left
      (fun acc st ->
        {
          acc with
          prefixes = acc.prefixes + 1;
          events = acc.events + Engine.events st;
          non_converged =
            (acc.non_converged + if Engine.converged st then 0 else 1);
        })
      { zero with jobs; wall }
      states
  in
  (List.combine prefixes states, stats)

let pp_stats ppf s =
  Format.fprintf ppf
    "%d prefixes on %d jobs: %d events, %d non-converged, %.2fs wall"
    s.prefixes s.jobs s.events s.non_converged s.wall
