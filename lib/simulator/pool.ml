open Bgp

let set_default_jobs n = Runtime.set_jobs (Some (max 1 n))

let default_jobs () = Runtime.jobs ()

let resolve_jobs = function
  | Some j -> max 1 j
  | None -> default_jobs ()

type task_error = { index : int; exn : exn; backtrace : string }

type slot_timing = {
  start_us : int;
  dur_us : int;
  domain : int;
  retried : bool;
}

let batches_m = Obs.Metrics.counter "pool.batches"

let tasks_m = Obs.Metrics.counter "pool.tasks"

let retried_m = Obs.Metrics.counter "pool.retried"

let failed_m = Obs.Metrics.counter "pool.failed"

let slot_us_m = Obs.Metrics.histogram "pool.slot_us"

(* Batch scope marker for the Analysis mutation-discipline checker: the
   depth is positive while any [map_result] batch is in flight anywhere
   in the process (including its sequential retry phase — tasks must
   never mutate shared state regardless of the job count). *)
let batch_depth = Atomic.make 0

let batch_active () = Atomic.get batch_depth > 0

(* Batch ids name the per-worker happens-before channels published to
   Obs.Probe: the spawning domain releases its history before each
   Domain.spawn and re-acquires the worker's after each Domain.join,
   mirroring the real ordering those operations provide.  Channels are
   per (batch, worker) so edges never leak between batches. *)
let batch_uid = Atomic.make 0

let pp_task_error ppf e =
  Format.fprintf ppf "task %d: %s" e.index (Printexc.to_string e.exn)

(* Workers claim contiguous chunks of the input from an atomic cursor
   and write into disjoint slots of [results], so the output order (and
   hence every caller downstream) is independent of the job count.  A
   failing task writes an [Error] into its own slot and the worker moves
   on — one pathological input no longer discards the whole batch. *)
let resolve_chunk ~n ~jobs = function
  | Some c -> max 1 c
  | None -> max 1 (n / (jobs * 8))

let map_result ?jobs ?chunk ?on_recover ?on_slot f l =
  let input = Array.of_list l in
  let n = Array.length input in
  if n = 0 then []
  else begin
    Atomic.incr batch_depth;
    Fun.protect ~finally:(fun () -> Atomic.decr batch_depth) @@ fun () ->
    let jobs = min (resolve_jobs jobs) n in
    let f = Faultinject.wrap_tasks ~n f in
    let results = Array.make n None in
    (* Per-slot wall time, always measured (two clock reads per task
       against millisecond-scale simulations): the slot_us histogram
       and the ?on_slot hook want it whether or not tracing is on.  The
       sequential-retry path below overwrites a failed slot's timing
       with the retry attempt's, so traces never show zero-duration
       slots for retried tasks. *)
    let timing =
      Array.make n { start_us = 0; dur_us = 0; domain = 0; retried = false }
    in
    let batch_start = Obs.Trace.now_us () in
    let run_item i =
      let t0 = Obs.Trace.now_us () in
      let finish () =
        timing.(i) <-
          {
            start_us = t0;
            dur_us = Obs.Trace.now_us () - t0;
            domain = (Domain.self () :> int);
            retried = false;
          }
      in
      match f i input.(i) with
      | v ->
          finish ();
          results.(i) <- Some (Ok v)
      | exception exn ->
          let backtrace =
            Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
          in
          finish ();
          results.(i) <- Some (Error { index = i; exn; backtrace })
    in
    if jobs = 1 then
      for i = 0 to n - 1 do
        run_item i
      done
    else begin
      let cursor = Atomic.make 0 in
      (* Small chunks keep the tail balanced when per-item cost varies
         (prefix convergence times differ by orders of magnitude); an
         explicit [?chunk] shards larger runs of prefixes per claim so
         warm caches and interned tables stay hot within a domain. *)
      let chunk = resolve_chunk ~n ~jobs chunk in
      let worker () =
        let running = ref true in
        while !running do
          let start = Atomic.fetch_and_add cursor chunk in
          if start >= n then running := false
          else
            let stop = min n (start + chunk) in
            for i = start to stop - 1 do
              run_item i
            done
        done
      in
      let probing = Obs.Probe.enabled () in
      let bid = if probing then Atomic.fetch_and_add batch_uid 1 else 0 in
      let chan k dir = Printf.sprintf "pool.%d.%d.%s" bid k dir in
      let domains =
        List.init (jobs - 1) (fun k ->
            if probing then Obs.Probe.release ~chan:(chan k "spawn");
            Domain.spawn (fun () ->
                if probing then Obs.Probe.acquire ~chan:(chan k "spawn");
                worker ();
                if probing then Obs.Probe.release ~chan:(chan k "join")))
      in
      worker ();
      List.iteri
        (fun k d ->
          Domain.join d;
          if probing then Obs.Probe.acquire ~chan:(chan k "join"))
        domains
    end;
    (* One sequential retry for every failed slot, after all domains
       have joined: rules out Domain-interaction effects and recovers
       transient faults before anything is reported upward. *)
    for i = 0 to n - 1 do
      match results.(i) with
      | Some (Ok _) -> ()
      | Some (Error _) -> (
          let t0 = Obs.Trace.now_us () in
          let finish () =
            timing.(i) <-
              {
                start_us = t0;
                dur_us = Obs.Trace.now_us () - t0;
                domain = (Domain.self () :> int);
                retried = true;
              }
          in
          match f i input.(i) with
          | v ->
              finish ();
              results.(i) <- Some (Ok v);
              Obs.Metrics.incr retried_m;
              (match on_recover with Some g -> g i | None -> ())
          | exception exn ->
              let backtrace =
                Printexc.raw_backtrace_to_string (Printexc.get_raw_backtrace ())
              in
              finish ();
              results.(i) <- Some (Error { index = i; exn; backtrace }))
      | None -> assert false (* every slot is written by exactly one worker *)
    done;
    Obs.Metrics.incr batches_m;
    Obs.Metrics.incr ~by:n tasks_m;
    let traced = Obs.Trace.enabled () in
    Array.iteri
      (fun i t ->
        Obs.Metrics.observe slot_us_m t.dur_us;
        (match results.(i) with
        | Some (Error _) -> Obs.Metrics.incr failed_m
        | Some (Ok _) | None -> ());
        (match on_slot with Some g -> g i t | None -> ());
        if traced then
          Obs.Trace.emit
            ~args:
              (("index", string_of_int i)
              :: (if t.retried then [ ("retried", "true") ] else []))
            ~tid:t.domain ~name:"pool.slot" ~ts_us:t.start_us ~dur_us:t.dur_us
            ())
      timing;
    if traced then
      Obs.Trace.emit
        ~args:[ ("tasks", string_of_int n); ("jobs", string_of_int jobs) ]
        ~name:"pool.map" ~ts_us:batch_start
        ~dur_us:(Obs.Trace.now_us () - batch_start)
        ();
    Array.to_list
      (Array.map (function Some r -> r | None -> assert false) results)
  end

let map ?jobs ?chunk f l =
  List.map
    (function
      | Ok v -> v
      | Error { index; exn; _ } ->
          Logs.err (fun m ->
              m "Pool.map: input %d failed after retry: %s" index
                (Printexc.to_string exn));
          raise exn)
    (map_result ?jobs ?chunk f l)

type stats = {
  jobs : int;
  prefixes : int;
  events : int;
  non_converged : int;
  diverged : int;
  retried : int;
  failed : int;
  wall : float;
}

let zero =
  {
    jobs = 0;
    prefixes = 0;
    events = 0;
    non_converged = 0;
    diverged = 0;
    retried = 0;
    failed = 0;
    wall = 0.0;
  }

let merge a b =
  {
    jobs = max a.jobs b.jobs;
    prefixes = a.prefixes + b.prefixes;
    events = a.events + b.events;
    non_converged = a.non_converged + b.non_converged;
    diverged = a.diverged + b.diverged;
    retried = a.retried + b.retried;
    failed = a.failed + b.failed;
    wall = a.wall +. b.wall;
  }

let simulate_result ?jobs ?chunk ~sim prefixes =
  let jobs = resolve_jobs jobs in
  let t0 = Unix.gettimeofday () in
  let retried = ref 0 in
  let results =
    map_result ~jobs ?chunk ~on_recover:(fun _ -> incr retried) sim prefixes
  in
  let wall = Unix.gettimeofday () -. t0 in
  let stats =
    List.fold_left
      (fun acc r ->
        let acc = { acc with prefixes = acc.prefixes + 1 } in
        match r with
        | Ok st ->
            {
              acc with
              events = acc.events + Engine.events st;
              non_converged =
                (acc.non_converged + if Engine.converged st then 0 else 1);
              diverged =
                (acc.diverged
                + match Engine.outcome st with
                  | Engine.Diverged _ -> 1
                  | Engine.Converged | Engine.Truncated _ -> 0);
            }
        | Error _ -> { acc with failed = acc.failed + 1 })
      { zero with jobs; wall; retried = !retried }
      results
  in
  (List.combine prefixes results, stats)

let simulate ?jobs ?chunk ~sim prefixes =
  let pairs, stats = simulate_result ?jobs ?chunk ~sim prefixes in
  let pairs =
    List.map
      (fun (p, r) ->
        match r with
        | Ok st -> (p, st)
        | Error { index; exn; _ } ->
            Logs.err (fun m ->
                m "Pool.simulate: prefix %a (input %d) failed after retry"
                  Prefix.pp p index);
            raise exn)
      pairs
  in
  (pairs, stats)

let pp_stats ppf s =
  Format.fprintf ppf
    "%d prefixes on %d jobs: %d events, %d non-converged, %.2fs wall"
    s.prefixes s.jobs s.events s.non_converged s.wall;
  if s.diverged > 0 then Format.fprintf ppf ", %d diverged" s.diverged;
  if s.retried > 0 then Format.fprintf ppf ", %d retried" s.retried;
  if s.failed > 0 then Format.fprintf ppf ", %d failed" s.failed
