open Bgp

type outcome =
  | Converged
  | Truncated of { events : int; budget : int }
  | Diverged of { cycle_len : int }

let pp_outcome ppf = function
  | Converged -> Format.pp_print_string ppf "converged"
  | Truncated { events; budget } ->
      Format.fprintf ppf "truncated (%d events, budget %d)" events budget
  | Diverged { cycle_len } ->
      Format.fprintf ppf "diverged (cycle of %d events)" cycle_len

type state = {
  pfx : Prefix.t;
  gen : int;  (* Net.generation at run time; gates warm resumption *)
  rib_in : Rattr.t option array array;  (* node -> session index -> route *)
  best : Rattr.t option array;
  originates : bool array;
  mutable outcome : outcome;
  mutable events : int;
}

(* Metrics are flushed once per run from locally accumulated counts —
   never touched per event — so the instrumented engine is the
   un-instrumented engine plus a handful of atomic adds at the end. *)
let runs_m = Obs.Metrics.counter "engine.runs"

let events_m = Obs.Metrics.counter "engine.events_drained"

let escalations_m = Obs.Metrics.counter "engine.budget_escalations"

let fingerprints_m = Obs.Metrics.counter "engine.watchdog_fingerprints"

let truncated_m = Obs.Metrics.counter "engine.truncated"

let diverged_m = Obs.Metrics.counter "engine.diverged"

let resume_hits_m = Obs.Metrics.counter "engine.warm_resume_hits"

let resume_misses_m = Obs.Metrics.counter "engine.warm_resume_misses"

let prefix st = st.pfx

let outcome st = st.outcome

let converged st = st.outcome = Converged

let events st = st.events

(* Nodes created after a run (the refiner's duplicates) have no state
   yet: report them as empty rather than out of bounds. *)
let best st n = if n >= Array.length st.best then None else st.best.(n)

let rib_in st n =
  if n >= Array.length st.rib_in then []
  else
  let slots = st.rib_in.(n) in
  let acc = ref [] in
  for i = Array.length slots - 1 downto 0 do
    match slots.(i) with Some r -> acc := (i, r) :: !acc | None -> ()
  done;
  !acc

let candidates st net n =
  let own =
    if n < Array.length st.originates && st.originates.(n) then
      [ Rattr.originated ~own_ip:(Ipv4.to_int (Net.ip_of net n)) ]
    else []
  in
  own @ List.map snd (rib_in st n)

(* What node [n] advertises over session [s] (described by [si]) given
   its best route; [None] means withdraw.  [ebgp_path] is the
   own-AS-prepended path, computed once per best change. *)
let compute_export net st n s (si : Net.session_info) best ~ebgp_path =
  match best with
  | None -> None
  | Some (r : Rattr.t) ->
      if r.Rattr.from_node = si.Net.si_peer then None
      else if
        si.Net.si_kind = Net.Ibgp
        && r.Rattr.learned = Rattr.From_ibgp
        && not
             (* RFC 4456 route reflection: an iBGP-learned route is
                re-advertised over iBGP to clients always, and to
                non-clients when it was learned from a client. *)
             (si.Net.si_rr_client
             || (r.Rattr.from_session >= 0 && Net.rr_client net n r.Rattr.from_session))
      then None
      else if Net.export_denied net n s st.pfx then None
      else if
        si.Net.si_kind = Net.Ebgp
        && not
             (Net.export_matrix net ~learned_class:r.Rattr.learned_class
                ~to_class:si.Net.si_class)
      then None
      else
        let path =
          match si.Net.si_kind with
          | Net.Ebgp -> ebgp_path
          | Net.Ibgp -> r.Rattr.path
        in
        Some (path, r)

(* Import processing at [peer] for an advertisement from [n] over the
   peer-side session [ps] (described by [ri]). *)
let import net st ~sender:n ~sender_ip ~peer ~peer_as ~peer_session:ps
    (ri : Net.session_info) adv =
  match adv with
  | None -> None
  | Some (path, (orig : Rattr.t)) -> (
      match ri.Net.si_kind with
      | Net.Ebgp ->
          if Array.exists (fun a -> a = peer_as) path then None
          else
            let lpref =
              match Net.import_lpref_for net peer ps st.pfx with
              | Some v -> v
              | None ->
                  if ri.Net.si_carry then orig.Rattr.lpref
                  else match ri.Net.si_lpref with Some v -> v | None -> 100
            in
            let med =
              match Net.session_med net peer ps st.pfx with
              | Some v -> v
              | None -> Net.default_med net
            in
            Some
              {
                Rattr.path;
                lpref;
                med;
                igp = 0;
                from_node = n;
                from_ip = sender_ip;
                from_session = ps;
                learned = Rattr.From_ebgp;
                learned_class = ri.Net.si_class;
              }
      | Net.Ibgp ->
          (* LOCAL_PREF and MED travel unchanged inside the AS; the IGP
             cost to the egress (the announcing router) implements
             hot-potato ranking. *)
          Some
            {
              Rattr.path;
              lpref = orig.Rattr.lpref;
              med = orig.Rattr.med;
              igp = Net.igp_cost net peer n;
              from_node = n;
              from_ip = sender_ip;
              from_session = ps;
              learned = Rattr.From_ibgp;
              learned_class = ri.Net.si_class;
            })

(* Re-export node [u]'s current best over every session, importing at
   each peer and enqueueing peers whose RIB-In changed.  Shared between
   the per-event processing and the warm-start replay of touched
   nodes. *)
let push_exports net st enqueue u best' =
  let ebgp_path =
    match best' with
    | None -> [||]
    | Some (r : Rattr.t) ->
        Intern.prepend ~own_as:(Net.asn_of net u) r.Rattr.path
  in
  let own_ip = Ipv4.to_int (Net.ip_of net u) in
  Net.iter_sessions net u (fun s _peer ->
      let si = Net.session_info net u s in
      let peer = si.Net.si_peer in
      let adv = compute_export net st u s si best' ~ebgp_path in
      let ps = si.Net.si_reverse in
      let ri = Net.session_info net peer ps in
      let imported =
        import net st ~sender:u ~sender_ip:own_ip ~peer
          ~peer_as:(Net.asn_of net peer) ~peer_session:ps ri adv
      in
      if not (Rattr.same_advertisement st.rib_in.(peer).(ps) imported)
      then begin
        st.rib_in.(peer).(ps) <- imported;
        enqueue peer
      end)

let mix_route mix = function
  | None -> mix 0x5bd1e995
  | Some (r : Rattr.t) ->
      mix (Intern.path_hash r.Rattr.path);
      mix r.Rattr.lpref;
      mix r.Rattr.med;
      mix r.Rattr.igp;
      mix r.Rattr.from_node;
      mix r.Rattr.from_ip;
      mix r.Rattr.from_session;
      mix (Hashtbl.hash r.Rattr.learned);
      mix (Hashtbl.hash r.Rattr.learned_class)

(* Full-state fingerprint for the oscillation watchdog.  The transition
   function is deterministic, so an exact repeat of (RIBs, best routes,
   queue content and order) with work still queued proves a genuine
   cycle.  [Hashtbl.hash] alone would be unsound here — it truncates
   deep/wide structures such as long AS-paths — so every route is
   folded field by field into a polynomial hash over the full
   native-int range, with paths contributing their (memoized) full-width
   content hash ({!Intern.path_hash}). *)
let fingerprint st queue queued =
  let h = ref 0x42 in
  let mix x = h := (!h * 1000003) lxor (x land max_int) in
  Array.iter (mix_route mix) st.best;
  Array.iter (fun slots -> Array.iter (mix_route mix) slots) st.rib_in;
  Queue.iter (fun u -> mix (u + 0x9e3779b9)) queue;
  Array.iter (fun q -> mix (Bool.to_int q)) queued;
  !h

(* Routing-content fingerprint (no queue): what warm-vs-cold
   verification compares.  Identical final best routes and RIB-Ins give
   identical fingerprints regardless of how the fixed point was
   reached. *)
let state_fingerprint st =
  let h = ref 0x42 in
  let mix x = h := (!h * 1000003) lxor (x land max_int) in
  Array.iter (mix_route mix) st.best;
  Array.iter (fun slots -> Array.iter (mix_route mix) slots) st.rib_in;
  !h

let same_state a b =
  a.pfx = b.pfx
  && Array.length a.best = Array.length b.best
  && (let ok = ref true in
      Array.iteri
        (fun i r -> if not (Rattr.same_advertisement r b.best.(i)) then ok := false)
        a.best;
      Array.iteri
        (fun i slots ->
          let slots' = b.rib_in.(i) in
          if Array.length slots <> Array.length slots' then ok := false
          else
            Array.iteri
              (fun s r ->
                if not (Rattr.same_advertisement r slots'.(s)) then ok := false)
              slots)
        a.rib_in;
      !ok)

(* The watchdog keeps at most this many fingerprints; real oscillation
   cycles are tiny (the bad gadget's is < 20 events), so a bounded
   history loses nothing while capping memory on huge budgets. *)
let watchdog_history_cap = 4096

(* Shared drain core: seed the queue (cold start: the originators; warm
   start: peers disturbed by replayed exports), then process nodes
   until the queue empties, the budget (after escalations) runs out, or
   the watchdog proves a cycle.  [seed ~enqueue ~replay] fills the
   initial queue; [replay u] re-exports [u]'s current best, charging
   one event. *)
let exec ?max_events ?max_escalations ?on_best_change net st ~kind ~seed =
  let t0 = Obs.Trace.now_us () in
  let escalated = ref 0 in
  let fingerprinted = ref 0 in
  let n = Array.length st.best in
  let budget =
    match max_events with Some b -> b | None -> 1000 + (200 * n)
  in
  let budget = Faultinject.shrink_budget ~key:(Hashtbl.hash st.pfx) budget in
  (* An explicit [max_events] is a caller-chosen hard cap (tests, budget
     experiments): honour it exactly unless escalation is requested too.
     The default budget is a heuristic, so exhausting it earns ×2 and ×4
     retries before the run is declared truncated. *)
  let escalations =
    match (max_escalations, max_events) with
    | Some k, _ -> max 0 k
    | None, Some _ -> 0
    | None, None -> 2
  in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let enqueue u =
    if not queued.(u) then begin
      queued.(u) <- true;
      Queue.push u queue
    end
  in
  let steps = Net.decision_steps net in
  let med_scope = Net.med_scope net in
  (* Neighbour-scoped MED (RFC 4271 §9.1.2.2) is not a total order over
     candidates, so the pairwise-minimum fast path below would be wrong
     for it: run the real elimination process instead. *)
  let scoped_med =
    med_scope = Decision.Same_neighbor && List.mem Decision.Med steps
  in
  let recompute_best_scoped u =
    let acc = ref [] in
    let slots = st.rib_in.(u) in
    for i = Array.length slots - 1 downto 0 do
      match slots.(i) with Some r -> acc := r :: !acc | None -> ()
    done;
    let candidates =
      if st.originates.(u) then
        Rattr.originated ~own_ip:(Ipv4.to_int (Net.ip_of net u)) :: !acc
      else !acc
    in
    Decision.select ~med_scope steps candidates
  in
  (* Allocation-free best computation: the elimination process equals
     the lexicographic minimum under Decision.compare_routes, first in
     RIB-In order winning ties. *)
  let recompute_best u =
    if scoped_med then recompute_best_scoped u
    else begin
      let best = ref None in
      if st.originates.(u) then
        best := Some (Rattr.originated ~own_ip:(Ipv4.to_int (Net.ip_of net u)));
      let slots = st.rib_in.(u) in
      for i = 0 to Array.length slots - 1 do
        match slots.(i) with
        | None -> ()
        | Some r -> (
            match !best with
            | None -> best := Some r
            | Some b ->
                if Decision.compare_routes steps r b < 0 then best := Some r)
      done;
      !best
    end
  in
  let process u =
    st.events <- st.events + 1;
    let best' = recompute_best u in
    if not (Rattr.same_advertisement st.best.(u) best') then begin
      st.best.(u) <- best';
      (match on_best_change with Some f -> f u best' | None -> ());
      push_exports net st enqueue u best'
    end
  in
  let replay u =
    st.events <- st.events + 1;
    push_exports net st enqueue u st.best.(u)
  in
  seed ~enqueue ~replay;
  (* Fingerprinting every event would tax the common case, so the
     watchdog arms only once half the initial budget is spent — any run
     that deep is already suspect, and a genuine cycle keeps repeating,
     so arming late never misses one. *)
  let threshold = budget / 2 in
  let history = Hashtbl.create 64 in
  let rec drain budget escalations_left =
    if not (Queue.is_empty queue) then
      if st.events >= budget then
        if escalations_left > 0 then begin
          Logs.debug (fun m ->
              m "engine: prefix %a exhausted budget %d; escalating to %d"
                Prefix.pp st.pfx budget (budget * 2));
          incr escalated;
          drain (budget * 2) (escalations_left - 1)
        end
        else begin
          st.outcome <- Truncated { events = st.events; budget };
          Logs.warn (fun m ->
              m
                "engine: prefix %a hit its event budget (%d events, budget \
                 %d); returning a partial, non-converged state"
                Prefix.pp st.pfx st.events budget)
        end
      else begin
        let u = Queue.pop queue in
        queued.(u) <- false;
        process u;
        if st.events >= threshold && not (Queue.is_empty queue) then
          let fp = (incr fingerprinted; fingerprint st queue queued) in
          match Hashtbl.find_opt history fp with
          | Some e0 ->
              st.outcome <- Diverged { cycle_len = st.events - e0 };
              Logs.warn (fun m ->
                  m
                    "engine: prefix %a oscillates (state repeated after %d \
                     events, cycle length %d); returning a partial, \
                     non-converged state"
                    Prefix.pp st.pfx st.events (st.events - e0))
          | None ->
              if Hashtbl.length history >= watchdog_history_cap then
                Hashtbl.reset history;
              Hashtbl.add history fp st.events;
              drain budget escalations_left
        else drain budget escalations_left
      end
  in
  drain budget escalations;
  Obs.Metrics.incr runs_m;
  Obs.Metrics.incr ~by:st.events events_m;
  if !escalated > 0 then Obs.Metrics.incr ~by:!escalated escalations_m;
  if !fingerprinted > 0 then
    Obs.Metrics.incr ~by:!fingerprinted fingerprints_m;
  (match st.outcome with
  | Converged -> ()
  | Truncated _ -> Obs.Metrics.incr truncated_m
  | Diverged _ -> Obs.Metrics.incr diverged_m);
  if Obs.Trace.enabled () then
    Obs.Trace.emit
      ~args:
        [
          ("prefix", Format.asprintf "%a" Prefix.pp st.pfx);
          ("kind", kind);
          ("outcome", Format.asprintf "%a" pp_outcome st.outcome);
          ("events", string_of_int st.events);
        ]
      ~name:"engine.simulate" ~ts_us:t0
      ~dur_us:(Obs.Trace.now_us () - t0)
      ();
  st

let cold ?max_events ?max_escalations ?on_best_change net ~prefix:pfx
    ~originators =
  let n = Net.node_count net in
  let st =
    {
      pfx;
      gen = Net.generation net;
      rib_in = Array.init n (fun i -> Array.make (Net.session_count_of net i) None);
      best = Array.make n None;
      originates = Array.make n false;
      outcome = Converged;
      events = 0;
    }
  in
  List.iter (fun o -> st.originates.(o) <- true) originators;
  exec ?max_events ?max_escalations ?on_best_change net st ~kind:"cold"
    ~seed:(fun ~enqueue ~replay:_ -> List.iter enqueue originators)

let resumable net prev =
  converged prev
  && prev.gen = Net.generation net
  && Array.length prev.best = Net.node_count net

(* Precondition: [resumable net prev]. *)
let warm ?max_events ?max_escalations ?on_best_change net ~prev ~touched
    ~originators =
  let st =
    {
      pfx = prev.pfx;
      gen = prev.gen;
      rib_in = Array.map Array.copy prev.rib_in;
      best = Array.copy prev.best;
      originates = Array.copy prev.originates;
      outcome = Converged;
      events = 0;
    }
  in
  let n = Array.length st.best in
  (* Origination delta: nodes that gain or lose the originated route
     under the caller's [originators] set re-run their decision process
     from the warm state — a gained origination injects the route, a
     lost one withdraws it, and the delta propagates like any other
     best-route change.  Callers resuming with an unchanged originator
     set produce an empty delta, so the historical policy-only warm
     path is untouched. *)
  let now = Array.make n false in
  List.iter (fun o -> if o >= 0 && o < n then now.(o) <- true) originators;
  let origin_delta = ref [] in
  for u = n - 1 downto 0 do
    if now.(u) <> st.originates.(u) then begin
      st.originates.(u) <- now.(u);
      origin_delta := u :: !origin_delta
    end
  done;
  exec ?max_events ?max_escalations ?on_best_change net st ~kind:"warm"
    ~seed:(fun ~enqueue ~replay ->
      (* Replay every touched node's exports unconditionally: peers
         whose RIB-In changes under the new policy enqueue themselves;
         the touched node itself re-runs its decision process whenever
         a replayed import disturbs it.  An unchanged advertisement is
         suppressed by [same_advertisement], so a no-op policy edit
         costs one event and drains immediately. *)
      List.iter enqueue !origin_delta;
      List.iter (fun u -> if u >= 0 && u < n then replay u) touched)

let simulate ?max_events ?max_escalations ?on_best_change ?from ?touched net
    ~prefix:pfx ~originators =
  match from with
  | Some prev when resumable net prev && prev.pfx = pfx ->
      Obs.Metrics.incr resume_hits_m;
      let touched =
        match touched with Some t -> t | None -> Net.touched_nodes net pfx
      in
      warm ?max_events ?max_escalations ?on_best_change net ~prev ~touched
        ~originators
  | _ ->
      (match from with
      | Some _ -> Obs.Metrics.incr resume_misses_m
      | None -> ());
      cold ?max_events ?max_escalations ?on_best_change net ~prefix:pfx
        ~originators

let originating st =
  let acc = ref [] in
  for u = Array.length st.originates - 1 downto 0 do
    if st.originates.(u) then acc := u :: !acc
  done;
  !acc

let best_full_path net st n =
  match best st n with
  | None -> None
  | Some r -> Some (Rattr.full_path ~own_as:(Net.asn_of net n) r)

let selected_paths net st asn =
  let paths =
    List.filter_map (fun n -> best_full_path net st n) (Net.nodes_of_as net asn)
  in
  List.sort_uniq Stdlib.compare paths
