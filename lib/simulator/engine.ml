open Bgp

type outcome =
  | Converged
  | Truncated of { events : int; budget : int }
  | Diverged of { cycle_len : int }

let pp_outcome ppf = function
  | Converged -> Format.pp_print_string ppf "converged"
  | Truncated { events; budget } ->
      Format.fprintf ppf "truncated (%d events, budget %d)" events budget
  | Diverged { cycle_len } ->
      Format.fprintf ppf "diverged (cycle of %d events)" cycle_len

(* Flat-memory per-prefix state.  The RIB-In is one contiguous route
   slab in the CSR slot order of {!Net.Csr}: node [n]'s slots are
   [off.(n) .. off.(n+1) - 1], and an empty slot holds the physical
   sentinel {!Rattr.no_route} instead of an option box.  Together with
   hash-consed routes ({!Intern.rattr}) this keeps the whole per-prefix
   state in three flat arrays: no per-node arrays to chase, warm copies
   are two [Array.copy] calls, and fingerprinting is a linear scan. *)
type state = {
  pfx : Prefix.t;
  gen : int;  (* Net.generation at run time; gates warm resumption *)
  nodes : int;
  off : int array;  (* shared with the Csr of [gen]; length nodes + 1 *)
  slab : Rattr.t array;  (* RIB-In slots; Rattr.no_route = empty *)
  best : Rattr.t array;  (* per node; Rattr.no_route = no route *)
  originates : bool array;
  mutable outcome : outcome;
  mutable events : int;
}

(* Metrics are flushed once per run from locally accumulated counts —
   never touched per event — so the instrumented engine is the
   un-instrumented engine plus a handful of atomic adds at the end. *)
let runs_m = Obs.Metrics.counter "engine.runs"

let events_m = Obs.Metrics.counter "engine.events_drained"

let escalations_m = Obs.Metrics.counter "engine.budget_escalations"

let fingerprints_m = Obs.Metrics.counter "engine.watchdog_fingerprints"

let truncated_m = Obs.Metrics.counter "engine.truncated"

let diverged_m = Obs.Metrics.counter "engine.diverged"

let resume_hits_m = Obs.Metrics.counter "engine.warm_resume_hits"

let resume_misses_m = Obs.Metrics.counter "engine.warm_resume_misses"

let prefix st = st.pfx

let generation st = st.gen

let outcome st = st.outcome

let converged st = st.outcome = Converged

let events st = st.events

(* Nodes created after a run (the refiner's duplicates) have no state
   yet: report them as empty rather than out of bounds. *)
let best st n =
  if n >= st.nodes then None
  else
    let r = st.best.(n) in
    if Rattr.is_route r then Some r else None

let rib_in st n =
  if n >= st.nodes then []
  else begin
    let base = st.off.(n) in
    let acc = ref [] in
    for k = st.off.(n + 1) - 1 downto base do
      let r = st.slab.(k) in
      if Rattr.is_route r then acc := (k - base, r) :: !acc
    done;
    !acc
  end

(* Candidate traversal without building a list: the originated route
   (if any) first, then the RIB-In slots in session order — exactly the
   decision-process input order. *)
let iter_candidates st net n f =
  if n < st.nodes then begin
    if st.originates.(n) then
      f (Rattr.originated ~own_ip:(Ipv4.to_int (Net.ip_of net n)));
    for k = st.off.(n) to st.off.(n + 1) - 1 do
      let r = st.slab.(k) in
      if Rattr.is_route r then f r
    done
  end

let fold_candidates st net n ~init ~f =
  let acc = ref init in
  iter_candidates st net n (fun r -> acc := f !acc r);
  !acc

let candidates st net n =
  List.rev (fold_candidates st net n ~init:[] ~f:(fun acc r -> r :: acc))

let mix_route mix (r : Rattr.t) =
  if Rattr.is_route r then begin
    mix (Intern.path_hash r.Rattr.path);
    mix r.Rattr.lpref;
    mix r.Rattr.med;
    mix r.Rattr.igp;
    mix r.Rattr.from_node;
    mix r.Rattr.from_ip;
    mix r.Rattr.from_session;
    mix (Hashtbl.hash r.Rattr.learned);
    mix (Hashtbl.hash r.Rattr.learned_class)
  end
  else mix 0x5bd1e995

(* Full-state fingerprint for the oscillation watchdog.  The transition
   function is deterministic, so an exact repeat of (RIBs, best routes,
   queue content and order) with work still queued proves a genuine
   cycle.  [Hashtbl.hash] alone would be unsound here — it truncates
   deep/wide structures such as long AS-paths — so every route is
   folded field by field into a polynomial hash over the full
   native-int range, with paths contributing their (memoized) full-width
   content hash ({!Intern.path_hash}).  The slab is mixed in linear
   order, which is the reference engine's node-major slot order — the
   two implementations fingerprint identically by construction. *)
let fingerprint st iter_queue queued =
  let h = ref 0x42 in
  let mix x = h := (!h * 1000003) lxor (x land max_int) in
  Array.iter (fun r -> mix_route mix r) st.best;
  Array.iter (fun r -> mix_route mix r) st.slab;
  iter_queue (fun u -> mix (u + 0x9e3779b9));
  Array.iter (fun q -> mix (Bool.to_int q)) queued;
  !h

(* Routing-content fingerprint (no queue): what warm-vs-cold
   verification compares.  Identical final best routes and RIB-Ins give
   identical fingerprints regardless of how the fixed point was
   reached. *)
let state_fingerprint st =
  let h = ref 0x42 in
  let mix x = h := (!h * 1000003) lxor (x land max_int) in
  Array.iter (fun r -> mix_route mix r) st.best;
  Array.iter (fun r -> mix_route mix r) st.slab;
  !h

let same_state a b =
  a.pfx = b.pfx && a.nodes = b.nodes
  && a.off = b.off
  && (let ok = ref true in
      Array.iteri
        (fun i r -> if not (Rattr.same_route r b.best.(i)) then ok := false)
        a.best;
      Array.iteri
        (fun k r -> if not (Rattr.same_route r b.slab.(k)) then ok := false)
        a.slab;
      !ok)

(* Loop detection without [Array.exists]'s closure allocation. *)
let path_mem (path : int array) x =
  let n = Array.length path in
  let rec go i = i < n && (path.(i) = x || go (i + 1)) in
  go 0

(* The watchdog keeps at most this many fingerprints; real oscillation
   cycles are tiny (the bad gadget's is < 20 events), so a bounded
   history loses nothing while capping memory on huge budgets. *)
let watchdog_history_cap = 4096

(* Shared drain core: seed the queue (cold start: the originators; warm
   start: peers disturbed by replayed exports), then process nodes
   until the queue empties, the budget (after escalations) runs out, or
   the watchdog proves a cycle.  [seed ~enqueue ~replay] fills the
   initial queue; [replay u] re-exports [u]'s current best, charging
   one event.

   The whole hot path runs on the {!Net.Csr} arrays hoisted into locals
   below: walking a node's sessions is a linear int-array scan, the
   mirror slot at the peer is one [rev] read, and the work queue is a
   ring buffer, so the only per-event allocation is a short-lived
   candidate record on an actual RIB-In change. *)
let exec ?max_events ?max_escalations ?on_best_change net st ~kind ~seed =
  let t0 = Obs.Trace.now_us () in
  let escalated = ref 0 in
  let fingerprinted = ref 0 in
  let n = st.nodes in
  let budget =
    match max_events with Some b -> b | None -> 1000 + (200 * n)
  in
  let budget = Faultinject.shrink_budget ~key:(Hashtbl.hash st.pfx) budget in
  (* An explicit [max_events] is a caller-chosen hard cap (tests, budget
     experiments): honour it exactly unless escalation is requested too.
     The default budget is a heuristic, so exhausting it earns ×2 and ×4
     retries before the run is declared truncated. *)
  let escalations =
    match (max_escalations, max_events) with
    | Some k, _ -> max 0 k
    | None, Some _ -> 0
    | None, None -> 2
  in
  (* One read-side probe per run: the whole drain reads the structure
     (via the CSR arrays) and the per-prefix policy tables (flattened
     below), so a mutation unordered with this run races it. *)
  Net.probe_read net ~site:"engine.exec";
  let c = Net.csr net in
  let off = Net.Csr.off c in
  let peer = Net.Csr.peer c in
  let rev = Net.Csr.rev c in
  let kinds = Net.Csr.kinds c in
  let classes = Net.Csr.classes c in
  let lprefs = Net.Csr.lprefs c in
  let carries = Net.Csr.carries c in
  let rrs = Net.Csr.rr_clients c in
  let asns = Net.Csr.asns c in
  let ips = Net.Csr.ips c in
  let slab = st.slab in
  let med_default = Net.default_med net in
  let nslots = Array.length slab in
  (* Per-run flattening of the per-prefix policy tables and the export
     matrix: one hash lookup (or closure call) per slot/class pair at
     run start instead of one per advertisement.  The net is frozen
     while a simulation runs (mutation discipline), so these snapshots
     cannot go stale mid-run. *)
  let deny = Array.make nslots false in
  let med_in = Array.make nslots min_int in
  let lpref_for = Array.make nslots min_int in
  for k = 0 to nslots - 1 do
    if Net.Csr.slot_export_denied c k st.pfx then deny.(k) <- true;
    (match Net.Csr.slot_med c k st.pfx with
    | Some v -> med_in.(k) <- v
    | None -> ());
    match Net.Csr.slot_import_lpref_for c k st.pfx with
    | Some v -> lpref_for.(k) <- v
    | None -> ()
  done;
  (* Session classes (and hence learned classes, which are session
     classes or -1 for originated routes) are small non-negative ints,
     so the export matrix collapses to a dense boolean table. *)
  let maxc =
    let m = ref 0 in
    Array.iter (fun cl -> if cl > !m then m := cl) classes;
    !m
  in
  let cw = maxc + 2 in
  let export_ok = Array.make (cw * cw) false in
  for lc = -1 to maxc do
    for tc = -1 to maxc do
      export_ok.(((lc + 1) * cw) + tc + 1) <-
        Net.export_matrix net ~learned_class:lc ~to_class:tc
    done
  done;
  (* FIFO work queue as a ring over an int array: the [queued] dedup
     bitmap bounds occupancy at [n], so capacity [n + 1] never
     overflows and the drain loop allocates nothing per event (a
     [Queue.t] would cons one cell per push). *)
  let qcap = n + 1 in
  let qbuf = Array.make qcap 0 in
  let qhead = ref 0 in
  let qtail = ref 0 in
  let queued = Array.make n false in
  let enqueue u =
    if not queued.(u) then begin
      queued.(u) <- true;
      qbuf.(!qtail) <- u;
      let t = !qtail + 1 in
      qtail := if t = qcap then 0 else t
    end
  in
  let queue_empty () = !qhead = !qtail in
  let dequeue () =
    let u = qbuf.(!qhead) in
    let h = !qhead + 1 in
    qhead := if h = qcap then 0 else h;
    u
  in
  (* Head-to-tail iteration preserves FIFO order, so watchdog
     fingerprints match the reference engine's [Queue.iter]. *)
  let iter_queue f =
    let i = ref !qhead in
    while !i <> !qtail do
      f qbuf.(!i);
      let j = !i + 1 in
      i := if j = qcap then 0 else j
    done
  in
  let steps = Net.decision_steps net in
  let med_scope = Net.med_scope net in
  (* Neighbour-scoped MED (RFC 4271 §9.1.2.2) is not a total order over
     candidates, so the pairwise-minimum fast path below would be wrong
     for it: run the real elimination process instead — in place over a
     per-run scratch buffer sized to the widest node. *)
  let scoped_med =
    med_scope = Decision.Same_neighbor && List.mem Decision.Med steps
  in
  let scratch =
    if not scoped_med then [||]
    else begin
      let maxdeg = ref 0 in
      for u = 0 to n - 1 do
        let d = off.(u + 1) - off.(u) in
        if d > !maxdeg then maxdeg := d
      done;
      Array.make (!maxdeg + 1) Rattr.no_route
    end
  in
  let scratch_keys = Array.make (Array.length scratch) 0 in
  (* Per-run lazy memo of the IGP cost per receiving slot: the user's
     igp function can be arbitrarily expensive (netgen's does hash
     lookups), and convergence re-imports over the same iBGP slot many
     times.  The net is frozen during a run, so the cost cannot
     change. *)
  let igp_memo = Array.make nslots min_int in
  let igp_at kr p u =
    let g = igp_memo.(kr) in
    if g <> min_int then g
    else begin
      let g = Net.igp_cost net p u in
      igp_memo.(kr) <- g;
      g
    end
  in
  (* Originated routes are stable for the whole run: intern each
     originator's once instead of allocating per decision process. *)
  let orig = Array.make n Rattr.no_route in
  for u = 0 to n - 1 do
    if st.originates.(u) then
      orig.(u) <- Intern.rattr (Rattr.originated ~own_ip:ips.(u))
  done;
  let originated u = orig.(u) in
  let recompute_best_scoped u =
    let m = ref 0 in
    if st.originates.(u) then begin
      scratch.(0) <- originated u;
      m := 1
    end;
    for k = off.(u) to off.(u + 1) - 1 do
      let r = slab.(k) in
      if Rattr.is_route r then begin
        scratch.(!m) <- r;
        incr m
      end
    done;
    match Decision.select_into ~med_scope steps scratch ~keys:scratch_keys !m with
    | Some r -> r
    | None -> Rattr.no_route
  in
  (* Allocation-free best computation: the elimination process equals
     the lexicographic minimum under Decision.compare_routes, first in
     RIB-In order winning ties. *)
  let recompute_best u =
    if scoped_med then recompute_best_scoped u
    else begin
      let best = ref Rattr.no_route in
      if st.originates.(u) then best := originated u;
      for k = off.(u) to off.(u + 1) - 1 do
        let r = slab.(k) in
        if Rattr.is_route r then
          if not (Rattr.is_route !best) then best := r
          else if Decision.compare_routes steps r !best < 0 then best := r
      done;
      !best
    end
  in
  (* Re-export node [u]'s current best over every slot, importing at
     each peer's mirror slot and enqueueing peers whose RIB-In changed.
     The export and import decisions of the reference engine, fused:
     the advertisement either dies (sentinel) or becomes one interned
     route written straight into the peer's slab slot. *)
  let push_exports u best' =
    let has = Rattr.is_route best' in
    let ebgp_path =
      if has then Intern.prepend ~own_as:asns.(u) best'.Rattr.path else [||]
    in
    let own_ip = ips.(u) in
    let base = off.(u) in
    (* The advertisement died on this session: withdraw the incumbent
       if there is one. *)
    let kill kr p =
      if Rattr.is_route slab.(kr) then begin
        slab.(kr) <- Rattr.no_route;
        enqueue p
      end
    in
    (* The advertisement survived: compare the computed fields against
       the incumbent (the [same_route] criteria, inlined) and allocate
       a record only on an actual change — suppressed imports, the
       vast majority, allocate nothing.  The records are deliberately
       NOT table-interned either: measured on 2k-AS worlds,
       cold-convergence imports almost never recur, so an
       {!Intern.rattr} probe per write costs 20-35% throughput while
       the table only retains garbage.  Sharing where reuse is real
       comes from {!Intern.prepend} (paths) and the interned
       originated routes. *)
    let store kr p path lpref med igp learned =
      let cur = slab.(kr) in
      if
        Rattr.is_route cur
        && cur.Rattr.from_node = u
        && (cur.Rattr.path == path || cur.Rattr.path = path)
        && cur.Rattr.lpref = lpref
        && cur.Rattr.med = med
        && cur.Rattr.igp = igp
      then ()
      else begin
        slab.(kr) <-
          {
            Rattr.path;
            lpref;
            med;
            igp;
            from_node = u;
            from_ip = own_ip;
            from_session = kr - off.(p);
            learned;
            learned_class = classes.(kr);
          };
        enqueue p
      end
    in
    for k = base to off.(u + 1) - 1 do
      let p = peer.(k) in
      let kr = rev.(k) in
      if not has then kill kr p
      else begin
        let r = best' in
        let ibgp = kinds.(k) = 1 in
        if r.Rattr.from_node = p then kill kr p
        else if
          ibgp
          && r.Rattr.learned = Rattr.From_ibgp
          && not
               (* RFC 4456 route reflection: an iBGP-learned route is
                  re-advertised over iBGP to clients always, and to
                  non-clients when it was learned from a client. *)
               (rrs.(k) = 1
               || (r.Rattr.from_session >= 0
                  && rrs.(base + r.Rattr.from_session) = 1))
        then kill kr p
        else if deny.(k) then kill kr p
        else if
          (not ibgp)
          && not export_ok.(((r.Rattr.learned_class + 1) * cw) + classes.(k) + 1)
        then kill kr p
        else begin
          let path = if ibgp then r.Rattr.path else ebgp_path in
          if kinds.(kr) = 0 then begin
            (* eBGP import at [p]: loop check, then import policy. *)
            if path_mem path asns.(p) then kill kr p
            else begin
              let lpref =
                let lp = lpref_for.(kr) in
                if lp <> min_int then lp
                else if carries.(kr) = 1 then r.Rattr.lpref
                else
                  let l = lprefs.(kr) in
                  if l = Net.Csr.no_lpref then 100 else l
              in
              let med =
                let m = med_in.(kr) in
                if m <> min_int then m else med_default
              in
              store kr p path lpref med 0 Rattr.From_ebgp
            end
          end
          else
            (* LOCAL_PREF and MED travel unchanged inside the AS; the
               IGP cost to the egress (the announcing router)
               implements hot-potato ranking. *)
            store kr p path r.Rattr.lpref r.Rattr.med (igp_at kr p u)
              Rattr.From_ibgp
        end
      end
    done
  in
  let process u =
    st.events <- st.events + 1;
    let best' = recompute_best u in
    if not (Rattr.same_route st.best.(u) best') then begin
      st.best.(u) <- best';
      (match on_best_change with
      | Some f -> f u (if Rattr.is_route best' then Some best' else None)
      | None -> ());
      push_exports u best'
    end
  in
  let replay u =
    st.events <- st.events + 1;
    push_exports u st.best.(u)
  in
  seed ~enqueue ~replay;
  (* Fingerprinting every event would tax the common case, so the
     watchdog arms only once half the initial budget is spent — any run
     that deep is already suspect, and a genuine cycle keeps repeating,
     so arming late never misses one. *)
  let threshold = budget / 2 in
  let history = Hashtbl.create 64 in
  let rec drain budget escalations_left =
    if not (queue_empty ()) then
      if st.events >= budget then
        if escalations_left > 0 then begin
          Logs.debug (fun m ->
              m "engine: prefix %a exhausted budget %d; escalating to %d"
                Prefix.pp st.pfx budget (budget * 2));
          incr escalated;
          drain (budget * 2) (escalations_left - 1)
        end
        else begin
          st.outcome <- Truncated { events = st.events; budget };
          Logs.warn (fun m ->
              m
                "engine: prefix %a hit its event budget (%d events, budget \
                 %d); returning a partial, non-converged state"
                Prefix.pp st.pfx st.events budget)
        end
      else begin
        let u = dequeue () in
        queued.(u) <- false;
        process u;
        if st.events >= threshold && not (queue_empty ()) then
          let fp = (incr fingerprinted; fingerprint st iter_queue queued) in
          match Hashtbl.find_opt history fp with
          | Some e0 ->
              st.outcome <- Diverged { cycle_len = st.events - e0 };
              Logs.warn (fun m ->
                  m
                    "engine: prefix %a oscillates (state repeated after %d \
                     events, cycle length %d); returning a partial, \
                     non-converged state"
                    Prefix.pp st.pfx st.events (st.events - e0))
          | None ->
              if Hashtbl.length history >= watchdog_history_cap then
                Hashtbl.reset history;
              Hashtbl.add history fp st.events;
              drain budget escalations_left
        else drain budget escalations_left
      end
  in
  drain budget escalations;
  Obs.Metrics.incr runs_m;
  Obs.Metrics.incr ~by:st.events events_m;
  if !escalated > 0 then Obs.Metrics.incr ~by:!escalated escalations_m;
  if !fingerprinted > 0 then
    Obs.Metrics.incr ~by:!fingerprinted fingerprints_m;
  (match st.outcome with
  | Converged -> ()
  | Truncated _ -> Obs.Metrics.incr truncated_m
  | Diverged _ -> Obs.Metrics.incr diverged_m);
  if Obs.Trace.enabled () then
    Obs.Trace.emit
      ~args:
        [
          ("prefix", Format.asprintf "%a" Prefix.pp st.pfx);
          ("kind", kind);
          ("outcome", Format.asprintf "%a" pp_outcome st.outcome);
          ("events", string_of_int st.events);
        ]
      ~name:"engine.simulate" ~ts_us:t0
      ~dur_us:(Obs.Trace.now_us () - t0)
      ();
  st

(* Slab-install probe: a state slab is written by exactly one run; the
   object is named per (net, prefix) so two unordered runs of the same
   prefix — or a reader holding the previous state — surface as a
   race.  Name formatting only happens with a probe hook installed. *)
let state_obj net pfx =
  Format.asprintf "%s/state/%a" (Net.probe_name net) Prefix.pp pfx

let cold ?max_events ?max_escalations ?on_best_change net ~prefix:pfx
    ~originators =
  if Obs.Probe.enabled () then
    Obs.Probe.write ~obj:(state_obj net pfx) ~site:"engine.install-cold";
  let c = Net.csr net in
  let n = Net.Csr.node_count c in
  let st =
    {
      pfx;
      gen = Net.generation net;
      nodes = n;
      off = Net.Csr.off c;
      slab = Array.make (Net.Csr.slot_count c) Rattr.no_route;
      best = Array.make n Rattr.no_route;
      originates = Array.make n false;
      outcome = Converged;
      events = 0;
    }
  in
  List.iter (fun o -> st.originates.(o) <- true) originators;
  exec ?max_events ?max_escalations ?on_best_change net st ~kind:"cold"
    ~seed:(fun ~enqueue ~replay:_ -> List.iter enqueue originators)

let resumable net prev =
  converged prev
  && prev.gen = Net.generation net
  && prev.nodes = Net.node_count net

(* Precondition: [resumable net prev].  The flat layout makes the warm
   copy two [Array.copy] calls over contiguous arrays — no per-node
   copying. *)
let warm ?max_events ?max_escalations ?on_best_change net ~prev ~touched
    ~originators =
  if Obs.Probe.enabled () then begin
    let obj = state_obj net prev.pfx in
    Obs.Probe.read ~obj ~site:"engine.resume";
    Obs.Probe.write ~obj ~site:"engine.install-warm"
  end;
  let st =
    {
      pfx = prev.pfx;
      gen = prev.gen;
      nodes = prev.nodes;
      off = prev.off;
      slab = Array.copy prev.slab;
      best = Array.copy prev.best;
      originates = Array.copy prev.originates;
      outcome = Converged;
      events = 0;
    }
  in
  let n = st.nodes in
  (* Origination delta: nodes that gain or lose the originated route
     under the caller's [originators] set re-run their decision process
     from the warm state — a gained origination injects the route, a
     lost one withdraws it, and the delta propagates like any other
     best-route change.  Callers resuming with an unchanged originator
     set produce an empty delta, so the historical policy-only warm
     path is untouched. *)
  let now = Array.make n false in
  List.iter (fun o -> if o >= 0 && o < n then now.(o) <- true) originators;
  let origin_delta = ref [] in
  for u = n - 1 downto 0 do
    if now.(u) <> st.originates.(u) then begin
      st.originates.(u) <- now.(u);
      origin_delta := u :: !origin_delta
    end
  done;
  exec ?max_events ?max_escalations ?on_best_change net st ~kind:"warm"
    ~seed:(fun ~enqueue ~replay ->
      (* Replay every touched node's exports unconditionally: peers
         whose RIB-In changes under the new policy enqueue themselves;
         the touched node itself re-runs its decision process whenever
         a replayed import disturbs it.  An unchanged advertisement is
         suppressed by [same_route], so a no-op policy edit costs one
         event and drains immediately. *)
      List.iter enqueue !origin_delta;
      List.iter (fun u -> if u >= 0 && u < n then replay u) touched)

let simulate ?max_events ?max_escalations ?on_best_change ?from ?touched net
    ~prefix:pfx ~originators =
  match from with
  | Some prev when resumable net prev && prev.pfx = pfx ->
      Obs.Metrics.incr resume_hits_m;
      let touched =
        match touched with Some t -> t | None -> Net.touched_nodes net pfx
      in
      warm ?max_events ?max_escalations ?on_best_change net ~prev ~touched
        ~originators
  | _ ->
      (match from with
      | Some _ -> Obs.Metrics.incr resume_misses_m
      | None -> ());
      cold ?max_events ?max_escalations ?on_best_change net ~prefix:pfx
        ~originators

let originating st =
  let acc = ref [] in
  for u = Array.length st.originates - 1 downto 0 do
    if st.originates.(u) then acc := u :: !acc
  done;
  !acc

let best_full_path net st n =
  match best st n with
  | None -> None
  | Some r -> Some (Rattr.full_path ~own_as:(Net.asn_of net n) r)

let selected_paths net st asn =
  let paths =
    List.filter_map (fun n -> best_full_path net st n) (Net.nodes_of_as net asn)
  in
  List.sort_uniq Stdlib.compare paths
