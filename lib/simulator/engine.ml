open Bgp

type state = {
  pfx : Prefix.t;
  rib_in : Rattr.t option array array;  (* node -> session index -> route *)
  best : Rattr.t option array;
  originates : bool array;
  mutable converged : bool;
  mutable events : int;
}

let prefix st = st.pfx

let converged st = st.converged

let events st = st.events

(* Nodes created after a run (the refiner's duplicates) have no state
   yet: report them as empty rather than out of bounds. *)
let best st n = if n >= Array.length st.best then None else st.best.(n)

let rib_in st n =
  if n >= Array.length st.rib_in then []
  else
  let slots = st.rib_in.(n) in
  let acc = ref [] in
  for i = Array.length slots - 1 downto 0 do
    match slots.(i) with Some r -> acc := (i, r) :: !acc | None -> ()
  done;
  !acc

let candidates st net n =
  let own =
    if n < Array.length st.originates && st.originates.(n) then
      [ Rattr.originated ~own_ip:(Ipv4.to_int (Net.ip_of net n)) ]
    else []
  in
  own @ List.map snd (rib_in st n)

(* What node [n] advertises over session [s] (described by [si]) given
   its best route; [None] means withdraw.  [ebgp_path] is the
   own-AS-prepended path, computed once per best change. *)
let compute_export net st n s (si : Net.session_info) best ~ebgp_path =
  match best with
  | None -> None
  | Some (r : Rattr.t) ->
      if r.Rattr.from_node = si.Net.si_peer then None
      else if
        si.Net.si_kind = Net.Ibgp
        && r.Rattr.learned = Rattr.From_ibgp
        && not
             (* RFC 4456 route reflection: an iBGP-learned route is
                re-advertised over iBGP to clients always, and to
                non-clients when it was learned from a client. *)
             (si.Net.si_rr_client
             || (r.Rattr.from_session >= 0 && Net.rr_client net n r.Rattr.from_session))
      then None
      else if Net.export_denied net n s st.pfx then None
      else if
        si.Net.si_kind = Net.Ebgp
        && not
             (Net.export_matrix net ~learned_class:r.Rattr.learned_class
                ~to_class:si.Net.si_class)
      then None
      else
        let path =
          match si.Net.si_kind with
          | Net.Ebgp -> ebgp_path
          | Net.Ibgp -> r.Rattr.path
        in
        Some (path, r)

(* Import processing at [peer] for an advertisement from [n] over the
   peer-side session [ps] (described by [ri]). *)
let import net st ~sender:n ~sender_ip ~peer ~peer_as ~peer_session:ps
    (ri : Net.session_info) adv =
  match adv with
  | None -> None
  | Some (path, (orig : Rattr.t)) -> (
      match ri.Net.si_kind with
      | Net.Ebgp ->
          if Array.exists (fun a -> a = peer_as) path then None
          else
            let lpref =
              match Net.import_lpref_for net peer ps st.pfx with
              | Some v -> v
              | None ->
                  if ri.Net.si_carry then orig.Rattr.lpref
                  else match ri.Net.si_lpref with Some v -> v | None -> 100
            in
            let med =
              match Net.session_med net peer ps st.pfx with
              | Some v -> v
              | None -> Net.default_med net
            in
            Some
              {
                Rattr.path;
                lpref;
                med;
                igp = 0;
                from_node = n;
                from_ip = sender_ip;
                from_session = ps;
                learned = Rattr.From_ebgp;
                learned_class = ri.Net.si_class;
              }
      | Net.Ibgp ->
          (* LOCAL_PREF and MED travel unchanged inside the AS; the IGP
             cost to the egress (the announcing router) implements
             hot-potato ranking. *)
          Some
            {
              Rattr.path;
              lpref = orig.Rattr.lpref;
              med = orig.Rattr.med;
              igp = Net.igp_cost net peer n;
              from_node = n;
              from_ip = sender_ip;
              from_session = ps;
              learned = Rattr.From_ibgp;
              learned_class = ri.Net.si_class;
            })

let run ?max_events ?on_best_change net ~prefix:pfx ~originators =
  let n = Net.node_count net in
  let st =
    {
      pfx;
      rib_in = Array.init n (fun i -> Array.make (Net.session_count_of net i) None);
      best = Array.make n None;
      originates = Array.make n false;
      converged = true;
      events = 0;
    }
  in
  List.iter (fun o -> st.originates.(o) <- true) originators;
  let budget =
    match max_events with Some b -> b | None -> 1000 + (200 * n)
  in
  let queue = Queue.create () in
  let queued = Array.make n false in
  let enqueue u =
    if not queued.(u) then begin
      queued.(u) <- true;
      Queue.push u queue
    end
  in
  List.iter enqueue originators;
  let steps = Net.decision_steps net in
  let med_scope = Net.med_scope net in
  (* Neighbour-scoped MED (RFC 4271 §9.1.2.2) is not a total order over
     candidates, so the pairwise-minimum fast path below would be wrong
     for it: run the real elimination process instead. *)
  let scoped_med =
    med_scope = Decision.Same_neighbor && List.mem Decision.Med steps
  in
  let recompute_best_scoped u =
    let acc = ref [] in
    let slots = st.rib_in.(u) in
    for i = Array.length slots - 1 downto 0 do
      match slots.(i) with Some r -> acc := r :: !acc | None -> ()
    done;
    let candidates =
      if st.originates.(u) then
        Rattr.originated ~own_ip:(Ipv4.to_int (Net.ip_of net u)) :: !acc
      else !acc
    in
    Decision.select ~med_scope steps candidates
  in
  (* Allocation-free best computation: the elimination process equals
     the lexicographic minimum under Decision.compare_routes, first in
     RIB-In order winning ties. *)
  let recompute_best u =
    if scoped_med then recompute_best_scoped u
    else begin
      let best = ref None in
      if st.originates.(u) then
        best := Some (Rattr.originated ~own_ip:(Ipv4.to_int (Net.ip_of net u)));
      let slots = st.rib_in.(u) in
      for i = 0 to Array.length slots - 1 do
        match slots.(i) with
        | None -> ()
        | Some r -> (
            match !best with
            | None -> best := Some r
            | Some b ->
                if Decision.compare_routes steps r b < 0 then best := Some r)
      done;
      !best
    end
  in
  let process u =
    st.events <- st.events + 1;
    let best' = recompute_best u in
    if not (Rattr.same_advertisement st.best.(u) best') then begin
      st.best.(u) <- best';
      (match on_best_change with Some f -> f u best' | None -> ());
      let ebgp_path =
        match best' with
        | None -> [||]
        | Some r ->
            let own = Net.asn_of net u in
            let len = Array.length r.Rattr.path in
            let out = Array.make (len + 1) own in
            Array.blit r.Rattr.path 0 out 1 len;
            out
      in
      let own_ip = Ipv4.to_int (Net.ip_of net u) in
      Net.iter_sessions net u (fun s _peer ->
          let si = Net.session_info net u s in
          let peer = si.Net.si_peer in
          let adv = compute_export net st u s si best' ~ebgp_path in
          let ps = si.Net.si_reverse in
          let ri = Net.session_info net peer ps in
          let imported =
            import net st ~sender:u ~sender_ip:own_ip ~peer
              ~peer_as:(Net.asn_of net peer) ~peer_session:ps ri adv
          in
          if not (Rattr.same_advertisement st.rib_in.(peer).(ps) imported)
          then begin
            st.rib_in.(peer).(ps) <- imported;
            enqueue peer
          end)
    end
  in
  let rec drain () =
    if not (Queue.is_empty queue) then
      if st.events >= budget then begin
        st.converged <- false;
        Logs.warn (fun m ->
            m
              "engine: prefix %a hit its event budget (%d events, budget %d); \
               returning a partial, non-converged state"
              Prefix.pp st.pfx st.events budget)
      end
      else begin
        let u = Queue.pop queue in
        queued.(u) <- false;
        process u;
        drain ()
      end
  in
  drain ();
  st

let best_full_path net st n =
  match best st n with
  | None -> None
  | Some r -> Some (Rattr.full_path ~own_as:(Net.asn_of net n) r)

let selected_paths net st asn =
  let paths =
    List.filter_map (fun n -> best_full_path net st n) (Net.nodes_of_as net asn)
  in
  List.sort_uniq Stdlib.compare paths
