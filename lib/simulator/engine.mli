(** Per-prefix route propagation to convergence.

    Like C-BGP (paper §2, §4.1), the engine computes the steady state of
    BGP for one prefix at a time: originators inject the route, nodes
    apply import policies, run the decision process and re-export their
    best route until no announcement changes anything.  The result gives
    access to every node's RIB-In and best route, which is exactly what
    the matching metrics of §4.2 inspect. *)

open Bgp

type state

type outcome =
  | Converged  (** the event queue drained: a true steady state. *)
  | Truncated of { events : int; budget : int }
      (** the event budget (after any escalations) ran out with work
          still queued; [events] node activations were performed against
          a final budget of [budget].  The state is partial. *)
  | Diverged of { cycle_len : int }
      (** the watchdog saw the exact full state (RIBs, best routes,
          event queue) repeat with work still queued — a genuine policy
          oscillation, since the transition function is deterministic.
          [cycle_len] is the number of events between the repeats. *)

val simulate :
  ?max_events:int ->
  ?max_escalations:int ->
  ?on_best_change:(int -> Rattr.t option -> unit) ->
  ?from:state ->
  ?touched:int list ->
  Net.t ->
  prefix:Prefix.t ->
  originators:int list ->
  state
(** The single simulation entry point.  Simulate [prefix] to
    convergence on [net], starting cold from [originators] — or, when
    [from] is a {!resumable} previous state of the {e same} prefix,
    warm: the previous converged state is copied and only the exports
    of the [touched] nodes (default {!Net.touched_nodes}) are
    replayed.  A warm resume also honours origination changes: nodes
    present in [originators] but not originating in [from] (and vice
    versa) have their flag flipped and their decision process re-run,
    so announce / withdraw / MOAS events replay incrementally without
    a cold rebuild.  A non-resumable or wrong-prefix [from] silently
    falls back to a cold start (counted in the
    [engine.warm_resume_misses] metric), so callers can pass their
    cache slot unconditionally.

    [max_events] (default [1000 + 200 * node_count]) bounds node
    activations.  When the budget runs out with work still queued, the
    run is retried with an escalating budget (×2 then ×4) up to
    [max_escalations] times before the state is declared {!Truncated};
    [max_escalations] defaults to 2 for the heuristic default budget
    and to 0 when [max_events] is given explicitly (an explicit cap is
    a caller decision — tests and budget experiments rely on it being
    exact).  A convergence watchdog arms once half the initial budget
    is spent and declares {!Diverged} as soon as the full simulation
    state repeats, cutting genuine oscillations short instead of
    burning escalated budgets.  [on_best_change node best] is a trace
    hook, called whenever a node adopts a new best route.  When
    {!Faultinject} is enabled in [Full] scope, chosen prefixes have
    their initial budget shrunk to 1. *)

val resumable : Net.t -> state -> bool
(** Can a previous run of this prefix seed a warm restart on [net]?
    True when the state converged, was computed at the network's
    current {!Net.generation} (no structural or network-wide change
    since), and covers every node.  {!simulate} applies this check to
    its [from] argument; exposed so callers can predict whether a
    warm resume will hit. *)

val state_fingerprint : state -> int
(** Full-width hash of the routing content (best routes and RIB-Ins,
    no event-queue component): equal final states hash equally however
    they were reached.  The warm-vs-cold verification key. *)

val same_state : state -> state -> bool
(** Structural equality of routing content: same prefix, same per-node
    best routes and RIB-Ins ({!Rattr.same_advertisement} slot by
    slot). *)

val prefix : state -> Prefix.t

val generation : state -> int
(** The {!Net.generation} the state was computed at — the warm-resume
    gate, exposed so [Analysis.Audit] can cross-check a state against
    the live net before comparing offsets. *)

val outcome : state -> outcome

val pp_outcome : Format.formatter -> outcome -> unit

val converged : state -> bool
(** [converged st] is [outcome st = Converged]. *)

val events : state -> int
(** Node activations performed. *)

val best : state -> int -> Rattr.t option
(** The node's selected route ([None]: no route). *)

val originating : state -> int list
(** The nodes that originated the prefix in this run, ascending — the
    [originators] the state was computed with (including any warm-resume
    origination delta).  Lets a cache rebuild its originator table from
    stored states. *)

val rib_in : state -> int -> (int * Rattr.t) list
(** [(session_index, route)] for every session currently delivering a
    route to the node, in session order. *)

val candidates : state -> Net.t -> int -> Rattr.t list
(** The decision-process input at a node: originated route (if the node
    originates the prefix) followed by the RIB-In routes. *)

val iter_candidates : state -> Net.t -> int -> (Rattr.t -> unit) -> unit
(** Visit the node's candidates in {!candidates} order without building
    a list — the allocation-free traversal the hot analysis paths use. *)

val fold_candidates :
  state -> Net.t -> int -> init:'a -> f:('a -> Rattr.t -> 'a) -> 'a
(** Fold over the node's candidates in {!candidates} order. *)

val best_full_path : Net.t -> state -> int -> int array option
(** The node's selected AS-level path including its own AS — directly
    comparable with an observed AS-path. *)

val selected_paths : Net.t -> state -> Asn.t -> int array list
(** All distinct full paths selected by the nodes of an AS (what the AS
    as a whole propagates — the model's answer to "which routes does
    this AS use for this prefix"). *)
