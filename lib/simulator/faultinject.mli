(** Deterministic fault injection for the simulation pipeline.

    Production routing software treats per-flow failures as data, not as
    process death; proving that this pipeline does the same needs a way
    to {e cause} failures on demand, repeatably.  This module decides —
    from a seed and a rate, never from wall-clock state — which pool
    task indices throw and which prefixes get their engine event budget
    shrunk, so that a faulted run is reproducible bit for bit and a run
    with faults disabled is exactly the un-instrumented pipeline.

    Two injection scopes exist:

    - [Transient]: chosen task indices throw {!Injected} on their first
      attempt only; the pool's sequential retry then succeeds, so the
      final results are {e provably identical} to an un-faulted run
      while the recovery machinery is exercised.  This is the scope the
      [RD_FAULTS] environment knob enables, safe to leave on under a
      full test suite (CI does).
    - [Full]: additionally, a smaller set of task indices fails on the
      retry as well (permanent task loss), and chosen prefixes have
      their engine budget shrunk to force [Truncated] outcomes — the
      quarantine paths downstream.  Results differ from the clean run by
      design; the bench [FAULT] section and dedicated tests use this.

    Knob syntax (environment variable [RD_FAULTS] or the CLI/bench
    [--faults] flag): [RATE:SEED] for transient scope,
    [RATE:SEED:full] for full scope, [0], [off] or the empty string to
    disable.  Example: [RD_FAULTS=0.05:42]. *)

type scope = Runtime.Fault.scope =
  | Transient  (** first-attempt task throws only; retry recovers. *)
  | Full  (** + permanent task failures and shrunk engine budgets. *)

type t = Runtime.Fault.t = { rate : float; seed : int; scope : scope }

exception Injected of int
(** Raised by wrapped tasks; the payload is the input index. *)

val parse : string -> (t option, string) result
(** Parse knob syntax; [Ok None] means explicitly disabled. *)

val set : t option -> unit
(** Delegates to {!Runtime.set_faults} (CLI flag, tests, bench). *)

val current : unit -> t option
(** Delegates to {!Runtime.faults}: the last value set via either API,
    else the [RD_FAULTS] environment variable.  [None] when disabled
    (the default) — every hook below is then the identity. *)

val enabled : unit -> bool

val wrap_tasks : n:int -> ('a -> 'b) -> int -> 'a -> 'b
(** [wrap_tasks ~n f] instruments a pool task function for a batch of
    [n] inputs under the ambient configuration: chosen indices raise
    {!Injected} on their first call (and, for a [rate/4] sub-population
    in [Full] scope, on every call).  With faults disabled this is
    [fun _ x -> f x].  The returned closure owns per-batch first-attempt
    state: build one per batch, and apply it to a given index from one
    domain at a time (the pool's disjoint slots guarantee this). *)

val shrink_budget : key:int -> int -> int
(** [shrink_budget ~key budget] is [1] when [key] (a deterministic
    hash, e.g. of the prefix) is chosen under [Full] scope — small
    enough that the engine's escalation (x2, x4) still truncates any
    real workload — and [budget] otherwise. *)

val pp : Format.formatter -> t -> unit
