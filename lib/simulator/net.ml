open Bgp

type session_kind = Ebgp | Ibgp

let class_none = 0

(* Minimal growable vector; nodes and sessions are append-only. *)
module Vec = struct
  type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

  let create dummy = { data = Array.make 8 dummy; len = 0; dummy }

  let length v = v.len

  let get v i =
    if i < 0 || i >= v.len then invalid_arg "Vec.get" else v.data.(i)

  let push v x =
    if v.len = Array.length v.data then begin
      let data = Array.make (2 * v.len) v.dummy in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1;
    v.len - 1

  let iteri f v =
    for i = 0 to v.len - 1 do
      f i v.data.(i)
    done
end

type session = {
  peer : int;
  mutable peer_session : int;
  kind : session_kind;
  s_class : int;
  mutable lpref_in : int option;
  mutable carry_lpref : bool;
  mutable rr_client : bool;
  med_in : int Prefix.Table.t;
  lpref_in_pfx : int Prefix.Table.t;
  deny_out : unit Prefix.Table.t;
}

type node = { asn : Asn.t; ip : Ipv4.t; sessions : session Vec.t }

(* Frozen CSR-style session index.  [c_off] maps a node to its first
   half-session slot (length node_count + 1, so a node's slots are
   [c_off.(n) .. c_off.(n+1) - 1]); every other array is indexed by
   slot.  The index is immutable once built and keyed on the generation
   counter, so the engine's hot path walks flat int arrays instead of
   chasing node records, session Vecs and option fields.  [c_sess]
   keeps the session records themselves for per-prefix policy-table
   lookups — those tables mutate in place without a generation bump, so
   going through the record keeps the index valid across per-prefix
   policy edits. *)
type csr = {
  c_gen : int;
  c_off : int array;
  c_peer : int array;  (* slot -> peer node id *)
  c_rev : int array;  (* slot -> slot of the mirror half-session; -1 if none *)
  c_revloc : int array;  (* slot -> peer-local index of the mirror *)
  c_kind : int array;  (* 0 = eBGP, 1 = iBGP *)
  c_class : int array;
  c_lpref : int array;  (* import LOCAL_PREF; [min_int] = unset *)
  c_carry : int array;  (* 0/1 *)
  c_rr : int array;  (* 0/1 *)
  c_asn : int array;  (* node -> ASN *)
  c_ip : int array;  (* node -> numeric router address *)
  c_sess : session array;
}

type t = {
  uid : int;  (* process-unique; names the Obs.Probe shared objects *)
  o_structure : string;  (* probe object: nodes/sessions/global knobs *)
  o_policy : string;  (* probe object: per-prefix policy tables *)
  o_csr : string;  (* probe object: the csr_cache Atomic (benign) *)
  nodes : node Vec.t;
  by_as : (Asn.t, int list ref) Hashtbl.t;  (* node ids, reverse order *)
  mutable export_ok : learned_class:int -> to_class:int -> bool;
  mutable igp : int -> int -> int;
  mutable med_default : int;
  mutable steps : Decision.step list;
  mutable m_scope : Decision.med_scope;
  mutable nsessions : int;  (* directed half-sessions *)
  (* Change tracking for warm-start re-simulation (Engine.simulate ?from):
     [generation] counts structural or network-wide mutations (nodes,
     sessions, global knobs) — any bump invalidates every prior state;
     [touched] records, per prefix, the nodes whose per-prefix policy
     changed since the set was last drained — the frontier a resumed
     run replays. *)
  mutable generation : int;
  touched : (int, unit) Hashtbl.t Prefix.Table.t;
  (* Lazily built structural index, invalidated by generation mismatch.
     An [Atomic] because Pool workers may race to build it: the value is
     immutable and any winner is equivalent, so the race is benign. *)
  csr_cache : csr option Atomic.t;
}

let dummy_session =
  {
    peer = -1;
    peer_session = -1;
    kind = Ebgp;
    s_class = class_none;
    lpref_in = None;
    carry_lpref = false;
    rr_client = false;
    med_in = Prefix.Table.create 1;
    lpref_in_pfx = Prefix.Table.create 1;
    deny_out = Prefix.Table.create 1;
  }

let dummy_node =
  { asn = 0; ip = Ipv4.of_int 0; sessions = Vec.create dummy_session }

let next_uid = Atomic.make 0

let create () =
  let uid = Atomic.fetch_and_add next_uid 1 in
  {
    uid;
    o_structure = Printf.sprintf "net#%d/structure" uid;
    o_policy = Printf.sprintf "net#%d/policy" uid;
    o_csr = Printf.sprintf "net#%d/csr" uid;
    nodes = Vec.create dummy_node;
    by_as = Hashtbl.create 256;
    export_ok = (fun ~learned_class:_ ~to_class:_ -> true);
    igp = (fun _ _ -> 0);
    med_default = 100;
    steps = Decision.model_steps;
    m_scope = Decision.Always_compare;
    nsessions = 0;
    generation = 0;
    touched = Prefix.Table.create 64;
    csr_cache = Atomic.make None;
  }

let generation t = t.generation

(* Mutation instrumentation for the Analysis subsystem.  The hook is a
   single global ref so that the RD_CHECK=off cost at every mutator is
   one load and a branch — no allocation, no indirect call.  Structural
   events fire after the generation bump and carry the post-bump value;
   policy events carry the same node the touched-set bookkeeping
   recorded, so a checker can audit both invariants. *)
type mutation =
  | Structural of { rule : string; generation : int }
  | Policy of { rule : string; prefix : Prefix.t; node : int }

let mutation_hook : (t -> mutation -> unit) option ref = ref None

let set_mutation_hook h = mutation_hook := h

let bump_generation t = t.generation <- t.generation + 1

let notify_structural t rule =
  Obs.Probe.write ~obj:t.o_structure ~site:rule;
  match !mutation_hook with
  | None -> ()
  | Some f -> f t (Structural { rule; generation = t.generation })

let notify_policy t rule p node =
  Obs.Probe.write ~obj:t.o_policy ~site:rule;
  match !mutation_hook with
  | None -> ()
  | Some f -> f t (Policy { rule; prefix = p; node })

(* Read-side probes: the engine (and any other reader that walks the
   structure or the policy tables for a whole run) records one read
   per object per run, so a mutation that is not ordered after the
   run by a Pool join or executor hand-off surfaces as a race. *)
let probe_read t ~site =
  Obs.Probe.read ~obj:t.o_structure ~site;
  Obs.Probe.read ~obj:t.o_policy ~site

let probe_name t = Printf.sprintf "net#%d" t.uid

let note_touched t p n =
  let set =
    match Prefix.Table.find_opt t.touched p with
    | Some set -> set
    | None ->
        let set = Hashtbl.create 8 in
        Prefix.Table.add t.touched p set;
        set
  in
  Hashtbl.replace set n ()

let touched_nodes t p =
  match Prefix.Table.find_opt t.touched p with
  | None -> []
  | Some set ->
      (* Sorted so warm replay order — and hence event order — is
         deterministic regardless of hash-table iteration order. *)
      Hashtbl.fold (fun n () acc -> n :: acc) set []
      |> List.sort_uniq compare

let clear_touched t p = Prefix.Table.remove t.touched p

let add_node t ~asn ~ip =
  bump_generation t;
  let id =
    Vec.push t.nodes { asn; ip; sessions = Vec.create dummy_session }
  in
  (match Hashtbl.find_opt t.by_as asn with
  | Some l -> l := id :: !l
  | None -> Hashtbl.add t.by_as asn (ref [ id ]));
  notify_structural t "add-node";
  id

let node_count t = Vec.length t.nodes

let session_count t = t.nsessions

let node t n = Vec.get t.nodes n

let asn_of t n = (node t n).asn

let ip_of t n = (node t n).ip

let nodes_of_as t asn =
  match Hashtbl.find_opt t.by_as asn with
  | Some l -> List.rev !l
  | None -> []

let find_session t a b =
  let na = node t a in
  let found = ref None in
  Vec.iteri (fun i s -> if s.peer = b && !found = None then found := Some i)
    na.sessions;
  !found

let fresh_session ~peer ~kind ~s_class =
  {
    peer;
    peer_session = -1;
    kind;
    s_class;
    lpref_in = None;
    carry_lpref = false;
    rr_client = false;
    med_in = Prefix.Table.create 4;
    lpref_in_pfx = Prefix.Table.create 4;
    deny_out = Prefix.Table.create 4;
  }

let connect ?(kind = Ebgp) ?(class_ab = class_none) ?(class_ba = class_none) t
    a b =
  if a = b then invalid_arg "Net.connect: self session";
  if find_session t a b <> None then
    invalid_arg "Net.connect: session already exists";
  bump_generation t;
  let sa = fresh_session ~peer:b ~kind ~s_class:class_ab in
  let sb = fresh_session ~peer:a ~kind ~s_class:class_ba in
  let ia = Vec.push (node t a).sessions sa in
  let ib = Vec.push (node t b).sessions sb in
  sa.peer_session <- ib;
  sb.peer_session <- ia;
  t.nsessions <- t.nsessions + 2;
  notify_structural t "connect";
  (ia, ib)

let sessions_of t n =
  let acc = ref [] in
  Vec.iteri (fun i s -> acc := (i, s.peer) :: !acc) (node t n).sessions;
  List.rev !acc

let build_csr t =
  let n = Vec.length t.nodes in
  let off = Array.make (n + 1) 0 in
  let total = ref 0 in
  for u = 0 to n - 1 do
    off.(u) <- !total;
    total := !total + Vec.length (Vec.get t.nodes u).sessions
  done;
  off.(n) <- !total;
  let total = !total in
  let peer = Array.make total (-1) in
  let rev = Array.make total (-1) in
  let revloc = Array.make total (-1) in
  let kind = Array.make total 0 in
  let cls = Array.make total class_none in
  let lpref = Array.make total min_int in
  let carry = Array.make total 0 in
  let rr = Array.make total 0 in
  let sess = Array.make total dummy_session in
  let asn = Array.make n 0 in
  let ip = Array.make n 0 in
  for u = 0 to n - 1 do
    let nd = Vec.get t.nodes u in
    asn.(u) <- nd.asn;
    ip.(u) <- Ipv4.to_int nd.ip;
    let base = off.(u) in
    Vec.iteri
      (fun s ss ->
        let k = base + s in
        peer.(k) <- ss.peer;
        revloc.(k) <- ss.peer_session;
        (* A corrupted net (Unsafe) can dangle: guard the global slot so
           the index stays constructible for the lint to inspect. *)
        rev.(k) <-
          (if ss.peer >= 0 && ss.peer < n && ss.peer_session >= 0 then
             off.(ss.peer) + ss.peer_session
           else -1);
        kind.(k) <- (match ss.kind with Ebgp -> 0 | Ibgp -> 1);
        cls.(k) <- ss.s_class;
        (match ss.lpref_in with Some v -> lpref.(k) <- v | None -> ());
        if ss.carry_lpref then carry.(k) <- 1;
        if ss.rr_client then rr.(k) <- 1;
        sess.(k) <- ss)
      nd.sessions
  done;
  {
    c_gen = t.generation;
    c_off = off;
    c_peer = peer;
    c_rev = rev;
    c_revloc = revloc;
    c_kind = kind;
    c_class = cls;
    c_lpref = lpref;
    c_carry = carry;
    c_rr = rr;
    c_asn = asn;
    c_ip = ip;
    c_sess = sess;
  }

let csr t =
  (* Both the cached-generation check and a rebuild read the live
     structure; the publish into the Atomic is the one declared benign
     race (immutable value, any winner equivalent) — it is probed as a
     write on the csr object so the detector sees it and the allowlist,
     not blindness, suppresses it. *)
  Obs.Probe.read ~obj:t.o_structure ~site:"net.csr";
  match Atomic.get t.csr_cache with
  | Some c when c.c_gen = t.generation -> c
  | _ ->
      let c = build_csr t in
      Obs.Probe.write ~obj:t.o_csr ~site:"net.csr-publish";
      Atomic.set t.csr_cache (Some c);
      c

(* A fresh index only when the cache is already valid: mutation-time
   callers (generators, the refiner between runs) must not trigger an
   O(nodes + sessions) rebuild per call. *)
let fresh_csr t =
  match Atomic.get t.csr_cache with
  | Some c when c.c_gen = t.generation -> Some c
  | _ -> None

module Csr = struct
  type nonrec t = csr

  let no_lpref = min_int

  let generation c = c.c_gen

  let node_count c = Array.length c.c_asn

  let slot_count c = Array.length c.c_peer

  let off c = c.c_off

  let peer c = c.c_peer

  let rev c = c.c_rev

  let reverse_local c = c.c_revloc

  let kinds c = c.c_kind

  let classes c = c.c_class

  let lprefs c = c.c_lpref

  let carries c = c.c_carry

  let rr_clients c = c.c_rr

  let asns c = c.c_asn

  let ips c = c.c_ip

  let slot_med c k p = Prefix.Table.find_opt c.c_sess.(k).med_in p

  let slot_import_lpref_for c k p =
    Prefix.Table.find_opt c.c_sess.(k).lpref_in_pfx p

  let slot_export_denied c k p = Prefix.Table.mem c.c_sess.(k).deny_out p
end

let iter_sessions t n f =
  match fresh_csr t with
  | Some c ->
      let base = c.c_off.(n) in
      for k = base to c.c_off.(n + 1) - 1 do
        f (k - base) c.c_peer.(k)
      done
  | None -> Vec.iteri (fun i s -> f i s.peer) (node t n).sessions

let session_count_of t n = Vec.length (node t n).sessions

let session t n s = Vec.get (node t n).sessions s

type session_info = {
  si_peer : int;
  si_reverse : int;
  si_kind : session_kind;
  si_class : int;
  si_lpref : int option;
  si_carry : bool;
  si_rr_client : bool;
}

let session_info t n s =
  match fresh_csr t with
  | Some c ->
      let k = c.c_off.(n) + s in
      {
        si_peer = c.c_peer.(k);
        si_reverse = c.c_revloc.(k);
        si_kind = (if c.c_kind.(k) = 1 then Ibgp else Ebgp);
        si_class = c.c_class.(k);
        si_lpref =
          (if c.c_lpref.(k) = min_int then None else Some c.c_lpref.(k));
        si_carry = c.c_carry.(k) = 1;
        si_rr_client = c.c_rr.(k) = 1;
      }
  | None ->
      let ss = session t n s in
      {
        si_peer = ss.peer;
        si_reverse = ss.peer_session;
        si_kind = ss.kind;
        si_class = ss.s_class;
        si_lpref = ss.lpref_in;
        si_carry = ss.carry_lpref;
        si_rr_client = ss.rr_client;
      }

let session_med t n s p = Prefix.Table.find_opt (session t n s).med_in p

let session_peer t n s = (session t n s).peer

let session_kind t n s = (session t n s).kind

let session_reverse t n s = (session t n s).peer_session

let session_class t n s = (session t n s).s_class

let set_import_lpref t n s v =
  bump_generation t;
  (session t n s).lpref_in <- Some v;
  notify_structural t "set-import-lpref"

let import_lpref t n s = (session t n s).lpref_in

let set_rr_client t n s v =
  bump_generation t;
  (session t n s).rr_client <- v;
  notify_structural t "set-rr-client"

let rr_client t n s = (session t n s).rr_client

let set_carry_lpref t n s v =
  bump_generation t;
  (session t n s).carry_lpref <- v;
  notify_structural t "set-carry-lpref"

let carry_lpref t n s = (session t n s).carry_lpref

(* Import-side policy changes are recorded against the *sender*: the
   receiver cannot re-derive the pre-policy advertisement from its
   RIB-In, so a warm restart replays the sending peer's exports and the
   import runs again under the new policy. *)
let set_import_lpref_for t n s p v =
  let ss = session t n s in
  note_touched t p ss.peer;
  Prefix.Table.replace ss.lpref_in_pfx p v;
  notify_policy t "set-import-lpref-for" p ss.peer

let clear_import_lpref_for t n s p =
  let ss = session t n s in
  note_touched t p ss.peer;
  Prefix.Table.remove ss.lpref_in_pfx p;
  notify_policy t "clear-import-lpref-for" p ss.peer

let import_lpref_for t n s p =
  Prefix.Table.find_opt (session t n s).lpref_in_pfx p

let set_import_med t n s p v =
  let ss = session t n s in
  note_touched t p ss.peer;
  Prefix.Table.replace ss.med_in p v;
  notify_policy t "set-import-med" p ss.peer

let clear_import_med t n s p =
  let ss = session t n s in
  note_touched t p ss.peer;
  Prefix.Table.remove ss.med_in p;
  notify_policy t "clear-import-med" p ss.peer

let import_med t n s p = Prefix.Table.find_opt (session t n s).med_in p

(* Export-side changes are re-evaluated at the exporting node itself. *)
let deny_export t n s p =
  note_touched t p n;
  Prefix.Table.replace (session t n s).deny_out p ();
  notify_policy t "deny-export" p n

let allow_export t n s p =
  note_touched t p n;
  Prefix.Table.remove (session t n s).deny_out p;
  notify_policy t "allow-export" p n

let export_denied t n s p = Prefix.Table.mem (session t n s).deny_out p

let fold_export_denies t f init =
  let acc = ref init in
  Vec.iteri
    (fun n nd ->
      Vec.iteri
        (fun si s -> Prefix.Table.iter (fun p () -> acc := f n si p !acc) s.deny_out)
        nd.sessions)
    t.nodes;
  !acc

let fold_import_meds t f init =
  let acc = ref init in
  Vec.iteri
    (fun n nd ->
      Vec.iteri
        (fun si s -> Prefix.Table.iter (fun p v -> acc := f n si p v !acc) s.med_in)
        nd.sessions)
    t.nodes;
  !acc

let fold_import_lprefs t f init =
  let acc = ref init in
  Vec.iteri
    (fun n nd ->
      Vec.iteri
        (fun si s ->
          Prefix.Table.iter (fun p v -> acc := f n si p v !acc) s.lpref_in_pfx)
        nd.sessions)
    t.nodes;
  !acc

let count_policies t =
  let denies = ref 0 and meds = ref 0 in
  Vec.iteri
    (fun _ nd ->
      Vec.iteri
        (fun _ s ->
          denies := !denies + Prefix.Table.length s.deny_out;
          meds := !meds + Prefix.Table.length s.med_in)
        nd.sessions)
    t.nodes;
  (!denies, !meds)

let set_export_matrix t f =
  bump_generation t;
  t.export_ok <- f;
  notify_structural t "set-export-matrix"

let export_matrix t ~learned_class ~to_class = t.export_ok ~learned_class ~to_class

let set_igp_cost t f =
  bump_generation t;
  t.igp <- f;
  notify_structural t "set-igp-cost"

let igp_cost t a b = t.igp a b

let set_default_med t v =
  bump_generation t;
  t.med_default <- v;
  notify_structural t "set-default-med"

let default_med t = t.med_default

let set_decision_steps t steps =
  bump_generation t;
  t.steps <- steps;
  notify_structural t "set-decision-steps"

let decision_steps t = t.steps

let set_med_scope t scope =
  bump_generation t;
  t.m_scope <- scope;
  notify_structural t "set-med-scope"

let med_scope t = t.m_scope

let copy_table src dst =
  Prefix.Table.reset dst;
  Prefix.Table.iter (fun p v -> Prefix.Table.replace dst p v) src

let duplicate_node t n =
  let orig = node t n in
  let idx = List.length (nodes_of_as t orig.asn) in
  let ip = Asn.router_ip orig.asn idx in
  let id = add_node t ~asn:orig.asn ~ip in
  let dup = node t id in
  Vec.iteri
    (fun _ s ->
      let peer_node = node t s.peer in
      let peer_half = Vec.get peer_node.sessions s.peer_session in
      (* Half-session at the duplicate, mirroring n's import/export
         policies toward this peer. *)
      let mine = fresh_session ~peer:s.peer ~kind:s.kind ~s_class:s.s_class in
      mine.lpref_in <- s.lpref_in;
      mine.carry_lpref <- s.carry_lpref;
      mine.rr_client <- s.rr_client;
      copy_table s.med_in mine.med_in;
      copy_table s.lpref_in_pfx mine.lpref_in_pfx;
      copy_table s.deny_out mine.deny_out;
      (* Half-session at the peer toward the duplicate, mirroring the
         peer's policies toward n (so the duplicate receives exactly the
         routes n receives — paper §4.6). *)
      let theirs =
        fresh_session ~peer:id ~kind:peer_half.kind ~s_class:peer_half.s_class
      in
      theirs.lpref_in <- peer_half.lpref_in;
      theirs.carry_lpref <- peer_half.carry_lpref;
      theirs.rr_client <- peer_half.rr_client;
      copy_table peer_half.med_in theirs.med_in;
      copy_table peer_half.lpref_in_pfx theirs.lpref_in_pfx;
      copy_table peer_half.deny_out theirs.deny_out;
      let im = Vec.push dup.sessions mine in
      let ip' = Vec.push peer_node.sessions theirs in
      mine.peer_session <- ip';
      theirs.peer_session <- im;
      t.nsessions <- t.nsessions + 2)
    orig.sessions;
  id

(* Deterministic digest of everything the simulation outcome depends
   on: nodes, sessions, session attributes and per-prefix policies.
   Per-prefix tables are folded order-independently (XOR of per-entry
   hashes) because hash-table iteration order is unspecified.  Two nets
   built by identical generator runs fingerprint identically. *)
let structure_fingerprint t =
  let h = ref 0x9e37 in
  let mix x = h := (!h * 1000003) lxor (x land max_int) in
  let c = csr t in
  mix (Vec.length t.nodes);
  mix t.nsessions;
  mix t.med_default;
  Array.iter mix c.c_asn;
  Array.iter mix c.c_ip;
  Array.iter mix c.c_off;
  Array.iter mix c.c_peer;
  Array.iter mix c.c_revloc;
  Array.iter mix c.c_kind;
  Array.iter mix c.c_class;
  Array.iter mix c.c_lpref;
  Array.iter mix c.c_carry;
  Array.iter mix c.c_rr;
  let acc = ref 0 in
  Array.iteri
    (fun k ss ->
      Prefix.Table.iter
        (fun p v -> acc := !acc lxor Hashtbl.hash (k, 0, p, v))
        ss.med_in;
      Prefix.Table.iter
        (fun p v -> acc := !acc lxor Hashtbl.hash (k, 1, p, v))
        ss.lpref_in_pfx;
      Prefix.Table.iter
        (fun p () -> acc := !acc lxor Hashtbl.hash (k, 2, p))
        ss.deny_out)
    c.c_sess;
  mix !acc;
  !h

let pp_summary ppf t =
  let denies, meds = count_policies t in
  Format.fprintf ppf "%d nodes, %d sessions, %d ASes, %d filters, %d med rules"
    (node_count t) (t.nsessions / 2) (Hashtbl.length t.by_as) denies meds

(* Deliberate invariant violations for the Analysis test suite.  Every
   safe constructor ([connect], [duplicate_node]) maintains session
   symmetry and AS membership, so the only way to exercise the lint's
   Error paths is to corrupt a net on purpose.  Generations are still
   bumped (a corrupted net must not warm-resume), but no mutation event
   fires — these are not real mutators. *)
module Unsafe = struct
  let push_half_session t n ~peer ?(kind = Ebgp) ?(s_class = class_none)
      ?(peer_session = -1) () =
    bump_generation t;
    let s = fresh_session ~peer ~kind ~s_class in
    s.peer_session <- peer_session;
    let i = Vec.push (node t n).sessions s in
    t.nsessions <- t.nsessions + 1;
    i

  let set_peer_session t n s v =
    bump_generation t;
    (session t n s).peer_session <- v

  let set_session_count t v =
    bump_generation t;
    t.nsessions <- v

  let detach_from_as t n =
    bump_generation t;
    match Hashtbl.find_opt t.by_as (asn_of t n) with
    | Some l -> l := List.filter (fun id -> id <> n) !l
    | None -> ()

  (* Seeded-race negative control: run [f t] on a freshly spawned
     domain with NO synchronization edge published to the probe layer
     — the Domain.join below really orders the mutation, but the
     detector is only told what the probes tell it, so a happens-before
     checker must flag the access and the ownership checker must see a
     second mutating domain.  A detector that stays silent here is
     broken. *)
  let from_foreign_domain t f = Domain.join (Domain.spawn (fun () -> f t))
end
