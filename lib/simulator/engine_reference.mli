(** The pre-flat-slab engine, frozen as a verification baseline.

    Behaviourally identical to the original {!Engine} before the flat
    route-slab rewrite, minus metrics and tracing.  The §SCALE bench
    and the QCheck equality test run this implementation against the
    flat engine on the same worlds: state fingerprints, outcomes and
    event counts must match exactly (warm and cold), and the flat
    engine must be strictly faster.  Not for production use — it exists
    so the comparison baseline can never drift along with the code
    under test. *)

open Bgp

type state

type outcome =
  | Converged
  | Truncated of { events : int; budget : int }
  | Diverged of { cycle_len : int }

val simulate :
  ?max_events:int ->
  ?max_escalations:int ->
  ?from:state ->
  ?touched:int list ->
  Net.t ->
  prefix:Prefix.t ->
  originators:int list ->
  state
(** Same contract as {!Engine.simulate} (cold start, or warm resume
    from a {!resumable} previous state of the same prefix). *)

val resumable : Net.t -> state -> bool

val state_fingerprint : state -> int
(** Same mixing scheme as {!Engine.state_fingerprint}: equal routing
    content gives equal fingerprints across the two engines. *)

val prefix : state -> Prefix.t

val outcome : state -> outcome

val converged : state -> bool

val events : state -> int

val best : state -> int -> Rattr.t option

val rib_in : state -> int -> (int * Rattr.t) list
