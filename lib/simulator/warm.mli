(** Warm-start re-simulation knob and counters.

    The refinement loop re-simulates every changed prefix each
    iteration; with warm starts on, a prefix whose network is
    structurally unchanged resumes from its previous converged state
    and drains only the policy deltas ({!Engine.simulate} with [from]) instead of
    re-flooding from the originators.  This module holds the
    process-wide mode — [RD_WARM] environment variable or the [--warm]
    flags — and the run counters the bench reports.

    Modes: [Off] always simulates cold; [On] resumes whenever a usable
    prior state exists (falling back to cold otherwise); [Verify] runs
    cold {e and} warm side by side, compares the final states, counts
    any divergence, and returns the cold result — the equivalence
    safety net CI runs. *)

type mode = Runtime.Warm_mode.t = Off | On | Verify

val parse : string -> (mode, string) result
(** Accepts [off]/[0], [on]/[1], [verify]. *)

val mode_to_string : mode -> string

val set : mode -> unit
(** Delegates to {!Runtime.set_warm} — there is one source of truth. *)

val current : unit -> mode
(** Delegates to {!Runtime.warm}: the last value set (via either API),
    else [RD_WARM], else [On]. *)

(** {2 Counters}

    Incremented from pool worker domains (atomics); reset per
    measurement with {!reset_stats}. *)

val note_warm : unit -> unit
(** A prefix was resumed from its prior state. *)

val note_cold : unit -> unit
(** A prefix was simulated from scratch (mode [Off], no usable prior
    state, or the cold half of a [Verify] pair). *)

val note_verified : unit -> unit
(** A cold/warm pair was compared. *)

val note_divergence : unit -> unit
(** A compared pair differed — a warm-start correctness violation. *)

type stats = {
  warm_runs : int;
  cold_runs : int;
  verified : int;
  divergences : int;
}

val stats : unit -> stats

val reset_stats : unit -> unit

val pp_stats : Format.formatter -> stats -> unit
