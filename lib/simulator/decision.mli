(** The BGP decision process (paper §2, Figure 1).

    The process is a sequence of elimination steps over the candidate
    routes of a node's RIB-In.  Each configuration lists its steps; the
    paper's quasi-router model uses
    [\[Local_pref; Path_length; Med; Lowest_ip\]] with always-compare
    MED, while the router-level ground truth additionally uses
    [Prefer_ebgp] and [Igp_cost] (hot-potato routing) and scopes MED
    comparison per neighbouring AS as RFC 4271 §9.1.2.2 requires. *)

type step =
  | Local_pref  (** keep the highest LOCAL_PREF *)
  | Path_length  (** keep the shortest AS-path *)
  | Med  (** keep the lowest MED; scope set by {!med_scope} *)
  | Prefer_ebgp  (** prefer eBGP-learned (and originated) over iBGP *)
  | Igp_cost  (** keep the lowest IGP cost to the egress (hot potato) *)
  | Lowest_ip  (** final tie-break: lowest announcing-router address *)

val step_to_string : step -> string

val model_steps : step list
(** The quasi-router model's process (paper §4.5–4.6). *)

val full_steps : step list
(** The complete router-level process used by the ground truth. *)

type med_scope =
  | Always_compare
      (** the paper's §4.6 MED {e ranking}: MED is compared between any
          two routes, regardless of which neighbour announced them.
          This deliberate deviation from the RFC is what makes the
          refiner's per-prefix MED rules a total ranking — keep it for
          {!model_steps}. *)
  | Same_neighbor
      (** RFC 4271 §9.1.2.2: MED is only comparable between routes
          learned from the same neighbouring AS (first AS of the path;
          originated routes form their own group).  The realistic
          {!full_steps} process must use this scope. *)

val survivors : ?med_scope:med_scope -> step -> Rattr.t list -> Rattr.t list
(** Candidates remaining after one elimination step (order preserved).
    [med_scope] (default {!Always_compare}) only affects the {!Med}
    step; under {!Same_neighbor} a candidate is eliminated exactly when
    another candidate from the same neighbouring AS has a strictly
    lower MED. *)

val compare_routes : step list -> Rattr.t -> Rattr.t -> int
(** Total preference order induced by the elimination steps under
    {!Always_compare} MED: negative when the first route wins.  Running
    elimination then equals taking the lexicographic minimum under this
    order (ties resolved by list order), which is what the engine's hot
    path does.  Under {!Same_neighbor} MED no such total order exists
    (pairwise MED preference is not transitive across neighbours), so
    the engine falls back to full elimination via {!select}. *)

val select : ?med_scope:med_scope -> step list -> Rattr.t list -> Rattr.t option
(** Run all steps and return the single best route ([None] on an empty
    candidate list).  If candidates remain tied after every step the
    first in list order wins — deterministic because RIB-In order is
    session order. *)

val select_into :
  ?med_scope:med_scope -> step list -> Rattr.t array -> keys:int array ->
  int -> Rattr.t option
(** [select_into steps buf ~keys m] is [select steps] over the
    candidates [buf.(0 .. m-1)] — same elimination, same tie-breaking —
    but runs in place over the caller's scratch buffers, destroying
    their contents and allocating nothing.  [keys] is int scratch of at
    least [m] entries used to cache per-step keys.  The engine's hot
    path under {!Same_neighbor} MED (where {!compare_routes} does not
    apply). *)

type verdict =
  | Selected  (** a target route is the best route *)
  | Eliminated_at of step  (** step at which the last target was dropped *)
  | Tied_not_chosen
      (** a target survived every step but lost the final in-order pick
          (only possible when two sessions share an announcing IP) *)
  | Not_present  (** no candidate satisfies the target predicate *)

val classify :
  ?med_scope:med_scope -> step list -> target:(Rattr.t -> bool) ->
  Rattr.t list -> verdict
(** Where in the elimination process the target route(s) die — the
    machinery behind the paper's "potential RIB-Out match" (eliminated
    exactly at {!Lowest_ip}) and the Table 2 disagreement breakdown. *)
