type mode = Runtime.Warm_mode.t = Off | On | Verify

let mode_to_string = Runtime.Warm_mode.to_string

let parse = Runtime.Warm_mode.parse

let set m = Runtime.set_warm m

let current () = Runtime.warm ()

(* Counters are atomics because the refiner's simulation closures run
   them from pool worker domains.  The local atomics carry the
   resettable per-measurement stats the bench prints; the metrics
   registry gets the same increments so `--metrics` snapshots and
   BENCH.json agree with them. *)
let warm_runs_c = Atomic.make 0

let cold_runs_c = Atomic.make 0

let verified_c = Atomic.make 0

let divergences_c = Atomic.make 0

let warm_runs_m = Obs.Metrics.counter "warm.resumed"

let cold_runs_m = Obs.Metrics.counter "warm.cold"

let verified_m = Obs.Metrics.counter "warm.verified"

let divergences_m = Obs.Metrics.counter "warm.divergences"

let note_warm () =
  Atomic.incr warm_runs_c;
  Obs.Metrics.incr warm_runs_m

let note_cold () =
  Atomic.incr cold_runs_c;
  Obs.Metrics.incr cold_runs_m

let note_verified () =
  Atomic.incr verified_c;
  Obs.Metrics.incr verified_m

let note_divergence () =
  Atomic.incr divergences_c;
  Obs.Metrics.incr divergences_m

type stats = {
  warm_runs : int;
  cold_runs : int;
  verified : int;
  divergences : int;
}

let stats () =
  {
    warm_runs = Atomic.get warm_runs_c;
    cold_runs = Atomic.get cold_runs_c;
    verified = Atomic.get verified_c;
    divergences = Atomic.get divergences_c;
  }

let reset_stats () =
  Atomic.set warm_runs_c 0;
  Atomic.set cold_runs_c 0;
  Atomic.set verified_c 0;
  Atomic.set divergences_c 0

let pp_stats ppf s =
  Format.fprintf ppf "%d warm, %d cold" s.warm_runs s.cold_runs;
  if s.verified > 0 then
    Format.fprintf ppf ", %d verified (%d divergences)" s.verified s.divergences
