type mode = Off | On | Verify

let mode_to_string = function Off -> "off" | On -> "on" | Verify -> "verify"

let parse s =
  match String.lowercase_ascii (String.trim s) with
  | "off" | "0" | "cold" -> Ok Off
  | "on" | "1" | "warm" -> Ok On
  | "verify" | "check" -> Ok Verify
  | other ->
      Error (Printf.sprintf "bad warm-start mode %S (want off|on|verify)" other)

let from_env () =
  match Sys.getenv_opt "RD_WARM" with
  | None -> On
  | Some s -> (
      match parse s with
      | Ok m -> m
      | Error msg ->
          Logs.warn (fun m -> m "ignoring RD_WARM: %s" msg);
          On)

let state : mode option ref = ref None

let set m = state := Some m

let current () =
  match !state with
  | Some m -> m
  | None ->
      let m = from_env () in
      state := Some m;
      m

(* Counters are atomics because the refiner's simulation closures run
   them from pool worker domains. *)
let warm_runs_c = Atomic.make 0

let cold_runs_c = Atomic.make 0

let verified_c = Atomic.make 0

let divergences_c = Atomic.make 0

let note_warm () = Atomic.incr warm_runs_c

let note_cold () = Atomic.incr cold_runs_c

let note_verified () = Atomic.incr verified_c

let note_divergence () = Atomic.incr divergences_c

type stats = {
  warm_runs : int;
  cold_runs : int;
  verified : int;
  divergences : int;
}

let stats () =
  {
    warm_runs = Atomic.get warm_runs_c;
    cold_runs = Atomic.get cold_runs_c;
    verified = Atomic.get verified_c;
    divergences = Atomic.get divergences_c;
  }

let reset_stats () =
  Atomic.set warm_runs_c 0;
  Atomic.set cold_runs_c 0;
  Atomic.set verified_c 0;
  Atomic.set divergences_c 0

let pp_stats ppf s =
  Format.fprintf ppf "%d warm, %d cold" s.warm_runs s.cold_runs;
  if s.verified > 0 then
    Format.fprintf ppf ", %d verified (%d divergences)" s.verified s.divergences
