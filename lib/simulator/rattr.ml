open Bgp

type learned = Originated | From_ebgp | From_ibgp

type t = {
  path : int array;
  lpref : int;
  med : int;
  igp : int;
  from_node : int;
  from_ip : int;
  from_session : int;
  learned : learned;
  learned_class : int;
}

let originated_lpref = 1_000_000

let originated ~own_ip =
  {
    path = [||];
    lpref = originated_lpref;
    med = 0;
    igp = 0;
    from_node = -1;
    from_ip = own_ip;
    from_session = -1;
    learned = Originated;
    learned_class = -1;
  }

let full_path ~own_as r =
  let n = Array.length r.path in
  let out = Array.make (n + 1) own_as in
  Array.blit r.path 0 out 1 n;
  out

(* Paths flowing through the engine are interned (Intern.path), so the
   physical check settles the common case without walking the array;
   the structural fallback keeps the comparison correct for arrays from
   other domains or built by callers directly. *)
let same_path (a : int array) b = a == b || a = b

let same_advertisement a b =
  match (a, b) with
  | None, None -> true
  | Some _, None | None, Some _ -> false
  | Some a, Some b ->
      a.from_node = b.from_node
      && same_path a.path b.path
      && a.lpref = b.lpref
      && a.med = b.med
      && a.igp = b.igp

let pp ~own_as ppf r =
  let path = full_path ~own_as r in
  Format.fprintf ppf "%a lpref=%d med=%d igp=%d from=%d" Aspath.pp
    (Aspath.of_array path) r.lpref r.med r.igp r.from_node
