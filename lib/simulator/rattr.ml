open Bgp

type learned = Originated | From_ebgp | From_ibgp

type t = {
  path : int array;
  lpref : int;
  med : int;
  igp : int;
  from_node : int;
  from_ip : int;
  from_session : int;
  learned : learned;
  learned_class : int;
}

let originated_lpref = 1_000_000

let originated ~own_ip =
  {
    path = [||];
    lpref = originated_lpref;
    med = 0;
    igp = 0;
    from_node = -1;
    from_ip = own_ip;
    from_session = -1;
    learned = Originated;
    learned_class = -1;
  }

(* Physical sentinel for flat route slabs: "no route in this slot"
   without an option box.  Identified by [==] only — its field values
   are deliberately absurd so an accidental structural use is visible,
   but nothing may ever compare it structurally. *)
let no_route =
  {
    path = [| -1 |];
    lpref = min_int;
    med = min_int;
    igp = min_int;
    from_node = min_int;
    from_ip = min_int;
    from_session = min_int;
    learned = Originated;
    learned_class = min_int;
  }

let is_route r = r != no_route

let full_path ~own_as r =
  let n = Array.length r.path in
  let out = Array.make (n + 1) own_as in
  Array.blit r.path 0 out 1 n;
  out

(* Paths flowing through the engine are interned (Intern.path), so the
   physical check settles the common case without walking the array;
   the structural fallback keeps the comparison correct for arrays from
   other domains or built by callers directly. *)
let same_path (a : int array) b = a == b || a = b

let same_advertisement a b =
  match (a, b) with
  | None, None -> true
  | Some _, None | None, Some _ -> false
  | Some a, Some b ->
      a.from_node = b.from_node
      && same_path a.path b.path
      && a.lpref = b.lpref
      && a.med = b.med
      && a.igp = b.igp

(* Sentinel-aware variant of [same_advertisement] for flat slabs:
   [no_route] plays the role of [None].  The physical check settles
   both the sentinel cases and interned routes re-derived in the same
   domain; the structural fallback (same fields as
   [same_advertisement]) covers routes from other domains. *)
let same_route a b =
  a == b
  || (is_route a && is_route b
     && a.from_node = b.from_node
     && same_path a.path b.path
     && a.lpref = b.lpref
     && a.med = b.med
     && a.igp = b.igp)

let pp ~own_as ppf r =
  let path = full_path ~own_as r in
  Format.fprintf ppf "%a lpref=%d med=%d igp=%d from=%d" Aspath.pp
    (Aspath.of_array path) r.lpref r.med r.igp r.from_node
