type scope = Transient | Full

type t = { rate : float; seed : int; scope : scope }

exception Injected of int

let () =
  Printexc.register_printer (function
    | Injected i -> Some (Printf.sprintf "Faultinject.Injected(task %d)" i)
    | _ -> None)

let parse s =
  match String.trim s with
  | "" | "0" | "off" -> Ok None
  | s -> (
      match String.split_on_char ':' s with
      | [ rate ] | [ rate; _ ] | [ rate; _; _ ]
        when float_of_string_opt rate = Some 0.0 ->
          Ok None
      | ([ rate; seed ] | [ rate; seed; _ ]) as fields -> (
          let scope =
            match fields with
            | [ _; _; "full" ] -> Ok Full
            | [ _; _ ] -> Ok Transient
            | [ _; _; other ] ->
                Error (Printf.sprintf "bad fault scope %S (want \"full\")" other)
            | _ -> assert false
          in
          match (float_of_string_opt rate, int_of_string_opt seed, scope) with
          | Some rate, Some seed, Ok scope when rate > 0.0 && rate <= 1.0 ->
              Ok (Some { rate; seed; scope })
          | Some _, Some _, (Ok _ as _ok) ->
              Error (Printf.sprintf "fault rate %S not in (0,1]" rate)
          | _, _, (Error _ as e) -> e
          | None, _, _ -> Error (Printf.sprintf "bad fault rate %S" rate)
          | _, None, _ -> Error (Printf.sprintf "bad fault seed %S" seed))
      | _ -> Error (Printf.sprintf "bad RD_FAULTS syntax %S (want RATE:SEED[:full])" s))

let from_env () =
  match Sys.getenv_opt "RD_FAULTS" with
  | None -> None
  | Some s -> (
      match parse s with
      | Ok t -> t
      | Error msg ->
          Logs.warn (fun m -> m "ignoring RD_FAULTS: %s" msg);
          None)

let state : t option option ref = ref None

let set t = state := Some t

let current () =
  match !state with
  | Some t -> t
  | None ->
      let t = from_env () in
      state := Some t;
      t

let enabled () = current () <> None

(* Streams keep the three decision kinds independent: the same seed and
   rate must not make every thrown task also a killed task. *)
let stream_throw = 0

let stream_kill = 1

let stream_shrink = 2

(* Deterministic in (seed, stream, key) only — no ambient RNG state, so
   a faulted run is reproducible regardless of scheduling, job count or
   call order. *)
let chosen t ~stream ~rate key =
  let st = Random.State.make [| t.seed; stream; key |] in
  Random.State.float st 1.0 < rate

let wrap_tasks ~n f =
  match current () with
  | None -> fun _ x -> f x
  | Some t ->
      let thrown = Array.make (max n 1) false in
      fun i x ->
        if
          t.scope = Full
          && chosen t ~stream:stream_kill ~rate:(t.rate /. 4.0) i
        then raise (Injected i)
        else if
          chosen t ~stream:stream_throw ~rate:t.rate i && not thrown.(i)
        then begin
          thrown.(i) <- true;
          raise (Injected i)
        end
        else f x

let shrink_budget ~key budget =
  match current () with
  | Some ({ scope = Full; _ } as t)
    when chosen t ~stream:stream_shrink ~rate:t.rate key ->
      1
  | Some _ | None -> budget

let pp ppf t =
  Format.fprintf ppf "rate %.3f, seed %d, %s" t.rate t.seed
    (match t.scope with Transient -> "transient" | Full -> "full")
