type scope = Runtime.Fault.scope = Transient | Full

type t = Runtime.Fault.t = { rate : float; seed : int; scope : scope }

exception Injected of int

let () =
  Printexc.register_printer (function
    | Injected i -> Some (Printf.sprintf "Faultinject.Injected(task %d)" i)
    | _ -> None)

let parse = Runtime.Fault.parse

let set t = Runtime.set_faults t

let current () = Runtime.faults ()

let enabled () = current () <> None

(* Streams keep the three decision kinds independent: the same seed and
   rate must not make every thrown task also a killed task. *)
let stream_throw = 0

let stream_kill = 1

let stream_shrink = 2

(* Deterministic in (seed, stream, key) only — no ambient RNG state, so
   a faulted run is reproducible regardless of scheduling, job count or
   call order. *)
let chosen t ~stream ~rate key =
  let st = Random.State.make [| t.seed; stream; key |] in
  Random.State.float st 1.0 < rate

let wrap_tasks ~n f =
  match current () with
  | None -> fun _ x -> f x
  | Some t ->
      let thrown = Array.make (max n 1) false in
      fun i x ->
        if
          t.scope = Full
          && chosen t ~stream:stream_kill ~rate:(t.rate /. 4.0) i
        then raise (Injected i)
        else if
          chosen t ~stream:stream_throw ~rate:t.rate i && not thrown.(i)
        then begin
          thrown.(i) <- true;
          raise (Injected i)
        end
        else f x

let shrink_budget ~key budget =
  match current () with
  | Some ({ scope = Full; _ } as t)
    when chosen t ~stream:stream_shrink ~rate:t.rate key ->
      1
  | Some _ | None -> budget

let pp = Runtime.Fault.pp
