type step = Local_pref | Path_length | Med | Prefer_ebgp | Igp_cost | Lowest_ip

let step_to_string = function
  | Local_pref -> "local-pref"
  | Path_length -> "as-path length"
  | Med -> "med"
  | Prefer_ebgp -> "prefer-ebgp"
  | Igp_cost -> "igp cost"
  | Lowest_ip -> "lowest neighbor IP"

let model_steps = [ Local_pref; Path_length; Med; Lowest_ip ]

let full_steps = [ Local_pref; Path_length; Med; Prefer_ebgp; Igp_cost; Lowest_ip ]

type med_scope = Always_compare | Same_neighbor

(* Keep candidates minimizing [key]; single pass to find the minimum,
   second to filter.  Order is preserved. *)
let keep_min key candidates =
  match candidates with
  | [] | [ _ ] -> candidates
  | first :: rest ->
      let best =
        List.fold_left (fun acc r -> min acc (key r)) (key first) rest
      in
      List.filter (fun r -> key r = best) candidates

(* The neighbouring AS a route was learned from; originated routes form
   their own group (RFC 4271 compares MED only between routes "received
   from the same neighboring AS"). *)
let neighbor_as (r : Rattr.t) =
  if Array.length r.Rattr.path = 0 then -1 else r.Rattr.path.(0)

(* RFC 4271 §9.1.2.2 MED: a candidate survives unless another candidate
   from the same neighbouring AS has a strictly lower MED.  Candidate
   lists are small (a node's RIB-In), so the quadratic scan is fine. *)
let med_survivors_scoped candidates =
  match candidates with
  | [] | [ _ ] -> candidates
  | _ ->
      List.filter
        (fun r ->
          not
            (List.exists
               (fun r' ->
                 neighbor_as r' = neighbor_as r && r'.Rattr.med < r.Rattr.med)
               candidates))
        candidates

let survivors ?(med_scope = Always_compare) step candidates =
  match step with
  | Local_pref -> keep_min (fun r -> -r.Rattr.lpref) candidates
  | Med -> (
      match med_scope with
      | Always_compare -> keep_min (fun r -> r.Rattr.med) candidates
      | Same_neighbor -> med_survivors_scoped candidates)
  | Path_length -> keep_min (fun r -> Array.length r.Rattr.path) candidates
  | Prefer_ebgp ->
      keep_min
        (fun r -> match r.Rattr.learned with From_ibgp -> 1 | Originated | From_ebgp -> 0)
        candidates
  | Igp_cost -> keep_min (fun r -> r.Rattr.igp) candidates
  | Lowest_ip -> keep_min (fun r -> r.Rattr.from_ip) candidates

let step_key step (r : Rattr.t) =
  match step with
  | Local_pref -> -r.Rattr.lpref
  | Path_length -> Array.length r.Rattr.path
  | Med -> r.Rattr.med
  | Prefer_ebgp -> (
      match r.Rattr.learned with From_ibgp -> 1 | Originated | From_ebgp -> 0)
  | Igp_cost -> r.Rattr.igp
  | Lowest_ip -> r.Rattr.from_ip

let compare_routes steps a b =
  let rec go = function
    | [] -> 0
    | step :: rest ->
        let c = Stdlib.compare (step_key step a) (step_key step b) in
        if c <> 0 then c else go rest
  in
  go steps

let select ?(med_scope = Always_compare) steps candidates =
  let rec run steps candidates =
    match (steps, candidates) with
    | _, [] -> None
    | _, [ r ] -> Some r
    | [], r :: _ -> Some r
    | step :: rest, candidates -> run rest (survivors ~med_scope step candidates)
  in
  run steps candidates

(* In-place counterpart of [survivors] for [select_into]: keep the
   entries of [buf.(0 .. m-1)] minimizing [step_key], compacted to the
   front, order preserved.  Returns the survivor count.  [keys] is
   caller-provided scratch so each candidate's key is computed once,
   not once per pass. *)
let keep_min_into step (buf : Rattr.t array) (keys : int array) m =
  let k0 = step_key step buf.(0) in
  keys.(0) <- k0;
  let best = ref k0 in
  for i = 1 to m - 1 do
    let k = step_key step buf.(i) in
    keys.(i) <- k;
    if k < !best then best := k
  done;
  let k = ref 0 in
  for i = 0 to m - 1 do
    if keys.(i) = !best then begin
      buf.(!k) <- buf.(i);
      incr k
    end
  done;
  !k

(* In-place scoped-MED survivors.  Checking dominance against the
   already-compacted survivors plus the untouched tail is equivalent to
   checking against the full original set: domination by an eliminated
   candidate implies domination by the minimum-MED survivor of the same
   neighbour group (strictly smaller MED, same group).  [keys] caches
   each candidate's neighbour AS so the quadratic scan reads ints; the
   compacted prefix keeps its entries aligned (writes land at [!k <= i],
   and the tail scan only reads positions [> i], still original). *)
let scoped_med_into (buf : Rattr.t array) (keys : int array) m =
  for i = 0 to m - 1 do
    keys.(i) <- neighbor_as buf.(i)
  done;
  let k = ref 0 in
  for i = 0 to m - 1 do
    let r = buf.(i) in
    let na = keys.(i) in
    let med = r.Rattr.med in
    let dominated = ref false in
    for j = 0 to !k - 1 do
      if keys.(j) = na && buf.(j).Rattr.med < med then dominated := true
    done;
    for j = i + 1 to m - 1 do
      if keys.(j) = na && buf.(j).Rattr.med < med then dominated := true
    done;
    if not !dominated then begin
      buf.(!k) <- r;
      keys.(!k) <- na;
      incr k
    end
  done;
  !k

let select_into ?(med_scope = Always_compare) steps (buf : Rattr.t array)
    ~(keys : int array) m =
  if m = 0 then None
  else begin
    let m = ref m in
    let steps = ref steps in
    while !m > 1 && !steps <> [] do
      match !steps with
      | [] -> ()
      | step :: rest ->
          steps := rest;
          m :=
            (match (step, med_scope) with
            | Med, Same_neighbor -> scoped_med_into buf keys !m
            | _ -> keep_min_into step buf keys !m)
    done;
    Some buf.(0)
  end

type verdict = Selected | Eliminated_at of step | Tied_not_chosen | Not_present

let classify ?(med_scope = Always_compare) steps ~target candidates =
  if not (List.exists target candidates) then Not_present
  else
    let rec run steps candidates =
      match steps with
      | [] -> (
          match candidates with
          | r :: _ when target r -> Selected
          | _ -> Tied_not_chosen)
      | step :: rest ->
          let remaining = survivors ~med_scope step candidates in
          if List.exists target remaining then run rest remaining
          else Eliminated_at step
    in
    run steps candidates
