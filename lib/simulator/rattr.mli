(** Routes as the simulation engine sees them.

    A route held by a node records the AS-level path {e excluding} the
    node's own AS (the first element is the announcing neighbour's AS,
    the last is the origin; an originated route has an empty path), plus
    the attributes the decision process compares and enough provenance
    to know where it came from. *)

open Bgp

type learned = Originated | From_ebgp | From_ibgp

type t = {
  path : int array;
      (** AS path without the holder's own AS; [ [||] ] iff originated. *)
  lpref : int;  (** LOCAL_PREF after import policy. *)
  med : int;  (** MED after import policy; always compared. *)
  igp : int;  (** IGP cost to the egress router; 0 for eBGP/originated. *)
  from_node : int;  (** Announcing node id; [-1] iff originated. *)
  from_ip : int;
      (** Numeric address of the announcing router — the final
          tie-break value ("lowest neighbour IP"). *)
  from_session : int;
      (** Session index at the holder over which the route arrived;
          [-1] iff originated. *)
  learned : learned;
  learned_class : int;
      (** Relationship class of the announcing session ([-1] iff
          originated); input to relationship-based export rules. *)
}

val originated_lpref : int
(** LOCAL_PREF given to locally-originated routes; higher than any
    policy-assigned preference so origination always wins locally. *)

val originated : own_ip:int -> t

val no_route : t
(** Physical sentinel meaning "no route in this slot", used by the
    engine's flat route slab instead of [option] boxing.  Identity is
    [==] only ({!is_route}); never compare it structurally and never
    read its fields. *)

val is_route : t -> bool
(** [is_route r] is [r != no_route]. *)

val full_path : own_as:Asn.t -> t -> int array
(** The complete AS-level path as an observation point peering with the
    holder would see it: own AS prepended. *)

val same_path : int array -> int array -> bool
(** Path equality, physical first: engine paths are hash-consed
    ({!Intern}), so identical paths within a domain usually share one
    array; structural equality remains the fallback (and the
    definition). *)

val same_advertisement : t option -> t option -> bool
(** Do two RIB-In slots hold the same announcement (same sender, same
    path, same attributes)?  Used to suppress redundant propagation. *)

val same_route : t -> t -> bool
(** {!same_advertisement} over sentinel-boxed values: {!no_route} plays
    the role of [None].  Tries physical equality first (engine routes
    are hash-consed per domain, see {!Intern.rattr}), then the same
    structural fields as {!same_advertisement}. *)

val pp : own_as:Asn.t -> Format.formatter -> t -> unit
