(** Unified runtime configuration: one record for every process-wide
    knob — worker count, warm-start mode, mutation-discipline checking,
    fault injection, tracing — with a single environment reader and a
    single argv parser.

    This module is the {e only} place that reads the [RD_*] environment
    variables ([RD_JOBS], [RD_WARM], [RD_CHECK], [RD_FAULTS],
    [RD_TRACE], [RD_PORT], [RD_DEADLINE_MS]); the CLI and the bench
    driver derive their flags from
    {!with_argv} and the per-knob parsers instead of hand-parsing the
    same strings twice.  The legacy per-knob modules ({!Pool} jobs,
    {!Warm}, {!Faultinject}, [Analysis.Ownership]) delegate their
    [set]/[current] state here, so there is exactly one source of truth
    whichever API a caller uses.

    Knob types live in submodules here (rather than in the modules that
    consume them) so that those consumers can depend on [Runtime]
    without a cycle. *)

(** Warm-start re-simulation mode (see {!Warm}). *)
module Warm_mode : sig
  type t = Off | On | Verify

  val parse : string -> (t, string) result
  (** Accepts [off]/[0]/[cold], [on]/[1]/[warm], [verify]/[check]. *)

  val to_string : t -> string
end

(** Mutation-discipline checking mode (see [Analysis.Ownership]).
    [Race] is a strict superset of [On]: ownership auditing plus the
    happens-before race detector of [Analysis.Race], fed by the
    {!Obs.Probe} instrumentation points. *)
module Check_mode : sig
  type t = Off | On | Race

  val parse : string -> (t, string) result
  (** Accepts [off]/[0]/[false]/empty, [on]/[1]/[true] and
      [race]/[hb]. *)

  val to_string : t -> string
end

(** Fault-injection configuration (see {!Faultinject}). *)
module Fault : sig
  type scope = Transient | Full

  type t = { rate : float; seed : int; scope : scope }

  val parse : string -> (t option, string) result
  (** [RATE:SEED] (transient), [RATE:SEED:full], or [0]/[off]/empty to
      disable ([Ok None]). *)

  val pp : Format.formatter -> t -> unit
end

type t = {
  jobs : int option;  (** pool worker count; [None] = machine default *)
  warm : Warm_mode.t;
  check : Check_mode.t;
  faults : Fault.t option;
  trace : Obs.Trace.mode;
  port : int option;
      (** serve: TCP port; [None] = Unix-domain socket (the default) *)
  deadline_ms : int;  (** serve: per-query deadline; [0] = no deadline *)
}

val default : t
(** No jobs override, warm [On], check [Off], no faults, trace [Off],
    no TCP port (Unix socket), 1000 ms query deadline. *)

val of_env : unit -> t
(** Read every [RD_*] knob from the environment (trimmed; an empty or
    unset variable means "use the default").  An invalid value is
    logged as a warning and falls back to {!default}'s field — an env
    typo must not change simulation behaviour silently.  Pure read: the
    ambient configuration ({!current}) is not touched. *)

val with_argv : t -> string list -> (t * string list, string) result
(** [with_argv t args] folds recognised flags into [t] and returns the
    leftover arguments in order: [--jobs]/[-j N], [--warm MODE],
    [--check MODE], [--faults SPEC], [--trace MODE], [--port N],
    [--deadline-ms N], each in both [--flag value] and [--flag=value]
    form.  Unlike {!of_env}, an invalid value is an [Error] — an
    explicit flag deserves a hard failure; in particular [--jobs 0] and
    negative counts are rejected rather than clamped downstream. *)

(** {2 Ambient configuration}

    The process-wide configuration every knob accessor reads.  It is
    initialised from {!of_env} on first use; {!set} and the per-field
    setters override it.  Setting it also propagates the trace mode to
    {!Obs.Trace}. *)

val current : unit -> t

val set : t -> unit

val set_jobs : int option -> unit

val set_warm : Warm_mode.t -> unit

val set_check : Check_mode.t -> unit
(** Note: this records the mode only.  [Analysis.Ownership] owns the
    network mutation hook and syncs it with this mode on its next
    [current]/[ensure] call (the analysis layer sits above the
    simulator, so the hook cannot be installed from here). *)

val set_faults : Fault.t option -> unit

val set_trace : Obs.Trace.mode -> unit

val set_port : int option -> unit

val set_deadline_ms : int -> unit

(** {2 Resolved accessors} *)

val jobs : unit -> int
(** The configured job count, or [Domain.recommended_domain_count ()]
    when unset; always at least 1. *)

val warm : unit -> Warm_mode.t

val check : unit -> Check_mode.t

val faults : unit -> Fault.t option

val trace : unit -> Obs.Trace.mode
(** Reads {!Obs.Trace.mode} — the live tracer state — so a direct
    [Obs.Trace.set_mode] is also reflected here. *)

val port : unit -> int option
(** The serve front-end's TCP port; [None] means Unix-domain socket. *)

val deadline_ms : unit -> int
(** The serve layer's per-query deadline in milliseconds; [0] disables
    deadline enforcement. *)

val pp : Format.formatter -> t -> unit
