(** Simulated networks: nodes, BGP sessions and policies.

    A network holds routers (or quasi-routers) identified by dense
    integer ids, each belonging to an AS and carrying an address used by
    the final decision-process tie-break.  Sessions are stored as
    directed half-sessions: node [n]'s half toward peer [m] carries the
    policies [n] applies when {e exporting} to [m] and when
    {e importing} from [m].

    Networks are mutable: the refinement heuristic adds quasi-routers,
    filters and MED rules between simulation runs. *)

open Bgp

type t

type session_kind = Ebgp | Ibgp

val class_none : int
(** Relationship class for sessions without one (the agnostic model). *)

val create : unit -> t

val add_node : t -> asn:Asn.t -> ip:Ipv4.t -> int
(** Returns the new node's id. *)

val node_count : t -> int

val session_count : t -> int
(** Total directed half-sessions (twice the number of BGP sessions). *)

val asn_of : t -> int -> Asn.t

val ip_of : t -> int -> Ipv4.t

val nodes_of_as : t -> Asn.t -> int list
(** Node ids of an AS, in creation order (lowest quasi-router id — and
    hence lowest address — first); [] for unknown ASes. *)

val connect :
  ?kind:session_kind ->
  ?class_ab:int ->
  ?class_ba:int ->
  t ->
  int ->
  int ->
  int * int
(** [connect t a b] establishes a BGP session; returns the session index
    of the new half-session at [a] and at [b].  [class_ab] is the
    relationship class [a] assigns to peer [b] (how [a] sees [b]);
    [class_ba] the converse.  Raises [Invalid_argument] if a session
    between [a] and [b] already exists or [a = b]. *)

val sessions_of : t -> int -> (int * int) list
(** [(session_index, peer_node_id)] pairs at a node. *)

val iter_sessions : t -> int -> (int -> int -> unit) -> unit
(** [iter_sessions t n f] calls [f session_index peer_node_id] for every
    session of [n] without allocating (the engine's hot path). *)

val session_count_of : t -> int -> int
(** Number of sessions at a node. *)

val session_peer : t -> int -> int -> int
(** [session_peer t n s] is the node at the far end of session [s] of
    node [n]. *)

val session_kind : t -> int -> int -> session_kind

val session_reverse : t -> int -> int -> int
(** [session_reverse t n s] is the index, at the peer, of the
    half-session mirroring session [s] of node [n]. *)

val session_class : t -> int -> int -> int
(** Relationship class node [n] assigns to the peer of session [s]. *)

val find_session : t -> int -> int -> int option
(** [find_session t a b] is the index at [a] of the session to [b]. *)

type session_info = {
  si_peer : int;
  si_reverse : int;  (** index of the mirror half-session at the peer *)
  si_kind : session_kind;
  si_class : int;
  si_lpref : int option;
  si_carry : bool;
  si_rr_client : bool;
}

val session_info : t -> int -> int -> session_info
(** All per-session fields in one lookup.  Backed by the {!Csr} index
    when one is current (simulation phases), falling back to the node
    records during mutation phases. *)

(** {2 Frozen CSR session index}

    A dense, immutable, per-generation index of the whole session
    structure: a node's half-sessions occupy the contiguous slot range
    [off.(n) .. off.(n+1) - 1], and every per-slot attribute is a flat
    int array.  This is the engine's hot-path view: walking a node's
    sessions is a linear scan of int arrays, and the mirror half-session
    at the peer is one array read ({!Csr.rev}) instead of a node-record
    chase.  The arrays are shared, not copied — callers must treat them
    as read-only. *)
module Csr : sig
  type t

  val generation : t -> int
  (** The {!Net.generation} the index was built at — equal to the
      net's current generation iff the index is current. *)

  val node_count : t -> int

  val slot_count : t -> int
  (** Total half-session slots ([= session_count] of the net). *)

  val off : t -> int array
  (** Length [node_count + 1]; slot range of node [n] is
      [off.(n) .. off.(n+1) - 1]. *)

  val peer : t -> int array
  (** Slot -> peer node id. *)

  val rev : t -> int array
  (** Slot -> global slot of the mirror half-session at the peer
      ([-1] when dangling — corrupted nets only). *)

  val reverse_local : t -> int array
  (** Slot -> peer-local index of the mirror half-session. *)

  val kinds : t -> int array
  (** Slot -> [0] for eBGP, [1] for iBGP. *)

  val classes : t -> int array
  (** Slot -> relationship class. *)

  val lprefs : t -> int array
  (** Slot -> import LOCAL_PREF, or {!no_lpref} when unset. *)

  val no_lpref : int
  (** Sentinel ([min_int]) in {!lprefs} for "no import preference". *)

  val carries : t -> int array
  (** Slot -> 1 iff the session carries the announcer's LOCAL_PREF. *)

  val rr_clients : t -> int array
  (** Slot -> 1 iff the peer is a route-reflection client. *)

  val asns : t -> int array
  (** Node -> ASN. *)

  val ips : t -> int array
  (** Node -> numeric router address (the final tie-break value). *)

  val slot_med : t -> int -> Prefix.t -> int option
  (** Per-prefix import MED of a slot.  Reads the live policy table, so
      per-prefix edits (which do not bump the generation) are visible
      through a cached index. *)

  val slot_import_lpref_for : t -> int -> Prefix.t -> int option

  val slot_export_denied : t -> int -> Prefix.t -> bool
end

val csr : t -> Csr.t
(** The CSR index for the net's current generation, built on first use
    and cached until the next structural mutation.  Safe to call from
    concurrent readers (Pool workers): the cache is atomic and rebuild
    races are benign.  Cost when cached: two loads and a compare. *)

val structure_fingerprint : t -> int
(** Deterministic digest of the full simulation-relevant structure:
    nodes, sessions, session attributes, global knob defaults and
    per-prefix policies (order-independently).  Identical generator runs
    produce identical fingerprints — the netgen determinism gate. *)

val session_med : t -> int -> int -> Prefix.t -> int option
(** Alias of {!import_med}; named for the engine's import step. *)

(** {2 Policies} *)

val set_import_lpref : t -> int -> int -> int -> unit
(** [set_import_lpref t n s v]: routes received by [n] over session [s]
    get LOCAL_PREF [v] (default: the network-wide default, 100). *)

val import_lpref : t -> int -> int -> int option

val set_rr_client : t -> int -> int -> bool -> unit
(** [set_rr_client t n s true]: the peer of iBGP session [s] is a
    route-reflection client of [n].  The engine then applies RFC 4456
    reflection at [n]: iBGP-learned routes are re-advertised over iBGP
    to clients always, and to non-clients when they were learned from a
    client.  Without any client flags iBGP behaves as a full mesh
    (iBGP-learned routes are never re-advertised). *)

val rr_client : t -> int -> int -> bool

val set_carry_lpref : t -> int -> int -> bool -> unit
(** [set_carry_lpref t n s true]: routes received by [n] over eBGP
    session [s] keep the announcer's LOCAL_PREF instead of getting an
    import value — the behaviour of sibling ASes (one organization, so
    preference is preserved across the boundary, as with
    confederations).  Carrying the preference makes two-sibling dispute
    wheels impossible: a mutual preference inversion would need
    [a > b] and [b > a] on the carried values. *)

val carry_lpref : t -> int -> int -> bool

val set_import_med : t -> int -> int -> Prefix.t -> int -> unit
(** Per-prefix MED override on import (the refiner's ranking rule). *)

val set_import_lpref_for : t -> int -> int -> Prefix.t -> int -> unit
(** Per-prefix LOCAL_PREF override on import — the ranking mechanism the
    paper tried first and abandoned because preferring routes with
    longer AS-paths over shorter ones can diverge (§4.6, citing [37]).
    Kept so the negative result is reproducible; takes precedence over
    the per-session import preference. *)

val clear_import_lpref_for : t -> int -> int -> Prefix.t -> unit

val import_lpref_for : t -> int -> int -> Prefix.t -> int option

val clear_import_med : t -> int -> int -> Prefix.t -> unit

val import_med : t -> int -> int -> Prefix.t -> int option

val deny_export : t -> int -> int -> Prefix.t -> unit
(** [deny_export t n s p]: node [n] stops announcing prefix [p] over
    session [s] (the refiner's filter rule). *)

val allow_export : t -> int -> int -> Prefix.t -> unit
(** Remove a {!deny_export} rule (the refiner's filter deletion). *)

val export_denied : t -> int -> int -> Prefix.t -> bool

val fold_export_denies : t -> (int -> int -> Prefix.t -> 'a -> 'a) -> 'a -> 'a
(** Fold over all (node, session, prefix) deny rules. *)

val fold_import_meds :
  t -> (int -> int -> Prefix.t -> int -> 'a -> 'a) -> 'a -> 'a
(** Fold over all (node, session, prefix, med) import-MED rules. *)

val fold_import_lprefs :
  t -> (int -> int -> Prefix.t -> int -> 'a -> 'a) -> 'a -> 'a
(** Fold over all (node, session, prefix, lpref) per-prefix LOCAL_PREF
    rules. *)

val count_policies : t -> int * int
(** [(deny_rules, med_rules)] across the network. *)

(** {2 Network-wide configuration} *)

val set_export_matrix : t -> (learned_class:int -> to_class:int -> bool) -> unit
(** Relationship-based export rule for eBGP sessions: may a route
    learned over a session of class [learned_class] ([-1] when
    originated) be exported over a session of class [to_class]?
    Default: always true (the agnostic model). *)

val export_matrix : t -> learned_class:int -> to_class:int -> bool

val set_igp_cost : t -> (int -> int -> int) -> unit
(** IGP distance between two routers of the same AS, for hot-potato
    ranking of iBGP-learned routes.  Default: constant 0. *)

val igp_cost : t -> int -> int -> int

val set_default_med : t -> int -> unit
(** MED assigned on import when no per-prefix rule matches (default
    100, so the refiner's MED 0 rules rank below it). *)

val default_med : t -> int

val set_decision_steps : t -> Decision.step list -> unit
(** Default: {!Decision.model_steps}. *)

val decision_steps : t -> Decision.step list

val set_med_scope : t -> Decision.med_scope -> unit
(** MED comparison scope of the decision process.  Default:
    {!Decision.Always_compare} (the paper's §4.6 ranking semantics, the
    right choice for quasi-router models).  Router-level ground truth
    networks should use {!Decision.Same_neighbor} (RFC 4271
    §9.1.2.2). *)

val med_scope : t -> Decision.med_scope

(** {2 Structure edits used by the refiner} *)

val duplicate_node : t -> int -> int
(** [duplicate_node t n] creates a copy of [n] in the same AS with the
    next quasi-router index: same sessions (fresh half-sessions on both
    sides) and deep-copied policies in both directions, so the copy has
    the same RIB-In as the original (paper §4.6).  Returns the new id. *)

(** {2 Change tracking for warm-start re-simulation}

    Mutations are classified for warm resumption ({!Engine.simulate} with [from]): structural and
    network-wide changes ([add_node], [connect], [duplicate_node],
    [set_export_matrix], [set_igp_cost], [set_default_med],
    [set_decision_steps], [set_med_scope], [set_import_lpref],
    [set_rr_client], [set_carry_lpref]) bump the generation counter,
    invalidating every previously captured state; per-prefix policy
    edits record a touched node in that prefix's set instead.
    Import-side edits ([set_import_med], [clear_import_med],
    [set_import_lpref_for], [clear_import_lpref_for]) record the
    {e sending peer} — a resumed run replays the sender's exports so
    the import policy is re-applied; export-side edits ([deny_export],
    [allow_export]) record the exporting node itself. *)

val generation : t -> int
(** Bumped on every structural or network-wide mutation. *)

val touched_nodes : t -> Prefix.t -> int list
(** Nodes whose per-prefix policy changed since the last
    {!clear_touched}, sorted ascending (deterministic replay order). *)

val clear_touched : t -> Prefix.t -> unit
(** Drain the prefix's touched set, typically right after capturing the
    converged state that reflects those changes. *)

(** {2 Mutation instrumentation}

    Every mutator reports itself through an optional global hook so the
    Analysis subsystem can audit mutation discipline ([RD_CHECK]):
    which domain mutates which net, whether a mutation raced a
    {!Pool} batch, and whether the warm-start bookkeeping above was
    maintained.  With no hook installed the cost per mutation is one
    load and a branch. *)

type mutation =
  | Structural of { rule : string; generation : int }
      (** A structural or network-wide mutation; [generation] is the
          counter {e after} the bump, so a checker can assert it
          advanced. *)
  | Policy of { rule : string; prefix : Prefix.t; node : int }
      (** A per-prefix policy mutation; [node] is the node recorded in
          the prefix's touched set (the sending peer for import-side
          edits, the exporting node for export-side ones). *)

val set_mutation_hook : (t -> mutation -> unit) option -> unit
(** Install (or remove, with [None]) the process-wide mutation
    observer.  The hook runs synchronously in the mutating domain and
    must not itself mutate the net.  [duplicate_node] reports a single
    [add-node] event — it performs one generation bump. *)

val probe_read : t -> site:string -> unit
(** Record a read-side access to the net's structure and policy
    objects with {!Obs.Probe} — the engine calls it once per run, so
    under [RD_CHECK=race] a mutation unordered with the run is a race
    finding.  Mutators probe the write side themselves; with no probe
    hook installed this is two loads and branches. *)

val probe_name : t -> string
(** The net's probe-object name prefix ([net#N]) — shared-object names
    derived from a net (engine states, journals) build on it so race
    findings group by net. *)

val pp_summary : Format.formatter -> t -> unit

(** {2 Deliberate corruption — test helper}

    Break the invariants the safe API maintains, so the Analysis lint's
    Error paths can be exercised.  Never use outside tests. *)
module Unsafe : sig
  val push_half_session :
    t ->
    int ->
    peer:int ->
    ?kind:session_kind ->
    ?s_class:int ->
    ?peer_session:int ->
    unit ->
    int
  (** Append a dangling half-session at a node (no mirror at the peer;
      [peer_session] defaults to [-1]).  Counts one half-session. *)

  val set_peer_session : t -> int -> int -> int -> unit
  (** Overwrite a session's reverse index (breaks the round-trip). *)

  val set_session_count : t -> int -> unit
  (** Desynchronize the cached half-session count. *)

  val detach_from_as : t -> int -> unit
  (** Remove a node from its AS's [nodes_of_as] list. *)

  val from_foreign_domain : t -> (t -> unit) -> unit
  (** [from_foreign_domain t f] runs [f t] on a freshly spawned domain
      with no synchronization edge published to {!Obs.Probe} — the
      seeded-race negative control: under [RD_CHECK=race] a mutation
      inside [f] must be reported as a race, and under [RD_CHECK=on]
      as a cross-domain ownership violation.  Joins before
      returning. *)
end
