open Bgp
module Engine = Simulator.Engine
module Net = Simulator.Net
module Pool = Simulator.Pool
module Runtime = Simulator.Runtime
module Warm = Simulator.Warm
module Qrmodel = Asmodel.Qrmodel
module Asgraph = Topology.Asgraph

type cls =
  | Cannounce
  | Cwithdraw
  | Csession
  | Clink
  | Chijack_sub
  | Chijack_moas

let cls_name = function
  | Cannounce -> "announce"
  | Cwithdraw -> "withdraw"
  | Csession -> "session"
  | Clink -> "link"
  | Chijack_sub -> "hijack_sub"
  | Chijack_moas -> "hijack_moas"

let cls_rank = function
  | Cannounce -> 0
  | Cwithdraw -> 1
  | Csession -> 2
  | Clink -> 3
  | Chijack_sub -> 4
  | Chijack_moas -> 5

(* -- metrics ------------------------------------------------------- *)

let events_m = Obs.Metrics.counter "stream.events"

let reconv_m = Obs.Metrics.counter "stream.reconvergences"

let quarantined_m = Obs.Metrics.counter "stream.quarantined"

let recovered_m = Obs.Metrics.counter "stream.recovered"

let shifts_m = Obs.Metrics.counter "stream.path_shifts"

let polluted_m = Obs.Metrics.counter "stream.polluted_ases"

let event_us_m = Obs.Metrics.histogram "stream.event_us"

let quarantine_g = Obs.Metrics.gauge "stream.quarantine"

(* Registration is idempotent, so per-class series can be fetched on
   demand by their stable dotted names. *)
let cls_events_m c = Obs.Metrics.counter ("stream." ^ cls_name c ^ ".events")

let cls_engine_m c =
  Obs.Metrics.counter ("stream." ^ cls_name c ^ ".engine_events")

(* -- driver state -------------------------------------------------- *)

(* A down session/link: the half-sessions it silences and the denies
   this driver placed there (pre-existing denies — refiner filters, an
   overlapping down — are never recorded, so restore is exact and
   overlapping downs compose). *)
type down = {
  halfs : (int * int) list;
  mutable added : (int * int * Prefix.t) list;
}

type down_key = Ksession of Asn.t * Asn.t | Klink of Asn.t * Asn.t

(* Export-policy mutations this driver applied to the shared net, most
   recent first — the undo log a failed replay is reverse-applied from. *)
type jmut = Jdeny of int * int * Prefix.t | Jallow of int * int * Prefix.t

(* Driver state that must outlive the driver: a serve snapshot carries
   it so the next [create ~resume] picks up where the previous apply
   stream stopped — without it a Session_up / Link_restore / Hijack_end
   arriving in a later apply call would be a silent no-op. *)
type persist = {
  p_tracked : Prefix.t list;  (* tracking order *)
  p_origins : (Prefix.t * Asn.t list) list;
  p_downs : (down_key * (int * int) list * (int * int * Prefix.t) list) list;
  p_quarantine : Prefix.t list;
}

type acc = {
  mutable a_events : int;
  mutable a_prefixes : int;
  mutable a_engine : int;
  mutable a_warm : int;
  mutable a_cold : int;
  mutable a_shifted : int;
  mutable a_polluted : int;
  mutable a_wall : float;
}

type t = {
  model : Qrmodel.t;
  o_journal : string;
      (* probe-object name of the journal/driver tables: under
         RD_CHECK=race every journal mutation is recorded, so a driver
         shared across domains without ordering is a race finding *)
  jobs : int option;
  mode : Runtime.Warm_mode.t;
  states : Engine.state Prefix.Table.t;
  origins : Asn.Set.t Prefix.Table.t;
  mutable tracked_rev : Prefix.t list;
  quarantine : unit Prefix.Table.t;
  downs : (down_key, down) Hashtbl.t;
  mutable journal : jmut list;
  divergences : int Atomic.t;  (* bumped from pool worker domains *)
  totals : (cls, acc) Hashtbl.t;
  mutable events_applied : int;
  mutable reconvergences : int;
  mutable retried : int;
  mutable failed : int;
  mutable recovered_n : int;
  mutable wall_s : float;
}

let tracked t = List.rev t.tracked_rev

let quarantined t =
  List.filter (Prefix.Table.mem t.quarantine) (tracked t)

let origins t p =
  match Prefix.Table.find_opt t.origins p with
  | None -> []
  | Some ases -> Asn.Set.elements ases

let states t =
  List.filter_map
    (fun p ->
      Option.map (fun st -> (p, st)) (Prefix.Table.find_opt t.states p))
    (tracked t)

let fingerprint t =
  (* Sorted prefix order, so the hash is a function of the routing
     content alone, not of tracking history. *)
  List.sort Prefix.compare (tracked t)
  |> List.fold_left
       (fun h p ->
         let s =
           match Prefix.Table.find_opt t.states p with
           | Some st -> Engine.state_fingerprint st
           | None -> 0
         in
         ((h * 1000003) lxor Prefix.hash p * 0x9e3779b9) lxor (s land max_int))
       0x42

let originator_nodes t p =
  let net = t.model.Qrmodel.net in
  match Prefix.Table.find_opt t.origins p with
  | None -> []
  | Some ases ->
      Asn.Set.elements ases |> List.concat_map (Net.nodes_of_as net)

(* -- sessions ------------------------------------------------------ *)

let half_sessions_toward net a b =
  List.concat_map
    (fun n ->
      List.filter_map
        (fun (s, peer) -> if Net.asn_of net peer = b then Some (n, s) else None)
        (Net.sessions_of net n))
    (Net.nodes_of_as net a)

let link_halfs net a b =
  half_sessions_toward net a b @ half_sessions_toward net b a

(* One session = the first quasi-router adjacency (deterministic:
   lowest node ids first), both directions. *)
let session_halfs net a b =
  match half_sessions_toward net a b with
  | [] -> []
  | (n, s) :: _ ->
      let peer = Net.session_peer net n s in
      let rev = Net.session_reverse net n s in
      [ (n, s); (peer, rev) ]

let norm_pair a b = if a <= b then (a, b) else (b, a)

(* -- creation ------------------------------------------------------ *)

let persist t =
  let prefixes = tracked t in
  {
    p_tracked = prefixes;
    p_origins = List.map (fun p -> (p, origins t p)) prefixes;
    p_downs =
      Hashtbl.fold (fun key d acc -> (key, d.halfs, d.added) :: acc) t.downs [];
    p_quarantine = quarantined t;
  }

let replay_uid = Atomic.make 0

let create ?jobs ?mode ?states:seed ?resume (model : Qrmodel.t) =
  let mode = match mode with Some m -> m | None -> Runtime.warm () in
  let net = model.Qrmodel.net in
  let t =
    {
      model;
      o_journal =
        Printf.sprintf "%s/journal#%d" (Net.probe_name net)
          (Atomic.fetch_and_add replay_uid 1);
      jobs;
      mode;
      states = Prefix.Table.create 64;
      origins = Prefix.Table.create 64;
      tracked_rev = [];
      quarantine = Prefix.Table.create 8;
      downs = Hashtbl.create 8;
      journal = [];
      divergences = Atomic.make 0;
      totals = Hashtbl.create 8;
      events_applied = 0;
      reconvergences = 0;
      retried = 0;
      failed = 0;
      recovered_n = 0;
      wall_s = 0.;
    }
  in
  (match resume with
  | Some prev ->
      (* Pick up a previous driver's tracking/origin/down state; the
         down records are copied so this driver's mutations never leak
         into the snapshot the persist is still published in. *)
      t.tracked_rev <- List.rev prev.p_tracked;
      List.iter
        (fun (p, ases) ->
          Prefix.Table.replace t.origins p (Asn.Set.of_list ases))
        prev.p_origins;
      List.iter
        (fun (key, halfs, added) ->
          Hashtbl.replace t.downs key { halfs; added })
        prev.p_downs;
      List.iter (fun p -> Prefix.Table.replace t.quarantine p ()) prev.p_quarantine
  | None ->
      List.iter
        (fun (p, asn) ->
          t.tracked_rev <- p :: t.tracked_rev;
          Prefix.Table.replace t.origins p (Asn.Set.singleton asn))
        model.Qrmodel.prefixes);
  (match seed with
  | Some states ->
      let known =
        List.fold_left
          (fun s p -> Prefix.Set.add p s)
          Prefix.Set.empty (tracked t)
      in
      List.iter
        (fun (p, st) ->
          if not (Prefix.Set.mem p known) then begin
            (* An extra (announced / hijacked) prefix carried over from
               a previous replay: recover its originators from the
               state itself. *)
            t.tracked_rev <- p :: t.tracked_rev;
            let ases =
              Engine.originating st
              |> List.fold_left
                   (fun s n -> Asn.Set.add (Net.asn_of net n) s)
                   Asn.Set.empty
            in
            Prefix.Table.replace t.origins p ases
          end;
          if Engine.converged st then Prefix.Table.replace t.states p st
          else Prefix.Table.replace t.quarantine p ())
        states
  | None ->
      let prefixes = List.map fst model.Qrmodel.prefixes in
      let results, stats =
        Pool.simulate_result ?jobs
          ~sim:(fun p ->
            Engine.simulate net ~prefix:p ~originators:(originator_nodes t p))
          prefixes
      in
      t.retried <- t.retried + stats.Pool.retried;
      t.failed <- t.failed + stats.Pool.failed;
      List.iter
        (fun (p, r) ->
          match r with
          | Ok st when Engine.converged st ->
              Prefix.Table.replace t.states p st;
              Net.clear_touched net p
          | Ok _ | Error _ -> Prefix.Table.replace t.quarantine p ())
        results;
      Obs.Metrics.set_gauge quarantine_g (Prefix.Table.length t.quarantine));
  t

(* -- event application --------------------------------------------- *)

let dedup_prefixes ps =
  let seen = Prefix.Table.create (List.length ps) in
  List.filter
    (fun p ->
      if Prefix.Table.mem seen p then false
      else begin
        Prefix.Table.replace seen p ();
        true
      end)
    ps

(* A prefix first seen while sessions are down must be silenced on them
   too, or routes would leak through a failed link. *)
let extend_downs t p =
  let net = t.model.Qrmodel.net in
  Obs.Probe.write ~obj:t.o_journal ~site:"replay.journal";
  Hashtbl.iter
    (fun _ d ->
      List.iter
        (fun (n, s) ->
          if not (Net.export_denied net n s p) then begin
            Net.deny_export net n s p;
            t.journal <- Jdeny (n, s, p) :: t.journal;
            d.added <- (n, s, p) :: d.added
          end)
        d.halfs)
    t.downs

let add_origin t p asn =
  match Prefix.Table.find_opt t.origins p with
  | Some ases when Asn.Set.mem asn ases -> [] (* duplicate announce *)
  | Some ases ->
      Prefix.Table.replace t.origins p (Asn.Set.add asn ases);
      [ p ]
  | None ->
      t.tracked_rev <- p :: t.tracked_rev;
      Prefix.Table.replace t.origins p (Asn.Set.singleton asn);
      extend_downs t p;
      [ p ]

let remove_origin t p asn =
  match Prefix.Table.find_opt t.origins p with
  | Some ases when Asn.Set.mem asn ases ->
      (* The prefix stays tracked even when fully withdrawn: its state
         reconverges to route-free, and a later announce revives it. *)
      Prefix.Table.replace t.origins p (Asn.Set.remove asn ases);
      [ p ]
  | _ -> [] (* withdraw of something never announced: no-op *)

let bring_down t key halfs =
  if Hashtbl.mem t.downs key || halfs = [] then []
  else begin
    let net = t.model.Qrmodel.net in
    Obs.Probe.write ~obj:t.o_journal ~site:"replay.journal";
    let d = { halfs; added = [] } in
    List.iter
      (fun (n, s) ->
        List.iter
          (fun p ->
            if not (Net.export_denied net n s p) then begin
              Net.deny_export net n s p;
              t.journal <- Jdeny (n, s, p) :: t.journal;
              d.added <- (n, s, p) :: d.added
            end)
          (tracked t))
      halfs;
    Hashtbl.replace t.downs key d;
    dedup_prefixes (List.map (fun (_, _, p) -> p) d.added)
  end

let bring_up t key =
  match Hashtbl.find_opt t.downs key with
  | None -> [] (* restore of something not down: no-op *)
  | Some d ->
      let net = t.model.Qrmodel.net in
      Obs.Probe.write ~obj:t.o_journal ~site:"replay.journal";
      List.iter
        (fun (n, s, p) ->
          Net.allow_export net n s p;
          t.journal <- Jallow (n, s, p) :: t.journal)
        d.added;
      Hashtbl.remove t.downs key;
      dedup_prefixes (List.map (fun (_, _, p) -> p) d.added)

let acc_of t cls =
  match Hashtbl.find_opt t.totals cls with
  | Some a -> a
  | None ->
      let a =
        {
          a_events = 0;
          a_prefixes = 0;
          a_engine = 0;
          a_warm = 0;
          a_cold = 0;
          a_shifted = 0;
          a_polluted = 0;
          a_wall = 0.;
        }
      in
      Hashtbl.replace t.totals cls a;
      a

(* ASes whose selected path set changed between the cached and the new
   state; the fingerprint shortcut skips the quadratic walk when the
   routing content is bit-identical. *)
let shifted_ases t old_opt new_st =
  let net = t.model.Qrmodel.net in
  match old_opt with
  | Some old
    when Engine.state_fingerprint old = Engine.state_fingerprint new_st ->
      0
  | _ ->
      List.length
        (List.filter
           (fun asn ->
             let before =
               match old_opt with
               | Some o -> Engine.selected_paths net o asn
               | None -> []
             in
             Engine.selected_paths net new_st asn <> before)
           (Asgraph.nodes t.model.Qrmodel.graph))

let pollution t p attacker =
  let net = t.model.Qrmodel.net in
  match Prefix.Table.find_opt t.states p with
  | None -> 0
  | Some st ->
      List.length
        (List.filter
           (fun asn ->
             asn <> attacker
             && List.exists
                  (fun path ->
                    let k = Array.length path in
                    k > 0 && path.(k - 1) = attacker)
                  (Engine.selected_paths net st asn))
           (Asgraph.nodes t.model.Qrmodel.graph))

(* Reconverge a deduplicated prefix batch over the pool, fold the
   results back into the cache, and quarantine what failed.  Returns
   (engine_events, warm, cold, shifted, quarantined, recovered). *)
let reconverge t batch =
  if batch = [] then (0, 0, 0, 0, [], [])
  else begin
    let net = t.model.Qrmodel.net in
    let mode = t.mode in
    let warm_hits0 = Obs.Metrics.find_counter "engine.warm_resume_hits" in
    let sim p =
      (* Runs in pool worker domains: reads the driver tables (no
         writer is active during the batch) and bumps only atomics. *)
      let from =
        if mode = Runtime.Warm_mode.Off || Prefix.Table.mem t.quarantine p
        then None
        else Prefix.Table.find_opt t.states p
      in
      let originators = originator_nodes t p in
      let st = Engine.simulate ?from net ~prefix:p ~originators in
      match (mode, from) with
      | Runtime.Warm_mode.Verify, Some prev when Engine.resumable net prev ->
          let cold_st = Engine.simulate net ~prefix:p ~originators in
          Warm.note_verified ();
          if Engine.state_fingerprint st <> Engine.state_fingerprint cold_st
          then begin
            Warm.note_divergence ();
            Atomic.incr t.divergences;
            cold_st (* ground truth wins *)
          end
          else st
      | _ -> st
    in
    let results, stats = Pool.simulate_result ?jobs:t.jobs ~sim batch in
    let warm =
      max 0 (Obs.Metrics.find_counter "engine.warm_resume_hits" - warm_hits0)
    in
    t.retried <- t.retried + stats.Pool.retried;
    t.failed <- t.failed + stats.Pool.failed;
    t.reconvergences <- t.reconvergences + List.length batch;
    Obs.Metrics.incr ~by:(List.length batch) reconv_m;
    let shifted = ref 0 in
    let newly_quarantined = ref [] in
    let recovered = ref [] in
    List.iter
      (fun (p, r) ->
        match r with
        | Ok st when Engine.converged st ->
            shifted :=
              !shifted + shifted_ases t (Prefix.Table.find_opt t.states p) st;
            Prefix.Table.replace t.states p st;
            Net.clear_touched net p;
            if Prefix.Table.mem t.quarantine p then begin
              Prefix.Table.remove t.quarantine p;
              t.recovered_n <- t.recovered_n + 1;
              Obs.Metrics.incr recovered_m;
              recovered := p :: !recovered
            end
        | Ok st ->
            Logs.warn (fun m ->
                m "replay: prefix %a %a; quarantined" Prefix.pp p
                  Engine.pp_outcome (Engine.outcome st));
            if not (Prefix.Table.mem t.quarantine p) then begin
              Prefix.Table.replace t.quarantine p ();
              Obs.Metrics.incr quarantined_m;
              newly_quarantined := p :: !newly_quarantined
            end;
            (* Drop the cache so every retry is a cold rebuild. *)
            Prefix.Table.remove t.states p
        | Error err ->
            Logs.warn (fun m ->
                m "replay: prefix %a failed (%a); quarantined" Prefix.pp p
                  Pool.pp_task_error err);
            if not (Prefix.Table.mem t.quarantine p) then begin
              Prefix.Table.replace t.quarantine p ();
              Obs.Metrics.incr quarantined_m;
              newly_quarantined := p :: !newly_quarantined
            end;
            Prefix.Table.remove t.states p)
      results;
    Obs.Metrics.set_gauge quarantine_g (Prefix.Table.length t.quarantine);
    Obs.Metrics.incr ~by:!shifted shifts_m;
    let cold = List.length batch - warm in
    ( stats.Pool.events,
      warm,
      max 0 cold,
      !shifted,
      List.rev !newly_quarantined,
      List.rev !recovered )
  end

type event_report = {
  event : Event.t;
  cls : cls;
  prefixes : int;
  engine_events : int;
  warm : int;
  cold : int;
  ases_shifted : int;
  polluted : int;
  quarantined : Prefix.t list;
  recovered : Prefix.t list;
  wall_s : float;
}

let apply t (ev : Event.t) =
  let net = t.model.Qrmodel.net in
  let t0 = Obs.Trace.now_us () in
  let cls, affected, hijack_target =
    match ev.Event.action with
    | Event.Announce { prefix; origin } ->
        (Cannounce, add_origin t prefix origin, None)
    | Event.Withdraw { prefix; origin } ->
        (Cwithdraw, remove_origin t prefix origin, None)
    | Event.Hijack { prefix; attacker } ->
        let moas =
          match Prefix.Table.find_opt t.origins prefix with
          | Some ases -> not (Asn.Set.is_empty ases)
          | None -> false
        in
        let cls = if moas then Chijack_moas else Chijack_sub in
        (cls, add_origin t prefix attacker, Some (prefix, attacker))
    | Event.Hijack_end { prefix; attacker } ->
        let affected = remove_origin t prefix attacker in
        let moas =
          match Prefix.Table.find_opt t.origins prefix with
          | Some ases -> not (Asn.Set.is_empty ases)
          | None -> false
        in
        ((if moas then Chijack_moas else Chijack_sub), affected, None)
    | Event.Session_down { a; b } ->
        let a, b = norm_pair a b in
        (Csession, bring_down t (Ksession (a, b)) (session_halfs net a b), None)
    | Event.Session_up { a; b } ->
        let a, b = norm_pair a b in
        (Csession, bring_up t (Ksession (a, b)), None)
    | Event.Link_fail { a; b } ->
        let a, b = norm_pair a b in
        (Clink, bring_down t (Klink (a, b)) (link_halfs net a b), None)
    | Event.Link_restore { a; b } ->
        let a, b = norm_pair a b in
        (Clink, bring_up t (Klink (a, b)), None)
  in
  (* Quarantined prefixes ride along on every event: sustained churn is
     exactly when they get their cold retries. *)
  let batch = dedup_prefixes (affected @ quarantined t) in
  let engine_events, warm, cold, ases_shifted, newly_q, recovered =
    reconverge t batch
  in
  let polluted =
    match hijack_target with
    | Some (p, attacker) -> pollution t p attacker
    | None -> 0
  in
  let wall_s = float_of_int (Obs.Trace.now_us () - t0) /. 1e6 in
  t.events_applied <- t.events_applied + 1;
  t.wall_s <- t.wall_s +. wall_s;
  Obs.Metrics.incr events_m;
  Obs.Metrics.incr (cls_events_m cls);
  Obs.Metrics.incr ~by:engine_events (cls_engine_m cls);
  Obs.Metrics.incr ~by:polluted polluted_m;
  Obs.Metrics.observe event_us_m (Obs.Trace.now_us () - t0);
  let a = acc_of t cls in
  a.a_events <- a.a_events + 1;
  a.a_prefixes <- a.a_prefixes + List.length batch;
  a.a_engine <- a.a_engine + engine_events;
  a.a_warm <- a.a_warm + warm;
  a.a_cold <- a.a_cold + cold;
  a.a_shifted <- a.a_shifted + ases_shifted;
  a.a_polluted <- a.a_polluted + polluted;
  a.a_wall <- a.a_wall +. wall_s;
  {
    event = ev;
    cls;
    prefixes = List.length batch;
    engine_events;
    warm;
    cold;
    ases_shifted;
    polluted;
    quarantined = newly_q;
    recovered;
    wall_s;
  }

let retry_quarantined t =
  match quarantined t with
  | [] -> []
  | stuck ->
      let _, _, _, _, _, recovered = reconverge t stuck in
      recovered

let rollback_net t =
  (* Reverse-chronological undo: the journal is most-recent-first, so a
     deny placed and later lifted inside the same driver nets out. The
     driver's own tables are left inconsistent on purpose — after a
     rollback it must be discarded, only the shared net matters. *)
  let net = t.model.Qrmodel.net in
  Obs.Probe.write ~obj:t.o_journal ~site:"replay.rollback";
  List.iter
    (function
      | Jdeny (n, s, p) -> Net.allow_export net n s p
      | Jallow (n, s, p) -> Net.deny_export net n s p)
    t.journal;
  t.journal <- []

(* -- reports ------------------------------------------------------- *)

type class_stats = {
  cs_events : int;
  cs_prefixes : int;
  cs_engine_events : int;
  cs_warm : int;
  cs_cold : int;
  cs_ases_shifted : int;
  cs_polluted : int;
  cs_wall_s : float;
}

type report = {
  events : int;
  rejected : int;
  classes : (cls * class_stats) list;
  reconvergences : int;
  retried : int;
  failed : int;
  quarantine : Prefix.t list;
  recovered : int;
  divergences : int;
  fingerprint : int;
  wall_s : float;
}

let report t ~rejected =
  let classes =
    Hashtbl.fold
      (fun cls a acc ->
        ( cls,
          {
            cs_events = a.a_events;
            cs_prefixes = a.a_prefixes;
            cs_engine_events = a.a_engine;
            cs_warm = a.a_warm;
            cs_cold = a.a_cold;
            cs_ases_shifted = a.a_shifted;
            cs_polluted = a.a_polluted;
            cs_wall_s = a.a_wall;
          } )
        :: acc)
      t.totals []
    |> List.sort (fun (a, _) (b, _) -> Int.compare (cls_rank a) (cls_rank b))
  in
  {
    events = t.events_applied;
    rejected;
    classes;
    reconvergences = t.reconvergences;
    retried = t.retried;
    failed = t.failed;
    quarantine = quarantined t;
    recovered = t.recovered_n;
    divergences = Atomic.get t.divergences;
    fingerprint = fingerprint t;
    wall_s = t.wall_s;
  }

let run ?jobs ?mode ?on_event (model : Qrmodel.t) events =
  let graph = model.Qrmodel.graph in
  let stream, rejects =
    Event.normalize ~known_as:(Asgraph.mem_node graph) events
  in
  List.iter
    (fun (ev, reason) ->
      Logs.debug (fun m ->
          m "replay: dropping event %a (%s)" Event.pp ev reason))
    rejects;
  let t = create ?jobs ?mode model in
  List.iter
    (fun ev ->
      let r = apply t ev in
      match on_event with Some f -> f r | None -> ())
    stream;
  ignore (retry_quarantined t);
  (t, report t ~rejected:(List.length rejects))

let pp_report ppf r =
  Format.fprintf ppf
    "%d events (%d rejected), %d reconvergences (%d warm / %d cold), %d \
     shifted, %d recovered, %d quarantined, %d failed, %.2fs"
    r.events r.rejected r.reconvergences
    (List.fold_left (fun n (_, c) -> n + c.cs_warm) 0 r.classes)
    (List.fold_left (fun n (_, c) -> n + c.cs_cold) 0 r.classes)
    (List.fold_left (fun n (_, c) -> n + c.cs_ases_shifted) 0 r.classes)
    r.recovered
    (List.length r.quarantine)
    r.failed r.wall_s
