(** Typed, timestamped churn events.

    An update stream is a list of events — announcements, withdrawals,
    session and link state changes, and hijacks — replayed against a
    model by {!Replay}.  Events carry millisecond timestamps; the
    stream's semantics depend only on event {e order}, so timestamps
    exist for scenario realism (inter-event gaps) and deterministic
    ordering, not for wall-clock scheduling.

    The AS-level vocabulary matches the model: sessions and links are
    identified by AS pairs (a session is one quasi-router adjacency; a
    link is every session between the two ASes), and originations by
    (prefix, AS).  A sub-prefix hijack is simply a [Hijack] whose
    prefix is a more-specific of a victim prefix; a MOAS conflict is a
    [Hijack] of a prefix the victim already originates. *)

open Bgp

type action =
  | Announce of { prefix : Prefix.t; origin : Asn.t }
      (** [origin] starts originating [prefix]. *)
  | Withdraw of { prefix : Prefix.t; origin : Asn.t }
      (** [origin] stops originating [prefix]. *)
  | Session_down of { a : Asn.t; b : Asn.t }
      (** One quasi-router session between the ASes stops exchanging
          routes (the first adjacency, deterministically). *)
  | Session_up of { a : Asn.t; b : Asn.t }  (** Revert a session-down. *)
  | Link_fail of { a : Asn.t; b : Asn.t }
      (** Every session between the two ASes stops exchanging routes. *)
  | Link_restore of { a : Asn.t; b : Asn.t }  (** Revert a link-fail. *)
  | Hijack of { prefix : Prefix.t; attacker : Asn.t }
      (** [attacker] starts originating [prefix] illegitimately:
          a MOAS conflict when [prefix] is already originated, a
          sub-prefix hijack when it is a new more-specific. *)
  | Hijack_end of { prefix : Prefix.t; attacker : Asn.t }
      (** The attacker withdraws its origination. *)

type t = { ts_ms : int; action : action }

val make : ts_ms:int -> action -> t

val compare : t -> t -> int
(** Timestamp first, then a total structural order on actions — a
    deterministic tie-break for equal timestamps. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** One-line textual form, e.g. ["120 session-down 3 9"] or
    ["250 hijack 10.0.1.128/25 666"].  Round-trips with
    {!of_string}. *)

val of_string : string -> (t, string) result
(** Parse {!to_string}'s format; [Error] describes the malformation.
    Never raises. *)

val normalize :
  known_as:(Asn.t -> bool) -> t list -> t list * (t * string) list
(** Validate and canonicalize a raw stream: events with a negative
    timestamp, an unknown AS, or a self session/link ([a = b]) are
    rejected (returned with a reason); survivors are stably sorted by
    timestamp, so out-of-order input is reordered and events sharing a
    timestamp keep their relative input order — same input, same
    output, always.  Duplicate events are kept: replay semantics make
    them no-ops. *)
