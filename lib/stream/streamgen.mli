(** Deterministic churn-scenario generation.

    Like [Netgen.Gentopo.generate], every generator is a pure function
    of the model and an explicit [Random.State.t]: the same model and
    seed produce the same stream, byte for byte, so replay results are
    reproducible and the determinism tests can compare runs.

    Generated streams are already well-formed for the given model
    (known ASes, adjacent pairs, no self links), but callers should
    still pass them through {!Event.normalize} — the replay driver
    does — since streams may also arrive from files or tests. *)

val flap_storm :
  ?sessions:int ->
  ?flaps:int ->
  ?period_ms:int ->
  Asmodel.Qrmodel.t ->
  Random.State.t ->
  Event.t list
(** A session flap storm: [sessions] distinct AS adjacencies (default
    4, clamped to the edge count) each flap [flaps] times (default 3)
    — down, then up half a [period_ms] (default 100) later — with a
    random per-session phase offset so the flaps interleave. *)

val tier1_depeering :
  ?outage_ms:int -> Asmodel.Qrmodel.t -> Random.State.t -> Event.t list
(** The two best-connected adjacent ASes (highest degree, lowest ASN
    on ties — the model's "tier-1s") de-peer: every session between
    them fails, then restores [outage_ms] (default 1000) later. *)

val subprefix_hijack :
  ?victims:int ->
  ?duration_ms:int ->
  Asmodel.Qrmodel.t ->
  Random.State.t ->
  Event.t list
(** Targeted sub-prefix hijack: for [victims] random model prefixes
    (default 1), a random other AS announces a one-bit-longer
    more-specific, withdrawing it [duration_ms] (default 500) later. *)

val moas_conflict :
  ?victims:int ->
  ?duration_ms:int ->
  Asmodel.Qrmodel.t ->
  Random.State.t ->
  Event.t list
(** MOAS-conflict hijack: like {!subprefix_hijack} but the attacker
    announces the victim's exact prefix, splitting its catchment. *)

val mixed :
  ?events:int -> Asmodel.Qrmodel.t -> Random.State.t -> Event.t list
(** A blend of every event class — paired so the stream is meaningful
    (withdraw then re-announce, down then up, hijack then end) —
    totalling roughly [events] events (default 32). *)

val scenario_names : string list
(** The {!of_name} vocabulary, for CLI listings. *)

val of_name :
  string ->
  (events:int ->
  Asmodel.Qrmodel.t ->
  Random.State.t ->
  Event.t list)
  option
(** Look a scenario up by CLI name ([flap-storm], [depeering],
    [hijack], [moas], [mixed]); [events] scales the scenario size
    where it applies. *)
