(** Replay a churn stream against a live model, reconverging warm.

    The driver keeps a per-prefix cache of converged engine states plus
    the current originator set of every tracked prefix.  Each event is
    translated into per-prefix mutations the warm-start machinery
    understands — export denies with touched-set bookkeeping for
    session/link state, originator-set changes for announce / withdraw
    / hijack — and only the affected prefixes are reconverged, via
    {!Simulator.Engine.simulate}[ ?from] over the {!Simulator.Pool}.
    Structural network mutations are never performed, so the generation
    counter stands still and warm resumption survives the whole
    stream.

    Failure containment reuses the PR-2 machinery: the pool isolates
    and retries per-prefix faults, and a prefix whose reconvergence
    still fails (or does not converge, or diverges under warm/cold
    verification) is {e quarantined} — its cached state is dropped, the
    event replay continues, and the prefix is retried cold on every
    subsequent event until it recovers.  A poisoned event therefore
    degrades one prefix instead of killing the replay.

    Warm behaviour follows {!Simulator.Runtime.warm} unless overridden:
    [Off] replays every affected prefix cold, [On] resumes from the
    cache, [Verify] resumes and re-runs cold, comparing routing
    fingerprints (a mismatch counts as a divergence and the cold state
    wins).

    Pollution counts are control-plane and per-prefix: a sub-prefix
    hijack is a new, independent prefix (longest-match forwarding is
    out of scope), and an AS is polluted when one of its selected
    routes for the hijacked prefix terminates at the attacker. *)

open Bgp

(** Event classes, the metrics granularity.  [Hijack] events split by
    effect: announcing a prefix someone already originates is a MOAS
    conflict, announcing a fresh more-specific is a sub-prefix
    hijack. *)
type cls =
  | Cannounce
  | Cwithdraw
  | Csession
  | Clink
  | Chijack_sub
  | Chijack_moas

val cls_name : cls -> string
(** [announce], [withdraw], [session], [link], [hijack_sub],
    [hijack_moas]. *)

type t

type persist
(** Frozen driver state — per-prefix originator sets, down
    sessions/links with the exact export denies they placed, and the
    quarantine — captured by {!persist} and handed back to {!create}
    via [?resume].  A serve snapshot carries one so churn streams may
    span multiple [apply] calls: a [Session_up] / [Link_restore] /
    [Hijack_end] whose matching down/hijack happened in an earlier call
    still finds it. *)

val create :
  ?jobs:int ->
  ?mode:Simulator.Runtime.Warm_mode.t ->
  ?states:(Prefix.t * Simulator.Engine.state) list ->
  ?resume:persist ->
  Asmodel.Qrmodel.t ->
  t
(** A driver over [model].  [states] seeds the cache (e.g. from a
    {e serve} snapshot — prefixes beyond the model's get their
    originators from the state itself); without it every model prefix
    is simulated cold over the pool first.  [resume] seeds the
    tracking / origin / down / quarantine tables from a previous
    driver's {!persist} instead of the model's prefix list, so paired
    events split across drivers still match up.  [mode] defaults to
    {!Simulator.Runtime.warm}; [jobs] to the runtime worker count. *)

val persist : t -> persist
(** Capture the driver state a successor needs ([create ?resume]).
    The capture is immutable: later mutations of this driver do not
    leak into it. *)

val rollback_net : t -> unit
(** Reverse-apply every export deny/allow this driver placed on the
    shared net (creation-time seeding from [?resume] is {e not}
    undone — those denies belong to the previously published state).
    For the failure path: a replay that raised mid-stream left the net
    ahead of the still-published snapshot; rolling back restores it
    exactly.  The driver must be discarded afterwards. *)

type event_report = {
  event : Event.t;
  cls : cls;
  prefixes : int;  (** prefixes reconverged by this event *)
  engine_events : int;  (** node activations across those runs *)
  warm : int;  (** runs that resumed from the cache *)
  cold : int;
  ases_shifted : int;
      (** ASes whose selected path set changed, summed over prefixes *)
  polluted : int;
      (** hijack events: ASes whose selected route for the hijacked
          prefix terminates at the attacker *)
  quarantined : Prefix.t list;  (** entered quarantine on this event *)
  recovered : Prefix.t list;  (** left quarantine on this event *)
  wall_s : float;
}

val apply : t -> Event.t -> event_report
(** Apply one (already validated) event.  Unknown sessions, duplicate
    downs, redundant announces and the like are no-ops with an empty
    report — never errors.  Quarantined prefixes are retried (cold)
    alongside the event's own prefixes. *)

type class_stats = {
  cs_events : int;
  cs_prefixes : int;
  cs_engine_events : int;
  cs_warm : int;
  cs_cold : int;
  cs_ases_shifted : int;
  cs_polluted : int;
  cs_wall_s : float;
}

type report = {
  events : int;  (** events applied *)
  rejected : int;  (** events dropped by {!Event.normalize} *)
  classes : (cls * class_stats) list;  (** only classes that occurred *)
  reconvergences : int;
  retried : int;  (** pool tasks recovered by the transparent retry *)
  failed : int;  (** pool tasks still failing after retry *)
  quarantine : Prefix.t list;  (** still quarantined at the end *)
  recovered : int;  (** quarantine exits over the whole run *)
  divergences : int;  (** verify-mode warm/cold mismatches *)
  fingerprint : int;  (** {!fingerprint} of the final state *)
  wall_s : float;
}

val run :
  ?jobs:int ->
  ?mode:Simulator.Runtime.Warm_mode.t ->
  ?on_event:(event_report -> unit) ->
  Asmodel.Qrmodel.t ->
  Event.t list ->
  t * report
(** Normalize the stream against the model, build a driver, apply every
    surviving event, then give still-quarantined prefixes one final
    cold retry.  Deterministic up to wall-clock fields: same model,
    same stream, same mode — same fingerprint and same counts. *)

val report : t -> rejected:int -> report
(** The accumulated totals of a driver (for callers stepping {!apply}
    themselves). *)

val retry_quarantined : t -> Prefix.t list
(** One cold retry pass over the quarantine; returns the prefixes that
    recovered. *)

val states : t -> (Prefix.t * Simulator.Engine.state) list
(** Cached converged states in tracking order (model prefixes first,
    then announced/hijacked extras); quarantined prefixes are absent. *)

val quarantined : t -> Prefix.t list

val tracked : t -> Prefix.t list

val origins : t -> Prefix.t -> Asn.t list
(** Current originator ASes of a tracked prefix (sorted; [] when
    untracked or fully withdrawn). *)

val fingerprint : t -> int
(** Order-independent hash over every tracked prefix's routing-content
    fingerprint — the replay-determinism and warm-vs-cold comparison
    key. *)

val pp_report : Format.formatter -> report -> unit
