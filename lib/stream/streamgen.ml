open Bgp
module Qrmodel = Asmodel.Qrmodel
module Asgraph = Topology.Asgraph

let edges_array (model : Qrmodel.t) =
  Array.of_list (Asgraph.edges model.Qrmodel.graph)

let ases_array (model : Qrmodel.t) =
  Array.of_list (Asgraph.nodes model.Qrmodel.graph)

(* Sample [k] distinct indices of [arr] by a partial Fisher-Yates
   shuffle on an index array: deterministic in the rng state and O(n)
   regardless of k. *)
let sample rng arr k =
  let n = Array.length arr in
  let k = min k n in
  let idx = Array.init n Fun.id in
  for i = 0 to k - 1 do
    let j = i + Random.State.int rng (n - i) in
    let t = idx.(i) in
    idx.(i) <- idx.(j);
    idx.(j) <- t
  done;
  List.init k (fun i -> arr.(idx.(i)))

let sort_stream events =
  List.stable_sort (fun (x : Event.t) y -> Int.compare x.ts_ms y.ts_ms) events

let flap_storm ?(sessions = 4) ?(flaps = 3) ?(period_ms = 100) model rng =
  let edges = edges_array model in
  let chosen = sample rng edges sessions in
  let half = max 1 (period_ms / 2) in
  List.concat_map
    (fun (a, b) ->
      let phase = Random.State.int rng half in
      List.concat
        (List.init flaps (fun f ->
             let t = phase + (f * period_ms) in
             [
               Event.make ~ts_ms:t (Event.Session_down { a; b });
               Event.make ~ts_ms:(t + half) (Event.Session_up { a; b });
             ])))
    chosen
  |> sort_stream

let tier1_depeering ?(outage_ms = 1000) model rng =
  let graph = model.Qrmodel.graph in
  let ranked =
    List.sort
      (fun a b ->
        match Int.compare (Asgraph.degree graph b) (Asgraph.degree graph a) with
        | 0 -> Asn.compare a b
        | c -> c)
      (Asgraph.nodes graph)
  in
  (* The best-connected AS plus its best-connected neighbor: the model's
     tier-1 peering.  The rng only jitters the failure instant. *)
  let pair =
    match ranked with
    | [] -> None
    | top :: _ ->
        List.find_opt (fun other -> Asgraph.mem_edge graph top other) ranked
        |> Option.map (fun other -> (top, other))
  in
  match pair with
  | None -> []
  | Some (a, b) ->
      let t0 = Random.State.int rng 50 in
      [
        Event.make ~ts_ms:t0 (Event.Link_fail { a; b });
        Event.make ~ts_ms:(t0 + outage_ms) (Event.Link_restore { a; b });
      ]

let hijack_events ~sub ?(victims = 1) ?(duration_ms = 500) model rng =
  let prefixes = Array.of_list model.Qrmodel.prefixes in
  let ases = ases_array model in
  if Array.length prefixes = 0 || Array.length ases < 2 then []
  else
    sample rng prefixes victims
    |> List.concat_map (fun (victim_pfx, victim_as) ->
           let rec pick_attacker () =
             let a = ases.(Random.State.int rng (Array.length ases)) in
             if a = victim_as then pick_attacker () else a
           in
           let attacker = pick_attacker () in
           let prefix =
             if sub then
               Prefix.make (Prefix.network victim_pfx)
                 (min 32 (Prefix.length victim_pfx + 1))
             else victim_pfx
           in
           let t0 = Random.State.int rng 100 in
           [
             Event.make ~ts_ms:t0 (Event.Hijack { prefix; attacker });
             Event.make ~ts_ms:(t0 + duration_ms)
               (Event.Hijack_end { prefix; attacker });
           ])
    |> sort_stream

let subprefix_hijack ?victims ?duration_ms model rng =
  hijack_events ~sub:true ?victims ?duration_ms model rng

let moas_conflict ?victims ?duration_ms model rng =
  hijack_events ~sub:false ?victims ?duration_ms model rng

let mixed ?(events = 32) model rng =
  let edges = edges_array model in
  let prefixes = Array.of_list model.Qrmodel.prefixes in
  let ases = ases_array model in
  if Array.length edges = 0 || Array.length prefixes = 0 then []
  else begin
    let out = ref [] in
    let t = ref 0 in
    let emitted = ref 0 in
    let emit gap action =
      t := !t + 1 + Random.State.int rng gap;
      out := Event.make ~ts_ms:!t action :: !out;
      incr emitted
    in
    while !emitted < events do
      match Random.State.int rng 5 with
      | 0 ->
          let a, b = edges.(Random.State.int rng (Array.length edges)) in
          emit 40 (Event.Session_down { a; b });
          emit 40 (Event.Session_up { a; b })
      | 1 ->
          let p, o = prefixes.(Random.State.int rng (Array.length prefixes)) in
          emit 40 (Event.Withdraw { prefix = p; origin = o });
          emit 40 (Event.Announce { prefix = p; origin = o })
      | 2 ->
          let a, b = edges.(Random.State.int rng (Array.length edges)) in
          emit 40 (Event.Link_fail { a; b });
          emit 40 (Event.Link_restore { a; b })
      | 3 when Array.length ases > 1 ->
          let p, v = prefixes.(Random.State.int rng (Array.length prefixes)) in
          let rec attacker () =
            let a = ases.(Random.State.int rng (Array.length ases)) in
            if a = v then attacker () else a
          in
          let atk = attacker () in
          let sub =
            Prefix.make (Prefix.network p) (min 32 (Prefix.length p + 1))
          in
          emit 40 (Event.Hijack { prefix = sub; attacker = atk });
          emit 40 (Event.Hijack_end { prefix = sub; attacker = atk })
      | _ when Array.length ases > 1 ->
          let p, v = prefixes.(Random.State.int rng (Array.length prefixes)) in
          let rec attacker () =
            let a = ases.(Random.State.int rng (Array.length ases)) in
            if a = v then attacker () else a
          in
          let atk = attacker () in
          emit 40 (Event.Hijack { prefix = p; attacker = atk });
          emit 40 (Event.Hijack_end { prefix = p; attacker = atk })
      | _ ->
          let a, b = edges.(Random.State.int rng (Array.length edges)) in
          emit 40 (Event.Session_down { a; b });
          emit 40 (Event.Session_up { a; b })
    done;
    List.rev !out
  end

let scenario_names = [ "flap-storm"; "depeering"; "hijack"; "moas"; "mixed" ]

let of_name = function
  | "flap-storm" ->
      Some
        (fun ~events model rng ->
          flap_storm ~sessions:(max 1 (events / 6)) model rng)
  | "depeering" -> Some (fun ~events:_ model rng -> tier1_depeering model rng)
  | "hijack" ->
      Some
        (fun ~events model rng ->
          subprefix_hijack ~victims:(max 1 (events / 2)) model rng)
  | "moas" ->
      Some
        (fun ~events model rng ->
          moas_conflict ~victims:(max 1 (events / 2)) model rng)
  | "mixed" -> Some (fun ~events model rng -> mixed ~events model rng)
  | _ -> None
