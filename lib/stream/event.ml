open Bgp

type action =
  | Announce of { prefix : Prefix.t; origin : Asn.t }
  | Withdraw of { prefix : Prefix.t; origin : Asn.t }
  | Session_down of { a : Asn.t; b : Asn.t }
  | Session_up of { a : Asn.t; b : Asn.t }
  | Link_fail of { a : Asn.t; b : Asn.t }
  | Link_restore of { a : Asn.t; b : Asn.t }
  | Hijack of { prefix : Prefix.t; attacker : Asn.t }
  | Hijack_end of { prefix : Prefix.t; attacker : Asn.t }

type t = { ts_ms : int; action : action }

let make ~ts_ms action = { ts_ms; action }

(* Action order: constructor rank, then fields.  Only used as the
   equal-timestamp tie-break of [compare]; any total order works as
   long as it is deterministic. *)
let action_rank = function
  | Announce _ -> 0
  | Withdraw _ -> 1
  | Session_down _ -> 2
  | Session_up _ -> 3
  | Link_fail _ -> 4
  | Link_restore _ -> 5
  | Hijack _ -> 6
  | Hijack_end _ -> 7

let compare_action x y =
  match Int.compare (action_rank x) (action_rank y) with
  | 0 -> (
      let pfx_as p1 a1 p2 a2 =
        match Prefix.compare p1 p2 with 0 -> Asn.compare a1 a2 | c -> c
      in
      let as_pair a1 b1 a2 b2 =
        match Asn.compare a1 a2 with 0 -> Asn.compare b1 b2 | c -> c
      in
      match (x, y) with
      | Announce a, Announce b -> pfx_as a.prefix a.origin b.prefix b.origin
      | Withdraw a, Withdraw b -> pfx_as a.prefix a.origin b.prefix b.origin
      | Session_down a, Session_down b -> as_pair a.a a.b b.a b.b
      | Session_up a, Session_up b -> as_pair a.a a.b b.a b.b
      | Link_fail a, Link_fail b -> as_pair a.a a.b b.a b.b
      | Link_restore a, Link_restore b -> as_pair a.a a.b b.a b.b
      | Hijack a, Hijack b -> pfx_as a.prefix a.attacker b.prefix b.attacker
      | Hijack_end a, Hijack_end b ->
          pfx_as a.prefix a.attacker b.prefix b.attacker
      | _ -> 0 (* unreachable: equal ranks imply equal constructors *))
  | c -> c

let compare x y =
  match Int.compare x.ts_ms y.ts_ms with
  | 0 -> compare_action x.action y.action
  | c -> c

let equal x y = compare x y = 0

let verb = function
  | Announce _ -> "announce"
  | Withdraw _ -> "withdraw"
  | Session_down _ -> "session-down"
  | Session_up _ -> "session-up"
  | Link_fail _ -> "link-fail"
  | Link_restore _ -> "link-restore"
  | Hijack _ -> "hijack"
  | Hijack_end _ -> "hijack-end"

let to_string t =
  match t.action with
  | Announce { prefix; origin } | Withdraw { prefix; origin } ->
      Printf.sprintf "%d %s %s %d" t.ts_ms (verb t.action)
        (Prefix.to_string prefix) origin
  | Session_down { a; b }
  | Session_up { a; b }
  | Link_fail { a; b }
  | Link_restore { a; b } ->
      Printf.sprintf "%d %s %d %d" t.ts_ms (verb t.action) a b
  | Hijack { prefix; attacker } | Hijack_end { prefix; attacker } ->
      Printf.sprintf "%d %s %s %d" t.ts_ms (verb t.action)
        (Prefix.to_string prefix) attacker

let pp ppf t = Format.pp_print_string ppf (to_string t)

let parse_asn s =
  match Asn.of_string s with
  | Some a -> Ok a
  | None -> Error (Printf.sprintf "bad AS number %S" s)

let parse_prefix s =
  match Prefix.of_string s with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "bad prefix %S" s)

let ( let* ) = Result.bind

let of_string line =
  let words =
    String.split_on_char ' ' (String.trim line)
    |> List.filter (fun w -> w <> "")
  in
  match words with
  | [ ts; verb; x; y ] -> (
      let* ts_ms =
        match int_of_string_opt ts with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "bad timestamp %S" ts)
      in
      let pfx_as mk =
        let* prefix = parse_prefix x in
        let* asn = parse_asn y in
        Ok { ts_ms; action = mk prefix asn }
      in
      let as_pair mk =
        let* a = parse_asn x in
        let* b = parse_asn y in
        Ok { ts_ms; action = mk a b }
      in
      match verb with
      | "announce" -> pfx_as (fun prefix origin -> Announce { prefix; origin })
      | "withdraw" -> pfx_as (fun prefix origin -> Withdraw { prefix; origin })
      | "session-down" -> as_pair (fun a b -> Session_down { a; b })
      | "session-up" -> as_pair (fun a b -> Session_up { a; b })
      | "link-fail" -> as_pair (fun a b -> Link_fail { a; b })
      | "link-restore" -> as_pair (fun a b -> Link_restore { a; b })
      | "hijack" -> pfx_as (fun prefix attacker -> Hijack { prefix; attacker })
      | "hijack-end" ->
          pfx_as (fun prefix attacker -> Hijack_end { prefix; attacker })
      | other -> Error (Printf.sprintf "unknown event verb %S" other))
  | _ -> Error (Printf.sprintf "malformed event line %S" line)

let check ~known_as t =
  if t.ts_ms < 0 then Error "negative timestamp"
  else
    let known name a =
      if known_as a then Ok ()
      else Error (Printf.sprintf "unknown %s AS %d" name a)
    in
    match t.action with
    | Announce { origin; _ } | Withdraw { origin; _ } -> known "origin" origin
    | Hijack { attacker; _ } | Hijack_end { attacker; _ } ->
        known "attacker" attacker
    | Session_down { a; b }
    | Session_up { a; b }
    | Link_fail { a; b }
    | Link_restore { a; b } ->
        if a = b then Error "self session/link"
        else
          let* () = known "endpoint" a in
          known "endpoint" b

let normalize ~known_as events =
  let ok, rejected =
    List.fold_left
      (fun (ok, rej) t ->
        match check ~known_as t with
        | Ok () -> (t :: ok, rej)
        | Error reason -> (ok, (t, reason) :: rej))
      ([], []) events
  in
  (* Stable sort on the timestamp alone: equal-timestamp events keep
     their input order, so normalization is a function of the input
     list, not of sort internals. *)
  let sorted =
    List.stable_sort
      (fun x y -> Int.compare x.ts_ms y.ts_ms)
      (List.rev ok)
  in
  (sorted, List.rev rejected)
