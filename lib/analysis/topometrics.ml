module Asgraph = Topology.Asgraph

type summary = {
  nodes : int;
  edges : int;
  avg_degree : float;
  max_degree : int;
  degree_ccdf : (int * float) list;
  powerlaw_alpha : float;
  assortativity : float;
  clustering : float;
  rich_club : float;
  rich_club_k : int;
  coreness : (int * int) list;
  max_core : int;
  betweenness_deciles : float array;
  betweenness_samples : int;
  spectrum : float array;
}

type metric = { name : string; a : float; b : float; similarity : float }

type report = { metrics : metric list; score : float }

(* ------------------------------------------------------------------ *)
(* Dense working view: nodes 0..n-1 with int-array adjacency.  The
   battery is O(n * d^2 + samples * (n + m) + spectrum_k * iters * m),
   comfortably sub-second at the 5k-AS scale the generator reaches. *)

type view = { n : int; adj : int array array; deg : int array }

let view_of_graph g =
  let nodes = Array.of_list (Asgraph.nodes g) in
  let n = Array.length nodes in
  let idx = Hashtbl.create (max 16 n) in
  Array.iteri (fun i a -> Hashtbl.replace idx a i) nodes;
  let adj =
    Array.map
      (fun a ->
        Bgp.Asn.Set.fold
          (fun b acc -> Hashtbl.find idx b :: acc)
          (Asgraph.neighbors g a) []
        |> List.rev |> Array.of_list)
      nodes
  in
  { n; adj; deg = Array.map Array.length adj }

(* ------------------------------------------------------------------ *)
(* Individual metrics *)

let degree_ccdf_of v =
  (* (d, fraction of nodes with degree >= d) for observed degrees. *)
  if v.n = 0 then []
  else begin
    let hist = Hashtbl.create 64 in
    Array.iter
      (fun d ->
        Hashtbl.replace hist d (1 + Option.value ~default:0 (Hashtbl.find_opt hist d)))
      v.deg;
    let ds = Hashtbl.fold (fun d c acc -> (d, c) :: acc) hist [] in
    let ds = List.sort (fun (a, _) (b, _) -> Stdlib.compare b a) ds in
    (* Walk degrees descending, accumulating the >= count. *)
    let _, ccdf =
      List.fold_left
        (fun (above, acc) (d, c) ->
          let above = above + c in
          (above, (d, float_of_int above /. float_of_int v.n) :: acc))
        (0, []) ds
    in
    ccdf
  end

(* Clauset-Shalizi-Newman discrete MLE with x_min = 1:
   alpha = 1 + n / sum (ln (d / (x_min - 1/2))) over positive degrees. *)
let powerlaw_alpha_of v =
  let count = ref 0 and lsum = ref 0.0 in
  Array.iter
    (fun d ->
      if d >= 1 then begin
        incr count;
        lsum := !lsum +. log (float_of_int d /. 0.5)
      end)
    v.deg;
  if !count = 0 || !lsum <= 0.0 then 0.0
  else 1.0 +. (float_of_int !count /. !lsum)

let assortativity_of v =
  (* Pearson correlation of the degrees at the two ends of each edge
     (Newman 2002), counting each undirected edge in both directions. *)
  let m = ref 0.0 in
  let sxy = ref 0.0 and sx = ref 0.0 and sx2 = ref 0.0 in
  Array.iteri
    (fun u nbrs ->
      let du = float_of_int v.deg.(u) in
      Array.iter
        (fun w ->
          let dw = float_of_int v.deg.(w) in
          m := !m +. 1.0;
          sxy := !sxy +. (du *. dw);
          sx := !sx +. du;
          sx2 := !sx2 +. (du *. du))
        nbrs)
    v.adj;
  if !m = 0.0 then 0.0
  else
    let mean = !sx /. !m in
    let num = (!sxy /. !m) -. (mean *. mean) in
    let den = (!sx2 /. !m) -. (mean *. mean) in
    if Float.abs den < 1e-12 then 0.0 else num /. den

let clustering_of v =
  (* Average local clustering; degree-<2 nodes contribute 0. *)
  if v.n = 0 then 0.0
  else begin
    let neighbor_sets =
      Array.map
        (fun nbrs ->
          let h = Hashtbl.create (Array.length nbrs) in
          Array.iter (fun w -> Hashtbl.replace h w ()) nbrs;
          h)
        v.adj
    in
    let total = ref 0.0 in
    Array.iteri
      (fun u nbrs ->
        let d = Array.length nbrs in
        if d >= 2 then begin
          let closed = ref 0 in
          for i = 0 to d - 1 do
            for j = i + 1 to d - 1 do
              if Hashtbl.mem neighbor_sets.(nbrs.(i)) nbrs.(j) then incr closed
            done
          done;
          total :=
            !total
            +. (2.0 *. float_of_int !closed /. float_of_int (d * (d - 1)));
          ignore u
        end)
      v.adj;
    !total /. float_of_int v.n
  end

let rich_club_of v ~k =
  (* Edge density among the k highest-degree nodes (paper: the tier-1
     clique has density 1.0). *)
  let k = min k v.n in
  if k < 2 then 0.0
  else begin
    let order = Array.init v.n (fun i -> i) in
    Array.sort
      (fun a b ->
        match Stdlib.compare v.deg.(b) v.deg.(a) with
        | 0 -> Stdlib.compare a b
        | c -> c)
      order;
    let top = Hashtbl.create k in
    for i = 0 to k - 1 do
      Hashtbl.replace top order.(i) ()
    done;
    let inside = ref 0 in
    Hashtbl.iter
      (fun u () ->
        Array.iter
          (fun w -> if u < w && Hashtbl.mem top w then incr inside)
          v.adj.(u))
      top;
    2.0 *. float_of_int !inside /. float_of_int (k * (k - 1))
  end

let coreness_of v =
  (* Standard O(m) peeling (Batagelj-Zaversnik): repeatedly strip the
     minimum-degree node; its degree at removal is its coreness. *)
  if v.n = 0 then [||]
  else begin
    let deg = Array.copy v.deg in
    let core = Array.make v.n 0 in
    let removed = Array.make v.n false in
    let module Pq = Set.Make (struct
      type t = int * int

      let compare = Stdlib.compare
    end) in
    let pq = ref Pq.empty in
    Array.iteri (fun i d -> pq := Pq.add (d, i) !pq) deg;
    let current = ref 0 in
    while not (Pq.is_empty !pq) do
      let ((d, u) as e) = Pq.min_elt !pq in
      pq := Pq.remove e !pq;
      if not removed.(u) then begin
        current := max !current d;
        core.(u) <- !current;
        removed.(u) <- true;
        Array.iter
          (fun w ->
            if not removed.(w) then begin
              pq := Pq.remove (deg.(w), w) !pq;
              deg.(w) <- deg.(w) - 1;
              pq := Pq.add (deg.(w), w) !pq
            end)
          v.adj.(u)
      end
    done;
    core
  end

let coreness_hist core =
  let h = Hashtbl.create 16 in
  Array.iter
    (fun k -> Hashtbl.replace h k (1 + Option.value ~default:0 (Hashtbl.find_opt h k)))
    core;
  Hashtbl.fold (fun k c acc -> (k, c) :: acc) h [] |> List.sort Stdlib.compare

(* Brandes betweenness from a deterministic sample of BFS sources
   (every ceil(n/samples)-th node in index order), max-normalized so
   two worlds compare on the shape of the centrality distribution. *)
let betweenness_of v ~samples =
  if v.n = 0 then [||]
  else begin
    let bc = Array.make v.n 0.0 in
    let samples = max 1 (min samples v.n) in
    let step = max 1 (v.n / samples) in
    let dist = Array.make v.n (-1) in
    let sigma = Array.make v.n 0.0 in
    let delta = Array.make v.n 0.0 in
    let order = Array.make v.n 0 in
    let preds = Array.make v.n [] in
    let s = ref 0 in
    while !s < v.n do
      let src = !s in
      Array.fill dist 0 v.n (-1);
      Array.fill sigma 0 v.n 0.0;
      Array.fill delta 0 v.n 0.0;
      Array.fill preds 0 v.n [];
      dist.(src) <- 0;
      sigma.(src) <- 1.0;
      let head = ref 0 and tail = ref 0 in
      order.(!tail) <- src;
      incr tail;
      while !head < !tail do
        let u = order.(!head) in
        incr head;
        Array.iter
          (fun w ->
            if dist.(w) < 0 then begin
              dist.(w) <- dist.(u) + 1;
              order.(!tail) <- w;
              incr tail
            end;
            if dist.(w) = dist.(u) + 1 then begin
              sigma.(w) <- sigma.(w) +. sigma.(u);
              preds.(w) <- u :: preds.(w)
            end)
          v.adj.(u)
      done;
      for i = !tail - 1 downto 0 do
        let w = order.(i) in
        List.iter
          (fun u ->
            delta.(u) <-
              delta.(u) +. (sigma.(u) /. sigma.(w) *. (1.0 +. delta.(w))))
          preds.(w);
        if w <> src then bc.(w) <- bc.(w) +. delta.(w)
      done;
      s := !s + step
    done;
    let mx = Array.fold_left Float.max 0.0 bc in
    if mx > 0.0 then Array.map (fun x -> x /. mx) bc else bc
  end

let deciles values =
  let n = Array.length values in
  if n = 0 then Array.make 11 0.0
  else begin
    let sorted = Array.copy values in
    Array.sort Stdlib.compare sorted;
    Array.init 11 (fun i ->
        let pos = i * (n - 1) / 10 in
        sorted.(pos))
  end

(* Top-k adjacency eigenvalues: power iteration with Gram-Schmidt
   deflation against previously found eigenvectors.  We iterate on the
   shifted matrix A + sigma*I with sigma = 1 + max_degree: A's
   spectrum lies in [-max_degree, max_degree], so the shift makes
   every eigenvalue positive and — crucially — breaks the +/-lambda
   tie of bipartite graphs, where plain power iteration oscillates
   between the two dominant eigenvectors and its Rayleigh quotient
   converges to a meaningless mixture.  Deterministic start vectors
   (index-hash perturbation), so equal graphs yield byte-equal
   spectra. *)
let spectrum_of v ~k =
  let k = min k v.n in
  if k = 0 then [||]
  else begin
    let sigma =
      1.0 +. float_of_int (Array.fold_left (fun m d -> max m d) 0 v.deg)
    in
    let matvec x =
      let y = Array.make v.n 0.0 in
      Array.iteri
        (fun u nbrs ->
          y.(u) <- sigma *. x.(u);
          Array.iter (fun w -> y.(u) <- y.(u) +. x.(w)) nbrs)
        v.adj;
      y
    in
    let dot a b =
      let s = ref 0.0 in
      Array.iteri (fun i x -> s := !s +. (x *. b.(i))) a;
      !s
    in
    let norm a = sqrt (dot a a) in
    let found = ref [] in
    let eigs = ref [] in
    for comp = 0 to k - 1 do
      let x =
        Array.init v.n (fun i ->
            1.0 +. (float_of_int (((i * 7919) + (comp * 104729)) mod 1000) /. 1000.0))
      in
      let orthogonalize x =
        List.iter
          (fun vprev ->
            let c = dot x vprev in
            Array.iteri (fun i xv -> x.(i) <- xv -. (c *. vprev.(i))) x)
          !found
      in
      let x = ref x in
      let lambda = ref 0.0 in
      (try
         for _ = 1 to 200 do
           orthogonalize !x;
           let nx = norm !x in
           if nx < 1e-12 then raise Exit;
           Array.iteri (fun i xv -> !x.(i) <- xv /. nx) !x;
           let y = matvec !x in
           let l = dot !x y in
           let converged = Float.abs (l -. !lambda) < 1e-9 *. (1.0 +. Float.abs l) in
           lambda := l;
           x := y;
           if converged then raise Exit
         done
       with Exit -> ());
      let nx = norm !x in
      if nx > 1e-12 then begin
        Array.iteri (fun i xv -> !x.(i) <- xv /. nx) !x;
        found := !x :: !found
      end;
      eigs := (!lambda -. sigma) :: !eigs
    done;
    let arr = Array.of_list (List.rev !eigs) in
    (* Magnitude-descending order for stable cross-world comparison;
       ties (the +/-lambda pairs of bipartite graphs) break toward the
       positive eigenvalue so the order is deterministic. *)
    Array.sort
      (fun a b ->
        match Stdlib.compare (Float.abs b) (Float.abs a) with
        | 0 -> Stdlib.compare b a
        | c -> c)
      arr;
    arr
  end

(* ------------------------------------------------------------------ *)

let summarize ?(betweenness_samples = 64) ?(spectrum_k = 5) ?(rich_club_k = 10)
    g =
  let v = view_of_graph g in
  let core = coreness_of v in
  {
    nodes = v.n;
    edges = Asgraph.num_edges g;
    avg_degree =
      (if v.n = 0 then 0.0
       else float_of_int (Array.fold_left ( + ) 0 v.deg) /. float_of_int v.n);
    max_degree = Array.fold_left max 0 v.deg;
    degree_ccdf = degree_ccdf_of v;
    powerlaw_alpha = powerlaw_alpha_of v;
    assortativity = assortativity_of v;
    clustering = clustering_of v;
    rich_club = rich_club_of v ~k:rich_club_k;
    rich_club_k;
    coreness = coreness_hist core;
    max_core = Array.fold_left max 0 core;
    betweenness_deciles = deciles (betweenness_of v ~samples:betweenness_samples);
    betweenness_samples;
    spectrum = spectrum_of v ~k:spectrum_k;
  }

(* ------------------------------------------------------------------ *)
(* Similarities: every component maps to [0,1] with the property that
   comparing a summary with itself gives exactly 1.0. *)

(* Kolmogorov-Smirnov distance between two discrete distributions given
   as (value, count-or-mass) histograms. *)
let ks_distance hist_a hist_b =
  let total h = List.fold_left (fun acc (_, c) -> acc +. c) 0.0 h in
  let ta = total hist_a and tb = total hist_b in
  if ta = 0.0 && tb = 0.0 then 0.0
  else if ta = 0.0 || tb = 0.0 then 1.0
  else begin
    let support =
      List.sort_uniq Stdlib.compare
        (List.map fst hist_a @ List.map fst hist_b)
    in
    let cum h t =
      (* value -> cumulative fraction <= value *)
      let tbl = Hashtbl.create 32 in
      let acc = ref 0.0 in
      List.iter
        (fun v ->
          (match List.assoc_opt v h with
          | Some c -> acc := !acc +. c
          | None -> ());
          Hashtbl.replace tbl v (!acc /. t))
        support;
      tbl
    in
    let sorted h = List.sort Stdlib.compare h in
    let ca = cum (sorted hist_a) ta and cb = cum (sorted hist_b) tb in
    List.fold_left
      (fun acc v ->
        Float.max acc (Float.abs (Hashtbl.find ca v -. Hashtbl.find cb v)))
      0.0 support
  end

let sim_abs ?(range = 1.0) a b = Float.max 0.0 (1.0 -. (Float.abs (a -. b) /. range))

let sim_rel a b =
  let d = Float.abs (a -. b) in
  if d = 0.0 then 1.0
  else Float.max 0.0 (1.0 -. Float.min 1.0 (d /. Float.max (Float.abs a) (Float.abs b)))

let degree_hist_of_summary s =
  (* Recover (degree, mass) pairs from the stored CCDF steps. *)
  let rec go = function
    | [] -> []
    | [ (d, frac) ] -> [ (d, frac) ]
    | (d, frac) :: ((_, frac') :: _ as rest) -> (d, frac -. frac') :: go rest
  in
  go s.degree_ccdf

let spectral_similarity sa sb =
  (* Compare eigenvalue magnitudes: on (near-)bipartite worlds the
     dominant eigenvalue comes with its negative partner and power
     iteration may land on either sign, so signed comparison would
     penalize structurally identical graphs. *)
  let la = Array.length sa and lb = Array.length sb in
  let k = max la lb in
  if k = 0 then 1.0
  else begin
    let get arr i = if i < Array.length arr then Float.abs arr.(i) else 0.0 in
    let scale = Float.max 1e-9 (Float.max (get sa 0) (get sb 0)) in
    let total = ref 0.0 in
    for i = 0 to k - 1 do
      total := !total +. Float.abs (get sa i -. get sb i)
    done;
    Float.max 0.0 (1.0 -. Float.min 1.0 (!total /. float_of_int k /. scale))
  end

let deciles_similarity da db =
  let k = max (Array.length da) (Array.length db) in
  if k = 0 then 1.0
  else begin
    let get arr i = if i < Array.length arr then arr.(i) else 0.0 in
    let total = ref 0.0 in
    for i = 0 to k - 1 do
      total := !total +. Float.abs (get da i -. get db i)
    done;
    Float.max 0.0 (1.0 -. (!total /. float_of_int k))
  end

let compare_summaries a b =
  let fl (d, c) = (d, float_of_int c) in
  let metrics =
    [
      {
        name = "degree_ccdf_ks";
        a = a.avg_degree;
        b = b.avg_degree;
        similarity =
          1.0
          -. ks_distance
               (degree_hist_of_summary a |> List.map (fun (d, m) -> (d, m)))
               (degree_hist_of_summary b);
      };
      {
        name = "powerlaw_alpha";
        a = a.powerlaw_alpha;
        b = b.powerlaw_alpha;
        similarity = sim_rel a.powerlaw_alpha b.powerlaw_alpha;
      };
      {
        name = "assortativity";
        a = a.assortativity;
        b = b.assortativity;
        similarity = sim_abs ~range:2.0 a.assortativity b.assortativity;
      };
      {
        name = "clustering";
        a = a.clustering;
        b = b.clustering;
        similarity = sim_abs a.clustering b.clustering;
      };
      {
        name = "rich_club";
        a = a.rich_club;
        b = b.rich_club;
        similarity = sim_abs a.rich_club b.rich_club;
      };
      {
        name = "coreness_ks";
        a = float_of_int a.max_core;
        b = float_of_int b.max_core;
        similarity =
          1.0 -. ks_distance (List.map fl a.coreness) (List.map fl b.coreness);
      };
      {
        name = "betweenness";
        a =
          (if Array.length a.betweenness_deciles > 5 then
             a.betweenness_deciles.(5)
           else 0.0);
        b =
          (if Array.length b.betweenness_deciles > 5 then
             b.betweenness_deciles.(5)
           else 0.0);
        similarity =
          deciles_similarity a.betweenness_deciles b.betweenness_deciles;
      };
      {
        name = "spectral";
        a = (if Array.length a.spectrum > 0 then a.spectrum.(0) else 0.0);
        b = (if Array.length b.spectrum > 0 then b.spectrum.(0) else 0.0);
        similarity = spectral_similarity a.spectrum b.spectrum;
      };
    ]
  in
  let score =
    List.fold_left (fun acc m -> acc +. m.similarity) 0.0 metrics
    /. float_of_int (List.length metrics)
  in
  { metrics; score }

let compare = compare_summaries

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d m=%d avg_deg=%.2f max_deg=%d alpha=%.2f assort=%+.3f clust=%.3f \
     rich_club(%d)=%.2f max_core=%d lambda1=%.2f"
    s.nodes s.edges s.avg_degree s.max_degree s.powerlaw_alpha s.assortativity
    s.clustering s.rich_club_k s.rich_club s.max_core
    (if Array.length s.spectrum > 0 then s.spectrum.(0) else 0.0)

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%-16s %10s %10s %6s@," "metric" "A" "B" "sim";
  List.iter
    (fun m ->
      Format.fprintf ppf "%-16s %10.3f %10.3f %6.3f@," m.name m.a m.b
        m.similarity)
    r.metrics;
  Format.fprintf ppf "%-16s %21s %6.3f@]" "similarity" "" r.score
