module Net = Simulator.Net
module Pool = Simulator.Pool
module Runtime = Simulator.Runtime

type mode = Runtime.Check_mode.t = Off | On | Race

let parse s = Result.to_option (Runtime.Check_mode.parse s)

let mode_to_string = Runtime.Check_mode.to_string

type violation = {
  rule : string;
  domain : int;
  in_batch : bool;
  detail : string;
}

(* Per-net audit state, keyed by physical identity.  The list is
   bounded: RD_CHECK is a debug knob and each entry pins its net, so a
   long run creating many nets must not grow (or retain) without
   limit. *)
type entry = { net : Net.t; owner : int; mutable last_gen : int }

let max_tracked = 256

let mutex = Mutex.create ()

let recorded : violation list ref = ref []

let nrecorded = Atomic.make 0

let tracked : entry list ref = ref []

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let record net m =
  let domain = (Domain.self () :> int) in
  let in_batch = Pool.batch_active () in
  Mutex.protect mutex (fun () ->
      let add rule detail =
        recorded := { rule; domain; in_batch; detail } :: !recorded;
        Atomic.incr nrecorded
      in
      let rule =
        match m with
        | Net.Structural { rule; _ } | Net.Policy { rule; _ } -> rule
      in
      let entry =
        match List.find_opt (fun e -> e.net == net) !tracked with
        | Some e -> e
        | None ->
            let e = { net; owner = domain; last_gen = min_int } in
            tracked := e :: take (max_tracked - 1) !tracked;
            e
      in
      if entry.owner <> domain then
        add rule
          (Printf.sprintf
             "cross-domain mutation: net first mutated by domain %d, now \
              mutated by domain %d"
             entry.owner domain);
      if in_batch then
        add rule "mutation while a Pool batch is in flight";
      match m with
      | Net.Structural { generation; _ } ->
          if generation <= entry.last_gen then
            add rule
              (Printf.sprintf
                 "structural mutation did not bump the generation (still %d)"
                 generation);
          entry.last_gen <- max generation entry.last_gen
      | Net.Policy { prefix; node; _ } ->
          (* Reading the touched table is only safe from the owning
             domain outside a batch; under violation conditions the
             ownership finding above already fired. *)
          if
            (not in_batch) && entry.owner = domain
            && not (List.mem node (Net.touched_nodes net prefix))
          then
            add rule
              (Printf.sprintf
                 "per-prefix mutation did not record node %d in the touched \
                  set of %s"
                 node
                 (Format.asprintf "%a" Bgp.Prefix.pp prefix)))

(* The mode lives in {!Runtime} (with the other knobs); this module
   owns only the hook.  [sync] reconciles the hook with the ambient
   mode — the analysis layer sits above the simulator, so Runtime
   cannot install it when the mode is set through Runtime directly;
   the next [current]/[ensure] call here does. *)
let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Net.set_mutation_hook (Some record)
  end

let uninstall () =
  if !installed then begin
    installed := false;
    Net.set_mutation_hook None
  end

(* [Race] is a strict superset of [On]: the mutation-discipline hook
   stays installed and the happens-before detector's probe hook comes
   up beside it (Race.sync). *)
let sync m =
  (match m with On | Race -> install () | Off -> uninstall ());
  Race.sync m

let set m =
  Runtime.set_check m;
  sync m

let current () =
  let m = Runtime.check () in
  sync m;
  m

let ensure () = ignore (current ())

let violations () = Mutex.protect mutex (fun () -> List.rev !recorded)

let violation_count () = Atomic.get nrecorded

let reset () =
  Mutex.protect mutex (fun () ->
      recorded := [];
      Atomic.set nrecorded 0;
      tracked := [])

let pp_violation ppf v =
  Format.fprintf ppf "[%s] domain %d%s: %s" v.rule v.domain
    (if v.in_batch then " (in batch)" else "")
    v.detail
