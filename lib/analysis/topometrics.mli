(** Topology-fidelity metric battery.

    *Beyond Node Degree* argues that degree distribution alone is a
    weak fidelity test for synthetic AS topologies; this module
    implements the richer battery it recommends over
    {!Topology.Asgraph.t} — degree CCDF + power-law exponent,
    assortativity, clustering, rich-club connectivity, k-coreness,
    sampled betweenness and spectral distance — and reduces any two
    worlds to a typed per-metric report with one normalized similarity
    score.  Everything is deterministic (sampled BFS sources and power
    -iteration start vectors are index-derived, not random), so equal
    graphs always score exactly 1.0. *)

type summary = {
  nodes : int;
  edges : int;
  avg_degree : float;
  max_degree : int;
  degree_ccdf : (int * float) list;
      (** [(d, fraction of nodes with degree >= d)], ascending [d]. *)
  powerlaw_alpha : float;
      (** Discrete MLE power-law exponent fit with [x_min = 1]
          (Clauset-Shalizi-Newman); 0 on an edgeless graph. *)
  assortativity : float;
      (** Pearson degree correlation over edge endpoints (Newman);
          negative means hubs attach to low-degree nodes, as on the
          Internet. *)
  clustering : float;  (** Average local clustering coefficient. *)
  rich_club : float;
      (** Edge density among the [rich_club_k] highest-degree nodes
          (the paper's tier-1 clique scores 1.0). *)
  rich_club_k : int;
  coreness : (int * int) list;  (** [(coreness, node count)] ascending. *)
  max_core : int;
  betweenness_deciles : float array;
      (** 11 deciles (0th..100th percentile) of max-normalized sampled
          Brandes betweenness. *)
  betweenness_samples : int;
  spectrum : float array;
      (** Top-k adjacency eigenvalues by magnitude, via power iteration
          with deflation. *)
}

type metric = {
  name : string;
  a : float;  (** representative scalar of the first world *)
  b : float;  (** representative scalar of the second world *)
  similarity : float;  (** in [0,1]; 1.0 iff the metric agrees exactly *)
}

type report = { metrics : metric list; score : float }
(** [score] is the mean of the per-metric similarities, in [0,1]. *)

val summarize :
  ?betweenness_samples:int ->
  ?spectrum_k:int ->
  ?rich_club_k:int ->
  Topology.Asgraph.t ->
  summary
(** Computes the full battery.  Defaults: 64 betweenness BFS sources
    (taken every n/64-th node in ASN order), top-5 eigenvalues,
    rich-club over the top-10 degrees. *)

val compare : summary -> summary -> report
(** Symmetric up to the [a]/[b] column labels; [compare s s] has every
    similarity and the overall score exactly [1.0]. *)

val compare_summaries : summary -> summary -> report
(** Alias of {!compare} for call sites that keep [Stdlib.compare] in
    scope. *)

val pp_summary : Format.formatter -> summary -> unit
val pp_report : Format.formatter -> report -> unit
