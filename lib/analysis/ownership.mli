(** Mutation-discipline checker (the [RD_CHECK] knob).

    The pool's contract is that nothing mutates a network while a batch
    may be reading it, and the warm-start resume of PR 3 additionally
    relies on every mutation maintaining the generation / touched-set
    bookkeeping.  With [RD_CHECK=on] this module installs itself as
    {!Simulator.Net.set_mutation_hook} observer and audits every
    mutation:

    - {b ownership}: the first domain that mutates a net owns it; a
      mutation from any other domain is recorded as a violation;
    - {b batch scope}: any mutation while {!Simulator.Pool.batch_active}
      is a violation — mutation must never be concurrent with
      simulation;
    - {b bookkeeping soundness}: a structural mutation must have bumped
      the generation counter, and a per-prefix mutation must have
      recorded its node in the prefix's touched set.

    Violations are recorded (thread-safely) rather than raised: the
    checker must not change control flow, only observability.  The
    refiner reports them after each run; tests assert on them.  With
    [RD_CHECK=off] (the default) no hook is installed and mutators pay
    one load and a branch. *)

type mode = Simulator.Runtime.Check_mode.t = Off | On | Race

val parse : string -> mode option
(** ["off"]/["0"]/["false"]/[""], ["on"]/["1"]/["true"] and
    ["race"]/["hb"]. *)

val mode_to_string : mode -> string

val set : mode -> unit
(** Process-wide override (wired to tests and the bench driver):
    records the mode in {!Simulator.Runtime} and installs or removes
    the {!Simulator.Net} hook accordingly.  [Race] keeps this hook and
    additionally installs the {!Race} happens-before detector's
    {!Obs.Probe} hook — a strict superset of [On]. *)

val current : unit -> mode
(** The mode in force, read from {!Simulator.Runtime} (the value set
    via either API, else [RD_CHECK] from the environment, else {!Off})
    — and the hook is synced to it, so a mode set through
    [Runtime.set_check] takes effect here. *)

val ensure : unit -> unit
(** Resolve the mode (and install the hook if needed) — called at
    refiner entry so linking the library suffices to honour
    [RD_CHECK]. *)

type violation = {
  rule : string;  (** the mutator that fired, e.g. ["deny-export"] *)
  domain : int;  (** id of the mutating domain *)
  in_batch : bool;  (** a {!Simulator.Pool} batch was in flight *)
  detail : string;
}

val record : Simulator.Net.t -> Simulator.Net.mutation -> unit
(** The hook itself, exposed so tests can drive the audit directly
    (it records violations whether or not the hook is installed). *)

val violations : unit -> violation list
(** All violations since the last {!reset}, oldest first. *)

val violation_count : unit -> int

val reset : unit -> unit
(** Drop recorded violations and forget net ownership. *)

val pp_violation : Format.formatter -> violation -> unit
