(** Lint entry points: run every rule family over a model.

    Static rules ({!Rules}) plus the structural audits ({!Audit}) that
    cross-validate the frozen fast-path structures against the live
    net.  No simulation is run, so linting is cheap enough for CI and
    for the refiner's post-run self-check ([check] does spawn one
    short-lived domain for the intern-table isolation audit). *)

val check_net : Simulator.Net.t -> Report.t
(** Structural rules and the CSR audit (no origin-table context). *)

val check : Asmodel.Qrmodel.t -> Report.t
(** Structural and policy rules, the CSR audit and the intern-table
    integrity audit.  A freshly refined model is expected to be clean
    of [Error]s; [asmodel lint] exits non-zero otherwise. *)
