(** Lint entry points: run every rule family over a model.

    Pure static analysis — no simulation is run, so linting is cheap
    enough for CI and for the refiner's post-run self-check. *)

val check_net : Simulator.Net.t -> Report.t
(** Structural rules only (no origin-table context). *)

val check : Asmodel.Qrmodel.t -> Report.t
(** Structural and policy rules.  A freshly refined model is expected
    to be clean of [Error]s; [asmodel lint] exits non-zero otherwise. *)
