(** Happens-before race detector (the [RD_CHECK=race] mode).

    A vector-clock/epoch checker over the {!Obs.Probe} instrumentation:
    {!Simulator.Pool} publishes worker spawn/join as release/acquire
    edges, the Snapshot executor publishes its hand-off, and the shared
    structures (net structure and policy tables, the CSR publish,
    engine state slabs, replay journals, metrics counters) record their
    accesses.  Two accesses to the same object race when at least one
    is a write, they come from different domains, and neither
    happens-before the other under the published edges; each race is
    recorded once per (object, sites) pair with both access sites and
    both domain ids.

    Documented benign races are declared — with a written
    justification — in the single {!allowlist}; the detector still
    sees them (they count in {!benign_count}) but they produce no
    finding.  {e Anything undeclared fails.}

    Like {!Ownership}, the detector records rather than raises, and is
    synced to the ambient {!Simulator.Runtime.Check_mode} by
    [Ownership.sync] — [Race] installs both the ownership hook and
    this one (a strict superset of [on]). *)

type access = { site : string; domain : int }

type race = {
  obj : string;  (** shared-object name, e.g. ["net#3/policy"] *)
  conflict : string;  (** ["write-write"], ["read-write"], ["write-read"] *)
  prior : access;
  current : access;
}

val allowlist : (string * string) list
(** The declared benign races: [(object-name fragment, justification)].
    An access pair on a matching object is suppressed and counted in
    {!benign_count} instead of reported. *)

val sync : Simulator.Runtime.Check_mode.t -> unit
(** Install the probe hook for [Race], remove it otherwise.  Called by
    [Ownership.sync]; callers normally go through [Ownership.set]. *)

val races : unit -> race list
(** Non-benign races since the last {!reset}, oldest first,
    de-duplicated by (object, conflict, sites). *)

val race_count : unit -> int

val benign_count : unit -> int
(** Allowlisted race observations — proof the declarations are doing
    work, not masking silence. *)

val findings : unit -> Report.finding list
(** {!races} rendered as [Error] findings (rule [race-*]) for
    {!Lint}-style reporting and the [asmodel check] exit code. *)

val reset : unit -> unit
(** Drop recorded races, clocks, channels and object histories. *)

val pp_race : Format.formatter -> race -> unit
