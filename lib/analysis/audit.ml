module Net = Simulator.Net
module Engine = Simulator.Engine
module Decision = Simulator.Decision
module Rattr = Simulator.Rattr
module Intern = Simulator.Intern
open Bgp

(* Structural auditor: cross-validate the frozen fast-path structures
   (the CSR session index, engine state slabs, intern tables) against
   the mutable ground truth they were derived from.  The CSR arrays are
   compared against the live [Net] record accessors — those read the
   node records directly, never the index, so agreement is a real
   round-trip and not the index validating itself.  Pure reads: an
   audit never mutates the net or the state. *)

(* Finding accumulator with a per-rule cap.  Audits run over every slot
   of every node; a systematically broken structure must surface as a
   bounded report, not tens of thousands of identical findings. *)

let per_rule_cap = 25

type acc = {
  mutable fs : Report.finding list;  (* newest first *)
  counts : (string, int) Hashtbl.t;
}

let acc () = { fs = []; counts = Hashtbl.create 8 }

let add a severity rule location message hint =
  let n = Option.value ~default:0 (Hashtbl.find_opt a.counts rule) in
  Hashtbl.replace a.counts rule (n + 1);
  if n < per_rule_cap then
    a.fs <- { Report.severity; rule; location; message; hint } :: a.fs

let close a =
  let extra =
    Hashtbl.fold
      (fun rule n acc ->
        if n <= per_rule_cap then acc
        else
          {
            Report.severity = Report.Error;
            rule;
            location = Report.Network;
            message =
              Printf.sprintf "%d further [%s] findings suppressed (cap %d)"
                (n - per_rule_cap) rule per_rule_cap;
            hint = "fix the reported instances first; the rest are alike";
          }
          :: acc)
      a.counts []
  in
  List.rev_append a.fs extra

let err a = add a Report.Error

let warn a = add a Report.Warn

(* -- CSR index vs live net ------------------------------------------- *)

let csr_hint =
  "the CSR index disagrees with the node records it was built from — \
   either a mutator bypassed the generation bump (see RD_CHECK=on) or \
   a caller wrote into the shared CSR arrays"

let csr net =
  let a = acc () in
  let c = Net.csr net in
  let nc = Net.node_count net in
  let sc = Net.session_count net in
  if Net.Csr.generation c <> Net.generation net then
    err a "audit-csr-generation" Report.Network
      (Printf.sprintf "CSR generation %d but net generation %d"
         (Net.Csr.generation c) (Net.generation net))
      "Net.csr must rebuild on generation mismatch; this cache is stale";
  if Net.Csr.node_count c <> nc then
    err a "audit-csr-shape" Report.Network
      (Printf.sprintf "CSR has %d nodes, net has %d" (Net.Csr.node_count c) nc)
      csr_hint;
  if Net.Csr.slot_count c <> sc then
    err a "audit-csr-shape" Report.Network
      (Printf.sprintf "CSR has %d slots, net counts %d half-sessions"
         (Net.Csr.slot_count c) sc)
      csr_hint;
  let off = Net.Csr.off c
  and peer = Net.Csr.peer c
  and rev = Net.Csr.rev c
  and rev_local = Net.Csr.reverse_local c
  and kinds = Net.Csr.kinds c
  and classes = Net.Csr.classes c
  and lprefs = Net.Csr.lprefs c
  and carries = Net.Csr.carries c
  and rrs = Net.Csr.rr_clients c
  and asns = Net.Csr.asns c
  and ips = Net.Csr.ips c in
  let nodes = min nc (Net.Csr.node_count c) in
  if Array.length off <> Net.Csr.node_count c + 1 || off.(0) <> 0 then
    err a "audit-csr-offsets" Report.Network
      "offset array malformed (wrong length or off.(0) <> 0)" csr_hint;
  for n = 0 to nodes - 1 do
    let width = off.(n + 1) - off.(n) in
    if width < 0 then
      err a "audit-csr-offsets" (Report.Node n)
        (Printf.sprintf "offsets not monotone at node %d" n)
        csr_hint
    else if width <> Net.session_count_of net n then
      err a "audit-csr-offsets" (Report.Node n)
        (Printf.sprintf "node %d has %d sessions but a CSR slot range of %d" n
           (Net.session_count_of net n) width)
        csr_hint;
    if asns.(n) <> Net.asn_of net n then
      err a "audit-csr-node" (Report.Node n)
        (Printf.sprintf "node %d: CSR ASN %d, net ASN %d" n asns.(n)
           (Net.asn_of net n))
        csr_hint;
    if ips.(n) <> Ipv4.to_int (Net.ip_of net n) then
      err a "audit-csr-node" (Report.Node n)
        (Printf.sprintf "node %d: CSR address %d, net address %d" n ips.(n)
           (Ipv4.to_int (Net.ip_of net n)))
        csr_hint;
    let base = off.(n) in
    for s = 0 to min width (Net.session_count_of net n) - 1 do
      let k = base + s in
      let loc = Report.Session (n, s) in
      let slot what got want =
        if got <> want then
          err a "audit-csr-slot" loc
            (Printf.sprintf "node %d session %d: CSR %s %d, net %s %d" n s
               what got what want)
            csr_hint
      in
      slot "peer" peer.(k) (Net.session_peer net n s);
      slot "kind" kinds.(k)
        (match Net.session_kind net n s with Net.Ebgp -> 0 | Net.Ibgp -> 1);
      slot "class" classes.(k) (Net.session_class net n s);
      slot "lpref" lprefs.(k)
        (match Net.import_lpref net n s with
        | Some v -> v
        | None -> Net.Csr.no_lpref);
      slot "carry" carries.(k) (if Net.carry_lpref net n s then 1 else 0);
      slot "rr-client" rrs.(k) (if Net.rr_client net n s then 1 else 0);
      let r = Net.session_reverse net n s in
      slot "reverse-local" rev_local.(k) r;
      let p = peer.(k) in
      if r < 0 || p < 0 || p >= Net.Csr.node_count c then begin
        if rev.(k) <> -1 then
          err a "audit-csr-rev" loc
            (Printf.sprintf
               "node %d session %d is dangling but CSR rev is %d (want -1)" n
               s rev.(k))
            csr_hint
      end
      else if rev.(k) <> off.(p) + r then
        err a "audit-csr-rev" loc
          (Printf.sprintf
             "node %d session %d: CSR rev %d, expected slot %d (= off %d + \
              reverse %d at peer %d)"
             n s rev.(k) (off.(p) + r) off.(p) r p)
          csr_hint
      else if
        rev.(k) >= 0
        && rev.(k) < Array.length rev
        && rev.(rev.(k)) <> k
      then
        err a "audit-csr-rev" loc
          (Printf.sprintf
             "node %d session %d: rev round-trip broken (rev(rev(%d)) = %d)" n
             s k
             rev.(rev.(k)))
          csr_hint
    done
  done;
  close a

(* -- engine state slab vs net and decision process ------------------- *)

let state_hint =
  "the frozen state disagrees with the net it claims to model — a \
   mutation slipped past the generation/touched bookkeeping (run under \
   RD_CHECK=race to find the unordered writer)"

(* A non-sentinel slab entry whose fields mirror [no_route]'s absurd
   values is almost certainly a structural copy of the sentinel — the
   exact bug the [==]-only discipline exists to prevent. *)
let sentinel_clone r =
  Rattr.is_route r && r.Rattr.from_node = min_int && r.Rattr.lpref = min_int
  && r.Rattr.from_session = min_int

let path_mem path asn = Array.exists (fun x -> x = asn) path

let pp_path path =
  if Array.length path = 0 then "<empty>"
  else
    String.concat " " (Array.to_list (Array.map string_of_int path))

let state net st =
  let a = acc () in
  let pfx = Engine.prefix st in
  if Engine.generation st <> Net.generation net then begin
    warn a "audit-stale-state" (Report.Prefix_loc pfx)
      (Printf.sprintf
         "state for %s was computed at generation %d; net is at %d — \
          skipping the structural audit"
         (Format.asprintf "%a" Prefix.pp pfx)
         (Engine.generation st) (Net.generation net))
      "re-simulate (or warm-resume) before auditing";
    close a
  end
  else begin
    let policy_stale = Net.touched_nodes net pfx <> [] in
    if policy_stale then
      warn a "audit-stale-policy" (Report.Prefix_loc pfx)
        (Printf.sprintf
           "per-prefix policy for %s changed since this state converged — \
            policy-dependent checks skipped"
           (Format.asprintf "%a" Prefix.pp pfx))
        "re-simulate before auditing, or clear the touched set";
    let converged = Engine.converged st && not policy_stale in
    let nc = Net.node_count net in
    for n = 0 to nc - 1 do
      (* Slab shape: every live slot must describe a route genuinely
         received over that session, whatever the policies say. *)
      List.iter
        (fun (s, r) ->
          let loc = Report.Session_prefix (n, s, pfx) in
          if sentinel_clone r then
            err a "audit-sentinel-clone" loc
              (Printf.sprintf
                 "node %d session %d holds a structural copy of \
                  Rattr.no_route that is not the sentinel"
                 n s)
              "never rebuild no_route field-by-field; reuse the sentinel \
               so [==] identifies it"
          else if s < 0 || s >= Net.session_count_of net n then
            err a "audit-slab-session" (Report.Node_prefix (n, pfx))
              (Printf.sprintf "node %d RIB-In names session %d out of range"
                 n s)
              state_hint
          else begin
            if r.Rattr.from_session <> s then
              err a "audit-slab-session" loc
                (Printf.sprintf
                   "node %d session %d: route says from_session %d" n s
                   r.Rattr.from_session)
                state_hint;
            let u = Net.session_peer net n s in
            if r.Rattr.from_node <> u then
              err a "audit-slab-session" loc
                (Printf.sprintf
                   "node %d session %d: route says from_node %d, session \
                    peers %d"
                   n s r.Rattr.from_node u)
                state_hint
            else begin
              if r.Rattr.from_ip <> Ipv4.to_int (Net.ip_of net u) then
                err a "audit-slab-session" loc
                  (Printf.sprintf
                     "node %d session %d: announcing address %d but peer %d \
                      has address %d"
                     n s r.Rattr.from_ip u
                     (Ipv4.to_int (Net.ip_of net u)))
                  state_hint;
              let kind = Net.session_kind net n s in
              (match (kind, r.Rattr.learned) with
              | Net.Ebgp, Rattr.From_ebgp | Net.Ibgp, Rattr.From_ibgp -> ()
              | _ ->
                  err a "audit-slab-learned" loc
                    (Printf.sprintf
                       "node %d session %d: learned tag does not match the \
                        session kind"
                       n s)
                    state_hint);
              if r.Rattr.learned_class <> Net.session_class net n s then
                err a "audit-slab-learned" loc
                  (Printf.sprintf
                     "node %d session %d: learned_class %d, session class %d"
                     n s r.Rattr.learned_class (Net.session_class net n s))
                  state_hint;
              (match kind with
              | Net.Ebgp ->
                  if Array.length r.Rattr.path = 0 then
                    err a "audit-slab-path" loc
                      (Printf.sprintf
                         "node %d session %d: eBGP-learned route with an \
                          empty AS-path"
                         n s)
                      state_hint
                  else if r.Rattr.path.(0) <> Net.asn_of net u then
                    err a "audit-slab-path" loc
                      (Printf.sprintf
                         "node %d session %d: path starts with AS %d but \
                          the announcing peer is AS %d"
                         n s r.Rattr.path.(0) (Net.asn_of net u))
                      state_hint;
                  if path_mem r.Rattr.path (Net.asn_of net n) then
                    err a "audit-slab-path" loc
                      (Printf.sprintf
                         "node %d session %d: own AS %d appears in the \
                          received path %s (loop-check bypassed)"
                         n s (Net.asn_of net n)
                         (pp_path r.Rattr.path))
                      state_hint;
                  if r.Rattr.igp <> 0 then
                    err a "audit-slab-path" loc
                      (Printf.sprintf
                         "node %d session %d: eBGP-learned route carries \
                          IGP cost %d (want 0)"
                         n s r.Rattr.igp)
                      state_hint
              | Net.Ibgp -> ());
              (* Exporter consistency: at convergence a live slot must
                 be exactly what the peer's current best route exports
                 over this session under the live policies. *)
              if converged then begin
                let su = Net.session_reverse net n s in
                match Engine.best st u with
                | None ->
                    err a "audit-slab-export" loc
                      (Printf.sprintf
                         "node %d holds a route from %d, but %d selects no \
                          best route"
                         n u u)
                      state_hint
                | Some b ->
                    if b.Rattr.from_node = n then
                      err a "audit-slab-export" loc
                        (Printf.sprintf
                           "node %d holds a route from %d whose best came \
                            from %d itself (split horizon bypassed)"
                           n u n)
                        state_hint;
                    if su >= 0 && Net.export_denied net u su pfx then
                      err a "audit-slab-export" loc
                        (Printf.sprintf
                           "node %d holds a route from %d over a session \
                            whose export of %s is denied"
                           n u
                           (Format.asprintf "%a" Prefix.pp pfx))
                        state_hint;
                    let want_path =
                      match kind with
                      | Net.Ibgp -> b.Rattr.path
                      | Net.Ebgp ->
                          Array.append [| Net.asn_of net u |] b.Rattr.path
                    in
                    if not (Rattr.same_path r.Rattr.path want_path) then
                      err a "audit-slab-export" loc
                        (Printf.sprintf
                           "node %d session %d: stored path %s, but peer \
                            %d's best exports %s"
                           n s (pp_path r.Rattr.path) u (pp_path want_path))
                        state_hint;
                    (match kind with
                    | Net.Ibgp ->
                        if
                          r.Rattr.lpref <> b.Rattr.lpref
                          || r.Rattr.med <> b.Rattr.med
                        then
                          err a "audit-slab-export" loc
                            (Printf.sprintf
                               "node %d session %d: iBGP attributes \
                                (lpref %d, med %d) differ from the \
                                exporter's (lpref %d, med %d)"
                               n s r.Rattr.lpref r.Rattr.med b.Rattr.lpref
                               b.Rattr.med)
                            state_hint
                    | Net.Ebgp ->
                        let want_lpref =
                          match Net.import_lpref_for net n s pfx with
                          | Some v -> v
                          | None ->
                              if Net.carry_lpref net n s then b.Rattr.lpref
                              else
                                Option.value ~default:100
                                  (Net.import_lpref net n s)
                        in
                        let want_med =
                          Option.value
                            ~default:(Net.default_med net)
                            (Net.session_med net n s pfx)
                        in
                        if r.Rattr.lpref <> want_lpref then
                          err a "audit-slab-export" loc
                            (Printf.sprintf
                               "node %d session %d: import LOCAL_PREF %d, \
                                policy derives %d"
                               n s r.Rattr.lpref want_lpref)
                            state_hint;
                        if r.Rattr.med <> want_med then
                          err a "audit-slab-export" loc
                            (Printf.sprintf
                               "node %d session %d: import MED %d, policy \
                                derives %d"
                               n s r.Rattr.med want_med)
                            state_hint)
              end
            end
          end)
        (Engine.rib_in st n);
      (* Best-route consistency: the engine's incremental selection
         must agree with the reference decision process over the
         node's current candidates. *)
      if converged then begin
        let want =
          Decision.select
            ~med_scope:(Net.med_scope net)
            (Net.decision_steps net)
            (Engine.candidates st net n)
        in
        if not (Rattr.same_advertisement (Engine.best st n) want) then
          err a "audit-best" (Report.Node_prefix (n, pfx))
            (Printf.sprintf
               "node %d: the engine's best route differs from \
                Decision.select over its own candidates"
               n)
            "the incremental best-route maintenance diverged from the \
             reference elimination — compare Engine.recompute_best with \
             Decision.select"
      end
    done;
    close a
  end

(* -- intern-table integrity ------------------------------------------ *)

let intern_integrity () =
  let a = acc () in
  let hint =
    "Intern must return the canonical value for structurally equal \
     inputs within a domain, and never leak another domain's table"
  in
  let sample = [| 64500; 64496; 65001 |] in
  let p1 = Intern.path (Array.copy sample) in
  let p2 = Intern.path (Array.copy sample) in
  if p1 != p2 then
    err a "audit-intern-share" Report.Network
      "interning the same AS-path twice returned distinct arrays" hint;
  if Intern.path_hash p1 <> Intern.path_hash (Array.copy sample) then
    err a "audit-intern-share" Report.Network
      "path_hash differs between an interned path and its copy" hint;
  let q1 = Intern.prepend ~own_as:64499 p1 in
  let q2 = Intern.prepend ~own_as:64499 p1 in
  if q1 != q2 then
    err a "audit-intern-share" Report.Network
      "prepending the same AS to the same path twice returned distinct \
       arrays"
      hint;
  if Array.length q1 = 0 || q1.(0) <> 64499 then
    err a "audit-intern-share" Report.Network
      "prepend did not place the AS at the head of the path" hint;
  (* DLS isolation: a fresh domain must intern into its own table — the
     parent's canonical array must not be handed across domains. *)
  let foreign = ref [||] in
  let d = Domain.spawn (fun () -> foreign := Intern.path (Array.copy sample)) in
  Domain.join d;
  if !foreign == p1 then
    err a "audit-intern-domain" Report.Network
      "a fresh domain's intern table returned the parent domain's array \
       (DLS table crossed domains)"
      hint
  else if !foreign <> p1 then
    err a "audit-intern-domain" Report.Network
      "a fresh domain interned the same path to different contents" hint;
  let s = Intern.stats () in
  let cap = Intern.table_cap in
  if
    s.Intern.paths > cap || s.Intern.prepends > cap || s.Intern.hashes > cap
    || s.Intern.rattrs > cap
  then
    err a "audit-intern-cap" Report.Network
      (Printf.sprintf
         "an intern table exceeds its cap (%d): paths %d, prepends %d, \
          hashes %d, rattrs %d"
         cap s.Intern.paths s.Intern.prepends s.Intern.hashes s.Intern.rattrs)
      "the table_cap admission check is being bypassed";
  close a

(* -- sentinel-comparison source lint --------------------------------- *)

(* [Rattr.no_route] is a physical sentinel: structural comparison with
   it is always a bug ([=] on it reads absurd field values; worse, a
   structurally equal clone would satisfy it).  Scan the simulator
   sources and flag any token-level structural comparison.  This is a
   line lexer, not a parser: comments and string literals are masked
   first, then the tokens adjacent to each [no_route] occurrence are
   inspected. *)

let mask_source src =
  let n = String.length src in
  let out = Bytes.of_string src in
  let blank i = if Bytes.get out i <> '\n' then Bytes.set out i ' ' in
  let i = ref 0 and depth = ref 0 and in_str = ref false in
  while !i < n do
    let c = src.[!i] in
    if !in_str then begin
      if c = '\\' && !i + 1 < n then begin
        blank !i;
        blank (!i + 1);
        i := !i + 2
      end
      else begin
        if c = '"' then in_str := false;
        blank !i;
        incr i
      end
    end
    else if !depth > 0 then begin
      if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        blank !i;
        blank (!i + 1);
        decr depth;
        i := !i + 2
      end
      else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        blank !i;
        blank (!i + 1);
        incr depth;
        i := !i + 2
      end
      else begin
        blank !i;
        incr i
      end
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      blank !i;
      blank (!i + 1);
      depth := 1;
      i := !i + 2
    end
    else if c = '"' then begin
      blank !i;
      in_str := true;
      incr i
    end
    else incr i
  done;
  Bytes.to_string out

let ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let is_space c = c = ' ' || c = '\t'

(* The token containing position [i..j), extended left over '.'-joined
   module paths, then the whitespace-separated tokens before and
   after. *)
let around line start stop =
  let n = String.length line in
  let ts = ref start in
  while !ts > 0 && not (is_space line.[!ts - 1]) do decr ts done;
  let te = ref stop in
  while !te < n && not (is_space line.[!te]) do incr te done;
  let prev =
    let e = ref !ts in
    while !e > 0 && is_space line.[!e - 1] do decr e done;
    let s = ref !e in
    while !s > 0 && not (is_space line.[!s - 1]) do decr s done;
    String.sub line !s (!e - !s)
  in
  let next =
    let s = ref !te in
    while !s < n && is_space line.[!s] do incr s done;
    let e = ref !s in
    while !e < n && not (is_space line.[!e]) do incr e done;
    String.sub line !s (!e - !s)
  in
  (prev, next)

let structural_ops = [ "="; "<>"; "compare"; "Stdlib.compare" ]

let scan_line file lineno line a =
  let n = String.length line in
  let word = "no_route" in
  let wl = String.length word in
  let i = ref 0 in
  while !i + wl <= n do
    if
      String.sub line !i wl = word
      && (!i = 0 || not (ident_char line.[!i - 1]))
      && (!i + wl = n || not (ident_char line.[!i + wl]))
    then begin
      let prev, next = around line !i (!i + wl) in
      let flagged =
        (* [let no_route =] / [and no_route =] is the definition site *)
        if prev = "let" || prev = "and" then false
        else
          List.mem prev structural_ops
          || List.mem next [ "="; "<>" ]
          || next = "compare"
      in
      if flagged then
        err a "sentinel-compare" Report.Network
          (Printf.sprintf
             "%s:%d: structural comparison with Rattr.no_route (token \
              context: %s ... %s)"
             file lineno
             (if prev = "" then "<line start>" else prev)
             (if next = "" then "<line end>" else next))
          "no_route is a physical sentinel: test it with == / != (or \
           Rattr.is_route), never = / <> / compare";
      i := !i + wl
    end
    else incr i
  done

let scan_file a file =
  match
    let ic = open_in_bin file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception _ -> ()
  | src ->
      let masked = mask_source src in
      let lineno = ref 0 in
      String.split_on_char '\n' masked
      |> List.iter (fun line ->
             incr lineno;
             scan_line (Filename.basename file) !lineno line a)

(* Locate [lib/simulator] from the current directory: works from the
   repo root (CLI, CI) and from dune's sandboxed test directory
   (_build/default/test — dune copies the sources into _build). *)
let locate_simulator_sources () =
  let rec up dir n =
    if n > 6 then None
    else
      let cand = Filename.concat dir (Filename.concat "lib" "simulator") in
      if Sys.file_exists (Filename.concat cand "rattr.ml") then Some cand
      else
        let parent = Filename.dirname dir in
        if parent = dir then None else up parent (n + 1)
  in
  up (Sys.getcwd ()) 0

let sentinel_lint ?root () =
  let root =
    match root with Some r -> Some r | None -> locate_simulator_sources ()
  in
  match root with
  | None -> []  (* no sources around (installed binary) — nothing to scan *)
  | Some dir ->
      let a = acc () in
      (match Sys.readdir dir with
      | exception _ -> ()
      | entries ->
          Array.sort compare entries;
          Array.iter
            (fun f ->
              if Filename.check_suffix f ".ml" then
                scan_file a (Filename.concat dir f))
            entries);
      close a

(* -- aggregates ------------------------------------------------------ *)

let net n = csr n

let model (m : Asmodel.Qrmodel.t) = csr m.Asmodel.Qrmodel.net
