module Runtime = Simulator.Runtime

(* Vector-clock happens-before core (the FastTrack-style epoch scheme).

   Every domain carries a vector clock C_D; the instrumented layers
   publish synchronization edges as release/acquire pairs on named
   channels (Obs.Probe): release merges the releasing domain's clock
   into the channel's and bumps the domain's own component, acquire
   merges the channel's clock back.  Each shared object keeps the epoch
   of its last write and the epoch of the last read per domain; an
   access that is not ordered after a conflicting prior access (the
   prior epoch is not covered by the current domain's clock) is a race.

   Domain ids in OCaml are never reused within a process, so epochs
   keyed by domain id are unambiguous.  All state sits behind one
   mutex: RD_CHECK=race is a debug/CI mode and every probe site is at
   run/batch granularity, so serialization is acceptable — the bench
   §CHECK race row records the honest overhead. *)

type access = { site : string; domain : int }

type race = {
  obj : string;
  conflict : string;  (* "write-write" | "read-write" | "write-read" *)
  prior : access;
  current : access;
}

(* The single declared-benign-race allowlist (tentpole requirement:
   one list, anything undeclared fails).  An entry suppresses races on
   any object whose name contains the key; the reason is documentation
   surfaced by [pp_race] when listing benign suppressions. *)
let allowlist =
  [
    ( "/csr",
      "CSR publish: an Atomic holding an immutable per-generation index; \
       racing rebuilds produce equivalent values and any winner is correct" );
    ( "obs/metrics",
      "metrics counters: atomic cells where only the interleaving of \
       counts is unordered; totals are exact, timing attribution is not" );
  ]

let benign obj =
  List.exists
    (fun (key, _) ->
      let lk = String.length key and lo = String.length obj in
      let rec at i = i + lk <= lo && (String.sub obj i lk = key || at (i + 1)) in
      lk > 0 && lk <= lo && at 0)
    allowlist

(* -- clocks -- *)

type vc = (int, int) Hashtbl.t

let mutex = Mutex.create ()

let clocks : (int, vc) Hashtbl.t = Hashtbl.create 16

let channels : (string, vc) Hashtbl.t = Hashtbl.create 64

(* A domain's own component starts at 1, so an epoch from a domain no
   other clock has heard of is never mistaken for ordered (an absent
   component reads as 0). *)
let clock_of d =
  match Hashtbl.find_opt clocks d with
  | Some c -> c
  | None ->
      let c = Hashtbl.create 8 in
      Hashtbl.replace c d 1;
      Hashtbl.replace clocks d c;
      c

let vc_get (c : vc) d = match Hashtbl.find_opt c d with Some v -> v | None -> 0

let vc_merge ~(into : vc) (src : vc) =
  Hashtbl.iter (fun d v -> if v > vc_get into d then Hashtbl.replace into d v) src

(* -- objects -- *)

type epoch = { e_site : string; e_domain : int; e_clock : int }

type obj_state = { mutable w : epoch option; reads : (int, epoch) Hashtbl.t }

let objects : (string, obj_state) Hashtbl.t = Hashtbl.create 64

let obj_of name =
  match Hashtbl.find_opt objects name with
  | Some o -> o
  | None ->
      let o = { w = None; reads = Hashtbl.create 4 } in
      Hashtbl.replace objects name o;
      o

(* -- findings -- *)

let recorded : race list ref = ref []

let seen : (string * string * string * string, unit) Hashtbl.t =
  Hashtbl.create 64

let nraces = Atomic.make 0

let nbenign = Atomic.make 0

let report obj conflict (prior : epoch) ~site ~domain =
  if benign obj then Atomic.incr nbenign
  else begin
    let key = (obj, conflict, prior.e_site, site) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      recorded :=
        {
          obj;
          conflict;
          prior = { site = prior.e_site; domain = prior.e_domain };
          current = { site; domain };
        }
        :: !recorded;
      Atomic.incr nraces
    end
  end

(* -- the hook -- *)

let on_access obj site kind =
  let me = (Domain.self () :> int) in
  Mutex.protect mutex (fun () ->
      let c = clock_of me in
      let o = obj_of obj in
      let ordered (e : epoch) = e.e_clock <= vc_get c e.e_domain in
      let conflict (e : epoch) = e.e_domain <> me && not (ordered e) in
      let here = { e_site = site; e_domain = me; e_clock = vc_get c me } in
      match (kind : Obs.Probe.kind) with
      | Write ->
          (match o.w with
          | Some e when conflict e ->
              report obj "write-write" e ~site ~domain:me
          | _ -> ());
          Hashtbl.iter
            (fun _ e ->
              if conflict e then report obj "read-write" e ~site ~domain:me)
            o.reads;
          o.w <- Some here;
          Hashtbl.reset o.reads
      | Read -> (
          (match o.w with
          | Some e when conflict e ->
              report obj "write-read" e ~site ~domain:me
          | _ -> ());
          Hashtbl.replace o.reads me here;
          (* Keep the read map small: reads already ordered before the
             current one carry no extra constraint. *)
          if Hashtbl.length o.reads > 64 then
            let dead =
              Hashtbl.fold
                (fun d e acc ->
                  if d <> me && ordered e then d :: acc else acc)
                o.reads []
            in
            List.iter (Hashtbl.remove o.reads) dead))

let on_release chan =
  let me = (Domain.self () :> int) in
  Mutex.protect mutex (fun () ->
      let c = clock_of me in
      let ch =
        match Hashtbl.find_opt channels chan with
        | Some ch -> ch
        | None ->
            let ch = Hashtbl.create 8 in
            Hashtbl.replace channels chan ch;
            ch
      in
      vc_merge ~into:ch c;
      Hashtbl.replace c me (vc_get c me + 1))

let on_acquire chan =
  let me = (Domain.self () :> int) in
  Mutex.protect mutex (fun () ->
      let c = clock_of me in
      match Hashtbl.find_opt channels chan with
      | Some ch -> vc_merge ~into:c ch
      | None -> ())

let hook =
  {
    Obs.Probe.h_access = on_access;
    h_release = on_release;
    h_acquire = on_acquire;
  }

let installed = ref false

let install () =
  if not !installed then begin
    installed := true;
    Obs.Probe.set_hook (Some hook)
  end

let uninstall () =
  if !installed then begin
    installed := false;
    Obs.Probe.set_hook None
  end

let sync (m : Runtime.Check_mode.t) =
  match m with Race -> install () | Off | On -> uninstall ()

(* -- read side -- *)

let races () = Mutex.protect mutex (fun () -> List.rev !recorded)

let race_count () = Atomic.get nraces

let benign_count () = Atomic.get nbenign

let reset () =
  Mutex.protect mutex (fun () ->
      recorded := [];
      Hashtbl.reset seen;
      Atomic.set nraces 0;
      Atomic.set nbenign 0;
      Hashtbl.reset clocks;
      Hashtbl.reset channels;
      Hashtbl.reset objects)

let pp_race ppf r =
  Format.fprintf ppf "[race:%s] %s: %s in domain %d vs %s in domain %d"
    r.conflict r.obj r.prior.site r.prior.domain r.current.site
    r.current.domain

let findings () =
  List.map
    (fun r ->
      {
        Report.severity = Report.Error;
        rule = "race-" ^ r.conflict;
        location = Report.Network;
        message =
          Printf.sprintf
            "unordered %s on %s: %s (domain %d) and %s (domain %d)"
            r.conflict r.obj r.prior.site r.prior.domain r.current.site
            r.current.domain;
        hint =
          "order the mutation with the reading batch (Pool join or \
           Snapshot.exclusive), or declare the object benign in \
           Analysis.Race.allowlist with a justification";
      })
    (races ())
