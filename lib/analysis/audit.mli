(** Structural auditor for the frozen fast-path structures.

    The flat-memory engine core (PR 8) trades safety for speed: the CSR
    session index, the route slab with its physical [no_route] sentinel
    and the domain-local intern tables all {e duplicate} information
    whose ground truth lives in the mutable {!Simulator.Net}.  This
    module cross-validates the copies against the truth — each check
    reads both sides through independent code paths, so a stale cache,
    a bypassed generation bump or a corrupted slab surfaces as a
    finding rather than a silently wrong simulation.

    Audits are pure reads and report via {!Report.finding}; findings of
    one rule are capped (a systematically broken structure yields a
    bounded report plus a suppression note). *)

val csr : Simulator.Net.t -> Report.finding list
(** Compare the CSR index ({!Simulator.Net.csr}) against the live node
    records: generation currency, offset shape, per-slot
    peer/kind/class/lpref/carry/rr agreement, [rev]/[reverse_local]
    round-trips, per-node ASN and address tables.  Rules
    [audit-csr-*]. *)

val state : Simulator.Net.t -> Simulator.Engine.state -> Report.finding list
(** Audit a frozen engine state against the net it claims to model:
    slab discipline (slot/session agreement, sentinel never cloned
    structurally, eBGP paths start at the announcing AS and are
    loop-free) and — when the state is converged and the net unchanged
    — full exporter consistency (each RIB-In entry is exactly what the
    peer's best route exports under the live policies) and best-route
    agreement with {!Simulator.Decision.select}.  A state computed at
    an older generation (or with pending per-prefix edits) yields a
    [Warn] and skips the checks that would be meaningless.  Rules
    [audit-slab-*], [audit-best], [audit-sentinel-clone],
    [audit-stale-*]. *)

val intern_integrity : unit -> Report.finding list
(** Exercise the hash-consing contract of {!Simulator.Intern} in the
    calling domain: interning equal values returns physically equal
    results, a freshly spawned domain gets its own table (no canonical
    value crosses domains), and no table exceeds
    {!Simulator.Intern.table_cap}.  Spawns (and joins) one short-lived
    domain.  Rules [audit-intern-*]. *)

val sentinel_lint : ?root:string -> unit -> Report.finding list
(** Source-scan [lib/simulator] (or [root]) for structural comparison
    with [no_route] — [=], [<>] or [compare] adjacent to the token,
    outside comments and strings.  The sentinel contract is [==]-only;
    a structural compare reads absurd field values and breaks on
    clones.  Returns [[]] when no sources can be located (installed
    binaries).  Rule [sentinel-compare]. *)

val net : Simulator.Net.t -> Report.finding list
(** The net-level audits ({!csr}) — what {!Lint.check_net} folds in. *)

val model : Asmodel.Qrmodel.t -> Report.finding list
(** The model-level static audits — {!csr} of the model's net.
    State-level audits need simulated states; [asmodel check] runs
    those explicitly. *)
