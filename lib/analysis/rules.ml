open Bgp
module Net = Simulator.Net
module Relclass = Simulator.Relclass
module Qrmodel = Asmodel.Qrmodel

let finding severity rule location message hint =
  { Report.severity; rule; location; message; hint }

(* --- structural ------------------------------------------------------ *)

(* Mirror halves of a classed session must be relationship duals: my
   customer is your provider, peers/siblings/unknowns are symmetric,
   and classless halves come in pairs (the agnostic model). *)
let classes_dual c1 c2 =
  (c1 = Net.class_none && c2 = Net.class_none)
  || (c1 = Relclass.customer && c2 = Relclass.provider)
  || (c1 = Relclass.provider && c2 = Relclass.customer)
  || (c1 = c2 && (c1 = Relclass.peer || c1 = Relclass.sibling || c1 = Relclass.unknown))

let session_rules net acc =
  let acc = ref acc in
  let add f = acc := f :: !acc in
  let nodes = Net.node_count net in
  for n = 0 to nodes - 1 do
    let seen_peers = Hashtbl.create 8 in
    for s = 0 to Net.session_count_of net n - 1 do
      let si = Net.session_info net n s in
      let loc = Report.Session (n, s) in
      if si.si_peer < 0 || si.si_peer >= nodes then
        add
          (finding Error "session-peer-range" loc
             (Printf.sprintf "peer id %d outside [0,%d)" si.si_peer nodes)
             "drop the half-session or rebuild it with Net.connect")
      else begin
        if si.si_peer = n then
          add
            (finding Error "session-self" loc
               (Printf.sprintf "node %d has a session to itself" n)
               "Net.connect refuses self sessions; remove this half");
        if Hashtbl.mem seen_peers si.si_peer then
          add
            (finding Error "session-duplicate" loc
               (Printf.sprintf "second session from node %d to peer %d" n
                  si.si_peer)
               "merge the parallel sessions; the engine assumes at most one")
        else Hashtbl.add seen_peers si.si_peer ();
        let r = si.si_reverse in
        if r < 0 || r >= Net.session_count_of net si.si_peer then
          add
            (finding Error "session-asymmetric" loc
               (Printf.sprintf "reverse index %d dangling at peer %d" r
                  si.si_peer)
               "recreate the session with Net.connect so both halves exist")
        else begin
          let mi = Net.session_info net si.si_peer r in
          if mi.si_peer <> n then
            add
              (finding Error "session-asymmetric" loc
                 (Printf.sprintf
                    "mirror half (node %d session %d) points at node %d, not \
                     back at %d"
                    si.si_peer r mi.si_peer n)
                 "fix the peer_session indices so the mirror points back")
          else if mi.si_reverse <> s then
            add
              (finding Error "session-asymmetric" loc
                 (Printf.sprintf
                    "reverse pointer does not round-trip (peer's reverse is \
                     %d, expected %d)"
                    mi.si_reverse s)
                 "fix the peer_session indices so the mirror points back")
          else if n < si.si_peer then begin
            (* Intact mirror: properties of the session as a whole,
               reported once from the lower node id. *)
            if mi.si_kind <> si.si_kind then
              add
                (finding Error "session-kind-mismatch" loc
                   (Printf.sprintf "halves disagree on kind (%s vs %s)"
                      (match si.si_kind with Net.Ebgp -> "ebgp" | Net.Ibgp -> "ibgp")
                      (match mi.si_kind with Net.Ebgp -> "ebgp" | Net.Ibgp -> "ibgp"))
                   "both halves of a session must share eBGP/iBGP kind");
            if not (classes_dual si.si_class mi.si_class) then
              add
                (finding Warn "session-class-mismatch" loc
                   (Printf.sprintf
                      "relationship classes %d/%d are not duals (expected \
                       customer/provider, peer/peer, sibling/sibling or both \
                       unclassed)"
                      si.si_class mi.si_class)
                   "relationship inference should assign dual classes to the \
                    two halves")
          end
        end
      end
    done
  done;
  !acc

let membership_rules net acc =
  let acc = ref acc in
  let add f = acc := f :: !acc in
  let nodes = Net.node_count net in
  let seen_as = Hashtbl.create 64 in
  let partition = ref 0 in
  for n = 0 to nodes - 1 do
    let asn = Net.asn_of net n in
    let members = Net.nodes_of_as net asn in
    if not (List.mem n members) then
      add
        (finding Error "as-membership" (Node n)
           (Printf.sprintf "node %d missing from nodes_of_as AS%d" n asn)
           "re-register the node; nodes_of_as must list every node of the AS");
    if not (Hashtbl.mem seen_as asn) then begin
      Hashtbl.add seen_as asn ();
      partition := !partition + List.length members;
      let ids = Hashtbl.create 8 in
      List.iter
        (fun id ->
          if id < 0 || id >= nodes then
            add
              (finding Error "as-membership" Network
                 (Printf.sprintf "AS%d lists stale node id %d (outside [0,%d))"
                    asn id nodes)
                 "nodes_of_as must only hold live node ids")
          else begin
            if Net.asn_of net id <> asn then
              add
                (finding Error "as-membership" (Node id)
                   (Printf.sprintf "AS%d lists node %d which belongs to AS%d"
                      asn id (Net.asn_of net id))
                   "a node must appear only under its own AS");
            if Hashtbl.mem ids id then
              add
                (finding Error "as-membership" (Node id)
                   (Printf.sprintf "node %d listed twice under AS%d" id asn)
                   "deduplicate the AS's node list")
            else Hashtbl.add ids id ()
          end)
        members
    end
  done;
  if !partition <> nodes then
    add
      (finding Error "as-membership-count" Network
         (Printf.sprintf
            "AS node lists cover %d node(s) but the net has %d — the AS \
             partition is broken"
            !partition nodes)
         "every node must appear in exactly one nodes_of_as list");
  let half_sessions = ref 0 in
  for n = 0 to nodes - 1 do
    half_sessions := !half_sessions + Net.session_count_of net n
  done;
  if !half_sessions <> Net.session_count net then
    add
      (finding Error "session-count" Network
         (Printf.sprintf
            "cached half-session count %d but nodes carry %d half-session(s)"
            (Net.session_count net) !half_sessions)
         "keep nsessions in sync when adding sessions");
  !acc

let structural net = List.rev (membership_rules net (session_rules net []))

(* --- policy ---------------------------------------------------------- *)

(* BFS over sessions from an origin AS's quasi-routers; [reach.(n)]
   bounds where the prefix's routes can possibly propagate (policies
   only restrict further).  Shared by the reachability and
   shadowed-filter rules via a per-origin cache. *)
let reachable_from net origin_nodes =
  let reach = Array.make (max 1 (Net.node_count net)) false in
  let q = Queue.create () in
  List.iter
    (fun n ->
      if n >= 0 && n < Array.length reach && not reach.(n) then begin
        reach.(n) <- true;
        Queue.add n q
      end)
    origin_nodes;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Net.iter_sessions net u (fun _ peer ->
        if peer >= 0 && peer < Array.length reach && not reach.(peer) then begin
          reach.(peer) <- true;
          Queue.add peer q
        end)
  done;
  reach

let reach_cache net =
  let cache = Hashtbl.create 16 in
  fun asn ->
    match Hashtbl.find_opt cache asn with
    | Some r -> r
    | None ->
        let r = reachable_from net (Net.nodes_of_as net asn) in
        Hashtbl.add cache asn r;
        r

let reachability model =
  let net = model.Qrmodel.net in
  let reach_of = reach_cache net in
  let seen_origin = Hashtbl.create 16 in
  let acc = ref [] in
  List.iter
    (fun (p, origin) ->
      match Net.nodes_of_as net origin with
      | [] ->
          acc :=
            finding Error "origin-missing" (Prefix_loc p)
              (Printf.sprintf
                 "origin AS%d has no quasi-router; the prefix can never be \
                  originated"
                 origin)
              "add a quasi-router for the AS or drop the prefix from the plan"
            :: !acc
      | _ when Hashtbl.mem seen_origin origin -> ()
      | origin_nodes ->
          Hashtbl.add seen_origin origin ();
          let reach = reach_of origin in
          let unreached = ref [] in
          Array.iteri (fun n r -> if not r then unreached := n :: !unreached) reach;
          (match List.rev !unreached with
          | [] -> ()
          | n :: _ as l ->
              acc :=
                finding Warn "unreachable" (Node n)
                  (Printf.sprintf
                     "%d node(s) (first: node %d) unreachable from AS%d's %d \
                      originator(s) — its routes can never arrive there"
                     (List.length l) n origin (List.length origin_nodes))
                  "connect the components or expect No-RIB-In mismatches there"
                :: !acc))
    model.Qrmodel.prefixes;
  List.rev !acc

let filters model =
  let net = model.Qrmodel.net in
  let reach_of = reach_cache net in
  (* Universe of relationship classes in use, for the redundant-filter
     probe: a deny is dead weight if the export matrix already blocks
     every possible learned class (including origination, -1) toward
     the session's class. *)
  let classes = Hashtbl.create 8 in
  for n = 0 to Net.node_count net - 1 do
    for s = 0 to Net.session_count_of net n - 1 do
      Hashtbl.replace classes (Net.session_class net n s) ()
    done
  done;
  let learned_universe = -1 :: Hashtbl.fold (fun c () l -> c :: l) classes [] in
  let fs =
    Net.fold_export_denies net
      (fun n s p acc ->
        let loc = Report.Session_prefix (n, s, p) in
        match Qrmodel.origin_of model p with
        | None ->
            finding Warn "orphan-deny" loc
              (Printf.sprintf "deny filter for prefix %s absent from the \
                               origin table"
                 (Format.asprintf "%a" Prefix.pp p))
              "remove the filter or add the prefix to the model's plan"
            :: acc
        | Some origin ->
            let acc =
              if
                Net.nodes_of_as net origin <> []
                && not (reach_of origin).(n)
              then
                finding Warn "shadowed-deny" loc
                  (Printf.sprintf
                     "node %d is unreachable from origin AS%d, so this deny \
                      can never match"
                     n origin)
                  "remove the filter; it is shadowed by the missing \
                   connectivity"
                :: acc
              else acc
            in
            if
              Net.session_kind net n s = Net.Ebgp
              && List.for_all
                   (fun lc ->
                     not
                       (Net.export_matrix net ~learned_class:lc
                          ~to_class:(Net.session_class net n s)))
                   learned_universe
            then
              finding Warn "redundant-deny" loc
                (Printf.sprintf
                   "the export matrix already blocks every learned class \
                    toward class %d — the per-prefix deny is redundant"
                   (Net.session_class net n s))
                "drop the filter; the coarser relationship rule covers it"
              :: acc
            else acc)
      []
  in
  List.rev fs

let rankings model =
  let net = model.Qrmodel.net in
  let orphan rule kind (n, s, p) =
    finding Warn rule (Session_prefix (n, s, p))
      (Printf.sprintf "%s rule for prefix %s absent from the origin table" kind
         (Format.asprintf "%a" Prefix.pp p))
      "remove the rule or add the prefix to the model's plan"
  in
  let meds =
    Net.fold_import_meds net
      (fun n s p _v acc ->
        if Qrmodel.origin_of model p = None then
          orphan "orphan-med" "MED" (n, s, p) :: acc
        else acc)
      []
  in
  let lprefs =
    Net.fold_import_lprefs net
      (fun n s p _v acc ->
        let acc =
          if Qrmodel.origin_of model p = None then
            orphan "orphan-lpref" "LOCAL_PREF" (n, s, p) :: acc
          else acc
        in
        if Net.import_med net n s p <> None then
          finding Error "lpref-med-conflict" (Session_prefix (n, s, p))
            (Printf.sprintf
               "both a per-prefix LOCAL_PREF and a per-prefix MED override \
                on node %d session %d — LOCAL_PREF decides first and the MED \
                rule is dead, which no refiner mode produces"
               n s)
            "keep one ranking mechanism per (node, session, prefix)"
          :: acc
        else acc)
      []
  in
  List.rev_append meds (List.rev lprefs)

(* Dispute-wheel risk (§4.6): per-prefix LOCAL_PREF overrides above the
   session's baseline preference mean "this AS ranks routes via that
   neighbour above its default choice".  A directed cycle in that
   relation is the Bad-Gadget shape — the reason the paper abandoned
   lpref-for ranking.  Carried preferences (sibling sessions) cannot
   invert mutually, so carry_lpref edges are skipped. *)
let dispute model =
  let net = model.Qrmodel.net in
  let graphs : (Asn.t, (Asn.t, unit) Hashtbl.t) Hashtbl.t Prefix.Table.t =
    Prefix.Table.create 16
  in
  Net.fold_import_lprefs net
    (fun n s p v () ->
      let si = Net.session_info net n s in
      let from_as = Net.asn_of net n in
      let to_as =
        if si.si_peer >= 0 && si.si_peer < Net.node_count net then
          Some (Net.asn_of net si.si_peer)
        else None
      in
      match to_as with
      | Some to_as
        when to_as <> from_as && si.si_kind = Net.Ebgp && (not si.si_carry)
             && v > Option.value si.si_lpref ~default:100 ->
          let g =
            match Prefix.Table.find_opt graphs p with
            | Some g -> g
            | None ->
                let g = Hashtbl.create 8 in
                Prefix.Table.add graphs p g;
                g
          in
          let succs =
            match Hashtbl.find_opt g from_as with
            | Some t -> t
            | None ->
                let t = Hashtbl.create 4 in
                Hashtbl.add g from_as t;
                t
          in
          Hashtbl.replace succs to_as ()
      | _ -> ())
    ();
  let find_cycle g =
    (* 0 = unvisited, 1 = on stack, 2 = done *)
    let color = Hashtbl.create 16 in
    let cycle = ref None in
    let rec dfs path asn =
      match Hashtbl.find_opt color asn with
      | Some 2 -> ()
      | Some 1 ->
          if !cycle = None then begin
            let rec cut = function
              | [] -> []
              | x :: _ when x = asn -> [ x ]
              | x :: tl -> x :: cut tl
            in
            cycle := Some (asn :: List.rev (cut path))
          end
      | _ ->
          Hashtbl.replace color asn 1;
          (match Hashtbl.find_opt g asn with
          | Some succs -> Hashtbl.iter (fun nxt () -> dfs (asn :: path) nxt) succs
          | None -> ());
          Hashtbl.replace color asn 2
    in
    Hashtbl.iter (fun asn _ -> if !cycle = None then dfs [] asn) g;
    !cycle
  in
  let acc = ref [] in
  Prefix.Table.iter
    (fun p g ->
      match find_cycle g with
      | None -> ()
      | Some cycle ->
          acc :=
            finding Warn "dispute-wheel" (Prefix_loc p)
              (Printf.sprintf
                 "per-prefix LOCAL_PREF rankings form a preference cycle %s — \
                  the §4.6 divergence hazard"
                 (String.concat " > "
                    (List.map (fun a -> "AS" ^ string_of_int a) cycle)))
              "break the cycle or use MED ranking (the paper's fix)"
            :: !acc)
    graphs;
  List.sort compare !acc

let policy model =
  reachability model @ filters model @ rankings model @ dispute model
