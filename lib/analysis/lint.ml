let check_net net = Report.of_findings (Rules.structural net)

let check model =
  Report.of_findings
    (Rules.structural model.Asmodel.Qrmodel.net @ Rules.policy model)
