let check_net net =
  Report.of_findings (Rules.structural net @ Audit.net net)

let check model =
  Report.of_findings
    (Rules.structural model.Asmodel.Qrmodel.net
    @ Rules.policy model
    @ Audit.model model
    @ Audit.intern_integrity ())
