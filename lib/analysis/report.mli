(** Lint findings: severity, location, message, fix hint.

    Every rule in {!Rules} and every {!Ownership} violation surfaces as
    a [finding].  [Error] means the model is malformed — simulation
    results on it are not trustworthy and [asmodel lint] exits
    non-zero; [Warn] flags dead weight or latent hazards (shadowed
    filters, divergence risks) that do not invalidate results. *)

open Bgp

type severity = Error | Warn

type location =
  | Network  (** a whole-net property (counters, AS partition) *)
  | Node of int
  | Session of int * int  (** (node, session index) *)
  | Prefix_loc of Prefix.t
  | Node_prefix of int * Prefix.t
  | Session_prefix of int * int * Prefix.t

type finding = {
  severity : severity;
  rule : string;  (** stable kebab-case rule id, e.g. ["session-self"] *)
  location : location;
  message : string;  (** what is wrong, with concrete ids *)
  hint : string;  (** how to fix it *)
}

type t
(** A report: findings ordered Errors first (stable within severity). *)

val of_findings : finding list -> t

val findings : t -> finding list

val error_count : t -> int

val warn_count : t -> int

val is_clean : t -> bool
(** No [Error] findings ([Warn]s may remain). *)

val has_rule : t -> string -> bool
(** Some finding carries this rule id. *)

val find_rule : t -> string -> finding list
(** All findings of one rule, in report order. *)

val pp_location : Format.formatter -> location -> unit

val pp_finding : Format.formatter -> finding -> unit

val pp : Format.formatter -> t -> unit
(** Findings one per line (with hints), then a one-line summary. *)
