open Bgp

type severity = Error | Warn

type location =
  | Network
  | Node of int
  | Session of int * int
  | Prefix_loc of Prefix.t
  | Node_prefix of int * Prefix.t
  | Session_prefix of int * int * Prefix.t

type finding = {
  severity : severity;
  rule : string;
  location : location;
  message : string;
  hint : string;
}

type t = { items : finding list }

let of_findings fs =
  let sev = function Error -> 0 | Warn -> 1 in
  { items = List.stable_sort (fun a b -> compare (sev a.severity) (sev b.severity)) fs }

let findings t = t.items

let error_count t =
  List.length (List.filter (fun f -> f.severity = Error) t.items)

let warn_count t =
  List.length (List.filter (fun f -> f.severity = Warn) t.items)

let is_clean t = error_count t = 0

let find_rule t rule = List.filter (fun f -> f.rule = rule) t.items

let has_rule t rule = find_rule t rule <> []

let pp_location ppf = function
  | Network -> Format.pp_print_string ppf "network"
  | Node n -> Format.fprintf ppf "node %d" n
  | Session (n, s) -> Format.fprintf ppf "node %d session %d" n s
  | Prefix_loc p -> Format.fprintf ppf "prefix %a" Prefix.pp p
  | Node_prefix (n, p) -> Format.fprintf ppf "node %d prefix %a" n Prefix.pp p
  | Session_prefix (n, s, p) ->
      Format.fprintf ppf "node %d session %d prefix %a" n s Prefix.pp p

let pp_finding ppf f =
  Format.fprintf ppf "%s[%s] %a: %s@,  hint: %s"
    (match f.severity with Error -> "error" | Warn -> "warn")
    f.rule pp_location f.location f.message f.hint

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iter (fun f -> Format.fprintf ppf "%a@," pp_finding f) t.items;
  Format.fprintf ppf "lint: %d error(s), %d warning(s)" (error_count t)
    (warn_count t);
  Format.pp_close_box ppf ()
