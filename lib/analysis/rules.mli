(** The lint rule families.

    {b Structural} rules need only a {!Simulator.Net.t} and check the
    invariants every safe construction maintains: session symmetry
    ([session_reverse] round-trips, mirror halves agree on kind and are
    class-duals), no self or duplicate sessions, AS membership (every
    node appears in its AS's [nodes_of_as] exactly once and the
    partition covers the net), and the cached half-session count.

    {b Policy} rules need the {!Asmodel.Qrmodel.t} context (origin
    table, prefix plan): per-prefix rules keyed on unknown prefixes,
    deny filters that can never match (node unreachable from the
    prefix's origin, or the export matrix already blocks the session),
    conflicting per-prefix LOCAL_PREF-vs-MED overrides, origin ASes
    with no quasi-router, nodes unreachable from an origin, and a
    dispute-wheel risk detector over per-prefix LOCAL_PREF rankings
    (the §4.6 divergence hazard).

    Rule ids are stable strings; see the implementation of each
    function for the exact list.  {!Lint} composes them. *)

val structural : Simulator.Net.t -> Report.finding list
(** [session-peer-range], [session-self], [session-duplicate],
    [session-asymmetric], [session-kind-mismatch],
    [session-class-mismatch], [as-membership], [as-membership-count],
    [session-count]. *)

val reachability : Asmodel.Qrmodel.t -> Report.finding list
(** [origin-missing] (Error), [unreachable] (Warn, one per origin
    AS). *)

val filters : Asmodel.Qrmodel.t -> Report.finding list
(** [orphan-deny], [shadowed-deny], [redundant-deny] (all Warn). *)

val rankings : Asmodel.Qrmodel.t -> Report.finding list
(** [orphan-med], [orphan-lpref] (Warn); [lpref-med-conflict]
    (Error). *)

val dispute : Asmodel.Qrmodel.t -> Report.finding list
(** [dispute-wheel] (Warn): a directed cycle in some prefix's
    "AS prefers routes via AS" relation induced by per-prefix
    LOCAL_PREF overrides above the session baseline. *)

val policy : Asmodel.Qrmodel.t -> Report.finding list
(** {!reachability} @ {!filters} @ {!rankings} @ {!dispute}. *)
