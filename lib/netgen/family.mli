(** Generator families behind one dispatcher type.

    A family picks the AS-level structure of the synthetic world —
    which ASes exist, how they connect, which Gao-Rexford relationship
    each link carries — while {!Conf.t} stays a family-agnostic size
    preset (AS budget, router ranges, policy knobs).  Every family
    produces the same {!Gentopo.t} shape, so ground-truth construction,
    the refiner, the query service and churn replay run unchanged on
    any of them. *)

type waxman_params = { alpha : float; beta : float }
(** Waxman (1988) random geometric graph: ASes are placed on the
    coordinate grid and each pair is linked with probability
    [alpha * exp (-d / (beta * l))] where [d] is their distance and [l]
    the grid diameter.  [alpha] scales overall edge density, [beta]
    controls how sharply probability decays with distance. *)

type glp_params = { m : int; p : float; beta : float }
(** GLP (generalized linear preference, Bu & Towsley 2002) growth:
    with probability [p] a step adds [m] edges between existing ASes,
    otherwise it adds a new AS with [m] edges; either way endpoints are
    drawn with probability proportional to [degree - beta].  [beta < 1]
    shifts preference towards high-degree nodes, steepening the
    power-law tail. *)

type fattree_params = { pods : int }
(** k-ary fattree (Al-Fares et al. 2008) recast as an AS hierarchy:
    core switches become the tier-1 clique, aggregation switches
    tier-2, edge switches tier-3, and the remaining AS budget hangs
    off edge switches as stubs.  [pods = 0] derives the largest even
    [k] whose switch count fits the configured AS budget. *)

type t =
  | Paper  (** The tiered default world modelled on the paper's §3. *)
  | Waxman of waxman_params
  | Glp of glp_params
  | Fattree of fattree_params

val default_waxman : waxman_params
val default_glp : glp_params
val default_fattree : fattree_params

val names : string list
(** Family names accepted by {!of_string}, in display order. *)

val name : t -> string
(** Family name without parameters, e.g. ["waxman"]. *)

val to_string : t -> string
(** Canonical [name:key=value,...] spelling; round-trips through
    {!of_string}. *)

val of_string : string -> (t, string) result
(** Parses ["name"] or ["name:key=value,key=value"], e.g.
    ["waxman:alpha=0.4,beta=0.2"].  Omitted parameters take the family
    defaults; unknown families, unknown or duplicate keys, and
    out-of-range values are errors (never a silent fallback). *)

val syntax_help : unit -> string
(** One line per family describing its parameter syntax, for [--help]
    and error messages. *)

val pp : Format.formatter -> t -> unit
