(** Synthetic-world generation.

    {!Conf} holds the family-agnostic size and policy presets,
    {!Family} names the generator family (paper tiered hierarchy,
    Waxman geometric, GLP preferential attachment, datacenter
    fattree), {!Gentopo} realizes a family into the common
    AS/router-level topology shape, and {!Groundtruth} builds the full
    simulatable world (policies, prefixes, observation points) from
    any of them. *)

module Family = Family
module Conf = Conf
module Gentopo = Gentopo
module Groundtruth = Groundtruth

let generate : Family.t -> Conf.t -> Random.State.t -> Gentopo.t =
  Gentopo.of_family
(** [generate family conf rng] is the single dispatcher entry point
    for topology generation; see {!Gentopo.of_family}. *)
