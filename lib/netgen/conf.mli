(** Parameters of the synthetic-Internet generator.

    The generator stands in for the paper's measured BGP feeds (see
    DESIGN.md §2).  Its defaults produce a world with the qualitative
    properties the paper's §3 analysis establishes: a small tier-1
    clique, a multihomed hierarchy below it, intra-AS route diversity
    from hot-potato routing, and a minority of ASes whose policies do
    not follow customer/provider/peer conventions. *)

type t = {
  family : Family.t;
      (** Generator family deciding the AS-level structure; every other
          field is a family-agnostic size or policy knob.  Presets
          ({!default}, {!scaled}, {!sized}, {!tiny}) all start from
          {!Family.Paper}; override the field to keep the preset's
          sizing on a different family. *)
  seed : int;
  n_tier1 : int;  (** ASes in the top clique (paper finds 10). *)
  n_tier2 : int;  (** national/large providers. *)
  n_tier3 : int;  (** regional providers. *)
  n_stub : int;  (** edge ASes that provide no transit. *)
  stub_single_homed_frac : float;
      (** fraction of stubs with exactly one provider (paper: 6,611 of
          17,688 stubs). *)
  tier2_peer_prob : float;  (** peering probability per tier-2 pair. *)
  tier3_peer_prob : float;  (** peering probability per tier-3 pair. *)
  sibling_frac : float;  (** fraction of provider links turned sibling. *)
  parallel_link_prob : float;
      (** probability that an inter-AS adjacency gets a second router
          pair (multiple peering points, paper §1). *)
  routers_tier1 : int * int;  (** min/max border routers per tier-1 AS. *)
  routers_tier2 : int * int;
  routers_tier3 : int * int;
  routers_stub : int * int;
  rr_threshold : int;
      (** ASes with at least this many routers use route reflection
          instead of full-mesh iBGP: the two lowest-index routers become
          redundant route reflectors, all others their clients. *)
  weird_lpref_frac : float;
      (** fraction of eBGP sessions whose import preference deviates
          from its Gao-Rexford class value. *)
  selective_announce_frac : float;
      (** fraction of transit ASes doing per-prefix selective
          announcement towards some neighbour. *)
  med_noise_frac : float;
      (** fraction of ASes applying per-prefix MED overrides on some
          sessions (per-prefix traffic engineering that shifts choices
          among equal-length routes). *)
  multi_prefix_frac : float;
      (** fraction of ASes originating more than one prefix. *)
  max_prefixes_per_as : int;
      (** cap on prefixes per AS (each anchored at a random subset of
          the AS's routers, so different prefixes take different exits). *)
  n_obs_ases : int;  (** ASes hosting observation points. *)
  multi_obs_frac : float;
      (** fraction of observation ASes with several observation points
          (paper: 30%). *)
}

val default : t
(** Seed 42, ~700 ASes. *)

val scaled : float -> t
(** [scaled f] multiplies the AS counts by [f] (at least 1 each). *)

val sized : int -> t
(** [sized ases] is a paper-shaped world with [ases] ASes in total: the
    fixed 10-AS tier-1 clique, ~5% tier-2, ~18% tier-3, the rest stubs.
    Unlike {!scaled}, the knobs that would otherwise grow superlinearly
    are re-tuned for scale — router ranges are narrowed (node count
    ~2x the AS count), per-pair peering probabilities shrink with the
    tier populations (sessions stay linear in [ases]), and the prefix
    universe is bounded to ~2x the AS count — so 5000+-AS worlds build
    with bounded memory.  Raises [Invalid_argument] below 50 ASes. *)

val tiny : t
(** A few dozen ASes; used by unit tests. *)

val pp : Format.formatter -> t -> unit
