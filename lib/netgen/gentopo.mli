(** Synthetic AS- and router-level topologies.

    Generates the structural half of the ground-truth world: an AS
    graph with Gao-Rexford relationships, several border routers per
    transit AS, possibly several router-level links per AS adjacency,
    and router coordinates from which IGP distances (hot-potato
    inputs) derive.  The AS-level structure comes from one of the
    {!Family.t} generators — the paper's tiered hierarchy (tier-1
    clique, tier-2, tier-3, stubs), Waxman geometric, GLP preferential
    attachment, or a datacenter fattree — all realized into the same
    [t] shape.  Everything is driven by the seed in {!Conf.t}. *)

open Bgp

type tier = T1 | T2 | T3 | Stub

val tier_to_string : tier -> string

type rel = Provider | Peer | Sibling
(** Ground-truth relationship of a link's [a] side towards its [b] side:
    [Provider] means [a] is the provider of [b]. *)

type link = {
  a : Asn.t;
  a_router : int;  (** router index inside [a] *)
  b : Asn.t;
  b_router : int;
  rel : rel;
}

type t = {
  conf : Conf.t;
  tiers : tier Asn.Map.t;
  routers : int Asn.Map.t;  (** routers per AS *)
  links : link list;
  coords : (int * int) array Asn.Map.t;
      (** per-router plane coordinates; IGP cost between two routers of
          an AS is their Manhattan distance. *)
}

val of_family : Family.t -> Conf.t -> Random.State.t -> t
(** [of_family family conf rng] generates a world of [family] using
    [conf] purely as the size/policy preset ([conf.family] is ignored
    and overwritten with [family] in the result, so provenance is
    always what actually ran).  Non-paper families share one
    realization pass: family code decides tiers and
    relationship-labelled AS adjacencies; router counts, router-pair
    selection, parallel links and IGP coordinates follow the same Conf
    knobs as the paper family. *)

val generate : Conf.t -> Random.State.t -> t
(** @deprecated [generate conf rng] is the pre-dispatcher entry point,
    kept for one release as a delegating shim for
    [of_family conf.family conf rng] (equivalently
    {!Netgen.generate}).  With the default [conf.family = Paper] it
    behaves exactly as before.  New callers should use
    {!Netgen.generate}. *)

val ases : t -> Asn.t list
(** All ASNs, ascending. *)

val tier_of : t -> Asn.t -> tier

val as_graph : t -> Topology.Asgraph.t
(** The true AS-level graph (one edge per adjacency). *)

val igp_cost : t -> Asn.t -> int -> int -> int
(** [igp_cost t asn r1 r2]: Manhattan distance between two routers of
    [asn]. *)

val true_rel :
  t -> Asn.t -> Asn.t -> [ `Provider | `Customer | `Peer | `Sibling ] option
(** Ground-truth relationship of the first AS towards the second, if
    they are adjacent ([`Provider]: the first provides transit for the
    second).  Parallel links share the relationship. *)

val pp_summary : Format.formatter -> t -> unit
