open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine
module Relclass = Simulator.Relclass
module Decision = Simulator.Decision

type world = {
  topo : Gentopo.t;
  net : Net.t;
  node_of_router : (Asn.t * int, int) Hashtbl.t;
  obs : (int * Rib.obs_point) list;
  prefix_plan : (Prefix.t * Asn.t * int list) list;
  rng : Random.State.t;
}

let classes_of_rel = function
  | Gentopo.Provider -> (Relclass.customer, Relclass.provider)
      (* a provides for b: a sees b as its customer. *)
  | Gentopo.Peer -> (Relclass.peer, Relclass.peer)
  | Gentopo.Sibling -> (Relclass.sibling, Relclass.sibling)

let weird_or_default rng frac cls =
  if Random.State.float rng 1.0 < frac then
    let lo, hi = Relclass.band cls in
    lo + Random.State.int rng (hi - lo + 1)
  else Relclass.lpref cls

let build conf =
  let rng = Random.State.make [| conf.Conf.seed |] in
  let topo = Gentopo.of_family conf.Conf.family conf rng in
  let net = Net.create () in
  let node_of_router = Hashtbl.create 4096 in
  let router_of_node = Hashtbl.create 4096 in
  let used_ips = Hashtbl.create 4096 in
  let fresh_ip () =
    let rec go () =
      let ip = 0x0B000000 + Random.State.int rng 0x3FFFFFF in
      if Hashtbl.mem used_ips ip then go ()
      else begin
        Hashtbl.add used_ips ip ();
        Ipv4.of_int ip
      end
    in
    go ()
  in
  let ases = Gentopo.ases topo in
  List.iter
    (fun asn ->
      let n = Asn.Map.find asn topo.Gentopo.routers in
      for r = 0 to n - 1 do
        let id = Net.add_node net ~asn ~ip:(fresh_ip ()) in
        Hashtbl.add node_of_router (asn, r) id;
        Hashtbl.add router_of_node id (asn, r)
      done;
      (* iBGP: full mesh for small ASes; two redundant route
         reflectors with everyone else as clients for large ones. *)
      if n < conf.Conf.rr_threshold then
        for r1 = 0 to n - 1 do
          for r2 = r1 + 1 to n - 1 do
            ignore
              (Net.connect ~kind:Net.Ibgp net
                 (Hashtbl.find node_of_router (asn, r1))
                 (Hashtbl.find node_of_router (asn, r2)))
          done
        done
      else begin
        let node r = Hashtbl.find node_of_router (asn, r) in
        (* RR mesh (routers 0 and 1). *)
        ignore (Net.connect ~kind:Net.Ibgp net (node 0) (node 1));
        for client = 2 to n - 1 do
          List.iter
            (fun rr ->
              let s_rr, _s_client =
                Net.connect ~kind:Net.Ibgp net (node rr) (node client)
              in
              Net.set_rr_client net (node rr) s_rr true)
            [ 0; 1 ]
        done
      end)
    ases;
  Net.set_igp_cost net (fun n1 n2 ->
      let asn1, r1 = Hashtbl.find router_of_node n1 in
      let _asn2, r2 = Hashtbl.find router_of_node n2 in
      Gentopo.igp_cost topo asn1 r1 r2);
  (* eBGP sessions with Gao-Rexford preferences, a [weird_lpref_frac]
     dose of deviant per-session preferences. *)
  List.iter
    (fun l ->
      let na = Hashtbl.find node_of_router (l.Gentopo.a, l.Gentopo.a_router) in
      let nb = Hashtbl.find node_of_router (l.Gentopo.b, l.Gentopo.b_router) in
      let class_ab, class_ba = classes_of_rel l.Gentopo.rel in
      let sa, sb = Net.connect ~kind:Net.Ebgp ~class_ab ~class_ba net na nb in
      if l.Gentopo.rel = Gentopo.Sibling then begin
        (* Siblings are one organization: LOCAL_PREF crosses the
           boundary unchanged (cf. Net.set_carry_lpref). *)
        Net.set_carry_lpref net na sa true;
        Net.set_carry_lpref net nb sb true
      end
      else begin
        Net.set_import_lpref net na sa
          (weird_or_default rng conf.Conf.weird_lpref_frac class_ab);
        Net.set_import_lpref net nb sb
          (weird_or_default rng conf.Conf.weird_lpref_frac class_ba)
      end)
    topo.Gentopo.links;
  Net.set_export_matrix net Relclass.export_ok;
  Net.set_decision_steps net Decision.full_steps;
  (* Router-level ground truth follows the RFC: MED is only compared
     between routes from the same neighbouring AS (RFC 4271 §9.1.2.2).
     Quasi-router models keep the paper's always-compare ranking. *)
  Net.set_med_scope net Decision.Same_neighbor;
  (* Prefix plan: prefix 0 of an AS is anchored at every router; a
     [multi_prefix_frac] share of ASes originate further prefixes, each
     at a random non-empty router subset, so distinct prefixes of one AS
     exit through different routers. *)
  let prefix_plan =
    List.concat_map
      (fun asn ->
        let nodes = Net.nodes_of_as net asn in
        let count =
          if Random.State.float rng 1.0 < conf.Conf.multi_prefix_frac then
            2
            + Random.State.int rng
                (max 1 (conf.Conf.max_prefixes_per_as - 1))
          else 1
        in
        let count = min count Asn.max_prefixes in
        List.init count (fun i ->
            let anchors =
              if i = 0 then nodes
              else
                let subset =
                  List.filter (fun _ -> Random.State.float rng 1.0 < 0.5) nodes
                in
                if subset = [] then
                  [ List.nth nodes (Random.State.int rng (List.length nodes)) ]
                else subset
            in
            (Asn.nth_prefix asn i, asn, anchors)))
      ases
  in
  let all_prefixes = Array.of_list (List.map (fun (p, _, _) -> p) prefix_plan) in
  (* PoP-local origination: routers outside a prefix's anchor set do not
     announce it externally (think regional prefixes announced only at
     regional PoPs).  Different prefixes of one AS therefore enter the
     world through different provider links. *)
  List.iter
    (fun (prefix, asn, anchors) ->
      let nodes = Net.nodes_of_as net asn in
      List.iter
        (fun n ->
          if not (List.mem n anchors) then
            List.iter
              (fun (s, _) ->
                if Net.session_kind net n s = Net.Ebgp then
                  Net.deny_export net n s prefix)
              (Net.sessions_of net n))
        nodes)
    prefix_plan;
  List.iter
    (fun asn ->
      if
        Gentopo.tier_of topo asn <> Gentopo.Stub
        && Random.State.float rng 1.0 < conf.Conf.selective_announce_frac
      then begin
        let nodes = Net.nodes_of_as net asn in
        let ebgp_sessions =
          List.concat_map
            (fun n ->
              List.filter_map
                (fun (s, _) ->
                  if Net.session_kind net n s = Net.Ebgp then Some (n, s)
                  else None)
                (Net.sessions_of net n))
            nodes
        in
        let ns = List.length ebgp_sessions in
        if ns > 0 then
          let rounds = 2 + Random.State.int rng 3 in
          for _ = 1 to rounds do
            let n, s = List.nth ebgp_sessions (Random.State.int rng ns) in
            let victims = 10 + Random.State.int rng 31 in
            for _ = 1 to victims do
              let victim =
                all_prefixes.(Random.State.int rng (Array.length all_prefixes))
              in
              if Asn.of_origin_prefix victim <> Some asn then
                Net.deny_export net n s victim
            done
          done
      end)
    ases;
  (* Per-prefix MED noise: shifts choices among equal-length candidates
     of the same neighbouring AS (RFC-scoped MED), a cheap stand-in for
     the Internet's per-prefix traffic engineering. *)
  List.iter
    (fun asn ->
      if Random.State.float rng 1.0 < conf.Conf.med_noise_frac then begin
        let nodes = Net.nodes_of_as net asn in
        let ebgp_sessions =
          List.concat_map
            (fun n ->
              List.filter_map
                (fun (s, _) ->
                  if Net.session_kind net n s = Net.Ebgp then Some (n, s)
                  else None)
                (Net.sessions_of net n))
            nodes
        in
        let ns = List.length ebgp_sessions in
        if ns > 0 then
          let rounds = 2 + Random.State.int rng 4 in
          for _ = 1 to rounds do
            let n, s = List.nth ebgp_sessions (Random.State.int rng ns) in
            let touched = 5 + Random.State.int rng 16 in
            for _ = 1 to touched do
              let p =
                all_prefixes.(Random.State.int rng (Array.length all_prefixes))
              in
              Net.set_import_med net n s p (20 + Random.State.int rng 161)
            done
          done
      end)
    ases;
  (* Observation points, biased towards the core as in the paper. *)
  let weight asn =
    match Gentopo.tier_of topo asn with
    | Gentopo.T1 -> 10
    | Gentopo.T2 -> 6
    | Gentopo.T3 -> 3
    | Gentopo.Stub -> 2
  in
  let chosen = Hashtbl.create 64 in
  let total_weight = List.fold_left (fun acc a -> acc + weight a) 0 ases in
  let pick_as () =
    let x = Random.State.int rng total_weight in
    let rec go acc = function
      | [] -> None
      | a :: rest ->
          let acc = acc + weight a in
          if x < acc then Some a else go acc rest
    in
    go 0 ases
  in
  let rec choose_ases n guard =
    if n = 0 || guard = 0 then ()
    else
      match pick_as () with
      | Some a when not (Hashtbl.mem chosen a) ->
          Hashtbl.add chosen a ();
          choose_ases (n - 1) (guard - 1)
      | Some _ | None -> choose_ases n (guard - 1)
  in
  choose_ases conf.Conf.n_obs_ases (conf.Conf.n_obs_ases * 50);
  let obs = ref [] in
  Hashtbl.iter
    (fun asn () ->
      let n_routers = Asn.Map.find asn topo.Gentopo.routers in
      let count =
        if
          n_routers > 1
          && Random.State.float rng 1.0 < conf.Conf.multi_obs_frac
        then min n_routers (2 + Random.State.int rng 2)
        else 1
      in
      let indices = Array.init n_routers (fun i -> i) in
      (* Partial Fisher-Yates to pick [count] distinct routers. *)
      for i = 0 to count - 1 do
        let j = i + Random.State.int rng (n_routers - i) in
        let tmp = indices.(i) in
        indices.(i) <- indices.(j);
        indices.(j) <- tmp
      done;
      for i = 0 to count - 1 do
        let node = Hashtbl.find node_of_router (asn, indices.(i)) in
        obs :=
          (node, { Rib.op_ip = Net.ip_of net node; op_as = asn }) :: !obs
      done)
    chosen;
  let obs =
    List.sort
      (fun (_, a) (_, b) -> Rib.obs_point_compare a b)
      !obs
  in
  { topo; net; node_of_router; obs; prefix_plan; rng }

let originators w asn = Net.nodes_of_as w.net asn

let simulate_prefix w asn =
  Engine.simulate w.net ~prefix:(Asn.origin_prefix asn)
    ~originators:(originators w asn)

let simulate w prefix =
  let _, _, anchors =
    List.find (fun (p, _, _) -> Prefix.equal p prefix) w.prefix_plan
  in
  Engine.simulate w.net ~prefix ~originators:anchors

let observe ?on_prefix w =
  let total = List.length w.prefix_plan in
  (* Converging each prefix only reads the network, so the per-prefix
     simulations fan out over the domain pool; [Pool.map] preserves
     input order, keeping the observed dump deterministic.  The cheap
     RIB extraction stays sequential. *)
  let states =
    Simulator.Pool.map
      (fun (prefix, _origin, anchors) ->
        Engine.simulate w.net ~prefix ~originators:anchors)
      w.prefix_plan
  in
  let entries = ref [] in
  List.iteri
    (fun i ((prefix, _origin, _anchors), st) ->
      List.iter
        (fun (node, op) ->
          match Engine.best_full_path w.net st node with
          | Some path ->
              entries :=
                { Rib.op; prefix; path = Aspath.of_array path } :: !entries
          | None -> ())
        w.obs;
      match on_prefix with Some f -> f (i + 1) total | None -> ())
    (List.combine w.prefix_plan states);
  Rib.of_entries !entries

let observation_points w = List.map snd w.obs

let pp_summary ppf w =
  Format.fprintf ppf "%a; net: %a; %d observation points" Gentopo.pp_summary
    w.topo Net.pp_summary w.net (List.length w.obs)
