type waxman_params = { alpha : float; beta : float }

type glp_params = { m : int; p : float; beta : float }

type fattree_params = { pods : int }

type t =
  | Paper
  | Waxman of waxman_params
  | Glp of glp_params
  | Fattree of fattree_params

let default_waxman = { alpha = 0.4; beta = 0.2 }

(* Bu & Towsley's fitted GLP parameters, rounded. *)
let default_glp = { m = 2; p = 0.47; beta = 0.64 }

let default_fattree = { pods = 0 }

let names = [ "paper"; "waxman"; "glp"; "fattree" ]

let name = function
  | Paper -> "paper"
  | Waxman _ -> "waxman"
  | Glp _ -> "glp"
  | Fattree _ -> "fattree"

(* Floats print with %g and reparse exactly for the few digits the
   params carry, so [of_string (to_string f) = Ok f]. *)
let to_string = function
  | Paper -> "paper"
  | Waxman { alpha; beta } -> Printf.sprintf "waxman:alpha=%g,beta=%g" alpha beta
  | Glp { m; p; beta } -> Printf.sprintf "glp:m=%d,p=%g,beta=%g" m p beta
  | Fattree { pods } ->
      if pods = 0 then "fattree" else Printf.sprintf "fattree:pods=%d" pods

let param_syntax =
  [
    ("paper", "no parameters (the tiered default world)");
    ("waxman", "alpha=F (edge density, 0<F<=1), beta=F (distance decay, 0<F<=1)");
    ("glp", "m=N (links per new AS, >=1), p=F (edge-vs-node step, 0<=F<1), \
             beta=F (preference shift, <1)");
    ("fattree", "pods=N (even, >=2; 0 or omitted sizes pods from the AS budget)");
  ]

let syntax_help () =
  String.concat "; "
    (List.map (fun (n, s) -> Printf.sprintf "%s: %s" n s) param_syntax)

let ( let* ) = Result.bind

let parse_params s =
  (* "k=v,k=v" -> assoc list; duplicate keys are rejected. *)
  if s = "" then Error "empty parameter list"
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | kv :: rest -> (
          match String.index_opt kv '=' with
          | None -> Error (Printf.sprintf "bad parameter %S (want key=value)" kv)
          | Some i ->
              let k = String.sub kv 0 i
              and v = String.sub kv (i + 1) (String.length kv - i - 1) in
              if k = "" || v = "" then
                Error (Printf.sprintf "bad parameter %S (want key=value)" kv)
              else if List.mem_assoc k acc then
                Error (Printf.sprintf "duplicate parameter %S" k)
              else go ((k, v) :: acc) rest)
    in
    go [] (String.split_on_char ',' s)

let float_param params key default ~check =
  match List.assoc_opt key params with
  | None -> Ok default
  | Some v -> (
      match float_of_string_opt v with
      | Some f when Float.is_finite f && check f -> Ok f
      | Some _ | None ->
          Error (Printf.sprintf "bad value %S for parameter %S" v key))

let int_param params key default ~check =
  match List.assoc_opt key params with
  | None -> Ok default
  | Some v -> (
      match int_of_string_opt v with
      | Some n when check n -> Ok n
      | Some _ | None ->
          Error (Printf.sprintf "bad value %S for parameter %S" v key))

let reject_unknown params ~known ~family =
  match List.find_opt (fun (k, _) -> not (List.mem k known)) params with
  | Some (k, _) ->
      Error
        (Printf.sprintf "unknown parameter %S for family %s (known: %s)" k
           family
           (if known = [] then "none" else String.concat ", " known))
  | None -> Ok ()

let of_string s =
  let s = String.trim s in
  let fam, params_str =
    match String.index_opt s ':' with
    | None -> (s, None)
    | Some i ->
        ( String.sub s 0 i,
          Some (String.sub s (i + 1) (String.length s - i - 1)) )
  in
  let with_params f =
    match params_str with
    | None -> f []
    | Some ps ->
        let* params = parse_params ps in
        f params
  in
  match String.lowercase_ascii fam with
  | "paper" ->
      with_params (fun params ->
          let* () = reject_unknown params ~known:[] ~family:"paper" in
          Ok Paper)
  | "waxman" ->
      with_params (fun params ->
          let* () =
            reject_unknown params ~known:[ "alpha"; "beta" ] ~family:"waxman"
          in
          let* alpha =
            float_param params "alpha" default_waxman.alpha ~check:(fun f ->
                f > 0.0 && f <= 1.0)
          in
          let* beta =
            float_param params "beta" default_waxman.beta ~check:(fun f ->
                f > 0.0 && f <= 1.0)
          in
          Ok (Waxman { alpha; beta }))
  | "glp" ->
      with_params (fun params ->
          let* () =
            reject_unknown params ~known:[ "m"; "p"; "beta" ] ~family:"glp"
          in
          let* m = int_param params "m" default_glp.m ~check:(fun n -> n >= 1) in
          let* p =
            float_param params "p" default_glp.p ~check:(fun f ->
                f >= 0.0 && f < 1.0)
          in
          let* beta =
            float_param params "beta" default_glp.beta ~check:(fun f -> f < 1.0)
          in
          Ok (Glp { m; p; beta }))
  | "fattree" ->
      with_params (fun params ->
          let* () = reject_unknown params ~known:[ "pods" ] ~family:"fattree" in
          let* pods =
            int_param params "pods" default_fattree.pods ~check:(fun n ->
                n = 0 || (n >= 2 && n mod 2 = 0))
          in
          Ok (Fattree { pods }))
  | other ->
      Error
        (Printf.sprintf "unknown generator family %S (one of: %s)" other
           (String.concat ", " names))

let pp ppf f = Format.pp_print_string ppf (to_string f)
