type t = {
  family : Family.t;
  seed : int;
  n_tier1 : int;
  n_tier2 : int;
  n_tier3 : int;
  n_stub : int;
  stub_single_homed_frac : float;
  tier2_peer_prob : float;
  tier3_peer_prob : float;
  sibling_frac : float;
  parallel_link_prob : float;
  routers_tier1 : int * int;
  routers_tier2 : int * int;
  routers_tier3 : int * int;
  routers_stub : int * int;
  rr_threshold : int;
  weird_lpref_frac : float;
  selective_announce_frac : float;
  med_noise_frac : float;
  multi_prefix_frac : float;
  max_prefixes_per_as : int;
  n_obs_ases : int;
  multi_obs_frac : float;
}

let default =
  {
    family = Family.Paper;
    seed = 42;
    n_tier1 = 10;
    n_tier2 = 70;
    n_tier3 = 220;
    n_stub = 400;
    stub_single_homed_frac = 0.4;
    tier2_peer_prob = 0.20;
    tier3_peer_prob = 0.01;
    sibling_frac = 0.02;
    parallel_link_prob = 0.45;
    routers_tier1 = (6, 10);
    routers_tier2 = (3, 6);
    routers_tier3 = (2, 4);
    routers_stub = (1, 2);
    rr_threshold = 6;
    weird_lpref_frac = 0.06;
    selective_announce_frac = 0.30;
    med_noise_frac = 0.10;
    multi_prefix_frac = 0.70;
    max_prefixes_per_as = 8;
    n_obs_ases = 90;
    multi_obs_frac = 0.3;
  }

let scaled f =
  let s n = max 1 (int_of_float (float_of_int n *. f)) in
  {
    default with
    n_tier2 = s default.n_tier2;
    n_tier3 = s default.n_tier3;
    n_stub = s default.n_stub;
    n_obs_ases = s default.n_obs_ases;
  }

let sized ases =
  if ases < 50 then invalid_arg "Conf.sized: need at least 50 ASes";
  let t1 = 10 in
  let t2 = max 5 (ases * 5 / 100) in
  let t3 = max 10 (ases * 18 / 100) in
  let stub = max 1 (ases - t1 - t2 - t3) in
  {
    default with
    n_tier1 = t1;
    n_tier2 = t2;
    n_tier3 = t3;
    n_stub = stub;
    (* Narrow router ranges keep the node count near 2x the AS count,
       so a 5k-AS world stays within a laptop-sized heap. *)
    routers_tier1 = (4, 6);
    routers_tier2 = (2, 4);
    routers_tier3 = (1, 3);
    routers_stub = (1, 2);
    (* Peering probabilities are per pair, so they must shrink with the
       tier populations or the session count grows quadratically; keep
       the expected peerings-per-AS of the default world instead. *)
    tier2_peer_prob =
      min default.tier2_peer_prob (14.0 /. float_of_int t2);
    tier3_peer_prob =
      min default.tier3_peer_prob (2.2 /. float_of_int t3);
    (* Bound the prefix universe to ~2x the AS count at scale. *)
    multi_prefix_frac = 0.3;
    max_prefixes_per_as = 4;
    n_obs_ases = max 20 (ases / 8);
  }

let tiny =
  {
    default with
    n_tier1 = 3;
    n_tier2 = 6;
    n_tier3 = 12;
    n_stub = 20;
    n_obs_ases = 8;
    routers_tier1 = (2, 3);
    routers_tier2 = (1, 2);
    routers_tier3 = (1, 2);
    routers_stub = (1, 1);
  }

let pp ppf c =
  Format.fprintf ppf
    "family=%s seed=%d ASes=%d+%d+%d+%d obs=%d peers(t2)=%.3f weird=%.2f \
     selective=%.2f"
    (Family.to_string c.family) c.seed c.n_tier1 c.n_tier2 c.n_tier3 c.n_stub
    c.n_obs_ases c.tier2_peer_prob c.weird_lpref_frac
    c.selective_announce_frac
