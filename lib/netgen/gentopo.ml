open Bgp

type tier = T1 | T2 | T3 | Stub

let tier_to_string = function
  | T1 -> "tier-1"
  | T2 -> "tier-2"
  | T3 -> "tier-3"
  | Stub -> "stub"

type rel = Provider | Peer | Sibling

type link = { a : Asn.t; a_router : int; b : Asn.t; b_router : int; rel : rel }

type t = {
  conf : Conf.t;
  tiers : tier Asn.Map.t;
  routers : int Asn.Map.t;
  links : link list;
  coords : (int * int) array Asn.Map.t;
}

let rand_range rng (lo, hi) = lo + Random.State.int rng (hi - lo + 1)

(* Weighted pick without replacement is not needed; duplicates are
   filtered by the caller.  Weights favour already-popular providers to
   produce the Internet's heavy-tailed degrees. *)
let weighted_pick rng weights candidates =
  let total = List.fold_left (fun acc c -> acc + weights c) 0 candidates in
  if total = 0 then None
  else
    let x = Random.State.int rng total in
    let rec go acc = function
      | [] -> None
      | c :: rest ->
          let acc = acc + weights c in
          if x < acc then Some c else go acc rest
    in
    go 0 candidates

(* Float-weighted variant for the preferential-attachment families. *)
let weighted_pick_float rng weights candidates =
  let total = List.fold_left (fun acc c -> acc +. weights c) 0.0 candidates in
  if total <= 0.0 then None
  else
    let x = Random.State.float rng total in
    let rec go acc = function
      | [] -> None
      | [ c ] -> Some c
      | c :: rest ->
          let acc = acc +. weights c in
          if x < acc then Some c else go acc rest
    in
    go 0.0 candidates

let generate_paper (conf : Conf.t) rng =
  let next_asn = ref 0 in
  let fresh_tier n tier acc =
    let rec loop i acc =
      if i >= n then acc
      else begin
        incr next_asn;
        loop (i + 1) (Asn.Map.add !next_asn tier acc)
      end
    in
    loop 0 acc
  in
  let tiers =
    Asn.Map.empty
    |> fresh_tier conf.Conf.n_tier1 T1
    |> fresh_tier conf.Conf.n_tier2 T2
    |> fresh_tier conf.Conf.n_tier3 T3
    |> fresh_tier conf.Conf.n_stub Stub
  in
  let of_tier t =
    Asn.Map.fold (fun a t' acc -> if t' = t then a :: acc else acc) tiers []
    |> List.rev
  in
  let tier1 = of_tier T1 and tier2 = of_tier T2 and tier3 = of_tier T3 in
  let stubs = of_tier Stub in
  let routers =
    Asn.Map.mapi
      (fun _ t ->
        match t with
        | T1 -> rand_range rng conf.Conf.routers_tier1
        | T2 -> rand_range rng conf.Conf.routers_tier2
        | T3 -> rand_range rng conf.Conf.routers_tier3
        | Stub -> rand_range rng conf.Conf.routers_stub)
      tiers
  in
  let degree = Hashtbl.create 1024 in
  let deg a = Option.value ~default:0 (Hashtbl.find_opt degree a) in
  let bump a = Hashtbl.replace degree a (deg a + 1) in
  let links = ref [] in
  let used_pairs = Hashtbl.create 4096 in
  (* One router-level link; remembers the router pair so parallel links
     never reuse it (the simulator allows one session per node pair). *)
  let add_link a b rel =
    let ra_max = Asn.Map.find a routers and rb_max = Asn.Map.find b routers in
    let rec pick tries =
      if tries = 0 then None
      else
        let ra = Random.State.int rng ra_max
        and rb = Random.State.int rng rb_max in
        if Hashtbl.mem used_pairs (a, ra, b, rb) then pick (tries - 1)
        else Some (ra, rb)
    in
    match pick 8 with
    | None -> ()
    | Some (ra, rb) ->
        Hashtbl.replace used_pairs (a, ra, b, rb) ();
        Hashtbl.replace used_pairs (b, rb, a, ra) ();
        links := { a; a_router = ra; b; b_router = rb; rel } :: !links;
        bump a;
        bump b
  in
  let adjacent = Hashtbl.create 4096 in
  let mark_adj a b =
    Hashtbl.replace adjacent (a, b) ();
    Hashtbl.replace adjacent (b, a) ()
  in
  let is_adj a b = Hashtbl.mem adjacent (a, b) in
  let add_adjacency a b rel =
    if a <> b && not (is_adj a b) then begin
      mark_adj a b;
      add_link a b rel;
      if Random.State.float rng 1.0 < conf.Conf.parallel_link_prob then
        add_link a b rel
    end
  in
  (* Tier-1 clique: all peerings. *)
  List.iter
    (fun a -> List.iter (fun b -> if a < b then add_adjacency a b Peer) tier1)
    tier1;
  let maybe_sibling rel =
    match rel with
    | Provider when Random.State.float rng 1.0 < conf.Conf.sibling_frac ->
        Sibling
    | rel -> rel
  in
  let connect_customer asn ~providers ~count =
    let weights p = 1 + deg p in
    let rec go chosen n =
      if n = 0 then ()
      else
        match
          weighted_pick rng weights
            (List.filter (fun p -> not (List.mem p chosen)) providers)
        with
        | None -> ()
        | Some p ->
            add_adjacency p asn (maybe_sibling Provider);
            go (p :: chosen) (n - 1)
    in
    go [] count
  in
  (* Tier-2: 2-4 tier-1 providers, peerings among themselves. *)
  List.iter
    (fun asn -> connect_customer asn ~providers:tier1 ~count:(2 + Random.State.int rng 3))
    tier2;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b && Random.State.float rng 1.0 < conf.Conf.tier2_peer_prob
          then add_adjacency a b Peer)
        tier2)
    tier2;
  (* Tier-3: 1-3 providers drawn mostly from tier-2, peerings among
     themselves. *)
  List.iter
    (fun asn ->
      let providers =
        if Random.State.float rng 1.0 < 0.15 then tier1 @ tier2 else tier2
      in
      connect_customer asn ~providers ~count:(2 + Random.State.int rng 3))
    tier3;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a < b && Random.State.float rng 1.0 < conf.Conf.tier3_peer_prob
          then add_adjacency a b Peer)
        tier3)
    tier3;
  (* Stubs: single-homed fraction gets exactly one provider, the rest
     two or three. *)
  List.iter
    (fun asn ->
      let count =
        if Random.State.float rng 1.0 < conf.Conf.stub_single_homed_frac then 1
        else 2 + Random.State.int rng 3
      in
      connect_customer asn ~providers:(tier2 @ tier3) ~count)
    stubs;
  let coords =
    Asn.Map.map
      (fun n ->
        Array.init n (fun _ ->
            (Random.State.int rng 100, Random.State.int rng 100)))
      routers
  in
  { conf; tiers; routers; links = List.rev !links; coords }

(* ------------------------------------------------------------------ *)
(* Shared router-level realization for the non-paper families.

   A family decides the AS-level structure (tiers + oriented,
   relationship-labelled adjacencies, one entry per unordered pair,
   [a] the provider side); realization assigns border-router counts
   from the family-agnostic Conf ranges, picks distinct router pairs
   per adjacency, duplicates adjacencies with [parallel_link_prob]
   (multiple peering points, exactly like the paper family) and places
   router coordinates for the Manhattan IGP metric. *)
let realize (conf : Conf.t) rng ~tiers ~edges =
  let routers =
    Asn.Map.mapi
      (fun _ t ->
        match t with
        | T1 -> rand_range rng conf.Conf.routers_tier1
        | T2 -> rand_range rng conf.Conf.routers_tier2
        | T3 -> rand_range rng conf.Conf.routers_tier3
        | Stub -> rand_range rng conf.Conf.routers_stub)
      tiers
  in
  let links = ref [] in
  let used_pairs = Hashtbl.create 4096 in
  let add_link a b rel =
    let ra_max = Asn.Map.find a routers and rb_max = Asn.Map.find b routers in
    let rec pick tries =
      if tries = 0 then None
      else
        let ra = Random.State.int rng ra_max
        and rb = Random.State.int rng rb_max in
        if Hashtbl.mem used_pairs (a, ra, b, rb) then pick (tries - 1)
        else Some (ra, rb)
    in
    match pick 8 with
    | None -> ()
    | Some (ra, rb) ->
        Hashtbl.replace used_pairs (a, ra, b, rb) ();
        Hashtbl.replace used_pairs (b, rb, a, ra) ();
        links := { a; a_router = ra; b; b_router = rb; rel } :: !links
  in
  List.iter
    (fun (a, b, rel) ->
      add_link a b rel;
      if Random.State.float rng 1.0 < conf.Conf.parallel_link_prob then
        add_link a b rel)
    edges;
  let coords =
    Asn.Map.map
      (fun n ->
        Array.init n (fun _ ->
            (Random.State.int rng 100, Random.State.int rng 100)))
      routers
  in
  { conf; tiers; routers; links = List.rev !links; coords }

let total_ases (conf : Conf.t) =
  conf.Conf.n_tier1 + conf.Conf.n_tier2 + conf.Conf.n_tier3 + conf.Conf.n_stub

(* Degree-rank tiering for the organically grown families: the Conf
   tier counts become rank brackets (top [n_tier1] degrees are tier-1,
   and so on), so size presets keep their meaning across families.
   Returns the tier map plus a rank map (lower rank = bigger AS) whose
   total order directs every provider edge — providers always outrank
   their customers, so the customer-provider digraph is acyclic by
   construction (no dispute wheels from the generator). *)
let tiers_by_degree (conf : Conf.t) ~nodes ~degree_of =
  let ranked =
    List.sort
      (fun a b ->
        match compare (degree_of b) (degree_of a) with
        | 0 -> compare a b
        | c -> c)
      nodes
  in
  let n1 = conf.Conf.n_tier1
  and n2 = conf.Conf.n_tier2
  and n3 = conf.Conf.n_tier3 in
  let _, tiers, rank =
    List.fold_left
      (fun (i, tiers, rank) a ->
        let tier =
          if i < n1 then T1
          else if i < n1 + n2 then T2
          else if i < n1 + n2 + n3 then T3
          else Stub
        in
        (i + 1, Asn.Map.add a tier tiers, Asn.Map.add a i rank))
      (0, Asn.Map.empty, Asn.Map.empty)
      ranked
  in
  (tiers, rank)

(* Relationship assignment shared by Waxman and GLP: cross-tier edges
   are Provider (better-ranked side provides), same-tier edges start
   as Peer; then every non-tier-1 AS without a provider converts its
   best-ranked peer edge to Provider (route propagation needs a
   customer cone), and finally a [sibling_frac] of provider edges flip
   to Sibling, mirroring the paper family. *)
let assign_rels (conf : Conf.t) rng ~tiers ~rank ~raw_edges =
  let tier a = Asn.Map.find a tiers in
  let rk a = Asn.Map.find a rank in
  let edges =
    Array.of_list
      (List.map
         (fun (u, v) ->
           let u, v = if rk u < rk v then (u, v) else (v, u) in
           if tier u = tier v then (u, v, Peer) else (u, v, Provider))
         raw_edges)
  in
  let has_provider = Hashtbl.create 256 in
  Array.iter
    (fun (_, v, rel) -> if rel = Provider then Hashtbl.replace has_provider v ())
    edges;
  (* Peer-edge indices per AS, deterministic order. *)
  let peer_edges = Hashtbl.create 256 in
  Array.iteri
    (fun i (u, v, rel) ->
      if rel = Peer then begin
        Hashtbl.replace peer_edges u
          (i :: Option.value ~default:[] (Hashtbl.find_opt peer_edges u));
        Hashtbl.replace peer_edges v
          (i :: Option.value ~default:[] (Hashtbl.find_opt peer_edges v))
      end)
    edges;
  Asn.Map.iter
    (fun a t ->
      if t <> T1 && not (Hashtbl.mem has_provider a) then
        (* Best-ranked (strictly better) neighbour becomes the provider;
           a local hub that outranks all its neighbours keeps none. *)
        let candidates =
          Option.value ~default:[] (Hashtbl.find_opt peer_edges a)
          |> List.filter_map (fun i ->
                 let u, v, _ = edges.(i) in
                 let other = if u = a then v else u in
                 if rk other < rk a then Some (rk other, i, other) else None)
        in
        match List.sort compare candidates with
        | [] -> ()
        | (_, i, other) :: _ ->
            edges.(i) <- (other, a, Provider);
            Hashtbl.replace has_provider a ())
    tiers;
  Array.to_list edges
  |> List.map (fun (u, v, rel) ->
         match rel with
         | Provider when Random.State.float rng 1.0 < conf.Conf.sibling_frac ->
             (u, v, Sibling)
         | rel -> (u, v, rel))

(* Waxman geometric family, bounded-candidate incremental variant:
   ASes arrive at uniform positions on the 100x100 grid; each new AS
   scans a bounded sample of earlier ASes and links to each with the
   Waxman probability alpha * exp (-d / (beta * l)).  Linking to at
   least the best candidate keeps the graph connected by construction
   while degree stays linear in alpha rather than in the AS count. *)
let generate_waxman (p : Family.waxman_params) (conf : Conf.t) rng =
  let n = total_ases conf in
  let pos =
    Array.init (n + 1) (fun _ ->
        (Random.State.float rng 100.0, Random.State.float rng 100.0))
  in
  let l = 100.0 *. sqrt 2.0 in
  let prob u v =
    let xu, yu = pos.(u) and xv, yv = pos.(v) in
    let d = sqrt (((xu -. xv) ** 2.0) +. ((yu -. yv) ** 2.0)) in
    p.Family.alpha *. exp (-.d /. (p.Family.beta *. l))
  in
  let sample_cap = 40 in
  let raw_edges = ref [] in
  let degree = Hashtbl.create 1024 in
  let deg a = Option.value ~default:0 (Hashtbl.find_opt degree a) in
  let bump a = Hashtbl.replace degree a (deg a + 1) in
  let add_edge u v =
    raw_edges := (u, v) :: !raw_edges;
    bump u;
    bump v
  in
  for u = 2 to n do
    let candidates =
      if u - 1 <= sample_cap then List.init (u - 1) (fun i -> i + 1)
      else begin
        let seen = Hashtbl.create sample_cap in
        let rec draw acc k =
          if k = 0 then acc
          else
            let c = 1 + Random.State.int rng (u - 1) in
            if Hashtbl.mem seen c then draw acc (k - 1)
            else begin
              Hashtbl.replace seen c ();
              draw (c :: acc) (k - 1)
            end
        in
        (* Budget 2*cap draws; duplicates just shrink the sample. *)
        List.rev (draw [] (2 * sample_cap))
      end
    in
    let accepted =
      List.filter (fun c -> Random.State.float rng 1.0 < prob u c) candidates
    in
    (match accepted with
    | [] ->
        (* Guarantee connectivity: take the most attractive candidate. *)
        let best =
          List.fold_left
            (fun best c ->
              match best with
              | None -> Some c
              | Some b -> if prob u c > prob u b then Some c else best)
            None candidates
        in
        Option.iter (fun c -> add_edge c u) best
    | cs -> List.iter (fun c -> add_edge c u) cs)
  done;
  let raw_edges = List.rev !raw_edges in
  let nodes = List.init n (fun i -> i + 1) in
  let tiers, rank = tiers_by_degree conf ~nodes ~degree_of:deg in
  let edges = assign_rels conf rng ~tiers ~rank ~raw_edges in
  realize conf rng ~tiers ~edges

(* GLP preferential-attachment family (Bu & Towsley 2002): grow from a
   small clique; each step either adds [m] edges between existing ASes
   (probability [p]) or a new AS with [m] edges, endpoints drawn with
   probability proportional to [degree - beta].  Connected by
   construction; degree-rank tiering as for Waxman. *)
let generate_glp (g : Family.glp_params) (conf : Conf.t) rng =
  let n = max (total_ases conf) (g.Family.m + 1) in
  let degree = Hashtbl.create 1024 in
  let deg a = Option.value ~default:0 (Hashtbl.find_opt degree a) in
  let bump a = Hashtbl.replace degree a (deg a + 1) in
  let adjacent = Hashtbl.create 4096 in
  let raw_edges = ref [] in
  let add_edge u v =
    Hashtbl.replace adjacent (u, v) ();
    Hashtbl.replace adjacent (v, u) ();
    raw_edges := (u, v) :: !raw_edges;
    bump u;
    bump v
  in
  let nodes = ref [] in
  let n_nodes = ref 0 in
  let new_node () =
    incr n_nodes;
    nodes := !n_nodes :: !nodes;
    !n_nodes
  in
  (* Seed clique of m+1 ASes. *)
  let m0 = g.Family.m + 1 in
  for _ = 1 to m0 do
    ignore (new_node ())
  done;
  for u = 1 to m0 do
    for v = u + 1 to m0 do
      add_edge u v
    done
  done;
  let weight a = float_of_int (deg a) -. g.Family.beta in
  let pick_existing ?(avoid = []) () =
    let candidates = List.filter (fun a -> not (List.mem a avoid)) !nodes in
    weighted_pick_float rng weight candidates
  in
  while !n_nodes < n do
    if Random.State.float rng 1.0 < g.Family.p then
      (* Internal-edge step: m new edges between existing ASes. *)
      for _ = 1 to g.Family.m do
        match pick_existing () with
        | None -> ()
        | Some u -> (
            let rec try_v tries =
              if tries = 0 then ()
              else
                match pick_existing ~avoid:[ u ] () with
                | None -> ()
                | Some v ->
                    if Hashtbl.mem adjacent (u, v) then try_v (tries - 1)
                    else add_edge u v
            in
            try_v 4)
      done
    else begin
      let w = new_node () in
      let rec attach chosen k =
        if k = 0 then ()
        else
          match pick_existing ~avoid:(w :: chosen) () with
          | None -> ()
          | Some u ->
              add_edge u w;
              attach (u :: chosen) (k - 1)
      in
      attach [] (min g.Family.m (!n_nodes - 1))
    end
  done;
  let raw_edges = List.rev !raw_edges in
  let nodes = List.init !n_nodes (fun i -> i + 1) in
  let tiers, rank = tiers_by_degree conf ~nodes ~degree_of:deg in
  let edges = assign_rels conf rng ~tiers ~rank ~raw_edges in
  realize conf rng ~tiers ~edges

(* Datacenter-style k-pod fattree recast as an AS hierarchy: the
   (k/2)^2 core switches are the tier-1 ASes, the k*k/2 aggregation
   switches tier-2, the k*k/2 edge switches tier-3, and the remaining
   AS budget hangs off edge switches as stub ASes (round-robin, a
   [1 - stub_single_homed_frac] share dual-homed to the next edge
   switch).  Every switch-level link is a Provider relationship from
   the higher layer, so customer routes propagate core-wards exactly
   as in the tiered families.  [pods = 0] picks the largest even k
   whose switch count fits within half the configured AS budget,
   leaving the other half for stubs. *)
let generate_fattree (f : Family.fattree_params) (conf : Conf.t) rng =
  let budget = total_ases conf in
  let switches_of k = ((k / 2) * (k / 2)) + (k * k) in
  let k =
    if f.Family.pods > 0 then f.Family.pods
    else begin
      let k = ref 2 in
      while switches_of (!k + 2) <= max (switches_of 2) (budget / 2) do
        k := !k + 2
      done;
      !k
    end
  in
  let half = k / 2 in
  let n_core = half * half in
  let n_agg = k * half in
  let n_edge = k * half in
  (* ASN layout: cores 1..n_core, then aggs, then edges, then stubs. *)
  let core i = 1 + i in
  let agg pod j = 1 + n_core + (pod * half) + j in
  let edge pod j = 1 + n_core + n_agg + (pod * half) + j in
  let n_switches = n_core + n_agg + n_edge in
  let n_stubs = max 0 (budget - n_switches) in
  let stub i = 1 + n_switches + i in
  let tiers = ref Asn.Map.empty in
  let set_tier a t = tiers := Asn.Map.add a t !tiers in
  for i = 0 to n_core - 1 do
    set_tier (core i) T1
  done;
  for pod = 0 to k - 1 do
    for j = 0 to half - 1 do
      set_tier (agg pod j) T2;
      set_tier (edge pod j) T3
    done
  done;
  for i = 0 to n_stubs - 1 do
    set_tier (stub i) Stub
  done;
  let edges = ref [] in
  let add a b = edges := (a, b, Provider) :: !edges in
  (* Core group j (cores j*half .. j*half+half-1) serves agg j of every
     pod; each agg serves every edge switch in its pod. *)
  for pod = 0 to k - 1 do
    for j = 0 to half - 1 do
      for c = 0 to half - 1 do
        add (core ((j * half) + c)) (agg pod j)
      done;
      for e = 0 to half - 1 do
        add (agg pod j) (edge pod e)
      done
    done
  done;
  for i = 0 to n_stubs - 1 do
    let e = i mod n_edge in
    let home pod_j =
      let pod = pod_j / half and j = pod_j mod half in
      edge pod j
    in
    add (home e) (stub i);
    if Random.State.float rng 1.0 >= conf.Conf.stub_single_homed_frac then
      add (home ((e + 1) mod n_edge)) (stub i)
  done;
  realize conf rng ~tiers:!tiers ~edges:(List.rev !edges)

(* ------------------------------------------------------------------ *)

let of_family family conf rng =
  (* Record the family actually used so provenance survives in the
     world (pp_summary, bench metadata) even when the caller's Conf
     carried a different default. *)
  let conf = { conf with Conf.family } in
  match family with
  | Family.Paper -> generate_paper conf rng
  | Family.Waxman p -> generate_waxman p conf rng
  | Family.Glp p -> generate_glp p conf rng
  | Family.Fattree p -> generate_fattree p conf rng

let generate (conf : Conf.t) rng = of_family conf.Conf.family conf rng

let ases t = Asn.Map.fold (fun a _ acc -> a :: acc) t.tiers [] |> List.rev

let tier_of t a = Asn.Map.find a t.tiers

let as_graph t =
  List.fold_left
    (fun g l -> Topology.Asgraph.add_edge g l.a l.b)
    (List.fold_left (fun g a -> Topology.Asgraph.add_node g a) Topology.Asgraph.empty (ases t))
    t.links

let igp_cost t asn r1 r2 =
  let c = Asn.Map.find asn t.coords in
  let x1, y1 = c.(r1) and x2, y2 = c.(r2) in
  abs (x1 - x2) + abs (y1 - y2)

let true_rel t a b =
  let rec find = function
    | [] -> None
    | l :: rest ->
        if l.a = a && l.b = b then
          Some
            (match l.rel with
            | Provider -> `Provider
            | Peer -> `Peer
            | Sibling -> `Sibling)
        else if l.a = b && l.b = a then
          Some
            (match l.rel with
            | Provider -> `Customer
            | Peer -> `Peer
            | Sibling -> `Sibling)
        else find rest
  in
  find t.links

let pp_summary ppf t =
  let count tier =
    Asn.Map.fold (fun _ t' acc -> if t' = tier then acc + 1 else acc) t.tiers 0
  in
  let total_routers = Asn.Map.fold (fun _ n acc -> acc + n) t.routers 0 in
  Format.fprintf ppf
    "family=%s: %d ASes (t1=%d t2=%d t3=%d stub=%d), %d router links, %d routers"
    (Family.to_string t.conf.Conf.family)
    (Asn.Map.cardinal t.tiers) (count T1) (count T2) (count T3) (count Stub)
    (List.length t.links) total_routers
