open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine

type t = {
  net : Net.t;
  graph : Topology.Asgraph.t;
  prefixes : (Prefix.t * Asn.t) list;
}

let initial graph =
  let net = Net.create () in
  let node_of = Hashtbl.create 4096 in
  List.iter
    (fun asn ->
      let id = Net.add_node net ~asn ~ip:(Asn.router_ip asn 0) in
      Hashtbl.add node_of asn id)
    (Topology.Asgraph.nodes graph);
  Topology.Asgraph.fold_edges
    (fun a b () ->
      ignore
        (Net.connect net (Hashtbl.find node_of a) (Hashtbl.find node_of b)))
    graph ();
  let prefixes =
    List.map (fun asn -> (Asn.origin_prefix asn, asn)) (Topology.Asgraph.nodes graph)
  in
  { net; graph; prefixes }

let origin_of t p =
  (* Fast path: model prefixes follow the canonical ASN scheme. *)
  match Asn.of_origin_prefix p with
  | Some asn
    when Topology.Asgraph.mem_node t.graph asn
         && Prefix.equal p (Asn.origin_prefix asn) ->
      Some asn
  | Some _ | None ->
      List.find_map
        (fun (p', asn) -> if Prefix.equal p p' then Some asn else None)
        t.prefixes

let originators t p =
  match origin_of t p with
  | Some asn -> Net.nodes_of_as t.net asn
  | None -> []

let simulate ?max_events ?from t p =
  Engine.simulate ?max_events ?from t.net ~prefix:p
    ~originators:(originators t p)

let quasi_router_count t asn = List.length (Net.nodes_of_as t.net asn)

let quasi_router_histogram t =
  let hist = Hashtbl.create 16 in
  List.iter
    (fun asn ->
      let k = quasi_router_count t asn in
      Hashtbl.replace hist k
        (1 + Option.value ~default:0 (Hashtbl.find_opt hist k)))
    (Topology.Asgraph.nodes t.graph);
  Hashtbl.fold (fun k n acc -> (k, n) :: acc) hist []
  |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)

let total_quasi_routers t = Net.node_count t.net

let pp_summary ppf t =
  Format.fprintf ppf "model: %a; graph: %a; %d prefixes" Net.pp_summary t.net
    Topology.Asgraph.pp_stats t.graph
    (List.length t.prefixes)
