(** What-if studies on an AS-routing model.

    The paper's motivation (§1) is answering questions like "what if a
    certain peering link was removed".  With a refined model this
    becomes: disable the link, re-simulate, and diff the selected
    routes. *)

open Bgp

type snapshot
(** Selected AS-level paths of every AS for every model prefix. *)

val snapshot :
  ?prefixes:Prefix.t list ->
  ?on_prefix:(int -> int -> unit) ->
  Qrmodel.t ->
  snapshot
(** Simulate the given prefixes (default: all model prefixes) and record
    each AS's set of selected full paths. *)

val of_states :
  Qrmodel.t -> (Prefix.t * Simulator.Engine.state) list -> snapshot
(** Build a snapshot from already-converged states — the serve layer's
    path: it caches per-prefix states and must not re-simulate. *)

val disable_as_link :
  ?prefixes:Prefix.t list -> Qrmodel.t -> Asn.t -> Asn.t -> int
(** Stop all route exchange between two ASes by denying every prefix in
    [prefixes] (default: every model prefix — pass the served set when
    it differs, e.g. a churned snapshot's) on every session between
    their quasi-routers, in both directions.  Returns the number of
    half-sessions touched; [0] means the ASes share no session.
    Sessions are kept, and the set of denies that pre-existed on those
    half-sessions (e.g. refiner-placed filters) is recorded, so the
    change can be reverted exactly with {!enable_as_link}. *)

val enable_as_link :
  ?prefixes:Prefix.t list -> Qrmodel.t -> Asn.t -> Asn.t -> int
(** Revert a {!disable_as_link} (pass the same [prefixes]): remove the
    per-prefix denies it added on sessions between the two ASes while
    keeping any deny that pre-existed (refiner-placed filters survive
    the round trip).  Without a matching [disable_as_link] record —
    e.g. across a process restart — falls back to clearing every deny
    on those sessions.  Returns the number of half-sessions touched. *)

type change = {
  prefix : Prefix.t;
  ases_changed : Asn.t list;  (** ASes whose selected path set changed *)
  ases_lost : Asn.t list;  (** ASes that lost all routes to the prefix *)
}

type diff = {
  changes : change list;  (** prefixes with any change, sorted *)
  prefixes_affected : int;
  ases_affected : int;  (** distinct ASes changed over all prefixes *)
}

val diff : snapshot -> snapshot -> diff
(** Compare two snapshots, joined by prefix (a full outer join — the
    prefix sets need not match: churn adds and drops prefixes between
    snapshots).  A prefix only in the first snapshot reads as every AS
    losing its routes; one only in the second as every AS gaining
    them. *)

val pp_diff : Format.formatter -> diff -> unit
