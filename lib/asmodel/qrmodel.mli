(** The AS-routing model: ASes made of quasi-routers (paper §4.1, §4.5).

    A quasi-router represents a group of routers inside an AS that all
    make the same best-route choice; it does not mirror the physical
    router topology but the logical partitioning of the AS's policy
    rules.  The model is a {!Simulator.Net.t} plus the metadata the
    methodology needs: the AS graph it realizes and the one-prefix-per-AS
    origination plan.

    The initial model has exactly one quasi-router per AS and one eBGP
    session per AS-graph edge, no policies, and quasi-router addresses
    following the paper's scheme (high 16 bits: ASN; low bits: index) so
    the final decision-process tie-break is reproducible. *)

open Bgp

type t = {
  net : Simulator.Net.t;
  graph : Topology.Asgraph.t;
  prefixes : (Prefix.t * Asn.t) list;  (** model prefix and its origin AS *)
}

val initial : Topology.Asgraph.t -> t
(** One quasi-router per AS; one session per edge; no policies;
    decision process = {!Simulator.Decision.model_steps}; prefix per AS
    via {!Bgp.Asn.origin_prefix}. *)

val origin_of : t -> Prefix.t -> Asn.t option

val originators : t -> Prefix.t -> int list
(** All quasi-routers of the prefix's origin AS ([]: unknown prefix). *)

val simulate :
  ?max_events:int ->
  ?from:Simulator.Engine.state ->
  t ->
  Prefix.t ->
  Simulator.Engine.state
(** Converged propagation of one model prefix —
    {!Simulator.Engine.simulate} with the model's originators.  [from]
    warm-starts from a resumable previous state of the same prefix
    (cold fallback otherwise). *)

val quasi_router_count : t -> Asn.t -> int

val quasi_router_histogram : t -> (int * int) list
(** [(k, n)]: [n] ASes have [k] quasi-routers; sorted by [k]. *)

val total_quasi_routers : t -> int

val pp_summary : Format.formatter -> t -> unit
