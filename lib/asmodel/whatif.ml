open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine

type snapshot = (Prefix.t * (Asn.t * int array list) list) list

let snapshot ?prefixes ?on_prefix (model : Qrmodel.t) =
  let prefixes =
    match prefixes with
    | Some ps -> ps
    | None -> List.map fst model.Qrmodel.prefixes
  in
  let ases = Topology.Asgraph.nodes model.Qrmodel.graph in
  let total = List.length prefixes in
  List.mapi
    (fun i p ->
      let st = Qrmodel.simulate model p in
      let per_as =
        List.filter_map
          (fun asn ->
            match Engine.selected_paths model.Qrmodel.net st asn with
            | [] -> None
            | paths -> Some (asn, paths))
          ases
      in
      (match on_prefix with Some f -> f (i + 1) total | None -> ());
      (p, per_as))
    prefixes

let of_states (model : Qrmodel.t) states =
  let ases = Topology.Asgraph.nodes model.Qrmodel.graph in
  List.map
    (fun (p, st) ->
      let per_as =
        List.filter_map
          (fun asn ->
            match Engine.selected_paths model.Qrmodel.net st asn with
            | [] -> None
            | paths -> Some (asn, paths))
          ases
      in
      (p, per_as))
    states

let sessions_between (model : Qrmodel.t) a b =
  let net = model.Qrmodel.net in
  List.concat_map
    (fun n ->
      List.filter_map
        (fun (s, peer) ->
          if Net.asn_of net peer = b then Some (n, s) else None)
        (Net.sessions_of net n))
    (Net.nodes_of_as net a)

(* Save/restore registry for link what-ifs.

   [disable_as_link] denies every model prefix on every half-session
   between the two ASes — including half-sessions that already carried
   refiner-placed denies.  To make [enable_as_link] an exact inverse we
   record, per (net, AS pair), which (node, session, prefix) denies
   pre-existed at disable time; enable then removes only the denies the
   what-if added.  Keyed by physical net identity so concurrent what-ifs
   on distinct models never interfere; guarded by a mutex because the
   serve layer may run what-ifs from a dedicated executor thread. *)

type saved_denies = {
  sd_net : Net.t;
  sd_pair : Asn.t * Asn.t;  (* normalized: min, max *)
  sd_pre : (int * int * Prefix.t) list;
      (* denies that existed before [disable_as_link] *)
}

let saved : saved_denies list ref = ref []

let saved_mu = Mutex.create ()

let norm_pair a b = if Asn.compare a b <= 0 then (a, b) else (b, a)

let disable_as_link ?prefixes (model : Qrmodel.t) a b =
  let net = model.Qrmodel.net in
  let prefixes =
    match prefixes with
    | Some ps -> ps
    | None -> List.map fst model.Qrmodel.prefixes
  in
  let halves = sessions_between model a b @ sessions_between model b a in
  if halves <> [] then begin
    let pre =
      List.concat_map
        (fun (n, s) ->
          List.filter_map
            (fun p ->
              if Net.export_denied net n s p then Some (n, s, p) else None)
            prefixes)
        halves
    in
    let pair = norm_pair a b in
    Mutex.lock saved_mu;
    (* Keep the earliest record: on a repeated disable the current denies
       include our own, which must not masquerade as pre-existing. *)
    if not (List.exists (fun e -> e.sd_net == net && e.sd_pair = pair) !saved)
    then saved := { sd_net = net; sd_pair = pair; sd_pre = pre } :: !saved;
    Mutex.unlock saved_mu
  end;
  List.iter
    (fun (n, s) -> List.iter (fun p -> Net.deny_export net n s p) prefixes)
    halves;
  List.length halves

let enable_as_link ?prefixes (model : Qrmodel.t) a b =
  let net = model.Qrmodel.net in
  let prefixes =
    match prefixes with
    | Some ps -> ps
    | None -> List.map fst model.Qrmodel.prefixes
  in
  let halves = sessions_between model a b @ sessions_between model b a in
  let pair = norm_pair a b in
  let entry =
    Mutex.lock saved_mu;
    let e = List.find_opt (fun e -> e.sd_net == net && e.sd_pair = pair) !saved in
    saved := List.filter (fun e -> not (e.sd_net == net && e.sd_pair = pair)) !saved;
    Mutex.unlock saved_mu;
    e
  in
  let keep n s p =
    match entry with
    | None -> false (* no record: legacy behavior, clear everything *)
    | Some e -> List.exists (fun (n', s', p') ->
        n = n' && s = s' && Prefix.equal p p') e.sd_pre
  in
  List.iter
    (fun (n, s) ->
      List.iter
        (fun p -> if not (keep n s p) then Net.allow_export net n s p)
        prefixes)
    halves;
  List.length halves

type change = {
  prefix : Prefix.t;
  ases_changed : Asn.t list;
  ases_lost : Asn.t list;
}

type diff = {
  changes : change list;
  prefixes_affected : int;
  ases_affected : int;
}

let diff_prefix p per_as_before per_as_after =
  let before_tbl = Hashtbl.create 64 in
  List.iter (fun (a, paths) -> Hashtbl.replace before_tbl a paths)
    per_as_before;
  let after_tbl = Hashtbl.create 64 in
  List.iter (fun (a, paths) -> Hashtbl.replace after_tbl a paths)
    per_as_after;
  let all_ases =
    List.sort_uniq Asn.compare
      (List.map fst per_as_before @ List.map fst per_as_after)
  in
  let changed, lost =
    List.fold_left
      (fun (changed, lost) a ->
        let b = Hashtbl.find_opt before_tbl a in
        let f = Hashtbl.find_opt after_tbl a in
        match (b, f) with
        | Some _, None -> (a :: changed, a :: lost)
        | Some pb, Some pf when pb <> pf -> (a :: changed, lost)
        | None, Some _ -> (a :: changed, lost)
        | Some _, Some _ | None, None -> (changed, lost))
      ([], []) all_ases
  in
  if changed = [] then None
  else
    Some
      { prefix = p; ases_changed = List.rev changed; ases_lost = List.rev lost }

let diff before after =
  (* Joined by prefix key, as a full outer join: churn can add
     (announce / hijack) or drop (quarantine) prefixes between two
     snapshots, so the lists need not align positionally or even cover
     the same set.  A prefix only in [before] reads as every AS losing
     it; one only in [after] as every AS gaining it. *)
  let after_tbl = Prefix.Table.create (max 16 (List.length after)) in
  List.iter (fun (p, per_as) -> Prefix.Table.replace after_tbl p per_as) after;
  let before_set = Prefix.Table.create (max 16 (List.length before)) in
  List.iter (fun (p, _) -> Prefix.Table.replace before_set p ()) before;
  let changes =
    List.filter_map
      (fun (p, per_as_before) ->
        let per_as_after =
          Option.value ~default:[] (Prefix.Table.find_opt after_tbl p)
        in
        diff_prefix p per_as_before per_as_after)
      before
    @ List.filter_map
        (fun (p, per_as_after) ->
          if Prefix.Table.mem before_set p then None
          else diff_prefix p [] per_as_after)
        after
  in
  let ases_affected =
    List.fold_left
      (fun acc c -> Asn.Set.union acc (Asn.Set.of_list c.ases_changed))
      Asn.Set.empty changes
    |> Asn.Set.cardinal
  in
  { changes; prefixes_affected = List.length changes; ases_affected }

let pp_diff ppf d =
  Format.fprintf ppf "prefixes affected: %d, distinct ASes affected: %d@."
    d.prefixes_affected d.ases_affected;
  List.iteri
    (fun i c ->
      if i < 20 then
        Format.fprintf ppf "  %a: %d ASes changed, %d lost all routes@."
          Prefix.pp c.prefix
          (List.length c.ases_changed)
          (List.length c.ases_lost))
    d.changes;
  if List.length d.changes > 20 then
    Format.fprintf ppf "  ... (%d more prefixes)@."
      (List.length d.changes - 20)
