module Net = Simulator.Net

type delta = { added : int; removed : int }

let net_delta d = d.added - d.removed

type outcome = {
  result : Refiner.result;
  new_quasi_routers : int;
  filters : delta;
  med_rules : delta;
}

(* Deltas are computed from rule-set snapshots, not counter
   differences: the refiner both adds and deletes rules (filter
   deletion is a first-class move, Figure 7), and a net count of the
   two directions can go negative — or hide churn entirely. *)
let deny_rules net = Net.fold_export_denies net (fun n s p acc -> (n, s, p) :: acc) []

let med_rules net =
  Net.fold_import_meds net (fun n s p _v acc -> (n, s, p) :: acc) []

let delta ~before ~after =
  let index l =
    let tbl = Hashtbl.create (List.length l + 1) in
    List.iter (fun k -> Hashtbl.replace tbl k ()) l;
    tbl
  in
  let before_tbl = index before and after_tbl = index after in
  {
    added =
      List.length (List.filter (fun k -> not (Hashtbl.mem before_tbl k)) after);
    removed =
      List.length (List.filter (fun k -> not (Hashtbl.mem after_tbl k)) before);
  }

let add_observations ?options (model : Asmodel.Qrmodel.t) data =
  let net = model.Asmodel.Qrmodel.net in
  let nodes_before = Net.node_count net in
  let denies_before = deny_rules net and meds_before = med_rules net in
  let result = Refiner.refine ?options model ~training:data in
  {
    result;
    new_quasi_routers = Net.node_count net - nodes_before;
    filters = delta ~before:denies_before ~after:(deny_rules net);
    med_rules = delta ~before:meds_before ~after:(med_rules net);
  }
