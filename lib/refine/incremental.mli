(** Incremental model extension (paper §4.7).

    "Using the AS-routing model for predictions for other prefixes":
    once a model has been refined, newly observed prefixes can be added
    without retraining from scratch.  Because every policy the refiner
    installs is keyed by prefix, fitting a new prefix's observed paths
    only ever adds rules for that prefix — existing prefixes keep their
    exact matches (quasi-router additions can only widen, never narrow,
    what an AS propagates for other prefixes, since fresh quasi-routers
    replicate existing sessions). *)

open Bgp

type delta = { added : int; removed : int }
(** Signed rule churn: rules present after but not before ([added])
    and vice versa ([removed]) — both non-negative.  A raw count
    difference would conflate the two (and go negative when the
    refiner deletes more filters than it places). *)

val net_delta : delta -> int
(** [added - removed]; may be negative. *)

type outcome = {
  result : Refiner.result;  (** refinement restricted to the new data *)
  new_quasi_routers : int;
  filters : delta;  (** per-prefix export deny rules *)
  med_rules : delta;  (** per-prefix import MED rules *)
}

val add_observations :
  ?options:Refiner.options ->
  Asmodel.Qrmodel.t ->
  Rib.t ->
  outcome
(** [add_observations model data] fits the model to the given (cleaned,
    collapsed) observations, which may concern prefixes the model never
    trained on, and reports what had to grow — and what was deleted.
    The model is extended in place. *)
