(** Match metrics between simulated and observed routing (paper §4.2).

    For an observed AS-path at an AS, the paper grades how well the
    model explains it:

    - {b RIB-Out match}: some quasi-router of the AS selected a route
      with exactly the observed path as its best route;
    - {b potential RIB-Out match}: some quasi-router received it and the
      route survives the decision process until the very last tie-break
      ("lowest neighbour IP") — a mismatch by luck, not by policy;
    - {b RIB-In match}: some quasi-router received it — the upper bound
      on achievable prediction;
    - {b no RIB-In match}: the path never reaches the AS in the model.

    Paths handed to this module are "full" observed paths: element 0 is
    the AS where the observation is evaluated. *)

open Bgp

type verdict = Rib_out | Potential_rib_out | Rib_in | No_rib_in

val verdict_to_string : verdict -> string

val verdict_rank : verdict -> int
(** [0] = {!Rib_out} (best) … [3] = {!No_rib_in}; for aggregation. *)

val tail_of : Aspath.t -> int array
(** The observed path as stored by nodes of its head AS: everything
    after the first element. *)

val nodes_selecting :
  Simulator.Net.t -> Simulator.Engine.state -> Asn.t -> int array -> int list
(** Quasi-routers of the AS whose best route carries exactly this tail
    (empty tail: the originated route). *)

val nodes_selecting_at :
  Simulator.Net.t ->
  Simulator.Engine.state ->
  Asn.t ->
  int array ->
  tail_at:int ->
  int list
(** [nodes_selecting_at net st asn arr ~tail_at] is
    [nodes_selecting net st asn (Array.sub arr tail_at ...)] without
    materializing the suffix — for callers walking every suffix of one
    path. *)

val nodes_receiving :
  Simulator.Net.t -> Simulator.Engine.state -> Asn.t -> int array ->
  (int * int list) list
(** [(node, sessions)] for quasi-routers receiving the tail in their
    RIB-In, with the session indices delivering it. *)

val classify :
  Simulator.Net.t -> Simulator.Engine.state -> Aspath.t -> verdict
(** Grade one observed path against a converged simulation of its
    prefix.  A path whose head AS has no quasi-routers is
    {!No_rib_in}.  A single-hop path (the observing AS originates) is a
    {!Rib_out} match by definition. *)

val eliminated_at :
  Simulator.Net.t ->
  Simulator.Engine.state ->
  Aspath.t ->
  Simulator.Decision.step option
(** For a path that is received but not selected anywhere: the earliest
    decision step (over the AS's quasi-routers, best grade wins) at
    which the observed route dies.  [None] when the path is selected
    somewhere or not received at all. *)
