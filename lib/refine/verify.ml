open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine
module Intern = Simulator.Intern
module Qrmodel = Asmodel.Qrmodel

type mismatch = {
  prefix : Prefix.t;
  path : Aspath.t;
  verdict : Matching.verdict;
  blocking_as : Asn.t option;
}

type report = { checked : int; exact : int; mismatches : mismatch list }

(* The AS closest to the origin whose suffix of [path] is selected by no
   quasi-router: walking from the origin, the first place the model
   diverges from the observation.  The walk probes every suffix of one
   array, so it matches in place instead of slicing a tail per step. *)
let blocking_as net st path =
  let arr = Aspath.to_array path in
  let rec walk i =
    if i < 0 then None
    else if Matching.nodes_selecting_at net st arr.(i) arr ~tail_at:(i + 1) = []
    then Some arr.(i)
    else walk (i - 1)
  in
  walk (Array.length arr - 2)

(* Dedup of observed (prefix, path) pairs, keyed on the interned path:
   within a domain equal paths share one canonical array, so equality
   is (almost always) physical and the hash is the interner's cached
   full-width hash instead of a structural walk of the whole path. *)
module Seen = Hashtbl.Make (struct
  type t = Prefix.t * int array

  let equal (p1, a1) (p2, a2) = (a1 == a2 || a1 = a2) && Prefix.equal p1 p2

  let hash (p, a) = (Prefix.hash p * 65599) lxor Intern.path_hash a
end)

let verify model ~states data =
  let net = model.Qrmodel.net in
  let state_of p =
    match Hashtbl.find_opt states p with
    | Some st -> Some st
    | None -> (
        match Qrmodel.origin_of model p with
        | None -> None
        | Some _ ->
            let st = Qrmodel.simulate model p in
            Hashtbl.replace states p st;
            Some st)
  in
  let checked = ref 0 and exact = ref 0 in
  let mismatches = ref [] in
  let seen = Seen.create 1024 in
  List.iter
    (fun (e : Rib.entry) ->
      let key = (e.Rib.prefix, Intern.path (Aspath.to_array e.Rib.path)) in
      if not (Seen.mem seen key) then begin
        Seen.add seen key ();
        match state_of e.Rib.prefix with
        | None ->
            incr checked;
            mismatches :=
              {
                prefix = e.Rib.prefix;
                path = e.Rib.path;
                verdict = Matching.No_rib_in;
                blocking_as = Aspath.origin e.Rib.path;
              }
              :: !mismatches
        | Some st -> (
            incr checked;
            match Matching.classify net st e.Rib.path with
            | Matching.Rib_out -> incr exact
            | verdict ->
                mismatches :=
                  {
                    prefix = e.Rib.prefix;
                    path = e.Rib.path;
                    verdict;
                    blocking_as = blocking_as net st e.Rib.path;
                  }
                  :: !mismatches)
      end)
    (Rib.entries data);
  let mismatches =
    List.sort
      (fun a b ->
        let c =
          Stdlib.compare
            (Matching.verdict_rank b.verdict)
            (Matching.verdict_rank a.verdict)
        in
        if c <> 0 then c else Prefix.compare a.prefix b.prefix)
      !mismatches
  in
  { checked = !checked; exact = !exact; mismatches }

let is_exact r = r.exact = r.checked

let pp ppf r =
  Format.fprintf ppf "verified %d distinct (prefix, path) pairs: %d exact, %d mismatches@."
    r.checked r.exact
    (List.length r.mismatches);
  List.iteri
    (fun i m ->
      if i < 20 then
        Format.fprintf ppf "  %a %a: %s%s@." Prefix.pp m.prefix Aspath.pp
          m.path
          (Matching.verdict_to_string m.verdict)
          (match m.blocking_as with
          | Some a -> Printf.sprintf " (diverges at AS%d)" a
          | None -> ""))
    r.mismatches;
  if List.length r.mismatches > 20 then
    Format.fprintf ppf "  ... (%d more)@." (List.length r.mismatches - 20)
