open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine
module Qrmodel = Asmodel.Qrmodel

type stats = {
  nodes_before : int;
  nodes_after : int;
  sessions_before : int;
  sessions_after : int;
}

(* Behavioural signature of a node: its selected AS-level path (or
   absence) for every model prefix, in prefix order. *)
let signatures (model : Qrmodel.t) =
  let net = model.Qrmodel.net in
  let n = Net.node_count net in
  let sigs = Array.make n [] in
  List.iter
    (fun (p, _) ->
      let st = Qrmodel.simulate model p in
      for id = 0 to n - 1 do
        let entry =
          match Engine.best st id with
          | Some r -> Some r.Simulator.Rattr.path
          | None -> None
        in
        sigs.(id) <- entry :: sigs.(id)
      done)
    model.Qrmodel.prefixes;
  sigs

let compact (model : Qrmodel.t) =
  let net = model.Qrmodel.net in
  let n = Net.node_count net in
  let sigs = signatures model in
  (* Group nodes by (asn, signature); the first (lowest id, lowest
     address) member represents the group. *)
  let rep = Array.init n (fun i -> i) in
  let groups = Hashtbl.create n in
  for id = 0 to n - 1 do
    let key = (Net.asn_of net id, sigs.(id)) in
    match Hashtbl.find_opt groups key with
    | Some leader -> rep.(id) <- leader
    | None -> Hashtbl.add groups key id
  done;
  (* Fresh net over the representatives, re-indexing quasi-router
     addresses per AS. *)
  let new_net = Net.create () in
  let new_id = Array.make n (-1) in
  let next_index = Hashtbl.create 64 in
  for id = 0 to n - 1 do
    if rep.(id) = id then begin
      let asn = Net.asn_of net id in
      let idx = Option.value ~default:0 (Hashtbl.find_opt next_index asn) in
      Hashtbl.replace next_index asn (idx + 1);
      new_id.(id) <- Net.add_node new_net ~asn ~ip:(Asn.router_ip asn idx)
    end
  done;
  (* Collect old sessions per new unordered pair, then materialize each
     pair once with merged policies: export denies intersect, import
     MED rules take the minimum. *)
  let pair_sessions = Hashtbl.create 1024 in
  for id = 0 to n - 1 do
    List.iter
      (fun (s, peer) ->
        let a = new_id.(rep.(id)) and b = new_id.(rep.(peer)) in
        if a <> b then begin
          let key = if a < b then (a, b) else (b, a) in
          let halves =
            match Hashtbl.find_opt pair_sessions key with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add pair_sessions key l;
                l
          in
          (* Store the half-session oriented low→high. *)
          let oriented = if a < b then (id, s, `Forward) else (id, s, `Backward) in
          halves := oriented :: !halves
        end)
      (Net.sessions_of net id)
  done;
  let merge_direction halves dir new_from new_from_session ~prefixes =
    (* Export denies from this side: a prefix stays denied only if every
       old half-session in this direction denied it. *)
    let this_dir =
      List.filter_map
        (fun (old_node, old_s, d) ->
          if d = dir then Some (old_node, old_s) else None)
        halves
    in
    List.iter
      (fun (p, _) ->
        let all_denied =
          this_dir <> []
          && List.for_all
               (fun (old_node, old_s) -> Net.export_denied net old_node old_s p)
               this_dir
        in
        if all_denied then Net.deny_export new_net new_from new_from_session p;
        (* Import MED at the peer for routes from this side: the
           decision process effectively sees the best (minimum) rank any
           of the old parallel sessions assigned — counting only
           sessions that actually delivered the prefix (not denied at
           the exporter) and ranking rule-less sessions at the default. *)
        let default = Net.default_med net in
        let med =
          List.fold_left
            (fun acc (old_node, old_s) ->
              if Net.export_denied net old_node old_s p then acc
              else
                let peer = Net.session_peer net old_node old_s in
                let rs = Net.session_reverse net old_node old_s in
                let v =
                  match Net.import_med net peer rs p with
                  | Some v -> v
                  | None -> default
                in
                min acc v)
            max_int this_dir
        in
        if med <> max_int && med <> default then begin
          let peer = Net.session_peer new_net new_from new_from_session in
          let rs = Net.session_reverse new_net new_from new_from_session in
          Net.set_import_med new_net peer rs p med
        end)
      prefixes
  in
  Hashtbl.iter
    (fun (a, b) halves ->
      let sa, sb = Net.connect new_net a b in
      merge_direction !halves `Forward a sa ~prefixes:model.Qrmodel.prefixes;
      merge_direction !halves `Backward b sb ~prefixes:model.Qrmodel.prefixes)
    pair_sessions;
  (* The model's decision configuration carries over. *)
  Net.set_decision_steps new_net (Net.decision_steps net);
  Net.set_med_scope new_net (Net.med_scope net);
  Net.set_default_med new_net (Net.default_med net);
  let compacted =
    {
      Qrmodel.net = new_net;
      graph = model.Qrmodel.graph;
      prefixes = model.Qrmodel.prefixes;
    }
  in
  let stats =
    {
      nodes_before = n;
      nodes_after = Net.node_count new_net;
      sessions_before = Net.session_count net / 2;
      sessions_after = Net.session_count new_net / 2;
    }
  in
  (compacted, stats)

let compact_verified model ~against =
  let compacted, stats = compact model in
  let states_before = Hashtbl.create 64 in
  let before = Verify.verify model ~states:states_before against in
  let states_after = Hashtbl.create 64 in
  let after = Verify.verify compacted ~states:states_after against in
  if after.Verify.exact >= before.Verify.exact then Some (compacted, stats)
  else None
