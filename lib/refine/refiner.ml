open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine
module Pool = Simulator.Pool
module Warm = Simulator.Warm
module Qrmodel = Asmodel.Qrmodel

type ranking = Med_ranking | Lpref_ranking

type options = {
  max_iterations : int option;
  max_quasi_routers : int;
  use_med : bool;
  ranking : ranking;
  jobs : int option;
}

let default_options =
  {
    max_iterations = None;
    max_quasi_routers = max_int;
    use_med = true;
    ranking = Med_ranking;
    jobs = None;
  }

type iter_stat = {
  iteration : int;
  matched : int;
  total : int;
  filters_added : int;
  med_rules_added : int;
  duplications : int;
  filter_deletions : int;
  prefixes_changed : int;
  quarantined : int;
  pool : Pool.stats;
}

type result = {
  model : Qrmodel.t;
  iterations : int;
  converged : bool;
  matched : int;
  total : int;
  history : iter_stat list;
  states : (Prefix.t, Engine.state) Hashtbl.t;
  unstable_prefixes : int;
  quarantined_prefixes : int;
  pool : Pool.stats;
}

let compare_suffix a b =
  let c = Stdlib.compare (Array.length a) (Array.length b) in
  if c <> 0 then c else Stdlib.compare a b

let training_suffixes data =
  Prefix.Map.fold
    (fun prefix entries acc ->
      let set =
        List.fold_left
          (fun set e ->
            let arr = Aspath.to_array e.Rib.path in
            let n = Array.length arr in
            let rec add i set =
              if i >= n then set
              else add (i + 1) ((Array.sub arr i (n - i)) :: set)
            in
            add 0 set)
          [] entries
        |> List.sort_uniq compare_suffix
        (* The tail (suffix minus its head AS) is what every matching
           and policy step consumes; slice it once here instead of on
           every iteration of the refinement loop. *)
        |> List.map (fun s -> (s, Array.sub s 1 (Array.length s - 1)))
      in
      (prefix, set) :: acc)
    (Rib.by_prefix data) []
  |> List.rev

(* Mutable per-run counters, threaded through the helpers. *)
type counters = {
  mutable filters : int;
  mutable meds : int;
  mutable dups : int;
  mutable deletions : int;
}

(* Make [receiver] select the route with path [tail] for [prefix].

   With the paper's MED ranking (§4.6): MED 0 on the desired sessions,
   clear MED on rivals, filter strictly shorter rivals at their
   announcers, and make sure the desired announcers are not filtered
   towards [receiver] (undoes stale copied filters on duplicates).

   With LOCAL_PREF ranking (the paper's abandoned first attempt): a
   per-prefix preference on the desired sessions instead; no filters,
   since LOCAL_PREF already beats path length — the very property that
   makes this mode divergence-prone. *)
let apply_policies net counters ~options ~prefix ~receiver ~desired_sessions
    ~rib_entries ~tail =
  let desired s = List.mem s desired_sessions in
  let use_med = options.use_med && options.ranking = Med_ranking in
  let use_lpref = options.use_med && options.ranking = Lpref_ranking in
  List.iter
    (fun s ->
      if use_med then begin
        if Net.import_med net receiver s prefix <> Some 0 then begin
          Net.set_import_med net receiver s prefix 0;
          counters.meds <- counters.meds + 1
        end
      end
      else if use_lpref then begin
        if Net.import_lpref_for net receiver s prefix <> Some 200 then begin
          Net.set_import_lpref_for net receiver s prefix 200;
          counters.meds <- counters.meds + 1
        end
      end;
      let sender = Net.session_peer net receiver s in
      let sender_side = Net.session_reverse net receiver s in
      if Net.export_denied net sender sender_side prefix then begin
        Net.allow_export net sender sender_side prefix;
        counters.deletions <- counters.deletions + 1
      end)
    desired_sessions;
  List.iter
    (fun (s, (r : Simulator.Rattr.t)) ->
      if not (desired s) then begin
        if use_med && Net.import_med net receiver s prefix <> None then
          Net.clear_import_med net receiver s prefix;
        if use_lpref && Net.import_lpref_for net receiver s prefix <> None then
          Net.clear_import_lpref_for net receiver s prefix;
        if
          (not use_lpref)
          && Array.length r.Simulator.Rattr.path < Array.length tail
        then begin
          let sender = Net.session_peer net receiver s in
          let sender_side = Net.session_reverse net receiver s in
          if not (Net.export_denied net sender sender_side prefix) then begin
            Net.deny_export net sender sender_side prefix;
            counters.filters <- counters.filters + 1
          end
        end
      end)
    rib_entries

(* Refinement progress metrics: per-iteration counters plus gauges for
   the two "how close are we" levels a live snapshot should show. *)
let iterations_m = Obs.Metrics.counter "refiner.iterations"

let prefixes_changed_m = Obs.Metrics.counter "refiner.prefixes_changed"

let discrepancies_m = Obs.Metrics.gauge "refiner.discrepancies"

let quarantine_m = Obs.Metrics.gauge "refiner.quarantine"

let refine ?(options = default_options) ?on_iteration model ~training =
  (* Honour RD_CHECK: resolve the mode once (installing the
     mutation-discipline hook when on) and remember the violation
     watermark so the self-check below only reports this run's. *)
  Analysis.Ownership.ensure ();
  let refine_span = Obs.Trace.begin_span "refiner.refine" in
  let violations_before = Analysis.Ownership.violation_count () in
  let races_before = Analysis.Race.race_count () in
  let net = model.Qrmodel.net in
  let work = training_suffixes training in
  let total =
    List.fold_left (fun acc (_, sfx) -> acc + List.length sfx) 0 work
  in
  let max_len =
    List.fold_left
      (fun acc (_, sfx) ->
        List.fold_left (fun acc (s, _) -> max acc (Array.length s)) acc sfx)
      1 work
  in
  let max_iterations =
    match options.max_iterations with
    | Some n -> n
    | None -> (6 * max_len) + 4
  in
  let states : (Prefix.t, Engine.state) Hashtbl.t =
    Hashtbl.create (List.length work)
  in
  let dirty : (Prefix.t, unit) Hashtbl.t = Hashtbl.create 64 in
  let jobs = match options.jobs with Some j -> max 1 j | None -> Pool.default_jobs () in
  let warm_mode = Warm.current () in
  let simulate_cold prefix =
    Warm.note_cold ();
    Qrmodel.simulate model prefix
  in
  (* Warm-start closure, run from pool worker domains.  The [states]
     table and the network's touched sets are only read here — all
     writes happen in the sequential phases between pool calls — so the
     concurrent lookups are safe.  A prefix resumes from its previous
     state whenever that state converged at the network's current
     generation ({!Engine.resumable}); the first iteration, quarantined
     prefixes and any round that changed the structure (duplications)
     fall back to a cold run. *)
  let simulate prefix =
    match warm_mode with
    | Warm.Off -> simulate_cold prefix
    | Warm.On -> (
        match Hashtbl.find_opt states prefix with
        | Some prev when Engine.resumable net prev ->
            Warm.note_warm ();
            Qrmodel.simulate model ~from:prev prefix
        | _ -> simulate_cold prefix)
    | Warm.Verify -> (
        match Hashtbl.find_opt states prefix with
        | Some prev when Engine.resumable net prev ->
            Warm.note_warm ();
            let warm = Qrmodel.simulate model ~from:prev prefix in
            let cold = simulate_cold prefix in
            Warm.note_verified ();
            let diverged =
              if Engine.converged cold <> Engine.converged warm then true
              else
                Engine.converged cold && not (Engine.same_state cold warm)
            in
            if diverged then begin
              Warm.note_divergence ();
              Logs.err (fun m ->
                  m
                    "refiner: warm-start divergence on prefix %a (cold %a \
                     fp=%x, warm %a fp=%x)"
                    Prefix.pp prefix Engine.pp_outcome (Engine.outcome cold)
                    (Engine.state_fingerprint cold)
                    Engine.pp_outcome (Engine.outcome warm)
                    (Engine.state_fingerprint warm))
            end;
            (* The cold state is ground truth either way. *)
            cold
        | _ -> simulate_cold prefix)
  in
  (* Phased loop: the set of prefixes needing re-simulation is fixed at
     the top of each iteration (a prefix marked dirty mid-iteration is
     only re-simulated the NEXT iteration), so all of them can be
     simulated in parallel against the frozen network before any policy
     mutation happens.  [state_of] keeps a sequential fallback for
     prefixes simulated outside the batch (defensive; the batch covers
     the whole work list). *)
  let pool_total = ref Pool.zero in
  (* Quarantine: a prefix whose simulation did not converge (budget
     truncation, detected oscillation) or failed outright is withheld
     from policy mutation — mutating against a partial RIB would bake
     wrong filters into the model.  It stays dirty, so every later
     iteration retries it against the then-current network (duplications
     made for other prefixes can unblock it); it leaves quarantine the
     moment a retry converges. *)
  let quarantine : (Prefix.t, unit) Hashtbl.t = Hashtbl.create 8 in
  let presimulate () =
    let missing =
      List.filter_map
        (fun (prefix, _) ->
          match Hashtbl.find_opt states prefix with
          | Some _ when not (Hashtbl.mem dirty prefix) -> None
          | Some _ | None -> Some prefix)
        work
    in
    let pairs, stats = Pool.simulate_result ~jobs ~sim:simulate missing in
    List.iter
      (fun (prefix, r) ->
        (* The new state (or quarantine entry) reflects every policy
           edit recorded so far: drain the touched set so the next warm
           resume replays only future edits. *)
        Net.clear_touched net prefix;
        match r with
        | Ok st when Engine.converged st ->
            Hashtbl.replace states prefix st;
            Hashtbl.remove dirty prefix;
            Hashtbl.remove quarantine prefix
        | Ok st ->
            Hashtbl.replace states prefix st;
            Hashtbl.replace quarantine prefix ();
            Logs.info (fun m ->
                m "refiner: quarantining prefix %a (%a)" Prefix.pp prefix
                  Engine.pp_outcome (Engine.outcome st))
        | Error e ->
            Hashtbl.remove states prefix;
            Hashtbl.replace quarantine prefix ();
            Logs.warn (fun m ->
                m "refiner: quarantining prefix %a (simulation failed: %a)"
                  Prefix.pp prefix Pool.pp_task_error e))
      pairs;
    pool_total := Pool.merge !pool_total stats;
    stats
  in
  let state_of prefix =
    match Hashtbl.find_opt states prefix with
    | Some st when not (Hashtbl.mem dirty prefix) -> st
    | Some _ | None ->
        (* Sequential fallback outside the batch.  Unlike the batch it
           runs in the mutating phase, so it must apply the same
           quarantine bookkeeping: a non-converged state here would
           otherwise feed policy mutation with a partial RIB.  Callers
           re-check the quarantine after calling. *)
        let st = simulate prefix in
        Net.clear_touched net prefix;
        Hashtbl.replace states prefix st;
        Hashtbl.remove dirty prefix;
        if Engine.converged st then Hashtbl.remove quarantine prefix
        else begin
          Hashtbl.replace quarantine prefix ();
          Logs.info (fun m ->
              m "refiner: quarantining prefix %a (%a)" Prefix.pp prefix
                Engine.pp_outcome (Engine.outcome st))
        end;
        st
  in
  let history = ref [] in
  let iteration = ref 0 in
  let finished = ref false in
  while (not !finished) && !iteration < max_iterations do
    incr iteration;
    let iter_span =
      Obs.Trace.begin_span
        ~args:[ ("iteration", string_of_int !iteration) ]
        "refiner.iteration"
    in
    let pool_stats = presimulate () in
    let counters = { filters = 0; meds = 0; dups = 0; deletions = 0 } in
    let matched = ref 0 in
    let prefixes_changed = ref 0 in
    List.iter
      (fun (prefix, suffixes) ->
        if Hashtbl.mem quarantine prefix then ()
        else begin
        let st = state_of prefix in
        (* [state_of]'s fallback may just have quarantined the prefix. *)
        if Hashtbl.mem quarantine prefix then ()
        else begin
        let reserved = Hashtbl.create 8 in
        let reserve n = Hashtbl.replace reserved n () in
        let unreserved n = not (Hashtbl.mem reserved n) in
        let changed = ref false in
        List.iter
          (fun (suffix, tail) ->
            let asn = suffix.(0) in
            if not (Topology.Asgraph.mem_node model.Qrmodel.graph asn) then ()
            else if Array.length tail = 0 then begin
              (* The origin itself: every quasi-router originates. *)
              match Matching.nodes_selecting net st asn [||] with
              | n :: _ ->
                  reserve n;
                  incr matched
              | [] -> ()
            end
            else begin
              match
                List.filter unreserved (Matching.nodes_selecting net st asn tail)
              with
              | n :: _ ->
                  reserve n;
                  incr matched
              | [] -> (
                  let receiving = Matching.nodes_receiving net st asn tail in
                  match List.filter (fun (n, _) -> unreserved n) receiving with
                  | (q, sessions) :: _ ->
                      apply_policies net counters ~options ~prefix ~receiver:q
                        ~desired_sessions:sessions
                        ~rib_entries:(Engine.rib_in st q) ~tail;
                      reserve q;
                      changed := true
                  | [] -> (
                      match receiving with
                      | (q0, sessions0) :: _ ->
                          if
                            Qrmodel.quasi_router_count model asn
                            < options.max_quasi_routers
                          then begin
                            let q2 = Net.duplicate_node net q0 in
                            counters.dups <- counters.dups + 1;
                            (* The duplicate's session i mirrors q0's
                               session i, so q0's RIB-In describes what
                               q2 will receive. *)
                            apply_policies net counters ~options ~prefix
                              ~receiver:q2 ~desired_sessions:sessions0
                              ~rib_entries:(Engine.rib_in st q0) ~tail;
                            reserve q2;
                            changed := true
                          end
                      | [] ->
                          (* No RIB-In anywhere: if the announcing
                             neighbour AS selects its sub-path, delete
                             egress filters blocking the prefix towards
                             this AS (Figure 7); otherwise wait for a
                             later iteration. *)
                          let neighbour = tail.(0) in
                          let sub_tail =
                            Array.sub tail 1 (Array.length tail - 1)
                          in
                          List.iter
                            (fun nb ->
                              List.iter
                                (fun (s, peer) ->
                                  if
                                    Net.asn_of net peer = asn
                                    && Net.export_denied net nb s prefix
                                  then begin
                                    Net.allow_export net nb s prefix;
                                    counters.deletions <-
                                      counters.deletions + 1;
                                    changed := true
                                  end)
                                (Net.sessions_of net nb))
                            (Matching.nodes_selecting net st neighbour
                               sub_tail)))
            end)
          suffixes;
        if !changed then begin
          Hashtbl.replace dirty prefix ();
          incr prefixes_changed
        end
        end
        end)
      work;
    let stat =
      {
        iteration = !iteration;
        matched = !matched;
        total;
        filters_added = counters.filters;
        med_rules_added = counters.meds;
        duplications = counters.dups;
        filter_deletions = counters.deletions;
        prefixes_changed = !prefixes_changed;
        quarantined = Hashtbl.length quarantine;
        pool = pool_stats;
      }
    in
    history := stat :: !history;
    Obs.Metrics.incr iterations_m;
    Obs.Metrics.incr ~by:!prefixes_changed prefixes_changed_m;
    Obs.Metrics.set_gauge discrepancies_m (total - !matched);
    Obs.Metrics.set_gauge quarantine_m (Hashtbl.length quarantine);
    Obs.Trace.end_span
      ~args:
        [
          ("matched", string_of_int !matched);
          ("changed", string_of_int !prefixes_changed);
          ("quarantined", string_of_int (Hashtbl.length quarantine));
        ]
      iter_span;
    (match on_iteration with Some f -> f stat | None -> ());
    if !prefixes_changed = 0 then finished := true
  done;
  (* Final states and final match count over fresh simulations, again
     fanned out over the pool (the network no longer changes). *)
  let unstable = ref 0 in
  let final_quarantined = ref 0 in
  let final_pairs, final_stats =
    Pool.simulate_result ~jobs ~sim:simulate (List.map fst work)
  in
  pool_total := Pool.merge !pool_total final_stats;
  List.iter
    (fun (prefix, r) ->
      Net.clear_touched net prefix;
      match r with
      | Ok st ->
          if not (Engine.converged st) then begin
            incr unstable;
            incr final_quarantined
          end;
          Hashtbl.replace states prefix st;
          Hashtbl.remove dirty prefix
      | Error e ->
          (* No usable state: drop any stale one so downstream consumers
             (prediction, inspection) see the prefix as unresolved
             rather than as a leftover of an earlier network. *)
          incr final_quarantined;
          Hashtbl.remove states prefix;
          Logs.warn (fun m ->
              m "refiner: final simulation of prefix %a failed: %a" Prefix.pp
                prefix Pool.pp_task_error e))
    final_pairs;
  let final_matched = ref 0 in
  List.iter
    (fun (prefix, suffixes) ->
      match Hashtbl.find_opt states prefix with
      | None -> () (* quarantined: its suffixes count as unmatched *)
      | Some st ->
          let reserved = Hashtbl.create 8 in
          List.iter
            (fun (suffix, tail) ->
              let asn = suffix.(0) in
              match
                List.filter
                  (fun n -> not (Hashtbl.mem reserved n))
                  (Matching.nodes_selecting net st asn tail)
              with
              | n :: _ ->
                  Hashtbl.replace reserved n ();
                  incr final_matched
              | [] -> ())
            suffixes)
    work;
  (* Post-refinement self-check (RD_CHECK=on): surface any mutation-
     discipline violations recorded during this run and lint the model
     we just built — a malformed refined model means the run's results
     cannot be trusted, so it is reported loudly (but not raised: the
     checker observes, callers and CI decide). *)
  (match Analysis.Ownership.current () with
  | Analysis.Ownership.Off -> ()
  | Analysis.Ownership.On | Analysis.Ownership.Race ->
      let fresh =
        Analysis.Ownership.violation_count () - violations_before
      in
      if fresh > 0 then
        Logs.err (fun m ->
            m "refiner: %d mutation-discipline violation(s) during refinement"
              fresh);
      let fresh_races = Analysis.Race.race_count () - races_before in
      if fresh_races > 0 then
        Logs.err (fun m ->
            m "refiner: %d data race(s) detected during refinement"
              fresh_races);
      let report = Analysis.Lint.check model in
      if not (Analysis.Report.is_clean report) then
        Logs.err (fun m ->
            m "refiner: refined model fails lint:@.%a" Analysis.Report.pp
              report));
  Obs.Metrics.set_gauge discrepancies_m (total - !final_matched);
  Obs.Metrics.set_gauge quarantine_m !final_quarantined;
  Obs.Trace.end_span
    ~args:
      [
        ("iterations", string_of_int !iteration);
        ("matched", string_of_int !final_matched);
        ("total", string_of_int total);
      ]
    refine_span;
  {
    model;
    iterations = !iteration;
    converged = !final_matched = total;
    matched = !final_matched;
    total;
    history = List.rev !history;
    states;
    unstable_prefixes = !unstable;
    quarantined_prefixes = !final_quarantined;
    pool = !pool_total;
  }
