open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine
module Decision = Simulator.Decision

type verdict = Rib_out | Potential_rib_out | Rib_in | No_rib_in

let verdict_to_string = function
  | Rib_out -> "RIB-Out match"
  | Potential_rib_out -> "potential RIB-Out match"
  | Rib_in -> "RIB-In match"
  | No_rib_in -> "no RIB-In match"

let verdict_rank = function
  | Rib_out -> 0
  | Potential_rib_out -> 1
  | Rib_in -> 2
  | No_rib_in -> 3

let tail_of path =
  let arr = Aspath.to_array path in
  Array.sub arr 1 (Array.length arr - 1)

let nodes_selecting net st asn tail =
  List.filter
    (fun n ->
      match Engine.best st n with
      | Some r -> Simulator.Rattr.same_path r.Simulator.Rattr.path tail
      | None -> false)
    (Net.nodes_of_as net asn)

(* Compare a best path against the suffix [arr.(off) ..] in place: the
   suffix walk of [Verify.blocking_as] probes every position of a path,
   and slicing the tail out per position would cost O(n²) allocation. *)
let path_matches_at (p : int array) arr ~off =
  let n = Array.length arr - off in
  Array.length p = n
  &&
  let rec go i = i >= n || (p.(i) = arr.(off + i) && go (i + 1)) in
  go 0

let nodes_selecting_at net st asn arr ~tail_at =
  List.filter
    (fun n ->
      match Engine.best st n with
      | Some r -> path_matches_at r.Simulator.Rattr.path arr ~off:tail_at
      | None -> false)
    (Net.nodes_of_as net asn)

let nodes_receiving net st asn tail =
  List.filter_map
    (fun n ->
      let sessions =
        List.filter_map
          (fun (s, r) ->
            if Simulator.Rattr.same_path r.Simulator.Rattr.path tail then Some s
            else None)
          (Engine.rib_in st n)
      in
      (* The originated route counts as "received" only through RIB-In
         semantics when some session carries it; origination itself is
         handled by the callers via empty tails. *)
      if sessions = [] then None else Some (n, sessions))
    (Net.nodes_of_as net asn)

let best_elimination net st asn tail =
  let steps = Net.decision_steps net in
  let med_scope = Net.med_scope net in
  (* Step positions (later = closer to selection, hence a better grade
     for the observed route) and the final step are fixed for the whole
     fold: compute them once instead of rescanning the step list for
     every candidate node. *)
  let positions = List.mapi (fun i s -> (s, i)) steps in
  let position s =
    match List.assoc_opt s positions with Some i -> i | None -> -1
  in
  let last_pos = List.length steps - 1 in
  let last_step = lazy (List.nth steps last_pos) in
  let target (r : Simulator.Rattr.t) =
    Simulator.Rattr.same_path r.Simulator.Rattr.path tail
  in
  List.fold_left
    (fun acc n ->
      (* Most nodes never held the observed route at all: screen with
         the allocation-free candidate fold and only materialize the
         candidate list for the nodes classify has to grade. *)
      let present =
        Engine.fold_candidates st net n ~init:false ~f:(fun acc r ->
            acc || target r)
      in
      let verdict =
        if not present then Decision.Not_present
        else
          Decision.classify ~med_scope steps ~target
            (Engine.candidates st net n)
      in
      match (verdict, acc) with
      | Decision.Selected, _ -> `Selected
      | _, `Selected -> `Selected
      | Decision.Eliminated_at step, `Eliminated best ->
          if position step > position best then `Eliminated step
          else `Eliminated best
      | Decision.Eliminated_at step, `None -> `Eliminated step
      | Decision.Tied_not_chosen, `Eliminated best ->
          (* Losing an in-order tie is as close as losing the last
             step. *)
          if position best < last_pos then `Eliminated (Lazy.force last_step)
          else `Eliminated best
      | Decision.Tied_not_chosen, `None -> `Eliminated (Lazy.force last_step)
      | Decision.Not_present, acc -> acc)
    `None (Net.nodes_of_as net asn)

let classify net st path =
  let arr = Aspath.to_array path in
  match Array.length arr with
  | 0 -> No_rib_in
  | 1 ->
      (* The observing AS originates the prefix: matched by
         definition. *)
      if nodes_selecting net st arr.(0) [||] <> [] then Rib_out else No_rib_in
  | _ -> (
      let asn = arr.(0) in
      let tail = Array.sub arr 1 (Array.length arr - 1) in
      if nodes_selecting net st asn tail <> [] then Rib_out
      else
        match best_elimination net st asn tail with
        | `Selected -> Rib_out
        | `Eliminated Decision.Lowest_ip -> Potential_rib_out
        | `Eliminated _ -> Rib_in
        | `None -> No_rib_in)

let eliminated_at net st path =
  let arr = Aspath.to_array path in
  if Array.length arr < 2 then None
  else
    let asn = arr.(0) in
    let tail = Array.sub arr 1 (Array.length arr - 1) in
    match best_elimination net st asn tail with
    | `Eliminated step -> Some step
    | `Selected | `None -> None
