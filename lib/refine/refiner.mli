(** Iterative refinement of the AS-routing model (paper §4.3–4.6).

    Starting from the one-quasi-router-per-AS initial model, each
    iteration compares the simulated routing with every observed AS-path
    of the training set, walking each path from its origin towards its
    observation point, and at the first AS with a discrepancy applies
    the paper's actions:

    - a quasi-router that already selects the wanted (suffix) route is
      {e reserved} for it (lowest id first, one observed path per
      quasi-router per prefix);
    - a quasi-router that merely {e receives} it gets policies: the
      desired session is ranked up with a per-prefix MED 0 rule, and
      announcing neighbours of strictly shorter candidate routes get
      per-prefix egress filters (same-length rivals are left alone —
      MED settles them — to preserve diversity, §4.6);
    - when every receiving quasi-router is already reserved, one is
      {e duplicated} (same sessions, same policies on both sides) and
      the copy is policied instead;
    - when the wanted route reaches no quasi-router at all but the
      announcing neighbour AS selects its sub-path, any egress filter
      blocking the prefix on sessions towards this AS is {e deleted}
      (§4.6 "filter deletion", Figure 7).

    Prefixes whose model changed are re-simulated and the cycle repeats
    until every observed path is a RIB-Out match or the iteration cap is
    reached (the paper reaches perfect training matches after a small
    multiple of the maximum AS-path length). *)

open Bgp

type ranking =
  | Med_ranking
      (** the paper's choice (§4.6): per-prefix MED 0 on the desired
          session plus egress filters against strictly shorter rivals;
          provably convergent. *)
  | Lpref_ranking
      (** the mechanism the paper tried FIRST and abandoned: per-prefix
          LOCAL_PREF on the desired session.  Because LOCAL_PREF beats
          path length, no filters are needed — but preferring longer
          paths this way creates dispute wheels and the simulations can
          diverge, the §4.6 negative result this option reproduces. *)

type options = {
  max_iterations : int option;
      (** default: [6 * max observed path length + 4]. *)
  max_quasi_routers : int;
      (** per-AS cap on quasi-routers; [1] disables duplication (the
          single-router ablation).  Default: unlimited. *)
  use_med : bool;
      (** when false, no ranking rules are added (filters only) — the
          ranking ablation.  Default: true. *)
  ranking : ranking;  (** default {!Med_ranking}. *)
  jobs : int option;
      (** worker count for the parallel simulation phases; default
          {!Simulator.Pool.default_jobs} ([RD_JOBS] / domain count).
          Results are bit-identical for every value. *)
}

val default_options : options

type iter_stat = {
  iteration : int;  (** 1-based. *)
  matched : int;  (** suffixes RIB-Out-matched at iteration start. *)
  total : int;  (** suffixes to match (constant across iterations). *)
  filters_added : int;
  med_rules_added : int;
  duplications : int;
  filter_deletions : int;
  prefixes_changed : int;
  quarantined : int;
      (** prefixes in quarantine at this iteration: their simulation was
          {!Simulator.Engine.Truncated}, [Diverged] or failed outright,
          so they were withheld from policy mutation (mutating against a
          partial RIB would bake wrong filters in).  Quarantined
          prefixes stay dirty and are retried every later iteration;
          a converging retry lifts the quarantine. *)
  pool : Simulator.Pool.stats;
      (** the iteration's pre-simulation batch: prefixes re-simulated,
          engine events, budget-truncated states, wall time. *)
}

type result = {
  model : Asmodel.Qrmodel.t;  (** the refined model (mutated in place). *)
  iterations : int;
  converged : bool;  (** every training suffix is a RIB-Out match. *)
  matched : int;
  total : int;
  history : iter_stat list;  (** chronological. *)
  states : (Prefix.t, Simulator.Engine.state) Hashtbl.t;
      (** final simulation per training prefix (fresh states for every
          prefix, including unchanged ones).  Prefixes whose final
          simulation failed persistently have {e no} entry — consumers
          must treat a missing state as unresolved, not raise. *)
  unstable_prefixes : int;
      (** prefixes whose final simulation was truncated or diverged
          instead of converging — always [0] with {!Med_ranking},
          possibly positive with {!Lpref_ranking} (the §4.6
          divergence). *)
  quarantined_prefixes : int;
      (** prefixes without a usable converged final state: the
          [unstable_prefixes] plus those whose simulation failed even
          after the pool's retry.  Their training suffixes count as
          unmatched. *)
  pool : Simulator.Pool.stats;
      (** cumulative simulation statistics over the whole refinement:
          every per-iteration pre-simulation batch plus the final
          re-simulation pass. *)
}

val refine :
  ?options:options ->
  ?on_iteration:(iter_stat -> unit) ->
  Asmodel.Qrmodel.t ->
  training:Rib.t ->
  result
(** Refine the model against the training data.  The training data must
    already be in model form: one prefix per AS
    ({!Bgp.Rib.collapse_to_origin}) over the model's AS graph (stub
    reduction applied, {!Topology.Extract.reduce}).  Paths containing
    ASes outside the model graph are skipped and counted as unmatched. *)

val training_suffixes : Rib.t -> (Prefix.t * (int array * int array) list) list
(** The work list the refiner matches: for each prefix, every distinct
    suffix of every observed path paired with its tail (the suffix
    minus its leading AS — precomputed because every matching and
    policy step consumes it), sorted shortest (closest to the origin)
    first.  Exposed for inspection and tests. *)
