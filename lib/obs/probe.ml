(* Happens-before instrumentation points.

   The simulator, serve and stream layers publish their concurrency
   structure through this hook: shared-object accesses (net structure,
   policy tables, CSR publish, engine state slabs, replay journals) and
   synchronization edges (Pool worker spawn/join, the Snapshot
   executor hand-off) as release/acquire on named channels.  The
   analysis layer sits above all of them, so the race detector
   (Analysis.Race, the RD_CHECK=race mode) installs itself here — the
   same one-load-and-branch pattern as Net's mutation hook, chosen so
   the publishing layers never depend on the analysis library.

   With no hook installed (RD_CHECK=off|on, the default) every probe
   is one atomic load and a branch; call sites that must build an
   object or channel name guard the formatting behind {!enabled}. *)

type kind = Read | Write

type hook = {
  h_access : string -> string -> kind -> unit;  (* obj, site *)
  h_release : string -> unit;  (* channel *)
  h_acquire : string -> unit;  (* channel *)
}

let hook : hook option Atomic.t = Atomic.make None

let set_hook h = Atomic.set hook h

let enabled () = Atomic.get hook <> None

let access ~obj ~site kind =
  match Atomic.get hook with None -> () | Some h -> h.h_access obj site kind

let read ~obj ~site = access ~obj ~site Read

let write ~obj ~site = access ~obj ~site Write

let release ~chan =
  match Atomic.get hook with None -> () | Some h -> h.h_release chan

let acquire ~chan =
  match Atomic.get hook with None -> () | Some h -> h.h_acquire chan
