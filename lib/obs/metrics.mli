(** Process-wide metrics registry: atomic counters, gauges and
    fixed-bucket histograms, registered once by stable dotted name
    (e.g. ["engine.events_drained"]).

    Metrics are always on: every operation on a registered handle is a
    single [Atomic] read-modify-write, safe from any domain, so the hot
    layers update them unconditionally (at run/batch granularity — never
    per event).  Registration is idempotent: registering an existing
    name of the same kind returns the {e same} metric, so independent
    modules can share a series; re-registering under a different kind
    (or different histogram buckets) raises [Invalid_argument] — the
    name is the contract.

    {!snapshot} is the read side: the CLI ([asmodel build --metrics]),
    the bench harness (the [OBS] section of [BENCH.json]) and the tests
    all consume the same listing. *)

type counter

type gauge

type histogram

val counter : string -> counter
(** Register (or fetch) the counter [name].  Counters only go up. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1, must be [>= 0]) to the counter. *)

val counter_value : counter -> int

val gauge : string -> gauge
(** Register (or fetch) the gauge [name].  Gauges are set to the latest
    observed level (quarantine size, unmatched count, ...). *)

val set_gauge : gauge -> int -> unit

val gauge_value : gauge -> int

val histogram : ?buckets:int list -> string -> histogram
(** Register (or fetch) the histogram [name].  [buckets] are inclusive
    upper bounds, strictly increasing; an implicit overflow bucket
    catches everything above the last bound.  Defaults to
    {!default_duration_buckets} (microsecond-scaled powers of four). *)

val observe : histogram -> int -> unit
(** Record one sample (negative samples clamp to 0). *)

val histogram_count : histogram -> int
(** Total samples observed. *)

val histogram_sum : histogram -> int
(** Sum of all observed samples. *)

val default_duration_buckets : int list

(** {2 Snapshots} *)

type value =
  | Counter of int
  | Gauge of int
  | Histogram of { buckets : (int * int) list; sum : int; count : int }
      (** [buckets] pairs each upper bound with its sample count; the
          overflow bucket carries bound [max_int]. *)

val snapshot : unit -> (string * value) list
(** Every registered metric with its current value, sorted by name. *)

val value : string -> value option
(** Current value of one metric, if registered. *)

val find_counter : string -> int
(** Convenience: the counter's value, or 0 when [name] is not a
    registered counter.  For tests and report glue. *)

val reset : unit -> unit
(** Zero every registered metric (registrations and handles survive);
    for benches and tests that measure deltas of a whole run. *)

val record_gc : unit -> unit
(** Refresh the [gc.*] gauges from [Gc.quick_stat]: [gc.minor_words],
    [gc.promoted_words], [gc.major_words] (allocation totals, in
    words), [gc.minor_collections], [gc.major_collections],
    [gc.compactions], [gc.heap_words] and [gc.top_heap_words].  Called
    by the bench harness and report paths at section boundaries so GC
    pressure lands in the same snapshot as the throughput counters;
    cheap ([Gc.quick_stat], no heap walk) but not per-event. *)

val pp_snapshot : Format.formatter -> (string * value) list -> unit

val to_json : (string * value) list -> string
(** The snapshot as one JSON object: counters and gauges as numbers,
    histograms as [{"count":..,"sum":..,"buckets":[[le,n],..]}] (the
    overflow bound rendered as the string ["+inf"]). *)
