(** Span-based tracing (the [RD_TRACE] knob).

    Spans mark wall-clock intervals of interesting work — an engine
    run, a pool slot, a refiner iteration — tagged with the recording
    domain id and free-form labels.  Three modes:

    - [Off] (default): recording is one atomic load and a branch; no
      event is allocated.
    - [Summary]: events are buffered and {!flush} prints a per-name
      aggregate table (count, total, mean, max).
    - [File path]: events are buffered and {!flush} writes them as
      Chrome trace-event JSON ([{"traceEvents": [...]}]) loadable by
      [chrome://tracing] / Perfetto; domain ids become [tid]s, so the
      pool's fan-out is visible as parallel tracks.

    The mode is process-wide and set by {!Simulator.Runtime} (which
    owns the [RD_TRACE] environment knob) or directly with
    {!set_mode}.  Event buffers are per-domain ([Domain.DLS], no locks
    on the record path) and registered globally, so {!flush} sees
    events from worker domains that have already terminated.  The
    buffer is bounded ({!dropped} counts what the cap discarded — a
    drop is reported, never silent). *)

type mode = Off | Summary | File of string

val parse : string -> (mode, string) result
(** [off]/[0] and [summary] are keywords; anything else is a file path
    (by convention ending in [.json]). *)

val mode_to_string : mode -> string

val set_mode : mode -> unit

val mode : unit -> mode

val enabled : unit -> bool
(** True when recording ([Summary] or [File]); the hot-path gate. *)

val now_us : unit -> int
(** Microseconds since process start — the trace clock.  Also usable
    as a cheap wall-clock for callers that measure intervals whether or
    not tracing is on (the pool's slot timing). *)

type span

val begin_span : ?args:(string * string) list -> string -> span

val end_span : ?args:(string * string) list -> span -> unit
(** Close the span and record it (end-side [args] are appended to the
    begin-side ones).  A no-op when tracing was off at [begin_span]. *)

val with_span : ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; the span is recorded even when the
    thunk raises. *)

val emit :
  ?args:(string * string) list ->
  ?tid:int ->
  name:string ->
  ts_us:int ->
  dur_us:int ->
  unit ->
  unit
(** Record a pre-measured complete event — for callers that already
    time their work (pool slots).  [tid] defaults to the calling
    domain. *)

val instant : ?args:(string * string) list -> string -> unit
(** Record a zero-duration marker (budget escalation, divergence). *)

(** {2 Reading the buffer} *)

val event_count : unit -> int

val dropped : unit -> int
(** Events discarded because the buffer cap was reached. *)

type summary_row = {
  name : string;
  count : int;
  total_us : int;
  max_us : int;
}

val summary : unit -> summary_row list
(** Per-name aggregates of the buffered complete events, sorted by
    total time descending. *)

val write_file : string -> unit
(** Write the buffered events as Chrome trace-event JSON. *)

val flush : Format.formatter -> unit
(** Finish a run: in [Summary] mode print the aggregate table on
    [ppf]; in [File path] mode write the trace and print a one-line
    pointer; in [Off] mode do nothing.  The buffer is kept (callers
    may flush more than once). *)

val reset : unit -> unit
(** Drop all buffered events and the drop counter (mode unchanged). *)
