(* Registry of named metrics.  Handles hold the atomics directly, so
   the hot paths never touch the registry (or its mutex) after
   registration; the mutex only guards registration and snapshotting. *)

type counter = int Atomic.t

type gauge = int Atomic.t

type histogram = {
  bounds : int array;  (* inclusive upper bounds, strictly increasing *)
  cells : int Atomic.t array;  (* length bounds + 1: last is overflow *)
  total : int Atomic.t;
  samples : int Atomic.t;
}

type metric = C of counter | G of gauge | H of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let mutex = Mutex.create ()

(* 1us .. ~17min in powers of four: wide enough for per-slot wall times
   of both micro-tests and full-scale refinements. *)
let default_duration_buckets =
  [ 1; 4; 16; 64; 256; 1024; 4096; 16384; 65536; 262144; 1048576; 4194304;
    16777216; 67108864; 268435456; 1073741824 ]

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name make same =
  if String.length name = 0 then invalid_arg "Obs.Metrics: empty metric name";
  Mutex.protect mutex (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
          match same m with
          | Some v -> v
          | None ->
              invalid_arg
                (Printf.sprintf
                   "Obs.Metrics: %S is already registered as a %s" name
                   (kind_name m)))
      | None ->
          let v, m = make () in
          Hashtbl.add registry name m;
          v)

let counter name =
  register name
    (fun () ->
      let c = Atomic.make 0 in
      (c, C c))
    (function C c -> Some c | G _ | H _ -> None)

(* Counter updates from concurrent domains are a declared benign race:
   the cells are atomics, only the interleaving of counts is
   unordered.  Publishing the access keeps the allowlist honest — the
   race detector must see the race and suppress it by declaration,
   not by blindness. *)
let metrics_obj = "obs/metrics"

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Obs.Metrics.incr: negative increment";
  Probe.write ~obj:metrics_obj ~site:"metrics.incr";
  ignore (Atomic.fetch_and_add c by)

let counter_value = Atomic.get

let gauge name =
  register name
    (fun () ->
      let g = Atomic.make 0 in
      (g, G g))
    (function G g -> Some g | C _ | H _ -> None)

let set_gauge g v =
  Probe.write ~obj:metrics_obj ~site:"metrics.set-gauge";
  Atomic.set g v

let gauge_value = Atomic.get

let histogram ?(buckets = default_duration_buckets) name =
  let bounds = Array.of_list buckets in
  if Array.length bounds = 0 then
    invalid_arg "Obs.Metrics.histogram: no buckets";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= bounds.(i - 1) then
        invalid_arg "Obs.Metrics.histogram: buckets not strictly increasing")
    bounds;
  register name
    (fun () ->
      let h =
        {
          bounds;
          cells = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
          total = Atomic.make 0;
          samples = Atomic.make 0;
        }
      in
      (h, H h))
    (function
      | H h -> if h.bounds = bounds then Some h else None
      | C _ | G _ -> None)

let observe h v =
  Probe.write ~obj:metrics_obj ~site:"metrics.observe";
  let v = max 0 v in
  let n = Array.length h.bounds in
  let rec cell i = if i >= n || v <= h.bounds.(i) then i else cell (i + 1) in
  ignore (Atomic.fetch_and_add h.cells.(cell 0) 1);
  ignore (Atomic.fetch_and_add h.total v);
  ignore (Atomic.fetch_and_add h.samples 1)

let histogram_count h = Atomic.get h.samples

let histogram_sum h = Atomic.get h.total

type value =
  | Counter of int
  | Gauge of int
  | Histogram of { buckets : (int * int) list; sum : int; count : int }

let value_of = function
  | C c -> Counter (Atomic.get c)
  | G g -> Gauge (Atomic.get g)
  | H h ->
      let buckets =
        List.init
          (Array.length h.cells)
          (fun i ->
            let bound =
              if i < Array.length h.bounds then h.bounds.(i) else max_int
            in
            (bound, Atomic.get h.cells.(i)))
      in
      Histogram
        { buckets; sum = Atomic.get h.total; count = Atomic.get h.samples }

let snapshot () =
  Mutex.protect mutex (fun () ->
      Hashtbl.fold (fun name m acc -> (name, value_of m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let value name =
  Mutex.protect mutex (fun () ->
      Option.map value_of (Hashtbl.find_opt registry name))

let find_counter name =
  match value name with Some (Counter v) -> v | _ -> 0

let reset () =
  Mutex.protect mutex (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | C a | G a -> Atomic.set a 0
          | H h ->
              Array.iter (fun c -> Atomic.set c 0) h.cells;
              Atomic.set h.total 0;
              Atomic.set h.samples 0)
        registry)

(* GC gauges, refreshed on demand (bench sections, report dumps) from
   [Gc.quick_stat] — cheap enough to call at batch granularity and
   precise enough for the §SCALE allocation accounting.  Word counts
   are clamped into the gauge's int domain (no-op on 64-bit). *)
let gc_minor_words_g = gauge "gc.minor_words"

let gc_promoted_words_g = gauge "gc.promoted_words"

let gc_major_words_g = gauge "gc.major_words"

let gc_minor_collections_g = gauge "gc.minor_collections"

let gc_major_collections_g = gauge "gc.major_collections"

let gc_compactions_g = gauge "gc.compactions"

let gc_heap_words_g = gauge "gc.heap_words"

let gc_top_heap_words_g = gauge "gc.top_heap_words"

let words w =
  if w >= float_of_int max_int then max_int else int_of_float w

let record_gc () =
  let s = Gc.quick_stat () in
  set_gauge gc_minor_words_g (words s.Gc.minor_words);
  set_gauge gc_promoted_words_g (words s.Gc.promoted_words);
  set_gauge gc_major_words_g (words s.Gc.major_words);
  set_gauge gc_minor_collections_g s.Gc.minor_collections;
  set_gauge gc_major_collections_g s.Gc.major_collections;
  set_gauge gc_compactions_g s.Gc.compactions;
  set_gauge gc_heap_words_g s.Gc.heap_words;
  set_gauge gc_top_heap_words_g s.Gc.top_heap_words

let pp_snapshot ppf items =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Format.fprintf ppf "@,";
      match v with
      | Counter n -> Format.fprintf ppf "%-34s %d" name n
      | Gauge n -> Format.fprintf ppf "%-34s %d (gauge)" name n
      | Histogram { sum; count; _ } ->
          Format.fprintf ppf "%-34s count %d, sum %d, mean %.1f" name count sum
            (if count = 0 then 0.0 else float_of_int sum /. float_of_int count))
    items;
  Format.fprintf ppf "@]"

let to_json items =
  let b = Buffer.create 512 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (name, v) ->
      if i > 0 then Buffer.add_string b ", ";
      Printf.bprintf b "%S: " name;
      match v with
      | Counter n | Gauge n -> Buffer.add_string b (string_of_int n)
      | Histogram { buckets; sum; count } ->
          Printf.bprintf b "{\"count\": %d, \"sum\": %d, \"buckets\": [" count
            sum;
          List.iteri
            (fun j (bound, n) ->
              if j > 0 then Buffer.add_string b ", ";
              if bound = max_int then Printf.bprintf b "[\"+inf\", %d]" n
              else Printf.bprintf b "[%d, %d]" bound n)
            buckets;
          Buffer.add_string b "]}")
    items;
  Buffer.add_char b '}';
  Buffer.contents b
