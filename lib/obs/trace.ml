(* Chrome trace-event recording.  The mode is one atomic int (0 = off,
   1 = summary, 2 = file) so the off path costs an atomic load and a
   branch.  Events buffer in per-domain lists (Domain.DLS — no lock on
   the record path); each domain's buffer is registered in a global
   list under a mutex at first use, so flush sees events from worker
   domains that have already been joined. *)

type mode = Off | Summary | File of string

let parse s =
  match String.lowercase_ascii (String.trim s) with
  | "" -> Error "RD_TRACE: empty value (want off, summary, or a file path)"
  | "off" | "0" | "false" -> Ok Off
  | "summary" -> Ok Summary
  | _ -> Ok (File (String.trim s))

let mode_to_string = function
  | Off -> "off"
  | Summary -> "summary"
  | File p -> p

(* The sink path can't live in an atomic int; keep the full mode under a
   mutex and mirror just the on/off level in the atomic. *)
let level = Atomic.make 0

let current_mode = ref Off

let mode_mutex = Mutex.create ()

let set_mode m =
  Mutex.protect mode_mutex (fun () ->
      current_mode := m;
      Atomic.set level (match m with Off -> 0 | Summary -> 1 | File _ -> 2))

let mode () = Mutex.protect mode_mutex (fun () -> !current_mode)

let enabled () = Atomic.get level <> 0

let epoch = Unix.gettimeofday ()

let now_us () = int_of_float ((Unix.gettimeofday () -. epoch) *. 1e6)

type event = {
  name : string;
  ts_us : int;
  dur_us : int;  (* -1 marks an instant event *)
  tid : int;
  args : (string * string) list;
}

(* Buffer cap across all domains: a full-scale refinement emits a few
   events per prefix per iteration, well under this; the cap is a
   backstop against a recording loop, not a tuning knob. *)
let max_events = 1 lsl 20

let recorded = Atomic.make 0

let dropped_count = Atomic.make 0

let buffers : event list ref list ref = ref []

let buffers_mutex = Mutex.create ()

let buffer_key =
  Domain.DLS.new_key (fun () ->
      let r = ref [] in
      Mutex.protect buffers_mutex (fun () -> buffers := r :: !buffers);
      r)

let record ev =
  if Atomic.fetch_and_add recorded 1 < max_events then
    let buf = Domain.DLS.get buffer_key in
    buf := ev :: !buf
  else ignore (Atomic.fetch_and_add dropped_count 1)

let self_tid () = (Domain.self () :> int)

let emit ?(args = []) ?tid ~name ~ts_us ~dur_us () =
  if enabled () then
    let tid = match tid with Some t -> t | None -> self_tid () in
    record { name; ts_us; dur_us = max 0 dur_us; tid; args }

let instant ?(args = []) name =
  if enabled () then
    record { name; ts_us = now_us (); dur_us = -1; tid = self_tid (); args }

type open_span = {
  span_name : string;
  start_us : int;
  span_args : (string * string) list;
}

type span = open_span option

let begin_span ?(args = []) name : span =
  if enabled () then Some { span_name = name; start_us = now_us (); span_args = args }
  else None

let end_span ?(args = []) (sp : span) =
  match sp with
  | None -> ()
  | Some { span_name; start_us; span_args } ->
      record
        {
          name = span_name;
          ts_us = start_us;
          dur_us = max 0 (now_us () - start_us);
          tid = self_tid ();
          args = span_args @ args;
        }

let with_span ?args name f =
  if not (enabled ()) then f ()
  else
    let sp = begin_span ?args name in
    match f () with
    | v ->
        end_span sp;
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        end_span ~args:[ ("raised", Printexc.to_string e) ] sp;
        Printexc.raise_with_backtrace e bt

let all_events () =
  Mutex.protect buffers_mutex (fun () ->
      List.concat_map (fun r -> !r) !buffers)
  |> List.sort (fun a b -> compare a.ts_us b.ts_us)

let event_count () = min (Atomic.get recorded) max_events

let dropped () = Atomic.get dropped_count

type summary_row = {
  name : string;
  count : int;
  total_us : int;
  max_us : int;
}

let summary () =
  let tbl : (string, summary_row ref) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (ev : event) ->
      if ev.dur_us >= 0 then
        match Hashtbl.find_opt tbl ev.name with
        | Some r ->
            r :=
              {
                !r with
                count = !r.count + 1;
                total_us = !r.total_us + ev.dur_us;
                max_us = max !r.max_us ev.dur_us;
              }
        | None ->
            Hashtbl.add tbl ev.name
              (ref
                 {
                   name = ev.name;
                   count = 1;
                   total_us = ev.dur_us;
                   max_us = ev.dur_us;
                 }))
    (all_events ());
  Hashtbl.fold (fun _ r acc -> !r :: acc) tbl []
  |> List.sort (fun a b -> compare b.total_us a.total_us)

let json_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_json_string b s =
  Buffer.add_char b '"';
  json_escape b s;
  Buffer.add_char b '"'

let add_event b (ev : event) =
  Buffer.add_string b "{\"name\": ";
  add_json_string b ev.name;
  if ev.dur_us >= 0 then
    Printf.bprintf b ", \"ph\": \"X\", \"ts\": %d, \"dur\": %d" ev.ts_us
      ev.dur_us
  else Printf.bprintf b ", \"ph\": \"i\", \"ts\": %d, \"s\": \"t\"" ev.ts_us;
  Printf.bprintf b ", \"pid\": 1, \"tid\": %d" ev.tid;
  (match ev.args with
  | [] -> ()
  | args ->
      Buffer.add_string b ", \"args\": {";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string b ", ";
          add_json_string b k;
          Buffer.add_string b ": ";
          add_json_string b v)
        args;
      Buffer.add_char b '}');
  Buffer.add_char b '}'

let write_file path =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\": [";
  List.iteri
    (fun i ev ->
      if i > 0 then Buffer.add_string b ",\n  " else Buffer.add_string b "\n  ";
      add_event b ev)
    (all_events ());
  Buffer.add_string b "\n]}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> Buffer.output_buffer oc b)

let flush ppf =
  match mode () with
  | Off -> ()
  | Summary ->
      let rows = summary () in
      Format.fprintf ppf "@[<v>-- TRACE (summary) --";
      List.iter
        (fun r ->
          Format.fprintf ppf "@,%-26s %7d calls  %10d us total  %8d us max"
            r.name r.count r.total_us r.max_us)
        rows;
      if dropped () > 0 then
        Format.fprintf ppf "@,(%d events dropped at buffer cap)" (dropped ());
      Format.fprintf ppf "@]@."
  | File path ->
      write_file path;
      Format.fprintf ppf "trace: %d events written to %s%s@." (event_count ())
        path
        (if dropped () > 0 then
           Printf.sprintf " (%d dropped at buffer cap)" (dropped ())
         else "")

let reset () =
  Mutex.protect buffers_mutex (fun () ->
      List.iter (fun r -> r := []) !buffers);
  Atomic.set recorded 0;
  Atomic.set dropped_count 0
