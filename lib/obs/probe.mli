(** Happens-before instrumentation hook (the [RD_CHECK=race] probes).

    The layers that own shared mutable state publish two kinds of
    events here: {e accesses} to a named shared object and
    {e synchronization edges} as release/acquire pairs on a named
    channel (a Pool worker spawn or join, the Snapshot executor
    hand-off).  A happens-before checker — [Analysis.Race] — installs
    the process-wide hook and reconstructs the ordering; with no hook
    installed every probe costs one atomic load and a branch, so the
    probes stay in production code paths.

    Object and channel names are plain strings chosen by the
    publishing layer (e.g. ["net#3/structure"], ["pool.17.0.spawn"]).
    Two accesses race when they touch the same object string, at least
    one is a {!Write}, they come from different domains and neither
    happens-before the other under the published edges.

    This module only dispatches; it never blocks and holds no state
    beyond the hook itself. *)

type kind = Read | Write

type hook = {
  h_access : string -> string -> kind -> unit;
      (** [h_access obj site kind]: the current domain touched [obj]
          at source location / rule [site]. *)
  h_release : string -> unit;
      (** The current domain publishes its history on a channel. *)
  h_acquire : string -> unit;
      (** The current domain adopts a channel's published history. *)
}

val set_hook : hook option -> unit
(** Install (or remove, with [None]) the process-wide probe observer.
    The hook runs synchronously in the probing domain and must not
    itself probe. *)

val enabled : unit -> bool
(** One atomic load — guard any name formatting a probe site needs. *)

val access : obj:string -> site:string -> kind -> unit

val read : obj:string -> site:string -> unit

val write : obj:string -> site:string -> unit

val release : chan:string -> unit

val acquire : chan:string -> unit
