(** Table dumps in the one-line `bgpdump -m` style.

    Real collectors (Routeviews, RIPE RIS) store MRT [TABLE_DUMP2]
    records; `bgpdump -m` renders each RIB entry as one pipe-separated
    line.  This module reads and writes that line format so that the
    pipeline consumes the same kind of artifact the paper's did:

    {v
    TABLE_DUMP2|<time>|B|<peer_ip>|<peer_as>|<prefix>|<as_path>|<origin>|
    <next_hop>|<local_pref>|<med>|<community>|<atomic_agg>|<aggregator>|
    v}

    (all on one line; [<atomic_agg>] is [AG] or [NAG]; empty trailing
    fields are allowed).  The AS-path as dumped includes the peer AS as
    its first element, as collectors see it over their eBGP session. *)

type record = {
  time : int;  (** Unix timestamp of the table dump. *)
  peer_ip : Ipv4.t;  (** Address of the BGP peer feeding the collector. *)
  peer_as : Asn.t;  (** AS of that peer — the observation AS. *)
  prefix : Prefix.t;
  path : Aspath.t;  (** Includes [peer_as] as first hop. *)
  attrs : Attrs.t;
}

type update =
  | Announce of record
      (** a [BGP4MP|...|A|...] line — same fields as a table-dump
          record. *)
  | Withdraw of { time : int; peer_ip : Ipv4.t; peer_as : Asn.t; prefix : Prefix.t }
      (** a [BGP4MP|...|W|...] line. *)

type 'a line =
  | Skip  (** a blank line or a ['#'] comment — not data, not an error. *)
  | Parsed of 'a
  | Malformed of string
      (** the first malformed field, described.  Distinct from {!Skip}
          by construction, so a genuine parse error can never be
          mistaken for a comment and silently dropped. *)

val record_to_line : record -> string

val record_of_line : string -> record line
(** Parse one line; {!parse_lines} aggregates whole files, skipping
    [Skip] lines silently. *)

val update_to_line : update -> string

val update_of_line : string -> update line
(** Parse one [BGP4MP] update line (announcement or withdrawal).
    Supporting updates is the paper's stated future work ("incorporate
    the AS-path information from BGP updates", §3.1); together with
    {!Rib.apply_updates} it lets a data set be rolled forward in time. *)

val parse_update_lines : string list -> update list * (int * string) list

val parse_lines : string list -> record list * (int * string) list
(** [parse_lines lines] returns the well-formed records plus
    [(line_number, message)] diagnostics for malformed non-comment
    lines.  Line numbers are 1-based. *)

val read_channel : in_channel -> record list * (int * string) list

val read_file : string -> record list * (int * string) list

val write_channel : out_channel -> record list -> unit

val write_file : string -> record list -> unit
