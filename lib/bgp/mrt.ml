type record = {
  time : int;
  peer_ip : Ipv4.t;
  peer_as : Asn.t;
  prefix : Prefix.t;
  path : Aspath.t;
  attrs : Attrs.t;
}

let record_to_line r =
  let a = r.attrs in
  String.concat "|"
    [
      "TABLE_DUMP2";
      string_of_int r.time;
      "B";
      Ipv4.to_string r.peer_ip;
      string_of_int r.peer_as;
      Prefix.to_string r.prefix;
      Aspath.to_string r.path;
      Attrs.origin_to_string a.Attrs.origin;
      Ipv4.to_string a.Attrs.next_hop;
      string_of_int a.Attrs.local_pref;
      string_of_int a.Attrs.med;
      Attrs.communities_to_string a.Attrs.communities;
      "NAG";
      "";
      "";
    ]

type 'a line = Skip | Parsed of 'a | Malformed of string

let line_of_result = function Ok v -> Parsed v | Error msg -> Malformed msg

let parse_int name s =
  if s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s then
    match int_of_string_opt s with
    | Some n -> Ok n
    | None -> Error (Printf.sprintf "%s: integer out of range %S" name s)
  else Error (Printf.sprintf "%s: not an integer %S" name s)

(* Shared field parsing for table-dump ("B") and announcement ("A")
   lines; they carry the same attribute columns. *)
let parse_full_fields ~time ~peer_ip ~peer_as ~prefix ~path ~origin ~next_hop
    ~local_pref ~med ~community =
  let ( let* ) = Result.bind in
  let* time = parse_int "time" time in
  let* peer_ip =
    Option.to_result ~none:("bad peer_ip " ^ peer_ip) (Ipv4.of_string peer_ip)
  in
  let* peer_as =
    Option.to_result ~none:("bad peer_as " ^ peer_as) (Asn.of_string peer_as)
  in
  let* prefix =
    Option.to_result ~none:("bad prefix " ^ prefix) (Prefix.of_string prefix)
  in
  let* path =
    Option.to_result ~none:("bad as_path " ^ path) (Aspath.of_string path)
  in
  let* origin =
    Option.to_result ~none:("bad origin " ^ origin)
      (Attrs.origin_of_string origin)
  in
  let* next_hop =
    Option.to_result ~none:("bad next_hop " ^ next_hop)
      (Ipv4.of_string next_hop)
  in
  let* local_pref = parse_int "local_pref" local_pref in
  let* med = parse_int "med" med in
  let* communities =
    Option.to_result ~none:("bad community " ^ community)
      (Attrs.communities_of_string community)
  in
  Ok
    {
      time;
      peer_ip;
      peer_as;
      prefix;
      path;
      attrs = { Attrs.origin; next_hop; local_pref; med; communities };
    }

type update =
  | Announce of record
  | Withdraw of { time : int; peer_ip : Ipv4.t; peer_as : Asn.t; prefix : Prefix.t }

let update_to_line = function
  | Announce r ->
      let line = record_to_line r in
      (* Same columns, BGP4MP kind and A subtype. *)
      (match String.split_on_char '|' line with
      | _kind :: time :: _sub :: rest ->
          String.concat "|" (("BGP4MP" :: time :: "A" :: rest))
      | _ -> assert false)
  | Withdraw { time; peer_ip; peer_as; prefix } ->
      String.concat "|"
        [
          "BGP4MP";
          string_of_int time;
          "W";
          Ipv4.to_string peer_ip;
          string_of_int peer_as;
          Prefix.to_string prefix;
        ]

let update_of_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Skip
  else
    line_of_result
    @@
    let ( let* ) = Result.bind in
    match String.split_on_char '|' line with
    | "BGP4MP" :: time :: "A" :: peer_ip :: peer_as :: prefix :: path :: origin
      :: next_hop :: local_pref :: med :: community :: _rest ->
        let* r =
          parse_full_fields ~time ~peer_ip ~peer_as ~prefix ~path ~origin
            ~next_hop ~local_pref ~med ~community
        in
        Ok (Announce r)
    | "BGP4MP" :: time :: "W" :: peer_ip :: peer_as :: prefix :: _rest ->
        let* time = parse_int "time" time in
        let* peer_ip =
          Option.to_result ~none:("bad peer_ip " ^ peer_ip)
            (Ipv4.of_string peer_ip)
        in
        let* peer_as =
          Option.to_result ~none:("bad peer_as " ^ peer_as)
            (Asn.of_string peer_as)
        in
        let* prefix =
          Option.to_result ~none:("bad prefix " ^ prefix)
            (Prefix.of_string prefix)
        in
        Ok (Withdraw { time; peer_ip; peer_as; prefix })
    | kind :: _ when kind <> "BGP4MP" ->
        Error (Printf.sprintf "not an update line (kind %S)" kind)
    | _ -> Error "too few fields"

let parse_update_lines lines =
  let updates = ref [] in
  let errors = ref [] in
  List.iteri
    (fun i line ->
      match update_of_line line with
      | Parsed u -> updates := u :: !updates
      | Skip -> ()
      | Malformed msg -> errors := (i + 1, msg) :: !errors)
    lines;
  (List.rev !updates, List.rev !errors)

let record_of_line line =
  let line = String.trim line in
  if line = "" || line.[0] = '#' then Skip
  else
    line_of_result
    @@
    let fields = String.split_on_char '|' line in
    match fields with
    | kind :: time :: sub :: peer_ip :: peer_as :: prefix :: path :: origin
      :: next_hop :: local_pref :: med :: community :: _rest ->
        let ( let* ) = Result.bind in
        let* () =
          if kind = "TABLE_DUMP2" || kind = "TABLE_DUMP" then Ok ()
          else Error (Printf.sprintf "unknown record kind %S" kind)
        in
        let* () =
          if sub = "B" then Ok ()
          else Error (Printf.sprintf "unsupported subtype %S (want B)" sub)
        in
        let* time = parse_int "time" time in
        let* peer_ip =
          Option.to_result ~none:("bad peer_ip " ^ peer_ip)
            (Ipv4.of_string peer_ip)
        in
        let* peer_as =
          Option.to_result ~none:("bad peer_as " ^ peer_as)
            (Asn.of_string peer_as)
        in
        let* prefix =
          Option.to_result ~none:("bad prefix " ^ prefix)
            (Prefix.of_string prefix)
        in
        let* path =
          Option.to_result ~none:("bad as_path " ^ path) (Aspath.of_string path)
        in
        let* origin =
          Option.to_result ~none:("bad origin " ^ origin)
            (Attrs.origin_of_string origin)
        in
        let* next_hop =
          Option.to_result ~none:("bad next_hop " ^ next_hop)
            (Ipv4.of_string next_hop)
        in
        let* local_pref = parse_int "local_pref" local_pref in
        let* med = parse_int "med" med in
        let* communities =
          Option.to_result ~none:("bad community " ^ community)
            (Attrs.communities_of_string community)
        in
        Ok
          {
            time;
            peer_ip;
            peer_as;
            prefix;
            path;
            attrs =
              { Attrs.origin; next_hop; local_pref; med; communities };
          }
    | _ -> Error "too few fields"

let parse_lines lines =
  let records = ref [] in
  let errors = ref [] in
  List.iteri
    (fun i line ->
      match record_of_line line with
      | Parsed r -> records := r :: !records
      | Skip -> ()
      | Malformed msg -> errors := (i + 1, msg) :: !errors)
    lines;
  (List.rev !records, List.rev !errors)

let read_channel ic =
  let rec loop acc =
    match In_channel.input_line ic with
    | Some line -> loop (line :: acc)
    | None -> List.rev acc
  in
  parse_lines (loop [])

let read_file path = In_channel.with_open_text path read_channel

let write_channel oc records =
  List.iter
    (fun r ->
      Out_channel.output_string oc (record_to_line r);
      Out_channel.output_char oc '\n')
    records

let write_file path records =
  Out_channel.with_open_text path (fun oc -> write_channel oc records)
