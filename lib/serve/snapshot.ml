open Bgp
module Engine = Simulator.Engine
module Net = Simulator.Net
module Pool = Simulator.Pool
module Qrmodel = Asmodel.Qrmodel
module Whatif = Asmodel.Whatif
module Replay = Stream.Replay

(* Executor: a dedicated systhread that runs every what-if mutation.
   Systhreads stay in the domain that created them, so funnelling all
   net mutations through this thread keeps the mutating domain constant
   (the builder's) no matter which connection thread or test domain
   issues the query — the RD_CHECK ownership hook then sees one owner
   and zero violations while serving.  It also serializes what-ifs,
   which the save/restore discipline requires. *)

type exec = {
  mu : Mutex.t;
  cond : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable thread : Thread.t option;
}

let exec_loop e () =
  let rec go () =
    Mutex.lock e.mu;
    while Queue.is_empty e.jobs && not e.stop do
      Condition.wait e.cond e.mu
    done;
    if Queue.is_empty e.jobs then Mutex.unlock e.mu
    else begin
      let job = Queue.pop e.jobs in
      Mutex.unlock e.mu;
      job ();
      go ()
    end
  in
  go ()

let exec_create () =
  let e =
    {
      mu = Mutex.create ();
      cond = Condition.create ();
      jobs = Queue.create ();
      stop = false;
      thread = None;
    }
  in
  e.thread <- Some (Thread.create (exec_loop e) ());
  e

let exec_stop e =
  Mutex.lock e.mu;
  e.stop <- true;
  Condition.broadcast e.cond;
  Mutex.unlock e.mu;
  match e.thread with
  | Some t ->
      Thread.join t;
      e.thread <- None
  | None -> ()

type t = {
  model : Qrmodel.t;
  states : (Prefix.t * Engine.state) list;
  by_prefix : (Prefix.t, Engine.state) Hashtbl.t;
  baseline : Whatif.snapshot;
  build_stats : Pool.stats;
  replay : Replay.persist option;
  exec : exec;
}

let of_states ?(build_stats = Pool.zero) ?replay (model : Qrmodel.t) states =
  let baseline = Whatif.of_states model states in
  let by_prefix = Hashtbl.create (max 16 (List.length states)) in
  List.iter (fun (p, st) -> Hashtbl.replace by_prefix p st) states;
  {
    model;
    states;
    by_prefix;
    baseline;
    build_stats;
    replay;
    exec = exec_create ();
  }

let build ?jobs (model : Qrmodel.t) =
  let net = model.Qrmodel.net in
  let prefixes = List.map fst model.Qrmodel.prefixes in
  let states, build_stats =
    Pool.simulate ?jobs
      ~sim:(fun p ->
        Engine.simulate net ~prefix:p ~originators:(Qrmodel.originators model p))
      prefixes
  in
  (* The cached states reflect everything up to now; drain the touched
     sets so the first what-if resume replays only its own edits. *)
  List.iter (fun p -> Net.clear_touched net p) prefixes;
  of_states ~build_stats model states

let model t = t.model

let states t = t.states

let state t p = Hashtbl.find_opt t.by_prefix p

let baseline t = t.baseline

let replay t = t.replay

let build_stats t = t.build_stats

let converged t =
  List.for_all (fun (_, st) -> Engine.converged st) t.states

(* Per-call channel ids for the happens-before edges published below:
   the submitting caller may sit in a different domain than the
   executor thread, so under RD_CHECK=race the enqueue/signal pair is
   declared as release/acquire (and the result hand-back as the reverse
   pair) — exactly the ordering the mutex+condvar already provide. *)
let exclusive_uid = Atomic.make 0

let exclusive t f =
  let result = ref None in
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let probing = Obs.Probe.enabled () in
  let chan =
    if probing then
      Printf.sprintf "snapshot.exec.%d" (Atomic.fetch_and_add exclusive_uid 1)
    else ""
  in
  let job () =
    if probing then Obs.Probe.acquire ~chan:(chan ^ ".submit");
    let r = try Ok (f ()) with exn -> Error exn in
    if probing then Obs.Probe.release ~chan:(chan ^ ".done");
    Mutex.lock mu;
    result := Some r;
    Condition.signal cond;
    Mutex.unlock mu
  in
  Mutex.lock t.exec.mu;
  if t.exec.stop then begin
    Mutex.unlock t.exec.mu;
    invalid_arg "Snapshot.exclusive: snapshot is retired"
  end;
  if probing then Obs.Probe.release ~chan:(chan ^ ".submit");
  Queue.add job t.exec.jobs;
  Condition.signal t.exec.cond;
  Mutex.unlock t.exec.mu;
  Mutex.lock mu;
  while Option.is_none !result do
    Condition.wait cond mu
  done;
  Mutex.unlock mu;
  if probing then Obs.Probe.acquire ~chan:(chan ^ ".done");
  match Option.get !result with Ok v -> v | Error exn -> raise exn

let retire t = exec_stop t.exec

(* Rebuild off to the side: re-simulate every cached prefix warm from
   this snapshot's states and return a fresh snapshot (with its own
   executor) ready to publish.  Originators come from each cached state
   itself, so prefixes a churn replay added beyond the model's survive
   the rebuild.  Callers run this through [exclusive] so the rebuild
   serializes with what-if mutation, then [publish] outside it — the
   retire inside publish joins this executor, which must not happen
   from its own thread. *)
let rebuild ?jobs t =
  let net = t.model.Qrmodel.net in
  let prefixes = List.map fst t.states in
  let states, build_stats =
    Pool.simulate ?jobs
      ~sim:(fun p ->
        let from = state t p in
        let originators =
          match from with
          | Some st -> Engine.originating st
          | None -> Qrmodel.originators t.model p
        in
        Engine.simulate ?from net ~prefix:p ~originators)
      prefixes
  in
  List.iter (fun p -> Net.clear_touched net p) prefixes;
  of_states ~build_stats ?replay:t.replay t.model states

(* -- atomic swap -- *)

(* The mutex serializes whole churn transactions (read current →
   replay/rebuild → publish); without it two writers that both read
   the same snapshot would each build from its states and the second
   publish would silently discard the first one's applied events.
   Readers never take it: [current] stays one atomic load. *)
type store = { cell : t option Atomic.t; churn_mu : Mutex.t }

let store () = { cell = Atomic.make None; churn_mu = Mutex.create () }

let publish store t =
  let prev = Atomic.exchange store.cell (Some t) in
  match prev with Some old when old != t -> retire old | _ -> ()

let current store = Atomic.get store.cell

let locked store f = Mutex.protect store.churn_mu f
