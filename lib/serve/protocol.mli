(** Wire protocol of the query service: request/response types, their
    JSON encoding, and length-prefixed framing.

    Every frame is a 4-byte big-endian payload length followed by that
    many bytes of JSON.  Requests are objects selected by an ["op"]
    field; responses carry ["ok"], ["elapsed_us"], ["deadline_missed"]
    and either ["result"] or ["error"]. *)

open Bgp

type request =
  | Path of { prefix : Prefix.t; asn : Asn.t }
      (** the AS's selected full paths toward the prefix *)
  | Catchment of { egress : Asn.t; prefix : Prefix.t option }
      (** ASes whose selected route transits [egress]; one prefix, or
          every model prefix when [None] *)
  | Whatif of { a : Asn.t; b : Asn.t }
      (** deny the AS link, re-converge warm, diff, revert *)
  | Ping
  | Reload
      (** rebuild the snapshot warm off to the side and atomically
          publish it; served by the server itself (it owns the store) *)
  | Shutdown  (** answer, then stop accepting connections *)

type whatif_change = { wc_prefix : Prefix.t; wc_changed : int; wc_lost : int }

type payload =
  | Paths of { prefix : Prefix.t; asn : Asn.t; paths : int array list }
  | Catchment_members of {
      egress : Asn.t;
      members : (Prefix.t * Asn.t list) list;
    }
  | Whatif_summary of {
      a : Asn.t;
      b : Asn.t;
      half_sessions : int;
      prefixes_affected : int;
      ases_affected : int;
      resume_hits : int;  (** warm resumes used for this query's deltas *)
      changes : whatif_change list;  (** capped at 20 entries *)
    }
  | Pong of { prefixes : int; nodes : int }
  | Reloaded of { prefixes : int; resume_hits : int; build_s : float }
  | Closing

type response = {
  result : (payload, string) result;
  elapsed_us : int;
  deadline_missed : bool;
}

val request_to_json : request -> Json.t

val request_of_json : Json.t -> (request, string) result

val request_to_string : request -> string

val request_of_string : string -> (request, string) result

val payload_to_json : payload -> Json.t

val response_to_json : response -> Json.t

val response_to_string : response -> string

(** {2 Framing} *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one length-prefixed frame; loops until fully written. *)

val read_frame :
  ?deadline_ms:int -> Unix.file_descr -> (string option, string) result
(** Read one frame.  [Ok None] on a clean end-of-stream before a
    header; [Error] on a truncated or oversized frame.  With
    [deadline_ms > 0] (default [0]: never time out), a socket receive
    timeout arms once the first frame byte has arrived — waiting for a
    frame to start is keep-alive idleness and never times out, but a
    peer stalling {e mid-frame} yields [Error] {!read_timeout_msg}
    after [deadline_ms]. *)

val read_timeout_msg : string
(** The exact [Error] message {!read_frame} returns on a mid-frame
    stall, for callers that count timeouts separately. *)
