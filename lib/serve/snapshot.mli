(** Frozen query-service snapshots: a refined model plus the converged
    engine state of every model prefix, computed once over the
    {!Simulator.Pool} and then treated as immutable.

    Queries read the cached states; they never re-simulate from
    scratch.  What-if queries do mutate the underlying network, but
    only through {!exclusive}: a dedicated executor thread (created in
    {!build}, in the builder's domain) runs every mutation, so the
    RD_CHECK ownership checker sees a single mutating domain — and the
    exact save/restore in {!Asmodel.Whatif} returns the network to its
    published state before the next query runs.

    A {!store} is the atomic-swap publication point: readers grab the
    current snapshot with one atomic load; {!publish} installs a
    replacement and retires the previous snapshot's executor. *)

open Bgp

type t

val build : ?jobs:int -> Asmodel.Qrmodel.t -> t
(** Simulate every model prefix over the pool ([jobs] defaults to
    {!Simulator.Runtime.jobs}), cache the converged states, drain the
    touched sets, and precompute the baseline selected-path snapshot
    what-if diffs compare against. *)

val of_states :
  ?build_stats:Simulator.Pool.stats ->
  ?replay:Stream.Replay.persist ->
  Asmodel.Qrmodel.t ->
  (Bgp.Prefix.t * Simulator.Engine.state) list ->
  t
(** A snapshot over already-converged states (no simulation) — the
    churn-replay path: the replay driver reconverged prefixes
    incrementally and the result becomes the next published snapshot.
    The state list may extend beyond the model's prefixes (announced /
    hijacked extras).  [replay] is the driver state the replay ended
    with; the next {!Churn.apply} resumes from it so down/up pairs may
    span apply calls. *)

val rebuild : ?jobs:int -> t -> t
(** Reconverge every cached prefix {e warm} from this snapshot's
    states against the (possibly churn-mutated) network and return a
    fresh snapshot ready to {!publish}.  Run it through {!exclusive}
    so it serializes with what-if mutation; publish {e outside} the
    exclusive section (publishing retires this snapshot's executor,
    which must not be joined from its own thread). *)

val model : t -> Asmodel.Qrmodel.t

val states : t -> (Prefix.t * Simulator.Engine.state) list
(** In model-prefix order. *)

val state : t -> Prefix.t -> Simulator.Engine.state option

val baseline : t -> Asmodel.Whatif.snapshot

val replay : t -> Stream.Replay.persist option
(** The churn-replay driver state this snapshot was published with
    ([None] for fresh builds): origins per tracked prefix and down
    sessions/links with their denies, carried so later churn streams
    can restore them. *)

val build_stats : t -> Simulator.Pool.stats

val converged : t -> bool
(** Every cached state converged. *)

val exclusive : t -> (unit -> 'a) -> 'a
(** Run [f] on the snapshot's executor thread and return its result;
    serializes with every other [exclusive] caller.  All what-if
    mutation happens here.  Raises [Invalid_argument] after
    {!retire}. *)

val retire : t -> unit
(** Stop the executor thread (idempotent).  Queries already queued
    finish first. *)

(** {2 Atomic swap} *)

type store

val store : unit -> store
(** An empty publication point. *)

val publish : store -> t -> unit
(** Atomically install a snapshot as the current one and retire the
    snapshot it replaces (if any). *)

val current : store -> t option
(** One atomic load; no locking on the read path. *)

val locked : store -> (unit -> 'a) -> 'a
(** Run [f] under the store's churn mutex.  Every read-modify-publish
    transaction ({!Churn.apply} / {!Churn.reload}) runs inside it, so
    concurrent writers serialize on the {e store} and the second one
    builds from the first one's published snapshot instead of silently
    overwriting it.  Readers ({!current}) never take the lock. *)
