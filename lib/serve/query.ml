open Bgp
module Engine = Simulator.Engine
module Net = Simulator.Net
module Pool = Simulator.Pool
module Runtime = Simulator.Runtime
module Qrmodel = Asmodel.Qrmodel
module Whatif = Asmodel.Whatif

let queries_m = Obs.Metrics.counter "serve.queries"

let deadline_misses_m = Obs.Metrics.counter "serve.deadline_misses"

let latency_m = Obs.Metrics.histogram "serve.latency_us"

let whatif_resume_hits_m = Obs.Metrics.counter "serve.whatif_resume_hits"

let eval_path snap prefix asn =
  match Snapshot.state snap prefix with
  | None -> Error (Printf.sprintf "unknown prefix %s" (Prefix.to_string prefix))
  | Some st ->
      let model = Snapshot.model snap in
      let paths = Engine.selected_paths model.Qrmodel.net st asn in
      Ok (Protocol.Paths { prefix; asn; paths })

(* The catchment of an egress AS for a prefix: every AS (other than the
   egress itself) with a selected route that transits the egress.
   Selected paths start with the selecting AS, so any occurrence of the
   egress in another AS's path is a genuine transit (or terminal) hop. *)
let catchment_of_state model st egress =
  let net = model.Qrmodel.net in
  List.filter
    (fun asn ->
      asn <> egress
      && List.exists
           (fun path -> Array.exists (fun hop -> hop = egress) path)
           (Engine.selected_paths net st asn))
    (Topology.Asgraph.nodes model.Qrmodel.graph)

let eval_catchment snap egress prefix =
  let model = Snapshot.model snap in
  let targets =
    match prefix with
    | Some p -> (
        match Snapshot.state snap p with
        | Some st -> Ok [ (p, st) ]
        | None ->
            Error (Printf.sprintf "unknown prefix %s" (Prefix.to_string p)))
    | None -> Ok (Snapshot.states snap)
  in
  Result.map
    (fun targets ->
      Protocol.Catchment_members
        {
          egress;
          members =
            List.map
              (fun (p, st) -> (p, catchment_of_state model st egress))
              targets;
        })
    targets

let eval_whatif ?jobs snap a b =
  (* All mutation runs on the snapshot's executor thread; the pool batch
     in the middle only reads.  Sequence: deny the link, re-converge
     every prefix warm from the cached states, diff against the
     baseline, then restore the exact pre-query deny set and drain the
     touched sets so the published state is bit-identical again. *)
  Snapshot.exclusive snap (fun () ->
      let model = Snapshot.model snap in
      let net = model.Qrmodel.net in
      (* The snapshot may track prefixes beyond the model's (announced /
         hijacked extras from a churn replay) or fewer (quarantined
         drops); deny, simulate and diff exactly the set it serves so
         the baseline diff joins cleanly. *)
      let targets = List.map fst (Snapshot.states snap) in
      let half_sessions = Whatif.disable_as_link ~prefixes:targets model a b in
      if half_sessions = 0 then
        Ok
          (Protocol.Whatif_summary
             {
               a;
               b;
               half_sessions;
               prefixes_affected = 0;
               ases_affected = 0;
               resume_hits = 0;
               changes = [];
             })
      else begin
        let finally () =
          ignore (Whatif.enable_as_link ~prefixes:targets model a b);
          List.iter (fun p -> Net.clear_touched net p) targets
        in
        Fun.protect ~finally (fun () ->
            let hits0 = Obs.Metrics.find_counter "engine.warm_resume_hits" in
            let states, _stats =
              Pool.simulate ?jobs
                ~sim:(fun p ->
                  let from = Snapshot.state snap p in
                  let originators =
                    match from with
                    | Some st -> Engine.originating st
                    | None -> Qrmodel.originators model p
                  in
                  Engine.simulate ?from net ~prefix:p ~originators)
                targets
            in
            let resume_hits =
              max 0
                (Obs.Metrics.find_counter "engine.warm_resume_hits" - hits0)
            in
            Obs.Metrics.incr ~by:resume_hits whatif_resume_hits_m;
            let after = Whatif.of_states model states in
            let d = Whatif.diff (Snapshot.baseline snap) after in
            let changes =
              List.filteri (fun i _ -> i < 20) d.Whatif.changes
              |> List.map (fun (c : Whatif.change) ->
                     {
                       Protocol.wc_prefix = c.Whatif.prefix;
                       wc_changed = List.length c.Whatif.ases_changed;
                       wc_lost = List.length c.Whatif.ases_lost;
                     })
            in
            Ok
              (Protocol.Whatif_summary
                 {
                   a;
                   b;
                   half_sessions;
                   prefixes_affected = d.Whatif.prefixes_affected;
                   ases_affected = d.Whatif.ases_affected;
                   resume_hits;
                   changes;
                 }))
      end)

let eval ?jobs snap (req : Protocol.request) =
  match req with
  | Protocol.Path { prefix; asn } -> eval_path snap prefix asn
  | Protocol.Catchment { egress; prefix } -> eval_catchment snap egress prefix
  | Protocol.Whatif { a; b } -> eval_whatif ?jobs snap a b
  | Protocol.Ping ->
      let model = Snapshot.model snap in
      Ok
        (Protocol.Pong
           {
             prefixes = List.length model.Qrmodel.prefixes;
             nodes = Net.node_count model.Qrmodel.net;
           })
  | Protocol.Reload ->
      (* Reload swaps the store's published snapshot, which only the
         server owns; a bare snapshot cannot answer it. *)
      Error "reload requires server context"
  | Protocol.Shutdown -> Ok Protocol.Closing

let eval_timed ?jobs ?deadline_ms snap req : Protocol.response =
  let deadline_ms =
    match deadline_ms with Some d -> d | None -> Runtime.deadline_ms ()
  in
  let start = Obs.Trace.now_us () in
  let result =
    try eval ?jobs snap req
    with exn -> Error (Printexc.to_string exn)
  in
  let elapsed_us = Obs.Trace.now_us () - start in
  let deadline_missed = deadline_ms > 0 && elapsed_us > deadline_ms * 1000 in
  Obs.Metrics.incr queries_m;
  Obs.Metrics.observe latency_m elapsed_us;
  if deadline_missed then Obs.Metrics.incr deadline_misses_m;
  { Protocol.result; elapsed_us; deadline_missed }

let run_batch ?jobs ?deadline_ms snap reqs =
  (* Read-only queries fan out over the pool; what-ifs mutate (inside
     their exclusive section) and must not overlap a pool batch, so
     they run sequentially after the parallel phase.  Results come back
     in request order either way. *)
  let n = List.length reqs in
  let indexed = List.mapi (fun i r -> (i, r)) reqs in
  let mutating, readonly =
    List.partition
      (fun (_, r) -> match r with Protocol.Whatif _ -> true | _ -> false)
      indexed
  in
  let slots = Array.make n None in
  Pool.map ?jobs (fun (i, r) -> (i, eval_timed ?deadline_ms snap r)) readonly
  |> List.iter (fun (i, resp) -> slots.(i) <- Some resp);
  List.iter
    (fun (i, r) -> slots.(i) <- Some (eval_timed ?jobs ?deadline_ms snap r))
    mutating;
  Array.to_list slots
  |> List.map (function
       | Some resp -> resp
       | None -> assert false)
