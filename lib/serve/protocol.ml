open Bgp

type request =
  | Path of { prefix : Prefix.t; asn : Asn.t }
  | Catchment of { egress : Asn.t; prefix : Prefix.t option }
  | Whatif of { a : Asn.t; b : Asn.t }
  | Ping
  | Reload
  | Shutdown

type whatif_change = { wc_prefix : Prefix.t; wc_changed : int; wc_lost : int }

type payload =
  | Paths of { prefix : Prefix.t; asn : Asn.t; paths : int array list }
  | Catchment_members of {
      egress : Asn.t;
      members : (Prefix.t * Asn.t list) list;
    }
  | Whatif_summary of {
      a : Asn.t;
      b : Asn.t;
      half_sessions : int;
      prefixes_affected : int;
      ases_affected : int;
      resume_hits : int;
      changes : whatif_change list;
    }
  | Pong of { prefixes : int; nodes : int }
  | Reloaded of { prefixes : int; resume_hits : int; build_s : float }
  | Closing

type response = {
  result : (payload, string) result;
  elapsed_us : int;
  deadline_missed : bool;
}

(* -- encoding -- *)

let prefix_json p = Json.String (Prefix.to_string p)

let request_to_json = function
  | Path { prefix; asn } ->
      Json.Obj
        [
          ("op", Json.String "path");
          ("prefix", prefix_json prefix);
          ("as", Json.Int asn);
        ]
  | Catchment { egress; prefix } ->
      Json.Obj
        (("op", Json.String "catchment")
        :: ("egress", Json.Int egress)
        ::
        (match prefix with
        | Some p -> [ ("prefix", prefix_json p) ]
        | None -> []))
  | Whatif { a; b } ->
      Json.Obj
        [ ("op", Json.String "whatif"); ("a", Json.Int a); ("b", Json.Int b) ]
  | Ping -> Json.Obj [ ("op", Json.String "ping") ]
  | Reload -> Json.Obj [ ("op", Json.String "reload") ]
  | Shutdown -> Json.Obj [ ("op", Json.String "shutdown") ]

let payload_to_json = function
  | Paths { prefix; asn; paths } ->
      Json.Obj
        [
          ("prefix", prefix_json prefix);
          ("as", Json.Int asn);
          ( "paths",
            Json.List
              (List.map
                 (fun path ->
                   Json.List
                     (Array.to_list (Array.map (fun n -> Json.Int n) path)))
                 paths) );
        ]
  | Catchment_members { egress; members } ->
      Json.Obj
        [
          ("egress", Json.Int egress);
          ( "catchment",
            Json.List
              (List.map
                 (fun (p, ases) ->
                   Json.Obj
                     [
                       ("prefix", prefix_json p);
                       ("ases", Json.List (List.map (fun a -> Json.Int a) ases));
                     ])
                 members) );
        ]
  | Whatif_summary
      { a; b; half_sessions; prefixes_affected; ases_affected; resume_hits;
        changes } ->
      Json.Obj
        [
          ("a", Json.Int a);
          ("b", Json.Int b);
          ("half_sessions", Json.Int half_sessions);
          ("prefixes_affected", Json.Int prefixes_affected);
          ("ases_affected", Json.Int ases_affected);
          ("resume_hits", Json.Int resume_hits);
          ( "changes",
            Json.List
              (List.map
                 (fun c ->
                   Json.Obj
                     [
                       ("prefix", prefix_json c.wc_prefix);
                       ("changed", Json.Int c.wc_changed);
                       ("lost", Json.Int c.wc_lost);
                     ])
                 changes) );
        ]
  | Pong { prefixes; nodes } ->
      Json.Obj
        [
          ("pong", Json.Bool true);
          ("prefixes", Json.Int prefixes);
          ("nodes", Json.Int nodes);
        ]
  | Reloaded { prefixes; resume_hits; build_s } ->
      Json.Obj
        [
          ("reloaded", Json.Bool true);
          ("prefixes", Json.Int prefixes);
          ("resume_hits", Json.Int resume_hits);
          ("build_s", Json.Float build_s);
        ]
  | Closing -> Json.Obj [ ("closing", Json.Bool true) ]

let response_to_json r =
  match r.result with
  | Ok payload ->
      Json.Obj
        [
          ("ok", Json.Bool true);
          ("elapsed_us", Json.Int r.elapsed_us);
          ("deadline_missed", Json.Bool r.deadline_missed);
          ("result", payload_to_json payload);
        ]
  | Error msg ->
      Json.Obj
        [
          ("ok", Json.Bool false);
          ("elapsed_us", Json.Int r.elapsed_us);
          ("deadline_missed", Json.Bool r.deadline_missed);
          ("error", Json.String msg);
        ]

(* -- decoding -- *)

let ( let* ) = Result.bind

let field name conv json =
  match Option.bind (Json.member name json) conv with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing or malformed field %S" name)

let prefix_of_json name json =
  let* s = field name Json.to_str json in
  match Prefix.of_string s with
  | Some p -> Ok p
  | None -> Error (Printf.sprintf "bad prefix %S" s)

let request_of_json json =
  let* op = field "op" Json.to_str json in
  match op with
  | "path" ->
      let* prefix = prefix_of_json "prefix" json in
      let* asn = field "as" Json.to_int json in
      Ok (Path { prefix; asn })
  | "catchment" ->
      let* egress = field "egress" Json.to_int json in
      let* prefix =
        match Json.member "prefix" json with
        | None | Some Json.Null -> Ok None
        | Some _ -> Result.map Option.some (prefix_of_json "prefix" json)
      in
      Ok (Catchment { egress; prefix })
  | "whatif" ->
      let* a = field "a" Json.to_int json in
      let* b = field "b" Json.to_int json in
      Ok (Whatif { a; b })
  | "ping" -> Ok Ping
  | "reload" -> Ok Reload
  | "shutdown" -> Ok Shutdown
  | other -> Error (Printf.sprintf "unknown op %S" other)

let request_of_string s =
  let* json = Json.of_string s in
  request_of_json json

let request_to_string r = Json.to_string (request_to_json r)

let response_to_string r = Json.to_string (response_to_json r)

(* -- framing: 4-byte big-endian length prefix, then the JSON bytes -- *)

let max_frame = 64 * 1024 * 1024

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame then invalid_arg "Protocol.write_frame: frame too large";
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 (Int32.of_int n);
  let buf = Bytes.cat header (Bytes.of_string payload) in
  let total = Bytes.length buf in
  let rec push off =
    if off < total then
      let written = Unix.write fd buf off (total - off) in
      push (off + written)
  in
  push 0

let read_exactly ?(off = 0) fd buf len =
  let rec pull off =
    if off >= len then true
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> false (* peer closed mid-frame *)
      | n -> pull (off + n)
  in
  pull off

let read_timeout_msg = "read timeout"

let read_frame ?(deadline_ms = 0) fd =
  let header = Bytes.create 4 in
  (* Waiting for a frame to {e start} is keep-alive idleness, not a
     stall: the first header read blocks without a deadline.  Once any
     frame byte has arrived, the socket receive timeout arms for the
     remainder, so a client stalling mid-frame cannot pin a connection
     thread forever. *)
  match Unix.read fd header 0 4 with
  | 0 -> Ok None (* clean close between frames *)
  | got -> (
      let finish () =
        if not (read_exactly ~off:got fd header 4) then Error "truncated frame"
        else
          let n = Int32.to_int (Bytes.get_int32_be header 0) in
          if n < 0 || n > max_frame then
            Error (Printf.sprintf "bad frame length %d" n)
          else
            let buf = Bytes.create n in
            if not (read_exactly fd buf n) then Error "truncated frame"
            else Ok (Some (Bytes.to_string buf))
      in
      let run () =
        if deadline_ms <= 0 then finish ()
        else begin
          Unix.setsockopt_float fd Unix.SO_RCVTIMEO
            (float_of_int deadline_ms /. 1000.);
          Fun.protect
            ~finally:(fun () ->
              try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.
              with Unix.Unix_error _ -> ())
            finish
        end
      in
      try run ()
      with
      | Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ETIMEDOUT), _, _)
      ->
        Error read_timeout_msg)
