type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* -- printing -- *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec add b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (string_of_bool v)
  | Int n -> Buffer.add_string b (string_of_int n)
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Printf.bprintf b "%.1f" f
      else Printf.bprintf b "%.17g" f
  | String s ->
      Buffer.add_char b '"';
      escape b s;
      Buffer.add_char b '"'
  | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          add b v)
        items;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          Buffer.add_char b '"';
          escape b k;
          Buffer.add_string b "\":";
          add b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  add b v;
  Buffer.contents b

(* -- parsing: plain recursive descent over a string cursor -- *)

exception Bad of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Bad (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if
    c.pos + n <= String.length c.src
    && String.sub c.src c.pos n = word
  then (
    c.pos <- c.pos + n;
    value)
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' ->
        advance c;
        Buffer.contents b
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> fail c "unterminated escape"
        | Some e ->
            advance c;
            (match e with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'u' ->
                if c.pos + 4 > String.length c.src then
                  fail c "truncated \\u escape";
                let hex = String.sub c.src c.pos 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail c "bad \\u escape"
                in
                c.pos <- c.pos + 4;
                (* Only ASCII escapes are produced by this codebase;
                   anything above is replaced, not decoded to UTF-8. *)
                if code < 0x80 then Buffer.add_char b (Char.chr code)
                else Buffer.add_char b '?'
            | _ -> fail c "bad escape");
            go ())
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ()

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_num_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail c (Printf.sprintf "bad number %S" s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then (
        advance c;
        Obj [])
      else
        let rec fields acc =
          skip_ws c;
          expect c '"';
          let key = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((key, v) :: acc)
          | Some '}' ->
              advance c;
              Obj (List.rev ((key, v) :: acc))
          | _ -> fail c "expected ',' or '}'"
        in
        fields []
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then (
        advance c;
        List [])
      else
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List (List.rev (v :: acc))
          | _ -> fail c "expected ',' or ']'"
        in
        items []
  | Some '"' ->
      advance c;
      String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some _ -> parse_number c

let of_string s =
  let c = { src = s; pos = 0 } in
  try
    let v = parse_value c in
    skip_ws c;
    if c.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  with
  | Bad msg -> Error msg
  | Failure msg -> Error msg

(* -- accessors -- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int = function Int n -> Some n | _ -> None

let to_str = function String s -> Some s | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_bool = function Bool b -> Some b | _ -> None
