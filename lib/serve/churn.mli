(** Zero-downtime snapshot rebuild-and-swap under churn.

    The serving loop: queries read the current snapshot via one atomic
    load while churn is applied {e off to the side} — the event replay
    (or a plain warm rebuild) runs on the current snapshot's executor
    thread, serialized with in-flight what-if queries, and the
    resulting snapshot is atomically {!Snapshot.publish}ed.  In-flight
    connections keep answering from the snapshot they loaded (its
    caches are immutable; only its executor retires), so a swap drops
    nothing. *)

val apply :
  ?jobs:int ->
  Snapshot.store ->
  Stream.Event.t list ->
  (Stream.Replay.report, string) result
(** Normalize and replay a churn stream against the current snapshot's
    model, reconverging affected prefixes warm from its cached states,
    then publish the post-churn snapshot.  The replay driver resumes
    from the snapshot's persisted state ({!Snapshot.replay}), so churn
    streams compose across calls: a [Session_up] / [Link_restore] /
    [Hijack_end] whose matching down arrived in an earlier [apply]
    still restores it.  Concurrent [apply]/{!reload} callers serialize
    on the store ({!Snapshot.locked}); the later one builds on the
    earlier one's published snapshot, nothing is discarded.  [Error]
    when no snapshot is published or the replay raised mid-stream — in
    that case the denies it had already placed are rolled back and the
    previous snapshot stays published and consistent. *)

val reload :
  ?jobs:int -> Snapshot.store -> (Protocol.payload, string) result
(** Rebuild the current snapshot warm ({!Snapshot.rebuild}) and
    publish the replacement; the [Reloaded] payload reports prefix
    count, warm-resume hits and build seconds.  Counted in the
    [serve.reloads] / [serve.reload_resume_hits] metrics. *)
