(** Minimal JSON values for the query-service wire protocol.

    The repo deliberately has no JSON dependency; the observability
    layer prints JSON by hand.  The wire protocol additionally needs to
    {e read} JSON, so this module pairs a printer with a small
    recursive-descent parser.  Integers stay exact ([Int]); non-integer
    numbers parse as [Float].  [\u] escapes above ASCII are replaced
    with [?] rather than decoded (the protocol never produces them). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no whitespace) rendering with standard escaping. *)

val of_string : string -> (t, string) result
(** Parse one JSON value; trailing non-whitespace is an error. *)

(** {2 Accessors} — each returns [None] on a shape mismatch. *)

val member : string -> t -> t option

val to_int : t -> int option

val to_str : t -> string option

val to_list : t -> t list option

val to_bool : t -> bool option
