module Qrmodel = Asmodel.Qrmodel
module Asgraph = Topology.Asgraph
module Event = Stream.Event
module Replay = Stream.Replay

let reloads_m = Obs.Metrics.counter "serve.reloads"

let reload_resume_m = Obs.Metrics.counter "serve.reload_resume_hits"

(* Both writers run their whole read-modify-publish transaction under
   the store's churn mutex: a concurrent apply/reload pair would
   otherwise both build from the same snapshot's states and the second
   publish would silently discard the first one's applied events. *)

let reload ?jobs store =
  Snapshot.locked store @@ fun () ->
  match Snapshot.current store with
  | None -> Error "no snapshot published"
  | Some snap -> (
      let t0 = Obs.Trace.now_us () in
      let hits0 = Obs.Metrics.find_counter "engine.warm_resume_hits" in
      match Snapshot.exclusive snap (fun () -> Snapshot.rebuild ?jobs snap) with
      | exception exn -> Error (Printexc.to_string exn)
      | next ->
          let resume_hits =
            max 0
              (Obs.Metrics.find_counter "engine.warm_resume_hits" - hits0)
          in
          (* Publish outside the exclusive section: it retires the old
             snapshot's executor, which must not be joined from its own
             thread. *)
          Snapshot.publish store next;
          Obs.Metrics.incr reloads_m;
          Obs.Metrics.incr ~by:resume_hits reload_resume_m;
          Ok
            (Protocol.Reloaded
               {
                 prefixes = List.length (Snapshot.states next);
                 resume_hits;
                 build_s =
                   float_of_int (Obs.Trace.now_us () - t0) /. 1e6;
               }))

let apply ?jobs store events =
  Snapshot.locked store @@ fun () ->
  match Snapshot.current store with
  | None -> Error "no snapshot published"
  | Some snap -> (
      let model = Snapshot.model snap in
      let graph = model.Qrmodel.graph in
      match
        Snapshot.exclusive snap (fun () ->
            let stream, rejects =
              Event.normalize ~known_as:(Asgraph.mem_node graph) events
            in
            (* Resume the replay driver from the published snapshot's
               persisted state, so a down/up (or hijack/hijack-end)
               pair split across apply calls still matches up. *)
            let rp =
              Replay.create ?jobs
                ~states:(Snapshot.states snap)
                ?resume:(Snapshot.replay snap) model
            in
            match
              List.iter (fun ev -> ignore (Replay.apply rp ev)) stream;
              ignore (Replay.retry_quarantined rp);
              Replay.report rp ~rejected:(List.length rejects)
            with
            | report ->
                ( Snapshot.of_states ~replay:(Replay.persist rp) model
                    (Replay.states rp),
                  report )
            | exception exn ->
                (* The old snapshot stays published: undo the denies
                   this replay already placed on the shared net so it
                   keeps matching the published caches. *)
                Replay.rollback_net rp;
                raise exn)
      with
      | exception exn -> Error (Printexc.to_string exn)
      | next, report ->
          Snapshot.publish store next;
          Obs.Metrics.incr reloads_m;
          Ok report)
