(** The query evaluator: answers protocol requests against a frozen
    {!Snapshot}.

    Path and catchment queries only read the cached converged states.
    What-if queries re-converge every prefix {e warm} from the cached
    states ([Engine.simulate ?from]) after denying the link, then
    restore the network exactly; the whole mutate/simulate/revert
    sequence runs on the snapshot's executor thread.

    Metrics: [serve.queries], [serve.deadline_misses],
    [serve.latency_us] (histogram), [serve.whatif_resume_hits] (warm
    resumes actually used by what-if deltas). *)

val eval :
  ?jobs:int ->
  Snapshot.t ->
  Protocol.request ->
  (Protocol.payload, string) result
(** Evaluate one request.  [jobs] bounds the pool workers of a what-if
    re-convergence batch (default {!Simulator.Runtime.jobs}). *)

val eval_timed :
  ?jobs:int ->
  ?deadline_ms:int ->
  Snapshot.t ->
  Protocol.request ->
  Protocol.response
(** {!eval} wrapped with latency measurement, deadline accounting
    ([deadline_ms] defaults to {!Simulator.Runtime.deadline_ms}; [0]
    disables) and the serve metrics.  Exceptions become [Error]
    responses. *)

val run_batch :
  ?jobs:int ->
  ?deadline_ms:int ->
  Snapshot.t ->
  Protocol.request list ->
  Protocol.response list
(** Evaluate a batch, results in request order.  Read-only queries fan
    out over {!Simulator.Pool}; what-if queries run sequentially after
    the parallel phase (mutation must never overlap a pool batch). *)
