(** Wire front-end: length-prefixed JSON frames over a Unix-domain
    socket (the default) or loopback TCP.

    One accept loop; one systhread per connection (systhreads share the
    accepting domain — simulation parallelism lives in the {!Simulator.Pool},
    not here).  Each request frame is answered with exactly one
    response frame.  A [shutdown] request is answered, then the
    listening socket closes; established connections drain.

    Hardening: the accept loop retries transient failures (EINTR,
    ECONNABORTED immediately; EMFILE/ENFILE with exponential backoff —
    [serve.accept_retries] counts them); with a deadline configured,
    a peer stalling mid-frame is timed out after [deadline_ms]
    ([serve.read_timeouts]) and hung up on.  A [reload] request
    rebuilds the snapshot warm and atomically swaps it in
    ({!Churn.reload}); queries racing the swap retry once against the
    fresh snapshot, so a reload drops no connections. *)

type listen = Unix_path of string | Tcp of int
(** TCP binds to loopback only: the service is a local sidecar, not an
    Internet-facing daemon. *)

type t

val start : ?deadline_ms:int -> store:Snapshot.store -> listen -> t
(** Bind, listen and return immediately; connections are served on
    background threads against whatever snapshot {!Snapshot.current}
    returns at request time (queries before the first {!Snapshot.publish}
    get an error response).  [deadline_ms] overrides
    {!Simulator.Runtime.deadline_ms} for every query and doubles as
    the per-connection mid-frame read timeout.  A pre-existing
    Unix socket path is replaced. *)

val wait : t -> unit
(** Block until the server stops (a [shutdown] request or {!stop}),
    then join the connection threads. *)

val stop : t -> unit
(** Close the listening socket (idempotent); unlinks the Unix path. *)

(** {2 Client} *)

type conn

val connect : listen -> (conn, string) result

val request : conn -> Protocol.request -> (Json.t, string) result
(** Send one request frame, read one response frame, parse the JSON. *)

val close_conn : conn -> unit
