type listen = Unix_path of string | Tcp of int

let connections_m = Obs.Metrics.counter "serve.connections"

let accept_retries_m = Obs.Metrics.counter "serve.accept_retries"

let read_timeouts_m = Obs.Metrics.counter "serve.read_timeouts"

let contains haystack needle =
  let hn = String.length haystack and nn = String.length needle in
  let rec at i =
    i + nn <= hn && (String.sub haystack i nn = needle || at (i + 1))
  in
  nn = 0 || at 0

let sockaddr_of = function
  | Unix_path path -> Unix.ADDR_UNIX path
  | Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

type t = {
  listen : listen;
  fd : Unix.file_descr;
  store : Snapshot.store;
  deadline_ms : int option;
  stopping : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  conn_mu : Mutex.t;
  mutable conn_threads : Thread.t list;
}

let stop srv =
  if not (Atomic.exchange srv.stopping true) then begin
    (* close alone does not wake a thread blocked in accept(2); shutdown
       does (the accepter gets EINVAL). *)
    (try Unix.shutdown srv.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close srv.fd with Unix.Unix_error _ -> ());
    match srv.listen with
    | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end

let handle_connection srv client =
  Obs.Metrics.incr connections_m;
  let respond resp =
    Protocol.write_frame client (Protocol.response_to_string resp)
  in
  let error_response msg =
    { Protocol.result = Error msg; elapsed_us = 0; deadline_missed = false }
  in
  let eval req =
    (* A query can race a churn-triggered rebuild-and-swap: the snapshot
       it loaded retires between [current] and its exclusive section.
       Re-loading the store and retrying once suffices — the freshly
       published snapshot is live, and a second loss means reloads are
       arriving faster than queries, which deserves the honest error. *)
    let rec go retries =
      match Snapshot.current srv.store with
      | None -> error_response "no snapshot published"
      | Some snap -> (
          let resp = Query.eval_timed ?deadline_ms:srv.deadline_ms snap req in
          match resp.Protocol.result with
          | Error msg when retries > 0 && contains msg "snapshot is retired" ->
              go (retries - 1)
          | _ -> resp)
    in
    go 1
  in
  let reload () =
    let start = Obs.Trace.now_us () in
    let result = Churn.reload srv.store in
    { Protocol.result; elapsed_us = Obs.Trace.now_us () - start;
      deadline_missed = false }
  in
  let rec loop () =
    match Protocol.read_frame ?deadline_ms:srv.deadline_ms client with
    | Ok None -> ()
    | Error msg ->
        (* A framing error (or mid-frame stall) poisons the stream:
           answer and hang up. *)
        if msg = Protocol.read_timeout_msg then
          Obs.Metrics.incr read_timeouts_m;
        (try respond (error_response msg) with _ -> ())
    | Ok (Some payload) -> (
        match Protocol.request_of_string payload with
        | Error msg ->
            respond (error_response msg);
            loop ()
        | Ok Protocol.Reload ->
            respond (reload ());
            loop ()
        | Ok req -> (
            let resp = eval req in
            respond resp;
            match (req, resp.Protocol.result) with
            | Protocol.Shutdown, Ok _ -> stop srv
            | _ -> loop ()))
  in
  (try loop () with _ -> ());
  try Unix.close client with Unix.Unix_error _ -> ()

let accept_loop srv () =
  (* Transient accept(2) failures must not kill the listener: EINTR and
     ECONNABORTED retry immediately, fd exhaustion (EMFILE/ENFILE)
     backs off exponentially until connections drain.  Any other error
     means the socket is gone (stop closed it): exit. *)
  let rec go backoff =
    if not (Atomic.get srv.stopping) then
      match Unix.accept srv.fd with
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          Obs.Metrics.incr accept_retries_m;
          go backoff
      | exception Unix.Unix_error ((Unix.EMFILE | Unix.ENFILE), _, _) ->
          Obs.Metrics.incr accept_retries_m;
          Thread.delay backoff;
          go (Float.min (backoff *. 2.) 1.0)
      | exception Unix.Unix_error _ -> () (* closed by stop *)
      | client, _addr ->
          let th = Thread.create (handle_connection srv) client in
          Mutex.protect srv.conn_mu (fun () ->
              srv.conn_threads <- th :: srv.conn_threads);
          go 0.01
  in
  go 0.01

let start ?deadline_ms ~store listen =
  (* A client that disconnects before its response is written must
     surface as EPIPE on that connection's write, not as a SIGPIPE that
     kills the whole process — per-connection exception handlers cannot
     catch a signal. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let fd =
    Unix.socket
      (match listen with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET)
      Unix.SOCK_STREAM 0
  in
  (match listen with
  | Unix_path path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd (sockaddr_of listen);
  Unix.listen fd 64;
  let srv =
    {
      listen;
      fd;
      store;
      deadline_ms;
      stopping = Atomic.make false;
      accept_thread = None;
      conn_mu = Mutex.create ();
      conn_threads = [];
    }
  in
  srv.accept_thread <- Some (Thread.create (accept_loop srv) ());
  srv

let wait srv =
  (match srv.accept_thread with Some t -> Thread.join t | None -> ());
  let threads =
    Mutex.protect srv.conn_mu (fun () ->
        let ts = srv.conn_threads in
        srv.conn_threads <- [];
        ts)
  in
  List.iter Thread.join threads

(* -- client -- *)

type conn = Unix.file_descr

let connect listen =
  let fd =
    Unix.socket
      (match listen with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET)
      Unix.SOCK_STREAM 0
  in
  match Unix.connect fd (sockaddr_of listen) with
  | () -> Ok fd
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message err)

let request conn req =
  match Protocol.write_frame conn (Protocol.request_to_string req) with
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | () -> (
      match Protocol.read_frame conn with
      | Error msg -> Error msg
      | Ok None -> Error "connection closed"
      | Ok (Some payload) -> Json.of_string payload)

let close_conn conn = try Unix.close conn with Unix.Unix_error _ -> ()
