type listen = Unix_path of string | Tcp of int

let connections_m = Obs.Metrics.counter "serve.connections"

let sockaddr_of = function
  | Unix_path path -> Unix.ADDR_UNIX path
  | Tcp port -> Unix.ADDR_INET (Unix.inet_addr_loopback, port)

type t = {
  listen : listen;
  fd : Unix.file_descr;
  store : Snapshot.store;
  deadline_ms : int option;
  stopping : bool Atomic.t;
  mutable accept_thread : Thread.t option;
  conn_mu : Mutex.t;
  mutable conn_threads : Thread.t list;
}

let stop srv =
  if not (Atomic.exchange srv.stopping true) then begin
    (* close alone does not wake a thread blocked in accept(2); shutdown
       does (the accepter gets EINVAL). *)
    (try Unix.shutdown srv.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (try Unix.close srv.fd with Unix.Unix_error _ -> ());
    match srv.listen with
    | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp _ -> ()
  end

let handle_connection srv client =
  Obs.Metrics.incr connections_m;
  let respond resp =
    Protocol.write_frame client (Protocol.response_to_string resp)
  in
  let error_response msg =
    { Protocol.result = Error msg; elapsed_us = 0; deadline_missed = false }
  in
  let rec loop () =
    match Protocol.read_frame client with
    | Ok None -> ()
    | Error msg ->
        (* A framing error poisons the stream: answer and hang up. *)
        (try respond (error_response msg) with _ -> ())
    | Ok (Some payload) -> (
        match Protocol.request_of_string payload with
        | Error msg ->
            respond (error_response msg);
            loop ()
        | Ok req -> (
            match Snapshot.current srv.store with
            | None ->
                respond (error_response "no snapshot published");
                loop ()
            | Some snap ->
                let resp =
                  Query.eval_timed ?deadline_ms:srv.deadline_ms snap req
                in
                respond resp;
                if req = Protocol.Shutdown then stop srv else loop ()))
  in
  (try loop () with _ -> ());
  try Unix.close client with Unix.Unix_error _ -> ()

let accept_loop srv () =
  let rec go () =
    match Unix.accept srv.fd with
    | exception Unix.Unix_error _ -> () (* closed by stop *)
    | client, _addr ->
        let th = Thread.create (handle_connection srv) client in
        Mutex.protect srv.conn_mu (fun () ->
            srv.conn_threads <- th :: srv.conn_threads);
        go ()
  in
  go ()

let start ?deadline_ms ~store listen =
  let fd =
    Unix.socket
      (match listen with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET)
      Unix.SOCK_STREAM 0
  in
  (match listen with
  | Unix_path path -> (
      try Unix.unlink path with Unix.Unix_error _ -> ())
  | Tcp _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true);
  Unix.bind fd (sockaddr_of listen);
  Unix.listen fd 64;
  let srv =
    {
      listen;
      fd;
      store;
      deadline_ms;
      stopping = Atomic.make false;
      accept_thread = None;
      conn_mu = Mutex.create ();
      conn_threads = [];
    }
  in
  srv.accept_thread <- Some (Thread.create (accept_loop srv) ());
  srv

let wait srv =
  (match srv.accept_thread with Some t -> Thread.join t | None -> ());
  let threads =
    Mutex.protect srv.conn_mu (fun () ->
        let ts = srv.conn_threads in
        srv.conn_threads <- [];
        ts)
  in
  List.iter Thread.join threads

(* -- client -- *)

type conn = Unix.file_descr

let connect listen =
  let fd =
    Unix.socket
      (match listen with Unix_path _ -> Unix.PF_UNIX | Tcp _ -> Unix.PF_INET)
      Unix.SOCK_STREAM 0
  in
  match Unix.connect fd (sockaddr_of listen) with
  | () -> Ok fd
  | exception Unix.Unix_error (err, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message err)

let request conn req =
  match Protocol.write_frame conn (Protocol.request_to_string req) with
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | () -> (
      match Protocol.read_frame conn with
      | Error msg -> Error msg
      | Ok None -> Error "connection closed"
      | Ok (Some payload) -> Json.of_string payload)

let close_conn conn = try Unix.close conn with Unix.Unix_error _ -> ()
