open Bgp
module Decision = Simulator.Decision
module Qrmodel = Asmodel.Qrmodel

type breakdown = {
  cases : int;
  agree : int;
  not_available : int;
  by_step : (Decision.step * int) list;
}

(* Match-grade tallies, flushed once per grade call. *)
let cases_m = Obs.Metrics.counter "agreement.cases"

let agree_m = Obs.Metrics.counter "agreement.agree"

let not_available_m = Obs.Metrics.counter "agreement.not_available"

let grade model ~states data =
  Obs.Trace.with_span "agreement.grade" @@ fun () ->
  let net = model.Qrmodel.net in
  let steps = Simulator.Net.decision_steps net in
  let counts = Hashtbl.create 8 in
  let bump step =
    Hashtbl.replace counts step
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts step))
  in
  let cases = ref 0 and agree = ref 0 and not_available = ref 0 in
  List.iter
    (fun (e : Rib.entry) ->
      match Hashtbl.find_opt states e.Rib.prefix with
      | None -> ()
      | Some st -> (
          incr cases;
          match Refine.Matching.classify net st e.Rib.path with
          | Refine.Matching.Rib_out -> incr agree
          | Refine.Matching.No_rib_in -> incr not_available
          | Refine.Matching.Potential_rib_out | Refine.Matching.Rib_in -> (
              match Refine.Matching.eliminated_at net st e.Rib.path with
              | Some step -> bump step
              | None -> incr not_available)))
    (Rib.entries data);
  Obs.Metrics.incr ~by:!cases cases_m;
  Obs.Metrics.incr ~by:!agree agree_m;
  Obs.Metrics.incr ~by:!not_available not_available_m;
  {
    cases = !cases;
    agree = !agree;
    not_available = !not_available;
    by_step =
      List.filter_map
        (fun step ->
          match Hashtbl.find_opt counts step with
          | Some n -> Some (step, n)
          | None -> None)
        steps;
  }

let simulate_and_grade ?on_prefix model data =
  let states = Hashtbl.create 256 in
  let prefixes =
    List.filter
      (fun p -> Qrmodel.origin_of model p <> None)
      (Rib.prefixes data)
  in
  let total = List.length prefixes in
  List.iteri
    (fun i p ->
      Hashtbl.replace states p (Qrmodel.simulate model p);
      match on_prefix with Some f -> f (i + 1) total | None -> ())
    prefixes;
  grade model ~states data

let agree_fraction b =
  if b.cases = 0 then 0.0 else float_of_int b.agree /. float_of_int b.cases

let pp ppf b =
  let pct n =
    if b.cases = 0 then 0.0 else 100.0 *. float_of_int n /. float_of_int b.cases
  in
  Format.fprintf ppf "@[<v>AS-paths which agree: %6.1f%%@," (pct b.agree);
  Format.fprintf ppf "AS-paths which disagree: %6.1f%%@,"
    (pct (b.cases - b.agree));
  Format.fprintf ppf "  due to AS-path not available: %6.1f%%@,"
    (pct b.not_available);
  List.iter
    (fun (step, n) ->
      Format.fprintf ppf "  due to %-24s %6.1f%%@,"
        (Decision.step_to_string step ^ ":")
        (pct n))
    b.by_step;
  Format.fprintf ppf "(%d cases)@]" b.cases
