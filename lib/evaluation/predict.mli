(** Prediction quality on held-out data (paper §4.2, §5).

    Grades every (prefix, observed path) of a validation set against a
    refined model: exact RIB-Out match, potential RIB-Out (lost only in
    the final tie-break), RIB-In (received but out-ranked earlier), or
    absent.  Also reports the paper's per-prefix coverage counters: for
    how many prefixes the model RIB-Out-matches at least 50% / 90% /
    100% of their distinct observed AS-paths. *)

open Bgp

type totals = {
  cases : int;
  rib_out : int;
  potential_rib_out : int;
  rib_in : int;
  no_rib_in : int;
  unresolved : int;
      (** cases whose prefix has no converged simulation — the engine
          returned {!Simulator.Engine.Truncated} or [Diverged], or the
          simulation failed even after the pool's retry.  An explicit
          "the model could not answer", never mixed into the mismatch
          buckets (and excluded from the RIB-In upper bound). *)
}

type coverage = {
  prefixes : int;  (** prefixes with at least one graded path *)
  at_least_half : int;
  at_least_90 : int;
  full : int;
}

type report = {
  totals : totals;
  coverage : coverage;
  pool : Simulator.Pool.stats;
      (** the batch that simulated the missing prefix states (zero
          prefixes when everything was cached). *)
}

val evaluate :
  ?jobs:int ->
  Asmodel.Qrmodel.t ->
  states:(Prefix.t, Simulator.Engine.state) Hashtbl.t ->
  Rib.t ->
  report
(** Grade against pre-computed states; prefixes without a state are
    first simulated in one parallel batch ([jobs] workers, default
    {!Simulator.Pool.default_jobs}) and memoized into [states].  The
    report is identical for every job count. *)

val down_to_tie_break_fraction : report -> float
(** (RIB-Out + potential RIB-Out) / cases — the paper's ">80% of test
    cases match down to the final tie-break" headline metric. *)

val exact_fraction : report -> float

val rib_in_fraction : report -> float
(** (everything except {!totals.no_rib_in}) / cases — the upper bound on
    achievable prediction. *)

val pp : Format.formatter -> report -> unit
