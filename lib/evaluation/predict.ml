open Bgp
module Qrmodel = Asmodel.Qrmodel
module Matching = Refine.Matching

type totals = {
  cases : int;
  rib_out : int;
  potential_rib_out : int;
  rib_in : int;
  no_rib_in : int;
  unresolved : int;
}

type coverage = {
  prefixes : int;
  at_least_half : int;
  at_least_90 : int;
  full : int;
}

type report = { totals : totals; coverage : coverage; pool : Simulator.Pool.stats }

(* Match-grade tallies (metrics registry).  Flushed once per evaluate
   call from the computed totals, so they always agree with the
   report. *)
let cases_m = Obs.Metrics.counter "predict.cases"

let rib_out_m = Obs.Metrics.counter "predict.rib_out"

let potential_m = Obs.Metrics.counter "predict.potential_rib_out"

let rib_in_m = Obs.Metrics.counter "predict.rib_in"

let no_rib_in_m = Obs.Metrics.counter "predict.no_rib_in"

let unresolved_m = Obs.Metrics.counter "predict.unresolved"

let evaluate ?jobs model ~states data =
  Obs.Trace.with_span "predict.evaluate" @@ fun () ->
  let net = model.Qrmodel.net in
  (* Batch phase: every prefix that will be graded but has no cached
     state yet is simulated up front, fanned out over the domain pool.
     Classification below then runs entirely against the cache. *)
  let missing =
    let seen = Hashtbl.create 256 in
    List.filter_map
      (fun (e : Rib.entry) ->
        let p = e.Rib.prefix in
        if Hashtbl.mem seen p then None
        else begin
          Hashtbl.add seen p ();
          match Hashtbl.find_opt states p with
          | Some _ -> None
          | None -> (
              match Qrmodel.origin_of model p with
              | None -> None
              | Some _ -> Some p)
        end)
      (Rib.entries data)
  in
  let pairs, pool =
    Simulator.Pool.simulate_result ?jobs ~sim:(Qrmodel.simulate model) missing
  in
  (* Prefixes without a trustworthy converged state: their cases are
     graded [unresolved] below — an explicit "the model could not
     answer", never a false mismatch. *)
  let unresolved_pfx : (Prefix.t, unit) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (p, r) ->
      match r with
      | Ok st -> Hashtbl.replace states p st
      | Error e ->
          Hashtbl.replace unresolved_pfx p ();
          Logs.warn (fun m ->
              m "predict: simulation of prefix %a failed: %a" Prefix.pp p
                Simulator.Pool.pp_task_error e))
    pairs;
  let state_of p =
    match Hashtbl.find_opt states p with
    | Some st -> Some st
    | None -> (
        match Qrmodel.origin_of model p with
        | None -> None
        | Some _ ->
            let st = Qrmodel.simulate model p in
            Hashtbl.replace states p st;
            Some st)
  in
  let totals =
    ref
      {
        cases = 0;
        rib_out = 0;
        potential_rib_out = 0;
        rib_in = 0;
        no_rib_in = 0;
        unresolved = 0;
      }
  in
  (* Distinct paths per prefix with their verdicts, for coverage. *)
  let per_prefix : (Prefix.t, (Aspath.t * bool) list ref) Hashtbl.t =
    Hashtbl.create 256
  in
  let seen : (Prefix.t * Aspath.t, Matching.verdict) Hashtbl.t =
    Hashtbl.create 4096
  in
  List.iter
    (fun (e : Rib.entry) ->
      let p = e.Rib.prefix in
      let unresolved =
        Hashtbl.mem unresolved_pfx p
        ||
        match state_of p with
        | Some st when not (Simulator.Engine.converged st) ->
            (* A truncated or diverged simulation answers nothing about
               this path; grading against its partial RIBs would report
               false mismatches. *)
            Hashtbl.replace unresolved_pfx p ();
            true
        | Some _ | None -> false
      in
      if unresolved then
        totals :=
          {
            !totals with
            cases = !totals.cases + 1;
            unresolved = !totals.unresolved + 1;
          }
      else
        let key = (e.Rib.prefix, e.Rib.path) in
        let verdict =
          match Hashtbl.find_opt seen key with
          | Some v -> Some v
          | None -> (
              match state_of e.Rib.prefix with
              | None -> None
              | Some st ->
                  let v = Matching.classify net st e.Rib.path in
                  Hashtbl.add seen key v;
                  let l =
                    match Hashtbl.find_opt per_prefix e.Rib.prefix with
                    | Some l -> l
                    | None ->
                        let l = ref [] in
                        Hashtbl.add per_prefix e.Rib.prefix l;
                        l
                  in
                  l := (e.Rib.path, v = Matching.Rib_out) :: !l;
                  Some v)
        in
        match verdict with
        | None -> ()
        | Some v ->
            let t = !totals in
            totals :=
              {
                t with
                cases = t.cases + 1;
                rib_out = (t.rib_out + if v = Matching.Rib_out then 1 else 0);
                potential_rib_out =
                  (t.potential_rib_out
                  + if v = Matching.Potential_rib_out then 1 else 0);
                rib_in = (t.rib_in + if v = Matching.Rib_in then 1 else 0);
                no_rib_in =
                  (t.no_rib_in + if v = Matching.No_rib_in then 1 else 0);
              })
    (Rib.entries data);
  let coverage =
    Hashtbl.fold
      (fun _ l acc ->
        let n = List.length !l in
        let matched = List.length (List.filter snd !l) in
        let frac = float_of_int matched /. float_of_int n in
        {
          prefixes = acc.prefixes + 1;
          at_least_half = (acc.at_least_half + if frac >= 0.5 then 1 else 0);
          at_least_90 = (acc.at_least_90 + if frac >= 0.9 then 1 else 0);
          full = (acc.full + if matched = n then 1 else 0);
        })
      per_prefix
      { prefixes = 0; at_least_half = 0; at_least_90 = 0; full = 0 }
  in
  let t = !totals in
  Obs.Metrics.incr ~by:t.cases cases_m;
  Obs.Metrics.incr ~by:t.rib_out rib_out_m;
  Obs.Metrics.incr ~by:t.potential_rib_out potential_m;
  Obs.Metrics.incr ~by:t.rib_in rib_in_m;
  Obs.Metrics.incr ~by:t.no_rib_in no_rib_in_m;
  Obs.Metrics.incr ~by:t.unresolved unresolved_m;
  { totals = t; coverage; pool }

let frac n report =
  if report.totals.cases = 0 then 0.0
  else float_of_int n /. float_of_int report.totals.cases

let down_to_tie_break_fraction r =
  frac (r.totals.rib_out + r.totals.potential_rib_out) r

let exact_fraction r = frac r.totals.rib_out r

let rib_in_fraction r =
  frac (r.totals.cases - r.totals.no_rib_in - r.totals.unresolved) r

let pp ppf r =
  let t = r.totals in
  let pct n = 100.0 *. frac n r in
  Format.fprintf ppf
    "@[<v>graded cases:            %d@,\
     RIB-Out match (exact):   %6.1f%%@,\
     potential RIB-Out:       %6.1f%%@,\
     down to final tie-break: %6.1f%%@,\
     RIB-In upper bound:      %6.1f%%@,\
     no RIB-In:               %6.1f%%@,"
    t.cases (pct t.rib_out) (pct t.potential_rib_out)
    (pct (t.rib_out + t.potential_rib_out))
    (pct (t.cases - t.no_rib_in - t.unresolved))
    (pct t.no_rib_in);
  if t.unresolved > 0 then
    Format.fprintf ppf "unresolved (no converged sim): %6.1f%%@,"
      (pct t.unresolved);
  let c = r.coverage in
  let cpct n =
    if c.prefixes = 0 then 0.0
    else 100.0 *. float_of_int n /. float_of_int c.prefixes
  in
  Format.fprintf ppf
    "prefixes with >=50%% of paths matched: %5.1f%%@,\
     prefixes with >=90%% of paths matched: %5.1f%%@,\
     prefixes with all paths matched:      %5.1f%%  (%d prefixes)"
    (cpct c.at_least_half) (cpct c.at_least_90) (cpct c.full) c.prefixes;
  if r.pool.Simulator.Pool.prefixes > 0 then
    Format.fprintf ppf "@,simulation: %a" Simulator.Pool.pp_stats r.pool;
  Format.fprintf ppf "@]"
