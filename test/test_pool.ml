(* Tests for the Domain work pool: order preservation, jobs-count
   determinism of the refiner and the evaluator, and budget-truncation
   accounting. *)

open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine
module Pool = Simulator.Pool
module Qrmodel = Asmodel.Qrmodel
module Refiner = Refine.Refiner

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let map_preserves_order () =
  let input = List.init 257 (fun i -> i) in
  let f x = (x * 7) - 3 in
  let expected = List.map f input in
  List.iter
    (fun jobs ->
      check_bool
        (Printf.sprintf "map at %d jobs = List.map" jobs)
        true
        (Pool.map ~jobs f input = expected))
    [ 1; 2; 4; 13 ];
  check_bool "empty list" true (Pool.map ~jobs:4 f [] = []);
  check_bool "more jobs than items" true
    (Pool.map ~jobs:16 f [ 1; 2; 3 ] = List.map f [ 1; 2; 3 ])

let map_propagates_exceptions () =
  let f x = if x = 42 then failwith "boom" else x in
  check_bool "raises" true
    (try
       ignore (Pool.map ~jobs:4 f (List.init 100 (fun i -> i)));
       false
     with Failure msg -> msg = "boom")

let stats_merge () =
  let a =
    { Pool.jobs = 4; prefixes = 3; events = 10; non_converged = 1;
      diverged = 1; retried = 2; failed = 1; wall = 0.5 }
  in
  let b =
    { Pool.jobs = 2; prefixes = 2; events = 7; non_converged = 0;
      diverged = 0; retried = 1; failed = 0; wall = 0.25 }
  in
  let m = Pool.merge a b in
  check_int "jobs is max" 4 m.Pool.jobs;
  check_int "prefixes sum" 5 m.Pool.prefixes;
  check_int "events sum" 17 m.Pool.events;
  check_int "non-converged sum" 1 m.Pool.non_converged;
  check_int "diverged sum" 1 m.Pool.diverged;
  check_int "retried sum" 3 m.Pool.retried;
  check_int "failed sum" 1 m.Pool.failed;
  check_bool "wall sums" true (abs_float (m.Pool.wall -. 0.75) < 1e-9)

(* A line network 1-2-3 whose far end originates each prefix; with a
   one-event budget every simulation is truncated. *)
let truncation_counted () =
  let net = Net.create () in
  let n1 = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let n2 = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let n3 = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  ignore (Net.connect net n1 n2);
  ignore (Net.connect net n2 n3);
  let prefixes = List.init 5 (fun i -> Asn.origin_prefix (10 + i)) in
  let sim prefix = Engine.simulate ~max_events:1 net ~prefix ~originators:[ n3 ] in
  let pairs, stats = Pool.simulate ~jobs:2 ~sim prefixes in
  check_int "all prefixes simulated" 5 stats.Pool.prefixes;
  check_int "every state truncated" 5 stats.Pool.non_converged;
  check_bool "states flagged" true
    (List.for_all (fun (_, st) -> not (Engine.converged st)) pairs);
  check_bool "events accounted" true (stats.Pool.events >= 5);
  (* And with a generous budget nothing is truncated. *)
  let _, ok = Pool.simulate ~jobs:2 ~sim:(fun prefix ->
      Engine.simulate net ~prefix ~originators:[ n3 ]) prefixes in
  check_int "no truncation" 0 ok.Pool.non_converged

(* Jobs-count determinism: the whole train-and-evaluate pipeline must
   produce identical results at jobs = 1 and jobs = 4.  Pool stats are
   compared except for [jobs] and the wall time. *)
let same_batch (a : Pool.stats) (b : Pool.stats) =
  a.Pool.prefixes = b.Pool.prefixes
  && a.Pool.events = b.Pool.events
  && a.Pool.non_converged = b.Pool.non_converged

let same_iter (a : Refiner.iter_stat) (b : Refiner.iter_stat) =
  a.Refiner.iteration = b.Refiner.iteration
  && a.Refiner.matched = b.Refiner.matched
  && a.Refiner.total = b.Refiner.total
  && a.Refiner.filters_added = b.Refiner.filters_added
  && a.Refiner.med_rules_added = b.Refiner.med_rules_added
  && a.Refiner.duplications = b.Refiner.duplications
  && a.Refiner.filter_deletions = b.Refiner.filter_deletions
  && a.Refiner.prefixes_changed = b.Refiner.prefixes_changed
  && same_batch a.Refiner.pool b.Refiner.pool

let jobs_determinism () =
  let conf = { Netgen.Conf.tiny with Netgen.Conf.seed = 23 } in
  let world = Netgen.Groundtruth.build conf in
  let data = Netgen.Groundtruth.observe world in
  let prepared = Core.prepare data in
  let splits = Core.split ~seed:5 prepared in
  let run jobs =
    let options = { Refiner.default_options with jobs = Some jobs } in
    let result =
      Core.build ~options prepared ~training:splits.Evaluation.Split.training
    in
    let report =
      Evaluation.Predict.evaluate ~jobs result.Refiner.model
        ~states:(Hashtbl.create 64) splits.Evaluation.Split.validation
    in
    (result, report)
  in
  let r1, e1 = run 1 in
  let r4, e4 = run 4 in
  check_int "iterations equal" r1.Refiner.iterations r4.Refiner.iterations;
  check_int "matched equal" r1.Refiner.matched r4.Refiner.matched;
  check_int "total equal" r1.Refiner.total r4.Refiner.total;
  check_bool "converged equal" true (r1.Refiner.converged = r4.Refiner.converged);
  check_int "unstable equal" r1.Refiner.unstable_prefixes r4.Refiner.unstable_prefixes;
  check_bool "history identical" true
    (List.length r1.Refiner.history = List.length r4.Refiner.history
    && List.for_all2 same_iter r1.Refiner.history r4.Refiner.history);
  check_bool "cumulative pool stats identical" true
    (same_batch r1.Refiner.pool r4.Refiner.pool);
  check_int "same node count"
    (Net.node_count r1.Refiner.model.Qrmodel.net)
    (Net.node_count r4.Refiner.model.Qrmodel.net);
  check_bool "same policy counts" true
    (Net.count_policies r1.Refiner.model.Qrmodel.net
    = Net.count_policies r4.Refiner.model.Qrmodel.net);
  check_bool "evaluation totals identical" true
    (e1.Evaluation.Predict.totals = e4.Evaluation.Predict.totals);
  check_bool "evaluation coverage identical" true
    (e1.Evaluation.Predict.coverage = e4.Evaluation.Predict.coverage);
  check_bool "evaluation batches identical" true
    (same_batch e1.Evaluation.Predict.pool e4.Evaluation.Predict.pool)

let default_jobs_knob () =
  let before = Pool.default_jobs () in
  Pool.set_default_jobs 3;
  check_int "override wins" 3 (Pool.default_jobs ());
  Pool.set_default_jobs 0;
  check_int "clamped to 1" 1 (Pool.default_jobs ());
  Pool.set_default_jobs before;
  check_int "restored" before (Pool.default_jobs ())

let suite =
  [
    Alcotest.test_case "map preserves order" `Quick map_preserves_order;
    Alcotest.test_case "map propagates exceptions" `Quick map_propagates_exceptions;
    Alcotest.test_case "stats merge" `Quick stats_merge;
    Alcotest.test_case "budget truncation counted" `Quick truncation_counted;
    Alcotest.test_case "jobs=1 vs jobs=4 determinism" `Quick jobs_determinism;
    Alcotest.test_case "default-jobs knob" `Quick default_jobs_knob;
  ]
