(* Scale-path coverage: deterministic large-world generation, the
   sized-conf guard rails, and QCheck equality of the flat-slab engine
   against the frozen reference implementation (cold and warm). *)

module Net = Simulator.Net
module Engine = Simulator.Engine
module Engine_reference = Simulator.Engine_reference
module Rattr = Simulator.Rattr

let build_sized ~ases ~seed =
  Netgen.Groundtruth.build
    { (Netgen.Conf.sized ases) with Netgen.Conf.seed = seed }

(* Same seed, same conf ⇒ byte-for-byte the same world: structure
   fingerprint and prefix plan both match across two independent
   builds.  This is what lets BENCH.json SCALE numbers and the CI gate
   talk about "the" 5k world. *)
let test_sized_deterministic () =
  let ases = 5000 in
  let w1 = build_sized ~ases ~seed:42 in
  let w2 = build_sized ~ases ~seed:42 in
  let fp1 = Net.structure_fingerprint w1.Netgen.Groundtruth.net in
  let fp2 = Net.structure_fingerprint w2.Netgen.Groundtruth.net in
  Alcotest.(check bool) "same structure fingerprint" true (fp1 = fp2);
  Alcotest.(check bool)
    "same prefix plan" true
    (w1.Netgen.Groundtruth.prefix_plan = w2.Netgen.Groundtruth.prefix_plan);
  (* Paper-shaped scaling: ~2 routers per AS, prefix universe bounded
     but at least one prefix per originating AS tier. *)
  let nodes = Net.node_count w1.Netgen.Groundtruth.net in
  Alcotest.(check bool)
    "node count is ASes..3*ASes" true
    (nodes >= ases && nodes <= 3 * ases);
  Alcotest.(check bool)
    "plan has thousands of prefixes" true
    (List.length w1.Netgen.Groundtruth.prefix_plan >= ases / 2)

let test_sized_rejects_small () =
  Alcotest.check_raises "below 50 ASes"
    (Invalid_argument "Conf.sized: need at least 50 ASes") (fun () ->
      ignore (Netgen.Conf.sized 49))

(* The flat engine must be observationally identical to the frozen
   reference on arbitrary generated worlds: same fingerprints, same
   event counts, same outcomes — cold, and warm across a policy
   change.  Seeds vary the whole world (topology, policies, MED noise,
   route reflection), not just the traffic. *)
let arb_world_seed =
  QCheck.make ~print:(Printf.sprintf "netgen seed %d")
    QCheck.Gen.(int_bound 10_000)

let prop_flat_matches_reference =
  QCheck.Test.make ~name:"flat engine = reference engine (cold + warm)"
    ~count:15 arb_world_seed (fun seed ->
      let conf = { Netgen.Conf.tiny with Netgen.Conf.seed = seed } in
      let world = Netgen.Groundtruth.build conf in
      let net = world.Netgen.Groundtruth.net in
      let plan = world.Netgen.Groundtruth.prefix_plan in
      let step = max 1 (List.length plan / 6) in
      let samples = List.filteri (fun i _ -> i mod step = 0) plan in
      let touch =
        let rec find u =
          if u >= Net.node_count net then 0
          else if Net.session_count_of net u > 0 then u
          else find (u + 1)
        in
        find 0
      in
      List.for_all
        (fun (p, _asn, anchors) ->
          let rc =
            Engine_reference.simulate net ~prefix:p ~originators:anchors
          in
          let fc = Engine.simulate net ~prefix:p ~originators:anchors in
          let cold_ok =
            Engine_reference.state_fingerprint rc
            = Engine.state_fingerprint fc
            && Engine_reference.events rc = Engine.events fc
            && Engine_reference.converged rc = Engine.converged fc
          in
          Net.set_import_med net touch 0 p 7;
          let rw =
            Engine_reference.simulate net ~from:rc ~prefix:p
              ~originators:anchors
          in
          let fw =
            Engine.simulate net ~from:fc ~prefix:p ~originators:anchors
          in
          Net.clear_import_med net touch 0 p;
          Net.clear_touched net p;
          let warm_ok =
            Engine_reference.state_fingerprint rw
            = Engine.state_fingerprint fw
            && Engine_reference.events rw = Engine.events fw
          in
          cold_ok && warm_ok)
        samples)

(* The fold/iter candidate walks agree with the allocating list
   variant at every node of a converged state. *)
let test_candidates_fold_iter () =
  let world = Netgen.Groundtruth.build Netgen.Conf.tiny in
  let net = world.Netgen.Groundtruth.net in
  let p, _asn, anchors = List.hd world.Netgen.Groundtruth.prefix_plan in
  let st = Engine.simulate net ~prefix:p ~originators:anchors in
  for n = 0 to Net.node_count net - 1 do
    let listed = Engine.candidates st net n in
    let folded =
      List.rev
        (Engine.fold_candidates st net n ~init:[] ~f:(fun acc r -> r :: acc))
    in
    let iterated = ref [] in
    Engine.iter_candidates st net n (fun r -> iterated := r :: !iterated);
    Alcotest.(check int)
      (Printf.sprintf "fold length at node %d" n)
      (List.length listed) (List.length folded);
    Alcotest.(check bool)
      (Printf.sprintf "fold order at node %d" n)
      true
      (List.for_all2 (fun a b -> Rattr.same_route a b) listed folded);
    Alcotest.(check bool)
      (Printf.sprintf "iter order at node %d" n)
      true
      (List.for_all2 (fun a b -> Rattr.same_route a b) listed
         (List.rev !iterated))
  done

let suite =
  [
    Alcotest.test_case "sized 5k world is deterministic" `Slow
      test_sized_deterministic;
    Alcotest.test_case "sized rejects tiny AS counts" `Quick
      test_sized_rejects_small;
    Alcotest.test_case "candidates fold/iter match list" `Quick
      test_candidates_fold_iter;
    QCheck_alcotest.to_alcotest prop_flat_matches_reference;
  ]
