(* Tests for the bgpdump-style table-dump line format. *)

open Bgp

let check_bool = Alcotest.(check bool)

let sample_record =
  {
    Mrt.time = 1131867000;
    peer_ip = Ipv4.of_octets 12 0 1 63;
    peer_as = 7018;
    prefix = Prefix.of_string_exn "3.0.0.0/8";
    path = Aspath.of_list [ 7018; 701; 703 ];
    attrs =
      {
        Attrs.origin = Attrs.Igp;
        next_hop = Ipv4.of_octets 12 0 1 63;
        local_pref = 100;
        med = 0;
        communities = [ (7018, 5000) ];
      };
  }

let roundtrip () =
  let line = Mrt.record_to_line sample_record in
  match Mrt.record_of_line line with
  | Mrt.Malformed e -> Alcotest.failf "parse failed: %s" e
  | Mrt.Skip -> Alcotest.fail "a record line is not a comment"
  | Mrt.Parsed r ->
      check_bool "time" true (r.Mrt.time = sample_record.Mrt.time);
      check_bool "peer ip" true (Ipv4.equal r.Mrt.peer_ip sample_record.Mrt.peer_ip);
      check_bool "peer as" true (r.Mrt.peer_as = sample_record.Mrt.peer_as);
      check_bool "prefix" true (Prefix.equal r.Mrt.prefix sample_record.Mrt.prefix);
      check_bool "path" true (Aspath.equal r.Mrt.path sample_record.Mrt.path);
      check_bool "attrs" true (Attrs.equal r.Mrt.attrs sample_record.Mrt.attrs)

let real_world_line () =
  (* A line in the shape bgpdump -m emits. *)
  let line =
    "TABLE_DUMP2|1131867000|B|12.0.1.63|7018|3.0.0.0/8|7018 701 703|IGP|12.0.1.63|100|0|7018:5000|NAG||"
  in
  match Mrt.record_of_line line with
  | Mrt.Malformed e -> Alcotest.failf "parse failed: %s" e
  | Mrt.Skip -> Alcotest.fail "a record line is not a comment"
  | Mrt.Parsed r ->
      check_bool "peer as" true (r.Mrt.peer_as = 7018);
      check_bool "path" true (Aspath.to_list r.Mrt.path = [ 7018; 701; 703 ]);
      check_bool "community" true (r.Mrt.attrs.Attrs.communities = [ (7018, 5000) ])

let comments_skipped () =
  let records, errors =
    Mrt.parse_lines
      [
        "# a comment";
        "";
        Mrt.record_to_line sample_record;
        "garbage line";
        Mrt.record_to_line sample_record;
      ]
  in
  Alcotest.(check int) "records" 2 (List.length records);
  Alcotest.(check int) "errors" 1 (List.length errors);
  (match errors with
  | [ (4, _) ] -> ()
  | _ -> Alcotest.fail "error should point at line 4")

let malformed_fields () =
  let check_err label line =
    match Mrt.record_of_line line with
    | Mrt.Malformed _ -> ()
    | Mrt.Skip | Mrt.Parsed _ -> Alcotest.failf "%s should not parse" label
  in
  check_err "bad kind" "BOGUS|1|B|1.2.3.4|7018|3.0.0.0/8|7018|IGP|1.2.3.4|0|0||NAG||";
  check_err "bad subtype" "TABLE_DUMP2|1|A|1.2.3.4|7018|3.0.0.0/8|7018|IGP|1.2.3.4|0|0||NAG||";
  check_err "bad prefix" "TABLE_DUMP2|1|B|1.2.3.4|7018|3.0.0.0|7018|IGP|1.2.3.4|0|0||NAG||";
  check_err "bad path" "TABLE_DUMP2|1|B|1.2.3.4|7018|3.0.0.0/8|70x18|IGP|1.2.3.4|0|0||NAG||";
  check_err "bad origin" "TABLE_DUMP2|1|B|1.2.3.4|7018|3.0.0.0/8|7018|OOPS|1.2.3.4|0|0||NAG||";
  check_err "too few" "TABLE_DUMP2|1|B|1.2.3.4"

let file_roundtrip () =
  let tmp = Filename.temp_file "mrt_test" ".dump" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Mrt.write_file tmp [ sample_record; sample_record ];
      let records, errors = Mrt.read_file tmp in
      Alcotest.(check int) "no errors" 0 (List.length errors);
      Alcotest.(check int) "two records" 2 (List.length records))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick roundtrip;
    Alcotest.test_case "real-world line" `Quick real_world_line;
    Alcotest.test_case "comments skipped" `Quick comments_skipped;
    Alcotest.test_case "malformed fields" `Quick malformed_fields;
    Alcotest.test_case "file roundtrip" `Quick file_roundtrip;
  ]
