(* Tests for Verify, Incremental, Compress, Granularity, Casestudy —
   the tooling layer on top of the refiner. *)

open Bgp
module Net = Simulator.Net
module Qrmodel = Asmodel.Qrmodel
module Refiner = Refine.Refiner

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let op asn = { Rib.op_ip = Asn.router_ip asn 0; op_as = asn }

let entry o origin path_list =
  {
    Rib.op = op o;
    prefix = Asn.origin_prefix origin;
    path = Aspath.of_list path_list;
  }

let graph =
  Topology.Asgraph.of_edges [ (1, 2); (1, 4); (1, 5); (2, 3); (3, 4); (4, 5) ]

let training =
  Rib.of_entries
    [ entry 1 3 [ 1; 2; 3 ]; entry 1 4 [ 1; 4 ]; entry 1 4 [ 1; 5; 4 ] ]

let refined () =
  let m = Qrmodel.initial graph in
  let r = Refiner.refine m ~training in
  assert r.Refiner.converged;
  (m, r)

(* -- Verify -- *)

let verify_exact_after_refinement () =
  let m, r = refined () in
  let report = Refine.Verify.verify m ~states:r.Refiner.states training in
  check_bool "exact" true (Refine.Verify.is_exact report);
  check_int "all checked" 3 report.Refine.Verify.checked;
  check_int "no mismatches" 0 (List.length report.Refine.Verify.mismatches)

let verify_reports_mismatches () =
  let m = Qrmodel.initial graph in
  (* Unrefined model: the longer paths cannot match. *)
  let states = Hashtbl.create 8 in
  let report = Refine.Verify.verify m ~states training in
  check_bool "not exact" false (Refine.Verify.is_exact report);
  check_bool "mismatch found" true (report.Refine.Verify.mismatches <> []);
  (* The blocking AS of 1-5-4 is AS 1 itself (AS 5 selects 5-4 fine). *)
  let m154 =
    List.find
      (fun (x : Refine.Verify.mismatch) ->
        Aspath.to_list x.Refine.Verify.path = [ 1; 5; 4 ])
      report.Refine.Verify.mismatches
  in
  check_bool "blocking as" true (m154.Refine.Verify.blocking_as = Some 1)

let suffix_walk_equivalence () =
  let m, r = refined () in
  let net = m.Qrmodel.net in
  let p4 = Asn.origin_prefix 4 in
  let st = Hashtbl.find r.Refiner.states p4 in
  let arr = [| 1; 5; 4 |] in
  (* The allocation-free suffix walk must agree with the Array.sub
     formulation at every position, including the empty tail. *)
  for i = 0 to Array.length arr - 1 do
    let tail = Array.sub arr (i + 1) (Array.length arr - i - 1) in
    check_bool "same nodes" true
      (Refine.Matching.nodes_selecting net st arr.(i) tail
      = Refine.Matching.nodes_selecting_at net st arr.(i) arr ~tail_at:(i + 1))
  done

let verify_unknown_prefix () =
  let m = Qrmodel.initial graph in
  let stray =
    Rib.of_entries
      [ { Rib.op = op 1; prefix = Prefix.of_string_exn "99.0.0.0/8";
          path = Aspath.of_list [ 1; 4 ] } ]
  in
  let report = Refine.Verify.verify m ~states:(Hashtbl.create 4) stray in
  check_int "counted as mismatch" 1 (List.length report.Refine.Verify.mismatches)

(* -- Incremental -- *)

let incremental_extension () =
  let m, _ = refined () in
  (* New observations: a path for AS 5's prefix never trained on, at a
     new observation AS. *)
  let fresh = Rib.of_entries [ entry 2 5 [ 2; 3; 4; 5 ] ] in
  let outcome = Refine.Incremental.add_observations m fresh in
  check_bool "fits the new prefix" true
    outcome.Refine.Incremental.result.Refiner.converged;
  (* ... and the old training data still matches exactly. *)
  let report = Refine.Verify.verify m ~states:(Hashtbl.create 8) training in
  check_bool "old matches preserved" true (Refine.Verify.is_exact report)

let incremental_counts_growth () =
  let m, _ = refined () in
  let nodes_before = Net.node_count m.Qrmodel.net in
  (* Force diversity for a new prefix at AS 1: both 1-4 and 1-5-4
     towards AS 5's prefix... 1-4-5 and 1-5. *)
  let fresh = Rib.of_entries [ entry 1 5 [ 1; 5 ]; entry 1 5 [ 1; 4; 5 ] ] in
  let outcome = Refine.Incremental.add_observations m fresh in
  check_bool "fits" true outcome.Refine.Incremental.result.Refiner.converged;
  check_int "reports node growth"
    (Net.node_count m.Qrmodel.net - nodes_before)
    outcome.Refine.Incremental.new_quasi_routers

let incremental_delta_added () =
  let m = Qrmodel.initial graph in
  (* Fitting the diverse training data from scratch must place MED
     rules: the added side of the signed delta. *)
  let outcome = Refine.Incremental.add_observations m training in
  check_bool "fits" true outcome.Refine.Incremental.result.Refiner.converged;
  let med = outcome.Refine.Incremental.med_rules in
  check_bool "med rules added" true (med.Refine.Incremental.added > 0);
  check_int "none removed" 0 med.Refine.Incremental.removed;
  check_bool "net delta positive" true (Refine.Incremental.net_delta med > 0)

let incremental_delta_removed () =
  let m, _ = refined () in
  let net = m.Qrmodel.net in
  (* Manually block the observed route 1-4 with a stray filter; fitting
     the observation again must delete it (the Figure-7 rule), which a
     raw unsigned count would report as zero new filters. *)
  let p4 = Asn.origin_prefix 4 in
  let n4 = List.hd (Net.nodes_of_as net 4) in
  let n1 = List.hd (Net.nodes_of_as net 1) in
  let s = Option.get (Net.find_session net n4 n1) in
  Net.deny_export net n4 s p4;
  let fresh = Rib.of_entries [ entry 1 4 [ 1; 4 ] ] in
  let outcome = Refine.Incremental.add_observations m fresh in
  check_bool "fits" true outcome.Refine.Incremental.result.Refiner.converged;
  let filters = outcome.Refine.Incremental.filters in
  check_bool "filter removed" true (filters.Refine.Incremental.removed >= 1);
  check_bool "net delta negative" true (Refine.Incremental.net_delta filters < 0)

(* -- Compress -- *)

let compress_merges_redundant () =
  let m = Qrmodel.initial graph in
  (* Duplicate AS 4's quasi-router without any distinguishing policy:
     both copies behave identically and must merge back. *)
  let n4 = List.hd (Net.nodes_of_as m.Qrmodel.net 4) in
  ignore (Net.duplicate_node m.Qrmodel.net n4);
  check_int "grew" 6 (Net.node_count m.Qrmodel.net);
  let compacted, stats = Refine.Compress.compact m in
  check_int "merged back" 5 stats.Refine.Compress.nodes_after;
  check_int "nodes_before recorded" 6 stats.Refine.Compress.nodes_before;
  (* Behaviour preserved for every prefix. *)
  List.iter
    (fun (p, _) ->
      let st1 = Qrmodel.simulate m p in
      let st2 = Qrmodel.simulate compacted p in
      List.iter
        (fun asn ->
          check_bool "same selected paths" true
            (Simulator.Engine.selected_paths m.Qrmodel.net st1 asn
            = Simulator.Engine.selected_paths compacted.Qrmodel.net st2 asn))
        (Topology.Asgraph.nodes graph))
    m.Qrmodel.prefixes

let compress_keeps_needed_diversity () =
  let m, r = refined () in
  ignore r;
  match Refine.Compress.compact_verified m ~against:training with
  | None -> Alcotest.fail "compaction should succeed here"
  | Some (compacted, _stats) ->
      (* AS 1 still propagates both observed routes for p4. *)
      let st = Qrmodel.simulate compacted (Asn.origin_prefix 4) in
      let selected =
        Simulator.Engine.selected_paths compacted.Qrmodel.net st 1
      in
      check_bool "both routes survive" true
        (List.mem [| 1; 4 |] selected && List.mem [| 1; 5; 4 |] selected);
      let report =
        Refine.Verify.verify compacted ~states:(Hashtbl.create 8) training
      in
      check_bool "still exact" true (Refine.Verify.is_exact report)

(* -- Granularity -- *)

let granularity_counts () =
  let m = Qrmodel.initial graph in
  let g = Evaluation.Granularity.analyze m in
  check_int "all half-sessions" (Net.session_count m.Qrmodel.net)
    g.Evaluation.Granularity.sessions;
  check_int "no rules yet" 0 g.Evaluation.Granularity.sessions_with_rules;
  check_bool "per-neighbour suffices everywhere" true
    (g.Evaluation.Granularity.per_neighbor_sufficient = 1.0);
  (* After refinement some sessions need per-prefix treatment. *)
  let _ = Refiner.refine m ~training in
  let g2 = Evaluation.Granularity.analyze m in
  check_bool "rules appeared" true (g2.Evaluation.Granularity.sessions_with_rules > 0);
  check_bool "some session needs >1 atom" true
    (List.exists (fun (k, _) -> k > 1) g2.Evaluation.Granularity.atom_histogram)

(* -- Casestudy -- *)

let casestudy_views () =
  let m, _ = refined () in
  let study = Evaluation.Casestudy.study m (Asn.origin_prefix 4) in
  check_bool "origin known" true (study.Evaluation.Casestudy.origin = Some 4);
  (match Evaluation.Casestudy.view_of study 1 with
  | None -> Alcotest.fail "AS 1 should have a view"
  | Some v ->
      check_int "AS1 selects two routes" 2
        (List.length v.Evaluation.Casestudy.selected);
      check_int "AS1 has two quasi-routers" 2 v.Evaluation.Casestudy.quasi_routers;
      check_bool "selected is subset of received" true
        (List.for_all
           (fun p -> List.exists (Aspath.equal p) v.Evaluation.Casestudy.received)
           v.Evaluation.Casestudy.selected));
  let top = Evaluation.Casestudy.most_diverse study 3 in
  check_int "three most diverse" 3 (List.length top);
  check_bool "sorted by received count" true
    (match top with
    | a :: b :: _ ->
        List.length a.Evaluation.Casestudy.received
        >= List.length b.Evaluation.Casestudy.received
    | _ -> false)

let suite =
  [
    Alcotest.test_case "verify: exact after refinement" `Quick
      verify_exact_after_refinement;
    Alcotest.test_case "verify: reports mismatches" `Quick verify_reports_mismatches;
    Alcotest.test_case "verify: unknown prefix" `Quick verify_unknown_prefix;
    Alcotest.test_case "verify: suffix walk equivalence" `Quick
      suffix_walk_equivalence;
    Alcotest.test_case "incremental: extension" `Quick incremental_extension;
    Alcotest.test_case "incremental: growth counting" `Quick incremental_counts_growth;
    Alcotest.test_case "incremental: delta added" `Quick incremental_delta_added;
    Alcotest.test_case "incremental: delta removed" `Quick incremental_delta_removed;
    Alcotest.test_case "compress: merges redundant" `Quick compress_merges_redundant;
    Alcotest.test_case "compress: keeps needed diversity" `Quick
      compress_keeps_needed_diversity;
    Alcotest.test_case "granularity: counts" `Quick granularity_counts;
    Alcotest.test_case "casestudy: views" `Quick casestudy_views;
  ]
