(* Test entry point: one alcotest run covering every library. *)

let () =
  Alcotest.run "route_diversity"
    [
      ("ipv4", Test_ipv4.suite);
      ("prefix", Test_prefix.suite);
      ("asn", Test_asn.suite);
      ("aspath", Test_aspath.suite);
      ("mrt", Test_mrt.suite);
      ("mrt-binary", Test_mrt_binary.suite);
      ("rib", Test_rib.suite);
      ("asgraph", Test_asgraph.suite);
      ("topology", Test_topology.suite);
      ("relationships", Test_relationships.suite);
      ("decision", Test_decision.suite);
      ("net", Test_net.suite);
      ("engine", Test_engine.suite);
      ("pool", Test_pool.suite);
      ("warm", Test_warm.suite);
      ("obs", Test_obs.suite);
      ("faultinject", Test_faultinject.suite);
      ("netgen", Test_netgen.suite);
      ("asmodel", Test_asmodel.suite);
      ("refiner", Test_refiner.suite);
      ("evaluation", Test_evaluation.suite);
      ("extensions", Test_extensions.suite);
      ("refine-tools", Test_refine_tools.suite);
      ("route-reflection", Test_route_reflection.suite);
      ("trace-inflation", Test_trace_inflation.suite);
      ("properties", Test_properties.suite);
      ("report", Test_report.suite);
      ("dot", Test_dot.suite);
      ("misc", Test_misc.suite);
      ("divergence", Test_divergence.suite);
      ("integration", Test_integration.suite);
      ("analysis", Test_analysis.suite);
      ("stream", Test_stream.suite);
      ("scale", Test_scale.suite);
      ("serve", Test_serve.suite);
      ("family", Test_family.suite);
      ("topometrics", Test_topometrics.suite);
    ]
