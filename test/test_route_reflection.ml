(* Tests for iBGP route reflection (RFC 4456 semantics in the engine)
   and its use in the ground-truth substrate. *)

open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine

let check_bool = Alcotest.(check bool)

let p6 = Asn.origin_prefix 6

(* AS 1 with reflector rr and clients c1, c2 (no client-client session);
   c1 peers with AS 2 which originates the prefix. *)
let rr_setup () =
  let net = Net.create () in
  Net.set_decision_steps net Simulator.Decision.full_steps;
  let rr = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let c1 = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 1) in
  let c2 = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 2) in
  let n2 = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let s_rr_c1, _ = Net.connect ~kind:Net.Ibgp net rr c1 in
  let s_rr_c2, _ = Net.connect ~kind:Net.Ibgp net rr c2 in
  Net.set_rr_client net rr s_rr_c1 true;
  Net.set_rr_client net rr s_rr_c2 true;
  ignore (Net.connect net c1 n2);
  (net, rr, c1, c2, n2)

let reflection_to_other_client () =
  let net, rr, c1, c2, n2 = rr_setup () in
  let st = Engine.simulate net ~prefix:p6 ~originators:[ n2 ] in
  check_bool "converged" true (Engine.converged st);
  check_bool "c1 has ebgp route" true (Engine.best st c1 <> None);
  check_bool "rr learns from client" true (Engine.best st rr <> None);
  (* The reflector passes the client route on to the other client. *)
  check_bool "c2 reached via reflection" true (Engine.best st c2 <> None);
  check_bool "c2 path correct" true
    (Engine.best_full_path net st c2 = Some [| 1; 2 |])

let no_reflection_without_flag () =
  (* Same topology but rr is a plain iBGP speaker: c2 must starve,
     because iBGP-learned routes are not re-advertised. *)
  let net = Net.create () in
  Net.set_decision_steps net Simulator.Decision.full_steps;
  let rr = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let c1 = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 1) in
  let c2 = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 2) in
  let n2 = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  ignore (Net.connect ~kind:Net.Ibgp net rr c1);
  ignore (Net.connect ~kind:Net.Ibgp net rr c2);
  ignore (Net.connect net c1 n2);
  let st = Engine.simulate net ~prefix:p6 ~originators:[ n2 ] in
  check_bool "rr has it" true (Engine.best st rr <> None);
  check_bool "c2 starves" true (Engine.best st c2 = None)

let nonclient_route_reaches_clients () =
  (* The reflector learns a route over eBGP itself (from a non-client
     perspective it is ebgp-learned, which always goes to iBGP); the
     deeper case: rr2 (non-client of rr) feeds rr, rr reflects to its
     clients. *)
  let net = Net.create () in
  Net.set_decision_steps net Simulator.Decision.full_steps;
  let rr = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let rr2 = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 1) in
  let c1 = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 2) in
  let n2 = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  ignore (Net.connect ~kind:Net.Ibgp net rr rr2);
  let s_rr_c1, _ = Net.connect ~kind:Net.Ibgp net rr c1 in
  Net.set_rr_client net rr s_rr_c1 true;
  ignore (Net.connect net rr2 n2);
  let st = Engine.simulate net ~prefix:p6 ~originators:[ n2 ] in
  (* rr2's route is ebgp-learned, advertised to rr (plain iBGP);
     rr's best is now ibgp-learned from a NON-client, which must still
     be reflected to the client c1. *)
  check_bool "client hears non-client route" true
    (Engine.best st c1 <> None)

let no_echo_to_announcer () =
  let net, rr, c1, _c2, n2 = rr_setup () in
  let st = Engine.simulate net ~prefix:p6 ~originators:[ n2 ] in
  (* c1's RIB-In over the rr session must not contain its own route
     reflected back (split horizon by from_node). *)
  let from_rr =
    List.filter
      (fun (s, _) -> Net.session_peer net c1 s = rr)
      (Engine.rib_in st c1)
  in
  check_bool "no echo" true (from_rr = [])

let groundtruth_uses_reflection () =
  (* A world with a low threshold exercises the RR code path and still
     converges with loop-free routing everywhere. *)
  let conf = { Netgen.Conf.tiny with Netgen.Conf.seed = 8; rr_threshold = 2 } in
  let world = Netgen.Groundtruth.build conf in
  let data = Netgen.Groundtruth.observe world in
  check_bool "entries observed" true (Rib.size data > 0);
  List.iter
    (fun p -> check_bool "loop-free" false (Aspath.has_loop p))
    (Rib.all_paths data);
  (* Reflection clusters can hide some prefixes from some routers, but
     every originated prefix must still be visible somewhere. *)
  let origins = Rib.origins data in
  check_bool "most prefixes visible" true (Asn.Set.cardinal origins > 10)

let suite =
  [
    Alcotest.test_case "reflection to other client" `Quick reflection_to_other_client;
    Alcotest.test_case "no reflection without flag" `Quick no_reflection_without_flag;
    Alcotest.test_case "non-client route reaches clients" `Quick
      nonclient_route_reaches_clients;
    Alcotest.test_case "no echo to announcer" `Quick no_echo_to_announcer;
    Alcotest.test_case "ground truth with reflection" `Slow
      groundtruth_uses_reflection;
  ]
