(* Tests for deterministic fault injection and the pool's recovery from
   injected (and genuine) per-task failures. *)

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

module Fi = Simulator.Faultinject

(* Every test overrides the ambient configuration and restores it, so
   running the suite under RD_FAULTS is unaffected. *)
let with_faults t f =
  let saved = Fi.current () in
  Fi.set t;
  Fun.protect ~finally:(fun () -> Fi.set saved) f

let parse_cases () =
  check_bool "empty disables" true (Fi.parse "" = Ok None);
  check_bool "0 disables" true (Fi.parse "0" = Ok None);
  check_bool "off disables" true (Fi.parse "off" = Ok None);
  check_bool "zero rate disables" true (Fi.parse "0.0:9" = Ok None);
  check_bool "transient scope" true
    (Fi.parse "0.05:42"
    = Ok (Some { Fi.rate = 0.05; seed = 42; scope = Fi.Transient }));
  check_bool "full scope" true
    (Fi.parse " 0.5:7:full "
    = Ok (Some { Fi.rate = 0.5; seed = 7; scope = Fi.Full }));
  let is_error = function Error _ -> true | Ok _ -> false in
  check_bool "missing seed rejected" true (is_error (Fi.parse "0.05"));
  check_bool "rate above 1 rejected" true (is_error (Fi.parse "1.5:3"));
  check_bool "negative rate rejected" true (is_error (Fi.parse "-0.1:3"));
  check_bool "bad rate rejected" true (is_error (Fi.parse "x:3"));
  check_bool "bad seed rejected" true (is_error (Fi.parse "0.1:x"));
  check_bool "bad scope rejected" true (is_error (Fi.parse "0.1:3:always"));
  check_bool "too many fields rejected" true (is_error (Fi.parse "1:2:3:4"))

(* Which indices of an [n]-batch throw on first attempt, applying the
   wrapped task in the given order. *)
let thrown_set t n order =
  with_faults (Some t) (fun () ->
      let wrapped = Fi.wrap_tasks ~n Fun.id in
      List.filter_map
        (fun i ->
          match wrapped i i with
          | _ -> None
          | exception Fi.Injected j ->
              check_int "payload is the index" i j;
              Some i)
        order)

let deterministic_choice () =
  let t = { Fi.rate = 0.3; seed = 11; scope = Fi.Transient } in
  let all = List.init 64 Fun.id in
  let forward = thrown_set t 64 all in
  let backward = thrown_set t 64 (List.rev all) in
  check_bool "some tasks chosen" true (forward <> []);
  check_bool "not all tasks chosen" true (List.length forward < 64);
  check_bool "choice independent of order" true
    (List.sort compare forward = List.sort compare backward);
  let reseeded = thrown_set { t with Fi.seed = 12 } 64 all in
  check_bool "seed changes the choice" true
    (List.sort compare reseeded <> List.sort compare forward)

let transient_retry_recovers () =
  with_faults
    (Some { Fi.rate = 1.0; seed = 5; scope = Fi.Transient })
    (fun () ->
      let wrapped = Fi.wrap_tasks ~n:8 (fun x -> x * 2) in
      for i = 0 to 7 do
        (match wrapped i i with
        | _ -> Alcotest.fail "rate 1.0 must throw on first attempt"
        | exception Fi.Injected _ -> ());
        check_int "second attempt succeeds" (2 * i) (wrapped i i)
      done)

let full_scope_kills_and_shrinks () =
  let t = { Fi.rate = 1.0; seed = 5; scope = Fi.Full } in
  with_faults (Some t) (fun () ->
      let wrapped = Fi.wrap_tasks ~n:64 Fun.id in
      let killed = ref 0 and recovered = ref 0 in
      for i = 0 to 63 do
        match wrapped i i with
        | _ -> Alcotest.fail "rate 1.0 must throw on first attempt"
        | exception Fi.Injected _ -> (
            match wrapped i i with
            | _ -> incr recovered
            | exception Fi.Injected _ -> incr killed)
      done;
      (* The permanent-kill sub-population runs at rate/4. *)
      check_bool "kill sub-population exists" true (!killed > 0);
      check_bool "most tasks still recover" true (!recovered > !killed);
      check_int "budgets shrink to 1" 1 (Fi.shrink_budget ~key:123 1000));
  with_faults
    (Some { t with Fi.scope = Fi.Transient })
    (fun () ->
      check_int "transient scope never shrinks" 1000
        (Fi.shrink_budget ~key:123 1000));
  with_faults None (fun () ->
      check_int "disabled is the identity" 1000
        (Fi.shrink_budget ~key:123 1000))

let pool_recovers_transient () =
  with_faults
    (Some { Fi.rate = 0.5; seed = 3; scope = Fi.Transient })
    (fun () ->
      let inputs = List.init 40 Fun.id in
      let recovered = ref [] in
      let results =
        Simulator.Pool.map_result ~jobs:4
          ~on_recover:(fun i -> recovered := i :: !recovered)
          (fun x -> x * x)
          inputs
      in
      check_int "all inputs answered" 40 (List.length results);
      List.iteri
        (fun i r ->
          match r with
          | Ok v -> check_int "value survives the retry" (i * i) v
          | Error _ -> Alcotest.failf "input %d not recovered" i)
        results;
      check_bool "retries actually happened" true (!recovered <> []);
      (* Pool.map gives the same answers transparently. *)
      let plain =
        Simulator.Pool.map ~jobs:4 (fun x -> x * x) inputs
      in
      check_bool "map transparent under transient faults" true
        (plain = List.map (fun x -> x * x) inputs))

let pool_reports_permanent_failure () =
  with_faults None (fun () ->
      let f x = if x = 2 then failwith "boom" else x in
      let results = Simulator.Pool.map_result ~jobs:2 f [ 0; 1; 2; 3 ] in
      (match List.nth results 2 with
      | Error e ->
          check_int "failing index named" 2 e.Simulator.Pool.index;
          check_bool "exception preserved" true
            (e.Simulator.Pool.exn = Failure "boom")
      | Ok _ -> Alcotest.fail "index 2 must fail");
      check_int "other slots survive the batch" 3
        (List.length (List.filter Result.is_ok results));
      match Simulator.Pool.map ~jobs:2 f [ 0; 1; 2; 3 ] with
      | _ -> Alcotest.fail "map must re-raise a permanent failure"
      | exception Failure msg ->
          check_bool "original exception re-raised" true (msg = "boom"))

let suite =
  [
    Alcotest.test_case "parse cases" `Quick parse_cases;
    Alcotest.test_case "deterministic choice" `Quick deterministic_choice;
    Alcotest.test_case "transient retry recovers" `Quick
      transient_retry_recovers;
    Alcotest.test_case "full scope kills and shrinks" `Quick
      full_scope_kills_and_shrinks;
    Alcotest.test_case "pool recovers transient faults" `Quick
      pool_recovers_transient;
    Alcotest.test_case "pool reports permanent failure" `Quick
      pool_reports_permanent_failure;
  ]
