(* Tests for the binary MRT (RFC 6396 TABLE_DUMP_V2) reader/writer. *)

open Bgp

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let record ?(time = 1131867000) ?(peer = 7018) ?(peer_octet = 63) origin
    path_list =
  {
    Mrt.time;
    peer_ip = Ipv4.of_octets 12 0 1 peer_octet;
    peer_as = peer;
    prefix = Asn.origin_prefix origin;
    path = Aspath.of_list path_list;
    attrs =
      {
        Attrs.origin = Attrs.Igp;
        next_hop = Ipv4.of_octets 12 0 1 peer_octet;
        local_pref = 110;
        med = 7;
        communities = [ (7018, 5000); (7018, 2500) ];
      };
  }

let roundtrip () =
  let records =
    [
      record 6 [ 7018; 701; 6 ];
      record ~peer:3356 ~peer_octet:77 6 [ 3356; 6 ];
      record 9 [ 7018; 9 ];
    ]
  in
  let data = Mrt_binary.write_bytes records in
  let parsed, diags = Mrt_binary.read_bytes data in
  check_int "no diagnostics" 0 (List.length diags);
  check_int "all records" 3 (List.length parsed);
  List.iter2
    (fun (a : Mrt.record) (b : Mrt.record) ->
      check_bool "time" true (a.Mrt.time = b.Mrt.time);
      check_bool "peer ip" true (Ipv4.equal a.Mrt.peer_ip b.Mrt.peer_ip);
      check_bool "peer as" true (a.Mrt.peer_as = b.Mrt.peer_as);
      check_bool "prefix" true (Prefix.equal a.Mrt.prefix b.Mrt.prefix);
      check_bool "path" true (Aspath.equal a.Mrt.path b.Mrt.path);
      check_bool "attrs" true (Attrs.equal a.Mrt.attrs b.Mrt.attrs))
    records parsed

let groups_by_prefix () =
  (* Two records for the same prefix produce one RIB record with two
     entries — verified indirectly by a stable roundtrip. *)
  let records = [ record 6 [ 7018; 6 ]; record ~peer:3356 ~peer_octet:9 6 [ 3356; 6 ] ] in
  let parsed, _ = Mrt_binary.read_bytes (Mrt_binary.write_bytes records) in
  check_int "both entries" 2 (List.length parsed);
  check_bool "same prefix" true
    (List.for_all
       (fun (r : Mrt.record) -> Prefix.equal r.Mrt.prefix (Asn.origin_prefix 6))
       parsed)

let empty_input () =
  let parsed, diags = Mrt_binary.read_bytes "" in
  check_int "no records" 0 (List.length parsed);
  check_int "no diagnostics" 0 (List.length diags)

let truncation_is_diagnosed () =
  let data = Mrt_binary.write_bytes [ record 6 [ 7018; 6 ] ] in
  (* Chop the stream mid-record. *)
  let cut = String.sub data 0 (String.length data - 5) in
  let parsed, diags = Mrt_binary.read_bytes cut in
  check_bool "diagnostic produced" true (diags <> []);
  check_bool "no crash" true (List.length parsed >= 0);
  (* Garbage input likewise. *)
  let _, diags2 = Mrt_binary.read_bytes "this is not MRT at all.." in
  check_bool "garbage diagnosed" true (diags2 <> [])

(* Truncated-record paths: cuts mid-header, mid-record and mid-attribute
   must each surface the documented diagnostic — never an exception. *)
let truncation_paths () =
  let data = Mrt_binary.write_bytes [ record 6 [ 7018; 701; 6 ] ] in
  let u32_at s i =
    (Char.code s.[i] lsl 24)
    lor (Char.code s.[i + 1] lsl 16)
    lor (Char.code s.[i + 2] lsl 8)
    lor Char.code s.[i + 3]
  in
  let peer_table_len = u32_at data 8 in
  let rib_header = 12 + peer_table_len in
  let rib_start = rib_header + 12 in
  (* Cut inside the second record's 12-byte MRT common header. *)
  let parsed, diags = Mrt_binary.read_bytes (String.sub data 0 (rib_header + 6)) in
  check_int "header cut: no RIB records" 0 (List.length parsed);
  check_bool "header cut diagnosed" true (List.mem "trailing garbage" diags);
  (* Cut inside the record body: the header promises more than exists. *)
  let parsed, diags =
    Mrt_binary.read_bytes (String.sub data 0 (String.length data - 5))
  in
  check_int "body cut: no RIB records" 0 (List.length parsed);
  check_bool "body cut diagnosed" true (List.mem "truncated record body" diags);
  (* Corrupt an attribute length so it overruns the entry's attribute
     region: the entry is dropped with a diagnostic, parsing continues. *)
  let plen = Char.code data.[rib_start + 4] in
  let nbytes = (plen + 7) / 8 in
  let attrs_off = rib_start + 4 + 1 + nbytes + 2 + 2 + 4 + 2 in
  let corrupted = Bytes.of_string data in
  Bytes.set corrupted (attrs_off + 2) '\xF0';
  let parsed, diags = Mrt_binary.read_bytes (Bytes.to_string corrupted) in
  check_int "attr overrun: entry dropped" 0 (List.length parsed);
  check_bool "attr overrun diagnosed" true
    (List.mem "truncated attributes" diags);
  (* Cut inside the attributes with the MRT length patched to match: the
     entry's declared attribute length now overruns the record body. *)
  let cut = attrs_off + 3 in
  let body_len = cut - rib_start in
  let patched = Bytes.of_string (String.sub data 0 cut) in
  List.iteri
    (fun i shift ->
      Bytes.set patched (rib_header + 8 + i)
        (Char.chr ((body_len lsr shift) land 0xFF)))
    [ 24; 16; 8; 0 ];
  let parsed, diags = Mrt_binary.read_bytes (Bytes.to_string patched) in
  check_int "attribute cut: no RIB records" 0 (List.length parsed);
  check_bool "attribute cut diagnosed" true
    (List.mem "truncated RIB record" diags)

let unknown_types_skipped () =
  (* A record of MRT type 16 (BGP4MP) must be skipped gracefully. *)
  let b = Buffer.create 32 in
  let w8 v = Buffer.add_char b (Char.chr (v land 0xFF)) in
  let w16 v = w8 (v lsr 8); w8 v in
  let w32 v = w16 (v lsr 16); w16 v in
  w32 0; w16 16; w16 4; w32 4; w32 0xdeadbeef;
  let good = Mrt_binary.write_bytes [ record 6 [ 7018; 6 ] ] in
  let parsed, diags =
    Mrt_binary.read_bytes (Buffer.contents b ^ good)
  in
  check_int "good record survives" 1 (List.length parsed);
  check_bool "skip diagnosed" true
    (List.exists (fun d -> d = "skipping MRT type 16") diags)

let file_roundtrip_and_detection () =
  let records = [ record 6 [ 7018; 701; 6 ] ] in
  let tmp = Filename.temp_file "mrtbin" ".mrt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove tmp)
    (fun () ->
      Mrt_binary.write_file tmp records;
      let parsed, diags = Mrt_binary.read_file tmp in
      check_int "clean" 0 (List.length diags);
      check_int "one record" 1 (List.length parsed);
      let raw = In_channel.with_open_bin tmp In_channel.input_all in
      check_bool "detected binary" true (Mrt_binary.looks_binary raw);
      check_bool "text not detected as binary" false
        (Mrt_binary.looks_binary
           "TABLE_DUMP2|0|B|1.2.3.4|7018|3.0.0.0/8|7018|IGP|1.2.3.4|0|0||NAG||"))

let through_rib_pipeline () =
  (* Binary dumps feed the same cleaning pipeline as text dumps. *)
  let records =
    [ record 6 [ 7018; 701; 6 ]; record 6 [ 7018; 7018; 701; 6 ] (* prepending *) ]
  in
  let parsed, _ = Mrt_binary.read_bytes (Mrt_binary.write_bytes records) in
  let data, stats = Rib.of_records parsed in
  check_int "prepending collapsed and deduped" 1 (Rib.size data);
  check_int "dedup counted" 1 stats.Rib.deduplicated

let gen_record =
  QCheck.Gen.(
    let* origin = int_range 1 5000 in
    let* peer = int_range 1 60000 in
    let* hops = list_size (int_range 1 6) (int_range 1 65000) in
    let* med = int_range 0 1000 in
    let* lpref = int_range 0 1000 in
    return
      {
        Mrt.time = 1000;
        peer_ip = Ipv4.of_int (peer * 7 mod 0xFFFFFF);
        peer_as = peer;
        prefix = Asn.origin_prefix origin;
        path = Aspath.of_list (hops @ [ origin ]);
        attrs =
          {
            Attrs.origin = Attrs.Igp;
            next_hop = Ipv4.of_int peer;
            local_pref = lpref;
            med;
            communities = [];
          };
      })

let prop_roundtrip =
  QCheck.Test.make ~name:"binary mrt roundtrip" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 20) gen_record))
    (fun records ->
      let parsed, diags = Mrt_binary.read_bytes (Mrt_binary.write_bytes records) in
      diags = []
      && List.length parsed = List.length records
      && List.for_all2
           (fun (a : Mrt.record) (b : Mrt.record) ->
             Prefix.equal a.Mrt.prefix b.Mrt.prefix
             && Aspath.equal a.Mrt.path b.Mrt.path
             && a.Mrt.peer_as = b.Mrt.peer_as)
           (List.sort compare records) (List.sort compare parsed))

let suite =
  [
    Alcotest.test_case "roundtrip" `Quick roundtrip;
    Alcotest.test_case "groups by prefix" `Quick groups_by_prefix;
    Alcotest.test_case "empty input" `Quick empty_input;
    Alcotest.test_case "truncation diagnosed" `Quick truncation_is_diagnosed;
    Alcotest.test_case "truncation paths" `Quick truncation_paths;
    Alcotest.test_case "unknown types skipped" `Quick unknown_types_skipped;
    Alcotest.test_case "file roundtrip and detection" `Quick
      file_roundtrip_and_detection;
    Alcotest.test_case "through rib pipeline" `Quick through_rib_pipeline;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
