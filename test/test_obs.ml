(* Tests for the observability subsystem: the metrics registry (alone
   and under domain concurrency), span tracing in each mode, the
   unified Runtime knob parsing (env and argv), the consolidated
   Engine.simulate entry point, and the pool's per-slot timings. *)

open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine
module Pool = Simulator.Pool
module Runtime = Simulator.Runtime
module Metrics = Obs.Metrics
module Trace = Obs.Trace

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

(* -- Metrics registry -- *)

let registry_idempotent () =
  let c1 = Metrics.counter "test.reg.counter" in
  let c2 = Metrics.counter "test.reg.counter" in
  let before = Metrics.find_counter "test.reg.counter" in
  Metrics.incr c1;
  Metrics.incr ~by:4 c2;
  check_int "both handles feed one counter" (before + 5)
    (Metrics.counter_value c1);
  check_int "find_counter agrees" (Metrics.counter_value c1)
    (Metrics.find_counter "test.reg.counter");
  check_int "unknown name reads 0" 0 (Metrics.find_counter "test.reg.absent");
  let g = Metrics.gauge "test.reg.gauge" in
  Metrics.set_gauge g 7;
  Metrics.set_gauge g 3;
  check_int "gauge keeps the last level" 3 (Metrics.gauge_value g)

let registry_kind_mismatch () =
  ignore (Metrics.counter "test.reg.kind");
  let raises f =
    try
      f ();
      false
    with Invalid_argument _ -> true
  in
  check_bool "counter name as gauge raises" true
    (raises (fun () -> ignore (Metrics.gauge "test.reg.kind")));
  check_bool "counter name as histogram raises" true
    (raises (fun () -> ignore (Metrics.histogram "test.reg.kind")));
  ignore (Metrics.histogram ~buckets:[ 1; 10 ] "test.reg.hist");
  check_bool "same buckets is idempotent" true
    (not (raises (fun () -> ignore (Metrics.histogram ~buckets:[ 1; 10 ] "test.reg.hist"))));
  check_bool "different buckets raise" true
    (raises (fun () -> ignore (Metrics.histogram ~buckets:[ 1; 10; 100 ] "test.reg.hist")))

let histogram_consistency () =
  let h = Metrics.histogram ~buckets:[ 10; 100; 1000 ] "test.hist.samples" in
  let samples = [ 0; 3; 10; 11; 99; 100; 500; 5000; -7 ] in
  List.iter (Metrics.observe h) samples;
  let expected_sum =
    List.fold_left (fun acc s -> acc + max 0 s) 0 samples
  in
  check_int "count" (List.length samples) (Metrics.histogram_count h);
  check_int "sum (negatives clamp to 0)" expected_sum (Metrics.histogram_sum h);
  match Metrics.value "test.hist.samples" with
  | Some (Metrics.Histogram { buckets; sum; count }) ->
      check_int "snapshot count" (List.length samples) count;
      check_int "snapshot sum" expected_sum sum;
      check_int "bucket totals equal count" count
        (List.fold_left (fun acc (_, n) -> acc + n) 0 buckets);
      check_bool "overflow bucket caught the 5000" true
        (List.exists (fun (bound, n) -> bound = max_int && n = 1) buckets)
  | Some _ | None -> Alcotest.fail "histogram missing from snapshot"

(* Concurrent increments from pool workers must sum exactly, and the
   paired histogram must agree with the counter — the registry's
   cross-domain contract. *)
let concurrent_counters () =
  let c = Metrics.counter "test.conc.counter" in
  let h = Metrics.histogram ~buckets:[ 8; 64 ] "test.conc.hist" in
  let n = 1000 in
  let c0 = Metrics.counter_value c in
  let h0_count = Metrics.histogram_count h in
  let h0_sum = Metrics.histogram_sum h in
  let out =
    Pool.map ~jobs:4
      (fun i ->
        Metrics.incr c;
        Metrics.observe h (i mod 100);
        i)
      (List.init n (fun i -> i))
  in
  check_int "all tasks ran" n (List.length out);
  check_int "counter sums exactly" (c0 + n) (Metrics.counter_value c);
  check_int "histogram count matches counter" (h0_count + n)
    (Metrics.histogram_count h);
  check_int "histogram sum exact" (h0_sum + (n / 100 * 4950))
    (Metrics.histogram_sum h)

(* -- Engine metrics -- *)

(* On a randomized world, one simulation's drained-event count must
   land in engine.events_drained exactly (when no budget escalation
   re-ran the drain). *)
let events_drained_agrees () =
  let conf = { Netgen.Conf.tiny with Netgen.Conf.seed = 11 } in
  let world = Netgen.Groundtruth.build conf in
  let data = Netgen.Groundtruth.observe world in
  let prefixes = Rib.prefixes data in
  check_bool "world has prefixes" true (prefixes <> []);
  let p = List.hd prefixes in
  let d0 = Metrics.find_counter "engine.events_drained" in
  let e0 = Metrics.find_counter "engine.budget_escalations" in
  let r0 = Metrics.find_counter "engine.runs" in
  let st = Netgen.Groundtruth.simulate world p in
  check_bool "converged" true (Engine.converged st);
  check_int "one run recorded" (r0 + 1)
    (Metrics.find_counter "engine.runs");
  if Metrics.find_counter "engine.budget_escalations" = e0 then
    check_int "events_drained equals the state's event count"
      (d0 + Engine.events st)
      (Metrics.find_counter "engine.events_drained")

(* -- Engine.simulate consolidation -- *)

let p6 = Asn.origin_prefix 6

let line () =
  let net = Net.create () in
  let n1 = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let n2 = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let n3 = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  let s12, _ = Net.connect net n1 n2 in
  ignore (Net.connect net n2 n3);
  (net, n1, n2, n3, s12)

let simulate_unifies_run_and_resume () =
  let net, n1, _n2, n3, s12 = line () in
  let cold = Engine.simulate net ~prefix:p6 ~originators:[ n3 ] in
  let via_simulate = Engine.simulate net ~prefix:p6 ~originators:[ n3 ] in
  check_bool "simulate without from is a cold start" true
    (Engine.same_state cold via_simulate);
  (* A per-prefix policy edit leaves the state resumable; simulate
     ~from with an explicit touched list must match the default
     (Net.touched_nodes) form. *)
  Net.deny_export net n1 s12 p6;
  check_bool "still resumable" true (Engine.resumable net cold);
  let hits0 = Metrics.find_counter "engine.warm_resume_hits" in
  let warm =
    Engine.simulate ~from:cold ~touched:(Net.touched_nodes net p6) net
      ~prefix:p6 ~originators:[ n3 ]
  in
  let via_from = Engine.simulate ~from:cold net ~prefix:p6 ~originators:[ n3 ] in
  check_bool "explicit touched = default touched" true
    (Engine.same_state warm via_from);
  check_int "both warm starts counted" (hits0 + 2)
    (Metrics.find_counter "engine.warm_resume_hits");
  (* A wrong-prefix seed falls back to a cold start, counted as a
     miss. *)
  let p9 = Asn.origin_prefix 9 in
  let miss0 = Metrics.find_counter "engine.warm_resume_misses" in
  let cold9 = Engine.simulate net ~prefix:p9 ~originators:[ n3 ] in
  let fellback =
    Engine.simulate ~from:cold net ~prefix:p9 ~originators:[ n3 ]
  in
  check_bool "wrong-prefix seed falls back cold" true
    (Engine.same_state cold9 fellback);
  check_int "miss counted" (miss0 + 1)
    (Metrics.find_counter "engine.warm_resume_misses");
  (* A non-resumable seed (truncated run) also falls back cold. *)
  let truncated = Engine.simulate ~max_events:1 net ~prefix:p6 ~originators:[ n3 ] in
  let miss1 = Metrics.find_counter "engine.warm_resume_misses" in
  let from_truncated =
    Engine.simulate ~from:truncated net ~prefix:p6 ~originators:[ n3 ]
  in
  check_bool "truncated seed falls back cold" true
    (Engine.converged from_truncated);
  check_int "truncated miss counted" (miss1 + 1)
    (Metrics.find_counter "engine.warm_resume_misses")

(* -- Pool slot timings -- *)

(* Exact retry accounting needs a quiet pool: ambient RD_FAULTS would
   inject extra transient failures into the batch, so pin it off. *)
let pool_slot_timings () =
  let prior_faults = Runtime.faults () in
  Runtime.set_faults None;
  Fun.protect ~finally:(fun () -> Runtime.set_faults prior_faults)
  @@ fun () ->
  let n = 64 in
  let failing = 7 in
  let attempts = Array.make n 0 in
  let timings = Array.make n None in
  let retried0 = Metrics.find_counter "pool.retried" in
  let tasks0 = Metrics.find_counter "pool.tasks" in
  let slots0 =
    match Metrics.value "pool.slot_us" with
    | Some (Metrics.Histogram { count; _ }) -> count
    | _ -> 0
  in
  let results =
    Pool.map_result ~jobs:4
      ~on_slot:(fun i t -> timings.(i) <- Some t)
      (fun i ->
        attempts.(i) <- attempts.(i) + 1;
        if i = failing && attempts.(i) = 1 then failwith "transient";
        i * 2)
      (List.init n (fun i -> i))
  in
  check_bool "every slot recovered" true
    (List.for_all Result.is_ok results);
  check_int "retry recorded in metrics" (retried0 + 1)
    (Metrics.find_counter "pool.retried");
  check_int "batch size recorded" (tasks0 + n)
    (Metrics.find_counter "pool.tasks");
  (match Metrics.value "pool.slot_us" with
  | Some (Metrics.Histogram { count; _ }) ->
      check_int "one slot_us sample per task" (slots0 + n) count
  | _ -> Alcotest.fail "pool.slot_us histogram missing");
  Array.iteri
    (fun i t ->
      match t with
      | None -> Alcotest.fail (Printf.sprintf "no timing for slot %d" i)
      | Some (t : Pool.slot_timing) ->
          check_bool
            (Printf.sprintf "slot %d retried flag" i)
            (i = failing) t.Pool.retried;
          check_bool "duration non-negative" true (t.Pool.dur_us >= 0))
    timings

(* -- Tracing -- *)

let trace_modes () =
  let prior = Trace.mode () in
  Fun.protect
    ~finally:(fun () ->
      Trace.set_mode prior;
      Trace.reset ())
    (fun () ->
      (* Off: nothing is recorded. *)
      Trace.set_mode Trace.Off;
      Trace.reset ();
      Trace.with_span "test.span.off" (fun () -> ());
      check_int "off records nothing" 0 (Trace.event_count ());
      check_bool "off disabled" true (not (Trace.enabled ()));
      (* Summary: spans are recorded and aggregated by name. *)
      Trace.set_mode Trace.Summary;
      Trace.with_span "test.span.sum" (fun () -> ());
      Trace.with_span "test.span.sum" (fun () -> ());
      Trace.instant "test.mark";
      check_int "three events recorded" 3 (Trace.event_count ());
      let rows = Trace.summary () in
      let row =
        List.find_opt (fun (r : Trace.summary_row) -> r.Trace.name = "test.span.sum") rows
      in
      (match row with
      | Some r -> check_int "span aggregated" 2 r.Trace.count
      | None -> Alcotest.fail "summary row missing");
      (* Spans survive a raising body, and re-raise. *)
      check_bool "with_span re-raises" true
        (try
           Trace.with_span "test.span.raise" (fun () -> failwith "boom")
         with Failure msg -> msg = "boom"))

let trace_file_well_formed () =
  let prior = Trace.mode () in
  let path = Filename.temp_file "rd_trace" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Trace.set_mode prior;
      Trace.reset ();
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      Trace.set_mode (Trace.File path);
      Trace.reset ();
      Trace.with_span "test.file.span"
        ~args:[ ("k", "v\"quoted\"") ]
        (fun () -> ());
      Trace.instant "test.file.mark";
      Trace.write_file path;
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let body = really_input_string ic len in
      close_in ic;
      let contains needle =
        let nl = String.length needle and bl = String.length body in
        let rec go i =
          i + nl <= bl && (String.sub body i nl = needle || go (i + 1))
        in
        go 0
      in
      check_bool "has traceEvents array" true (contains "\"traceEvents\"");
      check_bool "span present as complete event" true
        (contains "\"test.file.span\"" && contains "\"ph\": \"X\"");
      check_bool "instant present" true
        (contains "\"test.file.mark\"" && contains "\"ph\": \"i\"");
      check_bool "args escaped" true (contains "v\\\"quoted\\\"");
      check_bool "balanced braces" true
        (String.length body > 2
        && body.[0] = '{'
        && String.trim body <> ""
        && (String.trim body).[String.length (String.trim body) - 1] = '}'))

(* -- Runtime: env and argv parsing -- *)

let with_env pairs f =
  List.iter (fun (k, v) -> Unix.putenv k v) pairs;
  Fun.protect
    ~finally:(fun () -> List.iter (fun (k, _) -> Unix.putenv k "") pairs)
    f

let runtime_of_env () =
  with_env
    [
      ("RD_JOBS", "3");
      ("RD_WARM", "verify");
      ("RD_CHECK", "on");
      ("RD_FAULTS", "0.5:7:full");
      ("RD_TRACE", "summary");
      ("RD_PORT", "4179");
      ("RD_DEADLINE_MS", "250");
    ]
    (fun () ->
      let rt = Runtime.of_env () in
      check_bool "jobs" true (rt.Runtime.jobs = Some 3);
      check_bool "warm" true (rt.Runtime.warm = Runtime.Warm_mode.Verify);
      check_bool "check" true (rt.Runtime.check = Runtime.Check_mode.On);
      (match rt.Runtime.faults with
      | Some f ->
          check_bool "fault rate" true (f.Runtime.Fault.rate = 0.5);
          check_int "fault seed" 7 f.Runtime.Fault.seed;
          check_bool "fault scope" true
            (f.Runtime.Fault.scope = Runtime.Fault.Full)
      | None -> Alcotest.fail "faults not parsed");
      check_bool "trace" true (rt.Runtime.trace = Trace.Summary);
      check_bool "port" true (rt.Runtime.port = Some 4179);
      check_int "deadline" 250 rt.Runtime.deadline_ms);
  (* Invalid values warn and fall back; empty means unset. *)
  with_env
    [
      ("RD_JOBS", "banana");
      ("RD_WARM", "");
      ("RD_TRACE", "off");
      ("RD_PORT", "0");
      ("RD_DEADLINE_MS", "-5");
    ]
    (fun () ->
      let rt = Runtime.of_env () in
      check_bool "bad jobs falls back" true (rt.Runtime.jobs = None);
      check_bool "empty warm keeps default" true
        (rt.Runtime.warm = Runtime.Warm_mode.On);
      check_bool "trace off" true (rt.Runtime.trace = Trace.Off);
      check_bool "bad port falls back" true (rt.Runtime.port = None);
      check_int "bad deadline falls back" Runtime.default.Runtime.deadline_ms
        rt.Runtime.deadline_ms)

let runtime_with_argv () =
  let rt0 = Runtime.default in
  (match
     Runtime.with_argv rt0
       [
         "--quick";
         "--jobs";
         "4";
         "--warm=verify";
         "--trace";
         "summary";
         "--check=on";
         "--faults";
         "0.25:9";
         "--json";
         "out.json";
       ]
   with
  | Ok (rt, rest) ->
      check_bool "jobs" true (rt.Runtime.jobs = Some 4);
      check_bool "warm" true (rt.Runtime.warm = Runtime.Warm_mode.Verify);
      check_bool "check" true (rt.Runtime.check = Runtime.Check_mode.On);
      check_bool "trace" true (rt.Runtime.trace = Trace.Summary);
      check_bool "faults" true
        (match rt.Runtime.faults with
        | Some f -> f.Runtime.Fault.rate = 0.25 && f.Runtime.Fault.seed = 9
        | None -> false);
      check_bool "leftovers in order" true
        (rest = [ "--quick"; "--json"; "out.json" ])
  | Error msg -> Alcotest.fail msg);
  (match Runtime.with_argv rt0 [ "-j"; "2" ] with
  | Ok (rt, rest) ->
      check_bool "-j short form" true (rt.Runtime.jobs = Some 2 && rest = [])
  | Error msg -> Alcotest.fail msg);
  check_bool "bad value is a hard error" true
    (match Runtime.with_argv rt0 [ "--jobs"; "zero" ] with
    | Error _ -> true
    | Ok _ -> false);
  (* Explicit zero or negative job counts are rejected, never clamped —
     in both the [--flag value] and [--flag=value] forms. *)
  List.iter
    (fun args ->
      check_bool
        ("rejected: " ^ String.concat " " args)
        true
        (match Runtime.with_argv rt0 args with Error _ -> true | Ok _ -> false))
    [
      [ "--jobs"; "0" ];
      [ "--jobs"; "-3" ];
      [ "--jobs=0" ];
      [ "--jobs=-3" ];
      [ "-j"; "0" ];
      [ "-j=0" ];
      [ "--port"; "0" ];
      [ "--port=70000" ];
      [ "--deadline-ms"; "-1" ];
      [ "--deadline-ms=nope" ];
    ];
  (* The serve knobs parse in both forms. *)
  (match Runtime.with_argv rt0 [ "--port"; "4179"; "--deadline-ms=250" ] with
  | Ok (rt, rest) ->
      check_bool "port" true (rt.Runtime.port = Some 4179);
      check_int "deadline" 250 rt.Runtime.deadline_ms;
      check_bool "no leftovers" true (rest = [])
  | Error msg -> Alcotest.fail msg);
  (match Runtime.with_argv rt0 [ "--port=8080"; "--deadline-ms"; "0" ] with
  | Ok (rt, _) ->
      check_bool "port =form" true (rt.Runtime.port = Some 8080);
      check_int "deadline 0 = none" 0 rt.Runtime.deadline_ms
  | Error msg -> Alcotest.fail msg);
  check_bool "trailing flag is a hard error" true
    (match Runtime.with_argv rt0 [ "--warm" ] with
    | Error _ -> true
    | Ok _ -> false);
  check_string "trace off round-trips" "off"
    (Trace.mode_to_string
       (match Trace.parse "off" with Ok m -> m | Error e -> Alcotest.fail e))

(* Runtime.set_trace must propagate to the live tracer, and the legacy
   per-knob setters must feed the same configuration. *)
let runtime_propagates () =
  let prior = Runtime.current () in
  Fun.protect
    ~finally:(fun () -> Runtime.set prior)
    (fun () ->
      Runtime.set_trace Trace.Summary;
      check_bool "tracer sees the mode" true (Trace.mode () = Trace.Summary);
      Runtime.set_trace Trace.Off;
      check_bool "tracer back off" true (Trace.mode () = Trace.Off);
      Pool.set_default_jobs 0;
      check_int "jobs clamp to 1" 1 (Pool.default_jobs ());
      Pool.set_default_jobs 5;
      check_int "legacy setter lands in Runtime" 5 (Runtime.jobs ());
      Simulator.Warm.set Simulator.Warm.Verify;
      check_bool "warm setter lands in Runtime" true
        (Runtime.warm () = Runtime.Warm_mode.Verify))

let suite =
  [
    Alcotest.test_case "metrics: registry idempotence" `Quick
      registry_idempotent;
    Alcotest.test_case "metrics: kind mismatch raises" `Quick
      registry_kind_mismatch;
    Alcotest.test_case "metrics: histogram consistency" `Quick
      histogram_consistency;
    Alcotest.test_case "metrics: concurrent counters sum exactly" `Quick
      concurrent_counters;
    Alcotest.test_case "engine: events_drained agrees with state" `Quick
      events_drained_agrees;
    Alcotest.test_case "engine: simulate unifies run/resume" `Quick
      simulate_unifies_run_and_resume;
    Alcotest.test_case "pool: slot timings and retry flag" `Quick
      pool_slot_timings;
    Alcotest.test_case "trace: off/summary modes" `Quick trace_modes;
    Alcotest.test_case "trace: file output well-formed" `Quick
      trace_file_well_formed;
    Alcotest.test_case "runtime: of_env" `Quick runtime_of_env;
    Alcotest.test_case "runtime: with_argv" `Quick runtime_with_argv;
    Alcotest.test_case "runtime: propagation to subsystems" `Quick
      runtime_propagates;
  ]
