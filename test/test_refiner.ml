(* Tests for matching metrics and the iterative refinement heuristic —
   the paper's core contribution. *)

open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine
module Qrmodel = Asmodel.Qrmodel
module Matching = Refine.Matching
module Refiner = Refine.Refiner

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let op asn = { Rib.op_ip = Asn.router_ip asn 0; op_as = asn }

let entry o origin path_list =
  {
    Rib.op = op o;
    prefix = Asn.origin_prefix origin;
    path = Aspath.of_list path_list;
  }

(* Figure 5's topology. *)
let fig5_graph =
  Topology.Asgraph.of_edges [ (1, 2); (1, 4); (1, 5); (2, 3); (3, 4); (4, 5) ]

let fig5_training =
  Rib.of_entries
    [ entry 1 3 [ 1; 2; 3 ]; entry 1 4 [ 1; 4 ]; entry 1 4 [ 1; 5; 4 ] ]

(* -- matching -- *)

let matching_verdicts () =
  let m = Qrmodel.initial fig5_graph in
  let p4 = Asn.origin_prefix 4 in
  let st = Qrmodel.simulate m p4 in
  check_bool "direct path selected" true
    (Matching.classify m.Qrmodel.net st (Aspath.of_list [ 1; 4 ]) = Matching.Rib_out);
  (* 1-5-4 is received (AS 5 selects 5-4 and exports) but loses on
     length. *)
  check_bool "longer path only in rib-in" true
    (Matching.classify m.Qrmodel.net st (Aspath.of_list [ 1; 5; 4 ]) = Matching.Rib_in);
  check_bool "eliminated at path length" true
    (Matching.eliminated_at m.Qrmodel.net st (Aspath.of_list [ 1; 5; 4 ])
    = Some Simulator.Decision.Path_length);
  (* A fantasy path never arrives. *)
  check_bool "absent path" true
    (Matching.classify m.Qrmodel.net st (Aspath.of_list [ 1; 2; 3; 4 ])
    = Matching.No_rib_in);
  (* The origin's own trivial path. *)
  let st3 = Qrmodel.simulate m (Asn.origin_prefix 3) in
  check_bool "origin trivially matches" true
    (Matching.classify m.Qrmodel.net st3 (Aspath.of_list [ 3 ]) = Matching.Rib_out)

let matching_potential () =
  (* Diamond where the observed path loses only the final tie-break:
     1 hears 4's prefix via 2 (lower address) and 3 (higher address) at
     equal length; observing 1-3-4 is a potential RIB-Out match. *)
  let g = Topology.Asgraph.of_edges [ (1, 2); (1, 3); (2, 4); (3, 4) ] in
  let m = Qrmodel.initial g in
  let st = Qrmodel.simulate m (Asn.origin_prefix 4) in
  check_bool "tie-break winner" true
    (Matching.classify m.Qrmodel.net st (Aspath.of_list [ 1; 2; 4 ]) = Matching.Rib_out);
  check_bool "tie-break loser is potential" true
    (Matching.classify m.Qrmodel.net st (Aspath.of_list [ 1; 3; 4 ])
    = Matching.Potential_rib_out)

let training_suffixes_worklist () =
  let work = Refiner.training_suffixes fig5_training in
  check_int "two prefixes" 2 (List.length work);
  let p4_suffixes = List.assoc (Asn.origin_prefix 4) work in
  (* suffixes of 1-4 and 1-5-4: [4], [1;4], [5;4], [1;5;4] *)
  check_int "distinct suffixes" 4 (List.length p4_suffixes);
  check_bool "sorted shortest first" true
    (let lens = List.map (fun (s, _) -> Array.length s) p4_suffixes in
     List.sort compare lens = lens);
  (* The precomputed tail is the suffix minus its head AS. *)
  List.iter
    (fun (s, tail) ->
      check_int "tail length" (Array.length s - 1) (Array.length tail);
      check_bool "tail content" true
        (tail = Array.sub s 1 (Array.length s - 1)))
    p4_suffixes

(* -- refinement on the Figure 5 scenario -- *)

let fig5_refinement () =
  let m = Qrmodel.initial fig5_graph in
  let result = Refiner.refine m ~training:fig5_training in
  check_bool "converged" true result.Refiner.converged;
  check_int "all suffixes matched" result.Refiner.total result.Refiner.matched;
  (* AS 1 needed a second quasi-router for the 1-5-4 route. *)
  check_int "AS1 duplicated" 2 (Qrmodel.quasi_router_count m 1);
  check_int "AS4 untouched" 1 (Qrmodel.quasi_router_count m 4);
  (* And the refined model reproduces all three observed paths. *)
  let st4 = Qrmodel.simulate m (Asn.origin_prefix 4) in
  let selected = Engine.selected_paths m.Qrmodel.net st4 1 in
  check_bool "both p4 routes" true
    (List.mem [| 1; 4 |] selected && List.mem [| 1; 5; 4 |] selected);
  let st3 = Qrmodel.simulate m (Asn.origin_prefix 3) in
  check_bool "forced longer p3 route" true
    (List.mem [| 1; 2; 3 |] (Engine.selected_paths m.Qrmodel.net st3 1))

let refinement_idempotent () =
  (* Refining an already-refined model converges immediately with no
     new changes. *)
  let m = Qrmodel.initial fig5_graph in
  let r1 = Refiner.refine m ~training:fig5_training in
  let nodes_before = Net.node_count m.Qrmodel.net in
  let policies_before = Net.count_policies m.Qrmodel.net in
  let r2 = Refiner.refine m ~training:fig5_training in
  check_bool "still converged" true r2.Refiner.converged;
  check_int "single iteration" 1 r2.Refiner.iterations;
  check_int "no new nodes" nodes_before (Net.node_count m.Qrmodel.net);
  check_bool "no new policies" true
    (Net.count_policies m.Qrmodel.net = policies_before);
  check_int "same totals" r1.Refiner.total r2.Refiner.total

let single_router_cap () =
  (* With duplication disabled the 1-5-4 route cannot coexist with 1-4:
     exactly one of the two p4 paths stays unmatched. *)
  let m = Qrmodel.initial fig5_graph in
  let options = { Refiner.default_options with max_quasi_routers = 1 } in
  let result = Refiner.refine ~options m ~training:fig5_training in
  check_bool "cannot fully converge" false result.Refiner.converged;
  check_int "one quasi-router everywhere" 1 (Qrmodel.quasi_router_count m 1);
  check_int "misses exactly one suffix" (result.Refiner.total - 1)
    result.Refiner.matched

let filter_deletion_scenario () =
  (* Figure 7's essence: a filter placed while fitting a short path later
     blocks a longer observed path through the same neighbour and must
     be deleted.  Topology: 1-7, 7-4, 1-6, 6-4, 7-6 (so 7 can reach 4
     both directly and via 6).  Observed at 1: 1-7-4 is NOT observed;
     instead 1-6-4 and the longer 1-7-6-4 are. *)
  let g = Topology.Asgraph.of_edges [ (1, 7); (7, 4); (1, 6); (6, 4); (7, 6) ] in
  let training =
    Rib.of_entries [ entry 1 4 [ 1; 6; 4 ]; entry 1 4 [ 1; 7; 6; 4 ] ]
  in
  let m = Qrmodel.initial g in
  let result = Refiner.refine m ~training in
  check_bool "converged despite conflicting filters" true result.Refiner.converged;
  let st = Qrmodel.simulate m (Asn.origin_prefix 4) in
  let selected = Engine.selected_paths m.Qrmodel.net st 1 in
  check_bool "both observed routes realized" true
    (List.mem [| 1; 6; 4 |] selected && List.mem [| 1; 7; 6; 4 |] selected)

let med_disabled_ablation () =
  (* Without MED rules, same-length rivalries can only be settled by the
     address tie-break, so some training paths stay potential matches. *)
  let g = Topology.Asgraph.of_edges [ (1, 2); (1, 3); (2, 4); (3, 4) ] in
  let training = Rib.of_entries [ entry 1 4 [ 1; 3; 4 ] ] in
  let with_med = Refiner.refine (Qrmodel.initial g) ~training in
  check_bool "med settles it" true with_med.Refiner.converged;
  let options = { Refiner.default_options with use_med = false } in
  let without = Refiner.refine ~options (Qrmodel.initial g) ~training in
  check_bool "filters alone cannot (same-length rival not filtered)" false
    without.Refiner.converged

let multi_point_training () =
  (* Observations from two different ASes must both be honoured. *)
  let g = Topology.Asgraph.of_edges [ (1, 2); (1, 3); (2, 4); (3, 4); (5, 2); (5, 3) ] in
  let training =
    Rib.of_entries
      [ entry 1 4 [ 1; 3; 4 ]; entry 5 4 [ 5; 2; 4 ]; entry 5 4 [ 5; 3; 4 ] ]
  in
  let m = Qrmodel.initial g in
  let result = Refiner.refine m ~training in
  check_bool "converged" true result.Refiner.converged;
  let st = Qrmodel.simulate m (Asn.origin_prefix 4) in
  check_bool "AS1 selects 1-3-4" true
    (List.mem [| 1; 3; 4 |] (Engine.selected_paths m.Qrmodel.net st 1));
  check_bool "AS5 has both" true
    (List.mem [| 5; 2; 4 |] (Engine.selected_paths m.Qrmodel.net st 5)
    && List.mem [| 5; 3; 4 |] (Engine.selected_paths m.Qrmodel.net st 5))

let history_is_monotone () =
  let m = Qrmodel.initial fig5_graph in
  let result = Refiner.refine m ~training:fig5_training in
  let matches = List.map (fun (h : Refiner.iter_stat) -> h.Refiner.matched)
      result.Refiner.history in
  check_bool "matched counts never decrease" true
    (List.sort compare matches = matches)

let unknown_as_in_training () =
  (* Paths through ASes absent from the graph are skipped, not fatal. *)
  let m = Qrmodel.initial fig5_graph in
  let training =
    Rib.of_entries [ entry 1 4 [ 1; 4 ]; entry 9 4 [ 99; 98; 4 ] ]
  in
  let result = Refiner.refine m ~training in
  check_bool "terminates" true (result.Refiner.iterations >= 1);
  check_bool "known path matched" true (result.Refiner.matched >= 2)

(* -- end-to-end property: refinement always reproduces the training set
   exactly on small random worlds (the paper's central claim). -- *)

let prop_training_always_reproduced =
  QCheck.Test.make ~name:"refinement reproduces training exactly" ~count:8
    QCheck.(int_range 1 10_000)
    (fun seed ->
      let conf = { Netgen.Conf.tiny with Netgen.Conf.seed = seed } in
      let world = Netgen.Groundtruth.build conf in
      let data = Netgen.Groundtruth.observe world in
      let prepared = Core.prepare data in
      let result =
        Core.build prepared ~training:prepared.Core.data
      in
      result.Refiner.converged)

let suite =
  [
    Alcotest.test_case "matching verdicts" `Quick matching_verdicts;
    Alcotest.test_case "matching potential rib-out" `Quick matching_potential;
    Alcotest.test_case "training suffix worklist" `Quick training_suffixes_worklist;
    Alcotest.test_case "figure-5 refinement" `Quick fig5_refinement;
    Alcotest.test_case "refinement idempotent" `Quick refinement_idempotent;
    Alcotest.test_case "single-router cap ablation" `Quick single_router_cap;
    Alcotest.test_case "filter deletion scenario" `Quick filter_deletion_scenario;
    Alcotest.test_case "med-disabled ablation" `Quick med_disabled_ablation;
    Alcotest.test_case "multi-point training" `Quick multi_point_training;
    Alcotest.test_case "history monotone" `Quick history_is_monotone;
    Alcotest.test_case "unknown AS tolerated" `Quick unknown_as_in_training;
    QCheck_alcotest.to_alcotest ~long:true prop_training_always_reproduced;
  ]
