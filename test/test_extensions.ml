(* Tests for the extension features: BGP update handling (the paper's
   future-work item) and C-BGP script export. *)

open Bgp

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let op asn = { Rib.op_ip = Asn.router_ip asn 0; op_as = asn }

let announce ?(t = 0) peer origin path_list =
  Mrt.Announce
    {
      Mrt.time = t;
      peer_ip = Asn.router_ip peer 0;
      peer_as = peer;
      prefix = Asn.origin_prefix origin;
      path = Aspath.of_list path_list;
      attrs = Attrs.default ~next_hop:(Asn.router_ip peer 0);
    }

let withdraw ?(t = 0) peer origin =
  Mrt.Withdraw
    {
      time = t;
      peer_ip = Asn.router_ip peer 0;
      peer_as = peer;
      prefix = Asn.origin_prefix origin;
    }

let update_line_roundtrip () =
  let a = announce ~t:99 1 6 [ 1; 7; 6 ] in
  (match Mrt.update_of_line (Mrt.update_to_line a) with
  | Mrt.Parsed (Mrt.Announce r) ->
      check_int "time" 99 r.Mrt.time;
      check_bool "path" true (Aspath.to_list r.Mrt.path = [ 1; 7; 6 ])
  | Mrt.Parsed (Mrt.Withdraw _) -> Alcotest.fail "not an announce"
  | Mrt.Skip -> Alcotest.fail "not a comment"
  | Mrt.Malformed e -> Alcotest.failf "parse: %s" e);
  let w = withdraw ~t:100 1 6 in
  match Mrt.update_of_line (Mrt.update_to_line w) with
  | Mrt.Parsed (Mrt.Withdraw { time; peer_as; prefix; _ }) ->
      check_int "time" 100 time;
      check_int "peer" 1 peer_as;
      check_bool "prefix" true (Prefix.equal prefix (Asn.origin_prefix 6))
  | Mrt.Parsed (Mrt.Announce _) -> Alcotest.fail "not a withdraw"
  | Mrt.Skip -> Alcotest.fail "not a comment"
  | Mrt.Malformed e -> Alcotest.failf "parse: %s" e

let is_malformed = function Mrt.Malformed _ -> true | _ -> false

let update_rejects () =
  check_bool "table dump kind rejected" true
    (is_malformed
       (Mrt.update_of_line
          "TABLE_DUMP2|1|B|1.2.3.4|7018|3.0.0.0/8|7018|IGP|1.2.3.4|0|0||NAG||"));
  check_bool "short withdraw rejected" true
    (is_malformed (Mrt.update_of_line "BGP4MP|1|W|1.2.3.4"));
  let updates, errors =
    Mrt.parse_update_lines
      [ "# comment"; Mrt.update_to_line (withdraw 1 6); "junk" ]
  in
  check_int "updates" 1 (List.length updates);
  check_int "errors" 1 (List.length errors)

let apply_updates_semantics () =
  let base =
    Rib.of_entries
      [ { Rib.op = op 1; prefix = Asn.origin_prefix 6; path = Aspath.of_list [ 1; 7; 6 ] } ]
  in
  (* Replace the slot, then add another prefix, then withdraw it. *)
  let updated, stats =
    Rib.apply_updates base
      [
        announce 1 6 [ 1; 8; 6 ];
        announce 1 5 [ 1; 5 ];
        withdraw 1 5;
        announce 1 9 [ 1; 9; 1 ] (* loop: dropped *);
      ]
  in
  check_int "loop dropped" 1 stats.Rib.dropped_loops;
  check_int "one slot" 1 (Rib.size updated);
  List.iter
    (fun (e : Rib.entry) ->
      check_bool "slot replaced" true (Aspath.to_list e.path = [ 1; 8; 6 ]))
    (Rib.entries updated)

let apply_updates_different_points () =
  let base = Rib.of_entries [] in
  let updated, _ =
    Rib.apply_updates base [ announce 1 6 [ 1; 6 ]; announce 2 6 [ 2; 6 ] ]
  in
  check_int "one slot per point" 2 (Rib.size updated);
  (* Withdrawal at point 1 leaves point 2 alone. *)
  let after, _ = Rib.apply_updates updated [ withdraw 1 6 ] in
  check_int "only point 2 left" 1 (Rib.size after);
  List.iter
    (fun (e : Rib.entry) -> check_int "point 2" 2 e.Rib.op.Rib.op_as)
    (Rib.entries after)

let cbgp_export_shape () =
  let graph = Topology.Asgraph.of_edges [ (1, 2); (2, 3) ] in
  let m = Asmodel.Qrmodel.initial graph in
  let n2 = List.hd (Simulator.Net.nodes_of_as m.Asmodel.Qrmodel.net 2) in
  let n1 = List.hd (Simulator.Net.nodes_of_as m.Asmodel.Qrmodel.net 1) in
  let s21 = Option.get (Simulator.Net.find_session m.Asmodel.Qrmodel.net n2 n1) in
  Simulator.Net.deny_export m.Asmodel.Qrmodel.net n2 s21 (Asn.origin_prefix 3);
  Simulator.Net.set_import_med m.Asmodel.Qrmodel.net n1 s21 (Asn.origin_prefix 3) 0;
  let lines = Asmodel.Cbgp_export.to_lines m in
  let count pred = List.length (List.filter pred lines) in
  let has_prefix p l = String.length l >= String.length p
                       && String.sub l 0 (String.length p) = p in
  let contains needle hay =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    nl = 0 || go 0
  in
  check_int "3 nodes" 3 (count (has_prefix "net add node"));
  check_int "2 links" 2 (count (has_prefix "net add link"));
  check_int "3 bgp routers" 3 (count (has_prefix "bgp add router"));
  check_int "4 peers (two per session)" 4
    (count (fun l -> has_prefix "bgp router" l && contains "add peer" l));
  check_bool "always-compare med" true
    (List.mem "bgp options med always-compare" lines);
  check_int "one deny filter" 1 (count (contains "action deny"));
  check_bool "one med filter" true (List.exists (contains "metric 0") lines);
  check_bool "originations present" true
    (List.exists (contains "add network") lines);
  check_bool "ends with sim run" true (List.mem "sim run" lines)

let suite =
  [
    Alcotest.test_case "update line roundtrip" `Quick update_line_roundtrip;
    Alcotest.test_case "update rejects" `Quick update_rejects;
    Alcotest.test_case "apply updates semantics" `Quick apply_updates_semantics;
    Alcotest.test_case "apply updates per point" `Quick apply_updates_different_points;
    Alcotest.test_case "cbgp export shape" `Quick cbgp_export_shape;
  ]
